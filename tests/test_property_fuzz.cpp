// Oracle-checked property tests (the empirical Theorems 4.2 / 5.2).
//
// For each seed we generate-and-execute a random future program once, on the
// primary session's runtime. Sessions for the other backends are attached as
// extra listeners (a detector is an execution_listener), so every backend
// observes the same event stream; the exact online oracle and the naive
// reference detector ride along too. At every memory access we check every
// prior accessor's reachability answer against the oracle, and at the end
// all sessions' racy-granule sets must equal the reference's — including the
// "reference" registry backend, which differentially anchors the §3 purge
// argument through the full access-history protocol. Structured programs
// additionally run MultiBags.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "api/session.hpp"
#include "graph/fuzz.hpp"
#include "graph/oracle.hpp"
#include "graph/reference_detector.hpp"
#include "runtime/serial.hpp"

namespace frd {
namespace {

constexpr std::uint32_t kMaxCells = 16;

struct fuzz_run {
  explicit fuzz_run(const graph::fuzz_config& cfg, bool with_multibags)
      : reference(oracle) {
    if (with_multibags) bags = std::make_unique<session>("multibags");
    // One execution, many observers: the primary session's runtime carries
    // the oracle, the naive reference, and every other session's detector.
    plus.add_listener(&oracle);
    plus.add_listener(&vc.detector());
    plus.add_listener(&ref.detector());
    if (bags) plus.add_listener(&bags->detector());

    graph::fuzzer fz(plus.runtime(), cfg, [this](std::uint32_t cell, bool write) {
      access(cell, write);
    });
    plus.run([&](rt::serial_runtime&) { fz.run(); });
    futures = fz.futures_created();
    gets = fz.gets_performed();
  }

  void access(std::uint32_t cell, bool write) {
    int* p = &cells[cell];
    const auto addr = reinterpret_cast<std::uintptr_t>(p);

    // Cross-check every prior accessor of this granule against the oracle
    // *before* the access mutates any state.
    const rt::strand_id cur = plus.runtime().current_strand();
    for (const auto& prior : reference.accessors_of(addr & ~std::uintptr_t{3})) {
      if (prior.strand == cur) continue;
      const bool want = oracle.precedes(prior.strand, cur);
      ASSERT_EQ(plus.precedes_current(prior.strand), want)
          << "multibags+ disagrees with oracle: strand " << prior.strand
          << " vs current " << cur;
      if (bags) {
        ASSERT_EQ(bags->precedes_current(prior.strand), want)
            << "multibags disagrees with oracle: strand " << prior.strand
            << " vs current " << cur;
      }
      ASSERT_EQ(vc.precedes_current(prior.strand), want)
          << "vector-clock baseline disagrees with oracle: strand "
          << prior.strand << " vs current " << cur;
      ASSERT_EQ(ref.precedes_current(prior.strand), want)
          << "reference backend disagrees with oracle: strand " << prior.strand
          << " vs current " << cur;
      ++queries_checked;
    }

    auto touch_all = [&](bool w) {
      if (w) {
        plus.write(p, 4);
        vc.write(p, 4);
        ref.write(p, 4);
        if (bags) bags->write(p, 4);
      } else {
        plus.read(p, 4);
        vc.read(p, 4);
        ref.read(p, 4);
        if (bags) bags->read(p, 4);
      }
    };
    if (write) {
      touch_all(true);
      reference.on_access(addr, 4, true, cur);
      *p += 1;
    } else {
      touch_all(false);
      reference.on_access(addr, 4, false, cur);
      sink += *p;
    }
  }

  session plus{"multibags+"};
  session vc{"vector-clock"};
  session ref{"reference"};
  std::unique_ptr<session> bags;
  graph::online_oracle oracle;
  graph::reference_detector reference;
  std::array<int, kMaxCells> cells{};
  long long sink = 0;
  std::size_t futures = 0;
  std::uint64_t gets = 0;
  std::uint64_t queries_checked = 0;
};

graph::fuzz_config structured_cfg(std::uint64_t seed) {
  graph::fuzz_config cfg;
  cfg.seed = seed;
  cfg.structured = true;
  cfg.max_depth = 5;
  cfg.max_actions_per_body = 10;
  cfg.n_cells = 6;
  cfg.max_futures = 48;
  return cfg;
}

graph::fuzz_config general_cfg(std::uint64_t seed) {
  graph::fuzz_config cfg = structured_cfg(seed);
  cfg.structured = false;
  cfg.max_touches_per_future = 3;
  return cfg;
}

class StructuredFuzz : public ::testing::TestWithParam<std::uint64_t> {};
class GeneralFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StructuredFuzz, DetectorsMatchOracleAndEachOther) {
  fuzz_run run(structured_cfg(GetParam()), /*with_multibags=*/true);

  EXPECT_EQ(run.plus.report().racy_granules(),
            run.reference.racy_granules())
      << "multibags+ racy-granule set diverged from the reference";
  EXPECT_EQ(run.bags->report().racy_granules(), run.reference.racy_granules())
      << "multibags racy-granule set diverged from the reference";
  EXPECT_EQ(run.ref.report().racy_granules(), run.reference.racy_granules())
      << "the reference *backend* must reproduce the naive detector exactly";
  EXPECT_EQ(run.vc.report().racy_granules(), run.reference.racy_granules());
  EXPECT_EQ(run.bags->structured_violations(), 0u)
      << "the structured fuzzer must generate discipline-conforming programs";
  // A run with zero checked queries would be vacuous.
  EXPECT_GT(run.queries_checked, 0u);
}

TEST_P(GeneralFuzz, MultiBagsPlusMatchesOracle) {
  fuzz_run run(general_cfg(GetParam()), /*with_multibags=*/false);
  EXPECT_EQ(run.plus.report().racy_granules(), run.reference.racy_granules());
  EXPECT_EQ(run.ref.report().racy_granules(), run.reference.racy_granules());
  EXPECT_GT(run.queries_checked, 0u);
}

// 32 seeds each: thousands of strands and tens of thousands of
// oracle-checked queries per suite run.
INSTANTIATE_TEST_SUITE_P(Seeds, StructuredFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));
INSTANTIATE_TEST_SUITE_P(Seeds, GeneralFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

// General-futures programs tilted hard toward the §5 multi-touch path: a
// high per-future touch budget and a heavy get weight make handles join from
// many unordered strands, which is exactly where MultiBags+'s attached/
// unattached bookkeeping (and its k² term) earns its keep. Distinct from
// GeneralFuzz above, which stays at the default 3 touches.
class GeneralHighTouchFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneralHighTouchFuzz, MultiTouchHeavyProgramsMatchOracle) {
  graph::fuzz_config cfg = general_cfg(GetParam());
  cfg.max_touches_per_future = 8;
  cfg.w_get = 6;
  cfg.max_futures = 96;
  cfg.n_cells = kMaxCells;
  fuzz_run run(cfg, /*with_multibags=*/false);
  EXPECT_EQ(run.plus.report().racy_granules(), run.reference.racy_granules())
      << "multibags+ diverged on a multi-touch-heavy program (seed "
      << GetParam() << ")";
  EXPECT_EQ(run.ref.report().racy_granules(), run.reference.racy_granules());
  EXPECT_EQ(run.vc.report().racy_granules(), run.reference.racy_granules());
  EXPECT_GT(run.queries_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralHighTouchFuzz,
                         ::testing::Range<std::uint64_t>(300, 308));

// Heavier configurations: deeper nesting, more futures, more cells.
TEST(FuzzHeavy, StructuredDeep) {
  graph::fuzz_config cfg = structured_cfg(777);
  cfg.max_depth = 8;
  cfg.max_actions_per_body = 14;
  cfg.max_futures = 200;
  cfg.n_cells = kMaxCells;
  fuzz_run run(cfg, true);
  EXPECT_EQ(run.plus.report().racy_granules(), run.reference.racy_granules());
  EXPECT_EQ(run.bags->report().racy_granules(), run.reference.racy_granules());
}

TEST(FuzzHeavy, GeneralManyTouches) {
  graph::fuzz_config cfg = general_cfg(888);
  cfg.max_depth = 7;
  cfg.max_futures = 150;
  cfg.max_touches_per_future = 5;
  cfg.w_get = 5;
  cfg.n_cells = kMaxCells;
  fuzz_run run(cfg, false);
  EXPECT_EQ(run.plus.report().racy_granules(), run.reference.racy_granules());
  EXPECT_GT(run.gets, 0u);
}

TEST(FuzzHeavy, SpawnOnlySeriesParallelPrograms) {
  // No futures at all: both algorithms degenerate to SP-bags behaviour.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    graph::fuzz_config cfg = structured_cfg(seed);
    cfg.w_create = 0;
    cfg.w_get = 0;
    cfg.w_spawn = 4;
    fuzz_run run(cfg, true);
    EXPECT_EQ(run.plus.report().racy_granules(), run.reference.racy_granules());
    EXPECT_EQ(run.bags->report().racy_granules(),
              run.reference.racy_granules());
  }
}

TEST(FuzzHeavy, FutureOnlyPrograms) {
  // No spawns: pure future dags exercise create/get paths exclusively.
  for (std::uint64_t seed = 200; seed < 210; ++seed) {
    graph::fuzz_config cfg = general_cfg(seed);
    cfg.w_spawn = 0;
    cfg.w_sync = 0;
    cfg.w_create = 3;
    cfg.w_get = 4;
    fuzz_run run(cfg, false);
    EXPECT_EQ(run.plus.report().racy_granules(), run.reference.racy_granules());
  }
}

}  // namespace
}  // namespace frd
