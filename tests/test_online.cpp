// Online detection on the work-stealing parallel runtime (src/online/).
//
// The contract under test is the CONFORMANCE ORACLE: an online run that
// records its arbitration order must produce a race report byte-identical
// to a serial replay of that very recording — for every corpus program,
// through every eligible backend, at scheduler widths 1, 2, and 4. The
// pump's canonical depth-first walk makes the arbitration order equal the
// serial elision's order, so "online" and "replay of what online recorded"
// see the same event stream; the oracle holds the whole pipeline (rings,
// demux, walk, batching) to that claim per run.
//
// Note what is NOT claimed: cross-worker-count identity. Programs whose
// structure depends on physical execution order (bst's fixup resolve order,
// general fuzz interleavings) legitimately produce different — but each
// individually correct — reports at different widths. Each run is held to
// its own recording.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "corpus/manifest.hpp"
#include "corpus/programs.hpp"
#include "corpus/runner.hpp"
#include "detect/types.hpp"
#include "online/engine.hpp"
#include "trace/event.hpp"

namespace frd {
namespace {

// builtin_manifest() returns by value; find() hands out pointers into the
// manifest, so every lookup must go through one long-lived copy.
const corpus::manifest& builtin() {
  static const corpus::manifest m = corpus::builtin_manifest();
  return m;
}

// Everything a race report observably says, for element-wise comparison.
struct fingerprint {
  std::uint64_t races_total = 0;
  std::vector<detect::race> retained;
  std::set<std::uintptr_t> racy_granules;
  std::uint64_t accesses = 0;
  std::uint64_t gets = 0;
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t batches = 0;
  std::uint64_t strands = 0;
};

fingerprint fingerprint_of(const session& s) {
  fingerprint f;
  f.races_total = s.report().total();
  f.retained = s.report().retained();
  f.racy_granules = s.report().racy_granules();
  f.accesses = s.access_count();
  f.gets = s.get_count();
  f.lookups = s.query_stats().lookups;
  f.cache_hits = s.query_stats().cache_hits;
  f.batches = s.query_stats().batches;
  f.strands = s.query_stats().strands;
  return f;
}

void expect_identical(const fingerprint& online, const fingerprint& replay) {
  EXPECT_EQ(online.races_total, replay.races_total);
  EXPECT_EQ(online.racy_granules, replay.racy_granules);
  ASSERT_EQ(online.retained.size(), replay.retained.size());
  for (std::size_t i = 0; i < online.retained.size(); ++i) {
    const detect::race& a = online.retained[i];
    const detect::race& b = replay.retained[i];
    EXPECT_EQ(a.granule_addr, b.granule_addr) << "race " << i;
    EXPECT_EQ(a.prior, b.prior) << "race " << i;
    EXPECT_EQ(a.prior_kind, b.prior_kind) << "race " << i;
    EXPECT_EQ(a.current, b.current) << "race " << i;
    EXPECT_EQ(a.current_kind, b.current_kind) << "race " << i;
  }
  EXPECT_EQ(online.accesses, replay.accesses);
  EXPECT_EQ(online.gets, replay.gets);
  // Query-plane counters too: online access runs are delimited by the same
  // dag events the trace records, and the replay session's batch capacity
  // below matches the pump's, so even the batching shape must agree.
  EXPECT_EQ(online.lookups, replay.lookups);
  EXPECT_EQ(online.cache_hits, replay.cache_hits);
  EXPECT_EQ(online.batches, replay.batches);
  EXPECT_EQ(online.strands, replay.strands);
}

// ------------------------------------------------------ conformance cube --

struct online_case {
  std::string entry;
  std::string backend;
  unsigned workers;
};

bool is_heavy(const std::string& name) {
  // Million-event entries: one (backend, width) point keeps the suite's
  // runtime bounded while still exercising ring wraparound and the
  // quiesce path at scale.
  return name.find("-xl") != std::string::npos ||
         name.find("-large") != std::string::npos;
}

std::vector<online_case> all_cases() {
  std::vector<online_case> out;
  for (const corpus::corpus_entry& e : builtin().entries) {
    if (is_heavy(e.name)) {
      out.push_back({e.name, "multibags+", 4u});
      continue;
    }
    for (const std::string& b : corpus::eligible_backends(e.futures)) {
      for (unsigned w : {1u, 2u, 4u}) {
        out.push_back({e.name, b, w});
      }
    }
  }
  return out;
}

class OnlineConformance : public ::testing::TestWithParam<online_case> {};

TEST_P(OnlineConformance, ReportMatchesSerialReplayOfItsOwnRecording) {
  const online_case& c = GetParam();
  const corpus::corpus_entry* e = builtin().find(c.entry);
  ASSERT_NE(e, nullptr);
  const corpus::corpus_program* prog = corpus::find_program(e->program);
  ASSERT_NE(prog, nullptr);

  // Online: run the program live on the work-stealing runtime, recording
  // the arbitration order as it streams through the pump.
  trace::memory_trace tape(
      trace::trace_header{trace::kTraceVersion, e->granule});
  session online(session::options{.backend = c.backend,
                                  .granule = e->granule,
                                  .runtime = runtime_kind::parallel,
                                  .runtime_workers = c.workers});
  online.record_to(tape);
  prog->run(online, e->seed);
  const fingerprint live = fingerprint_of(online);

  // Replay: a fresh serial session over the recording. The batch capacity
  // matches the pump's so the query-plane counters are comparable.
  session replay(session::options{
      .backend = c.backend,
      .granule = e->granule,
      .replay_batch = online::engine::config{}.batch_capacity});
  replay.replay(tape);
  tape.rewind();
  expect_identical(live, fingerprint_of(replay));
}

std::string case_name(const ::testing::TestParamInfo<online_case>& info) {
  std::string s = info.param.entry + "_" + info.param.backend + "_w" +
                  std::to_string(info.param.workers);
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Corpus, OnlineConformance,
                         ::testing::ValuesIn(all_cases()), case_name);

// ------------------------------------------------------- serial identity --

// Deterministic-structure programs go further than the per-run oracle: the
// online recording at ANY width equals the serial session's recording
// event-for-event, because the canonical walk IS the serial elision.
TEST(OnlineSerialIdentity, OnlineRecordingEqualsTheSerialRecording) {
  for (const char* name : {"lcs-structured", "mm-structured", "sync-heavy",
                           "fuzz-structured", "fuzz-general"}) {
    const corpus::corpus_entry* e = builtin().find(name);
    ASSERT_NE(e, nullptr);
    const corpus::corpus_program* prog = corpus::find_program(e->program);
    ASSERT_NE(prog, nullptr);

    trace::memory_trace serial_tape(
        trace::trace_header{trace::kTraceVersion, e->granule});
    session serial(session::options{.granule = e->granule});
    serial.record_to(serial_tape);
    prog->run(serial, e->seed);

    trace::memory_trace online_tape(
        trace::trace_header{trace::kTraceVersion, e->granule});
    session online(session::options{.granule = e->granule,
                                    .runtime = runtime_kind::parallel,
                                    .runtime_workers = 4});
    online.record_to(online_tape);
    prog->run(online, e->seed);

    // Normalization remaps first-touch granule order, which the identical
    // event order makes identical — so the normalized streams match
    // event-for-event even though raw heap addresses differ per run.
    trace::memory_trace ns = corpus::normalize_addresses(serial_tape);
    trace::memory_trace no = corpus::normalize_addresses(online_tape);
    trace::trace_event es, eo;
    std::uint64_t idx = 0;
    while (true) {
      const bool more_s = ns.next(es);
      const bool more_o = no.next(eo);
      ASSERT_EQ(more_s, more_o) << name << ": stream lengths differ at event "
                                << idx;
      if (!more_s) break;
      ASSERT_EQ(static_cast<int>(es.kind), static_cast<int>(eo.kind))
          << name << ": event " << idx;
      ++idx;
    }
    EXPECT_GT(idx, 0u) << name;
  }
}

// --------------------------------------------------------- configuration --

TEST(OnlineConfig, SerialSessionsRejectRuntimeWorkers) {
  // runtime_workers parallelizes the program; on the serial runtime the
  // knob is meaningless and silently ignoring it would mislead.
  EXPECT_THROW(session(session::options{.runtime_workers = 2}),
               detect::backend_error);
}

TEST(OnlineConfigDeath, RuntimeAccessorIsSerialOnly) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  // The serial runtime handle does not exist in an online session; the
  // accessor must refuse rather than hand out a dangling substrate.
  EXPECT_DEATH(
      {
        session s(session::options{.runtime = runtime_kind::parallel,
                                   .runtime_workers = 2});
        (void)s.runtime();
      },
      "runtime = parallel");
}

TEST(OnlineConfig, ZeroArgBodiesRunOnTheConfiguredRuntime) {
  // The run(void-callable) overload works on both runtimes — it routes
  // through the online pump when the session is parallel.
  session s(session::options{.runtime = runtime_kind::parallel,
                             .runtime_workers = 2});
  static int cells[4];
  s.run([&] {
    s.write(&cells[0]);
    s.read(&cells[0]);
  });
  EXPECT_EQ(s.access_count(), 2u);
  EXPECT_EQ(s.report().total(), 0u);
}

}  // namespace
}  // namespace frd
