// Tests for the work-stealing parallel runtime (the detection-off substrate).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "runtime/parallel.hpp"

namespace frd::rt {
namespace {

TEST(ParallelRuntime, RunsRootToCompletion) {
  parallel_runtime rt(4);
  int x = 0;
  rt.run([&] { x = 42; });
  EXPECT_EQ(x, 42);
}

TEST(ParallelRuntime, SpawnSyncJoinsAllChildren) {
  parallel_runtime rt(8);
  std::atomic<int> count{0};
  rt.run([&] {
    for (int i = 0; i < 100; ++i)
      rt.spawn([&] { count.fetch_add(1, std::memory_order_relaxed); });
    rt.sync();
    EXPECT_EQ(count.load(), 100);
  });
}

TEST(ParallelRuntime, NestedSpawnTreeSumsCorrectly) {
  parallel_runtime rt(8);
  std::atomic<long long> sum{0};
  std::function<void(int, int)> go = [&](int lo, int hi) {
    if (hi - lo <= 8) {
      long long s = 0;
      for (int i = lo; i < hi; ++i) s += i;
      sum.fetch_add(s, std::memory_order_relaxed);
      return;
    }
    const int mid = lo + (hi - lo) / 2;
    rt.spawn([&, lo, mid] { go(lo, mid); });
    go(mid, hi);
    rt.sync();
  };
  rt.run([&] { go(0, 100000); });
  EXPECT_EQ(sum.load(), 100000LL * 99999 / 2);
}

TEST(ParallelRuntime, ImplicitSyncOnChildReturn) {
  parallel_runtime rt(4);
  std::atomic<int> grandchildren{0};
  rt.run([&] {
    rt.spawn([&] {
      for (int i = 0; i < 10; ++i)
        rt.spawn([&] { grandchildren.fetch_add(1); });
      // no explicit sync: child's frame must sync before completing
    });
    rt.sync();
    EXPECT_EQ(grandchildren.load(), 10);
  });
}

TEST(ParallelRuntime, FutureValueDelivered) {
  parallel_runtime rt(4);
  rt.run([&] {
    auto f = rt.create_future([] { return 123; });
    EXPECT_EQ(rt.get(f), 123);
  });
}

TEST(ParallelRuntime, VoidFuture) {
  parallel_runtime rt(4);
  std::atomic<bool> ran{false};
  rt.run([&] {
    auto f = rt.create_future([&] { ran.store(true); });
    rt.get(f);
    EXPECT_TRUE(ran.load());
  });
}

TEST(ParallelRuntime, GetClaimsUnstartedFutureInline) {
  // With one worker nothing steals, so get() must claim and run the task.
  parallel_runtime rt(1);
  rt.run([&] {
    auto f = rt.create_future([] { return 7; });
    EXPECT_EQ(rt.get(f), 7);
  });
}

TEST(ParallelRuntime, ManyFuturesAllResolve) {
  parallel_runtime rt(8);
  rt.run([&] {
    std::vector<pfuture<int>> futs;
    futs.reserve(500);
    for (int i = 0; i < 500; ++i)
      futs.push_back(rt.create_future([i] { return i * i; }));
    long long total = 0;
    for (int i = 0; i < 500; ++i) total += rt.get(futs[i]);
    long long want = 0;
    for (int i = 0; i < 500; ++i) want += 1LL * i * i;
    EXPECT_EQ(total, want);
  });
}

TEST(ParallelRuntime, MultiTouchGetIsIdempotent) {
  parallel_runtime rt(4);
  rt.run([&] {
    auto f = rt.create_future([] { return 5; });
    EXPECT_EQ(rt.get(f), 5);
    EXPECT_EQ(rt.get(f), 5);
    auto copy = f;  // shared state
    EXPECT_EQ(rt.get(copy), 5);
  });
}

TEST(ParallelRuntime, FuturePipelineAcrossWorkers) {
  parallel_runtime rt(4);
  rt.run([&] {
    auto s1 = rt.create_future([] { return 1; });
    auto s2 = rt.create_future([&] { return rt.get(s1) + 1; });
    auto s3 = rt.create_future([&] { return rt.get(s2) + 1; });
    EXPECT_EQ(rt.get(s3), 3);
  });
}

TEST(ParallelRuntime, StressInterleavedSpawnAndFutures) {
  parallel_runtime rt(0);  // hardware concurrency
  std::atomic<long long> acc{0};
  rt.run([&] {
    std::vector<pfuture<int>> futs;
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < 20; ++i)
        rt.spawn([&, i] { acc.fetch_add(i, std::memory_order_relaxed); });
      futs.push_back(rt.create_future([round] { return round; }));
      rt.sync();
    }
    int fsum = 0;
    for (auto& f : futs) fsum += rt.get(f);
    EXPECT_EQ(fsum, 19 * 20 / 2);
  });
  EXPECT_EQ(acc.load(), 20LL * (19 * 20 / 2));
}

TEST(ParallelRuntime, RunReusableAcrossCalls) {
  parallel_runtime rt(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> n{0};
    rt.run([&] {
      for (int i = 0; i < 50; ++i) rt.spawn([&] { n.fetch_add(1); });
      rt.sync();
    });
    EXPECT_EQ(n.load(), 50);
  }
}

TEST(ParallelRuntime, ActuallyRunsConcurrently) {
  // Two tasks that each wait for the other to have started: only terminates
  // if they genuinely overlap in time.
  parallel_runtime rt(4);
  std::atomic<int> phase{0};
  rt.run([&] {
    rt.spawn([&] {
      phase.fetch_add(1);
      while (phase.load() < 2) std::this_thread::yield();
    });
    phase.fetch_add(1);
    while (phase.load() < 2) std::this_thread::yield();
    rt.sync();
  });
  EXPECT_EQ(phase.load(), 2);
}

}  // namespace
}  // namespace frd::rt
