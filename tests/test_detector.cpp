// End-to-end detection tests: hand-written racy and race-free programs under
// the full configuration, level semantics, hook plumbing, granularity — run
// through the frd::session facade against every futures-capable backend.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "runtime/serial.hpp"

namespace frd::detect {
namespace {

struct harness {
  explicit harness(const std::string& backend, level lvl = level::full)
      : s({.backend = backend, .level = lvl}), rt(s.runtime()) {}
  frd::session s;
  rt::serial_runtime& rt;

  void read(const void* p, std::size_t n = 4) { s.read(p, n); }
  void write(const void* p, std::size_t n = 4) { s.write(p, n); }
  const race_report& report() const { return s.report(); }
};

// Every backend that can absorb the future constructs these programs use.
class AllBackends : public ::testing::TestWithParam<const char*> {};

// ------------------------------------------------------------ basic races --
TEST_P(AllBackends, WriteWriteRaceBetweenSpawnAndContinuation) {
  harness h(GetParam());
  int x = 0;
  h.rt.run([&] {
    h.rt.spawn([&] {
      h.write(&x);
      x = 1;
    });
    h.write(&x);  // continuation writes in parallel with the child
    x = 2;
    h.rt.sync();
  });
  EXPECT_TRUE(h.report().any());
  EXPECT_EQ(h.report().racy_granules().size(), 1u);
}

TEST_P(AllBackends, ReadWriteRaceBetweenSpawnAndContinuation) {
  harness h(GetParam());
  int x = 0;
  h.rt.run([&] {
    h.rt.spawn([&] { h.read(&x); });
    h.write(&x);
    x = 1;
    h.rt.sync();
  });
  EXPECT_TRUE(h.report().any());
  const auto& first = h.report().retained().front();
  EXPECT_EQ(first.prior_kind, access_kind::read);
  EXPECT_EQ(first.current_kind, access_kind::write);
}

TEST_P(AllBackends, WriteThenParallelReadRace) {
  harness h(GetParam());
  int x = 0;
  h.rt.run([&] {
    h.rt.spawn([&] {
      h.write(&x);
      x = 3;
    });
    h.read(&x);  // parallel read of the child's write
    h.rt.sync();
  });
  EXPECT_TRUE(h.report().any());
}

TEST_P(AllBackends, NoRaceWhenOrderedBySync) {
  harness h(GetParam());
  int x = 0;
  h.rt.run([&] {
    h.rt.spawn([&] {
      h.write(&x);
      x = 1;
    });
    h.rt.sync();
    h.write(&x);  // ordered after the child by the sync
    x = 2;
    h.read(&x);
  });
  EXPECT_FALSE(h.report().any());
}

TEST_P(AllBackends, ParallelReadsAreNotARace) {
  harness h(GetParam());
  int x = 42;
  h.rt.run([&] {
    h.rt.spawn([&] { h.read(&x); });
    h.rt.spawn([&] { h.read(&x); });
    h.read(&x);
    h.rt.sync();
  });
  EXPECT_FALSE(h.report().any());
}

// -------------------------------------------------------- futures & races --
TEST_P(AllBackends, FutureRaceWithContinuationUntilGet) {
  harness h(GetParam());
  int x = 0;
  h.rt.run([&] {
    auto f = h.rt.create_future([&] {
      h.write(&x);
      x = 1;
      return 0;
    });
    h.write(&x);  // parallel: the future has not been joined
    x = 2;
    f.get();
  });
  EXPECT_TRUE(h.report().any());
}

TEST_P(AllBackends, NoRaceAfterGetOrdersTheFuture) {
  harness h(GetParam());
  int x = 0;
  h.rt.run([&] {
    auto f = h.rt.create_future([&] {
      h.write(&x);
      x = 1;
      return 0;
    });
    f.get();
    h.write(&x);  // ordered by the get edge
    x = 2;
  });
  EXPECT_FALSE(h.report().any());
}

TEST_P(AllBackends, SyncDoesNotOrderAFuture) {
  // The race that sync would have hidden under fork-join: the future escapes.
  harness h(GetParam());
  int x = 0;
  h.rt.run([&] {
    auto f = h.rt.create_future([&] {
      h.write(&x);
      x = 1;
      return 0;
    });
    h.rt.spawn([&] {});
    h.rt.sync();
    h.write(&x);  // still parallel with the future!
    x = 2;
    f.get();
  });
  EXPECT_TRUE(h.report().any());
}

TEST_P(AllBackends, PipelineStagesOrderedThroughGetChain) {
  harness h(GetParam());
  std::array<int, 4> buf{};
  h.rt.run([&] {
    auto s1 = h.rt.create_future([&] {
      h.write(&buf[0]);
      buf[0] = 1;
      return 0;
    });
    auto s2 = h.rt.create_future([&] {
      s1.get();
      h.read(&buf[0]);  // ordered through the get edge: no race
      h.write(&buf[1]);
      buf[1] = buf[0] + 1;
      return 0;
    });
    s2.get();
    h.read(&buf[1]);
  });
  EXPECT_FALSE(h.report().any());
  EXPECT_EQ(buf[1], 2);
}

// ----------------------------------------------------- history mechanics --
TEST_P(AllBackends, ReaderListCatchesAllParallelReaders) {
  // Many parallel readers, then a writer parallel to all of them: the
  // arbitrarily-long reader list (§3) must still hold a witness.
  harness h(GetParam());
  int x = 0;
  h.rt.run([&] {
    for (int i = 0; i < 10; ++i) h.rt.spawn([&] { h.read(&x); });
    h.write(&x);  // parallel to every reader
    x = 1;
    h.rt.sync();
  });
  EXPECT_TRUE(h.report().any());
}

TEST_P(AllBackends, WriterPurgeDoesNotLoseRaces) {
  // Reader r, then an *ordered* writer purges the list, then a strand
  // parallel to r writes: the race must surface against the new writer
  // (paper §3's purge argument).
  harness h(GetParam());
  int x = 0;
  h.rt.run([&] {
    h.rt.spawn([&] { h.read(&x); });  // r
    h.rt.spawn([&] {
      h.write(&x);  // parallel to r -> this itself is the race witness
      x = 1;
    });
    h.rt.sync();
  });
  EXPECT_TRUE(h.report().any());
}

TEST_P(AllBackends, OwnStrandRereadsAndRewritesAreFine) {
  harness h(GetParam());
  int x = 0;
  h.rt.run([&] {
    h.write(&x);
    x = 1;
    h.read(&x);
    h.write(&x);
    x = 2;
    h.read(&x);
  });
  EXPECT_FALSE(h.report().any());
}

TEST_P(AllBackends, GranuleSharingDetectedAtFourBytes) {
  // Two adjacent shorts share one 4-byte granule: flagged (like real
  // shadow-memory tools at their granularity).
  harness h(GetParam());
  struct {
    alignas(4) short a;
    short b;
  } s{0, 0};
  h.rt.run([&] {
    h.rt.spawn([&] {
      h.write(&s.a, sizeof(short));
      s.a = 1;
    });
    h.write(&s.b, sizeof(short));
    s.b = 2;
    h.rt.sync();
  });
  EXPECT_TRUE(h.report().any());
}

TEST_P(AllBackends, WideAccessSpansGranules) {
  harness h(GetParam());
  alignas(8) std::uint64_t wide = 0;
  auto* lo = reinterpret_cast<std::uint32_t*>(&wide);
  h.rt.run([&] {
    h.rt.spawn([&] {
      h.write(&wide, 8);  // touches both granules
      wide = 1;
    });
    h.read(lo + 1, 4);  // upper half only: still races
    h.rt.sync();
  });
  EXPECT_TRUE(h.report().any());
}

TEST_P(AllBackends, DistinctLocationsNoFalsePositives) {
  harness h(GetParam());
  std::array<int, 64> xs{};
  h.rt.run([&] {
    for (int i = 0; i < 64; i += 2) {
      h.rt.spawn([&, i] {
        h.write(&xs[i]);
        xs[i] = i;
      });
      h.write(&xs[i + 1]);
      xs[i + 1] = i + 1;
    }
    h.rt.sync();
  });
  EXPECT_FALSE(h.report().any());
}

// ----------------------------------------------------------- level gates --
TEST_P(AllBackends, InstrumentationLevelCountsButNeverReports) {
  harness h(GetParam(), level::instrumentation);
  int x = 0;
  h.rt.run([&] {
    h.rt.spawn([&] {
      h.write(&x);
      x = 1;
    });
    h.write(&x);
    x = 2;
    h.rt.sync();
  });
  EXPECT_EQ(h.s.access_count(), 2u);
  EXPECT_FALSE(h.report().any());
  EXPECT_EQ(h.s.detector().shadow_store().page_count(), 0u)
      << "no history maintained";
}

TEST_P(AllBackends, ReachabilityLevelAnswersQueries) {
  harness h(GetParam(), level::reachability);
  rt::strand_id child = rt::kNoStrand;
  h.rt.run([&] {
    h.rt.spawn([&] { child = h.rt.current_strand(); });
    EXPECT_FALSE(h.s.precedes_current(child));
    h.rt.sync();
    EXPECT_TRUE(h.s.precedes_current(child));
  });
}

TEST_P(AllBackends, SessionRunRoutesActiveHooks) {
  harness h(GetParam());
  int x = 0;
  h.s.run([&] {
    h.rt.spawn([&] {
      hooks::st<hooks::active>(x, 1);
    });
    (void)hooks::ld<hooks::active>(x);
    h.rt.sync();
  });
  EXPECT_TRUE(h.report().any());
  EXPECT_EQ(h.s.access_count(), 2u);
}

TEST_P(AllBackends, NoneHooksCompileToNothing) {
  harness h(GetParam());
  int x = 0;
  h.s.run([&] {
    h.rt.spawn([&] { hooks::st<hooks::none>(x, 1); });
    (void)hooks::ld<hooks::none>(x);
    h.rt.sync();
  });
  EXPECT_FALSE(h.report().any());
  EXPECT_EQ(h.s.access_count(), 0u);
}

TEST_P(AllBackends, RaceCountsAndRetention) {
  harness h(GetParam());
  std::array<int, 100> xs{};
  h.rt.run([&] {
    h.rt.spawn([&] {
      for (auto& v : xs) {
        h.write(&v);
        v = 1;
      }
    });
    for (auto& v : xs) {
      h.write(&v);
      v = 2;
    }
    h.rt.sync();
  });
  EXPECT_EQ(h.report().racy_granules().size(), 100u);
  EXPECT_EQ(h.report().retained().size(), race_report::kDefaultRetained);
  EXPECT_GE(h.report().total(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Backends, AllBackends,
                         ::testing::Values("multibags", "multibags+",
                                           "vector-clock", "reference"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '+') c = 'P';
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// -------------------------------------------------- general-future races --
TEST(DetectorGeneral, MultiTouchFutureOrdersBothGetters) {
  harness h("multibags+");
  int x = 0;
  h.rt.run([&] {
    auto f = h.rt.create_future([&] {
      h.write(&x);
      x = 1;
      return 0;
    });
    h.rt.spawn([&] {
      f.get();
      h.read(&x);  // ordered via get edge
    });
    f.get();
    h.read(&x);  // also ordered
    h.rt.sync();
  });
  EXPECT_FALSE(h.report().any());
}

TEST(DetectorGeneral, UnstructuredGetFromParallelBranchStillSound) {
  // Creator and getter are parallel (discipline violation for MultiBags,
  // legal for MultiBags+): accesses ordered through the get must not race,
  // while the getter branch stays parallel to the creator's continuation.
  harness h("multibags+");
  int produced = 0, unrelated = 0;
  rt::future<int> f;
  h.rt.run([&] {
    h.rt.spawn([&] {
      f = h.rt.create_future([&] {
        h.write(&produced);
        produced = 7;
        return 7;
      });
      h.write(&unrelated);
      unrelated = 1;
    });
    f.get();
    h.read(&produced);  // ordered through the get edge: no race
    h.rt.sync();
  });
  EXPECT_FALSE(h.report().any());
}

TEST(DetectorGeneral, RaceVisibleOnlyWithoutGetEdge) {
  harness h("multibags+");
  int x = 0;
  h.rt.run([&] {
    auto f = h.rt.create_future([&] {
      h.write(&x);
      x = 1;
      return 0;
    });
    h.rt.spawn([&] {
      h.read(&x);  // no get: parallel with the future -> race
    });
    f.get();
    h.rt.sync();
  });
  EXPECT_TRUE(h.report().any());
}

}  // namespace
}  // namespace frd::detect
