// Direct unit tests of the shared S/P-bag machinery (detect/sp_bags.hpp) —
// the bag lifecycle of paper Figure 1, independent of any runtime.
#include <gtest/gtest.h>

#include "detect/sp_bags.hpp"

namespace frd::detect {
namespace {

TEST(SpBags, ActiveFunctionStrandsAreInSBags) {
  sp_bags b;
  b.program_begin(0, 0);
  EXPECT_TRUE(b.in_s_bag(0));
  b.add_strand(0, 1);
  b.add_strand(0, 2);
  EXPECT_TRUE(b.in_s_bag(1));
  EXPECT_TRUE(b.in_s_bag(2));
}

TEST(SpBags, ReturnRenamesSToP) {
  sp_bags b;
  b.program_begin(0, 0);
  b.child_begin(1, 1);  // child function 1, first strand 1
  b.add_strand(1, 2);
  EXPECT_TRUE(b.in_s_bag(1));
  EXPECT_TRUE(b.in_s_bag(2));
  b.child_return(1);
  // The rename flips *all* the child's strands at once (that is the paper's
  // key O(1) move — no per-strand work).
  EXPECT_FALSE(b.in_s_bag(1));
  EXPECT_FALSE(b.in_s_bag(2));
  EXPECT_TRUE(b.has_p_bag(1));
}

TEST(SpBags, JoinAbsorbsPBagIntoJoinersSBag) {
  sp_bags b;
  b.program_begin(0, 0);
  b.child_begin(1, 1);
  b.add_strand(1, 2);
  b.child_return(1);
  b.join_child(0, 1);
  EXPECT_TRUE(b.in_s_bag(1));
  EXPECT_TRUE(b.in_s_bag(2));
  EXPECT_FALSE(b.has_p_bag(1)) << "P-bag destroyed by the join";
}

TEST(SpBags, NestedRenamesCompose) {
  // F creates G creates H; H returns, G joins H, G returns: H's strands
  // must ride along into G's P-bag, then into F's S-bag at F's join.
  sp_bags b;
  b.program_begin(0, 0);
  b.child_begin(1, 1);   // G
  b.child_begin(2, 2);   // H (created by G)
  b.child_return(2);     // P_H
  EXPECT_FALSE(b.in_s_bag(2));
  b.join_child(1, 2);    // G joins H
  EXPECT_TRUE(b.in_s_bag(2));
  b.child_return(1);     // P_G: H's strands flip too
  EXPECT_FALSE(b.in_s_bag(1));
  EXPECT_FALSE(b.in_s_bag(2));
  b.join_child(0, 1);    // F joins G
  EXPECT_TRUE(b.in_s_bag(1));
  EXPECT_TRUE(b.in_s_bag(2));
}

TEST(SpBags, UnjoinedSiblingStaysParallel) {
  sp_bags b;
  b.program_begin(0, 0);
  b.child_begin(1, 1);
  b.child_return(1);
  b.child_begin(2, 2);
  b.child_return(2);
  b.join_child(0, 1);
  EXPECT_TRUE(b.in_s_bag(1));
  EXPECT_FALSE(b.in_s_bag(2)) << "the other future is still outstanding";
}

TEST(SpBags, AddStrandIsIdempotent) {
  sp_bags b;
  b.program_begin(0, 0);
  b.add_strand(0, 1);
  b.add_strand(0, 1);  // virtual join strands get re-announced
  EXPECT_TRUE(b.in_s_bag(1));
}

TEST(SpBags, KnowsStrand) {
  sp_bags b;
  b.program_begin(0, 0);
  EXPECT_TRUE(b.knows_strand(0));
  EXPECT_FALSE(b.knows_strand(7));
  b.add_strand(0, 7);
  EXPECT_TRUE(b.knows_strand(7));
}

TEST(SpBagsDeath, DoubleJoinIsRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  sp_bags b;
  b.program_begin(0, 0);
  b.child_begin(1, 1);
  b.child_return(1);
  b.join_child(0, 1);
  // A second join of the same function is the multi-touch pattern MultiBags
  // cannot absorb; the invariant check must fire loudly, not corrupt bags.
  EXPECT_DEATH(b.join_child(0, 1), "P-bag");
}

TEST(SpBagsDeath, ReturnWithoutSBagRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  sp_bags b;
  b.program_begin(0, 0);
  b.child_begin(1, 1);
  b.child_return(1);
  EXPECT_DEATH(b.child_return(1), "S-bag");
}

TEST(SpBags, ManyFunctionsStressBagIdentity) {
  // 1000 futures created by main, joined in a random-ish order: every join
  // must flip exactly that function's strands.
  sp_bags b;
  b.program_begin(0, 0);
  const int n = 1000;
  for (int i = 1; i <= n; ++i) {
    b.child_begin(static_cast<rt::func_id>(i), static_cast<rt::strand_id>(i));
    b.child_return(static_cast<rt::func_id>(i));
  }
  for (int i = 1; i <= n; ++i) EXPECT_FALSE(b.in_s_bag(static_cast<rt::strand_id>(i)));
  // Join odd functions only.
  for (int i = 1; i <= n; i += 2) b.join_child(0, static_cast<rt::func_id>(i));
  for (int i = 1; i <= n; ++i)
    EXPECT_EQ(b.in_s_bag(static_cast<rt::strand_id>(i)), i % 2 == 1) << i;
}

}  // namespace
}  // namespace frd::detect
