// Direct unit tests of the shared S/P-bag machinery (detect/sp_bags.hpp) —
// the bag lifecycle of paper Figure 1, independent of any runtime — plus
// end-to-end runs of the registered "sp-bags" backend on fork-join programs,
// parameterized alongside "multibags" (on such programs the two must agree).
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "api/session.hpp"
#include "detect/sp_bags.hpp"

namespace frd::detect {
namespace {

TEST(SpBags, ActiveFunctionStrandsAreInSBags) {
  sp_bags b;
  b.program_begin(0, 0);
  EXPECT_TRUE(b.in_s_bag(0));
  b.add_strand(0, 1);
  b.add_strand(0, 2);
  EXPECT_TRUE(b.in_s_bag(1));
  EXPECT_TRUE(b.in_s_bag(2));
}

TEST(SpBags, ReturnRenamesSToP) {
  sp_bags b;
  b.program_begin(0, 0);
  b.child_begin(1, 1);  // child function 1, first strand 1
  b.add_strand(1, 2);
  EXPECT_TRUE(b.in_s_bag(1));
  EXPECT_TRUE(b.in_s_bag(2));
  b.child_return(1);
  // The rename flips *all* the child's strands at once (that is the paper's
  // key O(1) move — no per-strand work).
  EXPECT_FALSE(b.in_s_bag(1));
  EXPECT_FALSE(b.in_s_bag(2));
  EXPECT_TRUE(b.has_p_bag(1));
}

TEST(SpBags, JoinAbsorbsPBagIntoJoinersSBag) {
  sp_bags b;
  b.program_begin(0, 0);
  b.child_begin(1, 1);
  b.add_strand(1, 2);
  b.child_return(1);
  b.join_child(0, 1);
  EXPECT_TRUE(b.in_s_bag(1));
  EXPECT_TRUE(b.in_s_bag(2));
  EXPECT_FALSE(b.has_p_bag(1)) << "P-bag destroyed by the join";
}

TEST(SpBags, NestedRenamesCompose) {
  // F creates G creates H; H returns, G joins H, G returns: H's strands
  // must ride along into G's P-bag, then into F's S-bag at F's join.
  sp_bags b;
  b.program_begin(0, 0);
  b.child_begin(1, 1);   // G
  b.child_begin(2, 2);   // H (created by G)
  b.child_return(2);     // P_H
  EXPECT_FALSE(b.in_s_bag(2));
  b.join_child(1, 2);    // G joins H
  EXPECT_TRUE(b.in_s_bag(2));
  b.child_return(1);     // P_G: H's strands flip too
  EXPECT_FALSE(b.in_s_bag(1));
  EXPECT_FALSE(b.in_s_bag(2));
  b.join_child(0, 1);    // F joins G
  EXPECT_TRUE(b.in_s_bag(1));
  EXPECT_TRUE(b.in_s_bag(2));
}

TEST(SpBags, UnjoinedSiblingStaysParallel) {
  sp_bags b;
  b.program_begin(0, 0);
  b.child_begin(1, 1);
  b.child_return(1);
  b.child_begin(2, 2);
  b.child_return(2);
  b.join_child(0, 1);
  EXPECT_TRUE(b.in_s_bag(1));
  EXPECT_FALSE(b.in_s_bag(2)) << "the other future is still outstanding";
}

TEST(SpBags, AddStrandIsIdempotent) {
  sp_bags b;
  b.program_begin(0, 0);
  b.add_strand(0, 1);
  b.add_strand(0, 1);  // virtual join strands get re-announced
  EXPECT_TRUE(b.in_s_bag(1));
}

TEST(SpBags, KnowsStrand) {
  sp_bags b;
  b.program_begin(0, 0);
  EXPECT_TRUE(b.knows_strand(0));
  EXPECT_FALSE(b.knows_strand(7));
  b.add_strand(0, 7);
  EXPECT_TRUE(b.knows_strand(7));
}

TEST(SpBagsDeath, DoubleJoinIsRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  sp_bags b;
  b.program_begin(0, 0);
  b.child_begin(1, 1);
  b.child_return(1);
  b.join_child(0, 1);
  // A second join of the same function is the multi-touch pattern MultiBags
  // cannot absorb; the invariant check must fire loudly, not corrupt bags.
  EXPECT_DEATH(b.join_child(0, 1), "P-bag");
}

TEST(SpBagsDeath, ReturnWithoutSBagRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  sp_bags b;
  b.program_begin(0, 0);
  b.child_begin(1, 1);
  b.child_return(1);
  EXPECT_DEATH(b.child_return(1), "S-bag");
}

TEST(SpBags, ManyFunctionsStressBagIdentity) {
  // 1000 futures created by main, joined in a random-ish order: every join
  // must flip exactly that function's strands.
  sp_bags b;
  b.program_begin(0, 0);
  const int n = 1000;
  for (int i = 1; i <= n; ++i) {
    b.child_begin(static_cast<rt::func_id>(i), static_cast<rt::strand_id>(i));
    b.child_return(static_cast<rt::func_id>(i));
  }
  for (int i = 1; i <= n; ++i) EXPECT_FALSE(b.in_s_bag(static_cast<rt::strand_id>(i)));
  // Join odd functions only.
  for (int i = 1; i <= n; i += 2) b.join_child(0, static_cast<rt::func_id>(i));
  for (int i = 1; i <= n; ++i)
    EXPECT_EQ(b.in_s_bag(static_cast<rt::strand_id>(i)), i % 2 == 1) << i;
}

// ----------------------------------------------- registered backend runs --
// On fork-join programs SP-bags and MultiBags coincide (a sync joins every
// outstanding child); both registered backends must produce the same
// verdicts on the same programs.
class ForkJoinBackends : public ::testing::TestWithParam<const char*> {};

TEST_P(ForkJoinBackends, SpawnContinuationRaceDetected) {
  frd::session s(GetParam());
  int x = 0;
  s.run([&] {
    s.runtime().spawn([&] { s.write(&x); });
    s.write(&x);
    s.runtime().sync();
  });
  EXPECT_TRUE(s.report().any());
  EXPECT_EQ(s.report().racy_granules().size(), 1u);
}

TEST_P(ForkJoinBackends, SyncOrdersTheChild) {
  frd::session s(GetParam());
  int x = 0;
  s.run([&] {
    s.runtime().spawn([&] { s.write(&x); });
    s.runtime().sync();
    s.write(&x);
  });
  EXPECT_FALSE(s.report().any());
}

TEST_P(ForkJoinBackends, NestedSpawnTreeDistinctCellsRaceFree) {
  frd::session s(GetParam());
  static std::array<int, 32> cells;
  s.run([&] {
    auto& rt = s.runtime();
    for (int i = 0; i < 16; ++i) {
      rt.spawn([&, i] { s.write(&cells[2 * i]); });
      s.write(&cells[2 * i + 1]);
    }
    rt.sync();
  });
  EXPECT_FALSE(s.report().any());
}

TEST_P(ForkJoinBackends, SiblingSpawnsRaceOnSharedCell) {
  frd::session s(GetParam());
  int x = 0;
  s.run([&] {
    auto& rt = s.runtime();
    rt.spawn([&] { s.write(&x); });
    rt.spawn([&] { s.write(&x); });
    rt.sync();
  });
  EXPECT_TRUE(s.report().any());
}

INSTANTIATE_TEST_SUITE_P(Backends, ForkJoinBackends,
                         ::testing::Values("sp-bags", "multibags"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace frd::detect
