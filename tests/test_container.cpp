// Tests for the .frdtz streaming compressed trace container: corpus-wide
// round-trip identity (pack -> replay matches goldens, unpack reproduces the
// flat bytes exactly), bounded reader memory, dedup, and the error paths a
// corrupted artifact must fail with *by name*.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "container/format.hpp"
#include "container/source.hpp"
#include "container/writer.hpp"
#include "corpus/golden.hpp"
#include "corpus/manifest.hpp"
#include "corpus/runner.hpp"
#include "support/prng.hpp"
#include "trace/codec.hpp"
#include "trace/event.hpp"

#ifndef FRD_CORPUS_DIR
#define FRD_CORPUS_DIR "corpus"
#endif

namespace frd::container {
namespace {

std::string corpus_dir() {
  if (const char* env = std::getenv("FRD_CORPUS_DIR")) return env;
  return FRD_CORPUS_DIR;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Packs the events of a flat FRDT byte string into a container byte string.
std::string pack_bytes(const std::string& flat) {
  std::istringstream in(flat, std::ios::binary);
  trace::trace_reader reader(in);
  std::ostringstream out(std::ios::binary);
  container_writer cw(out, reader.header());
  trace::trace_event e;
  while (reader.next(e)) cw.put(e);
  cw.finish();
  return out.str();
}

std::string unpack_bytes(const std::string& packed) {
  std::istringstream in(packed, std::ios::binary);
  std::ostringstream out(std::ios::binary);
  unpack(in, out);
  return out.str();
}

// Replays any trace byte string (flat or container) and returns the racy
// granule set.
std::set<std::uint64_t> replay_racy(const std::string& bytes,
                                    const std::string& backend) {
  std::istringstream in(bytes, std::ios::binary);
  auto src = trace::open_source(in);
  session s(session::options{
      .backend = backend,
      .granule = static_cast<std::size_t>(src->header().granule)});
  s.replay(*src);
  std::set<std::uint64_t> racy;
  for (const std::uintptr_t a : s.report().racy_granules())
    racy.insert(static_cast<std::uint64_t>(a));
  return racy;
}

// A synthetic flat trace whose accesses cycle a fixed address window many
// times: long identical byte stretches, so the CDC layer produces repeated
// chunks and the container's dedup path actually fires.
std::string repetitive_flat_trace(int repeats, int window) {
  std::ostringstream out(std::ios::binary);
  trace::trace_writer w(out, trace::trace_header{trace::kTraceVersion, 4});
  trace::trace_event e{};
  e.kind = trace::event_kind::program_begin;
  e.program_begin = {0, 0};
  w.put(e);
  for (int r = 0; r < repeats; ++r) {
    for (int i = 0; i < window; ++i) {
      e.kind = trace::event_kind::read;
      e.access = {0x1000u + static_cast<std::uint64_t>(i) * 4};
      w.put(e);
    }
  }
  e.kind = trace::event_kind::program_end;
  e.program_end = {0};
  w.put(e);
  w.finish();
  return out.str();
}

// Incompressible flat trace: random access addresses, so chunks store raw
// (stored == raw bytes) and a payload byte flip must surface as a DIGEST
// mismatch, not an lz decode failure.
std::string random_flat_trace(int n) {
  prng rng(404);
  std::ostringstream out(std::ios::binary);
  trace::trace_writer w(out, trace::trace_header{trace::kTraceVersion, 4});
  trace::trace_event e{};
  e.kind = trace::event_kind::program_begin;
  e.program_begin = {0, 0};
  w.put(e);
  for (int i = 0; i < n; ++i) {
    e.kind = trace::event_kind::read;
    e.access = {rng.next() & ~3ull};
    w.put(e);
  }
  e.kind = trace::event_kind::program_end;
  e.program_end = {0};
  w.put(e);
  w.finish();
  return out.str();
}

container_info info_of(const std::string& packed) {
  std::istringstream in(packed, std::ios::binary);
  return read_container_info(in);
}

// Rebuilds a container byte string with a doctored footer (the surgical
// corruption the error-path tests need).
std::string with_footer(const std::string& packed, const container_info& ci) {
  std::istringstream in(packed, std::ios::binary);
  const container_info orig = read_container_info(in);
  std::uint64_t footer_offset = sizeof(kMagic) + 1;  // header
  footer_offset += orig.payload_bytes();
  std::string out = packed.substr(0, footer_offset);
  std::vector<std::uint8_t> footer;
  encode_footer(footer, ci);
  out.append(reinterpret_cast<const char*>(footer.data()), footer.size());
  char trailer[kTrailerSize];
  for (int i = 0; i < 8; ++i)
    trailer[i] = static_cast<char>(footer_offset >> (8 * i));
  std::memcpy(trailer + 8, kTrailerMagic, 4);
  out.append(trailer, kTrailerSize);
  return out;
}

void expect_throws_naming(const std::string& bytes, const std::string& what) {
  try {
    std::istringstream in(bytes, std::ios::binary);
    container_source src(in);
    trace::trace_event e;
    while (src.next(e)) {
    }
    FAIL() << "expected trace_error naming '" << what << "'";
  } catch (const trace::trace_error& ex) {
    EXPECT_NE(std::string(ex.what()).find(what), std::string::npos)
        << "got: " << ex.what();
  }
}

// ------------------------------------------------------ corpus round trip --

TEST(ContainerCorpus, PackReplayUnpackIdentityOnEveryEntry) {
  const std::string dir = corpus_dir();
  const corpus::manifest m = corpus::load_manifest(dir + "/MANIFEST");
  ASSERT_GE(m.entries.size(), 17u);
  int compressed_entries = 0;
  for (const corpus::corpus_entry& e : m.entries) {
    SCOPED_TRACE(e.name);
    const std::string path = dir + "/" + e.trace_file;
    const std::string bytes = read_file(path);
    const corpus::golden_report gold =
        corpus::load_golden(dir + "/" + e.golden_file);

    std::string packed, flat;
    if (e.trace_file.ends_with(".frdtz")) {
      ++compressed_entries;
      packed = bytes;
      flat = unpack_bytes(packed);
      // Re-packing the inner stream reproduces the artifact byte-for-byte:
      // the container encoding is deterministic.
      EXPECT_EQ(pack_bytes(flat), packed);
      // The compressed artifact must actually be smaller than the flat one.
      EXPECT_LT(packed.size(), flat.size());
    } else {
      flat = bytes;
      packed = pack_bytes(flat);
      // Unpack reproduces the original .frdt exactly.
      EXPECT_EQ(unpack_bytes(packed), flat);
    }
    // Replaying the container yields the same race report as the golden.
    EXPECT_EQ(replay_racy(packed, "multibags+"), gold.racy_granules);
    // The footer agrees with the trace it wraps.
    const container_info ci = info_of(packed);
    EXPECT_EQ(ci.raw_size, flat.size());
    EXPECT_EQ(ci.event_count, gold.events);
  }
  EXPECT_GE(compressed_entries, 2)
      << "the corpus must carry at least two .frdtz entries";
}

TEST(ContainerCorpus, MillionEventEntriesAreMillionEvents) {
  const std::string dir = corpus_dir();
  for (const char* name : {"mm-structured-xl", "tracking-structured-xl"}) {
    SCOPED_TRACE(name);
    std::ifstream in(dir + "/" + name + std::string(".frdtz"),
                     std::ios::binary);
    ASSERT_TRUE(in.good());
    const container_info ci = read_container_info(in);
    EXPECT_GE(ci.event_count, 1000000u);
  }
}

// -------------------------------------------------------- streaming reader --

TEST(ContainerSource, PeakMemoryIsBoundedByChunkSize) {
  const std::string dir = corpus_dir();
  std::ifstream in(dir + "/mm-structured-xl.frdtz", std::ios::binary);
  ASSERT_TRUE(in.good());
  container_source src(in);
  trace::trace_event e;
  std::uint64_t n = 0;
  while (src.next(e)) ++n;
  EXPECT_EQ(n, src.info().event_count);
  EXPECT_GE(n, 1000000u);
  // One chunk's stored + decompressed bytes at most — O(chunk size), while
  // the inner stream is megabytes.
  const compress::chunk_params params{};
  EXPECT_LE(src.max_resident_bytes(), 2 * params.max_size);
  EXPECT_GT(src.info().raw_size, 10 * params.max_size);
}

TEST(ContainerSource, HeaderMatchesInnerTrace) {
  const std::string packed = pack_bytes(repetitive_flat_trace(4, 100));
  std::istringstream in(packed, std::ios::binary);
  container_source src(in);
  EXPECT_EQ(src.header().version, trace::kTraceVersion);
  EXPECT_EQ(src.header().granule, 4u);
  EXPECT_EQ(src.info().granule, 4u);
}

// ------------------------------------------------------------------ dedup --

TEST(ContainerWriter, RepetitiveStreamsDeduplicate) {
  // 40 passes over the same 2000-granule window: the inner byte stream
  // repeats long stretches, CDC resynchronizes, and most repeated chunks
  // must dedup to their first occurrence.
  const std::string flat = repetitive_flat_trace(40, 2000);
  const std::string packed = pack_bytes(flat);
  const container_info ci = info_of(packed);
  EXPECT_GT(ci.dedup_hits(), ci.chunks.size() / 2);
  EXPECT_GT(ci.dedup_saved_raw_bytes(), ci.raw_size / 2);
  EXPECT_LT(packed.size(), flat.size() / 4);
  // Identity still holds through the dedup path.
  EXPECT_EQ(unpack_bytes(packed), flat);
}

TEST(ContainerWriter, FirstEventIsMonotone) {
  const std::string packed = pack_bytes(repetitive_flat_trace(20, 3000));
  const container_info ci = info_of(packed);
  ASSERT_GT(ci.chunks.size(), 2u);
  std::uint64_t last = 0;
  for (const chunk_entry& c : ci.chunks) {
    EXPECT_GE(c.first_event, last);
    last = c.first_event;
  }
  EXPECT_LE(last, ci.event_count);
}

// ------------------------------------------------------------- seek index --

// The v2 footer's per-chunk first_offset must always point inside (or at
// the end of) its chunk, and a fresh pack of anything is seekable.
TEST(ContainerSeek, V2FootersAreSeekable) {
  const std::string packed = pack_bytes(repetitive_flat_trace(20, 3000));
  const container_info ci = info_of(packed);
  EXPECT_EQ(ci.container_version, kContainerVersion);
  EXPECT_TRUE(ci.seekable());
  for (const chunk_entry& c : ci.chunks) {
    EXPECT_NE(c.first_offset, kNoFirstOffset);
    EXPECT_LE(c.first_offset, c.raw_size);
  }
}

// seek_to_event(n) must land exactly where a linear decode of n events
// lands, for every interesting n: chunk starts, mid-chunk, 0, the end.
TEST(ContainerSeek, SeekMatchesLinearDecode) {
  const std::string packed = pack_bytes(repetitive_flat_trace(20, 3000));
  const container_info ci = info_of(packed);
  ASSERT_GT(ci.chunks.size(), 3u);

  // Reference: the full event sequence by linear decode.
  std::vector<trace::trace_event> all;
  {
    std::istringstream in(packed, std::ios::binary);
    container_source src(in);
    trace::trace_event e;
    while (src.next(e)) all.push_back(e);
  }
  ASSERT_EQ(all.size(), ci.event_count);

  std::vector<std::uint64_t> targets = {0, 1, ci.event_count / 2,
                                        ci.event_count - 1, ci.event_count};
  for (std::size_t i = 1; i < ci.chunks.size() && i < 4; ++i) {
    targets.push_back(ci.chunks[i].first_event);      // chunk boundary
    targets.push_back(ci.chunks[i].first_event + 7);  // a bit past it
  }
  for (const std::uint64_t n : targets) {
    std::istringstream in(packed, std::ios::binary);
    container_source src(in);
    src.seek_to_event(n);
    trace::trace_event e;
    std::uint64_t at = n;
    while (src.next(e)) {
      ASSERT_LT(at, all.size()) << "seek(" << n << ") overran the trace";
      EXPECT_EQ(e.kind, all[at].kind)
          << "seek(" << n << ") diverged at event " << at;
      if (e.kind == trace::event_kind::read) {
        EXPECT_EQ(e.access.addr, all[at].access.addr)
            << "seek(" << n << ") diverged at event " << at;
      }
      ++at;
    }
    EXPECT_EQ(at, all.size()) << "seek(" << n << ") delivered a short tail";
  }
}

// Seeking backwards — including after the source already hit end-of-stream
// (the eofbit case) — must work on a v2 container, repeatedly.
TEST(ContainerSeek, BackwardSeekAfterEofRewinds) {
  const std::string packed = pack_bytes(repetitive_flat_trace(20, 3000));
  std::istringstream in(packed, std::ios::binary);
  container_source src(in);
  trace::trace_event e;
  std::uint64_t first_pass = 0;
  while (src.next(e)) ++first_pass;
  for (int round = 0; round < 3; ++round) {
    src.seek_to_event(0);
    std::uint64_t n = 0;
    while (src.next(e)) ++n;
    EXPECT_EQ(n, first_pass) << "rewind round " << round;
  }
  EXPECT_THROW(src.seek_to_event(first_pass + 1), trace::trace_error);
}

// A genuine version-1 container (no per-chunk offsets in the footer) still
// decodes linearly and seeks forward — but a backward seek must refuse with
// advice to repack, not silently rescan garbage.
TEST(ContainerSeek, V1ContainersReadButSeekForwardOnly) {
  const std::string packed = pack_bytes(repetitive_flat_trace(20, 3000));
  container_info ci = info_of(packed);
  ci.container_version = 1;  // encode_footer emits the v1 layout for this
  std::string v1 = with_footer(packed, ci);
  v1[sizeof(kMagic)] = 1;  // header version byte

  const container_info parsed = info_of(v1);
  EXPECT_EQ(parsed.container_version, 1u);
  EXPECT_FALSE(parsed.seekable());
  for (const chunk_entry& c : parsed.chunks) {
    EXPECT_EQ(c.first_offset, kNoFirstOffset);
  }

  std::istringstream in(v1, std::ios::binary);
  container_source src(in);
  src.seek_to_event(100);  // forward: linear decode-and-discard
  trace::trace_event e;
  ASSERT_TRUE(src.next(e));
  try {
    src.seek_to_event(5);
    FAIL() << "backward seek without an index must throw";
  } catch (const trace::trace_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("repack"), std::string::npos)
        << "error should tell the user the fix: " << ex.what();
  }
  // The whole v1 trace still replays: decode from where we are to the end.
  std::uint64_t rest = 1;  // the event read above
  while (src.next(e)) ++rest;
  EXPECT_EQ(rest + 100, parsed.event_count);
}

TEST(ContainerWriter, EmptyTraceRoundTrips) {
  std::ostringstream out(std::ios::binary);
  {
    container_writer cw(out, trace::trace_header{trace::kTraceVersion, 8});
    cw.finish();
  }
  const std::string packed = out.str();
  std::istringstream in(packed, std::ios::binary);
  container_source src(in);
  EXPECT_EQ(src.header().granule, 8u);
  trace::trace_event e;
  EXPECT_FALSE(src.next(e));
  EXPECT_EQ(src.info().event_count, 0u);
}

// ------------------------------------------------------------ error paths --

TEST(ContainerErrors, BadMagic) {
  std::string packed = pack_bytes(repetitive_flat_trace(2, 50));
  packed[0] = 'X';
  expect_throws_naming(packed, "bad magic");
}

TEST(ContainerErrors, VersionSkew) {
  std::string packed = pack_bytes(repetitive_flat_trace(2, 50));
  packed[4] = 3;  // version varint: one past anything this build reads
  expect_throws_naming(packed, "unsupported trace container version 3");
}

TEST(ContainerErrors, TruncatedTrailer) {
  const std::string packed = pack_bytes(repetitive_flat_trace(2, 50));
  expect_throws_naming(packed.substr(0, packed.size() - 1),
                       "trailer magic missing");
  expect_throws_naming(packed.substr(0, packed.size() - kTrailerSize),
                       "trailer magic missing");
  expect_throws_naming(packed.substr(0, 8), "truncated container");
}

TEST(ContainerErrors, TruncatedFooter) {
  // Rebuild the trailer so it points into the footer but the footer's tail
  // is gone: the chunk table runs out mid-entry.
  const std::string packed = pack_bytes(repetitive_flat_trace(8, 800));
  const container_info ci = info_of(packed);
  std::string cut = with_footer(packed, ci);
  // Remove 8 bytes from the footer body, keeping the trailer intact.
  const std::size_t trailer_at = cut.size() - kTrailerSize;
  std::string broken = cut.substr(0, trailer_at - 8) + cut.substr(trailer_at);
  // The recorded footer offset still points at the footer start; the blob is
  // 8 bytes short, so parsing must fail with a named truncation.
  expect_throws_naming(broken, "truncated");
}

TEST(ContainerErrors, ChunkIndexPastEof) {
  const std::string packed = pack_bytes(repetitive_flat_trace(4, 400));
  container_info ci = info_of(packed);
  ASSERT_FALSE(ci.chunks.empty());
  ci.chunks[0].offset = 1u << 30;  // far past the payload
  expect_throws_naming(with_footer(packed, ci),
                       "points past the end of the container payload");
}

TEST(ContainerErrors, DigestMismatch) {
  // Raw-stored chunks (incompressible content): a payload flip is caught by
  // the SHA-1, not by the lz decoder.
  const std::string flat = random_flat_trace(4000);
  std::string packed = pack_bytes(flat);
  const container_info ci = info_of(packed);
  ASSERT_FALSE(ci.chunks.empty());
  ASSERT_EQ(ci.chunks[0].encoding, chunk_encoding::raw)
      << "random content should store raw";
  packed[ci.chunks[0].offset + 10] ^= 0x01;
  expect_throws_naming(packed, "digest mismatch");
}

TEST(ContainerErrors, CorruptCompressedChunk) {
  // An lz-encoded chunk whose bytes are damaged fails to decompress (or
  // decompresses to the wrong size/digest) — named either way.
  const std::string packed = pack_bytes(repetitive_flat_trace(20, 500));
  const container_info ci = info_of(packed);
  ASSERT_FALSE(ci.chunks.empty());
  ASSERT_EQ(ci.chunks[0].encoding, chunk_encoding::lz);
  std::string broken = packed;
  broken[ci.chunks[0].offset] ^= 0xFF;
  try {
    (void)unpack_bytes(broken);
    FAIL() << "corrupt chunk must not unpack";
  } catch (const trace::trace_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("chunk 0"), std::string::npos)
        << "got: " << ex.what();
  }
}

TEST(ContainerErrors, EventCountSkew) {
  const std::string packed = pack_bytes(repetitive_flat_trace(4, 400));
  container_info ci = info_of(packed);
  ci.event_count += 1;
  expect_throws_naming(with_footer(packed, ci), "declares");
}

TEST(ContainerErrors, GranuleSkew) {
  const std::string packed = pack_bytes(repetitive_flat_trace(4, 400));
  container_info ci = info_of(packed);
  ci.granule = 16;
  expect_throws_naming(with_footer(packed, ci),
                       "but the inner trace header says");
}

TEST(ContainerErrors, RawSizeSkew) {
  const std::string packed = pack_bytes(repetitive_flat_trace(4, 400));
  container_info ci = info_of(packed);
  ci.raw_size += 3;
  expect_throws_naming(with_footer(packed, ci), "chunk raw sizes cover");
}

}  // namespace
}  // namespace frd::container
