// MultiBags+ sync-case coverage: programs engineered to drive each branch of
// the paper's Figure 4 sync handling (lines 23-46), each cross-checked
// against the exact oracle on every executed strand pair.
//
//   case 1 (lines 29-32): neither joined subdag carries non-SP edges;
//   case 2 (lines 33-40): both subdags carry non-SP edges;
//   case 3 (lines 41-46): exactly one side does (both polarities).
#include <gtest/gtest.h>

#include <vector>

#include "detect/multibags_plus.hpp"
#include "graph/oracle.hpp"
#include "runtime/events.hpp"
#include "runtime/serial.hpp"

namespace frd::detect {
namespace {

struct rig {
  multibags_plus mbp;
  graph::online_oracle oracle;
  rt::listener_mux mux;
  rt::serial_runtime rt;
  std::vector<rt::strand_id> seen;

  rig() : rt(&mux) {
    mux.add(&mbp);
    mux.add(&oracle);
  }

  void mark() { seen.push_back(rt.current_strand()); }

  // Checks every recorded strand's query answer against the oracle at the
  // current execution point.
  void check_all() {
    const rt::strand_id cur = rt.current_strand();
    for (rt::strand_id s : seen) {
      if (s == cur) continue;
      ASSERT_EQ(mbp.view().precedes_current(s), oracle.precedes(s, cur))
          << "strand " << s << " vs current " << cur;
    }
  }
};

TEST(MbpSyncCases, Case1PureSpSubdagsFoldAway) {
  rig r;
  r.rt.run([&] {
    r.mark();
    r.rt.spawn([&] {  // pure-SP child (no futures inside)
      r.mark();
      r.rt.spawn([&] { r.mark(); });
      r.rt.sync();  // inner case-1
      r.mark();
      r.check_all();
    });
    r.mark();
    r.rt.sync();  // outer case-1
    r.mark();
    r.check_all();
  });
  EXPECT_EQ(r.mbp.r().size(), 1u)
      << "a pure fork-join program needs only the root attached set";
}

TEST(MbpSyncCases, Case2BothSidesCarryFutures) {
  rig r;
  r.rt.run([&] {
    r.mark();
    rt::future<int> fa, fb;
    r.rt.spawn([&] {  // child side: creates and joins a future
      r.mark();
      fa = r.rt.create_future([&] {
        r.mark();
        return 1;
      });
      fa.get();
      r.mark();
      r.check_all();
    });
    // continuation side: also creates and joins a future
    fb = r.rt.create_future([&] {
      r.mark();
      return 2;
    });
    fb.get();
    r.mark();
    r.check_all();
    r.rt.sync();  // both t1 and t2 attached -> case 2
    r.mark();
    r.check_all();
  });
  EXPECT_GT(r.mbp.r().size(), 4u);
}

TEST(MbpSyncCases, Case3ChildSideAttached) {
  rig r;
  r.rt.run([&] {
    r.mark();
    rt::future<int> f;
    r.rt.spawn([&] {  // child carries the non-SP edge
      r.mark();
      f = r.rt.create_future([&] {
        r.mark();
        return 3;
      });
      f.get();
      r.mark();
    });
    r.mark();  // continuation is pure (unattached sink)
    r.rt.sync();
    r.mark();
    r.check_all();
  });
}

TEST(MbpSyncCases, Case3ContinuationSideAttached) {
  rig r;
  r.rt.run([&] {
    r.mark();
    r.rt.spawn([&] { r.mark(); });  // pure child
    auto f = r.rt.create_future([&] {  // continuation carries the future
      r.mark();
      return 4;
    });
    f.get();
    r.mark();
    r.rt.sync();
    r.mark();
    r.check_all();
  });
}

TEST(MbpSyncCases, MultiChildSyncMixedAttachment) {
  // Three children: pure, future-bearing, pure — the binary decomposition
  // walks case 3 / case 1 with virtual join strands in between.
  rig r;
  r.rt.run([&] {
    r.mark();
    r.rt.spawn([&] { r.mark(); });
    r.rt.spawn([&] {
      r.mark();
      auto f = r.rt.create_future([&] {
        r.mark();
        return 5;
      });
      f.get();
      r.mark();
    });
    r.rt.spawn([&] { r.mark(); });
    r.mark();
    r.rt.sync();
    r.mark();
    r.check_all();
  });
}

TEST(MbpSyncCases, FutureEscapingThroughNestedSyncs) {
  // A future created deep inside a spawned child escapes two sync scopes and
  // is joined by main much later; queries must stay exact throughout.
  rig r;
  rt::future<int> escapee;
  r.rt.run([&] {
    r.mark();
    r.rt.spawn([&] {
      r.mark();
      r.rt.spawn([&] {
        r.mark();
        escapee = r.rt.create_future([&] {
          r.mark();
          return 6;
        });
      });
      r.rt.sync();
      r.mark();
      r.check_all();  // escapee still parallel here
    });
    r.rt.sync();
    r.mark();
    r.check_all();  // and here
    escapee.get();
    r.mark();
    r.check_all();  // ordered from here on
  });
}

TEST(MbpSyncCases, MultiTouchAcrossParallelBranches) {
  // One future joined from three logically parallel places.
  rig r;
  r.rt.run([&] {
    r.mark();
    auto f = r.rt.create_future([&] {
      r.mark();
      return 7;
    });
    r.rt.spawn([&] {
      f.get();
      r.mark();
      r.check_all();
    });
    r.rt.spawn([&] {
      f.get();
      r.mark();
      r.check_all();
    });
    f.get();
    r.mark();
    r.check_all();
    r.rt.sync();
    r.mark();
    r.check_all();
  });
}

TEST(MbpSyncCases, DeepAlternatingSpawnFutureLadder) {
  // Alternate spawn and future levels 12 deep; verify at every unwind step.
  rig r;
  std::function<void(int)> ladder = [&](int depth) {
    r.mark();
    if (depth == 0) return;
    if (depth % 2 == 0) {
      r.rt.spawn([&, depth] { ladder(depth - 1); });
      r.rt.sync();
    } else {
      auto f = r.rt.create_future([&, depth]() -> int {
        ladder(depth - 1);
        return depth;
      });
      f.get();
    }
    r.mark();
    r.check_all();
  };
  r.rt.run([&] { ladder(12); });
}

}  // namespace
}  // namespace frd::detect
