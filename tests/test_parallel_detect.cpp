// Parallel replay detection (detector_config::workers > 1).
//
// The contract under test is BYTE-IDENTITY: a parallel replay must produce
// the same race report, the same retained-race encounter order, and the same
// query-plane counters as the serial detector — the shard-hash partition and
// the encounter-order merge are an implementation detail the report must not
// leak. Three layers hold it honest:
//
//   the conformance cube   every corpus entry through every eligible backend
//                          on the sharded store under workers 2 and 4,
//                          against the same goldens the serial cube uses.
//   the XL differential    a million-event entry replayed serially and with
//                          workers=4 at the SAME batch size, comparing
//                          retained races element-wise plus every query-
//                          plane counter — stricter than the golden, which
//                          only sees the racy-granule set.
//   the store guard        sharded_store's parallel-mutation bracket turns
//                          cross-shard walks during a worker phase into
//                          store_error instead of a data race.
//
// The corpus directory is baked in at compile time (FRD_CORPUS_DIR, set by
// CMake to <repo>/corpus) and overridable with the environment variable of
// the same name.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "corpus/golden.hpp"
#include "corpus/manifest.hpp"
#include "corpus/runner.hpp"
#include "detect/types.hpp"
#include "shadow/sharded_store.hpp"
#include "shadow/store.hpp"
#include "trace/event.hpp"

namespace frd {
namespace {

std::string corpus_dir() {
  if (const char* env = std::getenv("FRD_CORPUS_DIR")) return env;
  return FRD_CORPUS_DIR;
}

const corpus::manifest& corpus_manifest() {
  static const corpus::manifest m =
      corpus::load_manifest(corpus_dir() + "/MANIFEST");
  return m;
}

// ------------------------------------------------------ conformance cube --

struct parallel_case {
  std::string entry;
  std::string backend;
  unsigned workers;
};

std::vector<parallel_case> all_cases() {
  std::vector<parallel_case> out;
  try {
    for (const corpus::corpus_entry& e : corpus_manifest().entries) {
      for (const std::string& b : corpus::eligible_backends(e.futures)) {
        for (unsigned w : {2u, 4u}) {
          out.push_back({e.name, b, w});
        }
      }
    }
  } catch (const std::exception&) {
    // Static-init time (ValuesIn below): degrade to zero cases and let
    // the serial conformance suite report the corpus path problem.
  }
  return out;
}

class ParallelConformance : public ::testing::TestWithParam<parallel_case> {};

TEST_P(ParallelConformance, ReplayMatchesTheSerialGolden) {
  const parallel_case& c = GetParam();
  const corpus::corpus_entry* e = corpus_manifest().find(c.entry);
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape =
      corpus::load_trace(corpus_dir() + "/" + e->trace_file);
  const corpus::golden_report golden =
      corpus::load_golden(corpus_dir() + "/" + e->golden_file);

  const std::vector<std::string> details =
      corpus::check_backend(tape, golden, c.backend, "sharded", c.workers);
  for (const std::string& d : details) {
    ADD_FAILURE() << "backend '" << c.backend << "' with workers=" << c.workers
                  << " diverged on corpus entry '" << c.entry << "': " << d;
  }
}

std::string case_name(const ::testing::TestParamInfo<parallel_case>& info) {
  std::string s = info.param.entry + "_" + info.param.backend + "_w" +
                  std::to_string(info.param.workers);
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Manifest, ParallelConformance,
                         ::testing::ValuesIn(all_cases()), case_name);

// ------------------------------------------------------- XL differential --

session::options xl_options(std::size_t granule, unsigned workers,
                            std::size_t batch) {
  return session::options{.backend = "multibags+",
                          .granule = granule,
                          .shadow_store = "sharded",
                          .shadow_shard_bits = 4,
                          .replay_batch = batch,
                          .detect_workers = workers};
}

// Serial vs workers=4 on a million-event entry at the SAME explicit batch
// size, so the only varying input is the worker count. Element-wise retained
// races catch an encounter-order perturbation the racy-granule golden would
// absorb; identical query-plane counters prove the merged candidate stream
// hit the epoch cache and issued batched view queries exactly like serial
// detection did.
TEST(ParallelDifferential, WorkerCountIsInvisibleInEveryObservable) {
  const corpus::corpus_entry* e = corpus_manifest().find("tracking-structured-xl");
  ASSERT_NE(e, nullptr) << "the XL differential needs the million-event entry";
  trace::memory_trace tape =
      corpus::load_trace(corpus_dir() + "/" + e->trace_file);

  session serial(xl_options(tape.header().granule, 1, 1024));
  serial.replay(tape);
  tape.rewind();
  session parallel(xl_options(tape.header().granule, 4, 1024));
  parallel.replay(tape);
  tape.rewind();

  EXPECT_EQ(serial.report().total(), parallel.report().total());
  EXPECT_EQ(serial.report().racy_granules(), parallel.report().racy_granules());
  const std::vector<detect::race>& sr = serial.report().retained();
  const std::vector<detect::race>& pr = parallel.report().retained();
  ASSERT_EQ(sr.size(), pr.size());
  for (std::size_t i = 0; i < sr.size(); ++i) {
    EXPECT_EQ(sr[i].granule_addr, pr[i].granule_addr) << "race " << i;
    EXPECT_EQ(sr[i].prior, pr[i].prior) << "race " << i;
    EXPECT_EQ(sr[i].prior_kind, pr[i].prior_kind) << "race " << i;
    EXPECT_EQ(sr[i].current, pr[i].current) << "race " << i;
    EXPECT_EQ(sr[i].current_kind, pr[i].current_kind) << "race " << i;
  }
  EXPECT_EQ(serial.access_count(), parallel.access_count());
  EXPECT_EQ(serial.get_count(), parallel.get_count());
  EXPECT_EQ(serial.query_stats().lookups, parallel.query_stats().lookups);
  EXPECT_EQ(serial.query_stats().cache_hits, parallel.query_stats().cache_hits);
  EXPECT_EQ(serial.query_stats().batches, parallel.query_stats().batches);
  EXPECT_EQ(serial.query_stats().strands, parallel.query_stats().strands);
}

// replay_batch = 0 resolves to the 4096-run parallel default; the golden
// must hold there too (batch size is report-invisible by contract).
TEST(ParallelDifferential, AutoBatchMatchesTheGolden) {
  const corpus::corpus_entry* e = corpus_manifest().find("mm-structured-xl");
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape =
      corpus::load_trace(corpus_dir() + "/" + e->trace_file);
  const corpus::golden_report golden =
      corpus::load_golden(corpus_dir() + "/" + e->golden_file);

  session s(xl_options(tape.header().granule, 4, /*batch=*/0));
  s.replay(tape);
  tape.rewind();
  EXPECT_EQ(s.report().racy_granules().size(), golden.racy_granules.size());
  EXPECT_EQ(s.access_count(), golden.accesses);
  EXPECT_EQ(s.get_count(), golden.gets);
}

// ----------------------------------------------------------- store guard --

// Cross-shard walks during a parallel worker phase would race worker-local
// mutation; the bracket turns them into store_error AT the caller instead.
TEST(ShardedStoreGuard, CrossShardWalksThrowDuringAParallelPhase) {
  shadow::sharded_store store(
      shadow::store_config{.page_bits = 8, .granule_shift = 2, .shard_bits = 2});
  store.write_step(0x1000, rt::strand_id{1}, [](rt::strand_id, bool) {});

  store.begin_parallel_mutation();
  EXPECT_THROW((void)store.peek(0x1000), shadow::store_error);
  EXPECT_THROW((void)store.page_count(), shadow::store_error);
  EXPECT_THROW((void)store.bytes_reserved(), shadow::store_error);
  EXPECT_THROW((void)store.shard_page_counts(), shadow::store_error);
  // Per-granule steps ARE the worker phase — they must keep working.
  EXPECT_NO_THROW((void)store.read_step(0x1000, rt::strand_id{2}));
  store.end_parallel_mutation();

  // Quiescent again: the walks come back, and they see the phase's writes.
  EXPECT_NO_THROW((void)store.peek(0x1000));
  EXPECT_GE(store.page_count(), 1u);
  EXPECT_GT(store.bytes_reserved(), 0u);
  EXPECT_EQ(store.shard_page_counts().size(), store.shard_count());
}

// ---------------------------------------------------------- config errors --

TEST(ParallelConfig, RejectsUnshardedStores) {
  // hashed-page has no shard partition to hand workers; failing at session
  // construction beats detecting serially while claiming --workers 4.
  EXPECT_THROW(session(session::options{.shadow_store = "hashed-page",
                                        .detect_workers = 4}),
               shadow::store_error);
  EXPECT_THROW(session(session::options{.shadow_store = "compact",
                                        .detect_workers = 2}),
               shadow::store_error);
}

TEST(ParallelConfig, RejectsASingleShard) {
  EXPECT_THROW(session(session::options{.shadow_store = "sharded",
                                        .shadow_shard_bits = 0,
                                        .detect_workers = 2}),
               shadow::store_error);
}

TEST(ParallelConfig, RejectsOutOfRangeWorkerCounts) {
  EXPECT_THROW(session(session::options{.shadow_store = "sharded",
                                        .detect_workers = 0}),
               detect::backend_error);
  EXPECT_THROW(session(session::options{.shadow_store = "sharded",
                                        .detect_workers = 257}),
               detect::backend_error);
}

TEST(ParallelConfig, OneWorkerNeedsNoShardedStore) {
  EXPECT_NO_THROW(session(session::options{.detect_workers = 1}));
}

// ------------------------------------------------------------ peak memory --

// memory_stats::peak_* is a true high-water mark: never below any
// checkpoint-time observation and never below the final snapshot. The
// checkpoint itself doubles as the epoch-barrier proof — it reads
// memory_stats() (a cross-shard walk) mid-replay under workers=4, which
// only works because the detector closes the parallel phase before every
// flush.
TEST(PeakMemory, PeakIsAHighWaterMarkAcrossCheckpoints) {
  const corpus::corpus_entry* e = corpus_manifest().find("mm-structured-xl");
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape =
      corpus::load_trace(corpus_dir() + "/" + e->trace_file);

  session s(xl_options(tape.header().granule, 4, /*batch=*/0));
  std::size_t max_seen_total = 0;
  std::uint64_t checkpoints = 0;
  session::replay_checkpoint cp;
  cp.every_events = 4096;
  cp.fn = [&](std::uint64_t, std::uint64_t) {
    const detect::memory_stats m = s.memory_stats();
    if (m.total_bytes() > max_seen_total) max_seen_total = m.total_bytes();
    EXPECT_GE(m.peak_total_bytes, m.total_bytes());
    EXPECT_GE(m.peak_store_bytes, m.store_bytes);
    ++checkpoints;
  };
  s.replay(tape, cp);
  tape.rewind();

  ASSERT_GT(checkpoints, 0u) << "the XL entry must actually hit checkpoints";
  const detect::memory_stats final_stats = s.memory_stats();
  EXPECT_GT(max_seen_total, 0u);
  EXPECT_GE(final_stats.peak_total_bytes, max_seen_total);
  EXPECT_GE(final_stats.peak_total_bytes, final_stats.total_bytes());
  EXPECT_GE(final_stats.peak_store_bytes, final_stats.store_bytes);
}

// reset() must clear the high-water marks: a pooled session serving a small
// stream after a huge one must not charge the small stream for the huge
// one's peak (the serve budget reads the peak).
TEST(PeakMemory, ResetClearsThePeaks) {
  const corpus::corpus_entry* e = corpus_manifest().find("mm-structured-xl");
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape =
      corpus::load_trace(corpus_dir() + "/" + e->trace_file);

  session s(xl_options(tape.header().granule, 4, /*batch=*/0));
  s.replay(tape);
  tape.rewind();
  const std::size_t peak_before = s.memory_stats().peak_total_bytes;
  ASSERT_GT(peak_before, 0u);

  s.reset();
  const detect::memory_stats after = s.memory_stats();
  EXPECT_EQ(after.peak_store_bytes, 0u)
      << "a fresh store has no reservation; a surviving peak is stale";
  EXPECT_LT(after.peak_total_bytes, peak_before);
}

}  // namespace
}  // namespace frd
