// Unit tests for the support substrate: arena, bitvec, prng, stats, table.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "support/arena.hpp"
#include "support/bitvec.hpp"
#include "support/prng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace frd {
namespace {

// ---------------------------------------------------------------- arena ---
TEST(Arena, HandsOutDistinctAlignedStorage) {
  arena a;
  std::set<void*> seen;
  for (int i = 0; i < 1000; ++i) {
    void* p = a.allocate(24, 8);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate pointer";
  }
  EXPECT_GE(a.bytes_allocated(), 24000u);
}

TEST(Arena, PointersStableAcrossGrowth) {
  arena a(64);  // tiny blocks force many growths
  struct rec {
    int x;
    int y;
  };
  std::vector<rec*> ptrs;
  for (int i = 0; i < 500; ++i) ptrs.push_back(a.create<rec>(rec{i, -i}));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(ptrs[i]->x, i);
    EXPECT_EQ(ptrs[i]->y, -i);
  }
  EXPECT_GT(a.blocks(), 1u);
}

TEST(Arena, LargeAllocationExceedingBlockSize) {
  arena a(128);
  void* p = a.allocate(10000, 16);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 10000);  // must be fully usable
}

TEST(Arena, ReleaseResetsEverything) {
  arena a;
  a.allocate(100, 8);
  a.release();
  EXPECT_EQ(a.bytes_allocated(), 0u);
  EXPECT_EQ(a.blocks(), 0u);
  void* p = a.allocate(16, 8);  // usable after release
  EXPECT_NE(p, nullptr);
}

TEST(Arena, MixedAlignments) {
  arena a;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    void* p = a.allocate(align * 3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
  }
}

// --------------------------------------------------------------- bitvec ---
TEST(Bitvec, SetTestReset) {
  bitvec v(200);
  EXPECT_FALSE(v.test(0));
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(199);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(199));
  EXPECT_FALSE(v.test(100));
  v.reset(63);
  EXPECT_FALSE(v.test(63));
  EXPECT_EQ(v.count(), 3u);
}

TEST(Bitvec, OrWithGrowsToOtherSize) {
  bitvec a(10), b(300);
  b.set(250);
  a.or_with(b);
  EXPECT_GE(a.size(), 300u);
  EXPECT_TRUE(a.test(250));
}

TEST(Bitvec, OrWithShorterOther) {
  bitvec a(300), b(10);
  b.set(5);
  a.set(200);
  a.or_with(b);
  EXPECT_TRUE(a.test(5));
  EXPECT_TRUE(a.test(200));
}

TEST(Bitvec, Intersects) {
  bitvec a(128), b(128);
  a.set(70);
  b.set(71);
  EXPECT_FALSE(a.intersects(b));
  b.set(70);
  EXPECT_TRUE(a.intersects(b));
}

TEST(Bitvec, ForEachSetVisitsInOrder) {
  bitvec v(500);
  const std::size_t expect[] = {3, 64, 65, 128, 499};
  for (std::size_t i : expect) v.set(i);
  std::vector<std::size_t> got;
  v.for_each_set([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, std::vector<std::size_t>(std::begin(expect), std::end(expect)));
}

TEST(Bitvec, EqualityIgnoresTrailingZeros) {
  bitvec a(64), b(640);
  a.set(10);
  b.set(10);
  EXPECT_TRUE(a == b);
  b.set(600);
  EXPECT_FALSE(a == b);
}

TEST(Bitvec, CountAndAny) {
  bitvec v(1000);
  EXPECT_FALSE(v.any());
  for (std::size_t i = 0; i < 1000; i += 7) v.set(i);
  EXPECT_TRUE(v.any());
  EXPECT_EQ(v.count(), (1000 + 6) / 7);
  v.clear();
  EXPECT_FALSE(v.any());
}

// ----------------------------------------------------------------- prng ---
TEST(Prng, DeterministicPerSeed) {
  prng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  prng a2(42);
  for (int i = 0; i < 100; ++i) differs |= a2.next() != c.next();
  EXPECT_TRUE(differs);
}

TEST(Prng, BelowStaysInRange) {
  prng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Prng, RangeInclusiveBounds) {
  prng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto x = r.range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, Uniform01InUnitInterval) {
  prng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// ---------------------------------------------------------------- stats ---
TEST(Stats, MeanStddevGeomean) {
  const std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_NEAR(mean(xs), 7.0 / 3, 1e-12);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  EXPECT_NEAR(stddev(std::vector<double>{2, 4, 4, 4, 5, 5, 7, 9}),
              2.13808993529939, 1e-9);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, GeomeanMatchesPaperStyleOverheads) {
  // The paper reports geometric-mean overheads across benchmarks (§6).
  const std::vector<double> overheads{24.77, 22.00, 33.61, 24.54, 8.02};
  const double g = geomean(overheads);
  EXPECT_GT(g, 18.0);
  EXPECT_LT(g, 25.0);
}

// ---------------------------------------------------------------- table ---
TEST(Table, RendersAlignedColumns) {
  text_table t({"bench", "baseline", "full"});
  t.add_row({"lcs", "2.19", "54.27 (24.77x)"});
  t.add_row({"sw", "14.78", "325.10 (22.00x)"});
  const std::string out = t.render();
  EXPECT_NE(out.find("bench"), std::string::npos);
  EXPECT_NE(out.find("54.27 (24.77x)"), std::string::npos);
  // All rows share the same width.
  std::size_t prev = std::string::npos;
  std::size_t pos = 0;
  int lines = 0;
  while (pos < out.size()) {
    std::size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    ++lines;
    pos = nl + 1;
    (void)prev;
  }
  EXPECT_EQ(lines, 4);  // header + rule + 2 rows
}

TEST(Table, Formatters) {
  EXPECT_EQ(text_table::seconds(1.23456), "1.235");
  EXPECT_EQ(text_table::multiplier(24.773), "24.77x");
  EXPECT_EQ(text_table::seconds_with_overhead(54.27, 2.19), "54.270 (24.78x)");
}

}  // namespace
}  // namespace frd
