// Unit + property tests for R's incremental transitive closure.
#include <gtest/gtest.h>

#include <vector>

#include "detect/rgraph.hpp"
#include "support/prng.hpp"

namespace frd::detect {
namespace {

TEST(Rgraph, EmptyAndSelf) {
  rgraph r;
  const auto a = r.add_node();
  const auto b = r.add_node();
  EXPECT_FALSE(r.reaches(a, b));
  EXPECT_FALSE(r.reaches(a, a)) << "strict reachability";
}

TEST(Rgraph, DirectArc) {
  rgraph r;
  const auto a = r.add_node();
  const auto b = r.add_node();
  r.add_arc(a, b);
  EXPECT_TRUE(r.reaches(a, b));
  EXPECT_FALSE(r.reaches(b, a));
}

TEST(Rgraph, TransitiveThroughChain) {
  rgraph r;
  std::vector<rgraph::node> n;
  for (int i = 0; i < 50; ++i) n.push_back(r.add_node());
  for (int i = 0; i + 1 < 50; ++i) r.add_arc(n[i], n[i + 1]);
  for (int i = 0; i < 50; ++i)
    for (int j = 0; j < 50; ++j)
      EXPECT_EQ(r.reaches(n[i], n[j]), i < j) << i << "->" << j;
}

TEST(Rgraph, ArcBetweenExistingClosedSubgraphs) {
  // The MultiBags+ sync case adds arcs between nodes that both already have
  // predecessors and successors; closure must propagate both ways.
  rgraph r;
  const auto a0 = r.add_node(), a1 = r.add_node(), a2 = r.add_node();
  const auto b0 = r.add_node(), b1 = r.add_node(), b2 = r.add_node();
  r.add_arc(a0, a1);
  r.add_arc(a1, a2);
  r.add_arc(b0, b1);
  r.add_arc(b1, b2);
  EXPECT_FALSE(r.reaches(a0, b2));
  r.add_arc(a2, b0);  // bridge
  for (auto x : {a0, a1, a2})
    for (auto y : {b0, b1, b2}) EXPECT_TRUE(r.reaches(x, y));
  EXPECT_FALSE(r.reaches(b0, a2));
}

TEST(Rgraph, RedundantArcsAreCheap) {
  rgraph r;
  const auto a = r.add_node(), b = r.add_node(), c = r.add_node();
  r.add_arc(a, b);
  r.add_arc(b, c);
  const auto arcs = r.stats().arcs;
  r.add_arc(a, c);  // already implied
  EXPECT_EQ(r.stats().arcs, arcs);
  EXPECT_EQ(r.stats().redundant_arcs, 1u);
}

TEST(Rgraph, SelfArcIgnored) {
  rgraph r;
  const auto a = r.add_node();
  r.add_arc(a, a);
  EXPECT_FALSE(r.reaches(a, a));
  EXPECT_EQ(r.stats().arcs, 0u);
}

TEST(Rgraph, DiamondBothPaths) {
  rgraph r;
  const auto s = r.add_node(), l = r.add_node(), rr = r.add_node(),
             j = r.add_node();
  r.add_arc(s, l);
  r.add_arc(s, rr);
  r.add_arc(l, j);
  r.add_arc(rr, j);
  EXPECT_TRUE(r.reaches(s, j));
  EXPECT_FALSE(r.reaches(l, rr));
  EXPECT_FALSE(r.reaches(rr, l));
}

// Property test: random dag (arcs only from lower to higher ids, as in R,
// where arcs always point at later-created attached sets or bridge earlier
// ones) against a Floyd-Warshall reference.
class RgraphRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RgraphRandom, MatchesFloydWarshall) {
  frd::prng rng(GetParam());
  const int n = 60;
  rgraph r;
  std::vector<rgraph::node> nodes;
  std::vector<std::vector<bool>> ref(n, std::vector<bool>(n, false));

  for (int i = 0; i < n; ++i) nodes.push_back(r.add_node());
  // Interleave arc insertion with queries to exercise incrementality.
  for (int round = 0; round < 200; ++round) {
    int i = static_cast<int>(rng.below(n - 1));
    int j = i + 1 + static_cast<int>(rng.below(n - i - 1));
    r.add_arc(nodes[i], nodes[j]);
    ref[i][j] = true;
    // close the reference
    for (int k = 0; k < n; ++k)
      for (int a = 0; a < n; ++a)
        if (ref[a][k])
          for (int b = 0; b < n; ++b)
            if (ref[k][b]) ref[a][b] = true;
    // spot-check a handful of pairs
    for (int q = 0; q < 30; ++q) {
      int a = static_cast<int>(rng.below(n));
      int b = static_cast<int>(rng.below(n));
      EXPECT_EQ(r.reaches(nodes[a], nodes[b]), a != b && ref[a][b])
          << a << "->" << b << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RgraphRandom, ::testing::Values(1, 7, 42, 1234));

TEST(Rgraph, ClosureBytesGrowWithNodes) {
  rgraph r;
  auto prev = r.closure_bytes();
  for (int i = 0; i < 100; ++i) {
    auto a = r.add_node();
    if (i > 0) r.add_arc(static_cast<rgraph::node>(i - 1), a);
  }
  EXPECT_GT(r.closure_bytes(), prev);
  EXPECT_EQ(r.size(), 100u);
}

}  // namespace
}  // namespace frd::detect
