// Tests for the heartwall substrate: phantom generation and point tracking.
#include <gtest/gtest.h>

#include <cmath>

#include "detect/detector.hpp"
#include "image/phantom.hpp"
#include "image/tracking.hpp"

namespace frd::image {
namespace {

using detect::hooks::none;

TEST(Phantom, FrameDimensionsAndRange) {
  phantom_sequence seq(96, 96, 8, 42);
  frame f = seq.make_frame(0);
  EXPECT_EQ(f.width, 96);
  EXPECT_EQ(f.height, 96);
  EXPECT_EQ(f.pixels.size(), 96u * 96u);
  for (float v : f.pixels) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Phantom, DeterministicPerSeedAndTime) {
  phantom_sequence a(64, 64, 4, 7), b(64, 64, 4, 7), c(64, 64, 4, 8);
  EXPECT_EQ(a.make_frame(3).pixels, b.make_frame(3).pixels);
  EXPECT_NE(a.make_frame(3).pixels, c.make_frame(3).pixels);
  EXPECT_NE(a.make_frame(3).pixels, a.make_frame(4).pixels);
}

TEST(Phantom, WallIsBrighterThanBackground) {
  phantom_sequence seq(128, 128, 8, 1);
  frame f = seq.make_frame(0);
  const double r = seq.radius_at(0);
  const int cx = 64, cy = 64;
  // On-ring pixel vs centre pixel.
  const float on_wall = f.at(cx + static_cast<int>(r), cy);
  const float centre = f.at(cx, cy);
  EXPECT_GT(on_wall, centre + 0.3f);
}

TEST(Phantom, RadiusPulses) {
  phantom_sequence seq(64, 64, 4, 3);
  double lo = 1e9, hi = -1e9;
  for (int t = 0; t < 16; ++t) {
    lo = std::min(lo, seq.radius_at(t));
    hi = std::max(hi, seq.radius_at(t));
  }
  EXPECT_GT(hi / lo, 1.1);
}

TEST(Phantom, InitialPointsLieOnWall) {
  phantom_sequence seq(128, 128, 16, 9);
  frame f = seq.make_frame(0);
  for (const point& p : seq.initial_points()) {
    ASSERT_TRUE(f.contains(p.x, p.y));
    EXPECT_GT(f.at(p.x, p.y), 0.4f) << "sample point must sit on the bright wall";
  }
}

TEST(Tracking, FollowsThePulsingWall) {
  phantom_sequence seq(128, 128, 8, 11);
  auto pts = seq.initial_points();
  frame prev = seq.make_frame(0);
  const double cx = 64, cy = 64;
  for (int t = 1; t <= 8; ++t) {
    frame cur = seq.make_frame(t);
    for (auto& p : pts) p = track_point<none>(prev, cur, p, 3, 4);
    // Each tracked point should sit near the current ground-truth radius.
    const double r = seq.radius_at(t);
    for (const auto& p : pts) {
      const double d = std::hypot(p.x - cx, p.y - cy);
      EXPECT_NEAR(d, r, 4.5) << "t=" << t;
    }
    prev = std::move(cur);
  }
}

TEST(Tracking, StationaryTargetStaysPut) {
  // Tracking a frame against itself must return the original position.
  phantom_sequence seq(96, 96, 4, 5);
  frame f = seq.make_frame(2);
  for (const point& p : seq.initial_points()) {
    const point q = track_point<none>(f, f, p, 3, 3);
    EXPECT_EQ(q.x, p.x);
    EXPECT_EQ(q.y, p.y);
  }
}

TEST(Tracking, EdgePointsDoNotEscapeTheFrame) {
  phantom_sequence seq(64, 64, 4, 2);
  frame a = seq.make_frame(0), b = seq.make_frame(1);
  const point corner{2, 2};
  const point q = track_point<none>(a, b, corner, 3, 5);
  EXPECT_TRUE(b.contains(q.x, q.y));
}

TEST(Tracking, InstrumentedVariantSameResult) {
  phantom_sequence seq(96, 96, 4, 6);
  frame a = seq.make_frame(0), b = seq.make_frame(1);
  for (const point& p : seq.initial_points()) {
    const point q1 = track_point<none>(a, b, p, 3, 4);
    const point q2 = track_point<detect::hooks::active>(a, b, p, 3, 4);
    EXPECT_EQ(q1.x, q2.x);
    EXPECT_EQ(q1.y, q2.y);
  }
}

}  // namespace
}  // namespace frd::image
