// Differential record/replay tests (the acceptance bar of the trace API):
// a fuzz-generated program is executed and recorded ONCE; the stored trace
// is then replayed through every futures-capable backend and the race
// report (racy granule set + race count) must be identical to running the
// same program live under that backend. The trace travels through the
// binary codec on every replay, so the wire format is in the loop, not just
// the in-memory event objects.
//
// The memory cells are file-static so the granule addresses recorded in the
// trace are the granule addresses the live runs touch.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "detect/registry.hpp"
#include "graph/fuzz.hpp"
#include "trace/codec.hpp"
#include "trace/event.hpp"

namespace frd {
namespace {

constexpr std::uint32_t kMaxCells = 16;
std::array<int, kMaxCells> g_cells;

// Runs the fuzz program of `cfg` under a fresh session, routing accesses
// through the session's hooks (so record mode captures them).
void run_fuzz(session& s, const graph::fuzz_config& cfg) {
  graph::fuzzer fz(s.runtime(), cfg,
                   [&s](std::uint32_t cell, bool write) {
                     if (write) {
                       s.write(&g_cells[cell], 4);
                     } else {
                       s.read(&g_cells[cell], 4);
                     }
                   });
  s.run([&](rt::serial_runtime&) { fz.run(); });
}

graph::fuzz_config make_cfg(std::uint64_t seed, bool structured) {
  graph::fuzz_config cfg;
  cfg.seed = seed;
  cfg.structured = structured;
  cfg.max_depth = 6;
  cfg.max_actions_per_body = 12;
  cfg.n_cells = kMaxCells;
  cfg.max_futures = 64;
  if (!structured) cfg.max_touches_per_future = 3;
  return cfg;
}

std::vector<std::string> backends_supporting(detect::future_support needed) {
  std::vector<std::string> out;
  const auto& reg = detect::backend_registry::instance();
  for (const std::string& name : reg.names()) {
    const detect::future_support have = reg.at(name).futures;
    if (have == detect::future_support::none) continue;
    if (needed == detect::future_support::general &&
        have == detect::future_support::structured) {
      continue;
    }
    out.push_back(name);
  }
  return out;
}

// Records `cfg` once (under multibags+, which accepts both program classes)
// and serializes the trace to binary bytes.
std::string record_bytes(const graph::fuzz_config& cfg) {
  std::ostringstream bytes;
  trace::trace_writer writer(
      bytes, trace::trace_header{trace::kTraceVersion, /*granule=*/4});
  session rec(session::options{.backend = "multibags+", .granule = 4});
  rec.record_to(writer);
  run_fuzz(rec, cfg);
  writer.finish();
  EXPECT_GT(writer.events_written(), 0u);
  return bytes.str();
}

void check_replay_matches_live(const graph::fuzz_config& cfg,
                               detect::future_support needed) {
  const std::string bytes = record_bytes(cfg);
  const auto backends = backends_supporting(needed);
  ASSERT_FALSE(backends.empty());
  for (const std::string& backend : backends) {
    // Live run of the very same program under this backend.
    session live(session::options{.backend = backend, .granule = 4});
    run_fuzz(live, cfg);

    // Replay of the recorded trace, through the binary codec.
    std::istringstream in(bytes);
    trace::trace_reader reader(in);
    session replayed(session::options{.backend = backend, .granule = 4});
    const std::uint64_t events = replayed.replay(reader);

    EXPECT_GT(events, 0u) << backend;
    EXPECT_EQ(replayed.report().racy_granules(), live.report().racy_granules())
        << "replay diverged from live under backend '" << backend
        << "' (seed " << cfg.seed << ")";
    EXPECT_EQ(replayed.report().total(), live.report().total())
        << "race counts diverged under backend '" << backend << "' (seed "
        << cfg.seed << ")";
    EXPECT_EQ(replayed.get_count(), live.get_count()) << backend;
  }
}

class StructuredReplay : public ::testing::TestWithParam<std::uint64_t> {};
class GeneralReplay : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StructuredReplay, EveryFuturesCapableBackendMatchesItsLiveRun) {
  check_replay_matches_live(make_cfg(GetParam(), /*structured=*/true),
                            detect::future_support::structured);
}

TEST_P(GeneralReplay, EveryGeneralBackendMatchesItsLiveRun) {
  check_replay_matches_live(make_cfg(GetParam(), /*structured=*/false),
                            detect::future_support::general);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuredReplay,
                         ::testing::Range<std::uint64_t>(1, 9));
INSTANTIATE_TEST_SUITE_P(Seeds, GeneralReplay,
                         ::testing::Range<std::uint64_t>(1, 9));

// The JSONL side of the codec carries detection-identical traces too: dump
// the binary trace to JSONL, replay both, compare reports.
TEST(JsonlReplay, JsonlAndBinaryReplaysAgree) {
  const auto cfg = make_cfg(77, /*structured=*/false);
  const std::string bytes = record_bytes(cfg);

  std::istringstream bin_in(bytes);
  trace::trace_reader bin_reader(bin_in);
  std::ostringstream jsonl;
  trace::jsonl_writer jw(jsonl, bin_reader.header());
  trace::trace_event e;
  while (bin_reader.next(e)) jw.put(e);

  std::istringstream bin_again(bytes);
  trace::trace_reader r1(bin_again);
  session a(session::options{.backend = "multibags+", .granule = 4});
  a.replay(r1);

  std::istringstream jsonl_in(jsonl.str());
  trace::jsonl_reader r2(jsonl_in);
  session b(session::options{.backend = "multibags+", .granule = 4});
  b.replay(r2);

  EXPECT_EQ(a.report().racy_granules(), b.report().racy_granules());
  EXPECT_EQ(a.report().total(), b.report().total());
}

}  // namespace
}  // namespace frd
