// Unit + property tests for the disjoint-set forest with payloads.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dsu/disjoint_set.hpp"
#include "support/arena.hpp"
#include "support/prng.hpp"

namespace frd::dsu {
namespace {

struct tag {
  int id;
};

TEST(Dsu, SingletonsAreTheirOwnRoots) {
  forest<tag> f;
  tag t0{0}, t1{1};
  const element a = f.make_set(&t0);
  const element b = f.make_set(&t1);
  EXPECT_NE(a, b);
  EXPECT_EQ(f.find(a), a);
  EXPECT_EQ(f.find(b), b);
  EXPECT_EQ(f.payload(a)->id, 0);
  EXPECT_EQ(f.payload(b)->id, 1);
}

TEST(Dsu, UnionIntoKeepsFirstPayload) {
  forest<tag> f;
  tag ta{10}, tb{20};
  const element a = f.make_set(&ta);
  const element b = f.make_set(&tb);
  f.union_into(a, b);
  EXPECT_TRUE(f.same_set(a, b));
  // Paper semantics: Union(A, B) destroys B; the merged set is A.
  EXPECT_EQ(f.payload(a)->id, 10);
  EXPECT_EQ(f.payload(b)->id, 10);
}

TEST(Dsu, PayloadSurvivesWhicheverRootRankPicks) {
  // Build a high-rank set B, then union it INTO a singleton A: rank makes
  // B's root the physical root, but A's payload must prevail.
  forest<tag> f;
  tag ta{1}, tb{2};
  const element a = f.make_set(&ta);
  element b0 = f.make_set(&tb);
  for (int i = 0; i < 16; ++i) {
    element x = f.make_set(nullptr);
    f.union_into(b0, x);
  }
  f.union_into(a, b0);
  EXPECT_EQ(f.payload(a)->id, 1);
  EXPECT_EQ(f.payload(b0)->id, 1);
}

TEST(Dsu, UnionSameSetIsNoop) {
  forest<tag> f;
  tag t{5};
  const element a = f.make_set(&t);
  const element b = f.make_set(nullptr);
  f.union_into(a, b);
  const auto unions_before = f.stats().unions;
  f.union_into(a, b);
  f.union_into(b, a);
  EXPECT_EQ(f.stats().unions, unions_before);
  EXPECT_EQ(f.payload(b)->id, 5);
}

TEST(Dsu, SetPayloadRebindsCurrentRoot) {
  forest<tag> f;
  tag t1{1}, t2{2};
  const element a = f.make_set(&t1);
  const element b = f.make_set(nullptr);
  f.union_into(a, b);
  f.set_payload(b, &t2);  // set payload via a non-root member
  EXPECT_EQ(f.payload(a)->id, 2);
}

TEST(Dsu, ChainUnionsCollapseUnderPathCompression) {
  forest<tag> f;
  std::vector<element> es;
  for (int i = 0; i < 1000; ++i) es.push_back(f.make_set(nullptr));
  for (int i = 1; i < 1000; ++i) f.union_into(es[0], es[i]);
  const element root = f.find(es[0]);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(f.find(es[i]), root);
  // After compression, finds are single-hop: hops/find must stay small.
  const auto& st = f.stats();
  EXPECT_LT(static_cast<double>(st.parent_hops) /
                static_cast<double>(st.finds),
            2.0);
}

// Property: against a quadratic reference partition, under a random workload.
class DsuRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DsuRandomized, MatchesReferencePartition) {
  prng rng(GetParam());
  forest<tag> f;
  arena payloads;
  std::vector<element> elems;
  std::vector<int> ref;  // reference: ref[i] = representative index
  std::vector<int> payload_id;

  auto ref_find = [&](int x) {
    while (ref[x] != x) x = ref[x];
    return x;
  };

  for (int step = 0; step < 3000; ++step) {
    const auto action = rng.below(elems.empty() ? 1 : 10);
    if (action < 3) {  // make_set
      const int id = static_cast<int>(elems.size());
      elems.push_back(f.make_set(payloads.create<tag>(tag{id})));
      ref.push_back(id);
      payload_id.push_back(id);
    } else if (action < 7) {  // union
      const auto a = static_cast<int>(rng.below(elems.size()));
      const auto b = static_cast<int>(rng.below(elems.size()));
      f.union_into(elems[a], elems[b]);
      const int ra = ref_find(a), rb = ref_find(b);
      // Reference semantics match union_into: the merged set keeps a's
      // identity (and therefore a's payload).
      if (ra != rb) ref[rb] = ra;
    } else {  // verify a random pair
      const auto a = static_cast<int>(rng.below(elems.size()));
      const auto b = static_cast<int>(rng.below(elems.size()));
      EXPECT_EQ(f.same_set(elems[a], elems[b]), ref_find(a) == ref_find(b));
      EXPECT_EQ(f.payload(elems[a])->id, payload_id[ref_find(a)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsuRandomized,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Dsu, NoPathCompressionStillCorrect) {
  forest<tag> f(/*path_compress=*/false);
  std::vector<element> es;
  for (int i = 0; i < 200; ++i) es.push_back(f.make_set(nullptr));
  for (int i = 1; i < 200; ++i) f.union_into(es[i - 1], es[i]);
  const element root = f.find(es[0]);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(f.find(es[i]), root);
}

}  // namespace
}  // namespace frd::dsu
