// Cross-backend conformance over the checked-in trace corpus.
//
// The corpus manifest is the test plan: every entry's trace replays through
// every eligible backend and the outcome must match the checked-in golden —
// adding a trace to corpus/ automatically adds this coverage. A failure
// names the entry, the backend, and the exact granules that diverged, so a
// regression reads as "vector-clock missed racy granule 0x100014 on
// wide-fanin", not as a boolean mismatch.
//
// The corpus directory is baked in at compile time (FRD_CORPUS_DIR, set by
// CMake to <repo>/corpus) and overridable with the environment variable of
// the same name.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/golden.hpp"
#include "corpus/manifest.hpp"
#include "corpus/programs.hpp"
#include "corpus/runner.hpp"
#include "shadow/store.hpp"
#include "trace/codec.hpp"
#include "trace/event.hpp"

namespace frd::corpus {
namespace {

std::string corpus_dir() {
  if (const char* env = std::getenv("FRD_CORPUS_DIR")) return env;
  return FRD_CORPUS_DIR;
}

const manifest& corpus_manifest() {
  static const manifest m = load_manifest(corpus_dir() + "/MANIFEST");
  return m;
}

// ------------------------------------------------------------ inventory --

TEST(CorpusInventory, ManifestLoads) {
  // The one place a broken corpus directory is reported with its path; the
  // suites below (including the parameterized instantiation, which degrades
  // to an empty case list rather than aborting) all depend on this.
  try {
    corpus_manifest();
  } catch (const std::exception& e) {
    FAIL() << "corpus manifest failed to load: " << e.what()
           << " (corpus dir: " << corpus_dir() << ")";
  }
}

TEST(CorpusInventory, MeetsTheCoverageFloor) {
  const manifest& m = corpus_manifest();
  EXPECT_GE(m.entries.size(), 15u);
  std::size_t paper = 0, adversarial = 0, general = 0;
  for (const corpus_entry& e : m.entries) {
    if (e.kind == entry_kind::paper_kernel) ++paper;
    if (e.kind == entry_kind::adversarial) ++adversarial;
    if (e.futures == detect::future_support::general) ++general;
  }
  EXPECT_GE(paper, 7u) << "corpus must keep >= 7 paper kernels (lcs, sw, "
                          "bst, dedup, heartwall, mm families incl. the "
                          "mm-structured-large scale-up)";
  EXPECT_GE(adversarial, 4u) << "corpus must keep >= 4 adversarial shapes";
  EXPECT_GE(general, 1u) << "corpus must keep >= 1 general-futures program";
}

TEST(CorpusInventory, EveryEntryNamesARegisteredProgram) {
  for (const corpus_entry& e : corpus_manifest().entries) {
    const corpus_program* p = find_program(e.program);
    ASSERT_NE(p, nullptr) << "entry '" << e.name << "' names unknown program '"
                          << e.program << "'";
    EXPECT_EQ(p->futures, e.futures)
        << "entry '" << e.name << "' declares a future class its program '"
        << e.program << "' does not have";
  }
}

// ---------------------------------------------------------- conformance --

// One test per (entry, backend, shadow store) triple via
// value-parameterization over the manifest × the store registry: ctest
// output localizes a divergence without re-running anything, and every
// store layout is held to the same byte-identical goldens.
struct conformance_case {
  std::string entry;
  std::string backend;
  std::string store;
};

std::vector<conformance_case> all_cases() {
  std::vector<conformance_case> out;
  try {
    const std::vector<std::string> stores =
        shadow::store_registry::instance().names();
    for (const corpus_entry& e : corpus_manifest().entries) {
      for (const std::string& b : eligible_backends(e.futures)) {
        for (const std::string& s : stores) {
          out.push_back({e.name, b, s});
        }
      }
    }
  } catch (const std::exception&) {
    // This runs at static-init time (ValuesIn below): throwing here would
    // terminate the binary with no gtest output. Degrade to zero cases and
    // let CorpusInventory.ManifestLoads report the path and the parse error.
  }
  return out;
}

class CorpusConformance : public ::testing::TestWithParam<conformance_case> {};

TEST_P(CorpusConformance, ReplayMatchesGolden) {
  const conformance_case& c = GetParam();
  const corpus_entry* e = corpus_manifest().find(c.entry);
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape = load_trace(corpus_dir() + "/" + e->trace_file);
  const golden_report golden =
      load_golden(corpus_dir() + "/" + e->golden_file);
  ASSERT_EQ(tape.header().granule, e->granule)
      << "manifest and trace header disagree about the granule";

  const std::vector<std::string> details =
      check_backend(tape, golden, c.backend, c.store);
  for (const std::string& d : details) {
    ADD_FAILURE() << "backend '" << c.backend << "' on store '" << c.store
                  << "' diverged on corpus entry '" << c.entry << "': " << d;
  }
}

std::string case_name(const ::testing::TestParamInfo<conformance_case>& info) {
  std::string s =
      info.param.entry + "_" + info.param.backend + "_" + info.param.store;
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Manifest, CorpusConformance,
                         ::testing::ValuesIn(all_cases()), case_name);

// --------------------------------------------------------- determinism --

// Regenerating an entry in-process must reproduce the checked-in trace
// byte-for-byte: address normalization makes corpus artifacts
// machine-independent, and this is the test that keeps that promise honest.
// One static-cells shape and one fuzz program keep it cheap.
class CorpusDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusDeterminism, RegenerationReproducesTheCheckedInTrace) {
  const corpus_entry* e = corpus_manifest().find(GetParam());
  ASSERT_NE(e, nullptr);
  trace::memory_trace fresh = record_entry(*e);
  trace::memory_trace checked_in =
      load_trace(corpus_dir() + "/" + e->trace_file);
  ASSERT_EQ(fresh.header().granule, checked_in.header().granule);
  ASSERT_EQ(fresh.size(), checked_in.size())
      << "regenerated trace has a different event count — the program or "
         "the recorder changed; run `frd-corpus generate` and review the diff";
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    ASSERT_EQ(fresh.events()[i], checked_in.events()[i])
        << "first divergence at event " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Entries, CorpusDeterminism,
                         ::testing::Values("wide-fanin", "sync-heavy",
                                           "fuzz-structured", "mm-structured"),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

// ------------------------------------------------------------- codecs --

TEST(GoldenCodec, RoundTripsAndValidates) {
  golden_report g;
  g.granule = 4;
  g.events = 100;
  g.accesses = 40;
  g.gets = 7;
  g.violations = 1;
  g.racy_granules = {0x100000, 0x100014, 0x1000a0};
  std::ostringstream out;
  write_golden(out, g);
  std::istringstream in(out.str());
  EXPECT_EQ(read_golden(in), g);

  // A truncated racy list (count disagrees with the lines) is corruption.
  std::string text = out.str();
  text.resize(text.rfind("racy 0x"));
  std::istringstream bad(text);
  EXPECT_THROW(read_golden(bad), corpus_error);

  std::istringstream junk("granule 4\nracy_granules 0\nwat 3\n");
  EXPECT_THROW(read_golden(junk), corpus_error);
  std::istringstream empty("");
  EXPECT_THROW(read_golden(empty), corpus_error);
}

TEST(GoldenCodec, DiffNamesTheDivergentGranules) {
  golden_report want, got;
  want.racy_granules = {0x100000, 0x100004};
  got.racy_granules = {0x100004, 0x100008};
  got.gets = 3;
  const auto diff = diff_goldens(want, got, /*compare_violations=*/true);
  ASSERT_EQ(diff.size(), 3u);  // gets mismatch + one missing + one unexpected
  bool missing = false, unexpected = false;
  for (const std::string& d : diff) {
    if (d.find("0x100000") != std::string::npos &&
        d.find("missed") != std::string::npos) {
      missing = true;
    }
    if (d.find("0x100008") != std::string::npos &&
        d.find("race-free") != std::string::npos) {
      unexpected = true;
    }
  }
  EXPECT_TRUE(missing) << "diff must name the granule the backend missed";
  EXPECT_TRUE(unexpected) << "diff must name the granule wrongly reported";
  EXPECT_TRUE(diff_goldens(want, want, true).empty());
}

TEST(ManifestCodec, RoundTripsAndRejectsMalformedInput) {
  const manifest m = builtin_manifest();
  std::ostringstream out;
  write_manifest(out, m);
  std::istringstream in(out.str());
  const manifest back = read_manifest(in);
  ASSERT_EQ(back.entries.size(), m.entries.size());
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].name, m.entries[i].name);
    EXPECT_EQ(back.entries[i].program, m.entries[i].program);
    EXPECT_EQ(back.entries[i].futures, m.entries[i].futures);
    EXPECT_EQ(back.entries[i].seed, m.entries[i].seed);
    EXPECT_EQ(back.entries[i].trace_file, m.entries[i].trace_file);
  }

  std::istringstream no_entries("# just a comment\n");
  EXPECT_THROW(read_manifest(no_entries), corpus_error);
  std::istringstream stray_kv("kind = fuzz\n");
  EXPECT_THROW(read_manifest(stray_kv), corpus_error);
  std::istringstream dup("entry a\ntrace = a.frdt\ngolden = a.golden\n"
                         "entry a\ntrace = a.frdt\ngolden = a.golden\n");
  EXPECT_THROW(read_manifest(dup), corpus_error);
  std::istringstream incomplete("entry a\nkind = fuzz\n");
  EXPECT_THROW(read_manifest(incomplete), corpus_error);
  std::istringstream bad_kind("entry a\nkind = nope\n");
  EXPECT_THROW(read_manifest(bad_kind), corpus_error);
}

// The aggregate engine behind `frd-corpus verify`: green on the checked-in
// corpus, and a backend restriction that selects zero (entry, backend) pairs
// must FAIL — verifying nothing is not a pass.
TEST(CorpusVerify, EngineAcceptsTheCheckedInCorpus) {
  const verify_result r = verify_corpus(corpus_manifest(), corpus_dir());
  for (const divergence& d : r.failures) {
    for (const std::string& line : d.details) {
      ADD_FAILURE() << d.entry << " [" << d.backend << "/" << d.store
                    << "]: " << line;
    }
  }
  EXPECT_GT(r.checks, 0u);
}

TEST(CorpusVerify, UnknownStoreRestrictionIsAFailureNotAPass) {
  const verify_result r =
      verify_corpus(corpus_manifest(), corpus_dir(), {}, "no-such-store");
  EXPECT_EQ(r.checks, 0u);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.failures.front().details.front().find("no-such-store"),
            std::string::npos)
      << "the failure must name the store that matched nothing";
}

TEST(CorpusVerify, ZeroEligibleChecksIsAFailureNotAPass) {
  // sp-bags is registered but fork-join-only: eligible for no corpus trace.
  const verify_result r =
      verify_corpus(corpus_manifest(), corpus_dir(), "sp-bags");
  EXPECT_EQ(r.checks, 0u);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.failures.front().details.front().find("sp-bags"),
            std::string::npos)
      << "the failure must name the backend that matched nothing";
}

TEST(CorpusVerify, MissingTraceFileIsADivergence) {
  manifest m = corpus_manifest();
  m.entries.resize(1);
  m.entries[0].trace_file = "no-such-file.frdt";
  const verify_result r = verify_corpus(m, corpus_dir());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.failures.front().details.front().find("no-such-file.frdt"),
            std::string::npos);
}

// A tampered golden must produce a divergence that names the backend-visible
// granule — the fix contract for `frd-corpus verify` (and this test's own
// failure messages).
TEST(CorpusVerify, TamperedGoldenFailsWithGranuleDetail) {
  const corpus_entry* e = corpus_manifest().find("wide-fanin");
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape = load_trace(corpus_dir() + "/" + e->trace_file);
  golden_report tampered = load_golden(corpus_dir() + "/" + e->golden_file);
  tampered.racy_granules.insert(0xdead000);  // a granule nothing reports

  bool named = false;
  for (const std::string& b : eligible_backends(e->futures)) {
    for (const std::string& d : check_backend(tape, tampered, b)) {
      if (d.find("0xdead000") != std::string::npos) named = true;
    }
  }
  EXPECT_TRUE(named)
      << "verify must say which granule diverged, not just that one did";
}

}  // namespace
}  // namespace frd::corpus
