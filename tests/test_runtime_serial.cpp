// Tests for the serial depth-first eager runtime: execution order, event
// stream shape, future semantics, dag recording.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/dag_recorder.hpp"
#include "graph/oracle.hpp"
#include "runtime/events.hpp"
#include "runtime/serial.hpp"

namespace frd::rt {
namespace {

// Records the raw event stream as readable strings.
class event_log final : public execution_listener {
 public:
  std::vector<std::string> lines;

  void on_program_begin(func_id f, strand_id s) override {
    add("begin f" + std::to_string(f) + " s" + std::to_string(s));
  }
  void on_program_end(strand_id s) override { add("end s" + std::to_string(s)); }
  void on_strand_begin(strand_id s, func_id f) override {
    add("strand s" + std::to_string(s) + " f" + std::to_string(f));
  }
  void on_spawn(func_id p, strand_id u, func_id c, strand_id w,
                strand_id v) override {
    add("spawn p" + std::to_string(p) + " u" + std::to_string(u) + " c" +
        std::to_string(c) + " w" + std::to_string(w) + " v" + std::to_string(v));
  }
  void on_create(func_id p, strand_id u, func_id c, strand_id w,
                 strand_id v) override {
    add("create p" + std::to_string(p) + " u" + std::to_string(u) + " c" +
        std::to_string(c) + " w" + std::to_string(w) + " v" + std::to_string(v));
  }
  void on_return(func_id c, strand_id last, func_id p) override {
    add("return c" + std::to_string(c) + " last" + std::to_string(last) + " p" +
        std::to_string(p));
  }
  void on_sync(const sync_event& e) override {
    add("sync f" + std::to_string(e.fn) + " nchildren" +
        std::to_string(e.children.size()));
  }
  void on_get(func_id fn, strand_id u, strand_id v, func_id fut, strand_id w,
              strand_id creator) override {
    add("get f" + std::to_string(fn) + " u" + std::to_string(u) + " v" +
        std::to_string(v) + " fut" + std::to_string(fut) + " w" +
        std::to_string(w) + " cr" + std::to_string(creator));
  }

 private:
  void add(std::string s) { lines.push_back(std::move(s)); }
};

TEST(SerialRuntime, DepthFirstEagerOrder) {
  serial_runtime rt;
  std::string order;
  rt.run([&] {
    order += "a";
    rt.spawn([&] { order += "b"; });
    order += "c";  // continuation runs after the child completes (eager)
    rt.spawn([&] { order += "d"; });
    rt.sync();
    order += "e";
  });
  EXPECT_EQ(order, "abcde");
}

TEST(SerialRuntime, FuturesEvaluateEagerly) {
  serial_runtime rt;
  std::string order;
  rt.run([&] {
    order += "a";
    auto f = rt.create_future([&] {
      order += "b";
      return 7;
    });
    order += "c";
    EXPECT_EQ(f.get(), 7);
    order += "d";
  });
  EXPECT_EQ(order, "abcd");
}

TEST(SerialRuntime, NestedSpawnsAndFutureEscapingSync) {
  // A future created before a sync is NOT joined by the sync (it escapes);
  // only get() joins it (paper §2).
  serial_runtime rt;
  bool future_ran = false;
  rt.run([&] {
    auto f = rt.create_future([&] {
      future_ran = true;
      return 1;
    });
    rt.spawn([&] {});
    rt.sync();  // joins the spawn only
    EXPECT_TRUE(future_ran);  // eager execution already ran it
    EXPECT_EQ(f.touch_count(), 0);
    f.get();
    EXPECT_EQ(f.touch_count(), 1);
  });
}

TEST(SerialRuntime, EventStreamForSpawnSync) {
  event_log log;
  serial_runtime rt(&log);
  rt.run([&] {
    rt.spawn([&] {});
    rt.sync();
  });
  // begin f0 s0; strand s0 f0; spawn p0 u0 c1 w1 v2; strand s1 f1;
  // return c1 last1 p0; strand s2 f0; sync f0 nchildren1; strand s3 f0; end s3
  const std::vector<std::string> want{
      "begin f0 s0",          "strand s0 f0",
      "spawn p0 u0 c1 w1 v2", "strand s1 f1",
      "return c1 last1 p0",   "strand s2 f0",
      "sync f0 nchildren1",   "strand s3 f0",
      "end s3",
  };
  EXPECT_EQ(log.lines, want);
}

TEST(SerialRuntime, ImplicitSyncOnChildReturn) {
  event_log log;
  serial_runtime rt(&log);
  rt.run([&] {
    rt.spawn([&] {
      rt.spawn([&] {});
      // no explicit sync: the runtime must sync before the child returns
    });
    rt.sync();
  });
  int syncs = 0;
  for (const auto& l : log.lines)
    if (l.rfind("sync", 0) == 0) ++syncs;
  EXPECT_EQ(syncs, 2);
}

TEST(SerialRuntime, SyncWithoutChildrenIsNoop) {
  event_log log;
  serial_runtime rt(&log);
  rt.run([&] {
    rt.sync();
    rt.sync();
  });
  for (const auto& l : log.lines) EXPECT_EQ(l.rfind("sync", 0), std::string::npos);
}

TEST(SerialRuntime, MultiChildSyncMintsOneJoinStrandPerChild) {
  std::vector<std::size_t> join_counts;
  class sync_watcher final : public execution_listener {
   public:
    std::vector<std::size_t>* out;
    void on_sync(const sync_event& e) override {
      out->push_back(e.join_strands.size());
      ASSERT_EQ(e.children.size(), e.join_strands.size());
    }
  } watcher;
  watcher.out = &join_counts;
  serial_runtime rt(&watcher);
  rt.run([&] {
    rt.spawn([&] {});
    rt.spawn([&] {});
    rt.spawn([&] {});
    rt.sync();
  });
  ASSERT_EQ(join_counts.size(), 1u);
  EXPECT_EQ(join_counts[0], 3u);
}

TEST(SerialRuntime, FutureValueTypes) {
  serial_runtime rt;
  rt.run([&] {
    auto fi = rt.create_future([] { return 42; });
    auto fs = rt.create_future([] { return std::string("hello"); });
    auto fv = rt.create_future([] {});
    std::vector<future<int>> futs;
    for (int i = 0; i < 10; ++i)
      futs.push_back(rt.create_future([i] { return i * i; }));
    EXPECT_EQ(fi.get(), 42);
    EXPECT_EQ(fs.get(), "hello");
    fv.get();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(futs[i].get(), i * i);
  });
}

TEST(SerialRuntime, MultiTouchAllowedWhenUnrestricted) {
  serial_runtime rt;
  rt.run([&] {
    auto f = rt.create_future([] { return 5; });
    EXPECT_EQ(f.get(), 5);
    EXPECT_EQ(f.get(), 5);
    EXPECT_EQ(f.touch_count(), 2);
  });
}

TEST(SerialRuntimeDeath, SingleTouchEnforced) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  serial_runtime rt;
  rt.enforce_single_touch(true);
  EXPECT_DEATH(rt.run([&] {
    auto f = rt.create_future([] { return 5; });
    f.get();
    f.get();
  }),
               "single-touch");
}

TEST(SerialRuntime, StrandIdsAreDenseAndFresh) {
  serial_runtime rt;
  std::vector<strand_id> seen;
  rt.run([&] {
    seen.push_back(rt.current_strand());
    rt.spawn([&] { seen.push_back(rt.current_strand()); });
    seen.push_back(rt.current_strand());
    rt.sync();
    seen.push_back(rt.current_strand());
  });
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_GT(seen[i], seen[i - 1]);
  EXPECT_GE(rt.strand_count(), seen.back() + 1);
}

TEST(SerialRuntime, RunIsReusable) {
  serial_runtime rt;
  int total = 0;
  for (int round = 0; round < 3; ++round)
    rt.run([&] {
      rt.spawn([&] { ++total; });
      rt.sync();
    });
  EXPECT_EQ(total, 3);
}

// ------------------------------------------------------- dag recording ---
TEST(DagRecorder, SpawnSyncShapesAreSeriesParallel) {
  graph::dag_recorder rec;
  serial_runtime rt(&rec);
  rt.run([&] {
    rt.spawn([&] {});
    rt.spawn([&] {});
    rt.sync();
  });
  EXPECT_TRUE(rec.is_series_parallel());
  EXPECT_EQ(rec.count(graph::edge_kind::spawn), 2u);
  EXPECT_EQ(rec.count(graph::edge_kind::join), 2u);
  // One virtual + one real join strand for the binary decomposition.
  std::size_t virtual_joins = 0;
  for (strand_id s = 0; s < rec.node_count(); ++s)
    if (rec.node_at(s).virtual_join) ++virtual_joins;
  EXPECT_EQ(virtual_joins, 1u);
}

TEST(DagRecorder, FuturesAddNonSpEdges) {
  graph::dag_recorder rec;
  serial_runtime rt(&rec);
  rt.run([&] {
    auto f = rt.create_future([] { return 0; });
    f.get();
  });
  EXPECT_FALSE(rec.is_series_parallel());
  EXPECT_EQ(rec.count(graph::edge_kind::create), 1u);
  EXPECT_EQ(rec.count(graph::edge_kind::get), 1u);
}

// ----------------------------------------------------------- oracle -----
TEST(OnlineOracle, SpawnContinuationParallelism) {
  graph::online_oracle oracle;
  serial_runtime rt(&oracle);
  strand_id in_child = kNoStrand, in_cont = kNoStrand, after = kNoStrand,
            root = kNoStrand;
  rt.run([&] {
    root = rt.current_strand();
    rt.spawn([&] { in_child = rt.current_strand(); });
    in_cont = rt.current_strand();
    rt.sync();
    after = rt.current_strand();
  });
  EXPECT_TRUE(oracle.precedes(root, in_child));
  EXPECT_TRUE(oracle.precedes(root, in_cont));
  EXPECT_TRUE(oracle.parallel(in_child, in_cont));
  EXPECT_TRUE(oracle.precedes(in_child, after));
  EXPECT_TRUE(oracle.precedes(in_cont, after));
  EXPECT_FALSE(oracle.precedes(after, root));
}

TEST(OnlineOracle, FutureEscapesSyncUntilGet) {
  graph::online_oracle oracle;
  serial_runtime rt(&oracle);
  strand_id in_fut = kNoStrand, post_sync = kNoStrand, post_get = kNoStrand;
  rt.run([&] {
    auto f = rt.create_future([&] {
      in_fut = rt.current_strand();
      return 0;
    });
    rt.spawn([&] {});
    rt.sync();
    post_sync = rt.current_strand();  // parallel to the future: no join yet
    f.get();
    post_get = rt.current_strand();
  });
  EXPECT_TRUE(oracle.parallel(in_fut, post_sync));
  EXPECT_TRUE(oracle.precedes(in_fut, post_get));
}

}  // namespace
}  // namespace frd::rt
