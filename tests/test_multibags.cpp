// MultiBags behavioural tests, including the paper's Figure 2 worked example
// reproduced as an executable scenario. Each scenario also runs under
// MultiBags+ — on structured programs the two must answer identically.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "detect/backend.hpp"
#include "detect/multibags.hpp"
#include "detect/multibags_plus.hpp"
#include "runtime/serial.hpp"

namespace frd::detect {
namespace {

using rt::strand_id;

std::unique_ptr<reachability_backend> make(const std::string& which) {
  if (which == "multibags") return std::make_unique<multibags>();
  return std::make_unique<multibags_plus>();
}

class BothBackends : public ::testing::TestWithParam<std::string> {};

// ---------------------------------------------------------------------------
// Paper Figure 2: A creates future B; B creates C; C creates D and E and
// joins only E; B joins C then creates F passing it D's handle; F joins D;
// A joins B, then joins F (handle conveyed through B). The program is
// structured: every handle is touched once and each creator precedes its
// getter.
// ---------------------------------------------------------------------------
TEST_P(BothBackends, PaperFigure2Scenario) {
  auto backend = make(GetParam());
  rt::serial_runtime rt(backend.get());
  rt.enforce_single_touch(true);

  // Strand ids captured at the paper's interesting points.
  strand_id a1 = rt::kNoStrand;     // node 1: A before creating B
  strand_id b2 = rt::kNoStrand;     // node 2: B's first strand
  strand_id c3 = rt::kNoStrand;     // node 3: C's first strand
  strand_id d4 = rt::kNoStrand;     // node 4: all of D
  strand_id c5 = rt::kNoStrand;     // node 5: C after creating D... (creates E)
  strand_id e6 = rt::kNoStrand;     // nodes 6-7: all of E
  strand_id c9 = rt::kNoStrand;     // node 9: C after joining E
  strand_id b11 = rt::kNoStrand;    // node 11: B after joining C (creates F)
  strand_id f12 = rt::kNoStrand;    // node 12: F's first strand
  strand_id f13 = rt::kNoStrand;    // node 13: F after joining D
  strand_id b14 = rt::kNoStrand;    // node 14: B after creating F
  strand_id a16 = rt::kNoStrand;    // node 16: A after joining B
  strand_id a17 = rt::kNoStrand;    // node 17: A after joining F

  rt::future<int> hD, hE, hF, hC, hB;

  auto precedes = [&](strand_id u) { return backend->view().precedes_current(u); };

  rt.run([&] {
    a1 = rt.current_strand();
    hB = rt.create_future([&]() -> int {
      b2 = rt.current_strand();
      hC = rt.create_future([&]() -> int {
        c3 = rt.current_strand();
        hD = rt.create_future([&]() -> int {
          d4 = rt.current_strand();
          return 4;
        });
        c5 = rt.current_strand();
        hE = rt.create_future([&]() -> int {
          e6 = rt.current_strand();
          // Paper table, row for node 6: A, B, C active (their strands are
          // in S-bags); D returned and unjoined (P-bag).
          EXPECT_TRUE(precedes(a1));
          EXPECT_TRUE(precedes(b2));
          EXPECT_TRUE(precedes(c3));
          EXPECT_TRUE(precedes(c5));
          EXPECT_FALSE(precedes(d4)) << "D is logically parallel to E";
          return 6;
        });
        EXPECT_EQ(hE.get(), 6);
        c9 = rt.current_strand();
        // Row 9: E's strands joined C's S-bag; D still parallel.
        EXPECT_TRUE(precedes(e6));
        EXPECT_FALSE(precedes(d4));
        return 3;
      });
      EXPECT_EQ(hC.get(), 3);
      b11 = rt.current_strand();
      // Row 11: all of C (and E through it) now precedes B's strand.
      EXPECT_TRUE(precedes(c3));
      EXPECT_TRUE(precedes(c5));
      EXPECT_TRUE(precedes(c9));
      EXPECT_TRUE(precedes(e6));
      EXPECT_FALSE(precedes(d4));
      hF = rt.create_future([&]() -> int {
        f12 = rt.current_strand();
        // Paper §4.1: "Consider step 12 when the first node of function F is
        // executing. All nodes except node 4 are sequentially before this
        // strand ... Node 4 is in parallel with this strand and is in a
        // P-bag."
        EXPECT_TRUE(precedes(a1));
        EXPECT_TRUE(precedes(b2));
        EXPECT_TRUE(precedes(c3));
        EXPECT_TRUE(precedes(c5));
        EXPECT_TRUE(precedes(e6));
        EXPECT_TRUE(precedes(c9));
        EXPECT_TRUE(precedes(b11));
        EXPECT_FALSE(precedes(d4));
        EXPECT_EQ(hD.get(), 4);  // F joins D (paper: node 12 gets D)
        f13 = rt.current_strand();
        EXPECT_TRUE(precedes(d4)) << "after get, D precedes F's strand";
        return 12;
      });
      b14 = rt.current_strand();
      // Row 14: F returned; its strands (and D's, absorbed at F's get) are
      // in F's P-bag — parallel to B.
      EXPECT_FALSE(precedes(f12));
      EXPECT_FALSE(precedes(f13));
      EXPECT_FALSE(precedes(d4));
      return 2;
    });
    EXPECT_EQ(hB.get(), 2);
    a16 = rt.current_strand();
    // Row 16: everything except {4, 12, 13} precedes A's strand.
    EXPECT_TRUE(precedes(b2));
    EXPECT_TRUE(precedes(c3));
    EXPECT_TRUE(precedes(e6));
    EXPECT_TRUE(precedes(b11));
    EXPECT_TRUE(precedes(b14));
    EXPECT_FALSE(precedes(f12));
    EXPECT_FALSE(precedes(f13));
    EXPECT_FALSE(precedes(d4));
    EXPECT_EQ(hF.get(), 12);
    a17 = rt.current_strand();
    // Row 17: the final get folds everything into A's S-bag.
    EXPECT_TRUE(precedes(d4));
    EXPECT_TRUE(precedes(f12));
    EXPECT_TRUE(precedes(f13));
    EXPECT_TRUE(precedes(a16));
  });

  EXPECT_EQ(backend->structured_violations(), 0u);
  EXPECT_NE(a17, rt::kNoStrand);
}

// ---------------------------------------------------------------------------
// Elementary reachability scenarios under both backends.
// ---------------------------------------------------------------------------
TEST_P(BothBackends, SpawnContinuationIsParallel) {
  auto backend = make(GetParam());
  rt::serial_runtime rt(backend.get());
  strand_id child = rt::kNoStrand;
  rt.run([&] {
    rt.spawn([&] { child = rt.current_strand(); });
    EXPECT_FALSE(backend->view().precedes_current(child));
    rt.sync();
    EXPECT_TRUE(backend->view().precedes_current(child));
  });
}

TEST_P(BothBackends, SiblingSpawnsAreParallel) {
  auto backend = make(GetParam());
  rt::serial_runtime rt(backend.get());
  strand_id first = rt::kNoStrand;
  rt.run([&] {
    rt.spawn([&] { first = rt.current_strand(); });
    rt.spawn([&] {
      EXPECT_FALSE(backend->view().precedes_current(first));
    });
    rt.sync();
    EXPECT_TRUE(backend->view().precedes_current(first));
  });
}

TEST_P(BothBackends, FutureEscapesEnclosingSync) {
  auto backend = make(GetParam());
  rt::serial_runtime rt(backend.get());
  strand_id fut_strand = rt::kNoStrand;
  rt.run([&] {
    auto h = rt.create_future([&] {
      fut_strand = rt.current_strand();
      return 0;
    });
    rt.spawn([&] {});
    rt.sync();
    // sync does not join the future.
    EXPECT_FALSE(backend->view().precedes_current(fut_strand));
    h.get();
    EXPECT_TRUE(backend->view().precedes_current(fut_strand));
  });
}

TEST_P(BothBackends, DeepSpawnChainPrecedesAfterAllSyncs) {
  auto backend = make(GetParam());
  rt::serial_runtime rt(backend.get());
  std::vector<strand_id> leaves;
  std::function<void(int)> go = [&](int depth) {
    if (depth == 0) {
      leaves.push_back(rt.current_strand());
      return;
    }
    rt.spawn([&, depth] { go(depth - 1); });
    rt.spawn([&, depth] { go(depth - 1); });
    rt.sync();
  };
  rt.run([&] {
    go(5);
    for (strand_id s : leaves) EXPECT_TRUE(backend->view().precedes_current(s));
  });
  EXPECT_EQ(leaves.size(), 32u);
}

TEST_P(BothBackends, FutureChainPipeline) {
  // h1 -> h2 -> h3 pipeline: stage i+1 gets stage i. A consumer joining only
  // h3 is ordered after every stage.
  auto backend = make(GetParam());
  rt::serial_runtime rt(backend.get());
  strand_id s1 = rt::kNoStrand, s2 = rt::kNoStrand, s3 = rt::kNoStrand;
  rt::future<int> h1, h2, h3;
  rt.run([&] {
    h1 = rt.create_future([&] {
      s1 = rt.current_strand();
      return 1;
    });
    h2 = rt.create_future([&] {
      s2 = rt.current_strand();
      return h1.get() + 1;
    });
    h3 = rt.create_future([&] {
      s3 = rt.current_strand();
      return h2.get() + 1;
    });
    EXPECT_FALSE(backend->view().precedes_current(s1));
    EXPECT_FALSE(backend->view().precedes_current(s2));
    EXPECT_FALSE(backend->view().precedes_current(s3));
    EXPECT_EQ(h3.get(), 3);
    EXPECT_TRUE(backend->view().precedes_current(s1));
    EXPECT_TRUE(backend->view().precedes_current(s2));
    EXPECT_TRUE(backend->view().precedes_current(s3));
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, BothBackends,
                         ::testing::Values("multibags", "multibags_plus"));

// ---------------------------------------------------------------------------
// MultiBags-specific: structured-discipline violation detection.
// ---------------------------------------------------------------------------
TEST(MultiBags, FlagsUnstructuredGet) {
  // The handle is created inside a spawned child and joined by the parent's
  // continuation, which is logically parallel to the creator strand: that
  // violates "creator sequentially precedes getter" (§2).
  multibags mb;
  rt::serial_runtime rt(&mb);
  rt::future<int> h;
  rt.run([&] {
    rt.spawn([&] { h = rt.create_future([] { return 1; }); });
    h.get();  // parallel to the creator strand inside the spawned child
    rt.sync();
  });
  EXPECT_GT(mb.structured_violations(), 0u);
}

TEST(MultiBags, NoViolationWhenCreatorPrecedesGetter) {
  multibags mb;
  rt::serial_runtime rt(&mb);
  rt.run([&] {
    auto h = rt.create_future([] { return 1; });
    rt.spawn([&] { h.get(); });  // creator strand precedes the child
    rt.sync();
  });
  EXPECT_EQ(mb.structured_violations(), 0u);
}

}  // namespace
}  // namespace frd::detect
