// frd-serve subsystem tests: wire protocol, daemon isolation, and the
// session-recycling contract the worker pool depends on.
//
// Three layers, mirroring the subsystem:
//   protocol   payload codecs round-trip and reject malformed bytes;
//              frame_io over a socketpair enforces the length/type framing.
//   daemon     an in-process server on a fresh Unix socket per test. The
//              headline properties: reports are byte-identical to the
//              checked-in corpus goldens even under >= 8 concurrent client
//              streams (including a million-event .frdtz), and injected
//              corrupt / truncated / version-skewed / over-budget /
//              disconnected streams each fail alone — siblings complete and
//              the daemon keeps serving.
//   reset      session::reset() must make replay #2 byte-identical to
//              replay #1 across the (entry x backend x store) cube; the
//              worker pool's recycling is sound only if this holds.
//
// The corpus directory comes from FRD_CORPUS_DIR (compile-time, overridable
// via the environment variable of the same name).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "corpus/golden.hpp"
#include "corpus/manifest.hpp"
#include "corpus/runner.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "shadow/store.hpp"

namespace frd::serve {
namespace {

std::string corpus_dir() {
  if (const char* env = std::getenv("FRD_CORPUS_DIR")) return env;
  return FRD_CORPUS_DIR;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

corpus::golden_report load_corpus_golden(const std::string& stem) {
  return corpus::load_golden(corpus_dir() + "/" + stem + ".golden");
}

// sun_path is ~107 bytes; keep the per-test socket names short and unique.
std::string fresh_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/frd-serve-t" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// ------------------------------------------------------ payload codecs --

TEST(ServeProtocol, PayloadRoundTrips) {
  stream_open_msg open;
  open.stream_id = 42;
  open.backend = "multibags+";
  open.store = "sharded";
  open.budget = 1u << 20;
  const stream_open_msg open2 = decode_stream_open(encode(open));
  EXPECT_EQ(open2.stream_id, open.stream_id);
  EXPECT_EQ(open2.backend, open.backend);
  EXPECT_EQ(open2.store, open.store);
  EXPECT_EQ(open2.budget, open.budget);

  race_msg r;
  r.stream_id = 7;
  r.granule_addr = 0x100020;
  r.prior = 11;
  r.prior_is_write = true;
  r.current = 13;
  r.current_is_write = false;
  const race_msg r2 = decode_race(encode(r));
  EXPECT_EQ(r2.stream_id, r.stream_id);
  EXPECT_EQ(r2.granule_addr, r.granule_addr);
  EXPECT_EQ(r2.prior, r.prior);
  EXPECT_TRUE(r2.prior_is_write);
  EXPECT_EQ(r2.current, r.current);
  EXPECT_FALSE(r2.current_is_write);

  stream_done_msg d;
  d.stream_id = 9;
  d.granule = 4;
  d.events = 1000;
  d.accesses = 900;
  d.gets = 17;
  d.violations = 2;
  d.races_total = 5;
  d.racy_granules = {0x100000, 0x100004};
  d.store_bytes = 1 << 21;
  d.store_pages = 1;
  d.report_retained = 5;
  d.report_capacity = 64;
  d.query_cache_bytes = 992;
  const stream_done_msg d2 = decode_stream_done(encode(d));
  EXPECT_EQ(d2.stream_id, d.stream_id);
  EXPECT_EQ(d2.events, d.events);
  EXPECT_EQ(d2.racy_granules, d.racy_granules);
  EXPECT_EQ(d2.report_capacity, d.report_capacity);

  error_msg e;
  e.stream_id = 3;
  e.code = error_code::budget_exceeded;
  e.message = "over";
  const error_msg e2 = decode_error_msg(encode(e));
  EXPECT_EQ(e2.stream_id, e.stream_id);
  EXPECT_EQ(e2.code, e.code);
  EXPECT_EQ(e2.message, e.message);

  const std::vector<std::uint8_t> bytes = {1, 2, 3, 4};
  const auto td = encode_trace_data(5, bytes);
  std::span<const std::uint8_t> view;
  EXPECT_EQ(decode_trace_data(td, view), 5u);
  EXPECT_EQ(std::vector<std::uint8_t>(view.begin(), view.end()), bytes);
}

TEST(ServeProtocol, MalformedPayloadsThrow) {
  // Truncated varints / short buffers must be a typed error, not UB.
  const auto open = encode(stream_open_msg{.stream_id = 1,
                                           .backend = "multibags+",
                                           .store = "hashed-page",
                                           .budget = 0});
  for (std::size_t n = 0; n < open.size(); ++n) {
    EXPECT_THROW(decode_stream_open(std::span(open.data(), n)),
                 protocol_error)
        << "prefix of " << n << " bytes decoded";
  }
  // An error frame with an out-of-range code byte.
  auto err = encode(error_msg{.stream_id = 1,
                              .code = error_code::bad_trace,
                              .message = "x"});
  err[1] = 200;  // varint stream_id=1 is 1 byte; code follows
  EXPECT_THROW(decode_error_msg(err), protocol_error);
  // A stream_done claiming more racy granules than the payload can hold.
  stream_done_msg done_msg;
  done_msg.stream_id = 1;
  auto done = encode(done_msg);
  done.back() = 0xff;  // racy count varint, no granules follow
  EXPECT_THROW(decode_stream_done(done), protocol_error);
}

// ------------------------------------------------------------ frame_io --

class FrameIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FrameIoTest, RoundTripsFrames) {
  frame_io a(fds_[0]), b(fds_[1]);
  a.write_frame(frame_type::hello, encode(hello_msg{}));
  frame f;
  ASSERT_TRUE(b.read_frame(f));
  EXPECT_EQ(f.type, frame_type::hello);
  EXPECT_EQ(decode_hello(f.payload).version, kProtocolVersion);
}

TEST_F(FrameIoTest, CleanEofReturnsFalse) {
  frame_io b(fds_[1]);
  ::close(fds_[0]);
  fds_[0] = -1;
  frame f;
  EXPECT_FALSE(b.read_frame(f));
}

TEST_F(FrameIoTest, RejectsZeroLengthAndOversizedFrames) {
  // length 0: a frame must carry at least its type byte.
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(fds_[0], zero, 4, 0), 4);
  frame_io b(fds_[1]);
  frame f;
  EXPECT_THROW(b.read_frame(f), protocol_error);

  // A hostile length prefix larger than kMaxFrameBody is refused before any
  // allocation of that size.
  int fds2[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds2), 0);
  const std::uint32_t huge = kMaxFrameBody + 1;
  std::uint8_t head[4] = {static_cast<std::uint8_t>(huge),
                          static_cast<std::uint8_t>(huge >> 8),
                          static_cast<std::uint8_t>(huge >> 16),
                          static_cast<std::uint8_t>(huge >> 24)};
  ASSERT_EQ(::send(fds2[0], head, 4, 0), 4);
  frame_io c(fds2[1]);
  EXPECT_THROW(c.read_frame(f), protocol_error);
  ::close(fds2[0]);
  ::close(fds2[1]);
}

TEST_F(FrameIoTest, RejectsUnknownFrameType) {
  const std::uint8_t wire[5] = {1, 0, 0, 0, 99};  // length 1, type 99
  ASSERT_EQ(::send(fds_[0], wire, 5, 0), 5);
  frame_io b(fds_[1]);
  frame f;
  EXPECT_THROW(b.read_frame(f), protocol_error);
}

// -------------------------------------------------------------- daemon --

class ServeDaemonTest : public ::testing::Test {
 protected:
  void start(server_options opt = {}) {
    socket_ = fresh_socket_path();
    opt.socket_path = socket_;
    if (opt.workers == 2) opt.workers = 4;
    srv_ = std::make_unique<server>(std::move(opt));
    srv_->start();
  }
  void TearDown() override {
    if (srv_) srv_->stop();
  }

  std::string socket_;
  std::unique_ptr<server> srv_;
};

TEST_F(ServeDaemonTest, SubmitMatchesCheckedInGolden) {
  start();
  client cli(socket_);
  const submit_result quiet =
      cli.submit_file(corpus_dir() + "/mm-structured.frdt");
  ASSERT_TRUE(quiet.ok) << quiet.error;
  EXPECT_EQ(quiet.golden, load_corpus_golden("mm-structured"));
  EXPECT_TRUE(quiet.races.empty());

  // A racy general-futures trace on the same connection: race frames arrive
  // before stream_done, and the racy set matches the golden exactly.
  const submit_result racy =
      cli.submit_file(corpus_dir() + "/fuzz-general.frdt");
  ASSERT_TRUE(racy.ok) << racy.error;
  const corpus::golden_report want = load_corpus_golden("fuzz-general");
  EXPECT_EQ(racy.golden, want);
  EXPECT_EQ(racy.races.size(), racy.races_total);
  ASSERT_FALSE(racy.races.empty());
  std::set<std::uint64_t> streamed;
  for (const race_msg& m : racy.races) streamed.insert(m.granule_addr);
  for (const std::uint64_t g : streamed) {
    EXPECT_TRUE(want.racy_granules.count(g))
        << "streamed race on granule not in the golden: " << g;
  }
}

TEST_F(ServeDaemonTest, CompressedContainerSubmitMatchesGolden) {
  start();
  client cli(socket_);
  const submit_result r =
      cli.submit_file(corpus_dir() + "/mm-structured-xl.frdtz");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.golden, load_corpus_golden("mm-structured-xl"));
  EXPECT_GT(r.golden.events, 1000000u) << "xl entry should be million-event";
}

// The acceptance stress test: >= 8 concurrent client streams over a mixed
// corpus (including a million-event .frdtz), every report byte-identical to
// its checked-in golden.
TEST_F(ServeDaemonTest, EightConcurrentStreamsAreByteIdentical) {
  start();
  const std::vector<std::string> entries = {
      "mm-structured",   "mm-structured-large", "bst-general",
      "bst-structured",  "fuzz-general",        "fuzz-structured",
      "lcs-general",     "sync-heavy",          "tracking-structured-xl",
  };
  std::vector<std::thread> threads;
  std::vector<std::string> failures(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    threads.emplace_back([this, &entries, &failures, i] {
      try {
        const std::string& name = entries[i];
        const std::string ext =
            name.find("-xl") != std::string::npos ? ".frdtz" : ".frdt";
        client cli(socket_);
        const submit_result r =
            cli.submit_file(corpus_dir() + "/" + name + ext);
        if (!r.ok) {
          failures[i] = name + ": " + r.error;
          return;
        }
        const corpus::golden_report want = load_corpus_golden(name);
        if (!(r.golden == want)) {
          std::ostringstream got_s, want_s;
          corpus::write_golden(got_s, r.golden);
          corpus::write_golden(want_s, want);
          failures[i] = name + ": golden mismatch\n-- served --\n" +
                        got_s.str() + "-- expected --\n" + want_s.str();
        }
      } catch (const std::exception& e) {
        failures[i] = entries[i] + ": threw " + e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  // The worker bumps streams_completed after the done frame ships, so the
  // last client can observe its result a beat before the counter settles.
  for (int spin = 0;
       spin < 100 && srv_->stats().streams_completed < entries.size(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(srv_->stats().streams_completed, entries.size());
  EXPECT_EQ(srv_->stats().streams_failed, 0u);
}

// Injected failures: corrupt magic, truncated container, version-skewed
// trace, over-budget stream — each fails with a structured per-stream error
// while a concurrent good stream completes, and the daemon keeps serving.
TEST_F(ServeDaemonTest, InjectedFailuresAreIsolated) {
  server_options opt;
  start(opt);

  std::vector<std::uint8_t> garbage = {'n', 'o', 'p', 'e', 0, 1, 2, 3};
  std::vector<std::uint8_t> truncated =
      read_file(corpus_dir() + "/mm-structured-xl.frdtz");
  truncated.resize(truncated.size() / 3);
  std::vector<std::uint8_t> skewed =
      read_file(corpus_dir() + "/mm-structured.frdt");
  skewed[4] = 99;  // flat .frdt: varint version right after the magic
  const std::vector<std::uint8_t> good =
      read_file(corpus_dir() + "/fuzz-structured.frdt");

  struct verdict {
    bool ok = false;
    error_code code = error_code::internal;
    std::string error;
  };
  std::vector<verdict> v(5);
  std::vector<std::thread> threads;
  auto run = [this, &v](std::size_t slot, std::vector<std::uint8_t> bytes,
                        submit_options opt) {
    return std::thread([this, slot, bytes = std::move(bytes), opt, &v] {
      client cli(socket_);
      const submit_result r = cli.submit(bytes, opt);
      v[slot] = {r.ok, r.code, r.error};
    });
  };
  threads.push_back(run(0, garbage, {}));
  threads.push_back(run(1, truncated, {}));
  threads.push_back(run(2, skewed, {}));
  submit_options tiny;
  tiny.budget = 64 << 10;  // far below any session's shadow page
  threads.push_back(
      run(3, read_file(corpus_dir() + "/mm-structured.frdt"), tiny));
  threads.push_back(run(4, good, {}));
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(v[0].ok);
  EXPECT_EQ(v[0].code, error_code::bad_trace) << v[0].error;
  EXPECT_FALSE(v[1].ok);
  EXPECT_EQ(v[1].code, error_code::bad_trace) << v[1].error;
  EXPECT_FALSE(v[2].ok);
  EXPECT_EQ(v[2].code, error_code::bad_trace) << v[2].error;
  EXPECT_NE(v[2].error.find("version"), std::string::npos) << v[2].error;
  EXPECT_FALSE(v[3].ok);
  EXPECT_EQ(v[3].code, error_code::budget_exceeded) << v[3].error;
  EXPECT_TRUE(v[4].ok) << v[4].error;

  // The daemon is still healthy: a fresh client on a fresh connection gets
  // a byte-identical report.
  client cli(socket_);
  const submit_result after =
      cli.submit_file(corpus_dir() + "/fuzz-structured.frdt");
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.golden, load_corpus_golden("fuzz-structured"));
  EXPECT_EQ(srv_->stats().streams_failed, 4u);
}

TEST_F(ServeDaemonTest, UnknownBackendAndStoreFailAtOpen) {
  start();
  client cli(socket_);
  const std::vector<std::uint8_t> bytes =
      read_file(corpus_dir() + "/mm-structured.frdt");
  submit_options bad_backend;
  bad_backend.backend = "no-such-backend";
  submit_result r = cli.submit(bytes, bad_backend);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, error_code::backend_error);
  submit_options bad_store;
  bad_store.store = "no-such-store";
  r = cli.submit(bytes, bad_store);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, error_code::backend_error);
  // The connection survives both refusals.
  r = cli.submit(bytes, {});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_F(ServeDaemonTest, ServerBudgetCapsClientRequests) {
  server_options opt;
  opt.default_budget = 16 << 10;  // tiny: every real stream must blow it
  start(opt);
  client cli(socket_);
  EXPECT_EQ(cli.server_default_budget(), opt.default_budget);
  const std::vector<std::uint8_t> bytes =
      read_file(corpus_dir() + "/mm-structured.frdt");
  // Asking for MORE than the server grants must not escape the cap.
  submit_options want_more;
  want_more.budget = 1u << 30;
  const submit_result r = cli.submit(bytes, want_more);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, error_code::budget_exceeded) << r.error;
}

// The peak-footprint budget check runs once after replay even when the
// stream is too short to hit a checkpoint: a footprint spike cannot duck
// under the grant by finishing between checkpoints, because the charge is
// memory_stats::peak_total_bytes — the high-water mark — not the final
// snapshot.
TEST_F(ServeDaemonTest, PeakFootprintIsChargedWithoutCheckpoints) {
  server_options opt;
  opt.checkpoint_events = 1u << 30;  // no mid-replay checkpoint ever fires
  start(opt);
  client cli(socket_);
  submit_options tiny;
  tiny.budget = 1u << 20;  // above the ~18 KB buffered trace, below the
                           // ~2 MiB shadow-page high-water mark
  const submit_result r =
      cli.submit(read_file(corpus_dir() + "/mm-structured.frdt"), tiny);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, error_code::budget_exceeded) << r.error;
  EXPECT_NE(r.error.find("peaked"), std::string::npos)
      << "the failure must name the high-water mark: " << r.error;
  // The daemon keeps serving, and an unbudgeted retry completes.
  const submit_result again =
      cli.submit_file(corpus_dir() + "/mm-structured.frdt");
  EXPECT_TRUE(again.ok) << again.error;
}

// detect_workers fans each replay batch across the sharded store's shard
// groups; the served report must stay byte-identical to the golden, and
// unsharded streams silently fall back to serial detection instead of
// failing the way a session constructed with workers > 1 on them would.
TEST_F(ServeDaemonTest, ParallelDetectionServesByteIdenticalReports) {
  server_options opt;
  opt.detect_workers = 4;
  start(opt);
  client cli(socket_);
  submit_options sharded;
  sharded.store = "sharded";
  const submit_result par = cli.submit(
      read_file(corpus_dir() + "/tracking-structured-xl.frdtz"), sharded);
  ASSERT_TRUE(par.ok) << par.error;
  EXPECT_EQ(par.golden, load_corpus_golden("tracking-structured-xl"));
  const submit_result serial =
      cli.submit_file(corpus_dir() + "/fuzz-general.frdt");
  ASSERT_TRUE(serial.ok) << serial.error;
  EXPECT_EQ(serial.golden, load_corpus_golden("fuzz-general"));
}

TEST_F(ServeDaemonTest, MidStreamDisconnectLeavesDaemonServing) {
  start();
  {
    // A client that opens a stream, ships half a trace, and vanishes.
    int fd = -1;
    {
      client cli(socket_);
      fd = cli.native_handle();
      frame_io io(fd);
      stream_open_msg open;
      open.stream_id = 1;
      open.backend = "multibags+";
      open.store = "hashed-page";
      io.write_frame(frame_type::stream_open, encode(open));
      const std::vector<std::uint8_t> bytes =
          read_file(corpus_dir() + "/mm-structured.frdt");
      io.write_frame(
          frame_type::trace_data,
          encode_trace_data(1, std::span(bytes.data(), bytes.size() / 2)));
      // ~client closes the socket with the stream still open.
    }
  }
  // The daemon shrugs it off; new work proceeds and matches the golden.
  client cli(socket_);
  const submit_result r = cli.submit_file(corpus_dir() + "/sync-heavy.frdt");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.golden, load_corpus_golden("sync-heavy"));
}

TEST_F(ServeDaemonTest, HelloVersionSkewIsRefused) {
  start();
  // Raw connection with a from-the-future protocol version.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", socket_.c_str());
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  frame_io io(fd);
  hello_msg h;
  h.version = kProtocolVersion + 7;
  io.write_frame(frame_type::hello, encode(h));
  frame f;
  ASSERT_TRUE(io.read_frame(f));
  EXPECT_EQ(f.type, frame_type::error);
  const error_msg e = decode_error_msg(f.payload);
  EXPECT_EQ(e.stream_id, 0u);  // connection-level
  EXPECT_EQ(e.code, error_code::version_skew);
  ::close(fd);

  // And the daemon still serves protocol-conformant clients.
  client cli(socket_);
  EXPECT_TRUE(cli.submit_file(corpus_dir() + "/mm-structured.frdt").ok);
}

TEST_F(ServeDaemonTest, DuplicateStreamIdFailsAndIdIsReusable) {
  start();
  client cli(socket_);
  frame_io io(cli.native_handle());
  stream_open_msg open;
  open.stream_id = 5;
  open.backend = "multibags+";
  open.store = "hashed-page";
  io.write_frame(frame_type::stream_open, encode(open));
  io.write_frame(frame_type::stream_open, encode(open));  // duplicate
  frame f;
  ASSERT_TRUE(io.read_frame(f));
  ASSERT_EQ(f.type, frame_type::error);
  error_msg e = decode_error_msg(f.payload);
  EXPECT_EQ(e.stream_id, 5u);
  EXPECT_EQ(e.code, error_code::bad_frame);
  // The failed id is reusable: run the full stream under id 5 again.
  const std::vector<std::uint8_t> bytes =
      read_file(corpus_dir() + "/mm-structured.frdt");
  io.write_frame(frame_type::stream_open, encode(open));
  io.write_frame(frame_type::trace_data, encode_trace_data(5, bytes));
  io.write_frame(frame_type::stream_close, encode_stream_close(5));
  for (;;) {
    ASSERT_TRUE(io.read_frame(f));
    if (f.type == frame_type::stream_done) {
      EXPECT_EQ(decode_stream_done(f.payload).stream_id, 5u);
      break;
    }
    ASSERT_EQ(f.type, frame_type::race);
  }
}

TEST_F(ServeDaemonTest, ShutdownFrameStopsTheServer) {
  start();
  client cli(socket_);
  ASSERT_TRUE(cli.submit_file(corpus_dir() + "/mm-structured.frdt").ok);
  cli.shutdown_server();
  srv_->wait();  // returns promptly once the shutdown frame landed
  srv_->stop();
  // The socket file is gone; new connections are refused.
  EXPECT_THROW(client{socket_}, io_error);
  srv_.reset();
}

// --------------------------------------------- session::reset() cube --

// The worker pool's recycling contract: after reset(), a session must
// produce byte-identical reports (through write_golden) and identical race
// encounter order on a second replay — across every corpus entry, every
// eligible backend, and every registered shadow store.
TEST(SessionResetCube, SecondReplayIsByteIdentical) {
  const corpus::manifest m =
      corpus::load_manifest(corpus_dir() + "/MANIFEST");
  const std::vector<std::string> stores =
      shadow::store_registry::instance().names();
  std::size_t checks = 0;
  for (const corpus::corpus_entry& e : m.entries) {
    if (e.trace_file.ends_with(".frdtz")) continue;  // keep the cube fast
    trace::memory_trace tape =
        corpus::load_trace(corpus_dir() + "/" + e.trace_file);
    for (const std::string& backend : corpus::eligible_backends(e.futures)) {
      for (const std::string& store : stores) {
        session s(session::options{.backend = backend,
                                   .granule = e.granule,
                                   .shadow_store = store});
        auto one_round = [&](std::string& golden_text,
                             std::vector<std::uint64_t>& order) {
          s.set_race_sink([&order](const detect::race& r) {
            order.push_back(r.granule_addr);
          });
          tape.rewind();
          corpus::golden_report g;
          g.granule = e.granule;
          g.events = s.replay(tape);
          g.accesses = s.access_count();
          g.gets = s.get_count();
          g.violations = s.structured_violations();
          g.racy_granules.insert(s.report().racy_granules().begin(),
                                 s.report().racy_granules().end());
          std::ostringstream out;
          corpus::write_golden(out, g);
          golden_text = out.str();
        };
        std::string first, second;
        std::vector<std::uint64_t> first_order, second_order;
        one_round(first, first_order);
        s.reset();
        one_round(second, second_order);
        EXPECT_EQ(first, second)
            << e.name << " x " << backend << " x " << store
            << ": reset() replay diverged";
        EXPECT_EQ(first_order, second_order)
            << e.name << " x " << backend << " x " << store
            << ": race encounter order changed after reset()";
        ++checks;
      }
    }
  }
  // The cube must actually be a cube, not an accidentally-empty loop.
  EXPECT_GE(checks, 100u) << "corpus/backends/stores shrank unexpectedly";
}

}  // namespace
}  // namespace frd::serve
