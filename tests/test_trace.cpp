// Unit tests of the trace layer: the event model's field tables, binary and
// JSONL codec round trips, malformed-input rejection (bad magic, version
// mismatch, truncation), and the recorder/player inverse property — playing
// a recorded trace into a fresh recorder must reproduce the tape verbatim.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "runtime/serial.hpp"
#include "trace/codec.hpp"
#include "trace/event.hpp"
#include "trace/player.hpp"
#include "trace/recorder.hpp"

namespace frd::trace {
namespace {

// One event of every kind, with distinct field values so a codec that
// permutes or drops a field cannot round-trip them.
std::vector<trace_event> sample_events() {
  std::vector<trace_event> out;
  trace_event e;
  e.kind = event_kind::program_begin;
  e.program_begin = {0, 0};
  out.push_back(e);
  e.kind = event_kind::strand_begin;
  e.strand_begin = {0, 0};
  out.push_back(e);
  e.kind = event_kind::spawn;
  e.fork = {0, 0, 1, 1, 2};
  out.push_back(e);
  e.kind = event_kind::create;
  e.fork = {0, 2, 2, 3, 4};
  out.push_back(e);
  e.kind = event_kind::ret;
  e.ret = {2, 3, 0};
  out.push_back(e);
  e.kind = event_kind::write;
  e.access = {0x7ffd1234abcull & ~0x3ull};
  out.push_back(e);
  e.kind = event_kind::read;
  e.access = {0xdeadbef0ull};
  out.push_back(e);
  e.kind = event_kind::sync_begin;
  e.sync_begin = {0, 4, 1};
  out.push_back(e);
  e.kind = event_kind::sync_child;
  e.sync_child = {1, 0, 1, 1, 2, 5};
  out.push_back(e);
  e.kind = event_kind::get;
  e.get = {0, 5, 6, 2, 3, 2};
  out.push_back(e);
  e.kind = event_kind::program_end;
  e.program_end = {6};
  out.push_back(e);
  return out;
}

TEST(TraceEvent, FieldTablesRoundTripEveryKind) {
  for (const trace_event& e : sample_events()) {
    const event_fields f = fields_of(e);
    EXPECT_EQ(f.n, field_count(e.kind));
    const trace_event back = event_from(e.kind, f);
    EXPECT_EQ(e, back) << to_string(e.kind);
  }
}

TEST(TraceEvent, EventFromRejectsOversized32BitIds) {
  event_fields f;
  f.n = field_count(event_kind::spawn);
  f.v[0] = 0x1'0000'0000ull;  // does not fit a func_id
  EXPECT_THROW(event_from(event_kind::spawn, f), trace_error);
  // Addresses are 64-bit; the same magnitude is fine there.
  event_fields a;
  a.n = 1;
  a.v[0] = 0x1'0000'0000ull;
  EXPECT_EQ(event_from(event_kind::read, a).access.addr, 0x1'0000'0000ull);
}

TEST(TraceCodec, BinaryRoundTripPreservesEventsAndHeader) {
  std::ostringstream out;
  {
    trace_writer w(out, trace_header{kTraceVersion, 8});
    for (const trace_event& e : sample_events()) w.put(e);
    w.finish();
  }
  std::istringstream in(out.str());
  trace_reader r(in);
  EXPECT_EQ(r.header().version, kTraceVersion);
  EXPECT_EQ(r.header().granule, 8u);
  std::vector<trace_event> got;
  trace_event e;
  while (r.next(e)) got.push_back(e);
  const auto want = sample_events();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]) << i;
  // Draining past the end stays false, not an error.
  EXPECT_FALSE(r.next(e));
}

TEST(TraceCodec, JsonlRoundTripPreservesEventsAndHeader) {
  std::ostringstream out;
  jsonl_writer w(out, trace_header{kTraceVersion, 4});
  for (const trace_event& e : sample_events()) w.put(e);
  std::istringstream in(out.str());
  jsonl_reader r(in);
  EXPECT_EQ(r.header().granule, 4u);
  std::vector<trace_event> got;
  trace_event e;
  while (r.next(e)) got.push_back(e);
  const auto want = sample_events();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]) << i;
}

TEST(TraceCodec, OpenSourceSniffsBothFormats) {
  std::ostringstream bin, jsonl;
  trace_writer(bin, {}).finish();
  jsonl_writer jw(jsonl, {});
  std::istringstream bin_in(bin.str()), jsonl_in(jsonl.str());
  trace_event e;
  auto b = open_source(bin_in);
  EXPECT_FALSE(b->next(e));
  auto j = open_source(jsonl_in);
  EXPECT_FALSE(j->next(e));
}

TEST(TraceCodec, CorruptMagicIsRejected) {
  std::istringstream in("NOPE not a trace");
  EXPECT_THROW(trace_reader r(in), trace_error);
}

TEST(TraceCodec, VersionMismatchIsRejected) {
  // Hand-built header: magic, version=2 (unknown), granule=4.
  std::string bytes = "FRDT";
  bytes.push_back(2);
  bytes.push_back(4);
  std::istringstream in(bytes);
  try {
    trace_reader r(in);
    FAIL() << "expected trace_error";
  } catch (const trace_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(TraceCodec, BadGranuleInHeaderIsRejected) {
  std::string bytes = "FRDT";
  bytes.push_back(1);  // version
  bytes.push_back(3);  // granule: not a power of two
  std::istringstream in(bytes);
  EXPECT_THROW(trace_reader r(in), trace_error);
}

TEST(TraceCodec, TruncationIsDetected) {
  std::ostringstream out;
  {
    trace_writer w(out);
    for (const trace_event& e : sample_events()) w.put(e);
    w.finish();
  }
  const std::string full = out.str();
  // Drop the end marker (and a little more): the reader must throw rather
  // than silently report a shorter trace.
  for (const std::size_t cut : {full.size() - 1, full.size() - 3}) {
    std::istringstream in(full.substr(0, cut));
    trace_reader r(in);
    trace_event e;
    EXPECT_THROW(
        while (r.next(e)) {}, trace_error)
        << "cut at " << cut;
  }
}

TEST(TraceCodec, UnknownEventKindIsRejected) {
  std::ostringstream out;
  trace_writer(out, {}).finish();
  std::string bytes = out.str();
  bytes[bytes.size() - 1] = 42;  // overwrite the end marker with junk
  std::istringstream in(bytes);
  trace_reader r(in);
  trace_event e;
  EXPECT_THROW(r.next(e), trace_error);
}

TEST(TraceCodec, OverflowingVarintIsRejectedNotTruncated) {
  // 10-byte varint whose last byte carries bits past bit 63: corrupt input
  // must throw, not decode to a different in-range value.
  std::string bytes = "FRDT";
  for (int i = 0; i < 9; ++i) bytes.push_back(static_cast<char>(0xFF));
  bytes.push_back(0x7F);
  std::istringstream in(bytes);
  EXPECT_THROW(trace_reader r(in), trace_error);
}

TEST(TraceCodec, HeaderValuesAreValidatedBeforeNarrowing) {
  // granule = 2^32 + 4 must not be silently read as 4.
  std::ostringstream jsonl_in;
  jsonl_in << "{\"frd_trace\":true,\"version\":1,\"granule\":4294967300}\n";
  std::istringstream in(jsonl_in.str());
  EXPECT_THROW(jsonl_reader r(in), trace_error);
  std::istringstream in2("{\"frd_trace\":true,\"version\":4294967297,"
                         "\"granule\":4}\n");
  EXPECT_THROW(jsonl_reader r2(in2), trace_error);
}

TEST(TraceCodec, PutAfterFinishThrows) {
  std::ostringstream out;
  trace_writer w(out, {});
  w.finish();
  trace_event e;
  e.kind = event_kind::program_end;
  e.program_end = {0};
  EXPECT_THROW(w.put(e), trace_error);
}

TEST(TraceCodec, JsonlRejectsMalformedLines) {
  const trace_header h{kTraceVersion, 4};
  auto read_one = [&](const std::string& line) {
    std::ostringstream out;
    jsonl_writer w(out, h);
    std::istringstream in(out.str() + line + "\n");
    jsonl_reader r(in);
    trace_event e;
    r.next(e);
  };
  EXPECT_THROW(read_one("{\"ev\":\"nope\"}"), trace_error);
  EXPECT_THROW(read_one("{\"ev\":\"read\"}"), trace_error);  // missing addr
  EXPECT_THROW(read_one("{\"addr\":1}"), trace_error);       // no ev
  EXPECT_THROW(read_one("not json"), trace_error);
  EXPECT_NO_THROW(read_one("{\"ev\":\"read\",\"addr\":16}"));
}

// Mirrors the binary codec's corruption battery: truncated lines, bad event
// tags, wrong value types, oversized ids — every malformed shape must throw,
// never decode to a different event.
TEST(TraceCodec, JsonlRejectsTruncatedLines) {
  const trace_header h{kTraceVersion, 4};
  auto read_one = [&](const std::string& line) {
    std::ostringstream out;
    jsonl_writer w(out, h);
    std::istringstream in(out.str() + line);  // no trailing newline either
    jsonl_reader r(in);
    trace_event e;
    r.next(e);
  };
  // A line cut off mid-object (as a death mid-write would leave it), at
  // several cut points: mid-key, mid-value, before the closing brace.
  EXPECT_THROW(read_one("{\"ev\":\"read\",\"addr\":16"), trace_error);
  EXPECT_THROW(read_one("{\"ev\":\"rea"), trace_error);
  EXPECT_THROW(read_one("{\"ev\""), trace_error);
  EXPECT_THROW(read_one("{"), trace_error);
  // The full line parses fine, proving the cuts above are what throws.
  EXPECT_NO_THROW(read_one("{\"ev\":\"read\",\"addr\":16}"));
}

TEST(TraceCodec, JsonlRejectsBadEventTags) {
  const trace_header h{kTraceVersion, 4};
  auto read_one = [&](const std::string& line) {
    std::ostringstream out;
    jsonl_writer w(out, h);
    std::istringstream in(out.str() + line + "\n");
    jsonl_reader r(in);
    trace_event e;
    r.next(e);
  };
  EXPECT_THROW(read_one("{\"ev\":5,\"addr\":16}"), trace_error);  // numeric tag
  EXPECT_THROW(read_one("{\"ev\":\"\"}"), trace_error);           // empty tag
  EXPECT_THROW(read_one("{\"ev\":\"READ\",\"addr\":16}"), trace_error);  // case
  // A field carrying a string where a number belongs is "missing", not
  // silently coerced.
  EXPECT_THROW(read_one("{\"ev\":\"read\",\"addr\":\"16\"}"), trace_error);
  // 32-bit id overflow is validated after parsing, like the binary side.
  EXPECT_THROW(read_one("{\"ev\":\"spawn\",\"parent\":4294967296,\"u\":0,"
                        "\"child\":1,\"w\":1,\"v\":2}"),
               trace_error);
}

TEST(TraceCodec, JsonlRejectsBadHeaders) {
  auto open = [](const std::string& first_line) {
    std::istringstream in(first_line + "\n");
    jsonl_reader r(in);
  };
  EXPECT_THROW(open("{\"version\":1,\"granule\":4}"), trace_error);  // untagged
  EXPECT_THROW(open("{\"frd_trace\":false,\"version\":1,\"granule\":4}"),
               trace_error);
  EXPECT_THROW(open("{\"frd_trace\":true,\"granule\":4}"), trace_error);
  EXPECT_THROW(open("{\"frd_trace\":true,\"version\":1}"), trace_error);
  EXPECT_THROW(open("{\"frd_trace\":true,\"version\":1,\"granule\":3}"),
               trace_error);  // not a power of two
  EXPECT_THROW(open("{\"frd_trace\":true,\"version\":1,\"granule\""),
               trace_error);  // truncated header line
  EXPECT_NO_THROW(open("{\"frd_trace\":true,\"version\":1,\"granule\":4}"));
}

TEST(TraceCodec, JsonlWriterRejectsAContradictingRecorderGranule) {
  // Same contract as the binary writer: the header is already on the wire,
  // so a recorder announcing a different granule must fail loudly instead of
  // producing a lying trace.
  std::ostringstream out;
  jsonl_writer w(out, trace_header{kTraceVersion, 4});
  EXPECT_THROW(trace_recorder rec(w, 8), trace_error);
  EXPECT_NO_THROW(trace_recorder rec(w, 4));
}

// ------------------------------------------------------- recorder/player --

// Runs a small mixed program under a recorder wired to `granule`, making
// instrumented accesses straight through the recorder sink.
void record_program(trace_sink& out, std::size_t granule) {
  trace_recorder rec(out, granule);
  rt::serial_runtime rt(&rec);
  alignas(8) static int cells[4];
  rt.run([&] {
    auto f = rt.create_future([&] {
      rec.on_write(&cells[0], 4);
      return 1;
    });
    rt.spawn([&] { rec.on_write(&cells[1], 4); });
    rt.spawn([&] { rec.on_read(&cells[1], 4); });
    rec.on_write(&cells[2], 8);  // spans two 4-byte granules
    rt.sync();
    f.get();
    rec.on_read(&cells[0], 4);
  });
}

TEST(TraceRecorder, StampsTheSinkHeaderWithItsGranule) {
  memory_trace tape;  // default-constructed header says granule 4
  trace_recorder rec(tape, 8);
  EXPECT_EQ(tape.header().granule, 8u);
}

TEST(TraceRecorder, RejectsAWriterWithAContradictingHeader) {
  // The binary header is already on the wire when the recorder arrives; a
  // different recording granule must fail loudly, not produce a lying trace.
  std::ostringstream out;
  trace_writer w(out, trace_header{kTraceVersion, 4});
  EXPECT_THROW(trace_recorder rec(w, 8), trace_error);
}

TEST(TraceRecorder, GranuleNormalizesAccesses) {
  memory_trace tape(trace_header{kTraceVersion, 4});
  record_program(tape, 4);
  std::size_t writes = 0, reads = 0;
  for (const trace_event& e : tape.events()) {
    if (e.kind == event_kind::write) {
      EXPECT_EQ(e.access.addr % 4, 0u);
      ++writes;
    } else if (e.kind == event_kind::read) {
      ++reads;
    }
  }
  // 2 single-granule writes + 1 two-granule write = 4 write events.
  EXPECT_EQ(writes, 4u);
  EXPECT_EQ(reads, 2u);
}

TEST(TraceRecorder, SyncIsFlattenedSelfContained) {
  memory_trace tape(trace_header{kTraceVersion, 4});
  record_program(tape, 4);
  bool saw_sync = false;
  for (std::size_t i = 0; i < tape.events().size(); ++i) {
    const trace_event& e = tape.events()[i];
    if (e.kind != event_kind::sync_begin) continue;
    saw_sync = true;
    ASSERT_EQ(e.sync_begin.count, 2u);  // the two spawns join here
    for (std::uint32_t c = 0; c < e.sync_begin.count; ++c) {
      ASSERT_LT(i + 1 + c, tape.events().size());
      EXPECT_EQ(tape.events()[i + 1 + c].kind, event_kind::sync_child);
    }
  }
  EXPECT_TRUE(saw_sync);
}

TEST(TracePlayer, ReplayingIntoARecorderReproducesTheTapeVerbatim) {
  // recorder ∘ player == identity on tapes: the strongest losslessness check
  // without a backend in the loop. Access re-normalization is idempotent
  // because recorded addresses are already granule bases.
  memory_trace tape(trace_header{kTraceVersion, 4});
  record_program(tape, 4);

  memory_trace copy(tape.header());
  trace_recorder re_rec(copy, tape.header().granule);
  trace_player player(tape);
  const auto st = player.play(&re_rec, &re_rec);

  EXPECT_EQ(st.events, tape.size());
  ASSERT_EQ(copy.size(), tape.size());
  for (std::size_t i = 0; i < tape.size(); ++i) {
    EXPECT_EQ(copy.events()[i], tape.events()[i]) << "event " << i;
  }
}

TEST(TracePlayer, OrphanSyncChildIsRejected) {
  memory_trace tape;
  trace_event e;
  e.kind = event_kind::sync_child;
  e.sync_child = {0, 0, 0, 0, 0, 0};
  tape.put(e);
  trace_player player(tape);
  EXPECT_THROW(player.play(nullptr, nullptr), trace_error);
}

TEST(TracePlayer, ShortSyncChildRunIsRejected) {
  memory_trace tape;
  trace_event e;
  e.kind = event_kind::sync_begin;
  e.sync_begin = {0, 0, 2};  // announces 2 children, provides none
  tape.put(e);
  trace_player player(tape);
  EXPECT_THROW(player.play(nullptr, nullptr), trace_error);
}

TEST(TracePlayer, BinaryRoundTripThroughBytesReplaysIdentically) {
  // tape -> binary bytes -> reader -> player -> recorder == tape.
  memory_trace tape(trace_header{kTraceVersion, 4});
  record_program(tape, 4);
  std::ostringstream bytes;
  {
    trace_writer w(bytes, tape.header());
    for (const trace_event& e : tape.events()) w.put(e);
    w.finish();
  }
  std::istringstream in(bytes.str());
  trace_reader r(in);
  memory_trace copy(r.header());
  trace_recorder re_rec(copy, r.header().granule);
  trace_player player(r);
  player.play(&re_rec, &re_rec);
  ASSERT_EQ(copy.size(), tape.size());
  for (std::size_t i = 0; i < tape.size(); ++i) {
    EXPECT_EQ(copy.events()[i], tape.events()[i]) << "event " << i;
  }
}

}  // namespace
}  // namespace frd::trace
