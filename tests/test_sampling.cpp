// Sampling and bounded-history detection modes (DESIGN.md §9).
//
// Two contracts under test:
//
//   identity   sample_rate == 1.0 with unbounded history is not a mode: a
//              session configured that way explicitly must be byte-identical
//              to one that never heard of the knobs — same racy granules,
//              same retained races element-wise, same query-plane counters —
//              across the corpus, every eligible backend, every store, and
//              under parallel detection (workers=4).
//   carve-out  sampled and bounded replays are seeded, reproducible, and
//              only ever shrink the report: per-granule sampling admits or
//              skips whole granules (subset of the full report), bounded
//              depth keeps the most-recent-N readers (suffix of the full
//              list), and the decision counters always partition the access
//              stream exactly.
//
// The corpus directory is baked in at compile time (FRD_CORPUS_DIR, set by
// CMake to <repo>/corpus) and overridable with the environment variable of
// the same name.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "corpus/golden.hpp"
#include "corpus/manifest.hpp"
#include "corpus/runner.hpp"
#include "detect/detector.hpp"
#include "detect/types.hpp"
#include "shadow/store.hpp"
#include "trace/event.hpp"

namespace frd {
namespace {

std::string corpus_dir() {
  if (const char* env = std::getenv("FRD_CORPUS_DIR")) return env;
  return FRD_CORPUS_DIR;
}

const corpus::manifest& corpus_manifest() {
  static const corpus::manifest m =
      corpus::load_manifest(corpus_dir() + "/MANIFEST");
  return m;
}

trace::memory_trace load_entry_trace(const corpus::corpus_entry& e) {
  return corpus::load_trace(corpus_dir() + "/" + e.trace_file);
}

void expect_identical_reports(const session& a, const session& b,
                              const std::string& what) {
  EXPECT_EQ(a.report().total(), b.report().total()) << what;
  EXPECT_EQ(a.report().racy_granules(), b.report().racy_granules()) << what;
  const std::vector<detect::race>& ra = a.report().retained();
  const std::vector<detect::race>& rb = b.report().retained();
  ASSERT_EQ(ra.size(), rb.size()) << what;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].granule_addr, rb[i].granule_addr) << what << " race " << i;
    EXPECT_EQ(ra[i].prior, rb[i].prior) << what << " race " << i;
    EXPECT_EQ(ra[i].prior_kind, rb[i].prior_kind) << what << " race " << i;
    EXPECT_EQ(ra[i].current, rb[i].current) << what << " race " << i;
    EXPECT_EQ(ra[i].current_kind, rb[i].current_kind) << what << " race " << i;
  }
  EXPECT_EQ(a.access_count(), b.access_count()) << what;
  EXPECT_EQ(a.get_count(), b.get_count()) << what;
  EXPECT_EQ(a.query_stats().lookups, b.query_stats().lookups) << what;
  EXPECT_EQ(a.query_stats().cache_hits, b.query_stats().cache_hits) << what;
  EXPECT_EQ(a.query_stats().batches, b.query_stats().batches) << what;
}

// --------------------------------------------------------- identity cube --

struct identity_case {
  std::string entry;
  std::string backend;
  std::string store;
};

// Every (entry, backend) pair on the default store, plus the other stores on
// the compact adversarial shapes (the serial conformance cube already proves
// store-independence of the FULL detector; here the question is only whether
// an explicitly-configured rate-1.0 session stays on the untouched path, so
// million-event entries need not repeat per store). XL entries run under the
// default backend only to keep the suite inside test time.
std::vector<identity_case> identity_cases() {
  std::vector<identity_case> out;
  try {
    for (const corpus::corpus_entry& e : corpus_manifest().entries) {
      const corpus::golden_report gold =
          corpus::load_golden(corpus_dir() + "/" + e.golden_file);
      const bool xl = gold.events > 600000;
      for (const std::string& b : corpus::eligible_backends(e.futures)) {
        if (xl && b != "multibags+") continue;
        out.push_back({e.name, b, std::string(shadow::kDefaultStore)});
      }
      if (e.kind == corpus::entry_kind::adversarial) {
        out.push_back({e.name, "multibags+", "compact"});
        out.push_back({e.name, "multibags+", "sharded"});
      }
    }
  } catch (const std::exception&) {
    // Static-init time (ValuesIn below): degrade to zero cases and let the
    // serial conformance suite report the corpus path problem.
  }
  return out;
}

class RateOneIdentity : public ::testing::TestWithParam<identity_case> {};

TEST_P(RateOneIdentity, ExplicitRateOneIsByteIdenticalToTheDefault) {
  const identity_case& c = GetParam();
  const corpus::corpus_entry* e = corpus_manifest().find(c.entry);
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape = load_entry_trace(*e);
  const corpus::golden_report gold =
      corpus::load_golden(corpus_dir() + "/" + e->golden_file);

  session plain(session::options{.backend = c.backend,
                                 .granule = tape.header().granule,
                                 .shadow_store = c.store});
  plain.replay(tape);
  tape.rewind();
  // The seed and policy must be dead knobs at rate 1.0.
  session cfg(session::options{.backend = c.backend,
                               .granule = tape.header().granule,
                               .shadow_store = c.store,
                               .sample_rate = 1.0,
                               .sample_seed = 0xDEADBEEF,
                               .sampling = detect::sample_policy::epoch,
                               .shadow_history_depth =
                                   shadow::kUnboundedHistory});
  cfg.replay(tape);
  tape.rewind();

  expect_identical_reports(plain, cfg, c.entry + "/" + c.backend);
  EXPECT_EQ(cfg.query_stats().sampled, 0u)
      << "rate 1.0 must not pay for sampling bookkeeping";
  EXPECT_EQ(cfg.query_stats().skipped, 0u);
  // And both match the golden (redundant with conformance, cheap to assert).
  std::set<std::uint64_t> racy;
  for (std::uintptr_t g : cfg.report().racy_granules())
    racy.insert(static_cast<std::uint64_t>(g));
  EXPECT_EQ(racy, gold.racy_granules) << c.entry;
}

std::string identity_name(const ::testing::TestParamInfo<identity_case>& info) {
  std::string s =
      info.param.entry + "_" + info.param.backend + "_" + info.param.store;
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Manifest, RateOneIdentity,
                         ::testing::ValuesIn(identity_cases()), identity_name);

// Parallel detection: the identity must survive the sharded fan-out/merge
// path too (workers=4 at an explicit batch size, same as the parallel
// differential).
TEST(RateOneIdentity, HoldsUnderParallelDetection) {
  const corpus::corpus_entry* e = corpus_manifest().find("mm-structured-xl");
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape = load_entry_trace(*e);

  session::options base{.backend = "multibags+",
                        .granule = tape.header().granule,
                        .shadow_store = "sharded",
                        .shadow_shard_bits = 4,
                        .replay_batch = 1024,
                        .detect_workers = 4};
  session plain(base);
  plain.replay(tape);
  tape.rewind();
  session::options cfgd = base;
  cfgd.sample_rate = 1.0;
  cfgd.sample_seed = 17;
  cfgd.shadow_history_depth = shadow::kUnboundedHistory;
  session cfg(cfgd);
  cfg.replay(tape);
  tape.rewind();

  expect_identical_reports(plain, cfg, "mm-structured-xl workers=4");
  EXPECT_EQ(cfg.query_stats().sampled, 0u);
  EXPECT_EQ(cfg.query_stats().skipped, 0u);
}

// ---------------------------------------------------- sampled replays -----

session::options sampled_options(std::size_t granule, double rate,
                                 std::uint64_t seed,
                                 detect::sample_policy policy =
                                     detect::sample_policy::granule) {
  return session::options{.backend = "multibags+",
                          .granule = granule,
                          .sample_rate = rate,
                          .sample_seed = seed,
                          .sampling = policy};
}

// Same seed, same trace => the same sampled set, the same report, twice.
TEST(Sampling, SameSeedIsDeterministic) {
  const corpus::corpus_entry* e = corpus_manifest().find("fuzz-general");
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape = load_entry_trace(*e);

  session first(sampled_options(tape.header().granule, 0.3, 7));
  first.replay(tape);
  tape.rewind();
  session second(sampled_options(tape.header().granule, 0.3, 7));
  second.replay(tape);
  tape.rewind();

  expect_identical_reports(first, second, "fuzz-general rate 0.3 seed 7");
  EXPECT_EQ(first.query_stats().sampled, second.query_stats().sampled);
  EXPECT_EQ(first.query_stats().skipped, second.query_stats().skipped);
  // The decision counters partition the access stream exactly.
  EXPECT_EQ(first.query_stats().sampled + first.query_stats().skipped,
            first.access_count());
  EXPECT_GT(first.query_stats().sampled, 0u);
  EXPECT_GT(first.query_stats().skipped, 0u);
}

// The seed is live: across a handful of seeds the admitted set must move.
TEST(Sampling, DifferentSeedsSampleDifferentSets) {
  const corpus::corpus_entry* e = corpus_manifest().find("fuzz-general");
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape = load_entry_trace(*e);

  std::set<std::uint64_t> sampled_counts;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    session s(sampled_options(tape.header().granule, 0.3, seed));
    s.replay(tape);
    tape.rewind();
    sampled_counts.insert(s.query_stats().sampled);
  }
  EXPECT_GT(sampled_counts.size(), 1u)
      << "five seeds admitted identical access sets — the seed is dead";
}

// Per-granule sampling admits or skips whole granules, so whatever it
// reports racy must be racy in the full report too.
TEST(Sampling, GranulePolicyReportsASubsetOfTheFullReport) {
  const corpus::corpus_entry* e = corpus_manifest().find("fuzz-general");
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape = load_entry_trace(*e);

  session full(sampled_options(tape.header().granule, 1.0, 1));
  full.replay(tape);
  tape.rewind();
  const std::set<std::uintptr_t>& all = full.report().racy_granules();
  ASSERT_GT(all.size(), 0u) << "fuzz-general must carry races for this test";

  for (double rate : {0.5, 0.2, 0.05}) {
    session s(sampled_options(tape.header().granule, rate, 1));
    s.replay(tape);
    tape.rewind();
    for (std::uintptr_t g : s.report().racy_granules()) {
      EXPECT_TRUE(all.count(g))
          << "rate " << rate << " reported granule " << std::hex << g
          << " that full detection does not";
    }
  }
}

// Epoch policy: whole batches are admitted or skipped together, and the
// counters still partition the stream.
TEST(Sampling, EpochPolicyPartitionsTheStream) {
  const corpus::corpus_entry* e = corpus_manifest().find("fuzz-general");
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape = load_entry_trace(*e);

  session s(sampled_options(tape.header().granule, 0.5, 1,
                            detect::sample_policy::epoch));
  s.replay(tape);
  tape.rewind();
  EXPECT_EQ(s.query_stats().sampled + s.query_stats().skipped,
            s.access_count());
  EXPECT_GT(s.query_stats().sampled, 0u);
  EXPECT_GT(s.query_stats().skipped, 0u);
}

// ---------------------------------------------------- bounded history -----

// Store-level conformance: every registered store keeps exactly the
// most-recent-N readers in append order once the depth is hit.
TEST(BoundedHistory, EveryStoreKeepsTheMostRecentReaders) {
  for (const std::string& name : {std::string("hashed-page"),
                                  std::string("compact"),
                                  std::string("sharded")}) {
    auto store = shadow::store_registry::instance().create(
        name, shadow::store_config{.page_bits = 8,
                                   .granule_shift = 2,
                                   .shard_bits = 2,
                                   .history_depth = 2});
    for (unsigned r = 1; r <= 5; ++r) {
      (void)store->read_step(0x1000, rt::strand_id{r});
    }
    const shadow::store::granule_state st = store->peek(0x1000);
    ASSERT_TRUE(st.touched) << name;
    ASSERT_EQ(st.readers.size(), 2u)
        << name << " retained more readers than its depth";
    EXPECT_EQ(st.readers[0], rt::strand_id{4}) << name;
    EXPECT_EQ(st.readers[1], rt::strand_id{5}) << name;
  }
}

// Depths past the inline capacity exercise the overflow layouts (vector
// overflow in hashed-page, arena node chains in compact).
TEST(BoundedHistory, DepthPastInlineCapacityDropsFromTheFront) {
  for (const std::string& name : {std::string("hashed-page"),
                                  std::string("compact"),
                                  std::string("sharded")}) {
    auto store = shadow::store_registry::instance().create(
        name, shadow::store_config{.page_bits = 8,
                                   .granule_shift = 2,
                                   .shard_bits = 2,
                                   .history_depth = 9});
    for (unsigned r = 1; r <= 30; ++r) {
      (void)store->read_step(0x2000, rt::strand_id{r});
    }
    const shadow::store::granule_state st = store->peek(0x2000);
    ASSERT_EQ(st.readers.size(), 9u) << name;
    for (unsigned i = 0; i < 9; ++i) {
      EXPECT_EQ(st.readers[i], rt::strand_id{22 + i})
          << name << " reader slot " << i;
    }
  }
}

// Session-level: on the purge-stress shape (reader lists grown and purged
// round after round) a bounded session must agree across all three stores
// and only ever shrink the full report.
TEST(BoundedHistory, StoresAgreeOnPurgeStressAtEveryDepth) {
  const corpus::corpus_entry* e = corpus_manifest().find("purge-stress");
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape = load_entry_trace(*e);
  const corpus::golden_report gold =
      corpus::load_golden(corpus_dir() + "/" + e->golden_file);

  for (std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    std::vector<std::unique_ptr<session>> runs;
    for (const std::string& store : {std::string("hashed-page"),
                                     std::string("compact"),
                                     std::string("sharded")}) {
      auto s = std::make_unique<session>(
          session::options{.backend = "multibags+",
                           .granule = tape.header().granule,
                           .shadow_store = store,
                           .shadow_history_depth = depth});
      s->replay(tape);
      tape.rewind();
      for (std::uintptr_t g : s->report().racy_granules()) {
        EXPECT_TRUE(gold.racy_granules.count(static_cast<std::uint64_t>(g)))
            << store << " depth " << depth << " invented a racy granule";
      }
      runs.push_back(std::move(s));
    }
    expect_identical_reports(*runs[0], *runs[1],
                             "hashed-page vs compact depth " +
                                 std::to_string(depth));
    expect_identical_reports(*runs[0], *runs[2],
                             "hashed-page vs sharded depth " +
                                 std::to_string(depth));
  }
}

// The wide-fanin shape (40 siblings racing one granule) still reports that
// granule at depth 1: the single retained reader is enough to pair with the
// racing writer.
TEST(BoundedHistory, DepthOneStillCatchesTheWideFaninRace) {
  const corpus::corpus_entry* e = corpus_manifest().find("wide-fanin");
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape = load_entry_trace(*e);
  const corpus::golden_report gold =
      corpus::load_golden(corpus_dir() + "/" + e->golden_file);

  session s(session::options{.backend = "multibags+",
                             .granule = tape.header().granule,
                             .shadow_history_depth = 1});
  s.replay(tape);
  tape.rewind();
  EXPECT_GT(s.report().racy_granules().size(), 0u);
  for (std::uintptr_t g : s.report().racy_granules()) {
    EXPECT_TRUE(gold.racy_granules.count(static_cast<std::uint64_t>(g)));
  }
}

// ------------------------------------------------------- config errors ----

TEST(SamplingConfig, RejectsOutOfRangeRates) {
  EXPECT_THROW(session(session::options{.sample_rate = 0.0}),
               detect::backend_error);
  EXPECT_THROW(session(session::options{.sample_rate = -0.25}),
               detect::backend_error);
  EXPECT_THROW(session(session::options{.sample_rate = 1.5}),
               detect::backend_error);
}

TEST(SamplingConfig, RejectsADepthZeroHistory) {
  EXPECT_THROW(session(session::options{.shadow_history_depth = 0}),
               shadow::store_error);
}

TEST(SamplingConfig, AcceptsTheBoundaryValues) {
  EXPECT_NO_THROW(session(session::options{.sample_rate = 1.0}));
  EXPECT_NO_THROW(session(session::options{.sample_rate = 0.0001}));
  EXPECT_NO_THROW(session(session::options{.shadow_history_depth = 1}));
}

}  // namespace
}  // namespace frd
