// Unit tests for the access-history shadow memory.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "shadow/access_history.hpp"

namespace frd::shadow {
namespace {

TEST(GranuleRecord, InlineThenOverflowReaders) {
  granule_record rec;
  EXPECT_EQ(rec.reader_count(), 0u);
  EXPECT_EQ(rec.last_reader(), rt::kNoStrand);
  for (strand_id s = 1; s <= 10; ++s) {
    rec.append_reader(s);
    EXPECT_EQ(rec.last_reader(), s);
    EXPECT_EQ(rec.reader_count(), s);
  }
  std::vector<strand_id> got;
  rec.for_each_reader([&](strand_id s) { got.push_back(s); });
  const std::vector<strand_id> want{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(got, want);
}

TEST(GranuleRecord, ClearRetainsOverflowCapacity) {
  granule_record rec;
  for (strand_id s = 0; s < 100; ++s) rec.append_reader(s);
  rec.clear_readers();
  EXPECT_EQ(rec.reader_count(), 0u);
  EXPECT_FALSE(rec.has_readers());
  rec.append_reader(7);
  EXPECT_EQ(rec.last_reader(), 7u);
  EXPECT_EQ(rec.reader_count(), 1u);
}

TEST(GranuleRecord, ExactlyInlineBoundary) {
  granule_record rec;
  rec.append_reader(1);
  rec.append_reader(2);
  rec.append_reader(3);  // fills inline capacity
  EXPECT_EQ(rec.last_reader(), 3u);
  rec.append_reader(4);  // first overflow
  EXPECT_EQ(rec.last_reader(), 4u);
  std::vector<strand_id> got;
  rec.for_each_reader([&](strand_id s) { got.push_back(s); });
  EXPECT_EQ(got, (std::vector<strand_id>{1, 2, 3, 4}));
}

TEST(AccessHistory, FourByteGranularity) {
  access_history h;
  // Bytes 0-3 of a word share a granule; byte 4 starts the next.
  const std::uintptr_t base = 0x1000;
  granule_record& a = h.record_for(base + 0);
  granule_record& b = h.record_for(base + 3);
  granule_record& c = h.record_for(base + 4);
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
}

TEST(AccessHistory, PagesAllocatedLazily) {
  access_history h(/*page_bits=*/8);  // 256 granules = 1 KiB of address space
  EXPECT_EQ(h.page_count(), 0u);
  h.record_for(0x10000);
  EXPECT_EQ(h.page_count(), 1u);
  h.record_for(0x10004);  // same page
  EXPECT_EQ(h.page_count(), 1u);
  h.record_for(0x90000);  // far away: new page
  EXPECT_EQ(h.page_count(), 2u);
}

TEST(AccessHistory, FindWithoutAllocation) {
  access_history h;
  EXPECT_EQ(h.find(0x2000), nullptr);
  h.record_for(0x2000).writer = 9;
  const granule_record* rec = h.find(0x2000);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->writer, 9u);
  // A neighbouring granule on the same (now allocated) page exists but is
  // pristine; a granule on a never-touched page is absent entirely.
  const granule_record* neighbour = h.find(0x2000 + 4);
  ASSERT_NE(neighbour, nullptr);
  EXPECT_EQ(neighbour->writer, rt::kNoStrand);
  EXPECT_FALSE(neighbour->has_readers());
  EXPECT_EQ(h.find(0x2000 + (std::uintptr_t{1} << 30)), nullptr);
}

TEST(AccessHistory, DistinctAddressesKeepDistinctState) {
  access_history h;
  std::vector<std::uintptr_t> addrs;
  for (std::uintptr_t i = 0; i < 1000; ++i) addrs.push_back(0x4000 + i * 4);
  for (std::size_t i = 0; i < addrs.size(); ++i)
    h.record_for(addrs[i]).writer = static_cast<strand_id>(i);
  for (std::size_t i = 0; i < addrs.size(); ++i)
    EXPECT_EQ(h.record_for(addrs[i]).writer, static_cast<strand_id>(i));
}

TEST(AccessHistory, HotPageCacheSurvivesInterleaving) {
  access_history h(/*page_bits=*/4);  // tiny pages force frequent switches
  for (int round = 0; round < 3; ++round) {
    for (std::uintptr_t a = 0; a < 64; ++a) {
      h.record_for(0x1000 + a * 4).writer = 1;
      h.record_for(0x8000 + a * 4).writer = 2;
    }
  }
  for (std::uintptr_t a = 0; a < 64; ++a) {
    EXPECT_EQ(h.record_for(0x1000 + a * 4).writer, 1u);
    EXPECT_EQ(h.record_for(0x8000 + a * 4).writer, 2u);
  }
}

TEST(AccessHistory, BytesReservedTracksPages) {
  access_history h(/*page_bits=*/8);
  h.record_for(0x1000);
  const std::size_t one = h.bytes_reserved();
  EXPECT_GT(one, 0u);
  h.record_for(0x100000);
  EXPECT_EQ(h.bytes_reserved(), 2 * one);
}

}  // namespace
}  // namespace frd::shadow
