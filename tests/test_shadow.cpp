// Unit tests for the shadow-memory store layer.
//
// The protocol tests are parameterized over every registered store: the §3
// semantics (lookup, reader append + dedupe, overflow, writer purge, lazy
// page allocation) must be identical across layouts — the same contract the
// corpus conformance suite enforces end-to-end, checked here at the store
// interface where a failure localizes to one operation.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "shadow/granule_record.hpp"
#include "shadow/sharded_store.hpp"
#include "shadow/store.hpp"

namespace frd::shadow {
namespace {

// ---------------------------------------------------------- granule_record --

TEST(GranuleRecord, InlineThenOverflowReaders) {
  granule_record rec;
  EXPECT_EQ(rec.reader_count(), 0u);
  EXPECT_EQ(rec.last_reader(), rt::kNoStrand);
  for (strand_id s = 1; s <= 10; ++s) {
    rec.append_reader(s);
    EXPECT_EQ(rec.last_reader(), s);
    EXPECT_EQ(rec.reader_count(), s);
  }
  std::vector<strand_id> got;
  rec.for_each_reader([&](strand_id s) { got.push_back(s); });
  const std::vector<strand_id> want{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(got, want);
}

TEST(GranuleRecord, ClearRetainsOverflowCapacity) {
  granule_record rec;
  for (strand_id s = 0; s < 100; ++s) rec.append_reader(s);
  rec.clear_readers();
  EXPECT_EQ(rec.reader_count(), 0u);
  EXPECT_FALSE(rec.has_readers());
  rec.append_reader(7);
  EXPECT_EQ(rec.last_reader(), 7u);
  EXPECT_EQ(rec.reader_count(), 1u);
}

TEST(GranuleRecord, ExactlyInlineBoundary) {
  granule_record rec;
  rec.append_reader(1);
  rec.append_reader(2);
  rec.append_reader(3);  // fills inline capacity
  EXPECT_EQ(rec.last_reader(), 3u);
  rec.append_reader(4);  // first overflow
  EXPECT_EQ(rec.last_reader(), 4u);
  std::vector<strand_id> got;
  rec.for_each_reader([&](strand_id s) { got.push_back(s); });
  EXPECT_EQ(got, (std::vector<strand_id>{1, 2, 3, 4}));
}

std::vector<strand_id> readers_of(const granule_record& rec) {
  std::vector<strand_id> out;
  rec.for_each_reader([&](strand_id s) { out.push_back(s); });
  return out;
}

TEST(GranuleRecord, MoveTransfersStateAndEmptiesTheSource) {
  granule_record rec;
  rec.writer = 9;
  for (strand_id s = 1; s <= 8; ++s) rec.append_reader(s);  // into overflow

  granule_record moved(std::move(rec));
  EXPECT_EQ(moved.writer, 9u);
  EXPECT_EQ(moved.reader_count(), 8u);
  EXPECT_EQ(readers_of(moved), (std::vector<strand_id>{1, 2, 3, 4, 5, 6, 7, 8}));
  // The moved-from record is a valid empty record, usable again.
  EXPECT_EQ(rec.writer, rt::kNoStrand);
  EXPECT_EQ(rec.reader_count(), 0u);
  rec.append_reader(42);
  EXPECT_EQ(rec.last_reader(), 42u);
}

TEST(GranuleRecord, MoveAssignRelocatesIntoGrownStorage) {
  // The scenario the move support exists for: records relocating when a
  // store grows a container of them.
  std::vector<granule_record> records;
  records.emplace_back();
  records[0].writer = 5;
  for (strand_id s = 1; s <= 6; ++s) records[0].append_reader(s);
  for (int i = 0; i < 64; ++i) records.emplace_back();  // forces regrowth
  EXPECT_EQ(records[0].writer, 5u);
  EXPECT_EQ(readers_of(records[0]), (std::vector<strand_id>{1, 2, 3, 4, 5, 6}));

  granule_record other;
  other.append_reader(77);
  other = std::move(records[0]);
  EXPECT_EQ(other.writer, 5u);
  EXPECT_EQ(other.reader_count(), 6u);
}

// ------------------------------------------------------------- the stores --

// Collects the (prior, is_write) pairs a write_step surfaces.
struct prior_log {
  std::vector<std::pair<strand_id, bool>> seen;
  auto fn() {
    return [this](strand_id s, bool w) { seen.emplace_back(s, w); };
  }
};

class AllStores : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<store> make(store_config cfg = {}) const {
    return store_registry::instance().create(GetParam(), cfg);
  }
};

TEST_P(AllStores, FourByteGranularity) {
  auto st = make();
  const std::uintptr_t base = 0x1000;
  prior_log log;
  st->write_step(base + 0, 7, log.fn());
  // Bytes 0-3 of a word share a granule; byte 4 starts the next.
  EXPECT_EQ(st->peek(base + 3).writer, 7u);
  EXPECT_EQ(st->peek(base + 4).writer, rt::kNoStrand);
}

TEST_P(AllStores, PagesAllocatedLazily) {
  auto st = make({.page_bits = 8});  // 256 granules = 1 KiB of address space
  EXPECT_EQ(st->page_count(), 0u);
  st->read_step(0x10000, 1);
  EXPECT_EQ(st->page_count(), 1u);
  st->read_step(0x10004, 1);  // same page
  EXPECT_EQ(st->page_count(), 1u);
  st->read_step(0x90000, 1);  // far away: new page
  EXPECT_EQ(st->page_count(), 2u);
}

TEST_P(AllStores, PeekNeverAllocates) {
  auto st = make();
  EXPECT_FALSE(st->peek(0x2000).touched);
  EXPECT_EQ(st->page_count(), 0u);
  prior_log log;
  st->write_step(0x2000, 9, log.fn());
  const store::granule_state got = st->peek(0x2000);
  ASSERT_TRUE(got.touched);
  EXPECT_EQ(got.writer, 9u);
  // A neighbouring granule on the same (now allocated) page exists but is
  // pristine; a granule on a never-touched page is absent entirely.
  const store::granule_state neighbour = st->peek(0x2000 + 4);
  ASSERT_TRUE(neighbour.touched);
  EXPECT_EQ(neighbour.writer, rt::kNoStrand);
  EXPECT_TRUE(neighbour.readers.empty());
  EXPECT_FALSE(st->peek(0x2000 + (std::uintptr_t{1} << 30)).touched);
  EXPECT_EQ(st->page_count(), 1u);
}

TEST_P(AllStores, DistinctAddressesKeepDistinctState) {
  auto st = make();
  prior_log log;
  std::vector<std::uintptr_t> addrs;
  for (std::uintptr_t i = 0; i < 1000; ++i) addrs.push_back(0x4000 + i * 4);
  for (std::size_t i = 0; i < addrs.size(); ++i)
    st->write_step(addrs[i], static_cast<strand_id>(i), log.fn());
  for (std::size_t i = 0; i < addrs.size(); ++i)
    EXPECT_EQ(st->peek(addrs[i]).writer, static_cast<strand_id>(i));
}

TEST_P(AllStores, HotPathSurvivesPageInterleaving) {
  auto st = make({.page_bits = 4});  // tiny pages force frequent switches
  prior_log log;
  for (int round = 0; round < 3; ++round) {
    for (std::uintptr_t a = 0; a < 64; ++a) {
      st->write_step(0x1000 + a * 4, 1, log.fn());
      st->write_step(0x8000 + a * 4, 2, log.fn());
    }
  }
  for (std::uintptr_t a = 0; a < 64; ++a) {
    EXPECT_EQ(st->peek(0x1000 + a * 4).writer, 1u);
    EXPECT_EQ(st->peek(0x8000 + a * 4).writer, 2u);
  }
}

TEST_P(AllStores, ReadStepReportsThePriorWriterAndAppends) {
  auto st = make();
  const std::uintptr_t a = 0x3000;
  EXPECT_EQ(st->read_step(a, 4), rt::kNoStrand);  // no writer yet
  prior_log log;
  st->write_step(a, 7, log.fn());
  EXPECT_EQ(st->read_step(a, 5), 7u);  // the §3 read race check input
  const store::granule_state got = st->peek(a);
  EXPECT_EQ(got.writer, 7u);
  EXPECT_EQ(got.readers, (std::vector<strand_id>{5}));
}

TEST_P(AllStores, ReadDedupeSkipsTailReaderAndOwnWriter) {
  auto st = make();
  const std::uintptr_t a = 0x3000;
  // Consecutive reads by one strand are recorded once (tail dedupe)...
  st->read_step(a, 5);
  st->read_step(a, 5);
  st->read_step(a, 6);
  st->read_step(a, 6);
  EXPECT_EQ(st->peek(a).readers, (std::vector<strand_id>{5, 6}));
  // ...and a strand that just wrote the granule is not recorded as a reader
  // (the writer field already guards it).
  prior_log log;
  st->write_step(a, 9, log.fn());
  st->read_step(a, 9);
  EXPECT_TRUE(st->peek(a).readers.empty());
  // A reader interleaved between two reads of another strand defeats the
  // tail dedupe by design (both occurrences are real §3 state).
  st->read_step(a, 5);
  st->read_step(a, 6);
  st->read_step(a, 5);
  EXPECT_EQ(st->peek(a).readers, (std::vector<strand_id>{5, 6, 5}));
}

TEST_P(AllStores, ReaderOverflowKeepsAppendOrder) {
  auto st = make();
  const std::uintptr_t a = 0x5000;
  std::vector<strand_id> want;
  for (strand_id s = 1; s <= 100; ++s) {  // far past any inline capacity
    st->read_step(a, s);
    want.push_back(s);
  }
  EXPECT_EQ(st->peek(a).readers, want);
}

TEST_P(AllStores, WriteStepSurfacesWriterThenReadersThenPurges) {
  auto st = make();
  const std::uintptr_t a = 0x6000;
  prior_log setup;
  st->write_step(a, 1, setup.fn());
  EXPECT_TRUE(setup.seen.empty()) << "pristine granule has no prior accesses";
  st->read_step(a, 2);
  st->read_step(a, 3);
  st->read_step(a, 4);

  prior_log log;
  st->write_step(a, 9, log.fn());
  const std::vector<std::pair<strand_id, bool>> want{
      {1, true}, {2, false}, {3, false}, {4, false}};
  EXPECT_EQ(log.seen, want) << "previous writer first, readers in append order";

  const store::granule_state got = st->peek(a);
  EXPECT_EQ(got.writer, 9u);
  EXPECT_TRUE(got.readers.empty()) << "the write purges the reader list";
  EXPECT_EQ(st->read_step(a, 2), 9u) << "the new writer answers later reads";
}

TEST_P(AllStores, PurgeCyclesReuseOverflowStorage) {
  // Steady-state §3 behavior: grow a long reader list, purge, grow again.
  // Storage must be reusable (bytes_reserved bounded by the peak, not the
  // cumulative number of readers ever appended).
  auto st = make();
  const std::uintptr_t a = 0x7000;
  prior_log log;
  st->write_step(a, 1, log.fn());
  for (strand_id s = 0; s < 256; ++s) st->read_step(a, s + 2);
  st->write_step(a, 1, log.fn());
  const std::size_t after_first_purge = st->bytes_reserved();
  for (int round = 0; round < 50; ++round) {
    for (strand_id s = 0; s < 256; ++s) st->read_step(a, s + 2);
    st->write_step(a, 1, log.fn());
    EXPECT_TRUE(st->peek(a).readers.empty());
  }
  EXPECT_LE(st->bytes_reserved(), after_first_purge)
      << "purge cycles must recycle overflow storage, not leak it";
}

TEST_P(AllStores, BytesReservedTracksMaterializedPages) {
  auto st = make({.page_bits = 8});
  EXPECT_EQ(st->bytes_reserved(), 0u);
  st->read_step(0x1000, 1);
  const std::size_t one = st->bytes_reserved();
  EXPECT_GT(one, 0u);
  st->read_step(0x100000, 1);
  EXPECT_GT(st->bytes_reserved(), one);
}

TEST_P(AllStores, NameMatchesTheRegistryKey) {
  auto st = make();
  EXPECT_EQ(st->name(), GetParam());
  EXPECT_GE(st->shard_count(), 1u);
}

std::string store_case_name(const ::testing::TestParamInfo<std::string>& i) {
  std::string s = i.param;
  for (char& c : s)
    if (c == '-') c = '_';
  return s;
}

INSTANTIATE_TEST_SUITE_P(Registry, AllStores,
                         ::testing::ValuesIn(store_registry::instance().names()),
                         store_case_name);

// ----------------------------------------------------------- the registry --

TEST(StoreRegistry, UnknownNameThrowsListingEveryStore) {
  try {
    store_registry::instance().create("no-such-store", {});
    FAIL() << "unknown store name must throw";
  } catch (const store_error& e) {
    const std::string msg = e.what();
    for (const std::string& n : store_registry::instance().names()) {
      EXPECT_NE(msg.find(n), std::string::npos)
          << "error must list registered store '" << n << "'";
    }
  }
}

TEST(StoreRegistry, RejectsOutOfRangeConfigs) {
  auto& reg = store_registry::instance();
  EXPECT_THROW(reg.create(kDefaultStore, {.page_bits = 3}), store_error);
  EXPECT_THROW(reg.create(kDefaultStore, {.page_bits = 25}), store_error);
  EXPECT_THROW(reg.create(kDefaultStore, {.granule_shift = 13}), store_error);
  EXPECT_THROW(reg.create("sharded", {.shard_bits = 11}), store_error);
}

TEST(StoreRegistry, DefaultStoreIsRegisteredAndFlagsAreSane) {
  auto& reg = store_registry::instance();
  ASSERT_NE(reg.find(kDefaultStore), nullptr);
  EXPECT_FALSE(reg.at(kDefaultStore).sharded);
  EXPECT_TRUE(reg.at("sharded").sharded)
      << "the sharded store must advertise that it honors shard_bits";
}

// ---------------------------------------------------------- sharded store --

TEST(ShardedStore, AddressHashSpreadsPagesAcrossShards) {
  sharded_store st({.page_bits = 8, .granule_shift = 2, .shard_bits = 3});
  ASSERT_EQ(st.shard_count(), 8u);
  // 64 distinct pages (page spans 2^(8+2) = 1 KiB of address space).
  constexpr std::uintptr_t kPageSpan = 1 << 10;
  prior_log log;
  for (std::uintptr_t i = 0; i < 64; ++i)
    st.write_step(0x100000 + i * kPageSpan, 1, log.fn());
  EXPECT_EQ(st.page_count(), 64u);

  const std::vector<std::size_t> counts = st.shard_page_counts();
  ASSERT_EQ(counts.size(), 8u);
  std::size_t total = 0, populated = 0, max_shard = 0;
  for (std::size_t c : counts) {
    total += c;
    if (c > 0) ++populated;
    if (c > max_shard) max_shard = c;
  }
  EXPECT_EQ(total, 64u);
  // The multiplicative hash must actually spread sequential page ids: every
  // shard populated, none holding more than a third of the pages. (64
  // sequential pages over 8 shards — a weak hash would pile them up.)
  EXPECT_EQ(populated, 8u) << "sequential pages must reach every shard";
  EXPECT_LE(max_shard, 64u / 3) << "no shard may absorb the bulk of the pages";
}

TEST(ShardedStore, ShardAssignmentIsStablePerPage) {
  sharded_store st({.page_bits = 8, .granule_shift = 2, .shard_bits = 4});
  // Granules within one page always land in the same shard (the hot-page
  // cache depends on it).
  const std::uintptr_t base = 0x42000;
  const std::size_t shard = st.shard_of(base);
  for (std::uintptr_t off = 0; off < (1 << 10); off += 4)
    EXPECT_EQ(st.shard_of(base + off), shard);
}

TEST(ShardedStore, ZeroShardBitsDegeneratesToOneShard) {
  sharded_store st({.page_bits = 8, .granule_shift = 2, .shard_bits = 0});
  EXPECT_EQ(st.shard_count(), 1u);
  prior_log log;
  st.write_step(0x1000, 3, log.fn());
  st.write_step(0x900000, 4, log.fn());
  EXPECT_EQ(st.peek(0x1000).writer, 3u);
  EXPECT_EQ(st.peek(0x900000).writer, 4u);
}

TEST(ShardedStore, StateIsIndependentAcrossShards) {
  sharded_store st({.page_bits = 4, .granule_shift = 2, .shard_bits = 4});
  prior_log log;
  // Scatter writers over many pages, then re-verify every one: a shard
  // mixing up page tables would cross-contaminate.
  for (std::uintptr_t i = 0; i < 256; ++i)
    st.write_step(i * 64, static_cast<strand_id>(i + 1), log.fn());
  for (std::uintptr_t i = 0; i < 256; ++i)
    EXPECT_EQ(st.peek(i * 64).writer, static_cast<strand_id>(i + 1));
}

}  // namespace
}  // namespace frd::shadow
