// Tests for the flag parser and the listener multiplexer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/events.hpp"
#include "runtime/serial.hpp"
#include "support/flags.hpp"

namespace frd {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& storage) {
  std::vector<char*> out;
  out.reserve(storage.size());
  for (auto& s : storage) out.push_back(s.data());
  return out;
}

TEST(Flags, ParsesAllKinds) {
  std::vector<std::string> args{"prog",    "--n",    "2048", "--ratio",
                                "0.5",     "--mode", "full", "--verbose"};
  auto argv = argv_of(args);
  flag_parser p(static_cast<int>(argv.size()), argv.data());
  auto& n = p.int_flag("n", 1, "size");
  auto& ratio = p.double_flag("ratio", 0.0, "ratio");
  auto& mode = p.string_flag("mode", "base", "mode");
  auto& verbose = p.bool_flag("verbose", false, "talk");
  p.parse();
  EXPECT_EQ(n, 2048);
  EXPECT_DOUBLE_EQ(ratio, 0.5);
  EXPECT_EQ(mode, "full");
  EXPECT_TRUE(verbose);
}

TEST(Flags, DefaultsWhenAbsent) {
  std::vector<std::string> args{"prog"};
  auto argv = argv_of(args);
  flag_parser p(static_cast<int>(argv.size()), argv.data());
  auto& n = p.int_flag("n", 42, "size");
  auto& b = p.bool_flag("flag", true, "b");
  p.parse();
  EXPECT_EQ(n, 42);
  EXPECT_TRUE(b);
}

TEST(Flags, ExplicitBoolValues) {
  std::vector<std::string> args{"prog", "--a", "false", "--b", "true"};
  auto argv = argv_of(args);
  flag_parser p(static_cast<int>(argv.size()), argv.data());
  auto& a = p.bool_flag("a", true, "a");
  auto& b = p.bool_flag("b", false, "b");
  p.parse();
  EXPECT_FALSE(a);
  EXPECT_TRUE(b);
}

TEST(Flags, UsageMentionsEveryFlag) {
  std::vector<std::string> args{"prog"};
  auto argv = argv_of(args);
  flag_parser p(static_cast<int>(argv.size()), argv.data());
  p.int_flag("alpha", 1, "the alpha knob");
  p.string_flag("beta", "x", "the beta knob");
  const std::string u = p.usage();
  EXPECT_NE(u.find("--alpha"), std::string::npos);
  EXPECT_NE(u.find("the beta knob"), std::string::npos);
}

TEST(FlagsDeath, UnknownFlagExits) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  std::vector<std::string> args{"prog", "--nope", "1"};
  auto argv = argv_of(args);
  EXPECT_EXIT(
      {
        flag_parser p(static_cast<int>(argv.size()), argv.data());
        p.parse();
      },
      ::testing::ExitedWithCode(1), "unknown flag");
}

TEST(FlagsDeath, NonNumericIntExits) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  std::vector<std::string> args{"prog", "--n", "abc"};
  auto argv = argv_of(args);
  EXPECT_EXIT(
      {
        flag_parser p(static_cast<int>(argv.size()), argv.data());
        p.int_flag("n", 0, "n");
        p.parse();
      },
      ::testing::ExitedWithCode(1), "expects an integer");
}

// ------------------------------------------------------------------ mux ---
class counting_listener final : public rt::execution_listener {
 public:
  int spawns = 0, creates = 0, gets = 0, syncs = 0, strands = 0;
  void on_strand_begin(rt::strand_id, rt::func_id) override { ++strands; }
  void on_spawn(rt::func_id, rt::strand_id, rt::func_id, rt::strand_id,
                rt::strand_id) override {
    ++spawns;
  }
  void on_create(rt::func_id, rt::strand_id, rt::func_id, rt::strand_id,
                 rt::strand_id) override {
    ++creates;
  }
  void on_sync(const sync_event&) override { ++syncs; }
  void on_get(rt::func_id, rt::strand_id, rt::strand_id, rt::func_id,
              rt::strand_id, rt::strand_id) override {
    ++gets;
  }
};

TEST(ListenerMux, AllListenersSeeIdenticalStreams) {
  counting_listener a, b, c;
  rt::listener_mux mux;
  mux.add(&a);
  mux.add(&b);
  mux.add(&c);
  rt::serial_runtime rt(&mux);
  rt.run([&] {
    rt.spawn([&] {});
    auto f = rt.create_future([] { return 0; });
    rt.sync();
    f.get();
  });
  EXPECT_EQ(a.spawns, 1);
  EXPECT_EQ(a.creates, 1);
  EXPECT_EQ(a.syncs, 1);
  EXPECT_EQ(a.gets, 1);
  EXPECT_GT(a.strands, 3);
  EXPECT_EQ(a.spawns, b.spawns);
  EXPECT_EQ(a.strands, c.strands);
  EXPECT_EQ(a.gets, c.gets);
}

TEST(ListenerMux, TargetCollapsesToTheCheapestEquivalentListener) {
  // target() is what the online pump (and any other high-rate emitter)
  // dispatches through: an empty mux must cost a null check, a singleton
  // must cost one virtual call — not a loop over a one-element vector.
  rt::listener_mux mux;
  EXPECT_EQ(mux.target(), nullptr);

  counting_listener only;
  mux.add(&only);
  EXPECT_EQ(mux.target(), &only);

  counting_listener second;
  mux.add(&second);
  EXPECT_EQ(mux.target(), &mux);
}

TEST(ListenerMux, SingleListenerFastPathDeliversEveryCallback) {
  // The single_ cache short-circuits all eight callbacks; the lone listener
  // must still see the full stream.
  counting_listener only;
  rt::listener_mux mux;
  mux.add(&only);
  rt::serial_runtime rt(&mux);
  rt.run([&] {
    rt.spawn([&] {});
    auto f = rt.create_future([] { return 0; });
    rt.sync();
    f.get();
  });
  EXPECT_EQ(only.spawns, 1);
  EXPECT_EQ(only.creates, 1);
  EXPECT_EQ(only.syncs, 1);
  EXPECT_EQ(only.gets, 1);
  EXPECT_GT(only.strands, 3);
}

TEST(ListenerMux, FanOutGrowsPastTheOldFixedCapacity) {
  // The mux used to trap at 8 listeners; recorder + oracle + detector stacks
  // now push past that, so it must grow instead.
  std::vector<counting_listener> many(20);
  rt::listener_mux mux;
  for (auto& l : many) mux.add(&l);
  EXPECT_EQ(mux.size(), many.size());
  rt::serial_runtime rt(&mux);
  rt.run([&] {
    rt.spawn([&] {});
    rt.sync();
  });
  for (const auto& l : many) {
    EXPECT_EQ(l.spawns, 1);
    EXPECT_EQ(l.syncs, 1);
    EXPECT_EQ(l.strands, many.front().strands);
  }
}

}  // namespace
}  // namespace frd
