// Correctness tests for the six paper benchmarks: every kernel variant must
// match its uninstrumented serial reference, be race-free under full
// detection, and (for the structured variants) respect the structured
// discipline. Detection runs go through frd::session.
#include <gtest/gtest.h>

#include <cmath>

#include "api/session.hpp"
#include "bench_suite/bst.hpp"
#include "bench_suite/dedup.hpp"
#include "bench_suite/heartwall.hpp"
#include "bench_suite/lcs.hpp"
#include "bench_suite/mm.hpp"
#include "bench_suite/sw.hpp"
#include "support/prng.hpp"

namespace frd::bench {
namespace {

using detect::hooks::active;
using detect::hooks::none;

// ---------------------------------------------------------------- lcs ----
TEST(LcsKernel, StructuredMatchesReference) {
  const auto in = make_lcs_input(160, 1);
  rt::serial_runtime rt;
  EXPECT_EQ(lcs_structured<none>(rt, in, 32), lcs_reference(in));
}

TEST(LcsKernel, GeneralMatchesReference) {
  const auto in = make_lcs_input(160, 2);
  rt::serial_runtime rt;
  EXPECT_EQ(lcs_general<none>(rt, in, 32), lcs_reference(in));
}

TEST(LcsKernel, UnevenTileSizes) {
  // n not divisible by base: ragged edge tiles.
  const auto in = make_lcs_input(100, 3);
  rt::serial_runtime rt;
  EXPECT_EQ(lcs_structured<none>(rt, in, 32), lcs_reference(in));
  EXPECT_EQ(lcs_general<none>(rt, in, 32), lcs_reference(in));
}

TEST(LcsKernel, SingleTileDegenerate) {
  const auto in = make_lcs_input(24, 4);
  rt::serial_runtime rt;
  EXPECT_EQ(lcs_structured<none>(rt, in, 64), lcs_reference(in));
}

TEST(LcsKernel, StructuredIsRaceFreeAndDisciplined) {
  const auto in = make_lcs_input(96, 5);
  frd::session h("multibags");
  EXPECT_EQ(h.run([&](rt::serial_runtime& rt) {
    return lcs_structured<active>(rt, in, 16);
  }), lcs_reference(in));
  EXPECT_FALSE(h.report().any()) << "wavefront must be race-free";
  EXPECT_EQ(h.structured_violations(), 0u);
  EXPECT_GT(h.access_count(), 0u);
}

TEST(LcsKernel, GeneralIsRaceFreeUnderMultiBagsPlus) {
  const auto in = make_lcs_input(96, 6);
  frd::session h("multibags+");
  EXPECT_EQ(h.run([&](rt::serial_runtime& rt) {
    return lcs_general<active>(rt, in, 16);
  }), lcs_reference(in));
  EXPECT_FALSE(h.report().any());
}

TEST(LcsKernel, DetectorCatchesInjectedDependenceBug) {
  // Drop the left-dependence get (simulated by base == n: single column,
  // then hand-roll a racy variant): two tiles writing the same row without
  // ordering must be reported.
  const auto in = make_lcs_input(64, 7);
  frd::session h("multibags+");
  const tile_grid g(in.a.size(), 32);
  std::vector<std::int32_t> d((g.n + 1) * (g.n + 1), 0);
  h.run([&](rt::serial_runtime& rt) {
    rt.run([&] {
      // Both tiles of row 0 run as unordered futures (left-get omitted).
      auto f0 = rt.create_future([&] {
        detail::lcs_tile<active>(in, d, g, 0, 0);
        return 1;
      });
      auto f1 = rt.create_future([&] {
        detail::lcs_tile<active>(in, d, g, 0, 1);  // reads (0,0)'s column!
        return 1;
      });
      f0.get();
      f1.get();
    });
  });
  EXPECT_TRUE(h.report().any())
      << "removing the wavefront dependence must produce a detected race";
}

// ----------------------------------------------------------------- sw ----
TEST(SwKernel, StructuredMatchesReference) {
  const auto in = make_sw_input(72, 11);
  rt::serial_runtime rt;
  EXPECT_EQ(sw_structured<none>(rt, in, 24), sw_reference(in));
}

TEST(SwKernel, GeneralMatchesReference) {
  const auto in = make_sw_input(72, 12);
  rt::serial_runtime rt;
  EXPECT_EQ(sw_general<none>(rt, in, 24), sw_reference(in));
}

TEST(SwKernel, ScoresArePositiveOnRealInputs) {
  const auto in = make_sw_input(72, 13);
  rt::serial_runtime rt;
  EXPECT_GT(sw_structured<none>(rt, in, 24), 0);
}

TEST(SwKernel, StructuredRaceFree) {
  const auto in = make_sw_input(48, 14);
  frd::session h("multibags");
  EXPECT_EQ(h.run([&](rt::serial_runtime& rt) {
    return sw_structured<active>(rt, in, 16);
  }), sw_reference(in));
  EXPECT_FALSE(h.report().any());
  EXPECT_EQ(h.structured_violations(), 0u);
}

// ----------------------------------------------------------------- mm ----
TEST(MmKernel, StructuredMatchesReference) {
  const auto in = make_mm_input(64, 21);
  rt::serial_runtime rt;
  EXPECT_EQ(mm_structured<none>(rt, in, 16), mm_reference(in));
}

TEST(MmKernel, GeneralMatchesReference) {
  const auto in = make_mm_input(64, 22);
  rt::serial_runtime rt;
  EXPECT_EQ(mm_general<none>(rt, in, 16), mm_reference(in));
}

TEST(MmKernel, BaseEqualsNDegenerate) {
  const auto in = make_mm_input(32, 23);
  rt::serial_runtime rt;
  EXPECT_EQ(mm_structured<none>(rt, in, 32), mm_reference(in));
}

TEST(MmKernel, StructuredRaceFreeAndDisciplined) {
  const auto in = make_mm_input(32, 24);
  frd::session h("multibags");
  EXPECT_EQ(h.run([&](rt::serial_runtime& rt) {
    return mm_structured<active>(rt, in, 8);
  }), mm_reference(in));
  EXPECT_FALSE(h.report().any());
  EXPECT_EQ(h.structured_violations(), 0u);
}

TEST(MmKernel, GeneralRaceFreeUnderMultiBagsPlus) {
  const auto in = make_mm_input(32, 25);
  frd::session h("multibags+");
  EXPECT_EQ(h.run([&](rt::serial_runtime& rt) {
    return mm_general<active>(rt, in, 8);
  }), mm_reference(in));
  EXPECT_FALSE(h.report().any());
}

TEST(MmKernel, DetectorCatchesUnserializedAccumulation) {
  // Two k-partials of the same C block as unordered futures: the classic
  // "no temporaries" bug the chain exists to prevent.
  const auto in = make_mm_input(16, 26);
  frd::session h("multibags+");
  std::vector<float> c(in.n * in.n, 0.0f);
  h.run([&](rt::serial_runtime& rt) {
    rt.run([&] {
      auto f0 = rt.create_future([&] {
        detail::mm_block<active>(in, c, 8, 0, 0, 0);
        return 1;
      });
      auto f1 = rt.create_future([&] {
        detail::mm_block<active>(in, c, 8, 0, 0, 1);
        return 1;
      });
      f0.get();
      f1.get();
    });
  });
  EXPECT_TRUE(h.report().any());
}

// ---------------------------------------------------------------- bst ----
TEST(BstKernel, StructuredMergePreservesAllKeys) {
  auto in = make_bst_input(3000, 1500, 31);
  rt::serial_runtime rt;
  bst_node* m = bst_structured<none>(rt, in, 6);
  EXPECT_EQ(bst_count(m), 4500u);
  EXPECT_TRUE(bst_is_search_tree(m));
}

TEST(BstKernel, GeneralMergePreservesAllKeys) {
  auto in = make_bst_input(3000, 1500, 32);
  rt::serial_runtime rt;
  bst_node* m = bst_general<none>(rt, in, 6);
  EXPECT_EQ(bst_count(m), 4500u);
  EXPECT_TRUE(bst_is_search_tree(m));
}

TEST(BstKernel, KeySumConserved) {
  auto in = make_bst_input(2000, 1000, 33);
  const std::int64_t want = bst_key_sum(in.t1) + bst_key_sum(in.t2);
  rt::serial_runtime rt;
  bst_node* m = bst_structured<none>(rt, in, 5);
  EXPECT_EQ(bst_key_sum(m), want);
}

TEST(BstKernel, CutoffZeroIsFullySerial) {
  auto in = make_bst_input(500, 250, 34);
  rt::serial_runtime rt;
  bst_node* m = bst_structured<none>(rt, in, 0);
  EXPECT_EQ(bst_count(m), 750u);
  EXPECT_TRUE(bst_is_search_tree(m));
}

TEST(BstKernel, EmptySideMerges) {
  auto in = make_bst_input(100, 0, 35);
  rt::serial_runtime rt;
  EXPECT_EQ(bst_count(bst_structured<none>(rt, in, 4)), 100u);
  auto in2 = make_bst_input(0, 100, 36);
  rt::serial_runtime rt2;
  EXPECT_EQ(bst_count(bst_structured<none>(rt2, in2, 4)), 100u);
}

TEST(BstKernel, StructuredRaceFreeAndDisciplined) {
  auto in = make_bst_input(800, 400, 37);
  frd::session h("multibags");
  bst_node* m = h.run([&](rt::serial_runtime& rt) {
    return bst_structured<active>(rt, in, 5);
  });
  EXPECT_TRUE(bst_is_search_tree(m));
  EXPECT_FALSE(h.report().any());
  EXPECT_EQ(h.structured_violations(), 0u);
}

TEST(BstKernel, GeneralJoinOrderViolatesDiscipline) {
  // The bottom-up resolver touches handles whose creators are parallel —
  // MultiBags flags it (and MultiBags+ handles it without complaint).
  auto in = make_bst_input(800, 400, 38);
  {
    frd::session h("multibags");
    bst_node* m = h.run([&](rt::serial_runtime& rt) {
      return bst_general<active>(rt, in, 5);
    });
    EXPECT_TRUE(bst_is_search_tree(m));
    EXPECT_GT(h.structured_violations(), 0u);
  }
  auto in2 = make_bst_input(800, 400, 38);
  {
    frd::session h("multibags+");
    bst_node* m = h.run([&](rt::serial_runtime& rt) {
      return bst_general<active>(rt, in2, 5);
    });
    EXPECT_TRUE(bst_is_search_tree(m));
    EXPECT_FALSE(h.report().any());
  }
}

// ----------------------------------------------------------- heartwall ---
TEST(HeartwallKernel, StructuredMatchesReference) {
  const auto in = make_heartwall_input(96, 96, 8, 5, 41);
  rt::serial_runtime rt;
  const auto got = heartwall_structured<none>(rt, in);
  const auto want = heartwall_reference(in);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t p = 0; p < got.size(); ++p) {
    EXPECT_EQ(got[p].x, want[p].x);
    EXPECT_EQ(got[p].y, want[p].y);
  }
}

TEST(HeartwallKernel, GeneralTracksTheWall) {
  const auto in = make_heartwall_input(96, 96, 8, 5, 42);
  rt::serial_runtime rt;
  const auto got = heartwall_general<none>(rt, in);
  const double r = in.seq.radius_at(in.n_frames - 1);
  for (const auto& p : got) {
    const double d = std::hypot(p.x - 48.0, p.y - 48.0);
    EXPECT_NEAR(d, r, 6.0);
  }
}

TEST(HeartwallKernel, StructuredRaceFreeAndDisciplined) {
  const auto in = make_heartwall_input(64, 64, 6, 4, 43);
  frd::session h("multibags");
  (void)h.run([&](rt::serial_runtime& rt) {
    return heartwall_structured<active>(rt, in);
  });
  EXPECT_FALSE(h.report().any());
  EXPECT_EQ(h.structured_violations(), 0u);
}

TEST(HeartwallKernel, GeneralRaceFreeUnderMultiBagsPlus) {
  const auto in = make_heartwall_input(64, 64, 6, 4, 44);
  frd::session h("multibags+");
  (void)h.run([&](rt::serial_runtime& rt) {
    return heartwall_general<active>(rt, in);
  });
  EXPECT_FALSE(h.report().any());
}

// --------------------------------------------------------------- dedup ---
TEST(DedupKernel, PipelineMatchesReference) {
  const auto in = make_dedup_corpus(1 << 19, 60, 51);
  rt::serial_runtime rt;
  const auto got = dedup_pipeline<none, none>(rt, in, 1 << 15);
  EXPECT_EQ(got, dedup_reference(in, 1 << 15));
}

TEST(DedupKernel, RedundancyDrivesDedupRate) {
  rt::serial_runtime rt;
  const auto low = make_dedup_corpus(1 << 19, 5, 52);
  const auto high = make_dedup_corpus(1 << 19, 90, 52);
  const auto r_low = dedup_pipeline<none, none>(rt, low, 1 << 16);
  const auto r_high = dedup_pipeline<none, none>(rt, high, 1 << 16);
  const double uniq_low =
      static_cast<double>(r_low.unique_chunks) / r_low.total_chunks;
  const double uniq_high =
      static_cast<double>(r_high.unique_chunks) / r_high.total_chunks;
  EXPECT_GT(uniq_low, uniq_high + 0.2);
}

TEST(DedupKernel, StructuredRaceFreeAndDisciplined) {
  const auto in = make_dedup_corpus(1 << 17, 50, 53);
  frd::session h("multibags");
  const auto got = h.run([&](rt::serial_runtime& rt) {
    return dedup_pipeline<active, none>(rt, in, 1 << 14);
  });
  EXPECT_EQ(got, dedup_reference(in, 1 << 14));
  EXPECT_FALSE(h.report().any());
  EXPECT_EQ(h.structured_violations(), 0u);
}

TEST(DedupKernel, InstrumentedCompressorStillCorrect) {
  const auto in = make_dedup_corpus(1 << 16, 50, 54);
  frd::session h("multibags+");
  const auto got = h.run([&](rt::serial_runtime& rt) {
    return dedup_pipeline<active, active>(rt, in, 1 << 14);
  });
  EXPECT_EQ(got, dedup_reference(in, 1 << 14));
  EXPECT_FALSE(h.report().any());
}

TEST(DedupKernel, DetectorCatchesUnchainedTableAccess) {
  // Remove the pipeline chain: two fragments update the dedup table in
  // parallel. The corpus is one 32 KiB block repeated, so both fragments
  // insert the same keys and the same table slots are touched from parallel
  // strands.
  dedup_input in;
  {
    prng rng(55);
    std::vector<std::uint8_t> block(32 << 10);
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
    for (int rep = 0; rep < 4; ++rep)
      in.corpus.insert(in.corpus.end(), block.begin(), block.end());
  }
  frd::session h("multibags+");
  detail::dedup_table table(1024);
  h.run([&](rt::serial_runtime& rt) {
    rt.run([&] {
      auto frag_task = [&](std::size_t off, std::size_t len) {
        const std::span<const std::uint8_t> frag(in.corpus.data() + off, len);
        for (const auto& c : compress::chunk_bytes(frag)) {
          const std::span<const std::uint8_t> chunk(frag.data() + c.offset,
                                                    c.size);
          table.insert<active>(compress::sha1_key64(compress::sha1(chunk)));
        }
        return 1;
      };
      auto f0 = rt.create_future([&] { return frag_task(0, 1 << 16); });
      auto f1 = rt.create_future([&] { return frag_task(1 << 16, 1 << 16); });
      f0.get();
      f1.get();
    });
  });
  EXPECT_TRUE(h.report().any())
      << "parallel unordered dedup-table updates must race";
}

}  // namespace
}  // namespace frd::bench
