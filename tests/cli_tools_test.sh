#!/usr/bin/env bash
# CLI surface tests for frd-trace and frd-corpus (registered as ctest
# `cli_tools`). Covers what the unit tests cannot: argv handling, exit
# codes, format auto-detection across processes, no-partial-artifact
# guarantees, and `frd-corpus verify`'s non-zero divergence exit naming the
# backend and granule.
#
# usage: cli_tools_test.sh <frd-trace> <frd-corpus> <corpus-dir> [frd-serve]
set -u

FRD_TRACE=$1
FRD_CORPUS=$2
CORPUS_DIR=$3
FRD_SERVE=${4:-}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fails=0
note() { printf '%s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*" >&2; fails=$((fails + 1)); }

# expect_rc <expected-rc> <description> <cmd...>
expect_rc() {
  local want=$1 what=$2
  shift 2
  "$@" >"$TMP/out" 2>"$TMP/err"
  local got=$?
  if [ "$got" -ne "$want" ]; then
    fail "$what: expected exit $want, got $got"
    sed 's/^/  stderr: /' "$TMP/err" >&2
  fi
}

# ------------------------------------------------------------- frd-trace --

expect_rc 2 "frd-trace with no arguments prints usage" "$FRD_TRACE"
expect_rc 2 "frd-trace rejects an unknown subcommand" "$FRD_TRACE" frobnicate
expect_rc 2 "frd-trace run without a file argument" "$FRD_TRACE" run
expect_rc 1 "frd-trace run on a missing file" "$FRD_TRACE" run "$TMP/nope.frdt"
expect_rc 2 "frd-trace record without --out" "$FRD_TRACE" record --program demo
expect_rc 2 "frd-trace record with unknown --program" \
  "$FRD_TRACE" record --program nope --out "$TMP/x.frdt"
expect_rc 2 "frd-trace record with a bad --granule" \
  "$FRD_TRACE" record --program demo --granule 3 --out "$TMP/x.frdt"
expect_rc 1 "frd-trace record with unknown --backend" \
  "$FRD_TRACE" record --program demo --backend nope --out "$TMP/x.frdt"
[ -e "$TMP/x.frdt" ] && fail "failed record left a partial artifact behind"

expect_rc 0 "frd-trace records the demo program (binary)" \
  "$FRD_TRACE" record --program demo --out "$TMP/demo.frdt"
expect_rc 0 "frd-trace records the demo program (jsonl)" \
  "$FRD_TRACE" record --program demo --format jsonl --out "$TMP/demo.jsonl"
expect_rc 0 "frd-trace stats reads the binary trace" \
  "$FRD_TRACE" stats "$TMP/demo.frdt"
expect_rc 0 "frd-trace dump converts binary to jsonl" \
  "$FRD_TRACE" dump "$TMP/demo.frdt"

# Auto-detection: the same recording replayed from both encodings must
# produce the same race report.
"$FRD_TRACE" run "$TMP/demo.frdt" >"$TMP/run_bin.txt" 2>&1 ||
  fail "replaying the binary demo trace"
"$FRD_TRACE" run "$TMP/demo.jsonl" >"$TMP/run_jsonl.txt" 2>&1 ||
  fail "replaying the jsonl demo trace (format auto-detect)"
if ! diff <(grep '^races:' "$TMP/run_bin.txt") \
          <(grep '^races:' "$TMP/run_jsonl.txt") >/dev/null; then
  fail "binary and jsonl replays of the same program disagree on races"
fi
grep -q 'mode: *replay' "$TMP/run_bin.txt" ||
  fail "frd-trace run should report replay mode"

# A truncated trace must be rejected, not silently shortened.
head -c 16 "$TMP/demo.frdt" >"$TMP/cut.frdt"
expect_rc 1 "frd-trace run rejects a truncated trace" \
  "$FRD_TRACE" run "$TMP/cut.frdt"

# Shadow-store selection: every registered store replays to the same report;
# an unknown store fails with the registered names.
expect_rc 1 "frd-trace run rejects an unknown --store" \
  "$FRD_TRACE" run "$TMP/demo.frdt" --store nope
grep -q 'hashed-page' "$TMP/err" ||
  fail "unknown-store error must list the registered stores"
expect_rc 2 "frd-trace run rejects out-of-range --shard-bits" \
  "$FRD_TRACE" run "$TMP/demo.frdt" --store sharded --shard-bits 99
for store in sharded compact; do
  "$FRD_TRACE" run "$TMP/demo.frdt" --store "$store" >"$TMP/run_$store.txt" 2>&1 ||
    fail "replaying the demo trace on the $store store"
  if ! diff <(grep '^races:' "$TMP/run_bin.txt") \
            <(grep '^races:' "$TMP/run_$store.txt") >/dev/null; then
    fail "store '$store' disagrees with the default store on races"
  fi
done

# ----------------------------------------------- .frdtz container surface --

expect_rc 2 "frd-trace pack without --out" "$FRD_TRACE" pack "$TMP/demo.frdt"
expect_rc 1 "frd-trace pack on a missing file" \
  "$FRD_TRACE" pack "$TMP/nope.frdt" --out "$TMP/nope.frdtz"
[ -e "$TMP/nope.frdtz" ] && fail "failed pack left a partial artifact behind"
expect_rc 2 "frd-trace unpack without --out" "$FRD_TRACE" unpack "$TMP/demo.frdtz"
expect_rc 1 "frd-trace unpack rejects a flat trace" \
  "$FRD_TRACE" unpack "$TMP/demo.frdt" --out "$TMP/flat.frdt"
expect_rc 2 "frd-trace record rejects --compress with --format jsonl" \
  "$FRD_TRACE" record --program demo --compress --format jsonl \
  --out "$TMP/x.frdtz"

# pack -> unpack must reproduce the flat trace byte for byte.
expect_rc 0 "frd-trace pack wraps the demo trace" \
  "$FRD_TRACE" pack "$TMP/demo.frdt" --out "$TMP/demo.frdtz"
expect_rc 0 "frd-trace unpack restores the flat trace" \
  "$FRD_TRACE" unpack "$TMP/demo.frdtz" --out "$TMP/demo.roundtrip.frdt"
cmp -s "$TMP/demo.frdt" "$TMP/demo.roundtrip.frdt" ||
  fail "pack/unpack round trip is not byte-identical"

# Replay auto-detects the container and agrees with the flat replay.
"$FRD_TRACE" run "$TMP/demo.frdtz" >"$TMP/run_frdtz.txt" 2>&1 ||
  fail "replaying the packed demo trace (container auto-detect)"
if ! diff <(grep '^races:' "$TMP/run_bin.txt") \
          <(grep '^races:' "$TMP/run_frdtz.txt") >/dev/null; then
  fail "flat and container replays of the same trace disagree on races"
fi

# record --compress writes a container directly.
expect_rc 0 "frd-trace record --compress writes a container" \
  "$FRD_TRACE" record --program demo --compress --out "$TMP/rec.frdtz"
expect_rc 0 "frd-trace run replays a recorded container" \
  "$FRD_TRACE" run "$TMP/rec.frdtz"

# stats on a container reports the container section.
expect_rc 0 "frd-trace stats reads the container" \
  "$FRD_TRACE" stats "$TMP/demo.frdtz"
grep -q '^container:' "$TMP/out" ||
  fail "stats on a .frdtz must print the container section"
grep -q 'ratio' "$TMP/out" ||
  fail "stats on a .frdtz must print the compression ratio"

# A corrupted container must be rejected with a named diagnosis.
cp "$TMP/demo.frdtz" "$TMP/bad.frdtz"
printf 'X' | dd of="$TMP/bad.frdtz" bs=1 seek=20 conv=notrunc 2>/dev/null
expect_rc 1 "frd-trace run rejects a corrupted container" \
  "$FRD_TRACE" run "$TMP/bad.frdtz"
grep -q 'corrupt trace container' "$TMP/err" ||
  fail "corrupted-container error must name the container layer"
head -c 40 "$TMP/demo.frdtz" >"$TMP/cut.frdtz"
expect_rc 1 "frd-trace run rejects a truncated container" \
  "$FRD_TRACE" run "$TMP/cut.frdtz"

# ----------------------------------------------------- windowed replay --

expect_rc 2 "frd-trace run rejects --to <= --from" \
  "$FRD_TRACE" run "$TMP/demo.frdt" --from 10 --to 10
expect_rc 2 "frd-trace run rejects a negative --from" \
  "$FRD_TRACE" run "$TMP/demo.frdt" --from -1

# --to alone is an exact prefix replay; --to beyond the end is the full run.
"$FRD_TRACE" run "$TMP/demo.frdt" --to 999999 >"$TMP/run_prefix.txt" 2>&1 ||
  fail "prefix replay with --to past the end"
if ! diff <(grep '^races:' "$TMP/run_bin.txt") \
          <(grep '^races:' "$TMP/run_prefix.txt") >/dev/null; then
  fail "--to past the end must equal the full replay"
fi
"$FRD_TRACE" run "$TMP/demo.frdt" --to 3 >"$TMP/out" 2>&1 ||
  fail "short prefix replay (--to 3)"
grep -q '^window:' "$TMP/out" || fail "prefix replay must print the window"

# --from > 0 degrades (explicitly) to the reachability-free conflict scan;
# on a v2 container it seeks through the footer index first.
"$FRD_TRACE" run "$TMP/demo.frdtz" --from 2 --to 20 >"$TMP/out" 2>&1 ||
  fail "window conflict scan on a container"
grep -q '^window scan:' "$TMP/out" && grep -q 'reachability-free' "$TMP/out" ||
  fail "a --from window must label itself a reachability-free scan"

# stats on a freshly packed container reports the seekable v2 index.
"$FRD_TRACE" stats "$TMP/demo.frdtz" >"$TMP/out" 2>&1
grep -q 'seekable event index' "$TMP/out" ||
  fail "stats must report the v2 seek index"

# --------------------------------------------------------- serve daemon --

if [ -n "$FRD_SERVE" ]; then
  SOCK="$TMP/frd.sock"
  expect_rc 2 "frd-serve without --socket prints usage" "$FRD_SERVE"
  expect_rc 2 "frd-trace submit without --socket" \
    "$FRD_TRACE" submit "$TMP/demo.frdt"
  expect_rc 1 "frd-trace submit with no daemon listening" \
    "$FRD_TRACE" submit "$TMP/demo.frdt" --socket "$SOCK"
  expect_rc 1 "frd-trace shutdown with no daemon listening" \
    "$FRD_TRACE" shutdown --socket "$SOCK"

  "$FRD_SERVE" --socket "$SOCK" --workers 2 >"$TMP/serve.log" 2>&1 &
  SERVE_PID=$!
  # Readiness: the daemon prints its listening line once the socket is live.
  for _ in $(seq 1 50); do
    grep -q 'listening on' "$TMP/serve.log" && break
    sleep 0.1
  done
  grep -q 'listening on' "$TMP/serve.log" || fail "frd-serve never came up"

  # A served replay must agree with the offline replay of the same trace.
  "$FRD_TRACE" submit "$TMP/demo.frdt" --socket "$SOCK" \
    >"$TMP/submit.txt" 2>&1 || fail "submitting the demo trace"
  if ! diff <(grep '^races:' "$TMP/run_bin.txt") \
            <(grep '^races:' "$TMP/submit.txt") >/dev/null; then
    fail "served and offline replays disagree on races"
  fi
  # Containers are auto-detected over the wire too, and a golden written by
  # the client matches the checked-in corpus golden byte for byte.
  "$FRD_TRACE" submit "$CORPUS_DIR/mm-structured-xl.frdtz" --socket "$SOCK" \
    --golden-out "$TMP/xl.golden" >/dev/null 2>&1 ||
    fail "submitting the million-event container"
  cmp -s "$TMP/xl.golden" "$CORPUS_DIR/mm-structured-xl.golden" ||
    fail "served golden of mm-structured-xl is not byte-identical"
  # One bad stream must not take the daemon down.
  expect_rc 1 "submit rejects a truncated trace via the daemon" \
    "$FRD_TRACE" submit "$TMP/cut.frdt" --socket "$SOCK"
  expect_rc 0 "daemon still serves after a failed stream" \
    "$FRD_TRACE" submit "$TMP/demo.frdt" --socket "$SOCK"

  expect_rc 0 "frd-trace shutdown stops the daemon" \
    "$FRD_TRACE" shutdown --socket "$SOCK"
  wait "$SERVE_PID"
  [ $? -eq 0 ] || fail "frd-serve exited non-zero after shutdown"
  grep -q 'stopped:' "$TMP/serve.log" ||
    fail "frd-serve must print its final stats line"
  [ -e "$SOCK" ] && fail "frd-serve left its socket file behind"
else
  note "frd-serve binary not provided; skipping serve checks"
fi

# ------------------------------------------------------------ frd-corpus --

expect_rc 2 "frd-corpus with no arguments prints usage" "$FRD_CORPUS"
expect_rc 2 "frd-corpus rejects an unknown subcommand" "$FRD_CORPUS" nope
expect_rc 1 "frd-corpus verify on a missing directory" \
  "$FRD_CORPUS" verify --dir "$TMP/no-such-corpus"
expect_rc 0 "frd-corpus list prints the manifest" \
  "$FRD_CORPUS" list --dir "$CORPUS_DIR"
expect_rc 1 "frd-corpus verify rejects an unknown --backend" \
  "$FRD_CORPUS" verify --dir "$CORPUS_DIR" --backend nope
expect_rc 1 "frd-corpus verify rejects an unknown --store" \
  "$FRD_CORPUS" verify --dir "$CORPUS_DIR" --store nope
expect_rc 1 "frd-corpus verify fails when --backend matches zero checks" \
  "$FRD_CORPUS" verify --dir "$CORPUS_DIR" --backend sp-bags
expect_rc 0 "frd-corpus verify passes restricted to one store" \
  "$FRD_CORPUS" verify --dir "$CORPUS_DIR" --store sharded
expect_rc 1 "frd-corpus generate rejects an unknown --only" \
  "$FRD_CORPUS" generate --dir "$TMP" --only nope

expect_rc 0 "frd-corpus verify passes on the checked-in corpus" \
  "$FRD_CORPUS" verify --dir "$CORPUS_DIR"

# Tamper with a copy: verify must exit non-zero and say WHICH backend
# diverged on WHICH granule.
cp -r "$CORPUS_DIR" "$TMP/corpus"
# Portable rewrite (BSD sed reads -i differently): swap the racy list for a
# granule no backend will ever report.
sed -e 's/^racy_granules .*/racy_granules 1/' -e '/^racy 0x/d' \
  "$TMP/corpus/sync-heavy.golden" >"$TMP/golden.tmp"
printf 'racy 0xdead00\n' >>"$TMP/golden.tmp"
mv "$TMP/golden.tmp" "$TMP/corpus/sync-heavy.golden"
"$FRD_CORPUS" verify --dir "$TMP/corpus" >"$TMP/out" 2>"$TMP/err"
rc=$?
if [ "$rc" -eq 0 ]; then
  fail "verify passed on a tampered golden"
fi
grep -q 'FAIL sync-heavy \[' "$TMP/err" ||
  fail "verify divergence must name the entry and backend"
grep -q '0xdead00' "$TMP/err" ||
  fail "verify divergence must name the granule that diverged"

# A corpus with a missing trace file fails loudly too.
rm "$TMP/corpus/wide-fanin.frdt"
expect_rc 1 "frd-corpus verify fails when a manifest trace is missing" \
  "$FRD_CORPUS" verify --dir "$TMP/corpus"

if [ "$fails" -ne 0 ]; then
  note "$fails CLI check(s) failed"
  exit 1
fi
note "all CLI checks passed"
