// Tests of the frd::session facade and the backend registry: name
// resolution, capability enforcement, hook-sink stacking, option plumbing,
// and cross-backend differential agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>

#include "api/session.hpp"
#include "detect/registry.hpp"
#include "graph/oracle_backend.hpp"
#include "shadow/store.hpp"
#include "trace/event.hpp"

namespace frd {
namespace {

using detect::backend_error;
using detect::backend_registry;
using detect::capability_error;
using detect::future_support;

// A minimal racy program: a future's write parallel with the continuation's.
void racy_future_program(session& s) {
  static int x;
  s.run([&] {
    auto f = s.runtime().create_future([&] {
      s.write(&x);
      return 0;
    });
    s.write(&x);
    f.get();
  });
}

// ------------------------------------------------------------- registry --
TEST(BackendRegistry, AllFiveBuiltinBackendsRegistered) {
  const auto names = backend_registry::instance().names();
  for (const char* n :
       {"multibags", "multibags+", "reference", "sp-bags", "vector-clock"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), n), names.end()) << n;
  }
}

TEST(BackendRegistry, RuntimeRegistrationKeepsLiveSessionsValid) {
  // The registry hands out backend_info pointers that sessions cache for
  // their lifetime; registering another backend must not relocate them.
  auto& reg = backend_registry::instance();
  session s("multibags+");
  if (reg.find("custom-oracle") == nullptr) {
    reg.add({.name = "custom-oracle",
             .paper_section = "out-of-tree",
             .bounds = "quadratic",
             .futures = future_support::general,
             .counts_violations = false,
             .make = []() -> std::unique_ptr<detect::reachability_backend> {
               return std::make_unique<graph::oracle_backend>();
             }});
  }
  EXPECT_EQ(s.backend_name(), "multibags+");
  EXPECT_EQ(s.info().paper_section, "§5");
  racy_future_program(s);
  EXPECT_TRUE(s.report().any());
  // And the new backend is immediately constructible by name.
  session custom("custom-oracle");
  EXPECT_EQ(custom.backend().name(), "reference");  // oracle_backend's name
}

TEST(BackendRegistry, CapabilityFlagsMatchThePaper) {
  const auto& reg = backend_registry::instance();
  EXPECT_EQ(reg.at("multibags").futures, future_support::structured);
  EXPECT_TRUE(reg.at("multibags").counts_violations);
  EXPECT_EQ(reg.at("multibags+").futures, future_support::general);
  EXPECT_EQ(reg.at("vector-clock").futures, future_support::general);
  EXPECT_EQ(reg.at("sp-bags").futures, future_support::none);
  EXPECT_EQ(reg.at("reference").futures, future_support::general);
}

TEST(BackendRegistry, FactoriesProduceBackendsAnsweringToTheirName) {
  const auto& reg = backend_registry::instance();
  for (const char* n :
       {"multibags", "multibags+", "reference", "sp-bags", "vector-clock"}) {
    auto b = reg.create(n);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->name(), n);
  }
}

TEST(BackendRegistry, UnknownNameErrorListsRegisteredBackends) {
  try {
    session s("fasttrack");
    FAIL() << "expected backend_error";
  } catch (const backend_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fasttrack"), std::string::npos) << msg;
    for (const char* n :
         {"multibags", "multibags+", "vector-clock", "sp-bags", "reference"}) {
      EXPECT_NE(msg.find(n), std::string::npos) << "missing " << n << ": " << msg;
    }
  }
}

// ----------------------------------------------------------- basic runs --
TEST(Session, DetectsTheCanonicalFutureRace) {
  for (const char* backend : {"multibags", "multibags+", "vector-clock",
                              "reference"}) {
    session s(backend);
    racy_future_program(s);
    EXPECT_TRUE(s.report().any()) << backend;
    EXPECT_EQ(s.report().racy_granules().size(), 1u) << backend;
  }
}

TEST(Session, DefaultsToMultiBagsPlusFull) {
  session s;
  EXPECT_EQ(s.backend_name(), "multibags+");
  EXPECT_EQ(s.lvl(), level::full);
  EXPECT_EQ(s.info().paper_section, "§5");
}

TEST(Session, RunAcceptsARuntimeDriver) {
  // The harness shape: the callable receives the runtime and calls run()
  // itself (kernels do that internally).
  session s("multibags");
  int x = 0;
  s.run([&](rt::serial_runtime& rt) {
    rt.run([&] {
      rt.spawn([&] { s.write(&x); });
      s.write(&x);
      rt.sync();
    });
  });
  EXPECT_TRUE(s.report().any());
}

// ------------------------------------------------------- hook stacking --
TEST(Session, HooksRouteToTheRunningSession) {
  session s("multibags+");
  int x = 0;
  s.run([&] {
    s.runtime().spawn(
        [&] { detect::hooks::st<detect::hooks::active>(x, 1); });
    (void)detect::hooks::ld<detect::hooks::active>(x);
    s.runtime().sync();
  });
  EXPECT_EQ(s.access_count(), 2u);
  EXPECT_TRUE(s.report().any());
}

TEST(Session, NoSinkInstalledOutsideRun) {
  session s("multibags+");
  int x = 0;
  racy_future_program(s);
  const auto before = s.access_count();
  // Outside run() the hooks are dormant: accesses go nowhere.
  detect::hooks::st<detect::hooks::active>(x, 1);
  (void)detect::hooks::ld<detect::hooks::active>(x);
  EXPECT_EQ(s.access_count(), before);
  EXPECT_EQ(detect::hooks::current_sink(), nullptr);
}

TEST(Session, NestedSessionsRestoreThePreviousSink) {
  session outer("multibags+");
  int x = 0;
  std::uint64_t inner_accesses = 0;
  outer.run([&] {
    detect::hooks::st<detect::hooks::active>(x, 1);  // -> outer
    {
      session inner("multibags");
      inner.run([&] {
        detect::hooks::st<detect::hooks::active>(x, 2);  // -> inner
        detect::hooks::st<detect::hooks::active>(x, 3);  // -> inner
      });
      inner_accesses = inner.access_count();
      EXPECT_EQ(outer.access_count(), 1u)
          << "inner session must not leak accesses into the outer one";
    }
    detect::hooks::st<detect::hooks::active>(x, 4);  // -> outer again
  });
  EXPECT_EQ(inner_accesses, 2u);
  EXPECT_EQ(outer.access_count(), 2u)
      << "the outer sink must be restored when the inner session unwinds";
  EXPECT_EQ(detect::hooks::current_sink(), nullptr);
}

// -------------------------------------------------- capability envelope --
TEST(Session, ForkJoinOnlyBackendRejectsFutures) {
  session s("sp-bags");
  EXPECT_THROW(
      s.run([&] { (void)s.runtime().create_future([] { return 1; }); }),
      capability_error);
}

TEST(Session, ForkJoinProgramsRunFineUnderSpBags) {
  session s("sp-bags");
  int x = 0;
  s.run([&] {
    s.runtime().spawn([&] { s.write(&x); });
    s.write(&x);
    s.runtime().sync();
  });
  EXPECT_TRUE(s.report().any());
}

TEST(Session, StructuredBackendRejectsMultiTouchFutures) {
  session s("multibags");
  try {
    s.run([&] {
      auto f = s.runtime().create_future([] { return 1; });
      f.get();
      f.get();  // second touch: a general-future program
    });
    FAIL() << "expected capability_error";
  } catch (const capability_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("multibags"), std::string::npos) << msg;
    EXPECT_NE(msg.find("single-touch"), std::string::npos) << msg;
  }
}

TEST(Session, GeneralBackendsAcceptMultiTouchFutures) {
  for (const char* backend : {"multibags+", "vector-clock", "reference"}) {
    session s(backend);
    int got = 0;
    s.run([&] {
      auto f = s.runtime().create_future([] { return 7; });
      got = f.get();
      got += f.get();
    });
    EXPECT_EQ(got, 14) << backend;
    EXPECT_EQ(s.get_count(), 2u) << backend;
  }
}

// ------------------------------------------------------ option plumbing --
TEST(Session, MaxRetainedRacesCapsDiagnosticsNotCounting) {
  session s(session::options{.backend = "multibags+", .max_retained_races = 8});
  static std::array<int, 100> xs;
  s.run([&] {
    auto f = s.runtime().create_future([&] {
      for (auto& v : xs) s.write(&v);
      return 0;
    });
    for (auto& v : xs) s.write(&v);
    f.get();
  });
  EXPECT_EQ(s.report().retained().size(), 8u);
  EXPECT_EQ(s.report().racy_granules().size(), 100u);
  EXPECT_GE(s.report().total(), 100u);
  EXPECT_EQ(s.report().max_retained(), 8u);
}

TEST(Session, WiderGranuleMergesNeighbouringLocations) {
  // Two adjacent ints race independently; at granule = 8 they fall into one
  // shadow granule, so the report dedupes them to a single racy granule.
  auto run_with_granule = [](std::size_t granule) {
    session s(session::options{.backend = "multibags+", .granule = granule});
    static struct {
      alignas(8) int a;
      int b;
    } p;
    s.run([&] {
      auto f = s.runtime().create_future([&] {
        s.write(&p.a);
        s.write(&p.b);
        return 0;
      });
      s.write(&p.a);
      s.write(&p.b);
      f.get();
    });
    return s.report().racy_granules().size();
  };
  EXPECT_EQ(run_with_granule(4), 2u);
  EXPECT_EQ(run_with_granule(8), 1u);
}

TEST(Session, InvalidOptionsThrowInsteadOfAborting) {
  // Option validation is catchable, like the unknown-backend case: an
  // embedder wiring options from a config file can report them. Granule
  // validation is the detector's (backend_error); shadow sizing belongs to
  // the store layer (store_error). Both are std::runtime_error.
  EXPECT_THROW(session(session::options{.granule = 3}), backend_error);
  EXPECT_THROW(session(session::options{.granule = 0}), backend_error);
  EXPECT_THROW(session(session::options{.granule = 8192}), backend_error);
  EXPECT_THROW(session(session::options{.shadow_page_bits = 2}),
               shadow::store_error);
  EXPECT_THROW(session(session::options{.shadow_page_bits = 32}),
               shadow::store_error);
  EXPECT_THROW(session(session::options{.shadow_shard_bits = 11}),
               shadow::store_error);
}

TEST(Session, ShadowStoreOptionSelectsTheStore) {
  // Every registered store plugs in through the same option and yields the
  // same verdict on the canonical racy program.
  for (const std::string& name : shadow::store_registry::instance().names()) {
    session s(session::options{.shadow_store = name});
    EXPECT_EQ(s.detector().shadow_store().name(), name);
    racy_future_program(s);
    EXPECT_TRUE(s.report().any()) << "store '" << name << "' missed the race";
  }
}

TEST(Session, UnknownShadowStoreThrowsListingRegisteredStores) {
  try {
    session s(session::options{.shadow_store = "no-such-store"});
    FAIL() << "unknown shadow store must throw";
  } catch (const shadow::store_error& e) {
    const std::string msg = e.what();
    for (const std::string& n : shadow::store_registry::instance().names()) {
      EXPECT_NE(msg.find(n), std::string::npos) << n;
    }
  }
}

TEST(Session, ShardCountFollowsTheShardBitsOption) {
  session s(session::options{.shadow_store = "sharded",
                             .shadow_shard_bits = 3});
  EXPECT_EQ(s.detector().shadow_store().shard_count(), 8u);
  session one(session::options{.shadow_store = "sharded",
                               .shadow_shard_bits = 0});
  EXPECT_EQ(one.detector().shadow_store().shard_count(), 1u);
  // Unsharded stores ignore the knob.
  session flat(session::options{.shadow_shard_bits = 9});
  EXPECT_EQ(flat.detector().shadow_store().shard_count(), 1u);
}

TEST(Session, BaselineLevelInstallsNoListener) {
  session s(session::options{.backend = "multibags+", .level = level::baseline});
  int x = 0;
  s.run([&] {
    s.runtime().spawn([&] { x = 1; });
    s.runtime().sync();
  });
  EXPECT_EQ(s.runtime().listener(), nullptr);
  EXPECT_FALSE(s.report().any());
}

TEST(Session, SingleTouchEnforcementAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        session s(session::options{.backend = "multibags+", .enforce_single_touch = true});
        s.run([&] {
          auto f = s.runtime().create_future([] { return 1; });
          f.get();
          f.get();
        });
      },
      "single-touch");
}

// ------------------------------------------------- differential anchor --
TEST(Session, ReferenceAgreesWithMultiBagsPlusOnAMixedProgram) {
  // One deterministic program with spawns, syncs, and escaping futures run
  // under both backends: the racy-granule sets must be identical (the heavy
  // version of this check is the property-fuzz suite).
  auto run_program = [](const char* backend) {
    session s(backend);
    static std::array<int, 8> cells;
    s.run([&] {
      auto& rt = s.runtime();
      auto f = rt.create_future([&] {
        s.write(&cells[0]);
        s.write(&cells[1]);
        return 0;
      });
      rt.spawn([&] {
        s.write(&cells[1]);  // races with the future
        s.write(&cells[2]);
      });
      s.write(&cells[2]);  // races with the spawn
      rt.sync();
      s.write(&cells[3]);  // still parallel with the escaped future? no:
      f.get();             // ...yes — the get happens after this write
      s.read(&cells[0]);   // ordered by the get: no race
      s.write(&cells[3]);  // ordered: same strand wrote before
    });
    return s.report().racy_granules();
  };
  const auto plus = run_program("multibags+");
  const auto ref = run_program("reference");
  const auto vc = run_program("vector-clock");
  EXPECT_EQ(plus, ref);
  EXPECT_EQ(plus, vc);
  EXPECT_FALSE(plus.empty());
}

// --------------------------------------------------------- trace modes --
TEST(Session, RecordModeDetectsAndCapturesATrace) {
  trace::memory_trace tape;
  session s("multibags+");
  EXPECT_EQ(s.mode(), session_mode::live);
  s.record_to(tape);
  EXPECT_EQ(s.mode(), session_mode::record);
  racy_future_program(s);
  // Recording must not change what the session detects...
  EXPECT_TRUE(s.report().any());
  EXPECT_EQ(s.report().racy_granules().size(), 1u);
  // ...and the tape holds the whole run: dag events plus both writes.
  EXPECT_GT(tape.size(), 0u);
  std::size_t writes = 0;
  for (const auto& e : tape.events()) {
    if (e.kind == trace::event_kind::write) ++writes;
  }
  EXPECT_EQ(writes, 2u);
}

TEST(Session, ReplayReproducesTheLiveReportWithoutUserCode) {
  trace::memory_trace tape;
  session rec("multibags+");
  rec.record_to(tape);
  racy_future_program(rec);

  for (const char* backend : {"multibags", "multibags+", "vector-clock",
                              "reference"}) {
    tape.rewind();
    session s(backend);
    const std::uint64_t events = s.replay(tape);
    EXPECT_EQ(s.mode(), session_mode::replay) << backend;
    EXPECT_GT(events, 0u) << backend;
    EXPECT_EQ(s.report().racy_granules(), rec.report().racy_granules())
        << backend;
    EXPECT_EQ(s.report().total(), rec.report().total()) << backend;
  }
}

TEST(Session, ReplayRejectsAGranuleMismatch) {
  trace::memory_trace tape;
  session rec(session::options{.backend = "multibags+", .granule = 4});
  rec.record_to(tape);
  racy_future_program(rec);
  tape.rewind();
  session s(session::options{.backend = "multibags+", .granule = 8});
  EXPECT_THROW(s.replay(tape), trace::trace_error);
}

TEST(Session, BaselineReplayBehavesLikeBaselineLive) {
  // A live baseline session attaches no listener, so even a fork-join-only
  // backend accepts a futures program and counts nothing; replay at
  // level::baseline must mirror that instead of feeding the detector.
  trace::memory_trace tape;
  session rec("multibags+");
  rec.record_to(tape);
  racy_future_program(rec);
  tape.rewind();
  session s(session::options{.backend = "sp-bags", .level = level::baseline});
  EXPECT_NO_THROW(s.replay(tape));
  EXPECT_EQ(s.get_count(), 0u);
  EXPECT_FALSE(s.report().any());
}

TEST(Session, ReplaySessionEnforcesCapabilitiesLikeALiveOne) {
  // sp-bags is fork-join only; a replayed create_fut must be rejected the
  // same way a live one is.
  trace::memory_trace tape;
  session rec("multibags+");
  rec.record_to(tape);
  racy_future_program(rec);
  tape.rewind();
  session s("sp-bags");
  EXPECT_THROW(s.replay(tape), capability_error);
}

}  // namespace
}  // namespace frd
