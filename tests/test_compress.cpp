// Tests for the compress substrate: LZ codec round-trips, chunker
// properties, SHA-1 against FIPS test vectors.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "compress/chunker.hpp"
#include "compress/digest.hpp"
#include "compress/lz.hpp"
#include "detect/detector.hpp"
#include "support/prng.hpp"

namespace frd::compress {
namespace {

using detect::hooks::none;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// ------------------------------------------------------------------- lz ---
TEST(Lz, VarintRoundTrip) {
  std::vector<std::uint8_t> buf;
  const std::uint64_t vals[] = {0, 1, 127, 128, 300, 1u << 20, (1ull << 56) + 5};
  for (auto v : vals) put_varint(buf, v);
  std::size_t pos = 0;
  for (auto v : vals) EXPECT_EQ(get_varint(buf, pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(Lz, EmptyInput) {
  const std::vector<std::uint8_t> in;
  auto c = lz_compress<none>(in);
  EXPECT_EQ(lz_decompress(c), in);
}

TEST(Lz, AllLiteralsRoundTrip) {
  auto in = bytes_of("abcdefgh12345678ZYXW");  // no repeats >= 4
  auto c = lz_compress<none>(in);
  EXPECT_EQ(lz_decompress(c), in);
}

TEST(Lz, RepetitiveInputCompresses) {
  std::vector<std::uint8_t> in;
  for (int i = 0; i < 1000; ++i) {
    const auto piece = bytes_of("the quick brown fox jumps over the lazy dog. ");
    in.insert(in.end(), piece.begin(), piece.end());
  }
  auto c = lz_compress<none>(in);
  EXPECT_EQ(lz_decompress(c), in);
  EXPECT_LT(c.size(), in.size() / 5) << "repetitive text must compress well";
}

TEST(Lz, OverlappingMatchRunLength) {
  // 'aaaa...' forces dist < len copies (RLE through the window).
  std::vector<std::uint8_t> in(5000, 'a');
  auto c = lz_compress<none>(in);
  EXPECT_EQ(lz_decompress(c), in);
  EXPECT_LT(c.size(), 64u);
}

TEST(Lz, BinaryRandomDataRoundTrips) {
  prng rng(2024);
  std::vector<std::uint8_t> in(100000);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next());
  auto c = lz_compress<none>(in);
  EXPECT_EQ(lz_decompress(c), in);
  EXPECT_GE(c.size(), in.size()) << "incompressible data should not shrink";
}

TEST(Lz, MixedRedundancyRoundTrips) {
  prng rng(7);
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> motif(300);
  for (auto& b : motif) b = static_cast<std::uint8_t>(rng.next());
  for (int i = 0; i < 200; ++i) {
    if (rng.chance(2, 3)) {
      in.insert(in.end(), motif.begin(), motif.end());
    } else {
      for (int k = 0; k < 100; ++k)
        in.push_back(static_cast<std::uint8_t>(rng.next()));
    }
  }
  auto c = lz_compress<none>(in);
  EXPECT_EQ(lz_decompress(c), in);
  EXPECT_LT(c.size(), in.size());
}

// Corrupt input is a recoverable decode_error, never an abort: container
// chunks come off disk untrusted.
TEST(LzDecodeError, RejectsCorruptStreams) {
  auto reject = [](std::vector<std::uint8_t> bytes) {
    EXPECT_THROW((void)lz_decompress(bytes), decode_error);
  };
  // Match whose varint distance is truncated.
  reject({0x02, 0x10, 0xFF});
  // Match reaching past the produced history.
  reject({0x02, 0x04, 0x10, 0x00});
  // Zero distance is never valid.
  reject({0x01, 0x01, 'x', 0x02, 0x02, 0x00, 0x00});
  // Literal run claiming more bytes than the stream holds.
  reject({0x01, 0x7F, 'a', 'b'});
  // Unknown opcode.
  reject({0x03});
  // Missing end opcode.
  reject({0x01, 0x01, 'x'});
  // Empty stream is also missing its end opcode.
  reject({});
  // A varint spread over more than 64 bits of payload.
  std::vector<std::uint8_t> wide{0x01};
  for (int i = 0; i < 10; ++i) wide.push_back(0x80);
  wide.push_back(0x01);
  reject(wide);
}

TEST(LzDecodeError, MaxOutputBoundsDecodedSize) {
  std::vector<std::uint8_t> in(500, 'a');
  auto c = lz_compress<none>(in);
  EXPECT_EQ(lz_decompress(c, 500).size(), 500u);
  // One byte short: the RLE match would overflow the declared bound.
  EXPECT_THROW((void)lz_decompress(c, 499), decode_error);
  // A pure-literal stream overflowing the bound is caught too.
  const std::vector<std::uint8_t> lit{0x01, 0x03, 'x', 'y', 'z', 0x00};
  EXPECT_THROW((void)lz_decompress(lit, 2), decode_error);
}

TEST(Lz, WindowBoundaryMatches) {
  // A motif recurring at exactly the 64 KiB window edge: the second copy is
  // the farthest back-reference the format can emit. Either the matcher
  // finds it or falls back to literals — the round-trip must hold both ways.
  constexpr std::size_t kWindow = detail::kWindow;
  prng rng(31);
  std::vector<std::uint8_t> motif(256);
  for (auto& b : motif) b = static_cast<std::uint8_t>(rng.next());

  for (std::size_t gap : {kWindow - motif.size(), kWindow - motif.size() + 1,
                          kWindow, kWindow + 1}) {
    std::vector<std::uint8_t> in(motif);
    while (in.size() < motif.size() + gap)
      in.push_back(static_cast<std::uint8_t>(rng.next()));
    in.insert(in.end(), motif.begin(), motif.end());
    auto c = lz_compress<none>(in);
    EXPECT_EQ(lz_decompress(c), in) << "gap " << gap;
  }
}

TEST(Lz, MaxLengthLiteralRun) {
  // Incompressible data long enough that the final literal run's varint
  // needs several bytes; decode must reproduce it exactly.
  prng rng(77);
  std::vector<std::uint8_t> in(300000);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next());
  auto c = lz_compress<none>(in);
  auto out = lz_decompress(c, in.size());
  EXPECT_EQ(out, in);
}

TEST(Lz, InstrumentedVariantProducesIdenticalOutput) {
  // hooks::active with no bound detector must not change results.
  auto in = bytes_of("abababababababab repeated payload payload payload");
  auto plain = lz_compress<none>(in);
  auto hooked = lz_compress<detect::hooks::active>(in);
  EXPECT_EQ(plain, hooked);
}

// -------------------------------------------------------------- chunker ---
TEST(Chunker, CoversInputExactly) {
  prng rng(99);
  std::vector<std::uint8_t> data(200000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  auto chunks = chunk_bytes(data);
  std::size_t off = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.offset, off);
    off += c.size;
  }
  EXPECT_EQ(off, data.size());
}

TEST(Chunker, RespectsSizeBounds) {
  prng rng(5);
  std::vector<std::uint8_t> data(500000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  chunk_params p;
  auto chunks = chunk_bytes(data, p);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {  // last may be short
    EXPECT_GE(chunks[i].size, p.min_size);
    EXPECT_LE(chunks[i].size, p.max_size);
  }
  // Average should be in the right ballpark (loose: CDC variance is high).
  const double avg = static_cast<double>(data.size()) / chunks.size();
  EXPECT_GT(avg, p.min_size);
  EXPECT_LT(avg, p.max_size);
}

TEST(Chunker, IdenticalContentChunksIdentically) {
  prng rng(13);
  std::vector<std::uint8_t> data(100000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  auto a = chunk_bytes(data);
  auto b = chunk_bytes(data);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].size, b[i].size);
  }
}

TEST(Chunker, InsertionOnlyShiftsLocalChunks) {
  // The CDC property: prepending bytes must not re-chunk the far tail.
  prng rng(21);
  std::vector<std::uint8_t> data(150000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  std::vector<std::uint8_t> shifted(64, 0xAB);
  shifted.insert(shifted.end(), data.begin(), data.end());

  auto base = chunk_bytes(data);
  auto moved = chunk_bytes(shifted);

  // Compare the last few chunks by content hash: most must coincide.
  auto tail_hashes = [&](const std::vector<chunk_ref>& chunks,
                         std::span<const std::uint8_t> src) {
    std::vector<std::uint64_t> hs;
    const std::size_t take = std::min<std::size_t>(10, chunks.size());
    for (std::size_t i = chunks.size() - take; i < chunks.size(); ++i)
      hs.push_back(fnv1a64(src.subspan(chunks[i].offset, chunks[i].size)));
    return hs;
  };
  auto h1 = tail_hashes(base, data);
  auto h2 = tail_hashes(moved, shifted);
  int common = 0;
  for (auto h : h1)
    for (auto g : h2)
      if (h == g) ++common;
  EXPECT_GE(common, 8) << "content-defined boundaries must resynchronize";
}

TEST(StreamChunker, MatchesChunkBytesExactly) {
  // The incremental chunker must find the very cut points chunk_bytes does —
  // the container writer depends on it.
  prng rng(42);
  std::vector<std::uint8_t> data(300000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  auto whole = chunk_bytes(data);

  stream_chunker ck;
  std::vector<std::size_t> cut_offsets;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (ck.push(data[i])) cut_offsets.push_back(i + 1);
  if (ck.pending() > 0) cut_offsets.push_back(data.size());

  ASSERT_EQ(cut_offsets.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i)
    EXPECT_EQ(cut_offsets[i], whole[i].offset + whole[i].size) << i;
}

TEST(StreamChunker, CutsAreIndependentOfFeedAlignment) {
  // Push the same bytes in wildly different batch sizes: identical cuts.
  prng rng(1234);
  std::vector<std::uint8_t> data(120000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());

  auto cuts_with_batches = [&](std::size_t batch) {
    stream_chunker ck;
    std::vector<std::size_t> cuts;
    // The chunker is byte-at-a-time; "batching" here exercises restarts of
    // the feeding loop at every alignment batch induces.
    for (std::size_t start = 0; start < data.size(); start += batch)
      for (std::size_t i = start;
           i < std::min(start + batch, data.size()); ++i)
        if (ck.push(data[i])) cuts.push_back(i + 1);
    return cuts;
  };
  const auto one = cuts_with_batches(1);
  for (std::size_t batch : {7u, 1024u, 4096u, 65536u})
    EXPECT_EQ(cuts_with_batches(batch), one) << "batch " << batch;
}

TEST(StreamChunker, PendingTracksOpenChunk) {
  stream_chunker ck;
  EXPECT_EQ(ck.pending(), 0u);
  std::size_t expect = 0;
  prng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const bool cut = ck.push(static_cast<std::uint8_t>(rng.next()));
    expect = cut ? 0 : expect + 1;
    ASSERT_EQ(ck.pending(), expect);
  }
}

TEST(Chunker, GearTableIsDeterministic) {
  const std::uint64_t* t = gear_table();
  EXPECT_EQ(t, gear_table());
  // Spot-check variability.
  int distinct = 0;
  for (int i = 1; i < 256; ++i) distinct += t[i] != t[0];
  EXPECT_GT(distinct, 250);
}

// --------------------------------------------------------------- digest ---
TEST(Sha1, FipsTestVectors) {
  EXPECT_EQ(to_hex(sha1(bytes_of("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(to_hex(sha1(bytes_of(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(to_hex(sha1(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  std::vector<std::uint8_t> in(1000000, 'a');
  EXPECT_EQ(to_hex(sha1(in)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edges must all hash distinctly.
  std::set<std::string> seen;
  for (std::size_t n : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
    std::vector<std::uint8_t> in(n, 'x');
    EXPECT_TRUE(seen.insert(to_hex(sha1(in))).second) << n;
  }
}

TEST(Digest, Fnv1a64KnownValues) {
  EXPECT_EQ(fnv1a64(bytes_of("")), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64(bytes_of("a")), 12638187200555641996ULL);
}

TEST(Digest, Sha1Key64IsStable) {
  auto d = sha1(bytes_of("abc"));
  EXPECT_EQ(sha1_key64(d), sha1_key64(sha1(bytes_of("abc"))));
  EXPECT_NE(sha1_key64(d), sha1_key64(sha1(bytes_of("abd"))));
}

}  // namespace
}  // namespace frd::compress
