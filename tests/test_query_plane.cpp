// Query-plane tests: the snapshot-based batched reachability API.
//
// Three angles:
//   1. Differential batched-vs-scalar: for every corpus entry × eligible
//      backend, a batch query (unsorted, duplicate-laden) must answer
//      exactly like one-element scalar queries at many points of the
//      replayed stream — this pins the views' sort/dedup/hoist plumbing to
//      the per-element semantics.
//   2. Epoch invalidation: version() advances on every dag event, a view's
//      answers change with it, and the detector's per-epoch answer cache
//      must not leak a stale verdict across a dag event.
//   3. Counters: the detector's query_plane_stats reflect real batching
//      (memoization within an epoch, one view query per access run).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "corpus/manifest.hpp"
#include "corpus/runner.hpp"
#include "detect/backend.hpp"
#include "detect/multibags_plus.hpp"
#include "detect/registry.hpp"
#include "runtime/serial.hpp"
#include "trace/player.hpp"

namespace frd::detect {
namespace {

std::string corpus_dir() {
  if (const char* env = std::getenv("FRD_CORPUS_DIR")) return env;
  return FRD_CORPUS_DIR;
}

// ------------------------------------------------- batched vs scalar ----

// Rides a replayed dag stream next to a backend (mux order: backend first)
// and, every few strands, asks the backend's view one shuffled,
// duplicate-laden batch over the strands seen so far — comparing each slot
// against the one-element wrapper.
class batch_checker final : public rt::execution_listener {
 public:
  explicit batch_checker(reachability_backend& b) : backend_(b) {}

  std::uint64_t batches_checked = 0;
  std::uint64_t slots_checked = 0;

  void on_program_begin(rt::func_id, rt::strand_id s) override { seen(s); }
  void on_strand_begin(rt::strand_id s, rt::func_id) override {
    seen(s);
    if (++events_ % 3 == 0) check_batch();
  }

 private:
  void seen(rt::strand_id s) {
    known_.push_back(s);
    if (known_.size() > kWindow) known_.erase(known_.begin());
  }

  void check_batch() {
    if (known_.size() < 2) return;
    // Reverse order (unsorted) + every strand twice (duplicates): the
    // general path of answer_strand_batch, scattered back per slot.
    std::vector<rt::strand_id> batch;
    for (auto it = known_.rbegin(); it != known_.rend(); ++it) {
      batch.push_back(*it);
      batch.push_back(*it);
    }
    reachability_view& view = backend_.view();
    std::span<bool> out = buf_.span(batch.size());
    view.query(batch, out);
    ++batches_checked;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const bool scalar = view.precedes_current(batch[i]);
      ASSERT_EQ(out[i], scalar)
          << "batched answer diverged from the one-element wrapper for "
          << "strand " << batch[i] << " (backend " << backend_.name() << ")";
      ++slots_checked;
    }
  }

  static constexpr std::size_t kWindow = 48;
  reachability_backend& backend_;
  std::vector<rt::strand_id> known_;
  bool_buffer buf_;
  std::uint64_t events_ = 0;
};

struct query_case {
  std::string entry;
  std::string backend;
};

std::vector<query_case> all_query_cases() {
  std::vector<query_case> out;
  try {
    const corpus::manifest m =
        corpus::load_manifest(corpus_dir() + "/MANIFEST");
    for (const corpus::corpus_entry& e : m.entries) {
      for (const std::string& b : corpus::eligible_backends(e.futures)) {
        out.push_back({e.name, b});
      }
    }
  } catch (const std::exception&) {
    // Degrade to zero cases; CorpusInventory.ManifestLoads (conformance
    // suite) reports the broken corpus with its path.
  }
  return out;
}

class BatchedVsScalar : public ::testing::TestWithParam<query_case> {};

TEST_P(BatchedVsScalar, CorpusReplayAgrees) {
  const query_case& c = GetParam();
  const corpus::manifest m = corpus::load_manifest(corpus_dir() + "/MANIFEST");
  const corpus::corpus_entry* e = m.find(c.entry);
  ASSERT_NE(e, nullptr);
  trace::memory_trace tape = corpus::load_trace(corpus_dir() + "/" +
                                                e->trace_file);

  std::unique_ptr<reachability_backend> backend =
      backend_registry::instance().create(c.backend);
  batch_checker checker(*backend);
  rt::listener_mux mux;
  mux.add(backend.get());
  mux.add(&checker);
  trace::trace_player player(tape);
  player.play(&mux, /*sink=*/nullptr);

  EXPECT_GT(checker.batches_checked, 0u) << "vacuous run: no batch checked";
  EXPECT_GT(checker.slots_checked, 0u);
}

std::string query_case_name(const ::testing::TestParamInfo<query_case>& info) {
  std::string s = info.param.entry + "_" + info.param.backend;
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Corpus, BatchedVsScalar,
                         ::testing::ValuesIn(all_query_cases()),
                         query_case_name);

// ---------------------------------------------------- epoch semantics ----

TEST(QueryPlaneEpoch, EveryDagEventAdvancesTheVersion) {
  multibags_plus mbp;
  rt::serial_runtime rt(&mbp);
  std::uint64_t last = mbp.version();
  EXPECT_EQ(last, 0u) << "a fresh backend starts at epoch 0";
  const auto bumped = [&] {
    const std::uint64_t now = mbp.version();
    const bool ok = now > last;
    last = now;
    return ok;
  };
  rt.run([&] {
    EXPECT_TRUE(bumped()) << "program_begin must invalidate views";
    rt.spawn([&] { EXPECT_TRUE(bumped()) << "spawn/strand_begin"; });
    EXPECT_TRUE(bumped()) << "return/strand_begin after the child";
    auto f = rt.create_future([&] {
      EXPECT_TRUE(bumped()) << "create/strand_begin";
      return 1;
    });
    EXPECT_TRUE(bumped());
    rt.sync();
    EXPECT_TRUE(bumped()) << "sync";
    f.get();
    EXPECT_TRUE(bumped()) << "get";
  });
  EXPECT_TRUE(bumped()) << "program_end";
}

TEST(QueryPlaneEpoch, ViewAnswersTrackDagEventsAcrossEpochs) {
  multibags_plus mbp;
  rt::serial_runtime rt(&mbp);
  rt::strand_id child = rt::kNoStrand;
  rt.run([&] {
    rt.spawn([&] { child = rt.current_strand(); });
    // The view object is stable across epochs; its answers are not.
    reachability_view& view = mbp.view();
    const std::uint64_t before = view.version();
    EXPECT_FALSE(view.precedes_current(child)) << "spawn child is parallel";
    rt.sync();
    EXPECT_GT(view.version(), before)
        << "the dag event must invalidate the outstanding view";
    EXPECT_TRUE(view.precedes_current(child)) << "ordered after the sync";
  });
}

// The end-to-end teeth of invalidation: if the detector's per-epoch answer
// cache survived a dag event, the second write below would reuse the
// pre-sync "parallel" verdict for the child strand and report a second racy
// granule.
TEST(QueryPlaneEpoch, CachedAnswerDoesNotSurviveADagEvent) {
  session s("multibags+");
  int x = 0, y = 0;
  s.run([&] {
    auto& rt = s.runtime();
    rt.spawn([&] {
      s.write(&x);
      s.write(&y);
    });
    s.write(&x);  // child parallel: the one real race, answer cached
    rt.sync();    // epoch changes; the child now precedes
    s.write(&y);  // stale cache would resurface "parallel" and flag y
  });
  EXPECT_EQ(s.report().racy_granules().size(), 1u)
      << "a cached reachability answer leaked across a dag event";
  EXPECT_EQ(s.report().racy_granules().count(
                reinterpret_cast<std::uintptr_t>(&x) & ~std::uintptr_t{3}),
            1u);
}

// ---------------------------------------------------------- counters ----

TEST(QueryPlaneStats, MemoizationCollapsesRepeatQuestionsWithinAnEpoch) {
  session s("multibags+");
  constexpr int kCells = 64;
  alignas(64) static int cells[kCells];
  s.run([&] {
    auto& rt = s.runtime();
    rt.spawn([&] {
      for (int i = 0; i < kCells; ++i) s.write(&cells[i]);
    });
    // 64 prior-writer questions, all about the same child strand, with no
    // dag event in between: one view query, 63 epoch-cache hits.
    for (int i = 0; i < kCells; ++i) s.write(&cells[i]);
    rt.sync();
  });
  const detect::query_plane_stats& q = s.query_stats();
  EXPECT_EQ(q.lookups, static_cast<std::uint64_t>(kCells));
  EXPECT_EQ(q.cache_hits, static_cast<std::uint64_t>(kCells - 1));
  EXPECT_EQ(q.batches, 1u);
  EXPECT_EQ(q.strands, 1u);
  EXPECT_EQ(s.report().racy_granules().size(), static_cast<std::size_t>(kCells));
}

TEST(QueryPlaneStats, ReplayBatchesWholeRuns) {
  // Record a program whose racy run spans many accesses, then replay it:
  // the player hands the run to the detector in one on_accesses call, so
  // the whole run resolves through at most one view query.
  trace::memory_trace tape(trace::trace_header{trace::kTraceVersion, 4});
  constexpr int kCells = 32;
  alignas(64) static int cells[kCells];
  {
    session rec("multibags+");
    rec.record_to(tape);
    rec.run([&] {
      auto& rt = rec.runtime();
      rt.spawn([&] {
        for (int i = 0; i < kCells; ++i) rec.write(&cells[i]);
      });
      for (int i = 0; i < kCells; ++i) rec.write(&cells[i]);
      rt.sync();
    });
  }
  tape.rewind();
  session rep("multibags+");
  rep.replay(tape);
  const detect::query_plane_stats& q = rep.query_stats();
  EXPECT_EQ(q.lookups, static_cast<std::uint64_t>(kCells));
  EXPECT_EQ(q.batches, 1u) << "one access run must issue one view query";
  EXPECT_EQ(q.strands, 1u);
  EXPECT_EQ(rep.report().racy_granules().size(),
            static_cast<std::size_t>(kCells));
}

}  // namespace
}  // namespace frd::detect
