// Cross-runtime equivalence: the same dependence structures executed on the
// serial (detection) runtime and the parallel (production) runtime must
// produce identical results — the deployment story behind the paper's
// serial detector.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "api/session.hpp"
#include "bench_suite/lcs.hpp"
#include "runtime/parallel.hpp"
#include "runtime/serial.hpp"

namespace frd {
namespace {

using detect::hooks::none;

TEST(CrossRuntime, WavefrontSameAnswerOnBothRuntimes) {
  const auto in = bench::make_lcs_input(192, 9);
  const int want = bench::lcs_reference(in);

  rt::serial_runtime srt;
  EXPECT_EQ(bench::lcs_structured<none>(srt, in, 32), want);

  // Parallel: general shape with shared-state pfutures.
  rt::parallel_runtime prt(4);
  const bench::tile_grid g(in.a.size(), 32);
  std::vector<std::int32_t> d((g.n + 1) * (g.n + 1), 0);
  int got = 0;
  prt.run([&] {
    std::vector<rt::pfuture<int>> fut(g.tiles * g.tiles);
    for (std::size_t ti = 0; ti < g.tiles; ++ti) {
      for (std::size_t tj = 0; tj < g.tiles; ++tj) {
        fut[g.index(ti, tj)] = prt.create_future([&, ti, tj]() -> int {
          if (ti > 0) {
            auto up = fut[g.index(ti - 1, tj)];
            prt.get(up);
          }
          if (tj > 0) {
            auto left = fut[g.index(ti, tj - 1)];
            prt.get(left);
          }
          bench::detail::lcs_tile<none>(in, d, g, ti, tj);
          return 1;
        });
      }
    }
    auto last = fut[g.index(g.tiles - 1, g.tiles - 1)];
    prt.get(last);
    got = d[g.n * (g.n + 1) + g.n];
  });
  EXPECT_EQ(got, want);
}

TEST(CrossRuntime, PipelineChainSameFoldOnBothRuntimes) {
  // An ordered reduction through a future chain: associativity-sensitive,
  // so identical results prove identical effective ordering.
  // Unsigned arithmetic: the fold wraps by design, and signed overflow
  // would be UB (the ASan+UBSan CI job runs this test).
  auto fold_step = [](long acc, int i) {
    return static_cast<long>(static_cast<unsigned long>(acc) * 31u +
                             static_cast<unsigned long>(i));
  };
  const int n = 200;

  long serial_result = 0;
  {
    rt::serial_runtime rt;
    rt.run([&] {
      rt::future<long> prev;
      for (int i = 0; i < n; ++i) {
        auto cur = rt.create_future([&prev, fold_step, i]() -> long {
          const long acc = prev.valid() ? prev.get() : 7;
          return fold_step(acc, i);
        });
        prev = std::move(cur);
      }
      serial_result = prev.get();
    });
  }

  long parallel_result = 0;
  {
    rt::parallel_runtime rt(4);
    rt.run([&] {
      rt::pfuture<long> prev;
      for (int i = 0; i < n; ++i) {
        auto p = prev;  // capture shared handle by value
        prev = rt.create_future([&rt, p, fold_step, i]() mutable -> long {
          const long acc = p.valid() ? rt.get(p) : 7;
          return fold_step(acc, i);
        });
      }
      parallel_result = rt.get(prev);
    });
  }
  EXPECT_EQ(serial_result, parallel_result);
}

TEST(CrossRuntime, RacyProgramIsCaughtSeriallyBeforeParallelDeployment) {
  // The workflow the paper enables: a racy program whose parallel runs are
  // nondeterministic is pinned down by one serial detected run.
  int shared = 0;
  frd::session s("multibags+");
  s.run([&] {
    auto f = s.runtime().create_future([&] {
      s.write(&shared, 4);
      shared = 1;
      return 1;
    });
    s.write(&shared, 4);
    shared = 2;
    f.get();
  });
  EXPECT_TRUE(s.report().any());
}

}  // namespace
}  // namespace frd
