// Figure 6 reproduction: the six benchmarks with *structured* futures, race
// detected with MultiBags, under the four configurations (paper §6).
//
// Paper shape to reproduce (not absolute seconds — inputs are scaled):
//   * reachability ≈ baseline (geomean 1.06x; bst is the outlier because it
//     has little work per parallel construct),
//   * instrumentation adds ~2-4.5x,
//   * full detection lands around 8-34x per benchmark (geomean 20.48x),
//   * dedup stays cheap because its compression is not instrumented.
#include <cstdio>

#include "bench/config.hpp"
#include "bench/harness.hpp"
#include "support/flags.hpp"

using namespace frd;
using namespace frd::bench;
using namespace frd::bench_harness;

int main(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& reps = flags.int_flag("reps", 3, "repetitions per configuration");
  auto& scale = flags.double_flag("scale", 1.0, "input size multiplier");
  flags.parse();

  const sizes sz = scaled_sizes(scale);
  std::vector<case_row> cases;

  cases.push_back({"lcs", make_lcs_case(sz, variant::structured), true, true});
  cases.push_back({"sw", make_sw_case(sz, variant::structured), true, true});
  cases.push_back({"mm", make_mm_case(sz, variant::structured), true, true});
  cases.push_back(
      {"heartwall", make_heartwall_case(sz, variant::structured), true, true});
  cases.push_back({"dedup", make_dedup_case(sz, variant::structured), true, true});
  cases.push_back({"bst", make_bst_case(sz, variant::structured), true, true});

  auto result = run_four_config_table(
      cases, "multibags", static_cast<int>(reps),
      "\n== Figure 6: structured futures, MultiBags ==");
  print_geomeans(result, "MultiBags");
  std::puts("paper reference (Fig 6): reachability geomean 1.06x; full "
            "overheads lcs 24.77x, sw 22.00x, mm 33.61x, heartwall 24.54x, "
            "dedup 2.14x, bst 8.02x (geomean 20.48x)");
  return 0;
}
