// Figure 7 reproduction: the benchmarks with *general* futures, race
// detected with MultiBags+, under the four configurations (paper §6).
//
// Paper shape: like Figure 6 but reachability is costlier (geomean 1.40x),
// with dedup (2.29x) and bst (4.16x) showing the clearest MultiBags+
// reachability overhead; full detection geomean 25.98x. dedup has no
// general-future variant ("does not utilize the flexibility of general
// futures"): the same structured program runs under MultiBags+.
#include <cstdio>

#include "bench/config.hpp"
#include "bench/harness.hpp"
#include "support/flags.hpp"

using namespace frd;
using namespace frd::bench;
using namespace frd::bench_harness;

int main(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& reps = flags.int_flag("reps", 3, "repetitions per configuration");
  auto& scale = flags.double_flag("scale", 1.0, "input size multiplier");
  flags.parse();

  const sizes sz = scaled_sizes(scale);
  std::vector<case_row> cases;
  cases.push_back({"lcs", make_lcs_case(sz, variant::general), true, false});
  cases.push_back({"sw", make_sw_case(sz, variant::general), true, false});
  cases.push_back({"mm", make_mm_case(sz, variant::general), true, false});
  cases.push_back(
      {"heartwall", make_heartwall_case(sz, variant::general), true, false});
  cases.push_back({"dedup", make_dedup_case(sz, variant::general), true, false});
  cases.push_back({"bst", make_bst_case(sz, variant::general), true, false});

  auto result = run_four_config_table(
      cases, "multibags+", static_cast<int>(reps),
      "\n== Figure 7: general futures, MultiBags+ ==");
  print_geomeans(result, "MultiBags+");
  std::puts("paper reference (Fig 7): reachability geomean 1.40x (dedup "
            "2.29x, bst 4.16x); full overheads lcs 27.13x, sw 25.82x, mm "
            "37.99x, heartwall 35.31x, dedup 4.33x, bst 12.60x (geomean "
            "25.98x)");
  return 0;
}
