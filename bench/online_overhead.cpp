// Online-detection overhead: the price of running a program on the
// work-stealing parallel runtime WITH detection live (src/online/), against
// the same program on the bare parallel runtime with no instrumentation.
//
// Two modes per (program, workers) point:
//
//   bare     rt::parallel_runtime, hooks::none, no session — the paper's
//            production configuration (detect during testing, run free).
//   online   frd::session{runtime = parallel}, hooks::active, full
//            detection streaming through the per-worker rings and the
//            canonical-walk pump, one row per backend.
//
// The deliverable is the per-backend overhead factor (online / bare, from
// the median of the measured runs after one warmup; min/median/stddev all
// land in the JSON per the bench standard). Kernels validate their answers
// against the uninstrumented references, and the online rows must report
// zero races — an overhead number from a detector that mis-detects is not
// an overhead number.
//
// On a single-core container every worker count times about the same; the
// snapshot still fixes the overhead trajectory for hosts with real
// parallelism (same caveat as parallel_speedup).
#include <cstdio>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "bench/config.hpp"
#include "bench_suite/lcs.hpp"
#include "bench_suite/mm.hpp"
#include "detect/hooks.hpp"
#include "runtime/parallel.hpp"
#include "support/check.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace frd;

namespace {

// A kernel closure generic over the runtime — the same callable runs on the
// bare parallel runtime and inside an online session's generic driver. The
// bool selects the hooks policy (instrumented or not).
struct program_case {
  std::string name;
  std::function<void(rt::parallel_runtime&, bool)> bare;
  std::function<void(session&, bool)> online;
};

std::vector<program_case> make_cases(const bench_harness::sizes& sz) {
  std::vector<program_case> out;
  {
    auto in = std::make_shared<bench::lcs_input>(
        bench::make_lcs_input(sz.lcs_n, 101));
    auto want = std::make_shared<int>(bench::lcs_reference(*in));
    const std::size_t base = sz.lcs_base;
    auto run = [in, want, base](auto& rt, bool instr) {
      const int got =
          instr ? bench::lcs_structured<detect::hooks::active>(rt, *in, base)
                : bench::lcs_structured<detect::hooks::none>(rt, *in, base);
      FRD_CHECK_MSG(got == *want, "lcs kernel produced a wrong answer");
    };
    out.push_back(
        {"lcs-structured", [run](rt::parallel_runtime& rt, bool i) { run(rt, i); },
         [run](session& s, bool i) {
           s.run([&](auto& rt) { run(rt, i); });
         }});
  }
  {
    auto in = std::make_shared<bench::mm_input>(
        bench::make_mm_input(sz.mm_n, 103));
    auto want =
        std::make_shared<double>(bench::mm_checksum(bench::mm_reference(*in)));
    const std::size_t base = sz.mm_base;
    auto run = [in, want, base](auto& rt, bool instr) {
      const std::vector<float> got =
          instr ? bench::mm_structured<detect::hooks::active>(rt, *in, base)
                : bench::mm_structured<detect::hooks::none>(rt, *in, base);
      FRD_CHECK_MSG(bench::mm_checksum(got) == *want,
                    "mm kernel produced a wrong answer");
    };
    out.push_back(
        {"mm-structured", [run](rt::parallel_runtime& rt, bool i) { run(rt, i); },
         [run](session& s, bool i) {
           s.run([&](auto& rt) { run(rt, i); });
         }});
  }
  return out;
}

struct row {
  std::string program;
  std::string backend;  // "-" for bare rows
  unsigned workers = 0;
  std::string mode;  // "bare" | "online"
  double mean_s = 0, min_s = 0, median_s = 0, rsd = 0;
  double overhead_vs_bare = 0;  // online rows only (vs the bare median)
  std::uint64_t races = 0;
};

row bench_bare(const program_case& c, unsigned workers, int reps) {
  std::vector<double> times;
  for (int r = 0; r < reps + 1; ++r) {
    rt::parallel_runtime rt(workers);
    wall_timer t;
    c.bare(rt, /*instrumented=*/false);
    if (r > 0) times.push_back(t.seconds());  // first run is warmup
  }
  row out;
  out.program = c.name;
  out.backend = "-";
  out.workers = workers;
  out.mode = "bare";
  out.mean_s = mean(times);
  out.min_s = minimum(times);
  out.median_s = median(times);
  out.rsd = rel_stddev(times);
  return out;
}

row bench_online(const program_case& c, const std::string& backend,
                 unsigned workers, int reps) {
  std::vector<double> times;
  std::uint64_t races = 0;
  for (int r = 0; r < reps + 1; ++r) {
    session s(session::options{.backend = backend,
                               .runtime = runtime_kind::parallel,
                               .runtime_workers = workers});
    wall_timer t;
    c.online(s, /*instrumented=*/true);
    if (r > 0) times.push_back(t.seconds());
    races = s.report().total();
  }
  if (races != 0) {
    std::fprintf(stderr,
                 "WARNING: %s reported %llu races online under %s; the "
                 "kernel is race-free — the overhead row is suspect\n",
                 c.name.c_str(), static_cast<unsigned long long>(races),
                 backend.c_str());
  }
  row out;
  out.program = c.name;
  out.backend = backend;
  out.workers = workers;
  out.mode = "online";
  out.mean_s = mean(times);
  out.min_s = minimum(times);
  out.median_s = median(times);
  out.rsd = rel_stddev(times);
  out.races = races;
  return out;
}

void write_json(const std::string& path, const std::vector<row>& rows) {
  std::ofstream json(path);
  json << "{\n  \"bench\": \"online_overhead\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const row& r = rows[i];
    json << "    {\"program\": \"" << r.program << "\", \"backend\": \""
         << r.backend << "\", \"workers\": " << r.workers << ", \"mode\": \""
         << r.mode << "\", \"mean_seconds\": " << r.mean_s
         << ", \"min_seconds\": " << r.min_s
         << ", \"median_seconds\": " << r.median_s
         << ", \"rel_stddev\": " << r.rsd
         << ", \"overhead_vs_bare\": " << r.overhead_vs_bare
         << ", \"races\": " << r.races << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();  // flush before checking, or buffered failures slip through
  if (!json) {
    std::fprintf(stderr, "online_overhead: writing %s failed\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

std::vector<std::string> split_names(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    if (comma > pos) out.push_back(spec.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& reps = flags.int_flag("reps", 3, "measured repetitions (plus 1 warmup)");
  auto& scale = flags.double_flag("scale", 1.0, "input size multiplier");
  auto& backends = flags.string_flag(
      "backends", "multibags,multibags+",
      "comma-separated detection backends for the online rows");
  auto& workers_spec = flags.string_flag(
      "workers", "1,4", "comma-separated scheduler widths to sweep");
  auto& json_path = flags.string_flag("json", "BENCH_online_overhead.json",
                                      "machine-readable output file");
  flags.parse();
  if (reps < 1) {
    std::fprintf(stderr, "online_overhead: --reps must be >= 1\n");
    return 1;
  }
  std::vector<unsigned> widths;
  for (const std::string& w : split_names(workers_spec)) {
    const int n = std::atoi(w.c_str());
    if (n < 1 || n > 256) {
      std::fprintf(stderr, "online_overhead: bad --workers entry '%s'\n",
                   w.c_str());
      return 1;
    }
    widths.push_back(static_cast<unsigned>(n));
  }
  const std::vector<std::string> backend_names = split_names(backends);
  if (widths.empty() || backend_names.empty()) {
    std::fprintf(stderr, "online_overhead: need >= 1 worker width and "
                         "backend\n");
    return 1;
  }

  const bench_harness::sizes sz = bench_harness::scaled_sizes(scale);
  std::vector<row> rows;
  try {
    for (const program_case& c : make_cases(sz)) {
      for (unsigned w : widths) {
        std::fprintf(stderr, "[online] %s w=%u: bare...\n", c.name.c_str(), w);
        row bare = bench_bare(c, w, static_cast<int>(reps));
        rows.push_back(bare);
        for (const std::string& b : backend_names) {
          std::fprintf(stderr, "[online] %s w=%u: online (%s)...\n",
                       c.name.c_str(), w, b.c_str());
          row on = bench_online(c, b, w, static_cast<int>(reps));
          on.overhead_vs_bare = on.median_s / bare.median_s;
          rows.push_back(std::move(on));
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "online_overhead: %s\n", e.what());
    return 1;
  }

  text_table t({"program", "workers", "mode", "backend", "median", "min",
                "rsd", "overhead"});
  for (const row& r : rows) {
    char rsd[32], ov[32];
    std::snprintf(rsd, sizeof rsd, "%.1f%%", 100.0 * r.rsd);
    if (r.mode == "online") {
      std::snprintf(ov, sizeof ov, "%.2fx", r.overhead_vs_bare);
    } else {
      std::snprintf(ov, sizeof ov, "-");
    }
    t.add_row({r.program, std::to_string(r.workers), r.mode, r.backend,
               text_table::seconds(r.median_s), text_table::seconds(r.min_s),
               rsd, ov});
  }
  std::printf("\n== Online detection overhead vs bare parallel (%lld reps) "
              "==\n%s",
              static_cast<long long>(reps), t.render().c_str());
  write_json(json_path, rows);
  return 0;
}
