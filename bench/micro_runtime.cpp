// Per-construct overhead of the runtimes: what a spawn/sync or
// create_fut/get_fut costs with no detector, with reachability maintenance
// (both algorithms), and in parallel. This isolates the "reachability"
// column of Figures 6-7 per construct — the paper attributes bst's outlier
// reachability overhead to its tiny work-per-construct ratio.
#include <benchmark/benchmark.h>

#include "api/session.hpp"
#include "runtime/parallel.hpp"
#include "runtime/serial.hpp"

namespace {

using frd::rt::serial_runtime;

void spawn_tree(serial_runtime& rt, int depth) {
  if (depth == 0) return;
  rt.spawn([&rt, depth] { spawn_tree(rt, depth - 1); });
  rt.spawn([&rt, depth] { spawn_tree(rt, depth - 1); });
  rt.sync();
}

const char* backend_of(int which) {
  return which == 1 ? "multibags" : "multibags+";
}

// Sessions (like the ids the runtime mints) are one-shot, so each iteration
// builds its own; the loop body cost is dominated by the 2^11 constructs,
// not the small allocations.
void BM_SerialSpawnSync(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  for (auto _ : state) {
    if (which == 0) {
      serial_runtime rt;
      rt.run([&] { spawn_tree(rt, 10); });  // 2^11-2 spawns
    } else {
      frd::session s(frd::session::options{
          .backend = backend_of(which),
          .level = frd::detect::level::reachability});
      serial_runtime& rt = s.runtime();
      rt.run([&] { spawn_tree(rt, 10); });
    }
  }
  state.SetLabel(which == 0 ? "no detector" : backend_of(which));
  state.SetItemsProcessed(state.iterations() * ((1 << 11) - 2));
}
BENCHMARK(BM_SerialSpawnSync)->Arg(0)->Arg(1)->Arg(2);

void BM_SerialFutureChain(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const int n = 1024;
  auto chain = [n](serial_runtime& rt) {
    rt.run([&] {
      frd::rt::future<int> prev;
      for (int i = 0; i < n; ++i) {
        auto cur = rt.create_future([&prev]() -> int {
          return prev.valid() ? prev.get() + 1 : 0;
        });
        prev = std::move(cur);
      }
      benchmark::DoNotOptimize(prev.get());
    });
  };
  for (auto _ : state) {
    if (which == 0) {
      serial_runtime rt;
      chain(rt);
    } else {
      frd::session s(frd::session::options{
          .backend = backend_of(which),
          .level = frd::detect::level::reachability});
      chain(s.runtime());
    }
  }
  state.SetLabel(which == 0 ? "no detector" : backend_of(which));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SerialFutureChain)->Arg(0)->Arg(1)->Arg(2);

void BM_ParallelSpawnThroughput(benchmark::State& state) {
  frd::rt::parallel_runtime rt(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    std::atomic<long> sink{0};
    rt.run([&] {
      for (int i = 0; i < 4096; ++i)
        rt.spawn([&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
      rt.sync();
    });
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ParallelSpawnThroughput)->Arg(1)->Arg(4)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
