// Per-construct overhead of the runtimes: what a spawn/sync or
// create_fut/get_fut costs with no detector, with reachability maintenance
// (both algorithms), and in parallel. This isolates the "reachability"
// column of Figures 6-7 per construct — the paper attributes bst's outlier
// reachability overhead to its tiny work-per-construct ratio.
#include <benchmark/benchmark.h>

#include "detect/multibags.hpp"
#include "detect/multibags_plus.hpp"
#include "runtime/parallel.hpp"
#include "runtime/serial.hpp"

namespace {

using frd::rt::serial_runtime;

void spawn_tree(serial_runtime& rt, int depth) {
  if (depth == 0) return;
  rt.spawn([&rt, depth] { spawn_tree(rt, depth - 1); });
  rt.spawn([&rt, depth] { spawn_tree(rt, depth - 1); });
  rt.sync();
}

// Reachability backends are one-shot (fresh ids per program), so each
// iteration builds its own backend + runtime; the loop body cost is
// dominated by the 2^11 constructs, not the small allocations.
void BM_SerialSpawnSync(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  for (auto _ : state) {
    frd::detect::multibags mb;
    frd::detect::multibags_plus mbp;
    frd::rt::execution_listener* l = nullptr;
    if (which == 1) l = &mb;
    if (which == 2) l = &mbp;
    serial_runtime rt(l);
    rt.run([&] { spawn_tree(rt, 10); });  // 2^11-2 spawns
  }
  state.SetLabel(which == 0 ? "no detector"
                            : which == 1 ? "multibags" : "multibags+");
  state.SetItemsProcessed(state.iterations() * ((1 << 11) - 2));
}
BENCHMARK(BM_SerialSpawnSync)->Arg(0)->Arg(1)->Arg(2);

void BM_SerialFutureChain(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const int n = 1024;
  for (auto _ : state) {
    frd::detect::multibags mb;
    frd::detect::multibags_plus mbp;
    frd::rt::execution_listener* l = nullptr;
    if (which == 1) l = &mb;
    if (which == 2) l = &mbp;
    serial_runtime rt(l);
    rt.run([&] {
      frd::rt::future<int> prev;
      for (int i = 0; i < n; ++i) {
        auto cur = rt.create_future([&prev]() -> int {
          return prev.valid() ? prev.get() + 1 : 0;
        });
        prev = std::move(cur);
      }
      benchmark::DoNotOptimize(prev.get());
    });
  }
  state.SetLabel(which == 0 ? "no detector"
                            : which == 1 ? "multibags" : "multibags+");
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SerialFutureChain)->Arg(0)->Arg(1)->Arg(2);

void BM_ParallelSpawnThroughput(benchmark::State& state) {
  frd::rt::parallel_runtime rt(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    std::atomic<long> sink{0};
    rt.run([&] {
      for (int i = 0; i < 4096; ++i)
        rt.spawn([&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
      rt.sync();
    });
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ParallelSpawnThroughput)->Arg(1)->Arg(4)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
