// Replay-mode benchmark: pure detection throughput (trace events/sec) per
// backend, with no kernel execution in the timed region.
//
// A sizeable structured fuzz program is executed and recorded ONCE into an
// in-memory trace; each futures-capable backend then replays that identical
// event stream `reps` times from a fresh session. Because replay executes no
// user code, the numbers isolate what the paper's full-detection overhead is
// made of — reachability maintenance + access-history work — without kernel
// noise, making them comparable across machines and PRs. Results go to
// stdout as a table and to --json as a machine-readable file next to the
// other harness output, so the perf trajectory accumulates.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "detect/registry.hpp"
#include "graph/fuzz.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "trace/event.hpp"
#include "trace/recorder.hpp"
#include "support/check.hpp"

using namespace frd;

namespace {

std::vector<int> g_cells;

void fuzz_into(session& s, std::uint64_t seed, int depth, int actions,
               int futures) {
  graph::fuzz_config cfg;
  cfg.seed = seed;
  cfg.structured = true;  // structured: every futures-capable backend replays
  cfg.max_depth = depth;
  cfg.max_actions_per_body = actions;
  cfg.n_cells = static_cast<std::uint32_t>(g_cells.size());
  cfg.max_futures = static_cast<std::size_t>(futures);
  graph::fuzzer fz(s.runtime(), cfg, [&s](std::uint32_t cell, bool write) {
    if (write) {
      s.write(&g_cells[cell]);
    } else {
      s.read(&g_cells[cell]);
    }
  });
  s.run([&](rt::serial_runtime&) { fz.run(); });
}

}  // namespace

int main(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& reps = flags.int_flag("reps", 5, "replays per backend");
  auto& seed = flags.int_flag("seed", 12, "fuzz seed for the recorded program");
  // Program size grows exponentially in depth/actions — nudge gently.
  auto& depth = flags.int_flag("depth", 8, "fuzz nesting depth");
  auto& actions = flags.int_flag("actions", 16, "fuzz actions per body");
  auto& futures = flags.int_flag("futures", 2000, "cap on futures created");
  auto& cells = flags.int_flag("cells", 64, "distinct shared memory cells");
  auto& json_path = flags.string_flag("json", "replay_throughput.json",
                                      "machine-readable output file");
  flags.parse();
  if (reps < 1) {
    std::fprintf(stderr, "replay_throughput: --reps must be >= 1\n");
    return 1;
  }

  g_cells.assign(static_cast<std::size_t>(cells), 0);

  // Record once.
  trace::memory_trace tape(trace::trace_header{trace::kTraceVersion, 4});
  session rec(session::options{.backend = "multibags+", .granule = 4});
  rec.record_to(tape);
  fuzz_into(rec, static_cast<std::uint64_t>(seed), static_cast<int>(depth),
            static_cast<int>(actions), static_cast<int>(futures));
  std::fprintf(stderr, "[replay] recorded %zu events (%llu accesses, %llu races)\n",
               tape.size(),
               static_cast<unsigned long long>(rec.access_count()),
               static_cast<unsigned long long>(rec.report().total()));

  struct row {
    std::string backend;
    double mean_s = 0, rsd = 0, events_per_sec = 0;
    std::uint64_t races = 0;
  };
  std::vector<row> rows;

  const auto& reg = detect::backend_registry::instance();
  for (const std::string& name : reg.names()) {
    if (reg.at(name).futures == detect::future_support::none) continue;
    std::vector<double> times;
    std::uint64_t races = 0;
    std::uint64_t baseline_races = rec.report().total();
    for (int r = 0; r < static_cast<int>(reps) + 1; ++r) {
      tape.rewind();
      session s(session::options{.backend = name, .granule = 4});
      wall_timer t;
      s.replay(tape);
      const double secs = t.seconds();
      if (r > 0) times.push_back(secs);  // first replay is warmup
      races = s.report().total();
    }
    FRD_CHECK_MSG(races == baseline_races,
                  "replay race count diverged from the recording session");
    row out;
    out.backend = name;
    out.mean_s = mean(times);
    out.rsd = rel_stddev(times);
    out.events_per_sec = static_cast<double>(tape.size()) / out.mean_s;
    out.races = races;
    rows.push_back(out);
  }

  text_table table({"backend", "mean", "events/sec", "races"});
  for (const row& r : rows) {
    char eps[64];
    std::snprintf(eps, sizeof(eps), "%.3g", r.events_per_sec);
    table.add_row({r.backend, text_table::seconds(r.mean_s), eps,
                   std::to_string(r.races)});
  }
  std::printf("\n== Replay throughput: %zu-event trace, %lld reps ==\n%s",
              tape.size(), static_cast<long long>(reps),
              table.render().c_str());

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"replay_throughput\",\n"
       << "  \"trace_events\": " << tape.size() << ",\n"
       << "  \"seed\": " << seed << ",\n  \"depth\": " << depth
       << ",\n  \"actions\": " << actions << ",\n"
       << "  \"backends\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const row& r = rows[i];
    json << "    {\"name\": \"" << r.backend << "\", \"mean_seconds\": "
         << r.mean_s << ", \"rel_stddev\": " << r.rsd
         << ", \"events_per_sec\": " << r.events_per_sec << ", \"races\": "
         << r.races << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
