// Replay-mode benchmark: pure detection throughput (trace events/sec) per
// backend, with no kernel execution in the timed region.
//
// Two sources of traces:
//
//   --corpus DIR   (the per-PR snapshot mode) replays every entry of the
//                  checked-in trace corpus through every backend eligible
//                  for it, so the numbers cover the paper kernels and the
//                  adversarial shapes alike and stay comparable across PRs —
//                  the traces are versioned artifacts, not regenerated
//                  programs. Each replay's racy-granule count is checked
//                  against the entry's golden: a perf run on a detector that
//                  silently miscounts races is not a perf run.
//   (default)      a sizeable structured fuzz program is executed and
//                  recorded ONCE into an in-memory trace, then replayed —
//                  the quick local-iteration mode.
//
// Because replay executes no user code, the numbers isolate what the
// paper's full-detection overhead is made of — reachability maintenance +
// access-history work — without kernel noise. Results go to stdout as a
// table and to --json (default BENCH_replay_throughput.json) as the
// machine-readable snapshot CI uploads; perf/ keeps one snapshot per PR.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "corpus/manifest.hpp"
#include "corpus/runner.hpp"
#include "detect/registry.hpp"
#include "graph/fuzz.hpp"
#include "shadow/store.hpp"
#include "support/check.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "trace/event.hpp"
#include "trace/recorder.hpp"

using namespace frd;

namespace {

std::vector<int> g_cells;

void fuzz_into(session& s, std::uint64_t seed, int depth, int actions,
               int futures) {
  graph::fuzz_config cfg;
  cfg.seed = seed;
  cfg.structured = true;  // structured: every futures-capable backend replays
  cfg.max_depth = depth;
  cfg.max_actions_per_body = actions;
  cfg.n_cells = static_cast<std::uint32_t>(g_cells.size());
  cfg.max_futures = static_cast<std::size_t>(futures);
  graph::fuzzer fz(s.runtime(), cfg, [&s](std::uint32_t cell, bool write) {
    if (write) {
      s.write(&g_cells[cell]);
    } else {
      s.read(&g_cells[cell]);
    }
  });
  s.run([&](rt::serial_runtime&) { fz.run(); });
}

struct row {
  std::string trace;  // corpus entry name, or "fuzz" in fuzz mode
  std::string format = "frdt";  // artifact format: frdt | frdtz | memory
  std::string backend;
  std::string store;
  std::size_t batch = 256;  // player run length (session replay_batch)
  unsigned workers = 1;     // parallel detection workers (1 = serial)
  double sample_rate = 1.0; // sampling-mode rate (1.0 = full detection)
  std::size_t history_depth = shadow::kUnboundedHistory;
  std::uint64_t events = 0;
  double mean_s = 0, min_s = 0, median_s = 0, stddev_s = 0, rsd = 0,
         events_per_sec = 0;
  std::uint64_t racy_granules = 0;
};

// Benchmark settings beyond the per-row sweep axes: warmup replays are run
// and discarded before the measured batch, so first-touch page faults,
// allocator growth, and cold caches never land in a timed repetition
// (SNIPPETS.md §1's warmup/measured separation).
struct bench_settings {
  int warmup = 1;
  int reps = 5;
  double sample_rate = 1.0;
  std::size_t history_depth = shadow::kUnboundedHistory;
};

// Replays `tape` through `backend` on `store` with the given player batch
// size and detection worker count; `cfg.warmup` discarded replays, then
// `cfg.reps` measured ones fill the timing columns (mean, min, median,
// stddev — throughput is derived from the mean). All correctness checks
// happen on the session state AFTER the timer stops.
row bench_backend(trace::memory_trace& tape, const std::string& name,
                  const std::string& backend, const std::string& store,
                  unsigned shard_bits, std::size_t batch, unsigned workers,
                  const bench_settings& cfg) {
  std::vector<double> times;
  std::uint64_t racy = 0;
  for (int r = 0; r < cfg.reps + cfg.warmup; ++r) {
    tape.rewind();
    session s(session::options{.backend = backend,
                               .granule = tape.header().granule,
                               .shadow_store = store,
                               .shadow_shard_bits = shard_bits,
                               .replay_batch = batch,
                               .detect_workers = workers,
                               .sample_rate = cfg.sample_rate,
                               .shadow_history_depth = cfg.history_depth});
    wall_timer t;
    s.replay(tape);
    const double secs = t.seconds();
    if (r >= cfg.warmup) times.push_back(secs);
    racy = s.report().racy_granules().size();
  }
  tape.rewind();
  row out;
  out.trace = name;
  out.backend = backend;
  out.store = store;
  out.batch = batch;
  out.workers = workers;
  out.sample_rate = cfg.sample_rate;
  out.history_depth = cfg.history_depth;
  out.events = tape.size();
  out.mean_s = mean(times);
  out.min_s = minimum(times);
  out.median_s = median(times);
  out.stddev_s = stddev(times);
  out.rsd = rel_stddev(times);
  out.events_per_sec = static_cast<double>(tape.size()) / out.mean_s;
  out.racy_granules = racy;
  return out;
}

// --batch-size accepts one value or a comma-separated sweep ("64,256,1024").
// Every token must parse completely — "64;256" must be a usage error, not a
// silent single-size run.
std::vector<std::size_t> parse_batch_sizes(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string tok = spec.substr(pos, comma - pos);
    char* end = nullptr;
    const long v = tok.empty() ? 0 : std::strtol(tok.c_str(), &end, 10);
    if (v < 1 || end == nullptr || *end != '\0') {
      return {};  // caller reports the usage error
    }
    out.push_back(static_cast<std::size_t>(v));
    pos = comma + 1;
  }
  return out;
}

// --sample-rate accepts one value or a comma-separated sweep ("1,0.5,0.1");
// every token must be a complete number in (0, 1].
std::vector<double> parse_sample_rates(const std::string& spec) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string tok = spec.substr(pos, comma - pos);
    char* end = nullptr;
    const double v = tok.empty() ? 0 : std::strtod(tok.c_str(), &end);
    if (!(v > 0.0 && v <= 1.0) || end == nullptr || *end != '\0') {
      return {};  // caller reports the usage error
    }
    out.push_back(v);
    pos = comma + 1;
  }
  return out;
}

void write_json(const std::string& path, const std::string& mode,
                const std::vector<row>& rows) {
  std::ofstream json(path);
  json << "{\n  \"bench\": \"replay_throughput\",\n"
       << "  \"mode\": \"" << mode << "\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const row& r = rows[i];
    json << "    {\"trace\": \"" << r.trace << "\", \"format\": \""
         << r.format << "\", \"backend\": \"" << r.backend << "\", \"store\": \""
         << r.store
         << "\", \"batch\": " << r.batch << ", \"workers\": " << r.workers
         << ", \"sample_rate\": " << r.sample_rate << ", \"history_depth\": ";
    if (r.history_depth == shadow::kUnboundedHistory) {
      json << "\"unbounded\"";
    } else {
      json << r.history_depth;
    }
    json << ", \"events\": " << r.events
         << ", \"mean_seconds\": " << r.mean_s
         << ", \"min_seconds\": " << r.min_s
         << ", \"median_seconds\": " << r.median_s
         << ", \"stddev_seconds\": " << r.stddev_s
         << ", \"rel_stddev\": " << r.rsd
         << ", \"events_per_sec\": " << r.events_per_sec
         << ", \"racy_granules\": " << r.racy_granules << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();  // flush before checking, or buffered failures slip through
  if (!json) {
    std::fprintf(stderr, "replay_throughput: writing %s failed\n",
                 path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

void print_table(const std::vector<row>& rows, const char* title) {
  text_table table({"trace", "backend", "store", "batch", "workers", "rate",
                    "depth", "events", "mean", "median", "events/sec",
                    "racy"});
  for (const row& r : rows) {
    char eps[64], rate[32];
    std::snprintf(eps, sizeof(eps), "%.3g", r.events_per_sec);
    std::snprintf(rate, sizeof(rate), "%g", r.sample_rate);
    table.add_row({r.trace, r.backend, r.store, std::to_string(r.batch),
                   std::to_string(r.workers), rate,
                   r.history_depth == shadow::kUnboundedHistory
                       ? std::string("inf")
                       : std::to_string(r.history_depth),
                   std::to_string(r.events), text_table::seconds(r.mean_s),
                   text_table::seconds(r.median_s), eps,
                   std::to_string(r.racy_granules)});
  }
  std::printf("\n== Replay throughput: %s ==\n%s", title,
              table.render().c_str());
}

int run_corpus_mode(const std::string& dir, const std::string& store,
                    unsigned shard_bits,
                    const std::vector<std::size_t>& batches, unsigned workers,
                    const std::vector<double>& rates, bench_settings cfg,
                    const std::string& json_path) {
  const corpus::manifest m = corpus::load_manifest(dir + "/MANIFEST");
  std::vector<row> rows;
  for (const corpus::corpus_entry& e : m.entries) {
    trace::memory_trace tape = corpus::load_trace(dir + "/" + e.trace_file);
    const corpus::golden_report gold =
        corpus::load_golden(dir + "/" + e.golden_file);
    const bool compressed = e.trace_file.ends_with(".frdtz");
    for (const std::string& backend : corpus::eligible_backends(e.futures)) {
      for (const std::size_t batch : batches) {
        for (const double rate : rates) {
          cfg.sample_rate = rate;
          row r = bench_backend(tape, e.name, backend, store, shard_bits,
                                batch, workers, cfg);
          r.format = compressed ? "frdtz" : "frdt";
          // Correctness gate, outside the timed region: full detection must
          // match the golden byte for byte; a (granule-policy) sampled or
          // history-bounded run reports a subset of the golden races, so a
          // count above the golden's is a bug in either mode.
          if (rate == 1.0 && cfg.history_depth == shadow::kUnboundedHistory) {
            FRD_CHECK_MSG(r.racy_granules == gold.racy_granules.size(),
                          "replay race count diverged from the corpus golden "
                          "— run frd-corpus verify");
          } else {
            FRD_CHECK_MSG(r.racy_granules <= gold.racy_granules.size(),
                          "sampled replay reported MORE racy granules than "
                          "the corpus golden");
          }
          rows.push_back(std::move(r));
        }
      }
    }
  }
  print_table(rows, (std::to_string(m.entries.size()) + "-entry corpus, " +
                     std::to_string(cfg.reps) + " reps, store " + store)
                        .c_str());
  write_json(json_path, "corpus", rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& reps = flags.int_flag("reps", 5, "replays per backend");
  auto& corpus_dir = flags.string_flag(
      "corpus", "", "replay the trace corpus at this directory instead of a "
                    "freshly recorded fuzz program");
  auto& seed = flags.int_flag("seed", 12, "fuzz seed for the recorded program");
  // Program size grows exponentially in depth/actions — nudge gently.
  auto& depth = flags.int_flag("depth", 8, "fuzz nesting depth");
  auto& actions = flags.int_flag("actions", 16, "fuzz actions per body");
  auto& futures = flags.int_flag("futures", 2000, "cap on futures created");
  auto& cells = flags.int_flag("cells", 64, "distinct shared memory cells");
  auto& json_path = flags.string_flag("json", "BENCH_replay_throughput.json",
                                      "machine-readable output file");
  auto& store = flags.string_flag(
      "store", std::string(shadow::kDefaultStore),
      "shadow store to replay on (the per-PR snapshot uses the default "
      "store so the perf trajectory stays comparable)");
  auto& shard_bits = flags.int_flag(
      "shard-bits", 4, "sharded store: 2^bits shards (ignored elsewhere)");
  auto& batch_spec = flags.string_flag(
      "batch-size", "256",
      "player run length(s) per on_accesses batch; comma-separated to sweep "
      "(e.g. 64,256,1024 — rows carry the size in the \"batch\" field; the "
      "per-PR snapshot uses the default so the trajectory stays comparable)");
  auto& workers = flags.int_flag(
      "workers", 1,
      "parallel detection workers (>1 requires --store sharded; rows carry "
      "the count in the \"workers\" field — perf_compare only gates on "
      "workers=1 rows)");
  auto& rate_spec = flags.string_flag(
      "sample-rate", "1",
      "sampling rate(s) in (0, 1]; comma-separated to sweep (e.g. 1,0.1 — "
      "rows carry the rate in the \"sample_rate\" field; perf_compare only "
      "gates the serial trajectory on rate-1 rows)");
  auto& history_depth = flags.int_flag(
      "history-depth", 0,
      "retained readers per granule; 0 = unbounded, N >= 1 keeps the most "
      "recent N (short-race-window mode)");
  auto& warmup = flags.int_flag(
      "warmup", 1, "discarded replays before the measured batch");
  flags.parse();
  if (reps < 1) {
    std::fprintf(stderr, "replay_throughput: --reps must be >= 1\n");
    return 1;
  }
  const std::vector<std::size_t> batches = parse_batch_sizes(batch_spec);
  if (batches.empty()) {
    std::fprintf(stderr, "replay_throughput: --batch-size needs positive "
                         "comma-separated integers (e.g. 64,256,1024)\n");
    return 1;
  }
  if (shard_bits < 0 || shard_bits > 10) {
    std::fprintf(stderr, "replay_throughput: --shard-bits must be in [0, 10]\n");
    return 1;
  }
  if (workers < 1 || workers > 256) {
    std::fprintf(stderr, "replay_throughput: --workers must be in [1, 256]\n");
    return 1;
  }
  if (workers > 1 && (store != "sharded" || shard_bits < 1)) {
    std::fprintf(stderr, "replay_throughput: --workers > 1 needs --store "
                         "sharded with --shard-bits >= 1\n");
    return 1;
  }
  const std::vector<double> rates = parse_sample_rates(rate_spec);
  if (rates.empty()) {
    std::fprintf(stderr, "replay_throughput: --sample-rate needs "
                         "comma-separated values in (0, 1] (e.g. 1,0.1)\n");
    return 1;
  }
  if (history_depth < 0) {
    std::fprintf(stderr, "replay_throughput: --history-depth must be >= 0 "
                         "(0 = unbounded)\n");
    return 1;
  }
  if (warmup < 0) {
    std::fprintf(stderr, "replay_throughput: --warmup must be >= 0\n");
    return 1;
  }
  bench_settings settings;
  settings.warmup = static_cast<int>(warmup);
  settings.reps = static_cast<int>(reps);
  settings.history_depth = history_depth == 0
                               ? shadow::kUnboundedHistory
                               : static_cast<std::size_t>(history_depth);
  try {
    shadow::store_registry::instance().at(store);  // fail fast with the list
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay_throughput: %s\n", e.what());
    return 1;
  }

  if (!corpus_dir.empty()) {
    try {
      return run_corpus_mode(corpus_dir, store,
                             static_cast<unsigned>(shard_bits), batches,
                             static_cast<unsigned>(workers), rates, settings,
                             json_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "replay_throughput: %s\n", e.what());
      return 1;
    }
  }

  g_cells.assign(static_cast<std::size_t>(cells), 0);

  // Record once.
  trace::memory_trace tape(trace::trace_header{trace::kTraceVersion, 4});
  session rec(session::options{.backend = "multibags+", .granule = 4});
  rec.record_to(tape);
  fuzz_into(rec, static_cast<std::uint64_t>(seed), static_cast<int>(depth),
            static_cast<int>(actions), static_cast<int>(futures));
  std::fprintf(stderr, "[replay] recorded %zu events (%llu accesses, %llu races)\n",
               tape.size(),
               static_cast<unsigned long long>(rec.access_count()),
               static_cast<unsigned long long>(rec.report().total()));

  const std::uint64_t baseline_racy = rec.report().racy_granules().size();
  std::vector<row> rows;
  const auto& reg = detect::backend_registry::instance();
  for (const std::string& name : reg.names()) {
    if (reg.at(name).futures == detect::future_support::none) continue;
    for (const std::size_t batch : batches) {
      for (const double rate : rates) {
        settings.sample_rate = rate;
        row r = bench_backend(tape, "fuzz", name, store,
                              static_cast<unsigned>(shard_bits), batch,
                              static_cast<unsigned>(workers), settings);
        r.format = "memory";
        if (rate == 1.0 &&
            settings.history_depth == shadow::kUnboundedHistory) {
          FRD_CHECK_MSG(r.racy_granules == baseline_racy,
                        "replay race count diverged from the recording "
                        "session");
        } else {
          FRD_CHECK_MSG(r.racy_granules <= baseline_racy,
                        "sampled replay reported MORE racy granules than the "
                        "recording session");
        }
        rows.push_back(std::move(r));
      }
    }
  }

  print_table(rows, (std::to_string(tape.size()) + "-event fuzz trace, " +
                     std::to_string(reps) + " reps")
                        .c_str());
  write_json(json_path, "fuzz", rows);
  return 0;
}
