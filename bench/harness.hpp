// Shared harness for the paper-table benches (Figures 6-8).
//
// A bench case is a kernel closure parameterized by the runtime and a
// compile-time-selected hook policy (passed as a bool: instrumented or
// not). The harness times it under the paper's four configurations:
//
//   baseline         serial runtime, no listener, hooks::none
//   reachability     session listening, hooks::none
//   instrumentation  session listening, hooks::active, no history work
//   full             session listening, hooks::active, full race detection
//
// Each configuration runs `reps` times in a fresh frd::session (sessions are
// one-shot, matching the runtime's dense id minting); the mean is reported
// with the overhead multiplier against the baseline, in the paper's row
// format. Backends are named by their registry key ("multibags",
// "multibags+", ...), so a new backend is benchable without touching this
// file.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "runtime/serial.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace frd::bench_harness {

// run(rt, instrumented): execute the kernel once. The closure owns its input
// (constructed outside the timed region) and should validate its own answer
// on the first run.
using kernel_fn = std::function<void(rt::serial_runtime&, bool instrumented)>;

struct timing {
  double seconds = 0;
  double rel_stddev = 0;
  std::uint64_t races = 0;
  std::uint64_t violations = 0;
  std::uint64_t gets = 0;
};

inline timing time_config(const kernel_fn& kernel, const std::string& backend,
                          detect::level lvl, int reps) {
  timing out;
  std::vector<double> times;
  // One untimed warmup run so the first configuration measured does not
  // absorb the cold-cache / page-fault cost of touching the input.
  {
    rt::serial_runtime runtime;
    kernel(runtime, false);
  }
  for (int r = 0; r < reps; ++r) {
    if (lvl == detect::level::baseline) {
      rt::serial_runtime runtime;
      wall_timer t;
      kernel(runtime, /*instrumented=*/false);
      times.push_back(t.seconds());
      continue;
    }
    session s(session::options{.backend = backend, .level = lvl});
    s.runtime();  // build the runtime outside the timed region (baseline parity)
    const bool instrumented = lvl == detect::level::instrumentation ||
                              lvl == detect::level::full;
    wall_timer t;
    s.run([&](rt::serial_runtime& runtime) { kernel(runtime, instrumented); });
    times.push_back(t.seconds());
    out.races = s.report().total();
    out.violations = s.structured_violations();
    out.gets = s.get_count();
  }
  out.seconds = mean(times);
  out.rel_stddev = rel_stddev(times);
  return out;
}

struct case_row {
  std::string name;
  kernel_fn kernel;
  bool expect_race_free = true;
  bool expect_disciplined = false;  // assert 0 structured violations
};

// Runs the Figure 6/7 shape: all four configurations under one backend.
// Returns per-benchmark overheads for the geomean summary.
struct fig_result {
  std::vector<double> reach_overheads;
  std::vector<double> full_overheads;
  std::vector<std::string> names;
};

inline fig_result run_four_config_table(const std::vector<case_row>& cases,
                                        const std::string& backend, int reps,
                                        const char* caption) {
  text_table table({"bench", "baseline", "reachability", "instr", "full",
                    "k(gets)", "races"});
  fig_result result;
  for (const case_row& c : cases) {
    std::fprintf(stderr, "[fig] %s: baseline...\n", c.name.c_str());
    const timing base =
        time_config(c.kernel, backend, detect::level::baseline, reps);
    std::fprintf(stderr, "[fig] %s: reachability...\n", c.name.c_str());
    const timing reach =
        time_config(c.kernel, backend, detect::level::reachability, reps);
    std::fprintf(stderr, "[fig] %s: instrumentation...\n", c.name.c_str());
    const timing instr =
        time_config(c.kernel, backend, detect::level::instrumentation, reps);
    std::fprintf(stderr, "[fig] %s: full...\n", c.name.c_str());
    const timing full = time_config(c.kernel, backend, detect::level::full, reps);

    if (c.expect_race_free && full.races != 0) {
      std::fprintf(stderr, "WARNING: %s reported %llu races; expected none\n",
                   c.name.c_str(),
                   static_cast<unsigned long long>(full.races));
    }
    if (c.expect_disciplined && full.violations != 0) {
      std::fprintf(stderr,
                   "WARNING: %s violated the structured discipline %llu times\n",
                   c.name.c_str(),
                   static_cast<unsigned long long>(full.violations));
    }

    table.add_row({c.name, text_table::seconds(base.seconds),
                   text_table::seconds_with_overhead(reach.seconds, base.seconds),
                   text_table::seconds_with_overhead(instr.seconds, base.seconds),
                   text_table::seconds_with_overhead(full.seconds, base.seconds),
                   std::to_string(full.gets), std::to_string(full.races)});
    result.names.push_back(c.name);
    result.reach_overheads.push_back(reach.seconds / base.seconds);
    result.full_overheads.push_back(full.seconds / base.seconds);
  }
  std::printf("%s\n%s", caption, table.render().c_str());
  return result;
}

// The paper's geometric means exclude dedup (its compression library was not
// instrumentable, §6).
inline void print_geomeans(const fig_result& r, const char* label) {
  std::vector<double> reach, full;
  for (std::size_t i = 0; i < r.names.size(); ++i) {
    if (r.names[i].rfind("dedup", 0) == 0) continue;
    reach.push_back(r.reach_overheads[i]);
    full.push_back(r.full_overheads[i]);
  }
  std::printf(
      "geomean overhead (%s, excluding dedup): reachability %.2fx, full "
      "%.2fx\n\n",
      label, geomean(reach), geomean(full));
}

}  // namespace frd::bench_harness
