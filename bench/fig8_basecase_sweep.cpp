// Figure 8 reproduction: structured-future programs under BOTH algorithms in
// the *reachability* configuration, shrinking the base case B (growing k).
//
// Paper shape: MultiBags stays ~1.0x regardless of B; MultiBags+ pays its k²
// term — dramatic for lcs (Θ(n²) work vs (n/B)² futures: 2.19x at B=64,
// 18.63x at B=32) and mm ((n/B)³ futures: 3.75x), negligible for sw (Θ(n³)
// work swamps the same future count). We additionally report k and the
// memory footprint of MultiBags+'s reachability matrix R, which the paper
// calls out as the second cost driver at small base cases.
#include <cstdio>

#include "api/session.hpp"
#include "bench/config.hpp"
#include "bench/harness.hpp"
#include "detect/multibags_plus.hpp"
#include "support/flags.hpp"

using namespace frd;
using namespace frd::bench;
using namespace frd::bench_harness;

namespace {

struct sweep_case {
  std::string name;
  kernel_fn kernel;
};

struct row_out {
  double base_s = 0, mb_s = 0, mbp_s = 0;
  std::uint64_t k = 0;
  std::size_t r_bytes = 0;
  std::size_t r_nodes = 0;
};

row_out run_case(const kernel_fn& kernel, int reps) {
  row_out out;
  {
    rt::serial_runtime runtime;  // untimed warmup
    kernel(runtime, false);
  }
  {
    std::vector<double> ts;
    for (int r = 0; r < reps; ++r) {
      rt::serial_runtime runtime;
      wall_timer t;
      kernel(runtime, false);
      ts.push_back(t.seconds());
    }
    out.base_s = mean(ts);
  }
  {
    std::vector<double> ts;
    for (int r = 0; r < reps; ++r) {
      frd::session s(frd::session::options{
          .backend = "multibags", .level = detect::level::reachability});
      s.runtime();  // untimed construction, like the baseline branch
      wall_timer t;
      s.run([&](rt::serial_runtime& runtime) { kernel(runtime, false); });
      ts.push_back(t.seconds());
    }
    out.mb_s = mean(ts);
  }
  {
    std::vector<double> ts;
    for (int r = 0; r < reps; ++r) {
      frd::session s(frd::session::options{
          .backend = "multibags+", .level = detect::level::reachability});
      s.runtime();  // untimed construction, like the baseline branch
      wall_timer t;
      s.run([&](rt::serial_runtime& runtime) { kernel(runtime, false); });
      ts.push_back(t.seconds());
      const auto& mbp = dynamic_cast<const detect::multibags_plus&>(s.backend());
      out.r_bytes = mbp.r().closure_bytes();
      out.r_nodes = mbp.r().size();
      out.k = mbp.r().stats().arcs;  // proxy scale; exact k printed by fig6/7
    }
    out.mbp_s = mean(ts);
  }
  return out;
}

std::string human_bytes(std::size_t b) {
  char buf[32];
  if (b >= (1u << 20)) {
    std::snprintf(buf, sizeof buf, "%.1fMiB", static_cast<double>(b) / (1 << 20));
  } else {
    std::snprintf(buf, sizeof buf, "%.1fKiB", static_cast<double>(b) / (1 << 10));
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& reps = flags.int_flag("reps", 3, "repetitions per configuration");
  auto& lcs_n = flags.int_flag("lcs_n", 2048, "lcs problem size");
  auto& sw_n = flags.int_flag("sw_n", 256, "sw problem size");
  auto& mm_n = flags.int_flag("mm_n", 128, "mm problem size");
  flags.parse();

  sizes sz;
  std::vector<sweep_case> cases;
  auto add_lcs = [&](std::size_t b) {
    sizes s = sz;
    s.lcs_n = static_cast<std::size_t>(lcs_n);
    s.lcs_base = b;
    cases.push_back({"lcs (B=" + std::to_string(b) + ")",
                     make_lcs_case(s, variant::structured)});
  };
  auto add_sw = [&](std::size_t b) {
    sizes s = sz;
    s.sw_n = static_cast<std::size_t>(sw_n);
    s.sw_base = b;
    cases.push_back({"sw (B=" + std::to_string(b) + ")",
                     make_sw_case(s, variant::structured)});
  };
  auto add_mm = [&](std::size_t b) {
    sizes s = sz;
    s.mm_n = static_cast<std::size_t>(mm_n);
    s.mm_base = b;
    cases.push_back({"mm (B=" + std::to_string(b) + ")",
                     make_mm_case(s, variant::structured)});
  };
  add_lcs(64);
  add_lcs(32);
  add_sw(32);
  add_sw(16);
  add_mm(16);
  add_mm(8);

  text_table table({"bench", "baseline", "multibags", "multibags+", "R nodes",
                    "R closure"});
  for (const auto& c : cases) {
    std::fprintf(stderr, "[fig8] %s...\n", c.name.c_str());
    const row_out r = run_case(c.kernel, static_cast<int>(reps));
    table.add_row({c.name, text_table::seconds(r.base_s),
                   text_table::seconds_with_overhead(r.mb_s, r.base_s),
                   text_table::seconds_with_overhead(r.mbp_s, r.base_s),
                   std::to_string(r.r_nodes), human_bytes(r.r_bytes)});
  }
  std::printf("\n== Figure 8: base-case sweep, reachability configuration, "
              "structured programs under both algorithms ==\n%s",
              table.render().c_str());
  std::puts(
      "paper reference (Fig 8): lcs B=64 -> MultiBags 1.03x vs MultiBags+ "
      "2.19x; lcs B=32 -> 0.98x vs 18.63x; sw B=32 -> 1.01x vs 0.96x; mm "
      "B=32 -> 1.00x vs 3.75x. Shape to check: MultiBags flat at ~1x, "
      "MultiBags+ growing as the base case shrinks (k grows), except sw "
      "whose Θ(n³) work hides the k² term.\n");
  return 0;
}
