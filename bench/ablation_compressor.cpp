// Ablation the paper could not run: dedup with an *instrumented* compressor.
//
// Figure 6/7 report dedup as the overhead outlier (2.14x / 4.33x full) and
// attribute it to the uninstrumentable dynamic compression library. Our
// compressor is our own code, so we can instrument it and check the
// counterfactual: with compression instrumented, dedup's full-detection
// overhead should climb toward the other benchmarks'.
#include <cstdio>

#include "api/session.hpp"
#include "bench_suite/dedup.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace frd;
using namespace frd::bench;

namespace {

template <typename H, typename CH>
double timed(const dedup_input& in, std::size_t frag, detect::level lvl,
             int reps) {
  std::vector<double> ts;
  for (int r = 0; r < reps; ++r) {
    if (lvl == detect::level::baseline) {
      rt::serial_runtime runtime;
      wall_timer t;
      (void)dedup_pipeline<H, CH>(runtime, in, frag);
      ts.push_back(t.seconds());
    } else {
      frd::session s(frd::session::options{.backend = "multibags", .level = lvl});
      s.runtime();  // untimed construction, like the baseline branch
      wall_timer t;
      s.run([&](rt::serial_runtime& runtime) {
        (void)dedup_pipeline<H, CH>(runtime, in, frag);
      });
      ts.push_back(t.seconds());
    }
  }
  return mean(ts);
}

}  // namespace

int main(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& mb = flags.int_flag("mb", 4, "corpus MiB");
  auto& reps = flags.int_flag("reps", 3, "repetitions");
  flags.parse();

  // Low redundancy: most chunks are unique, so compression dominates and the
  // instrumented-vs-not contrast is at its clearest.
  const auto in = make_dedup_corpus(static_cast<std::size_t>(mb) << 20, 20, 42);
  const std::size_t frag = 1 << 16;
  const int n = static_cast<int>(reps);
  using detect::hooks::active;
  using detect::hooks::none;
  using detect::level;

  const double base = timed<none, none>(in, frag, level::baseline, n);
  const double full_plain = timed<active, none>(in, frag, level::full, n);
  const double full_instr = timed<active, active>(in, frag, level::full, n);

  text_table t({"configuration", "seconds", "overhead"});
  t.add_row({"baseline", text_table::seconds(base), "1.00x"});
  t.add_row({"full, compressor NOT instrumented (paper setup)",
             text_table::seconds(full_plain),
             text_table::multiplier(full_plain / base)});
  t.add_row({"full, compressor instrumented (counterfactual)",
             text_table::seconds(full_instr),
             text_table::multiplier(full_instr / base)});
  std::printf("\n== Ablation: instrumenting dedup's compressor ==\n%s",
              t.render().c_str());
  std::puts("paper context: dedup was the Fig 6 outlier (2.14x full) because "
            "compression dominated and was uninstrumented; instrumenting it "
            "should push dedup toward the other benchmarks' 8-34x.");
  return 0;
}
