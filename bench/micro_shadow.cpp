// Microbenchmarks for the shadow-memory stores: the full-detection
// configuration pays one store step (lookup + reader/writer update) per
// granule, so these per-op costs bound the "full vs instrumentation" gap in
// Figures 6-7 — now swept across every registered store layout so the
// hashed-page / sharded / compact trade-offs are visible side by side.
//
// Benchmarks are registered at runtime over shadow::store_registry, so an
// out-of-tree store gets swept automatically. CI runs this with
// --benchmark_out=BENCH_micro_shadow.json and uploads the snapshot next to
// the replay-throughput one (perf/ keeps one per PR).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>

#include "shadow/store.hpp"
#include "support/prng.hpp"

namespace {

using frd::shadow::store;
using frd::shadow::store_config;
using frd::shadow::store_registry;

std::unique_ptr<store> make_store(const std::string& name) {
  return store_registry::instance().create(name, store_config{});
}

// Streaming writes: hot-page cache hit almost always. The writer-install
// path with no prior state is the §3 fast path of race-free kernels.
void BM_WriteStepSequential(benchmark::State& state, const std::string& name) {
  auto st = make_store(name);
  std::uintptr_t addr = 0x100000;
  const auto ignore = [](frd::rt::strand_id, bool) {};
  for (auto _ : state) {
    st->write_step(addr, 1, ignore);
    addr += 4;
  }
  state.SetItemsProcessed(state.iterations());
}

// Random granules over a working set: the two-level lookup (and, for the
// sharded store, the shard hash) dominates once the set outgrows the cache.
void BM_ReadStepRandom(benchmark::State& state, const std::string& name) {
  auto st = make_store(name);
  frd::prng rng(3);
  const std::uintptr_t span = static_cast<std::uintptr_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        st->read_step(0x100000 + (rng.below(span) & ~std::uintptr_t{3}), 1));
  }
  state.SetLabel("working set bytes");
  state.SetItemsProcessed(state.iterations());
}

// The §3 protocol on one location: r readers accumulate, one writer purges
// (and sweeps every reader through the prior callback).
void BM_ReaderAppendPurgeCycle(benchmark::State& state,
                               const std::string& name) {
  const int readers = static_cast<int>(state.range(0));
  auto st = make_store(name);
  std::uint32_t strand = 0;
  std::uint64_t sum = 0;
  const auto fold = [&sum](frd::rt::strand_id s, bool) { sum += s; };
  for (auto _ : state) {
    for (int i = 0; i < readers; ++i) st->read_step(0x5000, ++strand);
    st->write_step(0x5000, ++strand, fold);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * (readers + 1));
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : store_registry::instance().names()) {
    benchmark::RegisterBenchmark(
        ("BM_WriteStepSequential/" + name).c_str(),
        [name](benchmark::State& s) { BM_WriteStepSequential(s, name); });
    benchmark::RegisterBenchmark(
        ("BM_ReadStepRandom/" + name).c_str(),
        [name](benchmark::State& s) { BM_ReadStepRandom(s, name); })
        ->Arg(1 << 16)
        ->Arg(1 << 22)
        ->Arg(1 << 26);
    benchmark::RegisterBenchmark(
        ("BM_ReaderAppendPurgeCycle/" + name).c_str(),
        [name](benchmark::State& s) { BM_ReaderAppendPurgeCycle(s, name); })
        ->Arg(1)
        ->Arg(3)
        ->Arg(16)
        ->Arg(256);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
