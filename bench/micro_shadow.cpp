// Microbenchmarks for the access-history shadow memory: the full-detection
// configuration pays one record lookup + reader/writer update per 4-byte
// granule, so these per-op costs bound the "full vs instrumentation" gap in
// Figures 6-7.
#include <benchmark/benchmark.h>

#include <vector>

#include "shadow/access_history.hpp"
#include "support/prng.hpp"

namespace {

using frd::shadow::access_history;

void BM_RecordForSequential(benchmark::State& state) {
  access_history h;
  std::uintptr_t addr = 0x100000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.record_for(addr));
    addr += 4;  // streaming access: hot-page cache hit almost always
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordForSequential);

void BM_RecordForRandom(benchmark::State& state) {
  access_history h;
  frd::prng rng(3);
  const std::uintptr_t span = static_cast<std::uintptr_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        h.record_for(0x100000 + (rng.below(span) & ~std::uintptr_t{3})));
  }
  state.SetLabel("working set bytes");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordForRandom)->Arg(1 << 16)->Arg(1 << 22)->Arg(1 << 26);

void BM_ReaderAppendPurgeCycle(benchmark::State& state) {
  // The §3 protocol on one location: r readers accumulate, one writer purges.
  const int readers = static_cast<int>(state.range(0));
  access_history h;
  auto& rec = h.record_for(0x5000);
  std::uint32_t strand = 0;
  for (auto _ : state) {
    for (int i = 0; i < readers; ++i) rec.append_reader(++strand);
    std::uint64_t sum = 0;
    rec.for_each_reader([&](std::uint32_t s) { sum += s; });
    benchmark::DoNotOptimize(sum);
    rec.clear_readers();
    rec.writer = ++strand;
  }
  state.SetItemsProcessed(state.iterations() * (readers + 1));
}
BENCHMARK(BM_ReaderAppendPurgeCycle)->Arg(1)->Arg(3)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
