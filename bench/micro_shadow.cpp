// Microbenchmarks for the shadow-memory stores: the full-detection
// configuration pays one store step (lookup + reader/writer update) per
// granule, so these per-op costs bound the "full vs instrumentation" gap in
// Figures 6-7 — now swept across every registered store layout so the
// hashed-page / sharded / compact trade-offs are visible side by side.
//
// Benchmarks are registered at runtime over shadow::store_registry, so an
// out-of-tree store gets swept automatically. CI runs this with
// --benchmark_out=BENCH_micro_shadow.json and uploads the snapshot next to
// the replay-throughput one (perf/ keeps one per PR).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/events.hpp"
#include "shadow/store.hpp"
#include "support/prng.hpp"

namespace {

using frd::shadow::store;
using frd::shadow::store_config;
using frd::shadow::store_registry;

std::unique_ptr<store> make_store(const std::string& name) {
  return store_registry::instance().create(name, store_config{});
}

// Streaming writes: hot-page cache hit almost always. The writer-install
// path with no prior state is the §3 fast path of race-free kernels.
void BM_WriteStepSequential(benchmark::State& state, const std::string& name) {
  auto st = make_store(name);
  std::uintptr_t addr = 0x100000;
  const auto ignore = [](frd::rt::strand_id, bool) {};
  for (auto _ : state) {
    st->write_step(addr, 1, ignore);
    addr += 4;
  }
  state.SetItemsProcessed(state.iterations());
}

// Random granules over a working set: the two-level lookup (and, for the
// sharded store, the shard hash) dominates once the set outgrows the cache.
void BM_ReadStepRandom(benchmark::State& state, const std::string& name) {
  auto st = make_store(name);
  frd::prng rng(3);
  const std::uintptr_t span = static_cast<std::uintptr_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        st->read_step(0x100000 + (rng.below(span) & ~std::uintptr_t{3}), 1));
  }
  state.SetLabel("working set bytes");
  state.SetItemsProcessed(state.iterations());
}

// The §3 protocol on one location: r readers accumulate, one writer purges
// (and sweeps every reader through the prior callback).
void BM_ReaderAppendPurgeCycle(benchmark::State& state,
                               const std::string& name) {
  const int readers = static_cast<int>(state.range(0));
  auto st = make_store(name);
  std::uint32_t strand = 0;
  std::uint64_t sum = 0;
  const auto fold = [&sum](frd::rt::strand_id s, bool) { sum += s; };
  for (auto _ : state) {
    for (int i = 0; i < readers; ++i) st->read_step(0x5000, ++strand);
    st->write_step(0x5000, ++strand, fold);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * (readers + 1));
}

// Every dag event on the live and online paths funnels through
// listener_mux; the empty/single fast path (one branch + direct forward
// instead of vector iteration) is what keeps the common one-listener wiring
// from paying fan-out overhead per event. Swept over listener counts so the
// fast path's edge over the loop stays visible in the snapshot.
struct counting_listener final : frd::rt::execution_listener {
  std::uint64_t strands = 0;
  void on_strand_begin(frd::rt::strand_id, frd::rt::func_id) override {
    ++strands;
  }
};

void BM_ListenerMuxDispatch(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  frd::rt::listener_mux mux;
  std::vector<counting_listener> sinks(static_cast<std::size_t>(count));
  for (auto& s : sinks) mux.add(&s);
  // Dispatch through the mux itself, not target(): callers that cannot
  // collapse the mux away (a recorder attached mid-wiring) pay this cost.
  frd::rt::execution_listener& l = mux;
  frd::rt::strand_id s = 0;
  for (auto _ : state) {
    l.on_strand_begin(s, 0);
    ++s;
  }
  std::uint64_t total = 0;
  for (const auto& sink : sinks) total += sink.strands;
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  // ArgName makes the row "BM_ListenerMuxDispatch/listeners:N", which also
  // reads as the group label in perf_compare's micro trajectory.
  benchmark::RegisterBenchmark("BM_ListenerMuxDispatch", BM_ListenerMuxDispatch)
      ->ArgName("listeners")
      ->Arg(0)
      ->Arg(1)
      ->Arg(2)
      ->Arg(4);
  for (const std::string& name : store_registry::instance().names()) {
    benchmark::RegisterBenchmark(
        ("BM_WriteStepSequential/" + name).c_str(),
        [name](benchmark::State& s) { BM_WriteStepSequential(s, name); });
    benchmark::RegisterBenchmark(
        ("BM_ReadStepRandom/" + name).c_str(),
        [name](benchmark::State& s) { BM_ReadStepRandom(s, name); })
        ->Arg(1 << 16)
        ->Arg(1 << 22)
        ->Arg(1 << 26);
    benchmark::RegisterBenchmark(
        ("BM_ReaderAppendPurgeCycle/" + name).c_str(),
        [name](benchmark::State& s) { BM_ReaderAppendPurgeCycle(s, name); })
        ->Arg(1)
        ->Arg(3)
        ->Arg(16)
        ->Arg(256);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
