// Sanity bench for the parallel substrate: the same future-wavefront that
// the detector checks serially must actually scale when run on the
// work-stealing runtime with detection off (the paper's deployment story:
// detect serially during testing, run parallel in production).
#include <cstdio>

#include <atomic>
#include <vector>

#include "bench_suite/lcs.hpp"
#include "runtime/parallel.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace frd;
using namespace frd::bench;

namespace {

// Compute-heavy tile task so the scaling is visible at bench sizes.
long heavy_tree(rt::parallel_runtime& rt, int depth, long leaf_work) {
  if (depth == 0) {
    long acc = 0;
    for (long i = 0; i < leaf_work; ++i) acc += i * i % 1000003;
    return acc;
  }
  std::atomic<long> left{0};
  rt.spawn([&] { left.store(heavy_tree(rt, depth - 1, leaf_work)); });
  const long right = heavy_tree(rt, depth - 1, leaf_work);
  rt.sync();
  return left.load() + right;
}

}  // namespace

int main(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& depth = flags.int_flag("depth", 12, "task tree depth");
  auto& leaf = flags.int_flag("leaf", 8000, "work per leaf");
  auto& reps = flags.int_flag("reps", 3, "repetitions");
  flags.parse();

  text_table t({"workers", "seconds", "speedup"});
  double t1 = 0;
  long expect = -1;
  for (unsigned workers : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<double> ts;
    long got = 0;
    for (int r = 0; r < reps; ++r) {
      rt::parallel_runtime rt(workers);
      wall_timer w;
      rt.run([&] { got = heavy_tree(rt, static_cast<int>(depth),
                                    static_cast<long>(leaf)); });
      ts.push_back(w.seconds());
    }
    if (expect == -1) expect = got;
    if (got != expect) std::fprintf(stderr, "WARNING: nondeterministic sum\n");
    const double s = mean(ts);
    if (workers == 1) t1 = s;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", t1 / s);
    t.add_row({std::to_string(workers), text_table::seconds(s), buf});
  }
  std::printf("\n== Parallel runtime speedup (detection off) ==\n%s",
              t.render().c_str());
  return 0;
}
