// Parallel scaling benches, two modes:
//
//   (default)      sanity bench for the parallel substrate: the same
//                  future-wavefront the detector checks serially must
//                  actually scale when run on the work-stealing runtime with
//                  detection off (the paper's deployment story: detect
//                  serially during testing, run parallel in production).
//   --corpus DIR   the PR 8 snapshot mode: replays the XL corpus entries
//                  through the PARALLEL DETECTOR across a worker sweep and
//                  reports detection speedup over workers=1. Every replay's
//                  racy-granule count is checked against the entry's golden —
//                  a speedup from a detector that drops races is not a
//                  speedup. Rows go to --json (one snapshot per PR in perf/,
//                  diffed by tools/perf_compare.py --fresh-parallel).
//
// Speedups are bounded by the machine: on a single-core container every
// worker count times the same; the snapshot still proves the parallel path
// replays the corpus byte-identically and records the sweep for hosts with
// real parallelism.
#include <cstdio>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "bench_suite/lcs.hpp"
#include "corpus/manifest.hpp"
#include "corpus/runner.hpp"
#include "runtime/parallel.hpp"
#include "support/check.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "trace/event.hpp"

using namespace frd;
using namespace frd::bench;

namespace {

// Compute-heavy tile task so the scaling is visible at bench sizes.
long heavy_tree(rt::parallel_runtime& rt, int depth, long leaf_work) {
  if (depth == 0) {
    long acc = 0;
    for (long i = 0; i < leaf_work; ++i) acc += i * i % 1000003;
    return acc;
  }
  std::atomic<long> left{0};
  rt.spawn([&] { left.store(heavy_tree(rt, depth - 1, leaf_work)); });
  const long right = heavy_tree(rt, depth - 1, leaf_work);
  rt.sync();
  return left.load() + right;
}

int run_substrate_mode(int depth, long leaf, int reps) {
  text_table t({"workers", "seconds", "speedup"});
  double t1 = 0;
  long expect = -1;
  for (unsigned workers : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<double> ts;
    long got = 0;
    for (int r = 0; r < reps; ++r) {
      rt::parallel_runtime rt(workers);
      wall_timer w;
      rt.run([&] { got = heavy_tree(rt, depth, leaf); });
      ts.push_back(w.seconds());
    }
    if (expect == -1) expect = got;
    if (got != expect) std::fprintf(stderr, "WARNING: nondeterministic sum\n");
    const double s = mean(ts);
    if (workers == 1) t1 = s;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", t1 / s);
    t.add_row({std::to_string(workers), text_table::seconds(s), buf});
  }
  std::printf("\n== Parallel runtime speedup (detection off) ==\n%s",
              t.render().c_str());
  return 0;
}

// ---- corpus mode: parallel DETECTION speedup over the trace corpus ----

struct row {
  std::string trace;
  std::string backend;
  unsigned workers = 1;
  std::uint64_t events = 0;
  double mean_s = 0, rsd = 0, events_per_sec = 0;
  double speedup_vs_1 = 0;
  std::uint64_t racy_granules = 0;
};

// Comma-separated entry names ("mm-structured-xl,tracking-structured-xl").
std::vector<std::string> split_names(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    if (comma > pos) out.push_back(spec.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

row bench_workers(trace::memory_trace& tape, const std::string& name,
                  const std::string& backend, unsigned workers, int reps) {
  std::vector<double> times;
  std::uint64_t racy = 0;
  for (int r = 0; r < reps + 1; ++r) {
    tape.rewind();
    session s(session::options{.backend = backend,
                               .granule = tape.header().granule,
                               .shadow_store = "sharded",
                               .shadow_shard_bits = 4,
                               .replay_batch = 0,  // auto: 4096 when parallel
                               .detect_workers = workers});
    wall_timer t;
    s.replay(tape);
    const double secs = t.seconds();
    if (r > 0) times.push_back(secs);  // first replay is warmup
    racy = s.report().racy_granules().size();
  }
  tape.rewind();
  row out;
  out.trace = name;
  out.backend = backend;
  out.workers = workers;
  out.events = tape.size();
  out.mean_s = mean(times);
  out.rsd = rel_stddev(times);
  out.events_per_sec = static_cast<double>(tape.size()) / out.mean_s;
  out.racy_granules = racy;
  return out;
}

void write_json(const std::string& path, const std::vector<row>& rows) {
  std::ofstream json(path);
  json << "{\n  \"bench\": \"parallel_speedup\",\n"
       << "  \"mode\": \"corpus\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const row& r = rows[i];
    json << "    {\"trace\": \"" << r.trace << "\", \"backend\": \""
         << r.backend << "\", \"store\": \"sharded\", \"workers\": "
         << r.workers << ", \"events\": " << r.events
         << ", \"mean_seconds\": " << r.mean_s << ", \"rel_stddev\": " << r.rsd
         << ", \"events_per_sec\": " << r.events_per_sec
         << ", \"speedup_vs_1\": " << r.speedup_vs_1
         << ", \"racy_granules\": " << r.racy_granules << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();  // flush before checking, or buffered failures slip through
  if (!json) {
    std::fprintf(stderr, "parallel_speedup: writing %s failed\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

int run_corpus_mode(const std::string& dir, const std::string& entries_spec,
                    const std::string& backend, int reps,
                    const std::string& json_path) {
  const corpus::manifest m = corpus::load_manifest(dir + "/MANIFEST");
  const std::vector<std::string> wanted = split_names(entries_spec);
  std::vector<row> rows;
  std::size_t matched = 0;
  for (const corpus::corpus_entry& e : m.entries) {
    if (!wanted.empty() &&
        std::find(wanted.begin(), wanted.end(), e.name) == wanted.end()) {
      continue;
    }
    ++matched;
    trace::memory_trace tape = corpus::load_trace(dir + "/" + e.trace_file);
    const corpus::golden_report gold =
        corpus::load_golden(dir + "/" + e.golden_file);
    double t1 = 0;
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      row r = bench_workers(tape, e.name, backend, workers, reps);
      FRD_CHECK_MSG(r.racy_granules == gold.racy_granules.size(),
                    "parallel replay race count diverged from the corpus "
                    "golden — run frd-corpus verify");
      if (workers == 1) t1 = r.mean_s;
      r.speedup_vs_1 = t1 / r.mean_s;
      rows.push_back(std::move(r));
    }
  }
  if (!wanted.empty() && matched != wanted.size()) {
    std::fprintf(stderr, "parallel_speedup: --entries named %zu entries but "
                         "only %zu exist in the manifest\n",
                 wanted.size(), matched);
    return 1;
  }
  text_table t({"trace", "backend", "workers", "events", "mean", "events/sec",
                "speedup", "racy"});
  for (const row& r : rows) {
    char eps[64], sp[32];
    std::snprintf(eps, sizeof eps, "%.3g", r.events_per_sec);
    std::snprintf(sp, sizeof sp, "%.2fx", r.speedup_vs_1);
    t.add_row({r.trace, r.backend, std::to_string(r.workers),
               std::to_string(r.events), text_table::seconds(r.mean_s), eps, sp,
               std::to_string(r.racy_granules)});
  }
  std::printf("\n== Parallel detection speedup (%zu entries, %d reps) ==\n%s",
              matched, reps, t.render().c_str());
  write_json(json_path, rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& depth = flags.int_flag("depth", 12, "substrate mode: task tree depth");
  auto& leaf = flags.int_flag("leaf", 8000, "substrate mode: work per leaf");
  auto& reps = flags.int_flag("reps", 3, "repetitions");
  auto& corpus_dir = flags.string_flag(
      "corpus", "", "bench parallel DETECTION over the trace corpus at this "
                    "directory (workers sweep 1,2,4,8 on the sharded store)");
  auto& entries = flags.string_flag(
      "entries", "mm-structured-xl,tracking-structured-xl",
      "corpus mode: comma-separated entry names (empty = every entry)");
  auto& backend = flags.string_flag(
      "backend", "multibags+", "corpus mode: detection backend to replay");
  auto& json_path = flags.string_flag(
      "json", "BENCH_parallel_speedup.json",
      "corpus mode: machine-readable output file");
  flags.parse();
  if (reps < 1) {
    std::fprintf(stderr, "parallel_speedup: --reps must be >= 1\n");
    return 1;
  }

  if (!corpus_dir.empty()) {
    try {
      return run_corpus_mode(corpus_dir, entries, backend,
                             static_cast<int>(reps), json_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "parallel_speedup: %s\n", e.what());
      return 1;
    }
  }
  return run_substrate_mode(static_cast<int>(depth), static_cast<long>(leaf),
                            static_cast<int>(reps));
}
