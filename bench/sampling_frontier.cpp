// Detection-vs-throughput frontier for the sampling and bounded-history
// modes (PR 9).
//
//   sampling_frontier --corpus DIR [--entries a,b] [--rates 1,0.5,...]
//                     [--depths unbounded,8,2] [--backend multibags+]
//                     [--reps N] [--warmup N] [--json FILE]
//
// Replays each corpus entry through the detector at every point of the
// (sample_rate x history_depth) grid and scores each point two ways:
//
//   events_per_sec      — replay throughput (what sampling buys),
//   detection_fraction  — |reported racy granules ∩ golden| / |golden|
//                         (what sampling costs; 1.0 when the golden has no
//                         races to miss).
//
// The sampled set is a pure seeded function of the versioned trace bytes,
// so detection fractions are machine-independent and the checked-in
// perf/prN_sampling_frontier.json snapshot can gate drift exactly
// (tools/perf_compare.py --fresh-frontier), while throughput is compared
// only in relative shares as usual.
//
// Correctness gates run outside the timed region: the rate-1.0/unbounded
// point must reproduce the golden exactly, and every granule-policy sampled
// point must report a subset of it (the per-granule decision leaves each
// granule's shadow state either fully tracked or fully absent).
#include <cstdio>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "corpus/manifest.hpp"
#include "corpus/runner.hpp"
#include "shadow/store.hpp"
#include "support/check.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "trace/event.hpp"

using namespace frd;

namespace {

struct row {
  std::string trace;
  std::string backend;
  double sample_rate = 1.0;
  std::size_t history_depth = shadow::kUnboundedHistory;
  std::uint64_t events = 0;
  double mean_s = 0, rsd = 0, events_per_sec = 0;
  std::uint64_t golden_races = 0;
  std::uint64_t detected_races = 0;
  double detection_fraction = 1.0;
};

std::vector<std::string> split_names(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    if (comma > pos) out.push_back(spec.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

// "1,0.5,0.2" -> {1.0, 0.5, 0.2}; empty vector on any malformed element.
std::vector<double> parse_rates(const std::string& spec) {
  std::vector<double> out;
  for (const std::string& tok : split_names(spec)) {
    try {
      std::size_t used = 0;
      const double r = std::stod(tok, &used);
      if (used != tok.size() || !(r > 0.0 && r <= 1.0)) return {};
      out.push_back(r);
    } catch (const std::exception&) {
      return {};
    }
  }
  return out;
}

// "unbounded,8,2" -> {kUnboundedHistory, 8, 2}; empty vector on error.
std::vector<std::size_t> parse_depths(const std::string& spec) {
  std::vector<std::size_t> out;
  for (const std::string& tok : split_names(spec)) {
    if (tok == "unbounded" || tok == "inf" || tok == "0") {
      out.push_back(shadow::kUnboundedHistory);
      continue;
    }
    try {
      std::size_t used = 0;
      const long long d = std::stoll(tok, &used);
      if (used != tok.size() || d < 1) return {};
      out.push_back(static_cast<std::size_t>(d));
    } catch (const std::exception&) {
      return {};
    }
  }
  return out;
}

std::string depth_label(std::size_t depth) {
  return depth == shadow::kUnboundedHistory ? "inf" : std::to_string(depth);
}

row bench_point(trace::memory_trace& tape, const corpus::corpus_entry& e,
                const corpus::golden_report& gold, const std::string& backend,
                double rate, std::size_t depth, int reps, int warmup) {
  std::vector<double> times;
  std::set<std::uintptr_t> racy;
  for (int r = 0; r < reps + warmup; ++r) {
    tape.rewind();
    session s(session::options{.backend = backend,
                               .granule = tape.header().granule,
                               .sample_rate = rate,
                               .shadow_history_depth = depth});
    wall_timer t;
    s.replay(tape);
    const double secs = t.seconds();
    if (r >= warmup) times.push_back(secs);
    racy = s.report().racy_granules();
  }
  tape.rewind();

  // Scoring and correctness gates, outside the timed region.
  std::uint64_t detected = 0;
  for (std::uintptr_t g : racy) {
    if (gold.racy_granules.count(static_cast<std::uint64_t>(g))) ++detected;
  }
  if (rate == 1.0 && depth == shadow::kUnboundedHistory) {
    FRD_CHECK_MSG(racy.size() == gold.racy_granules.size() &&
                      detected == gold.racy_granules.size(),
                  "full-detection frontier point diverged from the corpus "
                  "golden — run frd-corpus verify");
  } else {
    FRD_CHECK_MSG(detected == racy.size(),
                  "sampled/bounded replay reported a granule the full "
                  "detector does not — the per-granule carve-out leaked");
  }

  row out;
  out.trace = e.name;
  out.backend = backend;
  out.sample_rate = rate;
  out.history_depth = depth;
  out.events = tape.size();
  out.mean_s = mean(times);
  out.rsd = rel_stddev(times);
  out.events_per_sec = static_cast<double>(tape.size()) / out.mean_s;
  out.golden_races = gold.racy_granules.size();
  out.detected_races = detected;
  out.detection_fraction =
      gold.racy_granules.empty()
          ? 1.0
          : static_cast<double>(detected) /
                static_cast<double>(gold.racy_granules.size());
  return out;
}

void write_json(const std::string& path, const std::vector<row>& rows) {
  std::ofstream json(path);
  json << "{\n  \"bench\": \"sampling_frontier\",\n"
       << "  \"mode\": \"corpus\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const row& r = rows[i];
    json << "    {\"trace\": \"" << r.trace << "\", \"backend\": \""
         << r.backend << "\", \"sample_rate\": " << r.sample_rate
         << ", \"history_depth\": ";
    if (r.history_depth == shadow::kUnboundedHistory) {
      json << "\"unbounded\"";
    } else {
      json << r.history_depth;
    }
    json << ", \"events\": " << r.events << ", \"mean_seconds\": " << r.mean_s
         << ", \"rel_stddev\": " << r.rsd
         << ", \"events_per_sec\": " << r.events_per_sec
         << ", \"golden_races\": " << r.golden_races
         << ", \"detected_races\": " << r.detected_races
         << ", \"detection_fraction\": " << r.detection_fraction << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();  // flush before checking, or buffered failures slip through
  if (!json) {
    std::fprintf(stderr, "sampling_frontier: writing %s failed\n",
                 path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

int run(const std::string& dir, const std::string& entries_spec,
        const std::string& backend, const std::vector<double>& rates,
        const std::vector<std::size_t>& depths, int reps, int warmup,
        const std::string& json_path) {
  const corpus::manifest m = corpus::load_manifest(dir + "/MANIFEST");
  const std::vector<std::string> wanted = split_names(entries_spec);
  std::vector<row> rows;
  std::size_t matched = 0;
  for (const corpus::corpus_entry& e : m.entries) {
    if (!wanted.empty() &&
        std::find(wanted.begin(), wanted.end(), e.name) == wanted.end()) {
      continue;
    }
    ++matched;
    trace::memory_trace tape = corpus::load_trace(dir + "/" + e.trace_file);
    const corpus::golden_report gold =
        corpus::load_golden(dir + "/" + e.golden_file);
    for (std::size_t depth : depths) {
      for (double rate : rates) {
        rows.push_back(bench_point(tape, e, gold, backend, rate, depth, reps,
                                   warmup));
      }
    }
  }
  if (!wanted.empty() && matched != wanted.size()) {
    std::fprintf(stderr, "sampling_frontier: --entries named %zu entries but "
                         "only %zu exist in the manifest\n",
                 wanted.size(), matched);
    return 1;
  }
  text_table t({"trace", "rate", "depth", "events", "mean", "events/sec",
                "detected", "golden", "fraction"});
  for (const row& r : rows) {
    char rate[32], eps[64], frac[32];
    std::snprintf(rate, sizeof rate, "%g", r.sample_rate);
    std::snprintf(eps, sizeof eps, "%.3g", r.events_per_sec);
    std::snprintf(frac, sizeof frac, "%.3f", r.detection_fraction);
    t.add_row({r.trace, rate, depth_label(r.history_depth),
               std::to_string(r.events), text_table::seconds(r.mean_s), eps,
               std::to_string(r.detected_races),
               std::to_string(r.golden_races), frac});
  }
  std::printf(
      "\n== Sampling frontier (%zu entries, %d reps + %d warmup) ==\n%s",
      matched, reps, warmup, t.render().c_str());
  write_json(json_path, rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& corpus_dir = flags.string_flag(
      "corpus", "", "trace corpus directory (required)");
  auto& entries = flags.string_flag(
      "entries",
      "mm-structured-xl,tracking-structured-xl,wavefront-structured-large",
      "comma-separated entry names (empty = every entry)");
  auto& backend = flags.string_flag(
      "backend", "multibags+", "detection backend to replay");
  auto& rates = flags.string_flag(
      "rates", "1,0.5,0.2,0.1,0.05", "comma-separated sample rates in (0, 1]");
  auto& depths = flags.string_flag(
      "depths", "unbounded,8,2",
      "comma-separated history depths (\"unbounded\"/\"inf\"/\"0\" or N >= 1)");
  auto& reps = flags.int_flag("reps", 3, "measured repetitions per point");
  auto& warmup = flags.int_flag(
      "warmup", 1, "discarded warmup repetitions before the measured ones");
  auto& json_path = flags.string_flag(
      "json", "BENCH_sampling_frontier.json", "machine-readable output file");
  flags.parse();

  if (corpus_dir.empty()) {
    std::fprintf(stderr, "sampling_frontier: --corpus is required\n%s",
                 flags.usage().c_str());
    return 2;
  }
  if (reps < 1 || warmup < 0) {
    std::fprintf(stderr,
                 "sampling_frontier: --reps must be >= 1, --warmup >= 0\n");
    return 2;
  }
  const std::vector<double> rate_list = parse_rates(rates);
  if (rate_list.empty()) {
    std::fprintf(stderr,
                 "sampling_frontier: --rates must be comma-separated values "
                 "in (0, 1]\n");
    return 2;
  }
  const std::vector<std::size_t> depth_list = parse_depths(depths);
  if (depth_list.empty()) {
    std::fprintf(stderr,
                 "sampling_frontier: --depths must be comma-separated "
                 "\"unbounded\" or integers >= 1\n");
    return 2;
  }

  try {
    return run(corpus_dir, entries, backend, rate_list, depth_list,
               static_cast<int>(reps), static_cast<int>(warmup), json_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sampling_frontier: %s\n", e.what());
    return 1;
  }
}
