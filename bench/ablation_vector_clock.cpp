// Ablation: the vector-clock baseline the paper argues against (§7).
//
// "Naively applying [a VC algorithm] to task parallel code would be
// impractical, since it requires storing a VC of length n ... incurring a
// multiplicative factor of n overhead on top of the work." Here n is the
// number of function instances; every spawn/create snapshots an O(n) clock.
// This bench runs the reachability-only configuration of MultiBags,
// MultiBags+, and the VC baseline on a future-chain workload of growing n
// and prints the per-construct cost — VC's grows linearly with n (quadratic
// total) while the bag algorithms stay flat.
#include <cstdio>
#include <functional>

#include "api/session.hpp"
#include "runtime/serial.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace frd;

namespace {

// Spawn-tree + future-chain mix: f function instances total.
void workload(rt::serial_runtime& rt, int chain, int tree_depth) {
  std::function<void(int)> tree = [&](int d) {
    if (d == 0) return;
    rt.spawn([&, d] { tree(d - 1); });
    rt.spawn([&, d] { tree(d - 1); });
    rt.sync();
  };
  rt::future<int> prev;
  for (int i = 0; i < chain; ++i) {
    auto cur = rt.create_future(
        [&prev]() -> int { return prev.valid() ? prev.get() + 1 : 0; });
    prev = std::move(cur);
  }
  tree(tree_depth);
  (void)prev.get();
}

// Times the reachability-only configuration of the named registry backend.
double timed(const char* backend, int chain, int depth, int reps) {
  std::vector<double> ts;
  for (int r = 0; r < reps; ++r) {
    frd::session s(frd::session::options{
        .backend = backend, .level = frd::detect::level::reachability});
    rt::serial_runtime& rt = s.runtime();
    wall_timer t;
    s.run([&] { workload(rt, chain, depth); });
    ts.push_back(t.seconds());
  }
  return mean(ts);
}

}  // namespace

int main(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& reps = flags.int_flag("reps", 3, "repetitions");
  flags.parse();
  const int n = static_cast<int>(reps);

  // Mix 1 — MultiBags+'s design point (§5: "most of the parallelism is
  // created using spawn and sync, but there are also k future operations"):
  // a large spawn tree plus a short future chain. k stays small; VC still
  // pays O(n) per spawn.
  {
    text_table t({"spawns (n)", "futures (k)", "multibags", "multibags+",
                  "vector-clock", "VC / MB+"});
    for (int depth : {9, 11, 13}) {
      const int chain = 64;
      const double mb = timed("multibags", chain, depth, n);
      const double mbp = timed("multibags+", chain, depth, n);
      const double vc = timed("vector-clock", chain, depth, n);
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.1fx", vc / mbp);
      t.add_row({std::to_string((1 << (depth + 1)) - 2), std::to_string(chain),
                 text_table::seconds(mb), text_table::seconds(mbp),
                 text_table::seconds(vc), ratio});
    }
    std::printf("\n== Ablation: spawn-heavy programs, few futures "
                "(reachability only) ==\n%s",
                t.render().c_str());
  }

  // Mix 2 — the k² worst case: nearly every construct is a future op. Here
  // MultiBags+ pays its closure term and the VC baseline can even win; the
  // paper's bound O(T1 + k^2) makes this crossover explicit.
  {
    text_table t({"futures (k)", "multibags", "multibags+", "vector-clock",
                  "VC / MB"});
    for (int chain : {512, 2048, 8192}) {
      const int depth = 6;
      const double mb = timed("multibags", chain, depth, n);
      const double mbp = timed("multibags+", chain, depth, n);
      const double vc = timed("vector-clock", chain, depth, n);
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.1fx", vc / mb);
      t.add_row({std::to_string(chain), text_table::seconds(mb),
                 text_table::seconds(mbp), text_table::seconds(vc), ratio});
    }
    std::printf("\n== Ablation: future-chain programs, k ~ n (MultiBags+ "
                "worst case) ==\n%s",
                t.render().c_str());
  }
  std::puts("reading: MultiBags is near-free everywhere (structured programs "
            "only); for general programs MultiBags+ beats the VC baseline "
            "when k is small relative to the total construct count, and "
            "pays its k^2 term when futures dominate — exactly the trade "
            "the paper's O(T1*a(m,n) + k^2) bound describes.");
  return 0;
}
