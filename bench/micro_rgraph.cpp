// Microbenchmarks for R's incremental transitive closure: the k² term of
// MultiBags+ (paper Theorem 5.1) lives here. The pipeline shape mirrors what
// future-chain programs (mm, dedup) build; the fan shape mirrors wavefronts.
#include <benchmark/benchmark.h>

#include <vector>

#include "detect/rgraph.hpp"

namespace {

using frd::detect::rgraph;

void BM_ChainGrowth(benchmark::State& state) {
  // A future chain: each new attached set hangs off the previous one.
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rgraph r;
    rgraph::node prev = r.add_node();
    for (int i = 1; i < k; ++i) {
      rgraph::node n = r.add_node();
      r.add_arc(prev, n);
      prev = n;
    }
    benchmark::DoNotOptimize(r.reaches(0, prev));
  }
  state.SetComplexityN(k);
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_ChainGrowth)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_WavefrontGrowth(benchmark::State& state) {
  // A t x t wavefront of attached sets: node (i,j) <- (i-1,j), (i,j-1).
  const int t = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rgraph r;
    std::vector<rgraph::node> grid(static_cast<std::size_t>(t) * t);
    for (int i = 0; i < t; ++i) {
      for (int j = 0; j < t; ++j) {
        rgraph::node n = r.add_node();
        grid[static_cast<std::size_t>(i) * t + j] = n;
        if (i > 0) r.add_arc(grid[static_cast<std::size_t>(i - 1) * t + j], n);
        if (j > 0) r.add_arc(grid[static_cast<std::size_t>(i) * t + j - 1], n);
      }
    }
    benchmark::DoNotOptimize(r.closure_bytes());
  }
  state.SetLabel("t x t tiles");
  state.SetItemsProcessed(state.iterations() * t * t);
}
BENCHMARK(BM_WavefrontGrowth)->Arg(16)->Arg(32)->Arg(64);

void BM_QueryLatency(benchmark::State& state) {
  rgraph r;
  const int k = 4096;
  rgraph::node prev = r.add_node();
  for (int i = 1; i < k; ++i) {
    rgraph::node n = r.add_node();
    r.add_arc(prev, n);
    prev = n;
  }
  std::uint32_t a = 17, b = 4001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.reaches(a % k, b % k));
    a = a * 1664525 + 1013904223;
    b = b * 22695477 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryLatency);

}  // namespace

BENCHMARK_MAIN();
