// Microbenchmarks for the disjoint-set substrate (google-benchmark).
//
// The paper's bounds hinge on the O(α) amortized cost per DSU operation;
// these benches pin the absolute per-op costs and the path-compression
// ablation (without compression, find degenerates on chain-heavy workloads
// like MultiBags' join chains).
#include <benchmark/benchmark.h>

#include <vector>

#include "dsu/disjoint_set.hpp"
#include "support/prng.hpp"

namespace {

using frd::dsu::element;
using frd::dsu::forest;

struct tag {
  int v;
};

void BM_MakeSet(benchmark::State& state) {
  for (auto _ : state) {
    forest<tag> f;
    for (int i = 0; i < 1024; ++i) benchmark::DoNotOptimize(f.make_set(nullptr));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MakeSet);

void BM_UnionChain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    forest<tag> f;
    element head = f.make_set(nullptr);
    for (std::size_t i = 1; i < n; ++i) f.union_into(head, f.make_set(nullptr));
    benchmark::DoNotOptimize(f.find(static_cast<element>(n - 1)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UnionChain)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_FindAfterChain(benchmark::State& state) {
  // Post-chain finds: with compression these are ~1 hop amortized.
  const bool compress = state.range(0) != 0;
  const std::size_t n = 1 << 14;
  forest<tag> f(compress);
  element head = f.make_set(nullptr);
  for (std::size_t i = 1; i < n; ++i) f.union_into(head, f.make_set(nullptr));
  frd::prng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.find(static_cast<element>(rng.below(n))));
  }
  state.SetLabel(compress ? "path compression" : "no compression");
}
BENCHMARK(BM_FindAfterChain)->Arg(1)->Arg(0);

void BM_MultibagsShapedWorkload(benchmark::State& state) {
  // The op mix MultiBags generates: one make per strand, a union per strand
  // begin, a union per join, and many finds (one per access-history query).
  const std::size_t funcs = 1 << 10;
  for (auto _ : state) {
    forest<tag> f;
    std::vector<element> reps;
    frd::prng rng(7);
    for (std::size_t i = 0; i < funcs; ++i) {
      element r = f.make_set(nullptr);
      for (int s = 0; s < 3; ++s) f.union_into(r, f.make_set(nullptr));
      reps.push_back(r);
      // joins back into a random earlier function
      if (i > 0) f.union_into(reps[rng.below(i)], r);
      // queries
      for (int q = 0; q < 8; ++q)
        benchmark::DoNotOptimize(
            f.find(static_cast<element>(rng.below(f.size()))));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(funcs * 12));
}
BENCHMARK(BM_MultibagsShapedWorkload);

}  // namespace

BENCHMARK_MAIN();
