// Benchmark inputs and kernel closures shared by the figure benches.
//
// Sizes are scaled down from the paper's testbed (Xeon E5-4620, 500 GB; lcs
// N=16k, sw/mm N=2048, bst 8e6/4e6 nodes) so a full figure run finishes in
// ~a minute on a laptop-class container; --scale raises them back up. Base
// cases follow the paper's B = sqrt(N) for the DP kernels.
#pragma once

#include <cmath>
#include <memory>

#include "bench/harness.hpp"
#include "bench_suite/bst.hpp"
#include "bench_suite/dedup.hpp"
#include "bench_suite/heartwall.hpp"
#include "bench_suite/lcs.hpp"
#include "bench_suite/mm.hpp"
#include "bench_suite/sw.hpp"
#include "support/check.hpp"

namespace frd::bench_harness {

enum class variant { structured, general };

struct sizes {
  std::size_t lcs_n = 2048;
  std::size_t lcs_base = 45;  // ~sqrt(N)
  std::size_t sw_n = 256;
  std::size_t sw_base = 16;  // sqrt(N)
  std::size_t mm_n = 192;
  std::size_t mm_base = 16;  // nearest divisor of N to sqrt(N)
  int hw_size = 192;
  int hw_points = 32;
  int hw_frames = 10;
  std::size_t dedup_bytes = 6u << 20;
  std::size_t dedup_fragment = 1u << 16;
  std::size_t bst_n1 = 200000;
  std::size_t bst_n2 = 100000;
  int bst_cutoff = 11;
};

inline sizes scaled_sizes(double scale) {
  sizes s;
  if (scale == 1.0) return s;
  const double lin = scale;
  s.lcs_n = static_cast<std::size_t>(static_cast<double>(s.lcs_n) * lin);
  s.lcs_base = static_cast<std::size_t>(std::sqrt(static_cast<double>(s.lcs_n)));
  s.sw_n = static_cast<std::size_t>(static_cast<double>(s.sw_n) * lin);
  s.sw_base = static_cast<std::size_t>(std::sqrt(static_cast<double>(s.sw_n)));
  // mm_n must stay divisible by mm_base.
  s.mm_n = static_cast<std::size_t>(static_cast<double>(s.mm_n) * lin) /
               s.mm_base * s.mm_base;
  if (s.mm_n < s.mm_base) s.mm_n = s.mm_base;
  s.hw_frames = std::max(2, static_cast<int>(s.hw_frames * lin));
  s.dedup_bytes =
      static_cast<std::size_t>(static_cast<double>(s.dedup_bytes) * lin);
  s.bst_n1 = static_cast<std::size_t>(static_cast<double>(s.bst_n1) * lin);
  s.bst_n2 = static_cast<std::size_t>(static_cast<double>(s.bst_n2) * lin);
  return s;
}

// Each maker captures its input by shared_ptr (constructed once, outside the
// timed region) and validates the first answer against the reference.

inline kernel_fn make_lcs_case(const sizes& sz, variant v) {
  auto in = std::make_shared<bench::lcs_input>(
      bench::make_lcs_input(sz.lcs_n, 101));
  auto want = std::make_shared<int>(bench::lcs_reference(*in));
  const std::size_t base = sz.lcs_base;
  return [in, want, base, v](rt::serial_runtime& rt, bool instr) {
    using bench::lcs_general;
    using bench::lcs_structured;
    int got;
    if (v == variant::structured) {
      got = instr ? lcs_structured<detect::hooks::active>(rt, *in, base)
                  : lcs_structured<detect::hooks::none>(rt, *in, base);
    } else {
      got = instr ? lcs_general<detect::hooks::active>(rt, *in, base)
                  : lcs_general<detect::hooks::none>(rt, *in, base);
    }
    FRD_CHECK_MSG(got == *want, "lcs kernel produced a wrong answer");
  };
}

inline kernel_fn make_sw_case(const sizes& sz, variant v) {
  auto in = std::make_shared<bench::sw_input>(bench::make_sw_input(sz.sw_n, 102));
  auto want = std::make_shared<std::int32_t>(bench::sw_reference(*in));
  const std::size_t base = sz.sw_base;
  return [in, want, base, v](rt::serial_runtime& rt, bool instr) {
    using bench::sw_general;
    using bench::sw_structured;
    std::int32_t got;
    if (v == variant::structured) {
      got = instr ? sw_structured<detect::hooks::active>(rt, *in, base)
                  : sw_structured<detect::hooks::none>(rt, *in, base);
    } else {
      got = instr ? sw_general<detect::hooks::active>(rt, *in, base)
                  : sw_general<detect::hooks::none>(rt, *in, base);
    }
    FRD_CHECK_MSG(got == *want, "sw kernel produced a wrong answer");
  };
}

inline kernel_fn make_mm_case(const sizes& sz, variant v) {
  auto in = std::make_shared<bench::mm_input>(bench::make_mm_input(sz.mm_n, 103));
  auto want =
      std::make_shared<double>(bench::mm_checksum(bench::mm_reference(*in)));
  const std::size_t base = sz.mm_base;
  return [in, want, base, v](rt::serial_runtime& rt, bool instr) {
    using bench::mm_general;
    using bench::mm_structured;
    std::vector<float> got;
    if (v == variant::structured) {
      got = instr ? mm_structured<detect::hooks::active>(rt, *in, base)
                  : mm_structured<detect::hooks::none>(rt, *in, base);
    } else {
      got = instr ? mm_general<detect::hooks::active>(rt, *in, base)
                  : mm_general<detect::hooks::none>(rt, *in, base);
    }
    FRD_CHECK_MSG(bench::mm_checksum(got) == *want,
                  "mm kernel produced a wrong product");
  };
}

inline kernel_fn make_heartwall_case(const sizes& sz, variant v) {
  auto in = std::make_shared<bench::heartwall_input>(bench::make_heartwall_input(
      sz.hw_size, sz.hw_size, sz.hw_points, sz.hw_frames, 104));
  return [in, v](rt::serial_runtime& rt, bool instr) {
    using bench::heartwall_general;
    using bench::heartwall_structured;
    std::vector<image::point> got;
    if (v == variant::structured) {
      got = instr ? heartwall_structured<detect::hooks::active>(rt, *in)
                  : heartwall_structured<detect::hooks::none>(rt, *in);
    } else {
      got = instr ? heartwall_general<detect::hooks::active>(rt, *in)
                  : heartwall_general<detect::hooks::none>(rt, *in);
    }
    FRD_CHECK_MSG(got.size() == in->points0.size(), "heartwall lost points");
  };
}

// dedup has a single (structured) program; both figures run it, only the
// detector differs. Its compressor is never instrumented here, matching the
// paper's uninstrumentable compression library (see ablation_compressor).
inline kernel_fn make_dedup_case(const sizes& sz, variant) {
  auto in = std::make_shared<bench::dedup_input>(
      bench::make_dedup_corpus(sz.dedup_bytes, 60, 105));
  auto want = std::make_shared<bench::dedup_result>(
      bench::dedup_reference(*in, sz.dedup_fragment));
  const std::size_t fragment = sz.dedup_fragment;
  return [in, want, fragment](rt::serial_runtime& rt, bool instr) {
    using detect::hooks::active;
    using detect::hooks::none;
    const bench::dedup_result got =
        instr ? bench::dedup_pipeline<active, none>(rt, *in, fragment)
              : bench::dedup_pipeline<none, none>(rt, *in, fragment);
    FRD_CHECK_MSG(got == *want, "dedup pipeline diverged from the reference");
  };
}

inline kernel_fn make_bst_case(const sizes& sz, variant v) {
  // The merge is destructive, so each run rebuilds the input (outside the
  // timed region would be better, but rebuilding is ~5% of merge time and
  // identical across configurations, so overheads stay comparable).
  const std::size_t n1 = sz.bst_n1, n2 = sz.bst_n2;
  const int cutoff = sz.bst_cutoff;
  return [n1, n2, cutoff, v](rt::serial_runtime& rt, bool instr) {
    auto in = bench::make_bst_input(n1, n2, 106);
    using bench::bst_general;
    using bench::bst_structured;
    bench::bst_node* m;
    if (v == variant::structured) {
      m = instr ? bst_structured<detect::hooks::active>(rt, in, cutoff)
                : bst_structured<detect::hooks::none>(rt, in, cutoff);
    } else {
      m = instr ? bst_general<detect::hooks::active>(rt, in, cutoff)
                : bst_general<detect::hooks::none>(rt, in, cutoff);
    }
    FRD_CHECK_MSG(bench::bst_count(m) == n1 + n2, "bst merge lost nodes");
  };
}

}  // namespace frd::bench_harness
