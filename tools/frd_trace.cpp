// frd-trace — record, replay, and inspect FutureRD execution traces.
//
//   frd-trace record --program demo --out demo.frdt [--backend multibags+]
//                    [--granule 4] [--seed 1] [--format binary|jsonl]
//                    [--compress]
//   frd-trace exec   --program demo [--runtime-workers N] [--record FILE]
//                    # live online detection on the parallel runtime; the
//                    # recorded arbitration order replays byte-identically
//   frd-trace run    <trace> [--backend multibags+] [--from N] [--to M]
//   frd-trace dump   <trace> [--from N] [--to M]    # JSONL to stdout
//   frd-trace stats  <trace>             # event-kind histogram + totals;
//                                        # chunk/dedup stats for containers
//   frd-trace pack   <trace> --out FILE  # any format -> .frdtz container
//   frd-trace unpack <frdtz> --out FILE  # container -> the original .frdt
//
// Windowed replay (--from/--to) is event-indexed. `--to M` alone replays the
// exact prefix [0, M) with full detection — sound, identical to truncating
// the trace. `--from N` with N > 0 cannot replay the dag prefix the
// reachability structures need, so it degrades explicitly to a
// reachability-free window conflict scan: granules with conflicting access
// pairs inside the window (an overapproximation — logically ordered strands
// are not excluded). On a v2 .frdtz container the seek uses the footer's
// per-chunk event index instead of decoding the prefix.
//
// A trace is a shareable repro artifact: `record` captures one of the
// built-in programs (demo — a deterministic racy mix of spawns, syncs, and
// escaping futures — or a seeded fuzz program), `run` replays it through any
// registered backend with no user code executing, and `dump`/`stats` make it
// reviewable. Binary, JSONL, and .frdtz container inputs are auto-detected
// everywhere a trace is read; `--compress` records straight into a
// container, and pack/unpack convert losslessly (unpack reproduces the
// packed .frdt byte-for-byte).
#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>

#include "api/session.hpp"
#include "container/source.hpp"
#include "container/writer.hpp"
#include "corpus/golden.hpp"
#include "detect/registry.hpp"
#include "serve/client.hpp"
#include "graph/fuzz.hpp"
#include "shadow/store.hpp"
#include "support/flags.hpp"
#include "support/granule.hpp"
#include "trace/codec.hpp"
#include "trace/event.hpp"

namespace {

using namespace frd;

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <command> ...\n"
               "  record --program demo|fuzz|fuzz-general --out FILE\n"
               "         [--backend NAME] [--granule N] [--seed N]\n"
               "         [--format binary|jsonl] [--compress]\n"
               "  exec   --program demo|fuzz|fuzz-general\n"
               "         [--backend NAME] [--granule N] [--seed N]\n"
               "         [--runtime-workers N] [--record FILE [--compress]]\n"
               "         (run the program live on the parallel runtime with\n"
               "          online detection; --record captures the arbitration\n"
               "          order for byte-identical serial replay)\n"
               "  run    FILE [--backend NAME] [--store NAME] [--shard-bits N]\n"
               "         [--workers N]  (replay DETECTION workers — distinct\n"
               "          from exec --runtime-workers, which parallelizes the\n"
               "          program itself)\n"
               "         [--from N] [--to M]  (--from > 0: window conflict scan)\n"
               "  dump   FILE [--from N] [--to M]\n"
               "  stats  FILE\n"
               "  pack   FILE --out FILE   (any trace -> .frdtz container)\n"
               "  unpack FILE --out FILE   (.frdtz container -> .frdt)\n"
               "  submit FILE --socket PATH [--backend NAME] [--store NAME]\n"
               "         [--budget-mb N] [--golden-out FILE]  (frd-serve client)\n"
               "  shutdown --socket PATH   (stop a running frd-serve)\n",
               prog);
  return 2;
}

std::array<int, 16> g_cells;

// The deterministic demo program: spawns, a sync, and a future that escapes
// it (same shape as the session test's differential anchor) — two racy
// granules (cells[1] future-vs-spawn, cells[2] spawn-vs-continuation).
void demo_program(session& s) {
  s.run([&](auto& rt) {
    rt.run([&] {
      auto f = rt.create_future([&] {
        s.write(&g_cells[0]);
        s.write(&g_cells[1]);
        return 0;
      });
      rt.spawn([&] {
        s.write(&g_cells[1]);
        s.write(&g_cells[2]);
      });
      s.write(&g_cells[2]);
      rt.sync();
      s.write(&g_cells[3]);
      f.get();
      s.read(&g_cells[0]);
      s.write(&g_cells[3]);
    });
  });
}

void fuzz_program(session& s, std::uint64_t seed, bool structured) {
  graph::fuzz_config cfg;
  cfg.seed = seed;
  cfg.structured = structured;
  cfg.max_depth = 6;
  cfg.max_actions_per_body = 12;
  cfg.n_cells = static_cast<std::uint32_t>(g_cells.size());
  cfg.max_futures = 64;
  const graph::fuzz_plan plan = graph::plan_fuzz(cfg);
  s.run([&](auto& rt) {
    graph::run_fuzz_plan(rt, plan, [&s](std::uint32_t cell, bool write) {
      if (write) {
        s.write(&g_cells[cell]);
      } else {
        s.read(&g_cells[cell]);
      }
    });
  });
}

void print_report(const session& s, std::uint64_t events) {
  std::printf("backend:        %s\n", std::string(s.backend_name()).c_str());
  std::printf("shadow store:   %s\n", s.opts().shadow_store.c_str());
  if (s.opts().runtime == runtime_kind::parallel) {
    if (s.opts().runtime_workers > 0) {
      std::printf("runtime:        parallel (%u workers)\n",
                  s.opts().runtime_workers);
    } else {
      std::printf("runtime:        parallel (hardware concurrency)\n");
    }
  }
  if (s.opts().detect_workers > 1) {
    std::printf("workers:        %u\n", s.opts().detect_workers);
  }
  // The degraded-detection modes announce themselves: a sampled or
  // history-bounded report must never be mistaken for a full-protocol one.
  if (s.opts().sample_rate < 1.0) {
    std::printf("sampling:       rate %.4g, policy %s, seed %llu\n",
                s.opts().sample_rate,
                std::string(to_string(s.opts().sampling)).c_str(),
                static_cast<unsigned long long>(s.opts().sample_seed));
  }
  if (s.opts().shadow_history_depth != shadow::kUnboundedHistory) {
    std::printf("history depth:  %zu readers/granule (short-race window)\n",
                s.opts().shadow_history_depth);
  }
  std::printf("mode:           %s\n", std::string(to_string(s.mode())).c_str());
  if (events) std::printf("trace events:   %llu\n",
                          static_cast<unsigned long long>(events));
  std::printf("accesses:       %llu\n",
              static_cast<unsigned long long>(s.access_count()));
  std::printf("gets (k):       %llu\n",
              static_cast<unsigned long long>(s.get_count()));
  std::printf("races:          %llu (%zu distinct granules)\n",
              static_cast<unsigned long long>(s.report().total()),
              s.report().racy_granules().size());
  // Query-plane counters: how the §3 protocol's reachability questions
  // batched (lookups -> epoch-cache hits -> issued view queries). A
  // regression in batching effectiveness shows up here, not just in perf.
  const frd::detect::query_plane_stats& q = s.query_stats();
  std::printf("reach lookups:  %llu (epoch-cache hits %llu, %.1f%%)\n",
              static_cast<unsigned long long>(q.lookups),
              static_cast<unsigned long long>(q.cache_hits),
              q.lookups ? 100.0 * static_cast<double>(q.cache_hits) /
                              static_cast<double>(q.lookups)
                        : 0.0);
  std::printf("view queries:   %llu (%.2f strands/batch)\n",
              static_cast<unsigned long long>(q.batches),
              q.batches ? static_cast<double>(q.strands) /
                              static_cast<double>(q.batches)
                        : 0.0);
  if (q.sampled + q.skipped > 0) {
    std::printf("sampling plane: %llu accesses detected, %llu skipped "
                "(%.1f%% admitted)\n",
                static_cast<unsigned long long>(q.sampled),
                static_cast<unsigned long long>(q.skipped),
                100.0 * static_cast<double>(q.sampled) /
                    static_cast<double>(q.sampled + q.skipped));
  }
  // Memory accounting (session::memory_stats) — the counters the serve
  // daemon's per-stream budgets are enforced against.
  const frd::detect::memory_stats m = s.memory_stats();
  std::printf("memory:         %llu bytes (shadow %llu in %llu pages",
              static_cast<unsigned long long>(m.total_bytes()),
              static_cast<unsigned long long>(m.store_bytes),
              static_cast<unsigned long long>(m.store_pages));
  if (m.store_shards > 1) {
    std::printf(" / %llu shards", static_cast<unsigned long long>(m.store_shards));
  }
  std::printf(", query cache %llu)\n",
              static_cast<unsigned long long>(m.query_cache_bytes));
  // Peak = the run's high-water mark, the number serve budgets charge.
  std::printf("peak memory:    %llu bytes (shadow %llu)\n",
              static_cast<unsigned long long>(m.peak_total_bytes),
              static_cast<unsigned long long>(m.peak_store_bytes));
  std::printf("report buffer:  %llu/%llu races retained\n",
              static_cast<unsigned long long>(m.report_retained),
              static_cast<unsigned long long>(m.report_capacity));
}

// Positions `src` so the next event delivered is event `from`: containers
// seek through the footer's per-chunk index (v2) or decode-and-discard (v1);
// flat traces always decode-and-discard. Returns how many events actually
// exist in front of the target (== from unless the trace is shorter).
std::uint64_t skip_to_event(trace::trace_source& src, std::uint64_t from) {
  if (auto* cs = dynamic_cast<container::container_source*>(&src)) {
    if (from > cs->info().event_count) return cs->info().event_count;
    cs->seek_to_event(from);
    return from;
  }
  trace::trace_event e;
  std::uint64_t n = 0;
  while (n < from && src.next(e)) ++n;
  return n;
}

// Delivers at most `limit` events of the wrapped source — but never cuts a
// sync_begin run mid-way, since the player (rightly) rejects orphaned
// sync_child events; the run's children ride along past the limit.
class prefix_source final : public trace::trace_source {
 public:
  prefix_source(trace::trace_source& src, std::uint64_t limit)
      : src_(src), limit_(limit) {}
  const trace::trace_header& header() const override { return src_.header(); }
  bool next(trace::trace_event& e) override {
    if (pending_children_ == 0 && total_ >= limit_) return false;
    if (!src_.next(e)) return false;
    ++total_;
    if (pending_children_ > 0) {
      --pending_children_;
    } else if (e.kind == trace::event_kind::sync_begin) {
      pending_children_ = e.sync_begin.count;
    }
    return true;
  }

 private:
  trace::trace_source& src_;
  std::uint64_t limit_;
  std::uint64_t total_ = 0;
  std::uint32_t pending_children_ = 0;
};

// The --from > 0 path: no dag prefix means no reachability, so this scans
// the window's accesses through a per-granule last-writer/reader cell and
// flags granules with conflicting access pairs (distinct strands, at least
// one write). Deliberately an overapproximation; the output says so.
int window_scan(trace::trace_source& src, const std::string& path,
                std::uint64_t from, std::uint64_t to) {
  constexpr std::uint64_t kNone = ~std::uint64_t{0};
  struct wcell {
    std::uint64_t writer = kNone;  // last writer strand
    std::uint64_t reader = kNone;  // one recorded reader since that write
    bool more_readers = false;     // a second distinct reader existed
  };
  if (skip_to_event(src, from) != from) {
    std::fprintf(stderr, "run: --from %llu is past the end of '%s'\n",
                 static_cast<unsigned long long>(from), path.c_str());
    return 1;
  }
  std::unordered_map<std::uint64_t, wcell> cells;
  std::set<std::uint64_t> conflicts;
  std::uint64_t current = kNone;  // unknown until a strand boundary
  std::uint64_t events = 0, accesses = 0, skipped = 0;
  trace::trace_event e;
  while ((to == 0 || from + events < to) && src.next(e)) {
    ++events;
    switch (e.kind) {
      case trace::event_kind::program_begin:
        current = e.program_begin.first;
        break;
      case trace::event_kind::strand_begin:
        current = e.strand_begin.s;
        break;
      case trace::event_kind::read:
      case trace::event_kind::write: {
        if (current == kNone) {
          ++skipped;  // owner strand began before the window
          break;
        }
        ++accesses;
        wcell& c = cells[e.access.addr];
        const bool is_write = e.kind == trace::event_kind::write;
        const bool clash =
            (c.writer != kNone && c.writer != current) ||
            (is_write &&
             ((c.reader != kNone && c.reader != current) || c.more_readers));
        if (clash) conflicts.insert(e.access.addr);
        if (is_write) {
          c.writer = current;
          c.reader = kNone;
          c.more_readers = false;
        } else if (c.reader == kNone) {
          c.reader = current;
        } else if (c.reader != current) {
          c.more_readers = true;
        }
        break;
      }
      default:
        break;  // dag events carry no reachability here by design
    }
  }
  std::printf("window scan:    events [%llu, %llu) of %s\n",
              static_cast<unsigned long long>(from),
              static_cast<unsigned long long>(from + events), path.c_str());
  std::printf("  (reachability-free: flagged granules have conflicting access "
              "pairs in the\n   window; logically ordered strands are NOT "
              "excluded — replay from event 0\n   for sound detection)\n");
  std::printf("window events:  %llu (%llu accesses scanned, %llu skipped "
              "before a strand boundary)\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(accesses),
              static_cast<unsigned long long>(skipped));
  std::printf("conflict granules: %zu\n", conflicts.size());
  std::size_t shown = 0;
  for (const std::uint64_t a : conflicts) {
    if (shown++ == 16) {
      std::printf("  ... (%zu more)\n", conflicts.size() - 16);
      break;
    }
    std::printf("  0x%llx\n", static_cast<unsigned long long>(a));
  }
  return 0;
}

int cmd_record(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& program = flags.string_flag("program", "demo",
                                    "demo | fuzz | fuzz-general");
  auto& out_path = flags.string_flag("out", "", "output trace file (required)");
  auto& backend = flags.string_flag("backend", "multibags+",
                                    "detection backend while recording");
  auto& granule = flags.int_flag("granule", 4, "shadow granule (bytes)");
  auto& seed = flags.int_flag("seed", 1, "fuzz seed");
  auto& format = flags.string_flag("format", "binary", "binary | jsonl");
  auto& do_compress = flags.bool_flag(
      "compress", false, "write a .frdtz container instead of a flat trace");
  flags.parse();
  // Every input is validated (and the session constructed — bad backend
  // names throw here) BEFORE the output file is created, so no failure mode
  // leaves a bogus artifact at --out.
  if (out_path.empty()) {
    std::fprintf(stderr, "record: --out is required\n");
    return 2;
  }
  if (program != "demo" && program != "fuzz" && program != "fuzz-general") {
    std::fprintf(stderr, "record: unknown --program '%s'\n", program.c_str());
    return 2;
  }
  if (format != "binary" && format != "jsonl") {
    std::fprintf(stderr, "record: unknown --format '%s'\n", format.c_str());
    return 2;
  }
  if (do_compress && format == "jsonl") {
    std::fprintf(stderr,
                 "record: --compress wraps the binary codec; drop "
                 "--format jsonl\n");
    return 2;
  }
  if (granule < 1 || !frd::valid_granule(static_cast<std::size_t>(granule))) {
    std::fprintf(stderr, "record: --granule must be a power of two in "
                         "[1, 4096]\n");
    return 2;
  }
  session s(session::options{.backend = backend,
                             .granule = static_cast<std::size_t>(granule)});

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "record: cannot open '%s' for writing\n",
                 out_path.c_str());
    return 1;
  }
  const trace::trace_header header{
      trace::kTraceVersion, static_cast<std::uint32_t>(granule)};
  std::unique_ptr<trace::trace_sink> sink;
  if (do_compress) {
    sink = std::make_unique<container::container_writer>(out, header);
  } else if (format == "binary") {
    sink = std::make_unique<trace::trace_writer>(out, header);
  } else {
    sink = std::make_unique<trace::jsonl_writer>(out, header);
  }

  s.record_to(*sink);
  try {
    if (program == "demo") {
      demo_program(s);
    } else {
      fuzz_program(s, static_cast<std::uint64_t>(seed), program == "fuzz");
    }
    // finish() throws trace_error on stream failure (disk full etc.) — like
    // any other failure in this block it lands in the catch below, so no
    // failure mode leaves a truncated artifact behind.
    sink->finish();
    out.close();
    if (!out) throw trace::trace_error("writing '" + out_path + "' failed");
  } catch (...) {
    // Don't leave a partial artifact behind: a half-written trace that a
    // later script might ship as a repro is worse than no file.
    out.close();
    std::remove(out_path.c_str());
    throw;
  }

  std::printf("recorded '%s' to %s (%s)\n", program.c_str(), out_path.c_str(),
              do_compress ? "container" : format.c_str());
  print_report(s, 0);
  return 0;
}

// exec: the online pump end-to-end. The program runs live on the
// work-stealing parallel runtime with detection attached; --record captures
// the pump's arbitration order so `frd-trace run` on the file reproduces
// this report byte-identically (the conformance oracle). Note the worker
// knobs are orthogonal: `exec --runtime-workers` widens the PROGRAM's
// scheduler, `run --workers` widens replay DETECTION.
int cmd_exec(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& program = flags.string_flag("program", "demo",
                                    "demo | fuzz | fuzz-general");
  auto& backend = flags.string_flag("backend", "multibags+",
                                    "detection backend");
  auto& granule = flags.int_flag("granule", 4, "shadow granule (bytes)");
  auto& seed = flags.int_flag("seed", 1, "fuzz seed");
  auto& runtime_workers = flags.int_flag(
      "runtime-workers", 0,
      "work-stealing scheduler width (0 = hardware concurrency)");
  auto& record_path = flags.string_flag(
      "record", "",
      "also record the arbitration-order trace here (serial replay of it "
      "reproduces this run's report byte-identically)");
  auto& do_compress = flags.bool_flag(
      "compress", false, "--record writes a .frdtz container");
  flags.parse();
  if (program != "demo" && program != "fuzz" && program != "fuzz-general") {
    std::fprintf(stderr, "exec: unknown --program '%s'\n", program.c_str());
    return 2;
  }
  if (granule < 1 || !frd::valid_granule(static_cast<std::size_t>(granule))) {
    std::fprintf(stderr, "exec: --granule must be a power of two in "
                         "[1, 4096]\n");
    return 2;
  }
  if (runtime_workers < 0 || runtime_workers > 256) {
    std::fprintf(stderr, "exec: --runtime-workers must be in [0, 256]\n");
    return 2;
  }
  if (do_compress && record_path.empty()) {
    std::fprintf(stderr, "exec: --compress needs --record\n");
    return 2;
  }
  session s(session::options{
      .backend = backend,
      .granule = static_cast<std::size_t>(granule),
      .runtime = runtime_kind::parallel,
      .runtime_workers = static_cast<unsigned>(runtime_workers)});

  std::ofstream out;
  std::unique_ptr<trace::trace_sink> sink;
  if (!record_path.empty()) {
    out.open(record_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "exec: cannot open '%s' for writing\n",
                   record_path.c_str());
      return 1;
    }
    const trace::trace_header header{
        trace::kTraceVersion, static_cast<std::uint32_t>(granule)};
    if (do_compress) {
      sink = std::make_unique<container::container_writer>(out, header);
    } else {
      sink = std::make_unique<trace::trace_writer>(out, header);
    }
    s.record_to(*sink);
  }

  try {
    if (program == "demo") {
      demo_program(s);
    } else {
      fuzz_program(s, static_cast<std::uint64_t>(seed), program == "fuzz");
    }
    if (sink) {
      sink->finish();
      out.close();
      if (!out) {
        throw trace::trace_error("writing '" + record_path + "' failed");
      }
    }
  } catch (...) {
    if (!record_path.empty()) {
      // Same no-partial-artifact contract as record.
      out.close();
      std::remove(record_path.c_str());
    }
    throw;
  }

  std::printf("executed '%s' online\n", program.c_str());
  if (!record_path.empty()) {
    std::printf("recorded arbitration order to %s (%s)\n", record_path.c_str(),
                do_compress ? "container" : "binary");
  }
  print_report(s, 0);
  return 0;
}

int cmd_run(const std::string& path, int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& backend = flags.string_flag("backend", "multibags+",
                                    "detection backend to replay through");
  auto& store = flags.string_flag(
      "store", std::string(shadow::kDefaultStore),
      "shadow store to replay on (hashed-page | sharded | compact)");
  auto& shard_bits = flags.int_flag(
      "shard-bits", 4, "sharded store: 2^bits shards (ignored elsewhere)");
  auto& workers = flags.int_flag(
      "workers", 1,
      "parallel detection workers; > 1 runs each access run shard-parallel "
      "on the sharded store (the default store upgrades automatically) with "
      "a report byte-identical to --workers 1");
  auto& batch = flags.int_flag(
      "batch", 0, "replay batch size (0 = auto: 256 serial, 4096 parallel)");
  auto& from = flags.int_flag(
      "from", 0, "first event of the replay window (> 0: conflict scan)");
  auto& to = flags.int_flag("to", 0, "stop before this event (0 = end)");
  auto& sample_rate = flags.double_flag(
      "sample-rate", 1.0,
      "detect on this fraction of accesses, seeded and reproducible; "
      "(0, 1], 1.0 = full detection");
  auto& sample_seed =
      flags.int_flag("sample-seed", 1, "sampling decision seed");
  auto& sample_policy = flags.string_flag(
      "sample-policy", "granule",
      "granule (per-granule decision; sampled report is a subset of the "
      "full one) | epoch (whole dag-event windows admitted or skipped)");
  auto& history_depth = flags.int_flag(
      "history-depth", 0,
      "retained readers per granule; 0 = unbounded (the full paper "
      "protocol), N >= 1 keeps the most recent N (short-race windows)");
  flags.parse();
  if (shard_bits < 0 || shard_bits > 10) {
    std::fprintf(stderr, "run: --shard-bits must be in [0, 10]\n");
    return 2;
  }
  if (workers < 1 || workers > 256) {
    std::fprintf(stderr, "run: --workers must be in [1, 256]\n");
    return 2;
  }
  if (batch < 0) {
    std::fprintf(stderr, "run: --batch must be >= 0 (0 = auto)\n");
    return 2;
  }
  if (from < 0 || to < 0 || (to > 0 && to <= from)) {
    std::fprintf(stderr, "run: need 0 <= --from < --to\n");
    return 2;
  }
  if (!(sample_rate > 0.0 && sample_rate <= 1.0)) {
    std::fprintf(stderr, "run: --sample-rate must be in (0, 1]\n");
    return 2;
  }
  if (sample_policy != "granule" && sample_policy != "epoch") {
    std::fprintf(stderr, "run: --sample-policy must be granule or epoch\n");
    return 2;
  }
  if (history_depth < 0) {
    std::fprintf(stderr,
                 "run: --history-depth must be >= 0 (0 = unbounded)\n");
    return 2;
  }
  if (workers > 1 && store == std::string(shadow::kDefaultStore)) {
    // Parallel detection partitions on the sharded store's shard hash; the
    // report is store-independent, so upgrading the default is loss-free.
    std::fprintf(stderr,
                 "run: --workers %lld detects on the sharded store "
                 "(--store %s is unsharded)\n",
                 static_cast<long long>(workers),
                 store.c_str());
    store = "sharded";
  }
  if (workers > 1 && shard_bits == 0) {
    std::fprintf(stderr, "run: --workers > 1 needs --shard-bits >= 1\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "run: cannot open '%s'\n", path.c_str());
    return 1;
  }
  auto src = trace::open_source(in);
  if (from > 0) {
    // No dag prefix, no reachability: the explicit degraded mode.
    return window_scan(*src, path, static_cast<std::uint64_t>(from),
                       static_cast<std::uint64_t>(to));
  }
  session s(session::options{
      .backend = backend,
      .granule = static_cast<std::size_t>(src->header().granule),
      .shadow_store = store,
      .shadow_shard_bits = static_cast<unsigned>(shard_bits),
      .replay_batch = static_cast<std::size_t>(batch),
      .detect_workers = static_cast<unsigned>(workers),
      .sample_rate = sample_rate,
      .sample_seed = static_cast<std::uint64_t>(sample_seed),
      .sampling = sample_policy == "epoch"
                      ? frd::detect::sample_policy::epoch
                      : frd::detect::sample_policy::granule,
      // CLI 0 = unbounded, like --to 0 = end-of-trace.
      .shadow_history_depth =
          history_depth == 0 ? shadow::kUnboundedHistory
                             : static_cast<std::size_t>(history_depth)});
  std::uint64_t events = 0;
  if (to > 0) {
    // Exact prefix detection: identical to replaying a truncated trace.
    prefix_source prefix(*src, static_cast<std::uint64_t>(to));
    events = s.replay(prefix);
    std::printf("window:         events [0, %llu) of %s\n",
                static_cast<unsigned long long>(events), path.c_str());
  } else {
    events = s.replay(*src);
  }
  print_report(s, events);
  return 0;
}

int cmd_dump(const std::string& path, int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& from = flags.int_flag("from", 0, "first event to dump");
  auto& to = flags.int_flag("to", 0, "stop before this event (0 = end)");
  flags.parse();
  if (from < 0 || to < 0 || (to > 0 && to <= from)) {
    std::fprintf(stderr, "dump: need 0 <= --from < --to\n");
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "dump: cannot open '%s'\n", path.c_str());
    return 1;
  }
  auto src = trace::open_source(in);
  trace::jsonl_writer out(std::cout, src->header());
  if (skip_to_event(*src, static_cast<std::uint64_t>(from)) !=
      static_cast<std::uint64_t>(from)) {
    std::fprintf(stderr, "dump: --from %lld is past the end of '%s'\n",
                 static_cast<long long>(from), path.c_str());
    return 1;
  }
  std::uint64_t dumped = 0;
  const std::uint64_t limit =
      to > 0 ? static_cast<std::uint64_t>(to - from) : ~std::uint64_t{0};
  trace::trace_event e;
  while (dumped < limit && src->next(e)) {
    out.put(e);
    ++dumped;
  }
  out.finish();  // surfaces a failed stdout (redirected to a full disk, ...)
  return 0;
}

void print_container_stats(const container::container_info& ci,
                           std::uint64_t file_size, bool per_chunk);

int cmd_stats(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "stats: cannot open '%s'\n", path.c_str());
    return 1;
  }
  auto src = trace::open_source(in);
  std::uint64_t counts[trace::kEventKindCount] = {};
  std::uint64_t total = 0, accesses = 0;
  std::uint32_t max_strand = 0;
  // Access-run shape: maximal runs of consecutive read/write events — the
  // trace-side bound on the player's batches and on how many accesses can
  // share one batched reachability query.
  std::uint64_t runs = 0, run_len = 0, max_run = 0;
  trace::trace_event e;
  while (src->next(e)) {
    ++counts[static_cast<int>(e.kind)];
    ++total;
    if (e.kind == trace::event_kind::read ||
        e.kind == trace::event_kind::write) {
      ++accesses;
      if (run_len++ == 0) ++runs;
      if (run_len > max_run) max_run = run_len;
    } else {
      run_len = 0;
    }
    if (e.kind == trace::event_kind::strand_begin &&
        e.strand_begin.s > max_strand) {
      max_strand = e.strand_begin.s;
    }
  }
  std::printf("trace:    %s\n", path.c_str());
  std::printf("version:  %u   granule: %u bytes\n", src->header().version,
              src->header().granule);
  std::printf("events:   %llu (%llu accesses)\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(accesses));
  std::printf("strands:  >= %u\n", max_strand + 1);
  std::printf("access runs: %llu (mean %.1f, max %llu per run)\n",
              static_cast<unsigned long long>(runs),
              runs ? static_cast<double>(accesses) / static_cast<double>(runs)
                   : 0.0,
              static_cast<unsigned long long>(max_run));
  for (int k = 0; k < trace::kEventKindCount; ++k) {
    if (counts[k] == 0) continue;
    std::printf("  %-14s %llu\n",
                std::string(to_string(static_cast<trace::event_kind>(k))).c_str(),
                static_cast<unsigned long long>(counts[k]));
  }
  // Containers get a second section: what the chunk layer did to the bytes.
  if (const auto* cs = dynamic_cast<container::container_source*>(src.get())) {
    in.clear();
    in.seekg(0, std::ios::end);
    const auto file_size = static_cast<std::uint64_t>(in.tellg());
    print_container_stats(cs->info(), file_size, /*per_chunk=*/false);
  }
  return 0;
}

void print_container_stats(const container::container_info& ci,
                           std::uint64_t file_size, bool per_chunk) {
  std::set<std::uint64_t> seen;
  std::uint64_t lz_unique = 0, raw_unique = 0;
  for (const auto& c : ci.chunks) {
    if (!seen.insert(c.offset).second) continue;
    ++(c.encoding == container::chunk_encoding::lz ? lz_unique : raw_unique);
  }
  const std::uint64_t hits = ci.dedup_hits();
  std::printf("container: v%u (%s)\n", ci.container_version,
              ci.seekable() ? "seekable event index"
                            : "no seek index; repack to upgrade");
  std::printf("container: %llu chunks (%llu unique: %llu lz, %llu raw)\n",
              static_cast<unsigned long long>(ci.chunks.size()),
              static_cast<unsigned long long>(ci.chunks.size() - hits),
              static_cast<unsigned long long>(lz_unique),
              static_cast<unsigned long long>(raw_unique));
  std::printf("  raw stream:    %llu bytes in %llu events\n",
              static_cast<unsigned long long>(ci.raw_size),
              static_cast<unsigned long long>(ci.event_count));
  std::printf("  stored:        %llu payload bytes, %llu on disk (ratio "
              "%.2fx)\n",
              static_cast<unsigned long long>(ci.payload_bytes()),
              static_cast<unsigned long long>(file_size),
              ci.compression_ratio(file_size));
  std::printf("  dedup:         %llu hits (%.1f%% of chunks), %llu raw bytes "
              "saved\n",
              static_cast<unsigned long long>(hits),
              ci.chunks.empty() ? 0.0
                                : 100.0 * static_cast<double>(hits) /
                                      static_cast<double>(ci.chunks.size()),
              static_cast<unsigned long long>(ci.dedup_saved_raw_bytes()));
  if (!per_chunk) return;
  std::printf("  %-5s %-10s %-9s %-9s %-11s %-9s %s\n", "chunk", "offset",
              "stored", "raw", "first-ev", "first-off", "enc");
  for (std::size_t i = 0; i < ci.chunks.size(); ++i) {
    const auto& c = ci.chunks[i];
    char off[24];
    if (c.first_offset == container::kNoFirstOffset) {
      std::snprintf(off, sizeof(off), "-");  // v1: not recorded
    } else {
      std::snprintf(off, sizeof(off), "%llu",
                    static_cast<unsigned long long>(c.first_offset));
    }
    std::printf("  %-5zu %-10llu %-9llu %-9llu %-11llu %-9s %s\n", i,
                static_cast<unsigned long long>(c.offset),
                static_cast<unsigned long long>(c.stored_size),
                static_cast<unsigned long long>(c.raw_size),
                static_cast<unsigned long long>(c.first_event),
                off,
                c.encoding == container::chunk_encoding::lz ? "lz" : "raw");
  }
}

int cmd_pack(const std::string& path, int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& out_path = flags.string_flag("out", "", "output .frdtz (required)");
  auto& chunks = flags.bool_flag("chunks", false, "print the chunk table");
  flags.parse();
  if (out_path.empty()) {
    std::fprintf(stderr, "pack: --out is required\n");
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "pack: cannot open '%s'\n", path.c_str());
    return 1;
  }
  auto src = trace::open_source(in);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "pack: cannot open '%s' for writing\n",
                 out_path.c_str());
    return 1;
  }
  try {
    container::container_writer cw(out, src->header());
    trace::trace_event e;
    while (src->next(e)) cw.put(e);
    cw.finish();
    out.close();
    if (!out) throw trace::trace_error("writing '" + out_path + "' failed");

    std::ifstream packed(out_path, std::ios::binary | std::ios::ate);
    const auto file_size = static_cast<std::uint64_t>(packed.tellg());
    std::printf("packed %s -> %s\n", path.c_str(), out_path.c_str());
    print_container_stats(cw.info(), file_size, chunks);
  } catch (...) {
    // Same no-partial-artifact contract as record.
    out.close();
    std::remove(out_path.c_str());
    throw;
  }
  return 0;
}

int cmd_unpack(const std::string& path, int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& out_path = flags.string_flag("out", "", "output .frdt (required)");
  flags.parse();
  if (out_path.empty()) {
    std::fprintf(stderr, "unpack: --out is required\n");
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "unpack: cannot open '%s'\n", path.c_str());
    return 1;
  }
  if (!container::looks_like_container(in)) {
    std::fprintf(stderr, "unpack: '%s' is not a .frdtz container\n",
                 path.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "unpack: cannot open '%s' for writing\n",
                 out_path.c_str());
    return 1;
  }
  try {
    const container::container_info ci = container::unpack(in, out);
    out.close();
    if (!out) throw trace::trace_error("writing '" + out_path + "' failed");
    std::printf("unpacked %s -> %s (%llu bytes, %llu events, %zu chunks "
                "verified)\n",
                path.c_str(), out_path.c_str(),
                static_cast<unsigned long long>(ci.raw_size),
                static_cast<unsigned long long>(ci.event_count),
                ci.chunks.size());
  } catch (...) {
    out.close();
    std::remove(out_path.c_str());
    throw;
  }
  return 0;
}

// --- frd-serve client verbs -----------------------------------------------

int cmd_submit(const std::string& path, int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& socket = flags.string_flag("socket", "", "frd-serve socket (required)");
  auto& backend = flags.string_flag("backend", "multibags+", "detector backend");
  auto& store = flags.string_flag("store", "hashed-page", "shadow store");
  auto& budget_mb = flags.int_flag(
      "budget-mb", 0, "request this per-stream budget in MiB (<= server's)");
  auto& golden_out = flags.string_flag(
      "golden-out", "", "also write the report in corpus golden format");
  flags.parse();
  if (socket.empty()) {
    std::fprintf(stderr, "submit: --socket is required\n");
    return 2;
  }
  if (budget_mb < 0) {
    std::fprintf(stderr, "submit: --budget-mb must be >= 0\n");
    return 2;
  }

  serve::client cli(socket);
  serve::submit_options opt;
  opt.backend = backend;
  opt.store = store;
  opt.budget = static_cast<std::uint64_t>(budget_mb) << 20;
  const serve::submit_result r = cli.submit_file(path, opt);
  if (!r.ok) {
    std::fprintf(stderr, "submit: stream failed (%s): %s\n",
                 std::string(serve::to_string(r.code)).c_str(),
                 r.error.c_str());
    return 1;
  }

  std::printf("backend:        %s\n", backend.c_str());
  std::printf("shadow store:   %s\n", store.c_str());
  std::printf("trace events:   %llu\n",
              static_cast<unsigned long long>(r.golden.events));
  std::printf("accesses:       %llu\n",
              static_cast<unsigned long long>(r.golden.accesses));
  std::printf("gets (k):       %llu\n",
              static_cast<unsigned long long>(r.golden.gets));
  std::printf("races:          %llu (%zu distinct granules)\n",
              static_cast<unsigned long long>(r.races_total),
              r.golden.racy_granules.size());
  std::printf("memory:         %llu bytes (shadow %llu in %llu pages, "
              "query cache %llu)\n",
              static_cast<unsigned long long>(
                  r.store_bytes + r.query_cache_bytes),
              static_cast<unsigned long long>(r.store_bytes),
              static_cast<unsigned long long>(r.store_pages),
              static_cast<unsigned long long>(r.query_cache_bytes));
  std::printf("report buffer:  %llu/%llu races retained\n",
              static_cast<unsigned long long>(r.report_retained),
              static_cast<unsigned long long>(r.report_capacity));
  for (const serve::race_msg& m : r.races) {
    std::printf("race: granule 0x%llx  %s strand %llu vs %s strand %llu\n",
                static_cast<unsigned long long>(m.granule_addr),
                m.prior_is_write ? "write" : "read",
                static_cast<unsigned long long>(m.prior),
                m.current_is_write ? "write" : "read",
                static_cast<unsigned long long>(m.current));
  }

  if (!golden_out.empty()) {
    std::ofstream gout(golden_out);
    if (!gout) {
      std::fprintf(stderr, "submit: cannot open '%s' for writing\n",
                   golden_out.c_str());
      return 1;
    }
    corpus::write_golden(gout, r.golden);
    if (!gout.flush()) {
      std::fprintf(stderr, "submit: writing '%s' failed\n", golden_out.c_str());
      return 1;
    }
  }
  return 0;
}

int cmd_shutdown(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& socket = flags.string_flag("socket", "", "frd-serve socket (required)");
  flags.parse();
  if (socket.empty()) {
    std::fprintf(stderr, "shutdown: --socket is required\n");
    return 2;
  }
  serve::client cli(socket);
  cli.shutdown_server();
  std::printf("frd-serve at %s is shutting down\n", socket.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  try {
    if (cmd == "record") return cmd_record(argc - 1, argv + 1);
    if (cmd == "exec") return cmd_exec(argc - 1, argv + 1);
    if (cmd == "shutdown") return cmd_shutdown(argc - 1, argv + 1);
    if (cmd == "run" || cmd == "dump" || cmd == "stats" || cmd == "pack" ||
        cmd == "unpack" || cmd == "submit") {
      if (argc < 3 || argv[2][0] == '-') {
        std::fprintf(stderr, "%s: expected a trace file argument\n",
                     cmd.c_str());
        return usage(argv[0]);
      }
      const std::string path = argv[2];
      if (cmd == "run") return cmd_run(path, argc - 2, argv + 2);
      if (cmd == "dump") return cmd_dump(path, argc - 2, argv + 2);
      if (cmd == "pack") return cmd_pack(path, argc - 2, argv + 2);
      if (cmd == "unpack") return cmd_unpack(path, argc - 2, argv + 2);
      if (cmd == "submit") return cmd_submit(path, argc - 2, argv + 2);
      return cmd_stats(path);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "frd-trace %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage(argv[0]);
}
