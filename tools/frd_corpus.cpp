// frd-corpus — generate, verify, and regold the golden trace corpus.
//
//   frd-corpus generate [--dir corpus] [--only NAME]
//   frd-corpus verify   [--dir corpus] [--backend NAME]
//   frd-corpus regold   [--dir corpus] [--only NAME]
//   frd-corpus list     [--dir corpus]
//
// `generate` records the builtin corpus (paper kernels, adversarial shapes,
// fuzz programs) into address-normalized traces, derives their goldens, and
// rewrites corpus/MANIFEST — artifacts are byte-reproducible, so a clean
// regeneration leaves git quiet. `verify` replays every manifest entry
// through every eligible backend and diffs the reports against the goldens;
// on divergence it prints which backend missed which granule on which entry
// and exits 1 (the conformance test runs the same engine under ctest).
// `regold` keeps the traces fixed and re-derives only the goldens — the
// workflow for an intentional detector-behavior change.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/golden.hpp"
#include "corpus/manifest.hpp"
#include "corpus/programs.hpp"
#include "corpus/runner.hpp"
#include "detect/registry.hpp"
#include "shadow/store.hpp"
#include "support/flags.hpp"
#include "trace/event.hpp"

namespace {

using namespace frd;

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <command> ...\n"
               "  generate [--dir corpus] [--only NAME]   record traces + goldens + MANIFEST\n"
               "  verify   [--dir corpus] [--backend NAME] [--store NAME]\n"
               "           replay all entries through every eligible backend x\n"
               "           shadow store, diff vs goldens\n"
               "  regold   [--dir corpus] [--only NAME]   re-derive goldens from existing traces\n"
               "  list     [--dir corpus]                  print the manifest\n",
               prog);
  return 2;
}

// Entries selected by --only (empty selects all); complains on a bad name so
// a typo cannot silently verify nothing.
std::vector<const corpus::corpus_entry*> select(const corpus::manifest& m,
                                                const std::string& only) {
  std::vector<const corpus::corpus_entry*> out;
  for (const corpus::corpus_entry& e : m.entries) {
    if (only.empty() || e.name == only) out.push_back(&e);
  }
  if (out.empty()) {
    throw corpus::corpus_error("--only '" + only +
                               "' matches no corpus entry");
  }
  return out;
}

int cmd_generate(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& dir = flags.string_flag("dir", "corpus", "corpus directory");
  auto& only = flags.string_flag("only", "", "regenerate one entry");
  flags.parse();

  corpus::manifest m = corpus::builtin_manifest();
  for (const corpus::corpus_entry* e : select(m, only)) {
    trace::memory_trace tape = corpus::record_entry(*e);
    const corpus::golden_report gold =
        corpus::gold_from_trace(tape, e->futures);
    // Hold every eligible backend × every shadow store to the fresh golden
    // before anything is written: generate must never ship a corpus that
    // verify would reject, and goldens must be store-independent.
    for (const std::string& backend : corpus::eligible_backends(e->futures)) {
      for (const std::string& store :
           shadow::store_registry::instance().names()) {
        const auto details = corpus::check_backend(tape, gold, backend, store);
        for (const std::string& d : details) {
          std::fprintf(stderr, "generate %s [%s/%s]: %s\n", e->name.c_str(),
                       backend.c_str(), store.c_str(), d.c_str());
        }
        if (!details.empty()) return 1;
      }
    }
    corpus::save_trace(dir + "/" + e->trace_file, tape);
    corpus::save_golden(dir + "/" + e->golden_file, gold);
    std::printf("generated %-16s %6zu events, %3zu racy granule(s)\n",
                e->name.c_str(), tape.size(), gold.racy_granules.size());
  }
  if (only.empty()) {
    std::ofstream out(dir + "/MANIFEST");
    if (!out) {
      std::fprintf(stderr, "generate: cannot write %s/MANIFEST\n",
                   dir.c_str());
      return 1;
    }
    corpus::write_manifest(out, m);
    std::printf("wrote %s/MANIFEST (%zu entries)\n", dir.c_str(),
                m.entries.size());
  }
  return 0;
}

int cmd_regold(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& dir = flags.string_flag("dir", "corpus", "corpus directory");
  auto& only = flags.string_flag("only", "", "regold one entry");
  flags.parse();

  const corpus::manifest m = corpus::load_manifest(dir + "/MANIFEST");
  for (const corpus::corpus_entry* e : select(m, only)) {
    trace::memory_trace tape = corpus::load_trace(dir + "/" + e->trace_file);
    const corpus::golden_report gold =
        corpus::gold_from_trace(tape, e->futures);
    corpus::save_golden(dir + "/" + e->golden_file, gold);
    std::printf("regolded %-16s %3zu racy granule(s)\n", e->name.c_str(),
                gold.racy_granules.size());
  }
  return 0;
}

int cmd_verify(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& dir = flags.string_flag("dir", "corpus", "corpus directory");
  auto& backend = flags.string_flag("backend", "",
                                    "check only this backend (default: all)");
  auto& store = flags.string_flag(
      "store", "", "check only this shadow store (default: all)");
  flags.parse();

  const corpus::manifest m = corpus::load_manifest(dir + "/MANIFEST");
  if (!backend.empty()) {
    detect::backend_registry::instance().at(backend);  // throws with the list
  }
  if (!store.empty()) {
    shadow::store_registry::instance().at(store);  // throws with the list
  }
  const corpus::verify_result result =
      corpus::verify_corpus(m, dir, backend, store);
  for (const corpus::divergence& d : result.failures) {
    for (const std::string& line : d.details) {
      std::fprintf(stderr, "FAIL %s [%s/%s]: %s\n", d.entry.c_str(),
                   d.backend.c_str(), d.store.c_str(), line.c_str());
    }
  }
  if (!result.ok()) {
    std::fprintf(stderr,
                 "corpus verify: %zu divergent entry/backend/store "
                 "triple(s) out of %zu checks\n",
                 result.failures.size(), result.checks);
    return 1;
  }
  std::printf("corpus verify: %zu entries x eligible backends x shadow "
              "stores, %zu checks, all conform\n",
              m.entries.size(), result.checks);
  return 0;
}

int cmd_list(int argc, char** argv) {
  flag_parser flags(argc, argv);
  auto& dir = flags.string_flag("dir", "corpus", "corpus directory");
  flags.parse();

  const corpus::manifest m = corpus::load_manifest(dir + "/MANIFEST");
  std::printf("%-16s %-12s %-10s %7s %6s  %s\n", "entry", "kind", "futures",
              "granule", "seed", "provenance");
  for (const corpus::corpus_entry& e : m.entries) {
    std::printf("%-16s %-12s %-10s %7u %6llu  %s\n", e.name.c_str(),
                std::string(to_string(e.kind)).c_str(),
                e.futures == detect::future_support::general ? "general"
                                                             : "structured",
                e.granule, static_cast<unsigned long long>(e.seed),
                e.provenance.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc - 1, argv + 1);
    if (cmd == "verify") return cmd_verify(argc - 1, argv + 1);
    if (cmd == "regold") return cmd_regold(argc - 1, argv + 1);
    if (cmd == "list") return cmd_list(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "frd-corpus %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage(argv[0]);
}
