#!/usr/bin/env python3
"""Compare a fresh replay-throughput snapshot against the perf/ history.

Snapshots come from different machines, so absolute events/sec is not the
signal (perf/README.md): what is comparable across snapshots is each
backend's *relative* standing — its geometric-mean throughput normalized by
the geomean over all backends in the same snapshot. This script computes
that share per backend in the fresh snapshot and in a baseline (by default
the highest-numbered perf/pr*_replay_throughput.json), takes the ratio, and
exits non-zero when any backend's share dropped below --threshold of its
baseline share — i.e. a backend got slower *relative to the others*, which
no machine change explains.

Only rows present in BOTH snapshots (same trace, same backend) and measured
on the default shadow store participate, so corpus growth and store sweeps
never skew the comparison. Rows without a "store" field (pre-store-layer
snapshots) count as default-store rows.

Usage:
  perf_compare.py --fresh build/BENCH_replay_throughput.json [--history perf]
                  [--baseline FILE] [--threshold 0.5] [--default-store NAME]

Exit codes: 0 ok / no usable baseline, 1 regression, 2 bad invocation.
"""

import argparse
import json
import math
import re
import sys
from pathlib import Path

DEFAULT_STORE = "hashed-page"


def load_rows(path, default_store):
    """(trace, backend) -> events_per_sec for default-store rows of one snapshot."""
    with open(path) as f:
        snap = json.load(f)
    rows = {}
    for row in snap.get("rows", []):
        if row.get("store", default_store) != default_store:
            continue
        eps = float(row["events_per_sec"])
        if eps > 0:
            rows[(row["trace"], row["backend"])] = eps
    return rows


def latest_baseline(history_dir):
    """Highest-numbered perf/prN_replay_throughput.json, or None."""
    best, best_n = None, -1
    for p in Path(history_dir).glob("pr*_replay_throughput.json"):
        m = re.match(r"pr(\d+)_", p.name)
        if m and int(m.group(1)) > best_n:
            best, best_n = p, int(m.group(1))
    return best


def geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def backend_shares(rows):
    """backend -> geomean(events/sec) normalized by the all-backend geomean."""
    per_backend = {}
    for (_, backend), eps in rows.items():
        per_backend.setdefault(backend, []).append(eps)
    means = {b: geomean(v) for b, v in per_backend.items()}
    scale = geomean(list(means.values()))
    return {b: m / scale for b, m in means.items()}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", required=True,
                    help="BENCH_replay_throughput.json from this build")
    ap.add_argument("--history", default="perf",
                    help="directory of prN_replay_throughput.json snapshots")
    ap.add_argument("--baseline", default=None,
                    help="explicit baseline snapshot (overrides --history)")
    ap.add_argument("--threshold", type=float, default=0.5,
                    help="flag a backend whose relative share fell below "
                         "THRESHOLD x its baseline share (default 0.5 — "
                         "loose on purpose; replay times on small traces "
                         "are noisy)")
    ap.add_argument("--default-store", default=DEFAULT_STORE,
                    help="store whose rows form the trajectory")
    args = ap.parse_args()

    baseline_path = args.baseline or latest_baseline(args.history)
    if baseline_path is None:
        print(f"perf_compare: no pr*_replay_throughput.json under "
              f"'{args.history}' — nothing to compare against")
        return 0

    try:
        fresh = load_rows(args.fresh, args.default_store)
        base = load_rows(baseline_path, args.default_store)
    except (OSError, ValueError, KeyError) as e:
        print(f"perf_compare: unreadable snapshot: {e}", file=sys.stderr)
        return 2

    common = sorted(set(fresh) & set(base))
    if not common:
        print("perf_compare: the snapshots share no (trace, backend) rows — "
              "corpus or backend set changed completely; not comparable",
              file=sys.stderr)
        return 2
    fresh_shares = backend_shares({k: fresh[k] for k in common})
    base_shares = backend_shares({k: base[k] for k in common})

    print(f"perf_compare: {args.fresh} vs {baseline_path} "
          f"({len(common)} common rows, threshold {args.threshold})")
    print(f"  {'backend':<16} {'base share':>10} {'fresh share':>11} "
          f"{'ratio':>6}")
    regressions = []
    for backend in sorted(base_shares):
        b, f = base_shares[backend], fresh_shares[backend]
        ratio = f / b
        marker = ""
        if ratio < args.threshold:
            regressions.append(backend)
            marker = "  <-- REGRESSION"
        print(f"  {backend:<16} {b:>10.3f} {f:>11.3f} {ratio:>6.2f}{marker}")

    if regressions:
        print(f"perf_compare: relative regression in: "
              f"{', '.join(regressions)} (share ratio < {args.threshold}); "
              f"if intentional, land the new perf/prN snapshot with the "
              f"change and say why", file=sys.stderr)
        return 1
    print("perf_compare: no per-backend relative regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
