#!/usr/bin/env python3
"""Compare fresh perf snapshots against the perf/ history.

Snapshots come from different machines, so absolute events/sec is not the
signal (perf/README.md): what is comparable across snapshots is each
backend's *relative* standing — its geometric-mean throughput normalized by
the geomean over all backends in the same snapshot. This script computes
that share per backend in the fresh snapshot and in a baseline (by default
the highest-numbered perf/pr*_replay_throughput.json), takes the ratio, and
exits non-zero when any backend's share dropped below --threshold of its
baseline share — i.e. a backend got slower *relative to the others*, which
no machine change explains.

Only rows present in BOTH snapshots (same trace, same backend) measured on
the default shadow store at the default replay batch size with serial
detection (workers == 1) participate, so corpus growth, store sweeps,
--batch-size sweeps, and --workers sweeps never skew the comparison. Rows
without a "store"/"batch"/"workers" field (older snapshots) count as
default rows: pre-PR-8 history was all serial, so it stays comparable.

With --fresh-micro the same relative-share guard also runs over the
BENCH_micro_shadow.json Google-Benchmark snapshot, grouped by shadow store
(the second component of each benchmark name, e.g.
"BM_WriteStepSequential/sharded"): a store whose per-op speed share fell
below the threshold fails the run with the store named.

With --fresh-parallel the guard runs over the BENCH_parallel_speedup.json
snapshot, grouped by worker count: a worker count whose throughput share
fell below the threshold (relative to the other counts in the same
snapshot, so machine speed cancels) means the parallel detection path
stopped scaling the way the baseline did.

With --fresh-frontier the guard runs over the BENCH_sampling_frontier.json
snapshot, grouped by (sample_rate, history_depth) frontier point. Two extra
gates ride along: full-detection rows (rate 1.0, unbounded depth) must
report detection_fraction 1.0 exactly, and every row's detection fraction
must match the baseline bit-for-bit (the sampled set is a pure seeded
function of the versioned corpus traces, so fractions never legitimately
vary across machines).

With --fresh-online the guard runs over the BENCH_online_overhead.json
snapshot from bench/online_overhead. Each online row's overhead_vs_bare is
already a same-machine ratio (online median / bare uninstrumented parallel
median), so machine speed cancels per row and no share math is needed: the
gate is the per-(program, backend, workers) growth ratio fresh/baseline,
failing when any point's overhead factor grew beyond 1/threshold (default
2x) of the baseline's.

Usage:
  perf_compare.py --fresh build/BENCH_replay_throughput.json [--history perf]
                  [--baseline FILE] [--threshold 0.5] [--default-store NAME]
                  [--fresh-micro build/BENCH_micro_shadow.json]
                  [--baseline-micro FILE]
                  [--fresh-parallel build/BENCH_parallel_speedup.json]
                  [--baseline-parallel FILE]
                  [--fresh-frontier build/BENCH_sampling_frontier.json]
                  [--baseline-frontier FILE]
                  [--fresh-online build/BENCH_online_overhead.json]
                  [--baseline-online FILE]
  perf_compare.py --self-test

Exit codes: 0 ok / no usable baseline, 1 regression, 2 bad invocation.
"""

import argparse
import json
import math
import re
import sys
from pathlib import Path

DEFAULT_STORE = "hashed-page"
DEFAULT_BATCH = 256


def load_rows(path, default_store):
    """(trace, backend) -> events_per_sec for default-store, default-batch
    rows of one replay snapshot.

    Newer snapshots may carry extra row fields ("format" — frdt vs frdtz
    container vs in-memory — or "container" details); those never affect
    matching. Replay throughput is measured after decode, so a trace is the
    same trajectory point whether its artifact was flat or compressed. If a
    snapshot ever benches two artifact forms of the same (trace, backend),
    the first row wins so the pair still maps to one comparable number.
    """
    with open(path) as f:
        snap = json.load(f)
    rows = {}
    for row in snap.get("rows", []):
        if row.get("store", default_store) != default_store:
            continue
        if row.get("batch", DEFAULT_BATCH) != DEFAULT_BATCH:
            continue
        # Parallel-detection rows time a different code path; comparing them
        # against serial history would report a phantom regression (or mask a
        # real one). Absent field = pre-PR-8 snapshot = serial.
        if row.get("workers", 1) != 1:
            continue
        # Sampling-mode and bounded-history rows skip most of the measured
        # work on purpose; only full-detection rows belong to the serial
        # trajectory. Absent field = pre-PR-9 snapshot = full detection.
        if float(row.get("sample_rate", 1.0)) != 1.0:
            continue
        if str(row.get("history_depth", "unbounded")) != "unbounded":
            continue
        eps = float(row["events_per_sec"])
        if eps > 0:
            rows.setdefault((row["trace"], row["backend"]), eps)
    return rows


def load_micro_rows(path):
    """benchmark name -> per-op speed (1/cpu_time) for iteration rows of a
    Google-Benchmark snapshot."""
    with open(path) as f:
        snap = json.load(f)
    rows = {}
    for b in snap.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        t = float(b["cpu_time"])
        if t > 0:
            rows[b["name"]] = 1.0 / t
    return rows


def micro_store_of(name):
    """BM_WriteStepSequential/sharded/65536 -> sharded."""
    parts = name.split("/")
    return parts[1] if len(parts) > 1 else parts[0]


def load_parallel_rows(path):
    """(trace, backend, workers) -> events_per_sec for one parallel_speedup
    snapshot. All worker counts participate — that sweep IS the signal."""
    with open(path) as f:
        snap = json.load(f)
    rows = {}
    for row in snap.get("rows", []):
        eps = float(row["events_per_sec"])
        if eps > 0:
            rows.setdefault(
                (row["trace"], row["backend"], int(row["workers"])), eps)
    return rows


def load_frontier_rows(path):
    """(trace, rate, depth-str) -> {"eps", "fraction"} for one
    sampling_frontier snapshot. history_depth is kept as a string so the
    "unbounded" sentinel and numeric depths share one key space."""
    with open(path) as f:
        snap = json.load(f)
    rows = {}
    for row in snap.get("rows", []):
        eps = float(row["events_per_sec"])
        if eps > 0:
            rows.setdefault(
                (row["trace"], float(row["sample_rate"]),
                 str(row["history_depth"])),
                {"eps": eps,
                 "fraction": float(row["detection_fraction"])})
    return rows


def load_online_rows(path):
    """(program, backend, workers) -> overhead_vs_bare for the online rows
    of one online_overhead snapshot. Bare rows carry no overhead factor
    (they ARE the denominator) and are skipped."""
    with open(path) as f:
        snap = json.load(f)
    rows = {}
    for row in snap.get("rows", []):
        if row.get("mode") != "online":
            continue
        ov = float(row["overhead_vs_bare"])
        if ov > 0:
            rows.setdefault(
                (row["program"], row["backend"], int(row["workers"])), ov)
    return rows


def online_point(key):
    """('lcs-structured', 'multibags+', 4) -> 'lcs-structured/multibags+/w4'."""
    return f"{key[0]}/{key[1]}/w{key[2]}"


def compare_overheads(base, fresh, limit):
    """Prints the per-point overhead table; returns the points whose factor
    grew beyond `limit` x baseline. Overhead is lower-is-better and already
    machine-normalized, so the gate is a plain per-point growth ratio — no
    cross-point shares."""
    print(f"  {'point':<34} {'base x':>7} {'fresh x':>8} {'growth':>6}")
    regressions = []
    for key in sorted(base):
        b, f = base[key], fresh[key]
        growth = f / b
        marker = ""
        if growth > limit:
            regressions.append(online_point(key))
            marker = "  <-- REGRESSION"
        print(f"  {online_point(key):<34} {b:>7.1f} {f:>8.1f} "
              f"{growth:>6.2f}{marker}")
    return regressions


def frontier_group(key):
    """(trace, 0.1, '8') -> 'r0.1/d8' — one group per frontier point."""
    return f"r{key[1]:g}/d{key[2]}"


def frontier_exact_violations(rows):
    """Keys of full-detection rows (rate 1.0, unbounded depth) whose
    detection fraction is not 1.0 — sampling must be a strict fast-path
    carve-out, so the exact configuration catching less than the golden is
    a correctness bug, not a perf regression."""
    return sorted(k for k, v in rows.items()
                  if k[1] == 1.0 and k[2] == "unbounded"
                  and abs(v["fraction"] - 1.0) > 1e-9)


def frontier_fraction_drift(base, fresh):
    """Common keys whose detection fraction changed between snapshots.
    The sampled set is a pure seeded function of the versioned corpus
    traces, so fractions are machine-independent: any drift means the
    sampling decision or the detector semantics changed."""
    return sorted(k for k in set(base) & set(fresh)
                  if abs(base[k]["fraction"] - fresh[k]["fraction"]) > 1e-6)


def latest_baseline(history_dir, suffix):
    """Highest-numbered perf/prN_<suffix>.json, or None."""
    best, best_n = None, -1
    for p in Path(history_dir).glob(f"pr*_{suffix}.json"):
        m = re.match(r"pr(\d+)_", p.name)
        if m and int(m.group(1)) > best_n:
            best, best_n = p, int(m.group(1))
    return best


def geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def shares(rows, group_of):
    """group -> geomean(speed) normalized by the all-group geomean."""
    per_group = {}
    for key, speed in rows.items():
        per_group.setdefault(group_of(key), []).append(speed)
    means = {g: geomean(v) for g, v in per_group.items()}
    scale = geomean(list(means.values()))
    return {g: m / scale for g, m in means.items()}


def compare_shares(label, base_shares, fresh_shares, threshold):
    """Prints the share table; returns the group names that regressed."""
    print(f"  {label:<16} {'base share':>10} {'fresh share':>11} {'ratio':>6}")
    regressions = []
    for group in sorted(base_shares):
        b, f = base_shares[group], fresh_shares[group]
        ratio = f / b
        marker = ""
        if ratio < threshold:
            regressions.append(group)
            marker = "  <-- REGRESSION"
        print(f"  {group:<16} {b:>10.3f} {f:>11.3f} {ratio:>6.2f}{marker}")
    return regressions


def self_test():
    """Fixture-driven checks of the comparison logic itself (no build
    artifacts needed). Exercises the workers==1 filter, the share math, the
    regression trip-wire, and baseline discovery."""
    import tempfile

    failures = []

    def check(name, cond):
        print(f"  self-test: {name}: {'ok' if cond else 'FAIL'}")
        if not cond:
            failures.append(name)

    with tempfile.TemporaryDirectory() as td:
        td = Path(td)
        # 1. load_rows must keep only default-store/default-batch/serial rows
        #    and treat missing fields (pre-PR-8 snapshots) as defaults.
        mixed = td / "mixed.json"
        mixed.write_text(json.dumps({"rows": [
            {"trace": "t", "backend": "a", "events_per_sec": 10.0},
            {"trace": "t", "backend": "b", "store": DEFAULT_STORE,
             "batch": DEFAULT_BATCH, "workers": 1, "events_per_sec": 20.0},
            {"trace": "t", "backend": "c", "workers": 4,
             "events_per_sec": 99.0},
            {"trace": "t", "backend": "d", "store": "sharded",
             "events_per_sec": 99.0},
            {"trace": "t", "backend": "e", "batch": 4096,
             "events_per_sec": 99.0},
            {"trace": "t", "backend": "f", "sample_rate": 0.1,
             "events_per_sec": 99.0},
            {"trace": "t", "backend": "g", "history_depth": 8,
             "events_per_sec": 99.0},
            {"trace": "t", "backend": "h", "sample_rate": 1.0,
             "history_depth": "unbounded", "events_per_sec": 30.0},
        ]}))
        rows = load_rows(mixed, DEFAULT_STORE)
        check("load_rows keeps field-less rows as serial defaults",
              ("t", "a") in rows and ("t", "b") in rows)
        check("load_rows drops workers!=1 rows", ("t", "c") not in rows)
        check("load_rows drops non-default store/batch rows",
              ("t", "d") not in rows and ("t", "e") not in rows)
        check("load_rows drops sampled and bounded-history rows",
              ("t", "f") not in rows and ("t", "g") not in rows)
        check("load_rows keeps explicit full-detection rows",
              ("t", "h") in rows)

        # 2. share math: identical snapshots never regress; a backend that
        #    halved relative to its peers trips the default threshold.
        base = {("t1", "a"): 100.0, ("t1", "b"): 100.0,
                ("t2", "a"): 50.0, ("t2", "b"): 50.0}
        same = compare_shares("backend", shares(base, lambda k: k[1]),
                              shares(base, lambda k: k[1]), 0.5)
        check("identical snapshots pass", same == [])
        slow_b = {k: (v / 8 if k[1] == "b" else v) for k, v in base.items()}
        regressed = compare_shares("backend", shares(base, lambda k: k[1]),
                                   shares(slow_b, lambda k: k[1]), 0.5)
        check("8x relative slowdown trips the threshold", regressed == ["b"])

        # 3. parallel rows: grouped by worker count, a scaling collapse at
        #    workers=4 is caught even when workers=1 is unchanged.
        pbase = {("t", "a", 1): 100.0, ("t", "a", 4): 300.0}
        pslow = {("t", "a", 1): 100.0, ("t", "a", 4): 60.0}
        regressed = compare_shares(
            "workers", shares(pbase, lambda k: str(k[2])),
            shares(pslow, lambda k: str(k[2])), 0.5)
        check("parallel scaling collapse trips the threshold",
              regressed == ["4"])

        # 4. frontier rows: exactness gate and fraction-drift detection.
        frontier = td / "frontier.json"
        frontier.write_text(json.dumps({"rows": [
            {"trace": "t", "sample_rate": 1.0, "history_depth": "unbounded",
             "events_per_sec": 100.0, "detection_fraction": 1.0},
            {"trace": "t", "sample_rate": 0.1, "history_depth": "unbounded",
             "events_per_sec": 400.0, "detection_fraction": 0.25},
            {"trace": "t", "sample_rate": 0.1, "history_depth": 8,
             "events_per_sec": 450.0, "detection_fraction": 0.25},
        ]}))
        frows = load_frontier_rows(frontier)
        check("load_frontier_rows keys on (trace, rate, depth-str)",
              ("t", 1.0, "unbounded") in frows and ("t", 0.1, "8") in frows)
        check("frontier groups label rate and depth",
              frontier_group(("t", 0.1, "8")) == "r0.1/d8")
        check("exact full-detection rows pass the exactness gate",
              frontier_exact_violations(frows) == [])
        leaky = dict(frows)
        leaky[("t", 1.0, "unbounded")] = {"eps": 100.0, "fraction": 0.9}
        check("a leaky full-detection row trips the exactness gate",
              frontier_exact_violations(leaky) == [("t", 1.0, "unbounded")])
        drifted = {k: dict(v) for k, v in frows.items()}
        drifted[("t", 0.1, "8")]["fraction"] = 0.5
        check("a changed sampled fraction trips the drift gate",
              frontier_fraction_drift(frows, drifted) == [("t", 0.1, "8")])
        check("identical fractions produce no drift",
              frontier_fraction_drift(frows, frows) == [])

        # 5. online rows: bare rows are the denominator, not data points;
        #    the gate is per-point overhead growth, not a share.
        online = td / "online.json"
        online.write_text(json.dumps({"rows": [
            {"program": "lcs", "backend": "multibags+", "workers": 4,
             "mode": "bare", "mean_seconds": 0.01},
            {"program": "lcs", "backend": "multibags+", "workers": 4,
             "mode": "online", "mean_seconds": 0.8,
             "overhead_vs_bare": 80.0},
            {"program": "mm", "backend": "multibags", "workers": 1,
             "mode": "online", "mean_seconds": 0.5,
             "overhead_vs_bare": 50.0},
        ]}))
        orows = load_online_rows(online)
        check("load_online_rows keeps only mode=online rows",
              orows == {("lcs", "multibags+", 4): 80.0,
                        ("mm", "multibags", 1): 50.0})
        check("identical overheads pass the growth gate",
              compare_overheads(orows, orows, 2.0) == [])
        bloated = dict(orows)
        bloated[("lcs", "multibags+", 4)] = 250.0
        check("a >2x overhead growth trips the gate",
              compare_overheads(orows, bloated, 2.0)
              == ["lcs/multibags+/w4"])

        # 6. baseline discovery picks the highest PR number per suffix.
        for name in ("pr3_replay_throughput.json", "pr10_replay_throughput.json",
                     "pr7_parallel_speedup.json"):
            (td / name).write_text("{}")
        check("latest_baseline picks the highest PR",
              latest_baseline(td, "replay_throughput").name
              == "pr10_replay_throughput.json")
        check("latest_baseline matches the suffix",
              latest_baseline(td, "parallel_speedup").name
              == "pr7_parallel_speedup.json")
        check("latest_baseline returns None when empty",
              latest_baseline(td, "micro_shadow") is None)

    if failures:
        print(f"perf_compare --self-test: FAILED: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("perf_compare --self-test: all checks passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh",
                    help="BENCH_replay_throughput.json from this build")
    ap.add_argument("--history", default="perf",
                    help="directory of prN_*.json snapshots")
    ap.add_argument("--baseline", default=None,
                    help="explicit replay baseline (overrides --history)")
    ap.add_argument("--threshold", type=float, default=0.5,
                    help="flag a backend/store whose relative share fell "
                         "below THRESHOLD x its baseline share (default 0.5 "
                         "— loose on purpose; times on small traces and "
                         "per-op microbenches are noisy)")
    ap.add_argument("--default-store", default=DEFAULT_STORE,
                    help="store whose rows form the replay trajectory")
    ap.add_argument("--fresh-micro", default=None,
                    help="BENCH_micro_shadow.json from this build; also "
                         "guard the per-store microbench trajectory")
    ap.add_argument("--baseline-micro", default=None,
                    help="explicit micro-shadow baseline (overrides "
                         "--history)")
    ap.add_argument("--fresh-parallel", default=None,
                    help="BENCH_parallel_speedup.json from this build; also "
                         "guard the per-worker-count scaling trajectory")
    ap.add_argument("--baseline-parallel", default=None,
                    help="explicit parallel-speedup baseline (overrides "
                         "--history)")
    ap.add_argument("--fresh-frontier", default=None,
                    help="BENCH_sampling_frontier.json from this build; "
                         "guard the detection-vs-throughput frontier (per "
                         "(rate, depth) throughput shares + exact detection "
                         "fractions)")
    ap.add_argument("--baseline-frontier", default=None,
                    help="explicit sampling-frontier baseline (overrides "
                         "--history)")
    ap.add_argument("--fresh-online", default=None,
                    help="BENCH_online_overhead.json from this build; guard "
                         "the online-detection overhead factor per "
                         "(program, backend, workers) point")
    ap.add_argument("--baseline-online", default=None,
                    help="explicit online-overhead baseline (overrides "
                         "--history)")
    ap.add_argument("--self-test", action="store_true",
                    help="run fixture-driven checks of the comparison logic "
                         "and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.fresh is None:
        ap.error("--fresh is required (unless --self-test)")

    failed = False

    baseline_path = args.baseline or latest_baseline(args.history,
                                                     "replay_throughput")
    if baseline_path is None:
        print(f"perf_compare: no pr*_replay_throughput.json under "
              f"'{args.history}' — nothing to compare against")
    else:
        try:
            fresh = load_rows(args.fresh, args.default_store)
            base = load_rows(baseline_path, args.default_store)
        except (OSError, ValueError, KeyError) as e:
            print(f"perf_compare: unreadable snapshot: {e}", file=sys.stderr)
            return 2
        common = sorted(set(fresh) & set(base))
        if not common:
            print("perf_compare: the snapshots share no (trace, backend) "
                  "rows — corpus or backend set changed completely; not "
                  "comparable", file=sys.stderr)
            return 2
        print(f"perf_compare: {args.fresh} vs {baseline_path} "
              f"({len(common)} common rows, threshold {args.threshold})")
        regressions = compare_shares(
            "backend",
            shares({k: base[k] for k in common}, lambda k: k[1]),
            shares({k: fresh[k] for k in common}, lambda k: k[1]),
            args.threshold)
        if regressions:
            print(f"perf_compare: relative replay regression in backend(s): "
                  f"{', '.join(regressions)} (share ratio < "
                  f"{args.threshold}); if intentional, land the new "
                  f"perf/prN snapshot with the change and say why",
                  file=sys.stderr)
            failed = True

    if args.fresh_micro:
        micro_base_path = args.baseline_micro or latest_baseline(
            args.history, "micro_shadow")
        if micro_base_path is None:
            print(f"perf_compare: no pr*_micro_shadow.json under "
                  f"'{args.history}' — skipping the store trajectory")
        else:
            try:
                fresh_m = load_micro_rows(args.fresh_micro)
                base_m = load_micro_rows(micro_base_path)
            except (OSError, ValueError, KeyError) as e:
                print(f"perf_compare: unreadable micro snapshot: {e}",
                      file=sys.stderr)
                return 2
            common_m = sorted(set(fresh_m) & set(base_m))
            if not common_m:
                print("perf_compare: the micro snapshots share no benchmark "
                      "rows — store set changed completely; not comparable",
                      file=sys.stderr)
                return 2
            print(f"perf_compare: {args.fresh_micro} vs {micro_base_path} "
                  f"({len(common_m)} common rows, threshold "
                  f"{args.threshold})")
            regressions = compare_shares(
                "store",
                shares({k: base_m[k] for k in common_m}, micro_store_of),
                shares({k: fresh_m[k] for k in common_m}, micro_store_of),
                args.threshold)
            if regressions:
                print(f"perf_compare: relative micro-shadow regression in "
                      f"store(s): {', '.join(regressions)} (share ratio < "
                      f"{args.threshold}); if intentional, land the new "
                      f"perf/prN snapshot with the change and say why",
                      file=sys.stderr)
                failed = True

    if args.fresh_parallel:
        par_base_path = args.baseline_parallel or latest_baseline(
            args.history, "parallel_speedup")
        if par_base_path is None:
            print(f"perf_compare: no pr*_parallel_speedup.json under "
                  f"'{args.history}' — skipping the parallel trajectory")
        else:
            try:
                fresh_p = load_parallel_rows(args.fresh_parallel)
                base_p = load_parallel_rows(par_base_path)
            except (OSError, ValueError, KeyError) as e:
                print(f"perf_compare: unreadable parallel snapshot: {e}",
                      file=sys.stderr)
                return 2
            common_p = sorted(set(fresh_p) & set(base_p))
            if not common_p:
                print("perf_compare: the parallel snapshots share no "
                      "(trace, backend, workers) rows — sweep changed "
                      "completely; not comparable", file=sys.stderr)
                return 2
            print(f"perf_compare: {args.fresh_parallel} vs {par_base_path} "
                  f"({len(common_p)} common rows, threshold "
                  f"{args.threshold})")
            regressions = compare_shares(
                "workers",
                shares({k: base_p[k] for k in common_p},
                       lambda k: str(k[2])),
                shares({k: fresh_p[k] for k in common_p},
                       lambda k: str(k[2])),
                args.threshold)
            if regressions:
                print(f"perf_compare: parallel detection scaling regressed "
                      f"at worker count(s): {', '.join(regressions)} (share "
                      f"ratio < {args.threshold}); if intentional, land the "
                      f"new perf/prN snapshot with the change and say why",
                      file=sys.stderr)
                failed = True

    if args.fresh_frontier:
        try:
            fresh_f = load_frontier_rows(args.fresh_frontier)
        except (OSError, ValueError, KeyError) as e:
            print(f"perf_compare: unreadable frontier snapshot: {e}",
                  file=sys.stderr)
            return 2
        # Exactness gate first: it needs no baseline and guards correctness,
        # not speed. The rate-1.0/unbounded rows ARE the full detector.
        exact_bad = frontier_exact_violations(fresh_f)
        if exact_bad:
            print(f"perf_compare: full-detection frontier rows missed golden "
                  f"races: {', '.join(str(k) for k in exact_bad)} — the "
                  f"sampling fast path leaked into the exact configuration",
                  file=sys.stderr)
            failed = True
        frontier_base_path = args.baseline_frontier or latest_baseline(
            args.history, "sampling_frontier")
        if frontier_base_path is None:
            print(f"perf_compare: no pr*_sampling_frontier.json under "
                  f"'{args.history}' — skipping the frontier trajectory")
        else:
            try:
                base_f = load_frontier_rows(frontier_base_path)
            except (OSError, ValueError, KeyError) as e:
                print(f"perf_compare: unreadable frontier snapshot: {e}",
                      file=sys.stderr)
                return 2
            common_f = sorted(set(fresh_f) & set(base_f))
            if not common_f:
                print("perf_compare: the frontier snapshots share no "
                      "(trace, rate, depth) rows — sweep changed completely; "
                      "not comparable", file=sys.stderr)
                return 2
            print(f"perf_compare: {args.fresh_frontier} vs "
                  f"{frontier_base_path} ({len(common_f)} common rows, "
                  f"threshold {args.threshold})")
            regressions = compare_shares(
                "rate/depth",
                shares({k: base_f[k]["eps"] for k in common_f},
                       frontier_group),
                shares({k: fresh_f[k]["eps"] for k in common_f},
                       frontier_group),
                args.threshold)
            if regressions:
                print(f"perf_compare: frontier throughput regressed at "
                      f"point(s): {', '.join(regressions)} (share ratio < "
                      f"{args.threshold}); if intentional, land the new "
                      f"perf/prN snapshot with the change and say why",
                      file=sys.stderr)
                failed = True
            drift = frontier_fraction_drift(
                {k: base_f[k] for k in common_f},
                {k: fresh_f[k] for k in common_f})
            if drift:
                print(f"perf_compare: detection fraction drifted at "
                      f"frontier point(s): "
                      f"{', '.join(str(k) for k in drift)} — the seeded "
                      f"sampling decision is deterministic on versioned "
                      f"traces, so this means the sampler or the detector "
                      f"semantics changed", file=sys.stderr)
                failed = True

    if args.fresh_online:
        online_base_path = args.baseline_online or latest_baseline(
            args.history, "online_overhead")
        if online_base_path is None:
            print(f"perf_compare: no pr*_online_overhead.json under "
                  f"'{args.history}' — skipping the online trajectory")
        else:
            try:
                fresh_o = load_online_rows(args.fresh_online)
                base_o = load_online_rows(online_base_path)
            except (OSError, ValueError, KeyError) as e:
                print(f"perf_compare: unreadable online snapshot: {e}",
                      file=sys.stderr)
                return 2
            common_o = sorted(set(fresh_o) & set(base_o))
            if not common_o:
                print("perf_compare: the online snapshots share no "
                      "(program, backend, workers) rows — sweep changed "
                      "completely; not comparable", file=sys.stderr)
                return 2
            # Overhead is lower-is-better: the failure direction is growth,
            # so the same --threshold drives the gate from the other side
            # (default 0.5 -> fail when a point's factor more than doubled).
            limit = 1.0 / args.threshold
            print(f"perf_compare: {args.fresh_online} vs {online_base_path} "
                  f"({len(common_o)} common rows, growth limit "
                  f"{limit:.1f}x)")
            regressions = compare_overheads(
                {k: base_o[k] for k in common_o},
                {k: fresh_o[k] for k in common_o}, limit)
            if regressions:
                print(f"perf_compare: online-detection overhead grew beyond "
                      f"{limit:.1f}x baseline at point(s): "
                      f"{', '.join(regressions)}; if intentional, land the "
                      f"new perf/prN snapshot with the change and say why",
                      file=sys.stderr)
                failed = True

    if failed:
        return 1
    print("perf_compare: no relative regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
