#!/usr/bin/env python3
"""Compare fresh perf snapshots against the perf/ history.

Snapshots come from different machines, so absolute events/sec is not the
signal (perf/README.md): what is comparable across snapshots is each
backend's *relative* standing — its geometric-mean throughput normalized by
the geomean over all backends in the same snapshot. This script computes
that share per backend in the fresh snapshot and in a baseline (by default
the highest-numbered perf/pr*_replay_throughput.json), takes the ratio, and
exits non-zero when any backend's share dropped below --threshold of its
baseline share — i.e. a backend got slower *relative to the others*, which
no machine change explains.

Only rows present in BOTH snapshots (same trace, same backend) measured on
the default shadow store at the default replay batch size participate, so
corpus growth, store sweeps, and --batch-size sweeps never skew the
comparison. Rows without a "store"/"batch" field (older snapshots) count as
default rows.

With --fresh-micro the same relative-share guard also runs over the
BENCH_micro_shadow.json Google-Benchmark snapshot, grouped by shadow store
(the second component of each benchmark name, e.g.
"BM_WriteStepSequential/sharded"): a store whose per-op speed share fell
below the threshold fails the run with the store named.

Usage:
  perf_compare.py --fresh build/BENCH_replay_throughput.json [--history perf]
                  [--baseline FILE] [--threshold 0.5] [--default-store NAME]
                  [--fresh-micro build/BENCH_micro_shadow.json]
                  [--baseline-micro FILE]

Exit codes: 0 ok / no usable baseline, 1 regression, 2 bad invocation.
"""

import argparse
import json
import math
import re
import sys
from pathlib import Path

DEFAULT_STORE = "hashed-page"
DEFAULT_BATCH = 256


def load_rows(path, default_store):
    """(trace, backend) -> events_per_sec for default-store, default-batch
    rows of one replay snapshot.

    Newer snapshots may carry extra row fields ("format" — frdt vs frdtz
    container vs in-memory — or "container" details); those never affect
    matching. Replay throughput is measured after decode, so a trace is the
    same trajectory point whether its artifact was flat or compressed. If a
    snapshot ever benches two artifact forms of the same (trace, backend),
    the first row wins so the pair still maps to one comparable number.
    """
    with open(path) as f:
        snap = json.load(f)
    rows = {}
    for row in snap.get("rows", []):
        if row.get("store", default_store) != default_store:
            continue
        if row.get("batch", DEFAULT_BATCH) != DEFAULT_BATCH:
            continue
        eps = float(row["events_per_sec"])
        if eps > 0:
            rows.setdefault((row["trace"], row["backend"]), eps)
    return rows


def load_micro_rows(path):
    """benchmark name -> per-op speed (1/cpu_time) for iteration rows of a
    Google-Benchmark snapshot."""
    with open(path) as f:
        snap = json.load(f)
    rows = {}
    for b in snap.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        t = float(b["cpu_time"])
        if t > 0:
            rows[b["name"]] = 1.0 / t
    return rows


def micro_store_of(name):
    """BM_WriteStepSequential/sharded/65536 -> sharded."""
    parts = name.split("/")
    return parts[1] if len(parts) > 1 else parts[0]


def latest_baseline(history_dir, suffix):
    """Highest-numbered perf/prN_<suffix>.json, or None."""
    best, best_n = None, -1
    for p in Path(history_dir).glob(f"pr*_{suffix}.json"):
        m = re.match(r"pr(\d+)_", p.name)
        if m and int(m.group(1)) > best_n:
            best, best_n = p, int(m.group(1))
    return best


def geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def shares(rows, group_of):
    """group -> geomean(speed) normalized by the all-group geomean."""
    per_group = {}
    for key, speed in rows.items():
        per_group.setdefault(group_of(key), []).append(speed)
    means = {g: geomean(v) for g, v in per_group.items()}
    scale = geomean(list(means.values()))
    return {g: m / scale for g, m in means.items()}


def compare_shares(label, base_shares, fresh_shares, threshold):
    """Prints the share table; returns the group names that regressed."""
    print(f"  {label:<16} {'base share':>10} {'fresh share':>11} {'ratio':>6}")
    regressions = []
    for group in sorted(base_shares):
        b, f = base_shares[group], fresh_shares[group]
        ratio = f / b
        marker = ""
        if ratio < threshold:
            regressions.append(group)
            marker = "  <-- REGRESSION"
        print(f"  {group:<16} {b:>10.3f} {f:>11.3f} {ratio:>6.2f}{marker}")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", required=True,
                    help="BENCH_replay_throughput.json from this build")
    ap.add_argument("--history", default="perf",
                    help="directory of prN_*.json snapshots")
    ap.add_argument("--baseline", default=None,
                    help="explicit replay baseline (overrides --history)")
    ap.add_argument("--threshold", type=float, default=0.5,
                    help="flag a backend/store whose relative share fell "
                         "below THRESHOLD x its baseline share (default 0.5 "
                         "— loose on purpose; times on small traces and "
                         "per-op microbenches are noisy)")
    ap.add_argument("--default-store", default=DEFAULT_STORE,
                    help="store whose rows form the replay trajectory")
    ap.add_argument("--fresh-micro", default=None,
                    help="BENCH_micro_shadow.json from this build; also "
                         "guard the per-store microbench trajectory")
    ap.add_argument("--baseline-micro", default=None,
                    help="explicit micro-shadow baseline (overrides "
                         "--history)")
    args = ap.parse_args()

    failed = False

    baseline_path = args.baseline or latest_baseline(args.history,
                                                     "replay_throughput")
    if baseline_path is None:
        print(f"perf_compare: no pr*_replay_throughput.json under "
              f"'{args.history}' — nothing to compare against")
    else:
        try:
            fresh = load_rows(args.fresh, args.default_store)
            base = load_rows(baseline_path, args.default_store)
        except (OSError, ValueError, KeyError) as e:
            print(f"perf_compare: unreadable snapshot: {e}", file=sys.stderr)
            return 2
        common = sorted(set(fresh) & set(base))
        if not common:
            print("perf_compare: the snapshots share no (trace, backend) "
                  "rows — corpus or backend set changed completely; not "
                  "comparable", file=sys.stderr)
            return 2
        print(f"perf_compare: {args.fresh} vs {baseline_path} "
              f"({len(common)} common rows, threshold {args.threshold})")
        regressions = compare_shares(
            "backend",
            shares({k: base[k] for k in common}, lambda k: k[1]),
            shares({k: fresh[k] for k in common}, lambda k: k[1]),
            args.threshold)
        if regressions:
            print(f"perf_compare: relative replay regression in backend(s): "
                  f"{', '.join(regressions)} (share ratio < "
                  f"{args.threshold}); if intentional, land the new "
                  f"perf/prN snapshot with the change and say why",
                  file=sys.stderr)
            failed = True

    if args.fresh_micro:
        micro_base_path = args.baseline_micro or latest_baseline(
            args.history, "micro_shadow")
        if micro_base_path is None:
            print(f"perf_compare: no pr*_micro_shadow.json under "
                  f"'{args.history}' — skipping the store trajectory")
        else:
            try:
                fresh_m = load_micro_rows(args.fresh_micro)
                base_m = load_micro_rows(micro_base_path)
            except (OSError, ValueError, KeyError) as e:
                print(f"perf_compare: unreadable micro snapshot: {e}",
                      file=sys.stderr)
                return 2
            common_m = sorted(set(fresh_m) & set(base_m))
            if not common_m:
                print("perf_compare: the micro snapshots share no benchmark "
                      "rows — store set changed completely; not comparable",
                      file=sys.stderr)
                return 2
            print(f"perf_compare: {args.fresh_micro} vs {micro_base_path} "
                  f"({len(common_m)} common rows, threshold "
                  f"{args.threshold})")
            regressions = compare_shares(
                "store",
                shares({k: base_m[k] for k in common_m}, micro_store_of),
                shares({k: fresh_m[k] for k in common_m}, micro_store_of),
                args.threshold)
            if regressions:
                print(f"perf_compare: relative micro-shadow regression in "
                      f"store(s): {', '.join(regressions)} (share ratio < "
                      f"{args.threshold}); if intentional, land the new "
                      f"perf/prN snapshot with the change and say why",
                      file=sys.stderr)
                failed = True

    if failed:
        return 1
    print("perf_compare: no relative regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
