// frd-serve — the FutureRD detector as a long-running ingest daemon.
//
//   frd-serve --socket PATH [--workers N] [--budget-mb N] [--batch N]
//
// Listens on a Unix-domain socket for framed trace streams (serve/protocol),
// replays each through a pooled, recycled frd::session, and streams races
// back in encounter order. Clients: `frd-trace submit TRACE --socket PATH`
// ships a trace and prints the report; `frd-trace shutdown --socket PATH`
// stops the daemon (as do SIGINT/SIGTERM).
//
// Per-stream failures (malformed frames, unreadable traces, blown memory
// budgets, disconnects) are answered with structured error frames and never
// take the daemon down; the readiness line on stdout is the scripting
// handshake ("listening on ..." means submissions will be accepted).
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "support/flags.hpp"

int main(int argc, char** argv) {
  frd::flag_parser flags(argc, argv);
  auto& socket_path =
      flags.string_flag("socket", "", "Unix socket path to listen on (required)");
  auto& workers = flags.int_flag(
      "workers", static_cast<std::int64_t>(
                     std::max(2u, std::thread::hardware_concurrency() / 2)),
      "replay worker threads");
  auto& budget_mb = flags.int_flag(
      "budget-mb", 0,
      "per-stream memory budget in MiB, 0 = unlimited (clients may lower it)");
  auto& batch = flags.int_flag(
      "batch", 0, "replay batch size (0 = auto: 256 serial, 4096 parallel)");
  auto& detect_workers = flags.int_flag(
      "detect-workers", 1,
      "parallel detection workers per stream; applies to sharded-store "
      "streams only (reports stay byte-identical)");
  auto& sample_rate = flags.double_flag(
      "sample-rate", 1.0,
      "detect on this fraction of each stream's accesses, seeded and "
      "reproducible; (0, 1], 1.0 = full detection (daemon-wide)");
  auto& sample_seed =
      flags.int_flag("sample-seed", 1, "sampling decision seed");
  auto& history_depth = flags.int_flag(
      "history-depth", 0,
      "retained readers per granule; 0 = unbounded, N >= 1 keeps the most "
      "recent N (short-race windows, daemon-wide)");
  flags.parse();

  if (socket_path.empty()) {
    std::fprintf(stderr, "frd-serve: --socket is required\n%s",
                 flags.usage().c_str());
    return 2;
  }
  if (workers < 1 || workers > 256) {
    std::fprintf(stderr, "frd-serve: --workers must be in [1, 256]\n");
    return 2;
  }
  if (budget_mb < 0 || batch < 0) {
    std::fprintf(stderr, "frd-serve: --budget-mb must be >= 0, --batch >= 0\n");
    return 2;
  }
  if (detect_workers < 1 || detect_workers > 256) {
    std::fprintf(stderr, "frd-serve: --detect-workers must be in [1, 256]\n");
    return 2;
  }
  if (!(sample_rate > 0.0 && sample_rate <= 1.0)) {
    std::fprintf(stderr, "frd-serve: --sample-rate must be in (0, 1]\n");
    return 2;
  }
  if (history_depth < 0) {
    std::fprintf(stderr,
                 "frd-serve: --history-depth must be >= 0 (0 = unbounded)\n");
    return 2;
  }

  // Signals: a dead client must surface as EPIPE (handled per stream), not
  // SIGPIPE; INT/TERM are collected on a dedicated thread via sigwait so the
  // stop path runs in a normal context, not a handler.
  std::signal(SIGPIPE, SIG_IGN);
  sigset_t stop_signals;
  sigemptyset(&stop_signals);
  sigaddset(&stop_signals, SIGINT);
  sigaddset(&stop_signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);

  frd::serve::server_options opt;
  opt.socket_path = socket_path;
  opt.workers = static_cast<unsigned>(workers);
  opt.default_budget = static_cast<std::uint64_t>(budget_mb) << 20;
  opt.replay_batch = static_cast<std::size_t>(batch);
  opt.detect_workers = static_cast<unsigned>(detect_workers);
  opt.sample_rate = sample_rate;
  opt.sample_seed = static_cast<std::uint64_t>(sample_seed);
  opt.history_depth = history_depth == 0
                          ? frd::shadow::kUnboundedHistory
                          : static_cast<std::size_t>(history_depth);

  frd::serve::server srv(opt);
  try {
    srv.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "frd-serve: %s\n", e.what());
    return 1;
  }

  std::thread signal_thread([&] {
    int sig = 0;
    if (sigwait(&stop_signals, &sig) == 0) srv.request_stop();
  });

  if (opt.default_budget != 0) {
    std::printf("frd-serve listening on %s (%u workers, %lld MiB/stream)\n",
                socket_path.c_str(), opt.workers,
                static_cast<long long>(budget_mb));
  } else {
    std::printf("frd-serve listening on %s (%u workers, unlimited budget)\n",
                socket_path.c_str(), opt.workers);
  }
  std::fflush(stdout);

  srv.wait();
  srv.stop();
  // The signal thread may still be parked in sigwait (shutdown came over the
  // wire): poke it with the signal it is waiting for.
  pthread_kill(signal_thread.native_handle(), SIGTERM);
  signal_thread.join();

  const frd::serve::server_stats st = srv.stats();
  std::printf("frd-serve stopped: %llu connections, %llu streams done, "
              "%llu failed\n",
              static_cast<unsigned long long>(st.connections),
              static_cast<unsigned long long>(st.streams_completed),
              static_cast<unsigned long long>(st.streams_failed));
  return 0;
}
