// Template-matching point tracker (the Heart Wall kernel).
//
// For each sample point: lift a (2*tmpl_rad+1)^2 template around its previous
// position in the previous frame, then scan a (2*search_rad+1)^2 window in
// the current frame for the position minimizing the sum of squared
// differences. Every pixel the kernel touches is announced through the hook
// policy H — this is where the detector's per-access overhead accrues for
// the heartwall benchmark.
#pragma once

#include <limits>

#include "detect/detector.hpp"
#include "image/phantom.hpp"

namespace frd::image {

// The template is lifted around `tmpl_at` in the previous frame; candidate
// positions scan a window around `search_center` in the current frame. The
// two are distinct so a smoothed search start (heartwall's general variant)
// cannot contaminate the template with off-wall content.
template <typename H>
point track_point(const frame& prev, const frame& cur, point tmpl_at,
                  point search_center, int tmpl_rad, int search_rad) {
  const point p = tmpl_at;
  float best = std::numeric_limits<float>::max();
  point best_pos = p;

  for (int oy = -search_rad; oy <= search_rad; ++oy) {
    for (int ox = -search_rad; ox <= search_rad; ++ox) {
      const int cx = search_center.x + ox, cy = search_center.y + oy;
      float ssd = 0;
      bool valid = true;
      for (int ty = -tmpl_rad; valid && ty <= tmpl_rad; ++ty) {
        for (int tx = -tmpl_rad; tx <= tmpl_rad; ++tx) {
          const int px = p.x + tx, py = p.y + ty;
          const int qx = cx + tx, qy = cy + ty;
          if (!prev.contains(px, py) || !cur.contains(qx, qy)) {
            valid = false;
            break;
          }
          const float a =
              detect::hooks::ld<H>(prev.pixels[prev.index(px, py)]);
          const float b = detect::hooks::ld<H>(cur.pixels[cur.index(qx, qy)]);
          const float d = a - b;
          ssd += d * d;
        }
      }
      if (valid && ssd < best) {
        best = ssd;
        best_pos = point{cx, cy};
      }
    }
  }
  return best_pos;
}

template <typename H>
point track_point(const frame& prev, const frame& cur, point p, int tmpl_rad,
                  int search_rad) {
  return track_point<H>(prev, cur, p, p, tmpl_rad, search_rad);
}

}  // namespace frd::image
