// track_point is a hook-policy template (tracking.hpp); this TU anchors the
// library and hosts non-template helpers if the tracker grows them.
#include "image/tracking.hpp"
