// Synthetic ultrasound sequence for the Heart Wall workload.
//
// Rodinia's heartwall tracks sample points on the inner/outer heart wall
// across ultrasound frames; the inputs are proprietary-ish image files we
// cannot ship. This phantom generates the same *shape* of work: a bright
// deformable ring (the wall) whose radius pulses over time, over a dark
// speckled background. Tracking cost per point per frame — the thing the
// detector's overhead scales with — is identical to tracking real images
// (DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <vector>

namespace frd::image {

struct frame {
  int width = 0;
  int height = 0;
  std::vector<float> pixels;  // row-major, [0,1] grayscale

  float at(int x, int y) const { return pixels[static_cast<std::size_t>(y) * width + x]; }
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * width + x;
  }
  bool contains(int x, int y) const {
    return x >= 0 && x < width && y >= 0 && y < height;
  }
};

struct point {
  int x = 0;
  int y = 0;
};

class phantom_sequence {
 public:
  phantom_sequence(int width, int height, int n_points, std::uint64_t seed);

  // Frame at time t (deterministic in (seed, t)).
  frame make_frame(int t) const;

  // Sample points on the wall ring at t = 0.
  std::vector<point> initial_points() const;

  // Ground-truth wall radius at time t (tests verify tracking quality).
  double radius_at(int t) const;

  int width() const { return width_; }
  int height() const { return height_; }

 private:
  int width_;
  int height_;
  int n_points_;
  std::uint64_t seed_;
  double base_radius_;
};

}  // namespace frd::image
