#include "image/phantom.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/prng.hpp"

namespace frd::image {

namespace {
constexpr double kPulseAmplitude = 0.10;  // ±10% radius swing
constexpr double kPulsePeriod = 16.0;     // frames per heartbeat
constexpr double kWallThickness = 3.0;    // pixels
constexpr double kPi = 3.14159265358979323846;
}  // namespace

phantom_sequence::phantom_sequence(int width, int height, int n_points,
                                   std::uint64_t seed)
    : width_(width), height_(height), n_points_(n_points), seed_(seed),
      base_radius_(0.30 * std::min(width, height)) {
  FRD_CHECK_MSG(width >= 32 && height >= 32, "phantom frames are >= 32x32");
  FRD_CHECK_MSG(n_points >= 1, "need at least one sample point");
}

double phantom_sequence::radius_at(int t) const {
  return base_radius_ * (1.0 + kPulseAmplitude * std::sin(2.0 * kPi * t / kPulsePeriod));
}

frame phantom_sequence::make_frame(int t) const {
  frame f;
  f.width = width_;
  f.height = height_;
  f.pixels.assign(static_cast<std::size_t>(width_) * height_, 0.0f);

  // Speckle noise, deterministic per (seed, t) but correlated across frames
  // (same base field + per-frame jitter) like real ultrasound speckle.
  prng base(seed_);
  prng jitter(seed_ * 7919 + static_cast<std::uint64_t>(t) + 1);

  const double cx = width_ / 2.0, cy = height_ / 2.0;
  const double r = radius_at(t);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const double speckle =
          0.12 * base.uniform01() + 0.04 * jitter.uniform01();
      const double dx = x - cx, dy = y - cy;
      const double dist = std::sqrt(dx * dx + dy * dy);
      // Bright wall band with a soft (Gaussian) profile.
      const double d = (dist - r) / kWallThickness;
      const double wall = 0.8 * std::exp(-d * d);
      const double v = speckle + wall;
      f.pixels[f.index(x, y)] = static_cast<float>(v > 1.0 ? 1.0 : v);
    }
  }
  return f;
}

std::vector<point> phantom_sequence::initial_points() const {
  std::vector<point> pts;
  pts.reserve(static_cast<std::size_t>(n_points_));
  const double cx = width_ / 2.0, cy = height_ / 2.0;
  const double r = radius_at(0);
  for (int i = 0; i < n_points_; ++i) {
    const double theta = 2.0 * kPi * i / n_points_;
    pts.push_back(point{static_cast<int>(cx + r * std::cos(theta)),
                        static_cast<int>(cy + r * std::sin(theta))});
  }
  return pts;
}

}  // namespace frd::image
