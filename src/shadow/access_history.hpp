// Access history: per-location reader/writer shadow state (paper §3, §6).
//
// For every 4-byte granule the detector keeps
//   * last-writer(l): the single most recent writer strand, and
//   * reader-list(l): arbitrarily many reader strands. Futures break the
//     constant-reader property of series-parallel detectors, so the list
//     must grow; it is emptied whenever a write commits (every later strand
//     parallel to a purged reader is also parallel to the new writer, so no
//     race is lost — §3).
//
// Layout follows the paper's "two-level direct-mapped cache": the high bits
// of addr>>2 select a second-level page, the low bits index into it. The
// paper's artifact used a flat top-level table; with 47-bit user address
// spaces we key pages by a hash map instead and keep a one-entry hot-page
// cache, which preserves the two-level lookup cost on the fast path
// (documented substitution, DESIGN.md §2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/events.hpp"

namespace frd::shadow {

using rt::strand_id;

// Reader list with small inline capacity; overflow spills to a heap vector
// that is retained (cleared, not freed) across writer purges so steady-state
// writes allocate nothing.
class granule_record {
 public:
  granule_record() = default;
  granule_record(const granule_record&) = delete;
  granule_record& operator=(const granule_record&) = delete;
  ~granule_record() { delete overflow_; }

  strand_id writer = rt::kNoStrand;

  std::size_t reader_count() const { return n_readers_; }
  bool has_readers() const { return n_readers_ != 0; }

  // Most recently appended reader (kNoStrand when empty). The detector uses
  // it to dedupe consecutive reads by the same strand — in a serial
  // execution a strand's reads of l are contiguous, so checking the tail is
  // a complete dedupe.
  strand_id last_reader() const {
    if (n_readers_ == 0) return rt::kNoStrand;
    if (n_readers_ <= kInline) return inline_[n_readers_ - 1];
    return (*overflow_)[n_readers_ - kInline - 1];
  }

  void append_reader(strand_id s) {
    if (n_readers_ < kInline) {
      inline_[n_readers_++] = s;
      return;
    }
    if (overflow_ == nullptr) overflow_ = new std::vector<strand_id>();
    overflow_->push_back(s);
    ++n_readers_;
  }

  void clear_readers() {
    n_readers_ = 0;
    if (overflow_ != nullptr) overflow_->clear();
  }

  template <typename Fn>
  void for_each_reader(Fn&& fn) const {
    const std::size_t inl = n_readers_ < kInline ? n_readers_ : kInline;
    for (std::size_t i = 0; i < inl; ++i) fn(inline_[i]);
    if (n_readers_ > kInline) {
      for (std::size_t i = 0; i < n_readers_ - kInline; ++i)
        fn((*overflow_)[i]);
    }
  }

 private:
  static constexpr std::size_t kInline = 3;
  std::uint32_t n_readers_ = 0;
  strand_id inline_[kInline] = {};
  std::vector<strand_id>* overflow_ = nullptr;
};

class access_history {
 public:
  // page_bits selects the second-level page size: 2^page_bits granules.
  // granule_shift is log2 of the granule size in bytes (2 = the paper's
  // 4-byte granules); plumbed from session::options::granule.
  explicit access_history(unsigned page_bits = 16, unsigned granule_shift = 2);
  access_history(const access_history&) = delete;
  access_history& operator=(const access_history&) = delete;

  std::uintptr_t granule_of(std::uintptr_t addr) const {
    return addr >> granule_shift_;
  }
  unsigned granule_shift() const { return granule_shift_; }

  // Shadow record for the granule containing addr; allocates the page on
  // first touch.
  granule_record& record_for(std::uintptr_t addr);

  // Lookup without allocation (tests / stats); null if never touched.
  const granule_record* find(std::uintptr_t addr) const;

  std::size_t page_count() const { return pages_.size(); }
  std::size_t bytes_reserved() const;

 private:
  struct page {
    explicit page(std::size_t n) : records(n) {}
    std::vector<granule_record> records;
  };

  page& page_for(std::uintptr_t page_id);

  const unsigned page_bits_;
  const unsigned granule_shift_;
  const std::uintptr_t page_mask_;
  // Hot-page cache: benchmark kernels touch long runs within one page.
  std::uintptr_t cached_id_ = static_cast<std::uintptr_t>(-1);
  page* cached_page_ = nullptr;
  std::unordered_map<std::uintptr_t, std::unique_ptr<page>> pages_;
};

}  // namespace frd::shadow
