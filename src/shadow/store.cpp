#include "shadow/store.hpp"

#include <algorithm>

#include "shadow/compact_store.hpp"
#include "shadow/hashed_page_store.hpp"
#include "shadow/sharded_store.hpp"
#include "support/check.hpp"

namespace frd::shadow {

void validate(const store_config& cfg) {
  if (cfg.page_bits < 4 || cfg.page_bits > 24) {
    throw store_error("shadow_page_bits must be in [4, 24], got " +
                      std::to_string(cfg.page_bits));
  }
  if (cfg.granule_shift > 12) {
    throw store_error("unreasonable granule size (shift " +
                      std::to_string(cfg.granule_shift) + " > 12)");
  }
  if (cfg.shard_bits > 10) {
    throw store_error("shadow_shard_bits must be in [0, 10], got " +
                      std::to_string(cfg.shard_bits) +
                      " (that would be > 1024 shards)");
  }
  if (cfg.history_depth == 0) {
    throw store_error(
        "shadow_history_depth must be >= 1 (a depth-0 store could never "
        "record a reader); leave it unset for the full unbounded history");
  }
}

store_registry& store_registry::instance() {
  static store_registry reg;
  return reg;
}

store_registry::store_registry() {
  add({.name = std::string(kDefaultStore),
       .description = "two-level hashed page table + hot-page cache "
                      "(the paper's layout; the baseline)",
       .sharded = false,
       .make = [](const store_config& cfg) -> std::unique_ptr<store> {
         return std::make_unique<hashed_page_store>(cfg);
       }});
  add({.name = "sharded",
       .description = "2^shard_bits address-hashed shards, each with its own "
                      "page table, hot-page cache, and arena",
       .sharded = true,
       .make = [](const store_config& cfg) -> std::unique_ptr<store> {
         return std::make_unique<sharded_store>(cfg);
       }});
  add({.name = "compact",
       .description = "structure-of-arrays pages with arena-chained reader "
                      "overflow (no per-record heap storage)",
       .sharded = false,
       .make = [](const store_config& cfg) -> std::unique_ptr<store> {
         return std::make_unique<compact_store>(cfg);
       }});
}

void store_registry::add(store_info info) {
  FRD_CHECK_MSG(!info.name.empty() && info.make != nullptr,
                "store registration needs a name and a factory");
  FRD_CHECK_MSG(find(info.name) == nullptr, "store name already registered");
  infos_.push_back(std::move(info));
}

const store_info* store_registry::find(std::string_view name) const {
  for (const store_info& i : infos_)
    if (i.name == name) return &i;
  return nullptr;
}

const store_info& store_registry::at(std::string_view name) const {
  if (const store_info* i = find(name)) return *i;
  std::string msg = "unknown shadow store '";
  msg += name;
  msg += "'; registered stores:";
  for (const std::string& n : names()) {
    msg += ' ';
    msg += n;
  }
  throw store_error(msg);
}

std::unique_ptr<store> store_registry::create(std::string_view name,
                                              const store_config& cfg) const {
  const store_info& info = at(name);
  validate(cfg);
  return info.make(cfg);
}

std::vector<std::string> store_registry::names() const {
  std::vector<std::string> out;
  out.reserve(infos_.size());
  for (const store_info& i : infos_) out.push_back(i.name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace frd::shadow
