#include "shadow/compact_store.hpp"

namespace frd::shadow {

compact_store::compact_store(const store_config& cfg)
    : store(cfg),
      page_bits_(cfg.page_bits),
      page_mask_((std::uintptr_t{1} << cfg.page_bits) - 1) {}

compact_store::slot compact_store::slot_for(std::uintptr_t addr) {
  const std::uintptr_t g = granule_of(addr);
  const std::uintptr_t page_id = g >> page_bits_;
  if (page_id != cached_id_) {
    auto [it, inserted] = pages_.try_emplace(page_id);
    if (inserted)
      it->second = std::make_unique<page>(std::size_t{1} << page_bits_);
    cached_id_ = page_id;
    cached_page_ = it->second.get();
  }
  return {cached_page_, static_cast<std::size_t>(g & page_mask_)};
}

strand_id compact_store::last_reader(const page& pg, std::size_t i) const {
  const std::uint32_t n = pg.n_readers[i];
  if (n == 0) return rt::kNoStrand;
  if (n == 1) return pg.r0[i];
  if (n == 2) return pg.r1[i];
  // Chains fill kNodeCap slots per node, so the newest reader sits at
  // (chain length - 1) mod kNodeCap in the tail node.
  return pg.tail[i]->vals[(n - kInline - 1) % kNodeCap];
}

void compact_store::append_reader(page& pg, std::size_t i, strand_id s) {
  const std::uint32_t n = pg.n_readers[i]++;
  if (n == 0) {
    pg.r0[i] = s;
    return;
  }
  if (n == 1) {
    pg.r1[i] = s;
    return;
  }
  const std::size_t over = n - kInline;  // readers already chained
  const std::size_t at = over % kNodeCap;
  if (at == 0) {  // chain empty or tail full: link a fresh node
    overflow_node* node;
    if (free_ != nullptr) {
      node = free_;
      free_ = node->next;
    } else {
      node = overflow_.create<overflow_node>();
    }
    node->next = nullptr;
    if (pg.tail[i] == nullptr) {
      pg.head[i] = node;
    } else {
      pg.tail[i]->next = node;
    }
    pg.tail[i] = node;
  }
  pg.tail[i]->vals[at] = s;
}

// Bounded history's drop-oldest over the SoA planes: r0 <- r1, r1 <- the
// chain's first value, then every chained value shifts one slot toward the
// head (nodes stay full-except-last, the invariant append_reader relies
// on). An emptied tail node unlinks to the free list; the predecessor walk
// is O(chain length), which bounded mode keeps at the configured depth.
void compact_store::drop_oldest_reader(page& pg, std::size_t i) {
  const std::uint32_t n = pg.n_readers[i];
  if (n == 0) return;
  if (n >= 2) pg.r0[i] = pg.r1[i];
  if (n > kInline) {
    pg.r1[i] = pg.head[i]->vals[0];
    const std::size_t chained = n - kInline;
    std::size_t left = chained;
    for (overflow_node* node = pg.head[i]; left > 0; node = node->next) {
      const std::size_t m = left < kNodeCap ? left : kNodeCap;
      for (std::size_t j = 1; j < m; ++j) node->vals[j - 1] = node->vals[j];
      if (left > kNodeCap) node->vals[kNodeCap - 1] = node->next->vals[0];
      left -= m;
    }
    if (chained == 1) {  // the only node emptied
      pg.head[i]->next = free_;
      free_ = pg.head[i];
      pg.head[i] = nullptr;
      pg.tail[i] = nullptr;
    } else if ((chained - 1) % kNodeCap == 0) {  // the tail node emptied
      overflow_node* prev = pg.head[i];
      while (prev->next != pg.tail[i]) prev = prev->next;
      pg.tail[i]->next = free_;
      free_ = pg.tail[i];
      prev->next = nullptr;
      pg.tail[i] = prev;
    }
  }
  --pg.n_readers[i];
}

void compact_store::purge_readers(page& pg, std::size_t i) {
  pg.n_readers[i] = 0;
  if (pg.head[i] != nullptr) {
    pg.tail[i]->next = free_;
    free_ = pg.head[i];
    pg.head[i] = nullptr;
    pg.tail[i] = nullptr;
  }
}

template <typename Fn>
void compact_store::for_each_reader(const page& pg, std::size_t i,
                                    Fn&& fn) const {
  const std::uint32_t n = pg.n_readers[i];
  if (n == 0) return;
  fn(pg.r0[i]);
  if (n == 1) return;
  fn(pg.r1[i]);
  std::size_t remaining = n - kInline;
  for (const overflow_node* node = pg.head[i]; remaining > 0;
       node = node->next) {
    const std::size_t m = remaining < kNodeCap ? remaining : kNodeCap;
    for (std::size_t j = 0; j < m; ++j) fn(node->vals[j]);
    remaining -= m;
  }
}

strand_id compact_store::read_step(std::uintptr_t addr, strand_id reader) {
  const slot s = slot_for(addr);
  const strand_id prior = s.pg->writer[s.i];
  if (prior != reader && last_reader(*s.pg, s.i) != reader) {
    if (s.pg->n_readers[s.i] >= history_depth()) drop_oldest_reader(*s.pg, s.i);
    append_reader(*s.pg, s.i, reader);
  }
  return prior;
}

void compact_store::write_step(std::uintptr_t addr, strand_id writer,
                               function_ref<void(strand_id, bool)> prior) {
  const slot s = slot_for(addr);
  if (s.pg->writer[s.i] != rt::kNoStrand)
    prior(s.pg->writer[s.i], /*is_write=*/true);
  for_each_reader(*s.pg, s.i,
                  [&](strand_id r) { prior(r, /*is_write=*/false); });
  purge_readers(*s.pg, s.i);
  s.pg->writer[s.i] = writer;
}

store::granule_state compact_store::peek(std::uintptr_t addr) const {
  const std::uintptr_t g = granule_of(addr);
  auto it = pages_.find(g >> page_bits_);
  if (it == pages_.end()) return {};
  const page& pg = *it->second;
  const std::size_t i = g & page_mask_;
  granule_state out;
  out.touched = true;
  out.writer = pg.writer[i];
  out.readers.reserve(pg.n_readers[i]);
  for_each_reader(pg, i, [&](strand_id r) { out.readers.push_back(r); });
  return out;
}

std::size_t compact_store::bytes_reserved() const {
  // Per-granule plane bytes: writer + count + r0 + r1 + head + tail.
  constexpr std::size_t kPlaneBytes = 4 * sizeof(strand_id) +
                                      2 * sizeof(overflow_node*);
  return pages_.size() * (std::size_t{1} << page_bits_) * kPlaneBytes +
         overflow_.bytes_allocated();
}

}  // namespace frd::shadow
