// sharded store: N address-hashed shards, each a self-contained shadow.
//
// The page id (granule >> page_bits) is spread over 2^shard_bits shards by a
// Fibonacci multiplicative hash; each shard owns its own page table, its own
// one-entry hot-page cache, and its own arena that page storage is carved
// from. Nothing is shared between shards, which is the point: a parallel
// detector can hand each shard its own lock (or its own worker) and the §3
// protocol runs shard-local — the ROADMAP's parallel-detection item builds
// directly on this partition. Hashing by page id (not granule) keeps the
// hot-page cache effective: a kernel streaming through one page stays in one
// shard.
//
// Records live in arena blocks (pointer-stable, allocation-free after first
// touch of a page); the shard destructor runs the record destructors the
// arena deliberately does not.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "shadow/store.hpp"
#include "support/arena.hpp"

namespace frd::shadow {

class sharded_store final : public store {
 public:
  explicit sharded_store(const store_config& cfg);
  ~sharded_store() override;

  std::string_view name() const override { return "sharded"; }

  strand_id read_step(std::uintptr_t addr, strand_id reader) override {
    return read_step_on(record_for(addr), reader);
  }
  void write_step(std::uintptr_t addr, strand_id writer,
                  function_ref<void(strand_id, bool)> prior) override {
    write_step_on(record_for(addr), writer, prior);
  }
  granule_state peek(std::uintptr_t addr) const override;

  std::size_t page_count() const override;
  std::size_t bytes_reserved() const override;
  std::size_t shard_count() const override { return shards_.size(); }

  // Which shard the granule containing addr lands in — the parallel
  // detector's partition function (and the distribution tests').
  std::size_t shard_of(std::uintptr_t addr) const {
    return shard_of_page(granule_of(addr) >> page_bits_);
  }
  // Materialized pages per shard, for balance diagnostics.
  std::vector<std::size_t> shard_page_counts() const;

  // Worker-phase bracket for the parallel detector (DESIGN.md "Parallel
  // detection"): between begin and end, workers mutate disjoint shard
  // groups concurrently, so every cross-shard walk — page_count(),
  // bytes_reserved(), shard_page_counts(), peek() — would be a data race
  // against worker-local mutation. Those entry points throw store_error
  // while the phase is open; call them at epoch barriers only (the detector
  // closes the phase before every flush, so memory_stats() and the serve
  // budget checks always observe a quiescent store).
  void begin_parallel_mutation();
  void end_parallel_mutation();

 private:
  struct shard {
    std::unordered_map<std::uintptr_t, granule_record*> pages;
    arena storage;
    std::uintptr_t cached_id = static_cast<std::uintptr_t>(-1);
    granule_record* cached_page = nullptr;
  };

  std::size_t shard_of_page(std::uintptr_t page_id) const {
    if (shard_bits_ == 0) return 0;
    // Hash in 64 bits regardless of the host's pointer width (replay
    // supports 32-bit hosts; a narrower multiply would also shift by more
    // than the value's width below).
    const std::uint64_t h =
        static_cast<std::uint64_t>(page_id) * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(h >> (64 - shard_bits_));
  }

  granule_record& record_for(std::uintptr_t addr);
  void require_quiescent(const char* what) const;

  const unsigned page_bits_;
  const unsigned shard_bits_;
  const std::uintptr_t page_mask_;
  std::vector<shard> shards_;
  std::atomic<bool> mutating_{false};
};

}  // namespace frd::shadow
