#include "shadow/hashed_page_store.hpp"

namespace frd::shadow {

hashed_page_store::hashed_page_store(const store_config& cfg)
    : store(cfg),
      page_bits_(cfg.page_bits),
      page_mask_((std::uintptr_t{1} << cfg.page_bits) - 1) {}

hashed_page_store::page& hashed_page_store::page_for(std::uintptr_t page_id) {
  if (page_id == cached_id_) return *cached_page_;
  auto [it, inserted] = pages_.try_emplace(page_id);
  if (inserted)
    it->second = std::make_unique<page>(std::size_t{1} << page_bits_);
  cached_id_ = page_id;
  cached_page_ = it->second.get();
  return *cached_page_;
}

granule_record& hashed_page_store::record_for(std::uintptr_t addr) {
  const std::uintptr_t g = granule_of(addr);
  return page_for(g >> page_bits_).records[g & page_mask_];
}

const granule_record* hashed_page_store::find(std::uintptr_t addr) const {
  const std::uintptr_t g = granule_of(addr);
  auto it = pages_.find(g >> page_bits_);
  if (it == pages_.end()) return nullptr;
  return &it->second->records[g & page_mask_];
}

std::size_t hashed_page_store::bytes_reserved() const {
  return pages_.size() * (std::size_t{1} << page_bits_) *
         sizeof(granule_record);
}

}  // namespace frd::shadow
