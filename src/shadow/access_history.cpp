#include "shadow/access_history.hpp"

#include "support/check.hpp"

namespace frd::shadow {

access_history::access_history(unsigned page_bits, unsigned granule_shift)
    : page_bits_(page_bits),
      granule_shift_(granule_shift),
      page_mask_((std::uintptr_t{1} << page_bits) - 1) {
  FRD_CHECK_MSG(page_bits >= 4 && page_bits <= 24, "unreasonable page size");
  FRD_CHECK_MSG(granule_shift <= 12, "unreasonable granule size");
}

access_history::page& access_history::page_for(std::uintptr_t page_id) {
  if (page_id == cached_id_) return *cached_page_;
  auto [it, inserted] = pages_.try_emplace(page_id);
  if (inserted)
    it->second = std::make_unique<page>(std::size_t{1} << page_bits_);
  cached_id_ = page_id;
  cached_page_ = it->second.get();
  return *cached_page_;
}

granule_record& access_history::record_for(std::uintptr_t addr) {
  const std::uintptr_t g = granule_of(addr);
  return page_for(g >> page_bits_).records[g & page_mask_];
}

const granule_record* access_history::find(std::uintptr_t addr) const {
  const std::uintptr_t g = granule_of(addr);
  auto it = pages_.find(g >> page_bits_);
  if (it == pages_.end()) return nullptr;
  return &it->second->records[g & page_mask_];
}

std::size_t access_history::bytes_reserved() const {
  return pages_.size() * (std::size_t{1} << page_bits_) * sizeof(granule_record);
}

}  // namespace frd::shadow
