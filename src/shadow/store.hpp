// shadow::store — the pluggable shadow-memory layer (paper §3, §6).
//
// The detector spends most of a full-detection run in the per-granule shadow
// lookup, so the layout of that state is a scaling lever of its own,
// independent of the reachability backend. This interface pins down the §3
// access protocol as two store operations — one virtual call per memory
// access — and lets implementations choose their layout:
//
//   hashed-page   the paper's two-level direct-mapped scheme with pages
//                 keyed by a hash map and a one-entry hot-page cache
//                 (the baseline; access_history's old layout).
//   sharded       N address-hashed shards, each with its own page table,
//                 hot-page cache, and arena — the address space partition
//                 a future parallel detector will hand one lock/thread per
//                 shard (store_config::shard_bits sizes N).
//   compact       structure-of-arrays pages (hot writer/count planes split
//                 from reader planes) with unique_ptr-free overflow chains
//                 in a support arena.
//
// Stores register by name in a string-keyed store_registry mirroring the
// backend_registry; frd::session resolves session::options::shadow_store at
// construction. Every store must be observationally identical: the corpus
// conformance suite replays every (entry × backend × store) triple against
// the same goldens.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "shadow/granule_record.hpp"
#include "support/function_ref.hpp"

namespace frd::shadow {

// Raised on unknown store names and out-of-range configurations. The message
// lists the registered names (like detect::backend_error does for backends).
class store_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// history_depth sentinel: keep the full §3 reader list (the default).
inline constexpr std::size_t kUnboundedHistory = static_cast<std::size_t>(-1);

struct store_config {
  // Second-level page size: 2^page_bits granules per page; [4, 24].
  unsigned page_bits = 16;
  // log2 of the granule size in bytes (2 = the paper's 4-byte granules).
  unsigned granule_shift = 2;
  // Sharded stores only: 2^shard_bits address-hashed shards; [0, 10].
  unsigned shard_bits = 4;
  // Retained readers per granule. kUnboundedHistory keeps the full §3
  // reader list; a finite depth >= 1 keeps only the `depth` most recent
  // readers (drop-oldest on append), bounding memory and purge cost at the
  // cost of missing read-write races whose read fell out of the window
  // (short-race-window detection, DESIGN.md §9). Depth 0 is a store_error.
  std::size_t history_depth = kUnboundedHistory;
};

// Throws store_error when cfg is outside the ranges above.
void validate(const store_config& cfg);

class store {
 public:
  explicit store(const store_config& cfg)
      : granule_shift_(cfg.granule_shift),
        history_depth_(cfg.history_depth) {}
  virtual ~store() = default;
  store(const store&) = delete;
  store& operator=(const store&) = delete;

  std::uintptr_t granule_of(std::uintptr_t addr) const {
    return addr >> granule_shift_;
  }
  unsigned granule_shift() const { return granule_shift_; }
  // Retained readers per granule (kUnboundedHistory = the full §3 list).
  std::size_t history_depth() const { return history_depth_; }

  virtual std::string_view name() const = 0;

  // The §3 read step on the granule containing addr: returns the granule's
  // last writer *before* this read (kNoStrand when none) for the caller's
  // race check, and appends `reader` to the reader list unless the serial
  // dedupe applies (the granule's writer or tail reader is already
  // `reader`). Allocates the granule's page on first touch.
  virtual strand_id read_step(std::uintptr_t addr, strand_id reader) = 0;

  // The §3 write step on the granule containing addr: invokes `prior` once
  // per recorded conflicting access — first the previous writer (is_write =
  // true, skipped when there is none), then every recorded reader (is_write
  // = false) in append order — then purges the reader list and installs
  // `writer` as last-writer. The callback must not re-enter the store.
  virtual void write_step(
      std::uintptr_t addr, strand_id writer,
      function_ref<void(strand_id prior, bool is_write)> prior) = 0;

  // Layout-independent snapshot of one granule for tests and diagnostics;
  // never allocates. touched == false means the granule's page was never
  // materialized (writer/readers are then the pristine defaults).
  struct granule_state {
    bool touched = false;
    strand_id writer = rt::kNoStrand;
    std::vector<strand_id> readers;  // append order
  };
  virtual granule_state peek(std::uintptr_t addr) const = 0;

  virtual std::size_t page_count() const = 0;
  virtual std::size_t bytes_reserved() const = 0;
  // 1 for unsharded stores.
  virtual std::size_t shard_count() const { return 1; }

 protected:
  // The one definition of the §3 protocol steps over an AoS granule_record,
  // shared by the hashed-page and sharded stores (the compact store
  // implements the same steps over its SoA planes). Bounded history caps
  // the reader list at history_depth_ by dropping the oldest reader before
  // the append — the unbounded sentinel never trips the compare.
  strand_id read_step_on(granule_record& rec, strand_id reader) const {
    const strand_id prior = rec.writer;
    if (rec.writer != reader && rec.last_reader() != reader) {
      if (rec.reader_count() >= history_depth_) rec.drop_oldest_reader();
      rec.append_reader(reader);
    }
    return prior;
  }
  static void write_step_on(
      granule_record& rec, strand_id writer,
      function_ref<void(strand_id, bool)> prior) {
    if (rec.writer != rt::kNoStrand) prior(rec.writer, /*is_write=*/true);
    rec.for_each_reader([&](strand_id r) { prior(r, /*is_write=*/false); });
    rec.clear_readers();
    rec.writer = writer;
  }
  static granule_state state_of(const granule_record* rec) {
    granule_state out;
    if (rec == nullptr) return out;
    out.touched = true;
    out.writer = rec->writer;
    out.readers.reserve(rec->reader_count());
    rec->for_each_reader([&](strand_id r) { out.readers.push_back(r); });
    return out;
  }

 private:
  const unsigned granule_shift_;
  const std::size_t history_depth_;
};

// The baseline store every consumer defaults to.
inline constexpr std::string_view kDefaultStore = "hashed-page";

struct store_info {
  std::string name;         // registry key, e.g. "sharded"
  std::string description;  // one-line layout summary for docs/CLIs
  // Capability flag: the store partitions its address space by
  // store_config::shard_bits (selection UIs surface the knob only here).
  bool sharded = false;
  std::function<std::unique_ptr<store>(const store_config&)> make;
};

class store_registry {
 public:
  // Process-wide registry, pre-populated with the three in-tree stores.
  static store_registry& instance();

  // Registers a store; the name must be new.
  void add(store_info info);

  // Lookup by name; null when unknown.
  const store_info* find(std::string_view name) const;

  // Lookup by name; throws store_error listing every registered name.
  const store_info& at(std::string_view name) const;

  // Validates cfg and constructs a fresh store (throws like at()).
  std::unique_ptr<store> create(std::string_view name,
                                const store_config& cfg) const;

  // All registered names, sorted.
  std::vector<std::string> names() const;

 private:
  store_registry();  // registers the builtins

  // Deque for the same reason as backend_registry: find()/at() hand out
  // long-lived pointers, so registration must never relocate entries.
  std::deque<store_info> infos_;
};

}  // namespace frd::shadow
