// compact store: structure-of-arrays granule records.
//
// The AoS layouts interleave everything a granule might need (writer, reader
// count, three inline readers, an overflow pointer — 32 bytes) even though
// the §3 hot paths touch different subsets: a write's purge scan needs
// writer + count for every granule it revisits, a first read needs writer +
// count + one reader slot. This store splits the record into parallel planes
// per page — writer[], reader_count[], two inline reader planes, overflow
// head/tail planes — so the hot planes pack 8 granules per cache line
// instead of 2.
//
// Reader overflow (readers beyond the two inline slots) goes to fixed-size
// chain nodes carved from a support::arena — no unique_ptr, no per-record
// heap vector. Purged chains are spliced onto a free list and reused, so
// steady-state grow/purge cycles allocate nothing and arena growth is
// bounded by the peak live reader count, mirroring the retained-capacity
// behavior of granule_record's overflow vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "shadow/store.hpp"
#include "support/arena.hpp"

namespace frd::shadow {

class compact_store final : public store {
 public:
  explicit compact_store(const store_config& cfg);

  std::string_view name() const override { return "compact"; }

  strand_id read_step(std::uintptr_t addr, strand_id reader) override;
  void write_step(std::uintptr_t addr, strand_id writer,
                  function_ref<void(strand_id, bool)> prior) override;
  granule_state peek(std::uintptr_t addr) const override;

  std::size_t page_count() const override { return pages_.size(); }
  std::size_t bytes_reserved() const override;

 private:
  static constexpr std::size_t kInline = 2;   // r0/r1 planes
  static constexpr std::size_t kNodeCap = 6;  // 32-byte chain nodes

  struct overflow_node {
    overflow_node* next;
    strand_id vals[kNodeCap];
  };
  static_assert(std::is_trivially_destructible_v<overflow_node>,
                "chain nodes live in the arena");

  // One page, SoA: plane[i] describes granule i of the page.
  struct page {
    explicit page(std::size_t n)
        : writer(n, rt::kNoStrand), n_readers(n, 0), r0(n), r1(n),
          head(n, nullptr), tail(n, nullptr) {}
    std::vector<strand_id> writer;
    std::vector<std::uint32_t> n_readers;
    std::vector<strand_id> r0, r1;
    std::vector<overflow_node*> head, tail;
  };

  struct slot {  // one granule's planes, resolved once per access
    page* pg;
    std::size_t i;
  };
  slot slot_for(std::uintptr_t addr);

  strand_id last_reader(const page& pg, std::size_t i) const;
  void append_reader(page& pg, std::size_t i, strand_id s);
  void drop_oldest_reader(page& pg, std::size_t i);
  void purge_readers(page& pg, std::size_t i);
  template <typename Fn>
  void for_each_reader(const page& pg, std::size_t i, Fn&& fn) const;

  const unsigned page_bits_;
  const std::uintptr_t page_mask_;
  std::uintptr_t cached_id_ = static_cast<std::uintptr_t>(-1);
  page* cached_page_ = nullptr;
  std::unordered_map<std::uintptr_t, std::unique_ptr<page>> pages_;
  arena overflow_;
  overflow_node* free_ = nullptr;  // purged chains, recycled before the arena
};

}  // namespace frd::shadow
