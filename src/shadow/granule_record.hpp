// Per-granule reader/writer record (paper §3).
//
// For every granule the detector keeps
//   * last-writer(l): the single most recent writer strand, and
//   * reader-list(l): arbitrarily many reader strands. Futures break the
//     constant-reader property of series-parallel detectors, so the list
//     must grow; it is emptied whenever a write commits (every later strand
//     parallel to a purged reader is also parallel to the new writer, so no
//     race is lost — §3).
//
// This is the record type the AoS stores (hashed-page, sharded) keep in
// their pages; the compact store lays the same state out SoA instead
// (compact_store.hpp). The §3 read/write protocol steps shared by the AoS
// stores live in store.hpp as free functions over this record.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/events.hpp"

namespace frd::shadow {

using rt::strand_id;

// Reader list with small inline capacity; overflow spills to a heap vector
// that is retained (cleared, not freed) across writer purges so steady-state
// writes allocate nothing. Movable so stores may relocate records (and so a
// record can sit in containers that grow); copying stays deleted — a shadow
// record has exactly one home.
class granule_record {
 public:
  granule_record() = default;
  granule_record(const granule_record&) = delete;
  granule_record& operator=(const granule_record&) = delete;
  granule_record(granule_record&& other) noexcept
      : writer(other.writer),
        n_readers_(std::exchange(other.n_readers_, 0)),
        overflow_(std::move(other.overflow_)) {
    for (std::size_t i = 0; i < kInline; ++i) inline_[i] = other.inline_[i];
    other.writer = rt::kNoStrand;
  }
  granule_record& operator=(granule_record&& other) noexcept {
    if (this != &other) {
      writer = std::exchange(other.writer, rt::kNoStrand);
      n_readers_ = std::exchange(other.n_readers_, 0);
      for (std::size_t i = 0; i < kInline; ++i) inline_[i] = other.inline_[i];
      overflow_ = std::move(other.overflow_);
    }
    return *this;
  }
  ~granule_record() = default;

  strand_id writer = rt::kNoStrand;

  std::size_t reader_count() const { return n_readers_; }
  bool has_readers() const { return n_readers_ != 0; }

  // Most recently appended reader (kNoStrand when empty). The detector uses
  // it to dedupe consecutive reads by the same strand — in a serial
  // execution a strand's reads of l are contiguous, so checking the tail is
  // a complete dedupe.
  strand_id last_reader() const {
    if (n_readers_ == 0) return rt::kNoStrand;
    if (n_readers_ <= kInline) return inline_[n_readers_ - 1];
    return (*overflow_)[n_readers_ - kInline - 1];
  }

  void append_reader(strand_id s) {
    if (n_readers_ < kInline) {
      inline_[n_readers_++] = s;
      return;
    }
    if (overflow_ == nullptr)
      overflow_ = std::make_unique<std::vector<strand_id>>();
    overflow_->push_back(s);
    ++n_readers_;
  }

  void clear_readers() {
    n_readers_ = 0;
    if (overflow_ != nullptr) overflow_->clear();
  }

  // Drops the OLDEST reader, keeping append order — the bounded-history
  // stores call this right before an append that would exceed the depth
  // cap, so the list always holds the most recent `depth` readers. The
  // front-shift is O(list length), which bounded mode keeps at the (small)
  // configured depth.
  void drop_oldest_reader() {
    if (n_readers_ == 0) return;
    const std::size_t inl = n_readers_ < kInline ? n_readers_ : kInline;
    for (std::size_t i = 1; i < inl; ++i) inline_[i - 1] = inline_[i];
    if (n_readers_ > kInline) {
      inline_[kInline - 1] = overflow_->front();
      overflow_->erase(overflow_->begin());
    }
    --n_readers_;
  }

  template <typename Fn>
  void for_each_reader(Fn&& fn) const {
    const std::size_t inl = n_readers_ < kInline ? n_readers_ : kInline;
    for (std::size_t i = 0; i < inl; ++i) fn(inline_[i]);
    if (n_readers_ > kInline) {
      for (std::size_t i = 0; i < n_readers_ - kInline; ++i)
        fn((*overflow_)[i]);
    }
  }

 private:
  static constexpr std::size_t kInline = 3;
  std::uint32_t n_readers_ = 0;
  strand_id inline_[kInline] = {};
  std::unique_ptr<std::vector<strand_id>> overflow_;
};

}  // namespace frd::shadow
