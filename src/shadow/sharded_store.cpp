#include "shadow/sharded_store.hpp"

#include <new>
#include <string>

#include "support/check.hpp"

namespace frd::shadow {

sharded_store::sharded_store(const store_config& cfg)
    : store(cfg),
      page_bits_(cfg.page_bits),
      shard_bits_(cfg.shard_bits),
      page_mask_((std::uintptr_t{1} << cfg.page_bits) - 1),
      shards_(std::size_t{1} << cfg.shard_bits) {}

sharded_store::~sharded_store() {
  // Arena storage never runs destructors; the reader-overflow vectors inside
  // the records need theirs.
  const std::size_t n = std::size_t{1} << page_bits_;
  for (shard& sh : shards_) {
    for (auto& [id, records] : sh.pages) {
      for (std::size_t i = 0; i < n; ++i) records[i].~granule_record();
    }
  }
}

granule_record& sharded_store::record_for(std::uintptr_t addr) {
  const std::uintptr_t g = granule_of(addr);
  const std::uintptr_t page_id = g >> page_bits_;
  shard& sh = shards_[shard_of_page(page_id)];
  if (page_id == sh.cached_id) return sh.cached_page[g & page_mask_];
  auto [it, inserted] = sh.pages.try_emplace(page_id);
  if (inserted) {
    const std::size_t n = std::size_t{1} << page_bits_;
    auto* records = static_cast<granule_record*>(
        sh.storage.allocate(n * sizeof(granule_record),
                            alignof(granule_record)));
    for (std::size_t i = 0; i < n; ++i) ::new (records + i) granule_record();
    it->second = records;
  }
  sh.cached_id = page_id;
  sh.cached_page = it->second;
  return sh.cached_page[g & page_mask_];
}

void sharded_store::begin_parallel_mutation() {
  FRD_CHECK_MSG(!mutating_.exchange(true, std::memory_order_acq_rel),
                "nested parallel shard pass on one sharded store");
}

void sharded_store::end_parallel_mutation() {
  FRD_CHECK_MSG(mutating_.exchange(false, std::memory_order_acq_rel),
                "end_parallel_mutation without a matching begin");
}

void sharded_store::require_quiescent(const char* what) const {
  if (mutating_.load(std::memory_order_acquire)) {
    throw store_error(
        std::string(what) +
        " during a parallel shard pass: cross-shard walks race with "
        "worker-local mutation and are epoch-barrier-only (the detector "
        "closes the pass before every flush)");
  }
}

store::granule_state sharded_store::peek(std::uintptr_t addr) const {
  require_quiescent("sharded_store::peek");
  const std::uintptr_t g = granule_of(addr);
  const std::uintptr_t page_id = g >> page_bits_;
  const shard& sh = shards_[shard_of_page(page_id)];
  auto it = sh.pages.find(page_id);
  if (it == sh.pages.end()) return state_of(nullptr);
  return state_of(&it->second[g & page_mask_]);
}

std::size_t sharded_store::page_count() const {
  require_quiescent("sharded_store::page_count");
  std::size_t n = 0;
  for (const shard& sh : shards_) n += sh.pages.size();
  return n;
}

std::size_t sharded_store::bytes_reserved() const {
  require_quiescent("sharded_store::bytes_reserved");
  std::size_t n = 0;
  for (const shard& sh : shards_) n += sh.storage.bytes_allocated();
  return n;
}

std::vector<std::size_t> sharded_store::shard_page_counts() const {
  require_quiescent("sharded_store::shard_page_counts");
  std::vector<std::size_t> out;
  out.reserve(shards_.size());
  for (const shard& sh : shards_) out.push_back(sh.pages.size());
  return out;
}

}  // namespace frd::shadow
