// hashed-page store: the paper's "two-level direct-mapped cache" baseline.
//
// The high bits of addr>>granule_shift select a second-level page, the low
// bits index into it. The paper's artifact used a flat top-level table; with
// 47-bit user address spaces we key pages by a hash map instead and keep a
// one-entry hot-page cache, which preserves the two-level lookup cost on the
// fast path (documented substitution, DESIGN.md "Shadow-memory stores").
// This was access_history before the store interface existed; it remains
// the default store and the conformance baseline for the other layouts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "shadow/store.hpp"

namespace frd::shadow {

class hashed_page_store final : public store {
 public:
  explicit hashed_page_store(const store_config& cfg);

  std::string_view name() const override { return "hashed-page"; }

  strand_id read_step(std::uintptr_t addr, strand_id reader) override {
    return read_step_on(record_for(addr), reader);
  }
  void write_step(std::uintptr_t addr, strand_id writer,
                  function_ref<void(strand_id, bool)> prior) override {
    write_step_on(record_for(addr), writer, prior);
  }
  granule_state peek(std::uintptr_t addr) const override {
    return state_of(find(addr));
  }

  // Direct record access for the shadow microbenches (no virtual hop).
  granule_record& record_for(std::uintptr_t addr);
  // Lookup without allocation; null if the granule's page was never touched.
  const granule_record* find(std::uintptr_t addr) const;

  std::size_t page_count() const override { return pages_.size(); }
  std::size_t bytes_reserved() const override;

 private:
  struct page {
    explicit page(std::size_t n) : records(n) {}
    std::vector<granule_record> records;
  };

  page& page_for(std::uintptr_t page_id);

  const unsigned page_bits_;
  const std::uintptr_t page_mask_;
  // Hot-page cache: benchmark kernels touch long runs within one page.
  std::uintptr_t cached_id_ = static_cast<std::uintptr_t>(-1);
  page* cached_page_ = nullptr;
  std::unordered_map<std::uintptr_t, std::unique_ptr<page>> pages_;
};

}  // namespace frd::shadow
