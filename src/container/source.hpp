// container_source: a streaming trace_source over a .frdtz container.
//
// The source reads the footer once, then feeds an inner trace_reader through
// a streambuf that materializes ONE chunk per underflow: seek to the chunk's
// stored bytes, decompress (bounded by the declared raw size), and verify the
// SHA-1 before a single byte reaches the decoder. Peak memory is one chunk's
// stored + raw bytes — O(chunk size), independent of trace length — and
// max_resident_bytes() reports the high-water mark so tests can hold it to
// that bound. Every integrity defect (digest mismatch, short chunk, footer
// disagreeing with the inner header or event count) throws trace_error
// naming the defect.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <istream>
#include <memory>
#include <streambuf>
#include <vector>

#include "container/format.hpp"
#include "trace/codec.hpp"

namespace frd::container {

class container_source final : public trace::trace_source {
 public:
  // `in` must be seekable (an opened binary ifstream); the footer is read
  // and validated eagerly, the chunks lazily.
  explicit container_source(std::istream& in);

  const trace::trace_header& header() const override;
  bool next(trace::trace_event& e) override;

  // Positions the source so the NEXT next() call delivers event `n` (which
  // may equal event_count: positioned at end). In a v2 container this jumps
  // via the footer's per-chunk first_event/first_offset index and decodes at
  // most one chunk's worth of events to land exactly on `n` — the prefix is
  // never read. A v1 container has no byte index, so seeking degrades to
  // decoding forward from the current position (and seeking backwards
  // throws, suggesting a repack). Throws trace_error when `n` lies past the
  // declared event count.
  void seek_to_event(std::uint64_t n);

  const container_info& info() const { return info_; }
  std::uint64_t events_delivered() const { return events_; }
  // High-water mark of chunk bytes held at once (stored + decompressed).
  std::uint64_t max_resident_bytes() const { return buf_.max_resident(); }

 private:
  // Serves the inner FRDT byte stream one verified chunk per underflow.
  class chunk_feed_streambuf final : public std::streambuf {
   public:
    chunk_feed_streambuf(std::istream& file, const container_info& info)
        : file_(file), info_(info) {}
    std::uint64_t max_resident() const { return max_resident_; }

    // Abandons the current read position: loads chunk `chunk_index` and
    // resumes the byte stream `intra_offset` bytes into its raw content
    // (the seek path; intra_offset must be < the chunk's raw size).
    void reposition(std::size_t chunk_index, std::uint64_t intra_offset);

   protected:
    int_type underflow() override;

   private:
    void load(std::size_t index);

    std::istream& file_;
    const container_info& info_;
    std::vector<char> chunk_;  // the current chunk, decompressed + verified
    std::size_t next_ = 0;
    std::uint64_t max_resident_ = 0;
  };

  std::istream& file_;
  container_info info_;
  chunk_feed_streambuf buf_;
  std::istream inner_stream_;
  std::unique_ptr<trace::trace_reader> reader_;
  // Copy of the validated inner header: seek_to_event rebuilds the reader
  // mid-stream, where the on-disk header bytes are behind us.
  trace::trace_header header_;
  // Absolute index of the next event next() will deliver — a cursor, not a
  // delivered-count, so the end-of-stream event-count check stays valid
  // after seeks.
  std::uint64_t events_ = 0;
};

// Loads, verifies, and decompresses one chunk's raw bytes (the shared chunk
// path of container_source and unpack). Throws trace_error naming the chunk
// on a short read, oversized/corrupt compressed data, or digest mismatch.
std::vector<char> load_chunk(std::istream& file, const chunk_entry& entry,
                             std::size_t index);

// Streams the verified inner FRDT byte stream to `out` — byte-identical to
// the .frdt the container was packed from. Returns the footer for stats.
container_info unpack(std::istream& in, std::ostream& out);

}  // namespace frd::container
