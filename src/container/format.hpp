// The .frdtz streaming compressed trace container: on-disk format.
//
// A container wraps one binary FRDT trace (codec.hpp) so that million-event
// traces are first-class corpus artifacts: the inner byte stream is split
// with the content-defined chunker (compress/chunker.hpp), each chunk is
// LZ-compressed (compress/lz.hpp) unless that would grow it, keyed by the
// SHA-1 of its RAW bytes (compress/digest.hpp) for integrity checking and
// cross-chunk dedup, and indexed in a seekable footer so readers can stream
// or seek without materializing the whole trace.
//
// Layout (little-endian, LEB128 varints from compress::put_varint):
//
//   header   "FRDZ" magic (4 bytes), varint container version
//   payload  stored chunk bytes, back to back; a chunk whose raw content
//            already appeared is NOT stored again — its table entry points
//            at the first occurrence's offset (dedup)
//   footer   "FRDX" magic (4 bytes), then varints: inner trace version,
//            granule, event count, raw stream size, chunk count; then one
//            table entry per chunk:
//              varint offset        absolute file offset of stored bytes
//              varint stored_size   bytes on disk (== raw_size when raw)
//              varint raw_size      decompressed chunk size
//              varint first_event   index of the first event that STARTS in
//                                   this chunk (events may span boundaries;
//                                   chunk i covers events
//                                   [first_event, next.first_event))
//              varint first_offset  (container version >= 2) byte offset
//                                   inside the RAW chunk where that event's
//                                   encoding starts; == raw_size when no
//                                   event starts in this chunk. first_event
//                                   alone names the chunk; first_offset is
//                                   what makes it decodable mid-stream —
//                                   together they are the seek index behind
//                                   container_source::seek_to_event.
//              1 byte encoding      0 = raw, 1 = LZ
//              20 bytes             SHA-1 of the raw chunk bytes
//   trailer  u64 LE footer offset + "ZEND" magic — fixed 12 bytes at EOF,
//            so readers find the footer with one seek and truncation is
//            always detectable.
//
// Concatenating the decompressed chunks in table order reproduces the inner
// FRDT byte stream exactly — `frd-trace unpack` is byte-identity with the
// original `.frdt`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "compress/digest.hpp"
#include "trace/event.hpp"

namespace frd::container {

inline constexpr char kMagic[4] = {'F', 'R', 'D', 'Z'};
inline constexpr char kFooterMagic[4] = {'F', 'R', 'D', 'X'};
inline constexpr char kTrailerMagic[4] = {'Z', 'E', 'N', 'D'};
// Version history: v1 had no per-chunk first_offset (seeking meant decoding
// the whole prefix); v2 added it. This build writes v2 and reads both.
inline constexpr std::uint32_t kContainerVersion = 2;
inline constexpr std::uint32_t kMinContainerVersion = 1;
inline constexpr std::size_t kTrailerSize = 12;  // u64 offset + 4-byte magic

enum class chunk_encoding : std::uint8_t { raw = 0, lz = 1 };

// Sentinel for chunk_entry::first_offset in a v1 container, where the field
// does not exist on disk: "unknown", distinct from the == raw_size encoding
// of "no event starts here".
inline constexpr std::uint64_t kNoFirstOffset = ~std::uint64_t{0};

struct chunk_entry {
  std::uint64_t offset = 0;       // absolute file offset of the stored bytes
  std::uint64_t stored_size = 0;  // bytes on disk
  std::uint64_t raw_size = 0;     // decompressed size
  std::uint64_t first_event = 0;  // first event starting in this chunk
  // Byte offset of event `first_event` inside the raw chunk; raw_size when
  // no event starts in this chunk, kNoFirstOffset when read from a v1
  // container (which did not record it).
  std::uint64_t first_offset = 0;
  chunk_encoding encoding = chunk_encoding::lz;
  compress::sha1_digest digest{};  // of the RAW chunk bytes
};

// Everything the footer says about a container, plus derived totals — the
// writer produces it, the reader parses it, `frd-trace stats` prints it.
struct container_info {
  std::uint32_t container_version = kContainerVersion;
  // True when every chunk carries a usable first_offset — i.e. this is a v2+
  // container and container_source::seek_to_event can jump instead of
  // decoding the prefix.
  bool seekable() const;
  std::uint32_t inner_version = trace::kTraceVersion;
  std::uint32_t granule = 4;
  std::uint64_t event_count = 0;
  std::uint64_t raw_size = 0;  // inner FRDT stream bytes
  std::vector<chunk_entry> chunks;

  // Derived: stored payload bytes, counting deduplicated chunks once.
  std::uint64_t payload_bytes() const;
  // Chunks whose table entry points at an earlier occurrence.
  std::uint64_t dedup_hits() const;
  // Raw bytes those dedup hits avoided storing (before compression).
  std::uint64_t dedup_saved_raw_bytes() const;
  // raw_size / (header + payload + footer + trailer); > 1 means the
  // container is smaller than the flat trace.
  double compression_ratio(std::uint64_t file_size) const;
};

// Serializes the footer (magic through the last table entry) into `out`.
void encode_footer(std::vector<std::uint8_t>& out, const container_info& info);

// Parses and validates a footer blob (as delimited by the trailer) laid out
// per `container_version` — v1 entries lack first_offset. Throws
// trace::trace_error naming the defect: bad footer magic, truncated table,
// or a chunk whose stored bytes land outside [header_end, footer_offset).
container_info parse_footer(const std::vector<std::uint8_t>& footer,
                            std::uint64_t footer_offset,
                            std::uint32_t container_version = kContainerVersion);

// Reads the container header + trailer + footer of a seekable stream and
// returns the validated info; the stream is left positioned arbitrarily.
// Throws trace::trace_error on bad magic, unsupported container version, or
// a truncated/corrupt trailer or footer.
container_info read_container_info(std::istream& in);

// True when the stream starts with the container magic (peeked, position
// restored) — the codec layer's sniff.
bool looks_like_container(std::istream& in);

}  // namespace frd::container
