#include "container/source.hpp"

#include <ostream>
#include <string>

#include "compress/digest.hpp"
#include "compress/lz.hpp"

namespace frd::container {

using trace::trace_error;

std::vector<char> load_chunk(std::istream& file, const chunk_entry& entry,
                             std::size_t index) {
  file.clear();
  file.seekg(static_cast<std::streamoff>(entry.offset), std::ios::beg);
  std::vector<std::uint8_t> stored(
      static_cast<std::size_t>(entry.stored_size));
  file.read(reinterpret_cast<char*>(stored.data()),
            static_cast<std::streamsize>(stored.size()));
  if (file.gcount() != static_cast<std::streamsize>(stored.size())) {
    throw trace_error("corrupt trace container: chunk " +
                      std::to_string(index) + " read cut short");
  }

  std::vector<std::uint8_t> raw;
  if (entry.encoding == chunk_encoding::lz) {
    try {
      raw = compress::lz_decompress(
          stored, static_cast<std::size_t>(entry.raw_size));
    } catch (const compress::decode_error& e) {
      throw trace_error("corrupt trace container: chunk " +
                        std::to_string(index) + " fails to decompress (" +
                        e.what() + ")");
    }
  } else {
    raw = std::move(stored);
  }
  if (raw.size() != entry.raw_size) {
    throw trace_error("corrupt trace container: chunk " +
                      std::to_string(index) + " decompresses to " +
                      std::to_string(raw.size()) + " bytes, footer says " +
                      std::to_string(entry.raw_size));
  }
  if (compress::sha1(raw) != entry.digest) {
    throw trace_error("corrupt trace container: chunk " +
                      std::to_string(index) + " digest mismatch");
  }
  return std::vector<char>(raw.begin(), raw.end());
}

// ---------------------------------------------------- chunk_feed_streambuf --

void container_source::chunk_feed_streambuf::load(std::size_t index) {
  const chunk_entry& entry = info_.chunks[index];
  chunk_ = load_chunk(file_, entry, index);
  next_ = index + 1;
  // stored + raw coexist inside load_chunk; charge both to the high-water
  // mark even though the stored copy is gone by the time we return.
  const std::uint64_t resident =
      entry.encoding == chunk_encoding::lz
          ? entry.stored_size + entry.raw_size
          : entry.raw_size;
  if (resident > max_resident_) max_resident_ = resident;
}

container_source::chunk_feed_streambuf::int_type
container_source::chunk_feed_streambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  if (next_ >= info_.chunks.size()) return traits_type::eof();
  load(next_);
  setg(chunk_.data(), chunk_.data(), chunk_.data() + chunk_.size());
  return traits_type::to_int_type(*gptr());
}

void container_source::chunk_feed_streambuf::reposition(
    std::size_t chunk_index, std::uint64_t intra_offset) {
  load(chunk_index);
  if (intra_offset >= chunk_.size()) {
    throw trace_error("corrupt trace container: seek offset " +
                      std::to_string(intra_offset) + " lands past chunk " +
                      std::to_string(chunk_index) + "'s " +
                      std::to_string(chunk_.size()) + " raw bytes");
  }
  setg(chunk_.data(), chunk_.data() + intra_offset,
       chunk_.data() + chunk_.size());
}

// -------------------------------------------------------- container_source --

container_source::container_source(std::istream& in)
    : file_(in),
      info_(read_container_info(in)),
      buf_(file_, info_),
      inner_stream_(&buf_) {
  // An istream swallows exceptions thrown by its streambuf (it just sets
  // badbit); with badbit in the exception mask it rethrows the original, so
  // a chunk diagnosis from underflow() reaches the caller by name instead
  // of surfacing as a confusing short-read error from the inner codec.
  inner_stream_.exceptions(std::ios::badbit);
  reader_ = std::make_unique<trace::trace_reader>(inner_stream_);
  const trace::trace_header& h = reader_->header();
  if (h.version != info_.inner_version || h.granule != info_.granule) {
    throw trace_error(
        "corrupt trace container: footer declares version " +
        std::to_string(info_.inner_version) + "/granule " +
        std::to_string(info_.granule) + " but the inner trace header says " +
        std::to_string(h.version) + "/" + std::to_string(h.granule));
  }
  header_ = h;
}

void container_source::seek_to_event(std::uint64_t n) {
  if (n > info_.event_count) {
    throw trace_error("seek to event " + std::to_string(n) +
                      " past the end of a " +
                      std::to_string(info_.event_count) + "-event container");
  }
  if (info_.seekable() && !info_.chunks.empty()) {
    // Largest chunk whose first STARTING event is <= n and in which an event
    // actually starts (first_offset < raw_size; start-free chunks only
    // continue a spanning event). Chunk 0 always qualifies: it starts with
    // event 0 right after the inner header bytes.
    std::size_t lo = 0;
    for (std::size_t i = 1; i < info_.chunks.size(); ++i) {
      const chunk_entry& c = info_.chunks[i];
      if (c.first_event > n) break;
      if (c.first_offset < c.raw_size) lo = i;
    }
    buf_.reposition(lo, info_.chunks[lo].first_offset);
    inner_stream_.clear();  // a prior read may have parked eofbit
    reader_ = std::make_unique<trace::trace_reader>(inner_stream_, header_);
    events_ = info_.chunks[lo].first_event;
  } else if (n < events_) {
    throw trace_error(
        "cannot seek backwards in a version-1 trace container (no byte "
        "index); repack it with `frd-trace pack` to gain the seek index");
  }
  // Decode-and-discard up to the target: at most one chunk's worth of events
  // when the jump above ran, the whole remaining prefix on the v1 fallback.
  trace::trace_event e;
  while (events_ < n) {
    if (!next(e)) {
      throw trace_error("corrupt trace container: stream ended at event " +
                        std::to_string(events_) + " while seeking to " +
                        std::to_string(n));
    }
  }
}

const trace::trace_header& container_source::header() const {
  return reader_->header();
}

bool container_source::next(trace::trace_event& e) {
  if (reader_->next(e)) {
    ++events_;
    return true;
  }
  if (events_ != info_.event_count) {
    throw trace_error("corrupt trace container: footer declares " +
                      std::to_string(info_.event_count) +
                      " events but the stream holds " +
                      std::to_string(events_));
  }
  return false;
}

// ------------------------------------------------------------------ unpack --

container_info unpack(std::istream& in, std::ostream& out) {
  container_info info = read_container_info(in);
  for (std::size_t i = 0; i < info.chunks.size(); ++i) {
    const std::vector<char> raw = load_chunk(in, info.chunks[i], i);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
    if (!out) {
      throw trace_error("trace container: write failed while unpacking chunk " +
                        std::to_string(i));
    }
  }
  out.flush();
  if (!out) throw trace_error("trace container: flush failed after unpack");
  return info;
}

}  // namespace frd::container
