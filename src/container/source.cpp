#include "container/source.hpp"

#include <ostream>
#include <string>

#include "compress/digest.hpp"
#include "compress/lz.hpp"

namespace frd::container {

using trace::trace_error;

std::vector<char> load_chunk(std::istream& file, const chunk_entry& entry,
                             std::size_t index) {
  file.clear();
  file.seekg(static_cast<std::streamoff>(entry.offset), std::ios::beg);
  std::vector<std::uint8_t> stored(
      static_cast<std::size_t>(entry.stored_size));
  file.read(reinterpret_cast<char*>(stored.data()),
            static_cast<std::streamsize>(stored.size()));
  if (file.gcount() != static_cast<std::streamsize>(stored.size())) {
    throw trace_error("corrupt trace container: chunk " +
                      std::to_string(index) + " read cut short");
  }

  std::vector<std::uint8_t> raw;
  if (entry.encoding == chunk_encoding::lz) {
    try {
      raw = compress::lz_decompress(
          stored, static_cast<std::size_t>(entry.raw_size));
    } catch (const compress::decode_error& e) {
      throw trace_error("corrupt trace container: chunk " +
                        std::to_string(index) + " fails to decompress (" +
                        e.what() + ")");
    }
  } else {
    raw = std::move(stored);
  }
  if (raw.size() != entry.raw_size) {
    throw trace_error("corrupt trace container: chunk " +
                      std::to_string(index) + " decompresses to " +
                      std::to_string(raw.size()) + " bytes, footer says " +
                      std::to_string(entry.raw_size));
  }
  if (compress::sha1(raw) != entry.digest) {
    throw trace_error("corrupt trace container: chunk " +
                      std::to_string(index) + " digest mismatch");
  }
  return std::vector<char>(raw.begin(), raw.end());
}

// ---------------------------------------------------- chunk_feed_streambuf --

container_source::chunk_feed_streambuf::int_type
container_source::chunk_feed_streambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  if (next_ >= info_.chunks.size()) return traits_type::eof();
  const chunk_entry& entry = info_.chunks[next_];
  chunk_ = load_chunk(file_, entry, next_);
  ++next_;
  // stored + raw coexist inside load_chunk; charge both to the high-water
  // mark even though the stored copy is gone by the time we return.
  const std::uint64_t resident =
      entry.encoding == chunk_encoding::lz
          ? entry.stored_size + entry.raw_size
          : entry.raw_size;
  if (resident > max_resident_) max_resident_ = resident;
  setg(chunk_.data(), chunk_.data(), chunk_.data() + chunk_.size());
  return traits_type::to_int_type(*gptr());
}

// -------------------------------------------------------- container_source --

container_source::container_source(std::istream& in)
    : file_(in),
      info_(read_container_info(in)),
      buf_(file_, info_),
      inner_stream_(&buf_) {
  // An istream swallows exceptions thrown by its streambuf (it just sets
  // badbit); with badbit in the exception mask it rethrows the original, so
  // a chunk diagnosis from underflow() reaches the caller by name instead
  // of surfacing as a confusing short-read error from the inner codec.
  inner_stream_.exceptions(std::ios::badbit);
  reader_ = std::make_unique<trace::trace_reader>(inner_stream_);
  const trace::trace_header& h = reader_->header();
  if (h.version != info_.inner_version || h.granule != info_.granule) {
    throw trace_error(
        "corrupt trace container: footer declares version " +
        std::to_string(info_.inner_version) + "/granule " +
        std::to_string(info_.granule) + " but the inner trace header says " +
        std::to_string(h.version) + "/" + std::to_string(h.granule));
  }
}

const trace::trace_header& container_source::header() const {
  return reader_->header();
}

bool container_source::next(trace::trace_event& e) {
  if (reader_->next(e)) {
    ++events_;
    return true;
  }
  if (events_ != info_.event_count) {
    throw trace_error("corrupt trace container: footer declares " +
                      std::to_string(info_.event_count) +
                      " events but the stream holds " +
                      std::to_string(events_));
  }
  return false;
}

// ------------------------------------------------------------------ unpack --

container_info unpack(std::istream& in, std::ostream& out) {
  container_info info = read_container_info(in);
  for (std::size_t i = 0; i < info.chunks.size(); ++i) {
    const std::vector<char> raw = load_chunk(in, info.chunks[i], i);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
    if (!out) {
      throw trace_error("trace container: write failed while unpacking chunk " +
                        std::to_string(i));
    }
  }
  out.flush();
  if (!out) throw trace_error("trace container: flush failed after unpack");
  return info;
}

}  // namespace frd::container
