#include "container/writer.hpp"

#include <cstring>
#include <exception>
#include <ostream>

#include "compress/digest.hpp"
#include "compress/lz.hpp"
#include "detect/hooks.hpp"

namespace frd::container {

using trace::trace_error;

// ---------------------------------------------------- chunking_streambuf --

void container_writer::chunking_streambuf::push_byte(std::uint8_t b) {
  if (pending_start_) {
    if (!open_has_start_) {
      open_first_event_ = pending_event_;
      open_first_offset_ = buf_.size();  // this byte begins that event
      open_has_start_ = true;
    }
    started_ = pending_event_ + 1;
    pending_start_ = false;
  }
  buf_.push_back(b);
  ++raw_total_;
  if (chunker_.push(b)) {
    owner_.emit_chunk(buf_, open_has_start_ ? open_first_event_ : started_,
                      open_has_start_ ? open_first_offset_ : buf_.size());
    buf_.clear();
    open_has_start_ = false;
  }
}

container_writer::chunking_streambuf::int_type
container_writer::chunking_streambuf::overflow(int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) return ch;
  push_byte(static_cast<std::uint8_t>(ch));
  return ch;
}

std::streamsize container_writer::chunking_streambuf::xsputn(
    const char* s, std::streamsize n) {
  for (std::streamsize i = 0; i < n; ++i)
    push_byte(static_cast<std::uint8_t>(s[i]));
  return n;
}

void container_writer::chunking_streambuf::flush_open_chunk() {
  if (buf_.empty()) return;
  owner_.emit_chunk(buf_, open_has_start_ ? open_first_event_ : started_,
                    open_has_start_ ? open_first_offset_ : buf_.size());
  buf_.clear();
  open_has_start_ = false;
}

// ------------------------------------------------------- container_writer --

container_writer::container_writer(std::ostream& out, trace::trace_header h,
                                   compress::chunk_params params)
    : out_(out),
      buf_(*this, params),
      inner_stream_(&buf_),
      ctor_exceptions_(std::uncaught_exceptions()) {
  out_.write(kMagic, sizeof(kMagic));
  std::vector<std::uint8_t> v;
  compress::put_varint(v, kContainerVersion);
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size()));
  if (!out_) throw trace_error("trace container: write failed on header");
  file_offset_ = sizeof(kMagic) + v.size();
  info_.inner_version = h.version;
  info_.granule = h.granule;
  // The inner writer serializes the FRDT header into the chunk stream
  // immediately; those bytes belong to the first chunk.
  inner_ = std::make_unique<trace::trace_writer>(inner_stream_, h);
}

container_writer::~container_writer() {
  if (std::uncaught_exceptions() > ctor_exceptions_) return;
  try {
    finish();
  } catch (...) {
    // Like trace_writer: destructors cannot throw; callers who care about
    // the container call finish() themselves.
  }
}

void container_writer::on_header(const trace::trace_header& h) {
  inner_->on_header(h);
  info_.inner_version = h.version;
  info_.granule = h.granule;
}

void container_writer::put(const trace::trace_event& e) {
  buf_.note_event_start(events_);
  inner_->put(e);
  ++events_;
}

void container_writer::emit_chunk(const std::vector<std::uint8_t>& raw,
                                  std::uint64_t first_event,
                                  std::uint64_t first_offset) {
  const compress::sha1_digest digest = compress::sha1(raw);
  chunk_entry entry;
  entry.raw_size = raw.size();
  entry.first_event = first_event;
  entry.first_offset = first_offset;
  entry.digest = digest;

  if (const auto it = dedup_.find(digest); it != dedup_.end()) {
    const chunk_entry& first = info_.chunks[it->second];
    entry.offset = first.offset;
    entry.stored_size = first.stored_size;
    entry.encoding = first.encoding;
    info_.chunks.push_back(entry);
    return;
  }

  auto packed = compress::lz_compress<detect::hooks::none>(raw);
  const bool use_lz = packed.size() < raw.size();
  const std::vector<std::uint8_t>& stored = use_lz ? packed : raw;
  entry.offset = file_offset_;
  entry.stored_size = stored.size();
  entry.encoding = use_lz ? chunk_encoding::lz : chunk_encoding::raw;
  out_.write(reinterpret_cast<const char*>(stored.data()),
             static_cast<std::streamsize>(stored.size()));
  if (!out_) throw trace_error("trace container: write failed on chunk");
  file_offset_ += stored.size();
  dedup_.emplace(digest, info_.chunks.size());
  info_.chunks.push_back(entry);
}

void container_writer::finish() {
  if (finished_) return;
  inner_->finish();           // end marker lands in the chunk stream
  buf_.flush_open_chunk();    // whatever remains becomes the last chunk
  finished_ = true;

  info_.event_count = events_;
  info_.raw_size = buf_.raw_total();

  const std::uint64_t footer_offset = file_offset_;
  std::vector<std::uint8_t> footer;
  encode_footer(footer, info_);
  out_.write(reinterpret_cast<const char*>(footer.data()),
             static_cast<std::streamsize>(footer.size()));

  std::uint8_t trailer[kTrailerSize];
  for (int i = 0; i < 8; ++i)
    trailer[i] = static_cast<std::uint8_t>(footer_offset >> (8 * i));
  std::memcpy(trailer + 8, kTrailerMagic, 4);
  out_.write(reinterpret_cast<const char*>(trailer), kTrailerSize);
  out_.flush();
  if (!out_) throw trace_error("trace container: write failed on footer");
}

}  // namespace frd::container
