#include "container/format.hpp"

#include <cstring>
#include <istream>
#include <string>
#include <unordered_set>

#include "compress/lz.hpp"

namespace frd::container {

namespace {

using trace::trace_error;

[[noreturn]] void corrupt(const std::string& what) {
  throw trace_error("corrupt trace container: " + what);
}

// Footer fields decode through compress::get_varint, whose decode_error does
// not name the container — wrap it into the trace_error vocabulary.
std::uint64_t footer_varint(std::span<const std::uint8_t> in, std::size_t& pos,
                            const char* field) {
  try {
    return compress::get_varint(in, pos);
  } catch (const compress::decode_error&) {
    corrupt(std::string("footer field '") + field + "' is truncated");
  }
}

}  // namespace

std::uint64_t container_info::payload_bytes() const {
  std::uint64_t total = 0;
  std::unordered_set<std::uint64_t> seen;
  for (const chunk_entry& c : chunks) {
    if (seen.insert(c.offset).second) total += c.stored_size;
  }
  return total;
}

std::uint64_t container_info::dedup_hits() const {
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t hits = 0;
  for (const chunk_entry& c : chunks) {
    if (!seen.insert(c.offset).second) ++hits;
  }
  return hits;
}

std::uint64_t container_info::dedup_saved_raw_bytes() const {
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t saved = 0;
  for (const chunk_entry& c : chunks) {
    if (!seen.insert(c.offset).second) saved += c.raw_size;
  }
  return saved;
}

bool container_info::seekable() const {
  if (container_version < 2) return false;
  for (const chunk_entry& c : chunks) {
    if (c.first_offset == kNoFirstOffset) return false;
  }
  return true;
}

double container_info::compression_ratio(std::uint64_t file_size) const {
  return file_size ? static_cast<double>(raw_size) /
                         static_cast<double>(file_size)
                   : 0.0;
}

void encode_footer(std::vector<std::uint8_t>& out, const container_info& info) {
  out.insert(out.end(), kFooterMagic, kFooterMagic + 4);
  compress::put_varint(out, info.inner_version);
  compress::put_varint(out, info.granule);
  compress::put_varint(out, info.event_count);
  compress::put_varint(out, info.raw_size);
  compress::put_varint(out, info.chunks.size());
  for (const chunk_entry& c : info.chunks) {
    compress::put_varint(out, c.offset);
    compress::put_varint(out, c.stored_size);
    compress::put_varint(out, c.raw_size);
    compress::put_varint(out, c.first_event);
    // The seek index arrived in v2; encoding tracks info.container_version
    // so a round trip through parse_footer is layout-identical for both
    // generations (the v1 back-compat tests depend on this symmetry).
    if (info.container_version >= 2) compress::put_varint(out, c.first_offset);
    out.push_back(static_cast<std::uint8_t>(c.encoding));
    out.insert(out.end(), c.digest.begin(), c.digest.end());
  }
}

container_info parse_footer(const std::vector<std::uint8_t>& footer,
                            std::uint64_t footer_offset,
                            std::uint32_t container_version) {
  if (footer.size() < 4 ||
      std::memcmp(footer.data(), kFooterMagic, 4) != 0) {
    corrupt("footer magic missing (the chunk index is unreadable)");
  }
  container_info info;
  info.container_version = container_version;
  std::size_t pos = 4;
  const std::span<const std::uint8_t> f(footer);
  info.inner_version =
      static_cast<std::uint32_t>(footer_varint(f, pos, "inner version"));
  info.granule = static_cast<std::uint32_t>(footer_varint(f, pos, "granule"));
  info.event_count = footer_varint(f, pos, "event count");
  info.raw_size = footer_varint(f, pos, "raw size");
  const std::uint64_t n_chunks = footer_varint(f, pos, "chunk count");
  // A footer cannot describe more chunks than it has bytes for (each table
  // entry is >= 25 bytes): reject before reserving absurd amounts.
  if (n_chunks > footer.size() / 25 + 1) {
    corrupt("chunk count " + std::to_string(n_chunks) +
            " is larger than the footer could encode");
  }
  info.chunks.reserve(static_cast<std::size_t>(n_chunks));
  std::uint64_t covered = 0, last_first_event = 0;
  for (std::uint64_t i = 0; i < n_chunks; ++i) {
    chunk_entry c;
    c.offset = footer_varint(f, pos, "chunk offset");
    c.stored_size = footer_varint(f, pos, "chunk stored size");
    c.raw_size = footer_varint(f, pos, "chunk raw size");
    c.first_event = footer_varint(f, pos, "chunk first event");
    c.first_offset = container_version >= 2
                         ? footer_varint(f, pos, "chunk first offset")
                         : kNoFirstOffset;
    if (pos >= footer.size()) corrupt("chunk table is truncated");
    const std::uint8_t enc = footer[pos++];
    if (enc > 1) {
      corrupt("chunk " + std::to_string(i) + " has unknown encoding " +
              std::to_string(enc));
    }
    c.encoding = static_cast<chunk_encoding>(enc);
    if (footer.size() - pos < c.digest.size()) {
      corrupt("chunk table is truncated mid-digest");
    }
    std::memcpy(c.digest.data(), footer.data() + pos, c.digest.size());
    pos += c.digest.size();

    if (c.offset < sizeof(kMagic) + 1 ||
        c.offset + c.stored_size > footer_offset) {
      corrupt("chunk " + std::to_string(i) +
              " points past the end of the container payload");
    }
    if (c.stored_size == 0 || c.raw_size == 0) {
      corrupt("chunk " + std::to_string(i) + " is empty");
    }
    if (c.first_event < last_first_event) {
      corrupt("chunk " + std::to_string(i) + " event range goes backwards");
    }
    if (container_version >= 2 && c.first_offset > c.raw_size) {
      corrupt("chunk " + std::to_string(i) + " seek offset " +
              std::to_string(c.first_offset) + " lands past its " +
              std::to_string(c.raw_size) + " raw bytes");
    }
    last_first_event = c.first_event;
    covered += c.raw_size;
    info.chunks.push_back(c);
  }
  if (pos != footer.size()) corrupt("footer carries trailing bytes");
  if (covered != info.raw_size) {
    corrupt("chunk raw sizes cover " + std::to_string(covered) +
            " bytes but the footer declares a " +
            std::to_string(info.raw_size) + "-byte stream");
  }
  if (info.raw_size > 0 && info.chunks.empty()) {
    corrupt("a non-empty stream with an empty chunk table");
  }
  return info;
}

container_info read_container_info(std::istream& in) {
  in.clear();
  in.seekg(0, std::ios::beg);
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) || std::memcmp(magic, kMagic, 4) != 0) {
    throw trace_error(
        "not a FutureRD trace container: bad magic (expected \"FRDZ\")");
  }
  const int version = in.get();
  // The version varint is a single byte for every version this build could
  // meet; a continuation bit set means a far-future format.
  if (version < 0 || (version & 0x80) != 0 ||
      static_cast<std::uint32_t>(version) < kMinContainerVersion ||
      static_cast<std::uint32_t>(version) > kContainerVersion) {
    throw trace_error("unsupported trace container version " +
                      std::to_string(version & 0x7f) +
                      " (this build reads versions " +
                      std::to_string(kMinContainerVersion) + ".." +
                      std::to_string(kContainerVersion) + ")");
  }

  in.clear();
  in.seekg(0, std::ios::end);
  const std::int64_t file_size = in.tellg();
  if (file_size < static_cast<std::int64_t>(sizeof(kMagic) + 1 +
                                            kTrailerSize)) {
    corrupt("file too small to hold a trailer (truncated container)");
  }
  in.seekg(file_size - static_cast<std::int64_t>(kTrailerSize), std::ios::beg);
  std::uint8_t trailer[kTrailerSize] = {};
  in.read(reinterpret_cast<char*>(trailer), kTrailerSize);
  if (in.gcount() != static_cast<std::streamsize>(kTrailerSize) ||
      std::memcmp(trailer + 8, kTrailerMagic, 4) != 0) {
    corrupt("trailer magic missing (truncated container)");
  }
  std::uint64_t footer_offset = 0;
  for (int i = 7; i >= 0; --i) footer_offset = (footer_offset << 8) | trailer[i];
  const std::uint64_t footer_end =
      static_cast<std::uint64_t>(file_size) - kTrailerSize;
  if (footer_offset < sizeof(kMagic) + 1 || footer_offset >= footer_end) {
    corrupt("trailer points at footer offset " + std::to_string(footer_offset) +
            " outside the file");
  }
  std::vector<std::uint8_t> footer(
      static_cast<std::size_t>(footer_end - footer_offset));
  in.seekg(static_cast<std::streamoff>(footer_offset), std::ios::beg);
  in.read(reinterpret_cast<char*>(footer.data()),
          static_cast<std::streamsize>(footer.size()));
  if (in.gcount() != static_cast<std::streamsize>(footer.size())) {
    corrupt("footer read cut short (truncated container)");
  }
  container_info info = parse_footer(footer, footer_offset,
                                     static_cast<std::uint32_t>(version));
  return info;
}

bool looks_like_container(std::istream& in) {
  const std::streampos at = in.tellg();
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  const bool got4 = in.gcount() == sizeof(magic);
  in.clear();
  in.seekg(at);
  return got4 && std::memcmp(magic, kMagic, 4) == 0;
}

}  // namespace frd::container
