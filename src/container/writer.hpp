// container_writer: a trace_sink that produces a .frdtz container.
//
// The sink owns an inner trace_writer whose bytes land in a chunking
// streambuf instead of the file: each byte rolls through the incremental
// content-defined chunker, and every finished chunk is deduplicated by
// SHA-1, LZ-compressed when that helps, and appended to the output stream.
// Peak memory is one chunk (<= chunk_params::max_size) plus the footer
// table — a million-event trace streams through without ever being whole in
// RAM. finish() seals the container (footer + trailer); like trace_writer,
// the destructor finishes on the happy path but swallows errors.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <streambuf>
#include <vector>

#include "compress/chunker.hpp"
#include "container/format.hpp"
#include "trace/codec.hpp"

namespace frd::container {

class container_writer final : public trace::trace_sink {
 public:
  explicit container_writer(std::ostream& out, trace::trace_header h = {},
                            compress::chunk_params params = {});
  ~container_writer() override;
  container_writer(const container_writer&) = delete;
  container_writer& operator=(const container_writer&) = delete;

  // Forwarded to the inner trace_writer (which rejects a granule mismatch).
  void on_header(const trace::trace_header& h) override;
  void put(const trace::trace_event& e) override;
  // Ends the inner trace, flushes the open chunk, writes footer + trailer.
  // Idempotent; throws trace::trace_error when the stream failed.
  void finish() override;

  std::uint64_t events_written() const { return events_; }
  // The footer that was (or will be) written; complete after finish().
  const container_info& info() const { return info_; }

 private:
  // std::streambuf sitting between the inner trace_writer and the file:
  // accumulates the inner byte stream into content-defined chunks and hands
  // each finished chunk to the owning container_writer.
  class chunking_streambuf final : public std::streambuf {
   public:
    chunking_streambuf(container_writer& owner,
                       const compress::chunk_params& params)
        : owner_(owner), chunker_(params) {
      buf_.reserve(params.max_size);
    }

    // The next byte pushed begins event `index` (used to stamp first_event
    // on each chunk).
    void note_event_start(std::uint64_t index) {
      pending_event_ = index;
      pending_start_ = true;
    }
    // Emits the open (sub-min-size) chunk, if any.
    void flush_open_chunk();
    std::uint64_t raw_total() const { return raw_total_; }

   protected:
    int_type overflow(int_type ch) override;
    std::streamsize xsputn(const char* s, std::streamsize n) override;

   private:
    void push_byte(std::uint8_t b);

    container_writer& owner_;
    compress::stream_chunker chunker_;
    std::vector<std::uint8_t> buf_;  // the open chunk's raw bytes
    std::uint64_t raw_total_ = 0;
    // First event starting in the open chunk; `started_` is the index the
    // NEXT event to start will get, which is what a start-free chunk reports.
    std::uint64_t open_first_event_ = 0;
    // Byte offset of that event within the open chunk (the v2 seek index).
    std::uint64_t open_first_offset_ = 0;
    bool open_has_start_ = false;
    std::uint64_t pending_event_ = 0;
    bool pending_start_ = false;
    std::uint64_t started_ = 0;
  };

  // Dedups, compresses, and appends one finished chunk; records its table
  // entry with `first_event` / `first_offset` (the latter == raw.size() when
  // no event starts in the chunk).
  void emit_chunk(const std::vector<std::uint8_t>& raw,
                  std::uint64_t first_event, std::uint64_t first_offset);

  std::ostream& out_;
  chunking_streambuf buf_;
  std::ostream inner_stream_;
  std::unique_ptr<trace::trace_writer> inner_;
  container_info info_;
  // Full-digest dedup index: raw content -> first occurrence's table entry.
  std::map<compress::sha1_digest, std::size_t> dedup_;
  std::uint64_t file_offset_ = 0;
  std::uint64_t events_ = 0;
  int ctor_exceptions_;
  bool finished_ = false;
};

}  // namespace frd::container
