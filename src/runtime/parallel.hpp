// Parallel work-stealing runtime.
//
// The paper's detector runs sequentially, but the substrate it instruments
// is a Cilk-style parallel platform; this runtime is our stand-in for Intel
// Cilk Plus when detection is OFF (examples, speedup measurements). It is a
// child-stealing scheduler: `spawn` enqueues the child on the worker's
// Chase-Lev deque and the parent continues; `sync` helps (pops own deque,
// then steals) until every child of the frame has completed. Futures are
// eagerly *created* tasks; `get` leapfrogs — claims the body and runs it
// inline if no one has started it, and otherwise yields until the claimer
// finishes. A blocked get must NOT claim unrelated tasks: doing so buries
// futures other workers wait on under this worker's spin, and two workers
// burying each other's wait targets is a deadlock (observed on wavefront
// grids at >= 3 workers). Leapfrogging only ever stacks a task's own
// dependency above it, so for the forward-pointing future DAGs the paper's
// detectors accept (§2) the blocked-wait chains cannot cycle.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>

#include "support/check.hpp"

namespace frd::rt {
namespace par {

// The dynamic scope of one function instance: counts direct spawned
// children that have not completed yet (sync waits on this).
struct frame {
  std::atomic<std::uint64_t> pending{0};
};

class scheduler;

struct task {
  virtual ~task() = default;
  // Runs the task body. Called exactly once by whoever dequeued/claimed it;
  // the caller deletes the task afterwards.
  virtual void execute(scheduler& sched) = 0;
};

struct future_state_base {
  enum class status : int { pending, running, done };
  std::atomic<status> st{status::pending};
  // The body, installed by create_future before the task is pushed. Living
  // in the shared state (not the queued task) lets a blocked get leapfrog:
  // claim and run the awaited body inline. The runner must mark_done().
  std::function<void(scheduler&)> run_body;

  // True if the caller won the right to run the body.
  bool claim() {
    status expected = status::pending;
    return st.compare_exchange_strong(expected, status::running,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
  }
  bool done() const { return st.load(std::memory_order_acquire) == status::done; }
  void mark_done() { st.store(status::done, std::memory_order_release); }

  // Claims and runs the body here if nobody has started it.
  bool run_if_pending(scheduler& s) {
    if (!claim()) return false;
    run_body(s);
    return true;
  }
};

template <typename T>
struct future_state : future_state_base {
  std::optional<T> value;
};
template <>
struct future_state<void> : future_state_base {};

// Worker pool + deques + TLS bindings; definition in parallel.cpp.
class scheduler {
 public:
  explicit scheduler(unsigned workers);  // 0 = hardware_concurrency
  ~scheduler();
  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  unsigned worker_count() const;

  void enter_host();  // binds the calling thread as worker 0
  void leave_host();

  void push_task(task* t);              // current worker's deque
  void wait_frame(frame& fr);           // help until fr.pending == 0
  void wait_future(future_state_base& st);  // help until st.done()
  // Generic helping loop: executes ready tasks (own deque, then steals)
  // until `done()` returns true. The online engine's quiesce and the fuzz
  // executor's wait-for-creation are built on this.
  void help_until(const std::function<bool()>& done);

  frame* current_frame() const;
  frame* swap_current_frame(frame* fr);

  // Index of the calling thread's worker binding within its scheduler
  // (host = 0); asserts if the thread is not bound. The online engine keys
  // its per-worker SPSC rings on this.
  static unsigned current_worker_index();

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

// Runs `fn` as a Cilk function instance: fresh frame for its spawns, and an
// implicit sync before it returns.
template <typename F>
void run_as_function(scheduler& s, F& fn) {
  frame fr;
  frame* prev = s.swap_current_frame(&fr);
  fn();
  if (fr.pending.load(std::memory_order_acquire) != 0) s.wait_frame(fr);
  s.swap_current_frame(prev);
}

template <typename F>
struct child_task final : task {
  child_task(frame* parent, F&& fn, std::atomic<std::uint64_t>* live = nullptr)
      : parent_(parent), fn_(std::move(fn)), live_(live) {}
  void execute(scheduler& sched) override {
    run_as_function(sched, fn_);
    parent_->pending.fetch_sub(1, std::memory_order_release);
    if (live_ != nullptr) live_->fetch_sub(1, std::memory_order_release);
  }
  frame* parent_;
  F fn_;
  std::atomic<std::uint64_t>* live_;  // runtime's outstanding-task counter
};

// The queued face of a future: the body itself lives in the shared state
// (so a blocked get can leapfrog into it); the task only offers the state a
// chance to run when dequeued, and settles the live-task accounting.
struct future_task final : task {
  explicit future_task(std::shared_ptr<future_state_base> st,
                       std::atomic<std::uint64_t>* live = nullptr)
      : state_(std::move(st)), live_(live) {}
  void execute(scheduler& sched) override {
    state_->run_if_pending(sched);
    if (live_ != nullptr) live_->fetch_sub(1, std::memory_order_release);
  }
  std::shared_ptr<future_state_base> state_;
  std::atomic<std::uint64_t>* live_;
};

}  // namespace par

// Shared-state handle to a parallel future. Copyable (shared state), so
// general programs can stash handles in arrays and touch them repeatedly.
template <typename T>
class pfuture {
 public:
  pfuture() = default;
  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->done(); }

  // Handle-style join, mirroring rt::future<T>::get() so generic kernels
  // (templated on the runtime via future_of) run unchanged here.
  const T& get() {
    FRD_CHECK_MSG(state_ != nullptr, "get() on an invalid pfuture");
    sched_->wait_future(*state_);
    return *state_->value;
  }

 private:
  friend class parallel_runtime;
  pfuture(std::shared_ptr<par::future_state<T>> s, par::scheduler* sched)
      : state_(std::move(s)), sched_(sched) {}
  std::shared_ptr<par::future_state<T>> state_;
  par::scheduler* sched_ = nullptr;
};

template <>
class pfuture<void> {
 public:
  pfuture() = default;
  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->done(); }
  void get() {
    FRD_CHECK_MSG(state_ != nullptr, "get() on an invalid pfuture");
    sched_->wait_future(*state_);
  }

 private:
  friend class parallel_runtime;
  pfuture(std::shared_ptr<par::future_state<void>> s, par::scheduler* sched)
      : state_(std::move(s)), sched_(sched) {}
  std::shared_ptr<par::future_state<void>> state_;
  par::scheduler* sched_ = nullptr;
};

class parallel_runtime {
 public:
  explicit parallel_runtime(unsigned workers = 0) : sched_(workers) {}

  // Generic-kernel seam shared with serial_runtime and online::runtime:
  // kernels templated on the runtime name their future type through this.
  template <typename T>
  using future_of = pfuture<T>;

  unsigned worker_count() const { return sched_.worker_count(); }

  // Single-touch enforcement is a detection-time concern; the bare parallel
  // runtime accepts the call (generic drivers may make it) and ignores it.
  void enforce_single_touch(bool /*on*/) {}

  // Runs root to completion (including everything it transitively spawned).
  template <typename F>
  void run(F&& root) {
    sched_.enter_host();
    par::run_as_function(sched_, root);
    sched_.leave_host();
  }

  template <typename F>
  void spawn(F&& f) {
    par::frame* fr = sched_.current_frame();
    FRD_CHECK_MSG(fr != nullptr, "spawn outside run()");
    fr->pending.fetch_add(1, std::memory_order_relaxed);
    live_.fetch_add(1, std::memory_order_relaxed);
    sched_.push_task(
        new par::child_task<std::decay_t<F>>(fr, std::forward<F>(f), &live_));
  }

  void sync() {
    par::frame* fr = sched_.current_frame();
    FRD_CHECK_MSG(fr != nullptr, "sync outside run()");
    if (fr->pending.load(std::memory_order_acquire) != 0) sched_.wait_frame(*fr);
  }

  template <typename F>
  auto create_future(F&& f) -> pfuture<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto state = std::make_shared<par::future_state<R>>();
    // fn rides in a shared_ptr because std::function requires a copyable
    // callable; the raw back-pointer into the state is safe — the closure
    // is owned by that same state.
    state->run_body = [st = state.get(),
                       fn = std::make_shared<std::decay_t<F>>(
                           std::forward<F>(f))](par::scheduler& sched) {
      auto body = [&] {
        if constexpr (std::is_void_v<R>) {
          (*fn)();
        } else {
          st->value.emplace((*fn)());
        }
      };
      par::run_as_function(sched, body);
      st->mark_done();
    };
    live_.fetch_add(1, std::memory_order_relaxed);
    sched_.push_task(new par::future_task(state, &live_));
    return pfuture<R>{std::move(state), &sched_};
  }

  // Helps until every task ever pushed has finished executing — including
  // futures nobody touched. Callable only from inside run().
  void quiesce() {
    sched_.help_until(
        [this] { return live_.load(std::memory_order_acquire) == 0; });
  }

  // Helps until `done()` holds; for code that waits on its own condition
  // (e.g. a slot being published by a concurrently running task).
  template <typename P>
  void help_until(P&& done) {
    sched_.help_until(std::forward<P>(done));
  }

  template <typename T>
  const T& get(pfuture<T>& fut) {
    FRD_CHECK_MSG(fut.state_ != nullptr, "get() on an invalid pfuture");
    sched_.wait_future(*fut.state_);
    return *fut.state_->value;
  }
  void get(pfuture<void>& fut) {
    FRD_CHECK_MSG(fut.state_ != nullptr, "get() on an invalid pfuture");
    sched_.wait_future(*fut.state_);
  }

 private:
  par::scheduler sched_;
  std::atomic<std::uint64_t> live_{0};  // tasks pushed but not yet finished
};

}  // namespace frd::rt
