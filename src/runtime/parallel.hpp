// Parallel work-stealing runtime.
//
// The paper's detector runs sequentially, but the substrate it instruments
// is a Cilk-style parallel platform; this runtime is our stand-in for Intel
// Cilk Plus when detection is OFF (examples, speedup measurements). It is a
// child-stealing scheduler: `spawn` enqueues the child on the worker's
// Chase-Lev deque and the parent continues; `sync` helps (pops own deque,
// then steals) until every child of the frame has completed. Futures are
// eagerly *created* tasks; `get` claims the task and runs it inline if no
// one has started it, otherwise helps until it is done.
//
// A waiting worker never blocks on a lock: it executes other ready tasks,
// so there is no scheduler-induced deadlock for forward-pointing futures
// (the only kind the paper's detector accepts, §2).
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>

#include "support/check.hpp"

namespace frd::rt {
namespace par {

// The dynamic scope of one function instance: counts direct spawned
// children that have not completed yet (sync waits on this).
struct frame {
  std::atomic<std::uint64_t> pending{0};
};

class scheduler;

struct task {
  virtual ~task() = default;
  // Runs the task body. Called exactly once by whoever dequeued/claimed it;
  // the caller deletes the task afterwards.
  virtual void execute(scheduler& sched) = 0;
};

struct future_state_base {
  enum class status : int { pending, running, done };
  std::atomic<status> st{status::pending};

  // True if the caller won the right to run the body.
  bool claim() {
    status expected = status::pending;
    return st.compare_exchange_strong(expected, status::running,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
  }
  bool done() const { return st.load(std::memory_order_acquire) == status::done; }
  void mark_done() { st.store(status::done, std::memory_order_release); }
};

template <typename T>
struct future_state : future_state_base {
  std::optional<T> value;
};
template <>
struct future_state<void> : future_state_base {};

// Worker pool + deques + TLS bindings; definition in parallel.cpp.
class scheduler {
 public:
  explicit scheduler(unsigned workers);  // 0 = hardware_concurrency
  ~scheduler();
  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  unsigned worker_count() const;

  void enter_host();  // binds the calling thread as worker 0
  void leave_host();

  void push_task(task* t);              // current worker's deque
  void wait_frame(frame& fr);           // help until fr.pending == 0
  void wait_future(future_state_base& st);  // help until st.done()

  frame* current_frame() const;
  frame* swap_current_frame(frame* fr);

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

// Runs `fn` as a Cilk function instance: fresh frame for its spawns, and an
// implicit sync before it returns.
template <typename F>
void run_as_function(scheduler& s, F& fn) {
  frame fr;
  frame* prev = s.swap_current_frame(&fr);
  fn();
  if (fr.pending.load(std::memory_order_acquire) != 0) s.wait_frame(fr);
  s.swap_current_frame(prev);
}

template <typename F>
struct child_task final : task {
  child_task(frame* parent, F&& fn) : parent_(parent), fn_(std::move(fn)) {}
  void execute(scheduler& sched) override {
    run_as_function(sched, fn_);
    parent_->pending.fetch_sub(1, std::memory_order_release);
  }
  frame* parent_;
  F fn_;
};

template <typename State, typename F>
struct future_task final : task {
  future_task(std::shared_ptr<State> st, F&& fn)
      : state_(std::move(st)), fn_(std::move(fn)) {}
  void execute(scheduler& sched) override {
    if (!state_->claim()) return;  // a get() got there first
    auto body = [this] {
      if constexpr (requires { state_->value; }) {
        state_->value.emplace(fn_());
      } else {
        fn_();
      }
    };
    run_as_function(sched, body);
    state_->mark_done();
  }
  std::shared_ptr<State> state_;
  F fn_;
};

}  // namespace par

// Shared-state handle to a parallel future. Copyable (shared state), so
// general programs can stash handles in arrays and touch them repeatedly.
template <typename T>
class pfuture {
 public:
  pfuture() = default;
  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->done(); }

 private:
  friend class parallel_runtime;
  explicit pfuture(std::shared_ptr<par::future_state<T>> s)
      : state_(std::move(s)) {}
  std::shared_ptr<par::future_state<T>> state_;
};

class parallel_runtime {
 public:
  explicit parallel_runtime(unsigned workers = 0) : sched_(workers) {}

  unsigned worker_count() const { return sched_.worker_count(); }

  // Runs root to completion (including everything it transitively spawned).
  template <typename F>
  void run(F&& root) {
    sched_.enter_host();
    par::run_as_function(sched_, root);
    sched_.leave_host();
  }

  template <typename F>
  void spawn(F&& f) {
    par::frame* fr = sched_.current_frame();
    FRD_CHECK_MSG(fr != nullptr, "spawn outside run()");
    fr->pending.fetch_add(1, std::memory_order_relaxed);
    sched_.push_task(new par::child_task<std::decay_t<F>>(fr, std::forward<F>(f)));
  }

  void sync() {
    par::frame* fr = sched_.current_frame();
    FRD_CHECK_MSG(fr != nullptr, "sync outside run()");
    if (fr->pending.load(std::memory_order_acquire) != 0) sched_.wait_frame(*fr);
  }

  template <typename F>
  auto create_future(F&& f) -> pfuture<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto state = std::make_shared<par::future_state<R>>();
    sched_.push_task(new par::future_task<par::future_state<R>, std::decay_t<F>>(
        state, std::forward<F>(f)));
    return pfuture<R>{std::move(state)};
  }

  template <typename T>
  const T& get(pfuture<T>& fut) {
    FRD_CHECK_MSG(fut.state_ != nullptr, "get() on an invalid pfuture");
    sched_.wait_future(*fut.state_);
    return *fut.state_->value;
  }
  void get(pfuture<void>& fut) {
    FRD_CHECK_MSG(fut.state_ != nullptr, "get() on an invalid pfuture");
    sched_.wait_future(*fut.state_);
  }

 private:
  par::scheduler sched_;
};

}  // namespace frd::rt
