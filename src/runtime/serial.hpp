// Serial depth-first eager task runtime (the detection substrate).
//
// Race detection in the paper always executes the program *sequentially in
// depth-first eager order* (§2): `spawn` and `create_fut` run the child to
// completion before the parent's continuation resumes, so a `sync` never
// waits and a forward-pointing `get_fut` always finds its future finished.
// This runtime realizes exactly that order, mints strand/function ids, and
// streams the dag-growth events of events.hpp to an execution_listener.
//
// API sketch (mirrors Cilk + the paper's future primitives):
//
//   serial_runtime rt{&detector};
//   rt.run([&] {
//     rt.spawn([&] { left(); });
//     right();
//     rt.sync();
//     auto h = rt.create_future([&] { return produce(); });
//     ...
//     int x = rt.get(h);
//   });
//
// Functions have Cilk semantics: an implicit sync runs when a spawned or
// future function body returns with outstanding children.
#pragma once

#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/events.hpp"
#include "support/check.hpp"

namespace frd::rt {

class serial_runtime;

namespace detail {
// State shared by future<T> for every payload type.
struct future_core {
  serial_runtime* rt = nullptr;
  func_id fn = kNoFunc;
  strand_id last_strand = kNoStrand;
  strand_id creator_strand = kNoStrand;  // u at create_fut; structured check
  int touches = 0;
  bool valid = false;
};
}  // namespace detail

// Handle to an eagerly evaluated future. Move-only: the handle *is* the
// future's bookkeeping record (no heap allocation per future), so copies
// would fork the touch count that single-touch enforcement relies on.
// General (multi-touch) programs call get() repeatedly on the same handle.
template <typename T>
class future {
 public:
  future() = default;
  future(future&& o) noexcept = default;
  future& operator=(future&& o) noexcept = default;
  future(const future&) = delete;
  future& operator=(const future&) = delete;

  bool valid() const { return core_.valid; }
  int touch_count() const { return core_.touches; }

  // Joins with the future: emits the get_fut event and returns the value.
  // Defined after serial_runtime (needs its definition).
  const T& get();

 private:
  friend class serial_runtime;
  detail::future_core core_;
  std::optional<T> value_;
};

template <>
class future<void> {
 public:
  future() = default;
  future(future&&) noexcept = default;
  future& operator=(future&&) noexcept = default;
  future(const future&) = delete;
  future& operator=(const future&) = delete;

  bool valid() const { return core_.valid; }
  int touch_count() const { return core_.touches; }
  void get();

 private:
  friend class serial_runtime;
  detail::future_core core_;
};

class serial_runtime {
 public:
  explicit serial_runtime(execution_listener* listener = nullptr)
      : listener_(listener) {}
  serial_runtime(const serial_runtime&) = delete;
  serial_runtime& operator=(const serial_runtime&) = delete;

  // Generic-kernel seam shared with parallel_runtime and online::runtime:
  // kernels templated on the runtime name their future type through this.
  template <typename T>
  using future_of = future<T>;

  // When true, get() aborts on a second touch of the same future handle —
  // the paper's structured-future "single-touch" restriction (§2).
  void enforce_single_touch(bool on) { single_touch_ = on; }

  // Eager depth-first execution means every task created so far has already
  // run to completion; the parallel runtimes' quiesce/help_until degenerate
  // to no-ops here (the waited-on condition must already hold).
  void quiesce() {}
  template <typename P>
  void help_until(P&& done) {
    FRD_CHECK_MSG(done(),
                  "help_until condition not met under eager serial execution "
                  "(program depends on out-of-order completion)");
  }

  // Runs `root` as the main function of a fresh program; reusable.
  template <typename F>
  void run(F&& root) {
    FRD_CHECK_MSG(stack_.empty(), "serial_runtime::run is not reentrant");
    next_strand_ = 0;
    next_func_ = 0;
    const func_id main_fn = next_func_++;
    cur_strand_ = next_strand_++;
    if (listener_) listener_->on_program_begin(main_fn, cur_strand_);
    stack_.push_back(frame{main_fn, {}});
    if (listener_) listener_->on_strand_begin(cur_strand_, main_fn);
    root();
    if (!stack_.back().children.empty()) sync();
    stack_.pop_back();
    if (listener_) listener_->on_program_end(cur_strand_);
  }

  // Spawns child function `f`; logically parallel with the continuation,
  // executed eagerly here. The child joins at the enclosing sync.
  template <typename F>
  void spawn(F&& f) {
    FRD_CHECK_MSG(!stack_.empty(), "spawn outside run()");
    const strand_id u = cur_strand_;
    const func_id parent = stack_.back().fn;
    const func_id child = next_func_++;
    const strand_id w = next_strand_++;  // child's first strand
    const strand_id v = next_strand_++;  // parent's continuation strand
    if (listener_) listener_->on_spawn(parent, u, child, w, v);
    const strand_id child_last = run_child(child, w, parent, std::forward<F>(f));
    stack_.back().children.push_back(child_record{child, u, w, child_last, v});
    cur_strand_ = v;
    if (listener_) listener_->on_strand_begin(v, parent);
  }

  // Joins every child spawned in the current function scope since the last
  // sync. No-op when there are none (like Cilk's sync).
  void sync() {
    FRD_CHECK_MSG(!stack_.empty(), "sync outside run()");
    frame& fr = stack_.back();
    if (fr.children.empty()) return;
    join_scratch_.clear();
    for (std::size_t i = 0; i < fr.children.size(); ++i)
      join_scratch_.push_back(next_strand_++);
    if (listener_) {
      execution_listener::sync_event e{fr.fn, cur_strand_, fr.children,
                                       join_scratch_};
      listener_->on_sync(e);
    }
    cur_strand_ = join_scratch_.back();
    fr.children.clear();
    if (listener_) listener_->on_strand_begin(cur_strand_, fr.fn);
  }

  // Creates a future running `f` as its own function instance. The future
  // escapes sync scopes; it joins only at get().
  template <typename F>
  auto create_future(F&& f) -> future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    FRD_CHECK_MSG(!stack_.empty(), "create_future outside run()");
    const strand_id u = cur_strand_;
    const func_id parent = stack_.back().fn;
    const func_id child = next_func_++;
    const strand_id w = next_strand_++;
    const strand_id v = next_strand_++;
    if (listener_) listener_->on_create(parent, u, child, w, v);
    future<R> fut;
    strand_id child_last;
    if constexpr (std::is_void_v<R>) {
      child_last = run_child(child, w, parent, std::forward<F>(f));
    } else {
      child_last = run_child(child, w, parent,
                             [&] { fut.value_.emplace(f()); });
    }
    fut.core_ = detail::future_core{this, child, child_last, u, 0, true};
    cur_strand_ = v;
    if (listener_) listener_->on_strand_begin(v, parent);
    return fut;
  }

  // Joins with `fut` (emits the get_fut event). Value access is on the
  // future itself; most callers use fut.get().
  void touch(detail::future_core& core) {
    FRD_CHECK_MSG(core.valid, "get() on an invalid future handle");
    FRD_CHECK_MSG(core.rt == this, "future joined on a different runtime");
    ++core.touches;
    FRD_CHECK_MSG(!single_touch_ || core.touches == 1,
                  "structured futures are single-touch (paper S2); second "
                  "get() on the same handle");
    const strand_id u = cur_strand_;
    const func_id fn = stack_.back().fn;
    const strand_id v = next_strand_++;
    if (listener_)
      listener_->on_get(fn, u, v, core.fn, core.last_strand, core.creator_strand);
    cur_strand_ = v;
    if (listener_) listener_->on_strand_begin(v, fn);
  }

  template <typename T>
  const T& get(future<T>& fut) {
    return fut.get();
  }
  void get(future<void>& fut) { fut.get(); }

  strand_id current_strand() const { return cur_strand_; }
  func_id current_function() const {
    return stack_.empty() ? kNoFunc : stack_.back().fn;
  }
  std::uint32_t strand_count() const { return next_strand_; }
  std::uint32_t function_count() const { return next_func_; }
  execution_listener* listener() const { return listener_; }

 private:
  struct frame {
    func_id fn;
    std::vector<child_record> children;
  };

  // Runs a child function body eagerly in its own frame; returns the child's
  // last strand id and fires on_return.
  template <typename F>
  strand_id run_child(func_id child, strand_id first, func_id parent, F&& body) {
    stack_.push_back(frame{child, {}});
    cur_strand_ = first;
    if (listener_) listener_->on_strand_begin(first, child);
    body();
    if (!stack_.back().children.empty()) sync();  // Cilk's implicit sync
    const strand_id last = cur_strand_;
    stack_.pop_back();
    if (listener_) listener_->on_return(child, last, parent);
    return last;
  }

  execution_listener* listener_;
  std::vector<frame> stack_;
  std::vector<strand_id> join_scratch_;
  strand_id cur_strand_ = kNoStrand;
  std::uint32_t next_strand_ = 0;
  std::uint32_t next_func_ = 0;
  bool single_touch_ = false;
};

template <typename T>
const T& future<T>::get() {
  FRD_CHECK_MSG(core_.rt != nullptr, "get() on a default-constructed future");
  core_.rt->touch(core_);
  return *value_;
}

inline void future<void>::get() {
  FRD_CHECK_MSG(core_.rt != nullptr, "get() on a default-constructed future");
  core_.rt->touch(core_);
}

}  // namespace frd::rt
