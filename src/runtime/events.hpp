// Execution events emitted by the serial depth-first eager runtime.
//
// Both race-detection backends (MultiBags, MultiBags+) and the validation
// dag recorder are execution_listeners. The runtime mints dense strand and
// function-instance ids and reports every point where the computation dag
// grows, using the paper's node/edge vocabulary (§2, §5):
//
//   on_spawn   u --spawn-->  w (child first strand),  u --continue--> v
//   on_create  u --create--> w (future first strand), u --continue--> v
//   on_sync    one *binary* join per outstanding child, innermost first
//              (paper footnote 2 assumes binary joins; DESIGN.md §5):
//              t1 --join--> j,  t2 --continue--> j
//   on_get     w (future last strand) --get--> v,  u --continue--> v
//
// A sync joining c children mints c join strands; only the last of them is
// a real program strand (the others are virtual glue nodes of the binary
// decomposition and never execute an instruction).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace frd::rt {

using strand_id = std::uint32_t;
using func_id = std::uint32_t;
inline constexpr strand_id kNoStrand = static_cast<strand_id>(-1);
inline constexpr func_id kNoFunc = static_cast<func_id>(-1);

// One outstanding spawned child of a frame, in spawn order. All fields are
// strand ids except `child`.
struct child_record {
  func_id child = kNoFunc;
  strand_id fork_strand = kNoStrand;  // f: parent strand that ended with spawn
  strand_id child_first = kNoStrand;  // s1: first strand of the child
  strand_id child_last = kNoStrand;   // t1: last strand of the child
  strand_id cont_first = kNoStrand;   // s2: parent continuation after the spawn
};

class execution_listener {
 public:
  virtual ~execution_listener() = default;

  virtual void on_program_begin(func_id /*main_fn*/, strand_id /*first*/) {}
  virtual void on_program_end(strand_id /*last*/) {}

  // A strand starts executing. Fired for every real strand, in execution
  // order, after the construct event that minted it. Virtual join strands
  // never begin.
  virtual void on_strand_begin(strand_id /*s*/, func_id /*owner*/) {}

  // F (= parent, current strand u) spawns child G whose first strand is w;
  // the continuation of F will resume as strand v once G returns.
  virtual void on_spawn(func_id /*parent*/, strand_id /*u*/, func_id /*child*/,
                        strand_id /*w*/, strand_id /*v*/) {}

  // Same shape for create_fut.
  virtual void on_create(func_id /*parent*/, strand_id /*u*/, func_id /*child*/,
                         strand_id /*w*/, strand_id /*v*/) {}

  // Child function (spawned or future) finished; `last` is its final strand.
  virtual void on_return(func_id /*child*/, strand_id /*last*/,
                         func_id /*parent*/) {}

  struct sync_event {
    func_id fn;              // the syncing function
    strand_id before;        // strand that ended with the sync
    std::span<const child_record> children;  // outstanding children, spawn order
    // join_strands[i] joins children[children.size()-1-i]; its t2 side is
    // `before` for i == 0 and join_strands[i-1] for i > 0. The last entry is
    // the real strand that resumes fn.
    std::span<const strand_id> join_strands;
  };
  virtual void on_sync(const sync_event& /*e*/) {}

  // fn's strand u ended with get_fut on future `fut` whose last strand is w;
  // fn resumes as strand v. `creator` is the strand that ended with the
  // matching create_fut (detectors use it to validate the structured-future
  // discipline: creator must be sequentially before u, §2).
  virtual void on_get(func_id /*fn*/, strand_id /*u*/, strand_id /*v*/,
                      func_id /*fut*/, strand_id /*w*/, strand_id /*creator*/) {}
};

// Fans one event stream out to several listeners (detector + trace recorder
// + oracles in the validation tests). Listeners are invoked in registration
// order; the fan-out grows as needed.
//
// Empty and single-listener muxes take a fast path: `single_` caches the
// lone listener so every callback is one branch + one direct forward instead
// of vector iteration (begin/end loads + loop bookkeeping per event). This
// matters on the replay and online hot paths, where a mux with one real
// listener is the common wiring; callers that can, still bypass the mux
// entirely via target() (session::build_listener does).
class listener_mux final : public execution_listener {
 public:
  void add(execution_listener* l) {
    listeners_.push_back(l);
    single_ = listeners_.size() == 1 ? l : nullptr;
  }
  std::size_t size() const { return listeners_.size(); }

  // The cheapest equivalent listener: nullptr when empty, the lone listener
  // when singular, the mux itself otherwise.
  execution_listener* target() {
    if (listeners_.empty()) return nullptr;
    return single_ != nullptr ? single_ : this;
  }

  void on_program_begin(func_id f, strand_id s) override {
    if (single_) return single_->on_program_begin(f, s);
    for (execution_listener* l : listeners_) l->on_program_begin(f, s);
  }
  void on_program_end(strand_id s) override {
    if (single_) return single_->on_program_end(s);
    for (execution_listener* l : listeners_) l->on_program_end(s);
  }
  void on_strand_begin(strand_id s, func_id f) override {
    if (single_) return single_->on_strand_begin(s, f);
    for (execution_listener* l : listeners_) l->on_strand_begin(s, f);
  }
  void on_spawn(func_id p, strand_id u, func_id c, strand_id w,
                strand_id v) override {
    if (single_) return single_->on_spawn(p, u, c, w, v);
    for (execution_listener* l : listeners_) l->on_spawn(p, u, c, w, v);
  }
  void on_create(func_id p, strand_id u, func_id c, strand_id w,
                 strand_id v) override {
    if (single_) return single_->on_create(p, u, c, w, v);
    for (execution_listener* l : listeners_) l->on_create(p, u, c, w, v);
  }
  void on_return(func_id c, strand_id last, func_id p) override {
    if (single_) return single_->on_return(c, last, p);
    for (execution_listener* l : listeners_) l->on_return(c, last, p);
  }
  void on_sync(const sync_event& e) override {
    if (single_) return single_->on_sync(e);
    for (execution_listener* l : listeners_) l->on_sync(e);
  }
  void on_get(func_id fn, strand_id u, strand_id v, func_id fut, strand_id w,
              strand_id creator) override {
    if (single_) return single_->on_get(fn, u, v, fut, w, creator);
    for (execution_listener* l : listeners_) l->on_get(fn, u, v, fut, w, creator);
  }

 private:
  std::vector<execution_listener*> listeners_;
  execution_listener* single_ = nullptr;  // set iff exactly one listener
};

}  // namespace frd::rt
