// Scheduler internals for the parallel runtime: Chase-Lev deques, the
// worker pool, and the help-while-waiting loops.
#include "runtime/parallel.hpp"

#include <thread>
#include <vector>

#include "support/prng.hpp"

namespace frd::rt::par {

namespace {

// Chase-Lev work-stealing deque (memory orders per Le et al., PPoPP'13).
// Owner pushes/pops at the bottom; thieves steal from the top.
class work_deque {
 public:
  work_deque() {
    rings_.push_back(std::make_unique<ring>(kInitialCap));
    active_.store(rings_.back().get(), std::memory_order_relaxed);
  }
  work_deque(const work_deque&) = delete;
  work_deque& operator=(const work_deque&) = delete;

  void push(task* t) {
    std::size_t b = bottom_.load(std::memory_order_relaxed);
    std::size_t tp = top_.load(std::memory_order_acquire);
    ring* r = active_.load(std::memory_order_relaxed);
    if (b - tp >= r->capacity - 1) {
      r = grow(r, b, tp);
    }
    r->put(b, t);
    // Release store (not fence + relaxed): thieves acquire-load bottom_, so
    // this publishes the task payload to them — and unlike a standalone
    // fence, ThreadSanitizer models it, keeping the TSan CI job meaningful.
    bottom_.store(b + 1, std::memory_order_release);
  }

  task* pop() {
    std::size_t b = bottom_.load(std::memory_order_relaxed) - 1;
    ring* r = active_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::size_t tp = top_.load(std::memory_order_relaxed);
    if (tp > b) {  // deque was empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    task* x = r->get(b);
    if (tp == b) {  // last element: race against thieves
      if (!top_.compare_exchange_strong(tp, tp + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        x = nullptr;  // lost to a thief
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return x;
  }

  task* steal() {
    std::size_t tp = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::size_t b = bottom_.load(std::memory_order_acquire);
    if (tp >= b) return nullptr;
    ring* r = active_.load(std::memory_order_consume);
    task* x = r->get(tp);
    if (!top_.compare_exchange_strong(tp, tp + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race; caller retries elsewhere
    }
    return x;
  }

 private:
  static constexpr std::size_t kInitialCap = 256;

  struct ring {
    explicit ring(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(cap) {}
    const std::size_t capacity;
    const std::size_t mask;
    std::vector<std::atomic<task*>> slots;
    task* get(std::size_t i) const {
      return slots[i & mask].load(std::memory_order_relaxed);
    }
    void put(std::size_t i, task* t) {
      slots[i & mask].store(t, std::memory_order_relaxed);
    }
  };

  ring* grow(ring* old, std::size_t b, std::size_t tp) {
    auto bigger = std::make_unique<ring>(old->capacity * 2);
    for (std::size_t i = tp; i < b; ++i) bigger->put(i, old->get(i));
    ring* raw = bigger.get();
    // Old rings stay alive until the deque dies so in-flight thieves can
    // still read (stale) slots safely; their CAS on top_ will fail.
    rings_.push_back(std::move(bigger));
    active_.store(raw, std::memory_order_release);
    return raw;
  }

  std::atomic<std::size_t> top_{1};
  std::atomic<std::size_t> bottom_{1};
  std::atomic<ring*> active_{nullptr};
  std::vector<std::unique_ptr<ring>> rings_;
};

struct worker {
  explicit worker(unsigned idx) : index(idx) {}
  unsigned index;
  work_deque deque;
  frame* current_frame = nullptr;
};

thread_local worker* tls_worker = nullptr;

}  // namespace

struct scheduler::impl {
  // `owner` must be wired up before the pool threads spawn: pool_loop
  // dereferences it for every executed task, and a post-construction
  // assignment would race with an early steal.
  impl(unsigned n, scheduler* owner) : owner_backref(owner) {
    if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned i = 0; i < n; ++i) workers.push_back(std::make_unique<worker>(i));
    for (unsigned i = 1; i < n; ++i)
      threads.emplace_back([this, i] { pool_loop(*workers[i]); });
  }

  ~impl() {
    stop.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    // Drain anything left (shouldn't happen after clean runs).
    for (auto& w : workers) {
      while (task* t = w->deque.pop()) delete t;
    }
  }

  // Steals from a random victim; returns null on a failed round.
  task* steal_once(worker& self, prng& rng) {
    const std::size_t n = workers.size();
    if (n <= 1) return nullptr;
    const std::size_t victim =
        (self.index + 1 + rng.below(n - 1)) % n;  // anyone but self
    return workers[victim]->deque.steal();
  }

  // One scheduling round from `self`: own deque first, then a steal attempt.
  task* acquire(worker& self, prng& rng) {
    if (task* t = self.deque.pop()) return t;
    return steal_once(self, rng);
  }

  void execute(scheduler& owner, worker& self, task* t) {
    frame* saved = self.current_frame;
    t->execute(owner);
    self.current_frame = saved;
    delete t;
  }

  void pool_loop(worker& self) {
    tls_worker = &self;
    prng rng(0x9e3779b9u + self.index);
    unsigned idle_rounds = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (task* t = acquire(self, rng)) {
        execute(*owner_backref, self, t);
        idle_rounds = 0;
      } else if (++idle_rounds > 64) {
        std::this_thread::yield();
      }
    }
    tls_worker = nullptr;
  }

  std::vector<std::unique_ptr<worker>> workers;
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  scheduler* const owner_backref;
};

scheduler::scheduler(unsigned workers)
    : impl_(std::make_unique<impl>(workers, this)) {}

scheduler::~scheduler() = default;

unsigned scheduler::worker_count() const {
  return static_cast<unsigned>(impl_->workers.size());
}

void scheduler::enter_host() {
  FRD_CHECK_MSG(tls_worker == nullptr, "nested parallel_runtime::run");
  tls_worker = impl_->workers[0].get();
}

void scheduler::leave_host() {
  FRD_CHECK(tls_worker == impl_->workers[0].get());
  tls_worker = nullptr;
}

void scheduler::push_task(task* t) {
  FRD_CHECK_MSG(tls_worker != nullptr,
                "task submitted from a thread outside the runtime");
  tls_worker->deque.push(t);
}

frame* scheduler::current_frame() const {
  return tls_worker ? tls_worker->current_frame : nullptr;
}

frame* scheduler::swap_current_frame(frame* fr) {
  FRD_CHECK(tls_worker != nullptr);
  frame* prev = tls_worker->current_frame;
  tls_worker->current_frame = fr;
  return prev;
}

void scheduler::wait_frame(frame& fr) {
  worker& self = *tls_worker;
  prng rng(0xabcdef01u + self.index);
  unsigned idle = 0;
  while (fr.pending.load(std::memory_order_acquire) != 0) {
    if (task* t = impl_->acquire(self, rng)) {
      impl_->execute(*this, self, t);
      idle = 0;
    } else if (++idle > 64) {
      std::this_thread::yield();
    }
  }
}

void scheduler::wait_future(future_state_base& st) {
  // Leapfrog: if nobody has started the awaited body, run it right here.
  // Otherwise yield until the claimer finishes — a blocked get must never
  // claim unrelated tasks, or it buries futures other workers are waiting
  // on under this spin (two workers burying each other's wait targets is
  // the classic child-stealing-with-futures deadlock).
  st.run_if_pending(*this);
  unsigned idle = 0;
  while (!st.done()) {
    if (++idle > 64) std::this_thread::yield();
  }
}

void scheduler::help_until(const std::function<bool()>& done) {
  worker& self = *tls_worker;
  prng rng(0x7e1bda7au + self.index);
  unsigned idle = 0;
  while (!done()) {
    if (task* t = impl_->acquire(self, rng)) {
      impl_->execute(*this, self, t);
      idle = 0;
    } else if (++idle > 64) {
      std::this_thread::yield();
    }
  }
}

unsigned scheduler::current_worker_index() {
  FRD_CHECK_MSG(tls_worker != nullptr,
                "current_worker_index on a thread outside the runtime");
  return tls_worker->index;
}

}  // namespace frd::rt::par
