// R: the dag over attached sets, with an explicitly maintained transitive
// closure (paper §5). "R is simply a boolean reachability matrix where each
// cell (i,j) indicates whether there is a path from attached set i to
// attached set j. FutureRD maintains R as a vector of bit vectors ...
// whenever an edge is added to R, reachability is transitively propagated
// via parallel bit operations."
//
// We keep both directions (successor rows and predecessor rows) so that
// adding an arc between two *existing* nodes — which happens at sync when
// both subdags carry non-SP edges, Figure 4 lines 35-40 — updates the
// closure exactly: every predecessor of a gains all successors of b and
// vice versa.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitvec.hpp"
#include "support/check.hpp"

namespace frd::detect {

class rgraph {
 public:
  using node = std::uint32_t;
  static constexpr node kNoNode = static_cast<node>(-1);

  struct counters {
    std::uint64_t nodes = 0;
    std::uint64_t arcs = 0;
    std::uint64_t redundant_arcs = 0;  // closure already implied them
    std::uint64_t row_merges = 0;      // bit-row OR operations performed
  };

  node add_node();

  // Adds arc a -> b and transitively closes. No-ops on self-arcs and on
  // arcs already implied by the closure.
  void add_arc(node a, node b);

  // Strict reachability: true iff a != b and a path a -> b exists.
  bool reaches(node a, node b) const;

  // Predecessor row of b: every node with a path to b (never b itself —
  // R is acyclic and self-arcs are dropped). Reference valid until the next
  // add_node/add_arc. The query plane's batch pass resolves many sources
  // against one destination through this row: reaches(a, b) == (row has a).
  const bitvec& preds_of(node b) const {
    FRD_DCHECK(b < to_.size());
    return to_[b];
  }

  std::size_t size() const { return from_.size(); }
  const counters& stats() const { return stats_; }

  // Closure memory footprint (the paper notes R's memory becomes
  // substantial for small base cases; the fig8 bench reports this).
  std::size_t closure_bytes() const;

 private:
  std::vector<bitvec> from_;  // from_[i]: nodes reachable from i
  std::vector<bitvec> to_;    // to_[i]: nodes that reach i
  counters stats_;
};

}  // namespace frd::detect
