// R: the dag over attached sets, with an explicitly maintained transitive
// closure (paper §5). "R is simply a boolean reachability matrix where each
// cell (i,j) indicates whether there is a path from attached set i to
// attached set j. FutureRD maintains R as a vector of bit vectors ...
// whenever an edge is added to R, reachability is transitively propagated
// via parallel bit operations."
//
// The matrix is stored as PREDECESSOR rows only (to_[i]: every node with a
// path to i) — the one direction every consumer reads: the query plane
// resolves whole strand batches against preds_of, and reaches(a, b) is a
// bit test in to_[b]. Successor rows used to be maintained symmetrically,
// but almost every arc the §5 handlers add lands on a freshly created sink
// node (create/get/attachify make the target node just before the arc), and
// keeping successor rows closed charges every such arc O(|ancestors(a)|)
// row updates whose merged content is empty — that was the dominant
// dag-event cost on future-heavy traces. With predecessor rows only, a
// sink-target arc is ONE row merge; the rare arc onto a node that already
// has successors (the both-attached sync diamond, Figure 4 lines 35-40)
// finds the descendants to update by scanning the rows for the target's
// bit, gated by a per-node has-successor flag.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitvec.hpp"
#include "support/check.hpp"

namespace frd::detect {

class rgraph {
 public:
  using node = std::uint32_t;
  static constexpr node kNoNode = static_cast<node>(-1);

  struct counters {
    std::uint64_t nodes = 0;
    std::uint64_t arcs = 0;
    std::uint64_t redundant_arcs = 0;  // closure already implied them
    std::uint64_t row_merges = 0;      // bit-row OR operations performed
  };

  node add_node();

  // Adds arc a -> b and transitively closes. No-ops on self-arcs and on
  // arcs already implied by the closure.
  void add_arc(node a, node b);

  // Strict reachability: true iff a != b and a path a -> b exists.
  bool reaches(node a, node b) const;

  // Predecessor row of b: every node with a path to b (never b itself —
  // R is acyclic and self-arcs are dropped). Reference valid until the next
  // add_node/add_arc. The query plane's batch pass resolves many sources
  // against one destination through this row: reaches(a, b) == (row has a).
  const bitvec& preds_of(node b) const {
    FRD_DCHECK(b < to_.size());
    return to_[b];
  }

  std::size_t size() const { return to_.size(); }
  const counters& stats() const { return stats_; }

  // Closure memory footprint (the paper notes R's memory becomes
  // substantial for small base cases; the fig8 bench reports this).
  std::size_t closure_bytes() const;

 private:
  std::vector<bitvec> to_;  // to_[i]: nodes that reach i
  // has_succ_[i]: node i has at least one outgoing arc — the gate that lets
  // sink-target arcs skip the descendant scan entirely.
  std::vector<std::uint8_t> has_succ_;
  counters stats_;
};

}  // namespace frd::detect
