#include "detect/detector.hpp"

#include "detect/multibags.hpp"
#include "detect/multibags_plus.hpp"
#include "detect/vector_clock.hpp"

namespace frd::detect {

namespace hooks {
detector* g_detector = nullptr;

void active::read(const void* p, std::size_t n) {
  if (g_detector != nullptr) g_detector->on_read(p, n);
}
void active::write(const void* p, std::size_t n) {
  if (g_detector != nullptr) g_detector->on_write(p, n);
}
}  // namespace hooks

namespace {
std::unique_ptr<reachability_backend> make_backend(algorithm a) {
  if (a == algorithm::multibags) return std::make_unique<multibags>();
  if (a == algorithm::vector_clock)
    return std::make_unique<vector_clock_backend>();
  return std::make_unique<multibags_plus>();
}
}  // namespace

detector::detector(algorithm alg, level lvl)
    : algo_(alg), level_(lvl), backend_(make_backend(alg)) {}

detector::~detector() = default;

// ---------------------------------------------------------------------------
// Event forwarding. The baseline level ignores everything so that a single
// detector type serves all four configurations.
// ---------------------------------------------------------------------------
#define FRD_FORWARD_IF_TRACKING(call)              \
  do {                                             \
    if (level_ != level::baseline) backend_->call; \
  } while (0)

void detector::on_program_begin(rt::func_id f, rt::strand_id s) {
  current_ = s;
  FRD_FORWARD_IF_TRACKING(on_program_begin(f, s));
}
void detector::on_program_end(rt::strand_id s) {
  FRD_FORWARD_IF_TRACKING(on_program_end(s));
}
void detector::on_strand_begin(rt::strand_id s, rt::func_id f) {
  current_ = s;
  FRD_FORWARD_IF_TRACKING(on_strand_begin(s, f));
}
void detector::on_spawn(rt::func_id p, rt::strand_id u, rt::func_id c,
                        rt::strand_id w, rt::strand_id v) {
  FRD_FORWARD_IF_TRACKING(on_spawn(p, u, c, w, v));
}
void detector::on_create(rt::func_id p, rt::strand_id u, rt::func_id c,
                         rt::strand_id w, rt::strand_id v) {
  FRD_FORWARD_IF_TRACKING(on_create(p, u, c, w, v));
}
void detector::on_return(rt::func_id c, rt::strand_id last, rt::func_id p) {
  FRD_FORWARD_IF_TRACKING(on_return(c, last, p));
}
void detector::on_sync(const sync_event& e) { FRD_FORWARD_IF_TRACKING(on_sync(e)); }
void detector::on_get(rt::func_id fn, rt::strand_id u, rt::strand_id v,
                      rt::func_id fut, rt::strand_id w, rt::strand_id creator) {
  ++gets_;
  FRD_FORWARD_IF_TRACKING(on_get(fn, u, v, fut, w, creator));
}

#undef FRD_FORWARD_IF_TRACKING

// ---------------------------------------------------------------------------
// Memory hooks (paper §3 protocol).
// ---------------------------------------------------------------------------
void detector::on_read(const void* p, std::size_t bytes) {
  ++accesses_;
  if (level_ != level::full) return;  // "instrumentation": the call is the cost
  auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t first = addr & ~std::uintptr_t{3};
  const std::uintptr_t last = (addr + (bytes ? bytes : 1) - 1) & ~std::uintptr_t{3};
  for (std::uintptr_t a = first; a <= last; a += 4) check_read(a);
}

void detector::on_write(const void* p, std::size_t bytes) {
  ++accesses_;
  if (level_ != level::full) return;
  auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t first = addr & ~std::uintptr_t{3};
  const std::uintptr_t last = (addr + (bytes ? bytes : 1) - 1) & ~std::uintptr_t{3};
  for (std::uintptr_t a = first; a <= last; a += 4) check_write(a);
}

// Read of l: race iff last-writer(l) is logically parallel with the current
// strand; otherwise record the read (§3).
void detector::check_read(std::uintptr_t addr) {
  shadow::granule_record& rec = history_.record_for(addr);
  if (rec.writer != rt::kNoStrand && rec.writer != current_ &&
      !backend_->precedes_current(rec.writer)) {
    report_.record(race{addr, rec.writer, access_kind::write, current_,
                        access_kind::read});
  }
  // Dedupe: in a serial execution the same strand's reads of l are
  // contiguous, and a strand that just wrote l need not be recorded as a
  // reader (the writer field already guards it).
  if (rec.writer == current_ || rec.last_reader() == current_) return;
  rec.append_reader(current_);
}

// Write to l: race against the previous writer and against *every* recorded
// reader; then purge the reader list and take over as last-writer (§3: any
// later strand parallel to a purged reader is also parallel to this write).
void detector::check_write(std::uintptr_t addr) {
  shadow::granule_record& rec = history_.record_for(addr);
  if (rec.writer != rt::kNoStrand && rec.writer != current_ &&
      !backend_->precedes_current(rec.writer)) {
    report_.record(race{addr, rec.writer, access_kind::write, current_,
                        access_kind::write});
  }
  rec.for_each_reader([&](rt::strand_id r) {
    if (r != current_ && !backend_->precedes_current(r)) {
      report_.record(
          race{addr, r, access_kind::read, current_, access_kind::write});
    }
  });
  rec.clear_readers();
  rec.writer = current_;
}

}  // namespace frd::detect
