#include "detect/detector.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <string>

#include "runtime/parallel.hpp"
#include "shadow/sharded_store.hpp"
#include "support/check.hpp"
#include "support/granule.hpp"

namespace frd::detect {

namespace {

// Option validation throws (like an unknown backend name) so embedders can
// catch and report a bad configuration instead of aborting.
unsigned granule_shift_of(std::size_t granule) {
  if (!valid_granule(granule)) {
    throw backend_error(
        "detection granule must be a power of two in [1, 4096] bytes, got " +
        std::to_string(granule));
  }
  return static_cast<unsigned>(std::countr_zero(granule));
}

// Validates sample_rate and folds it into the 53-bit threshold the admit
// compare uses (sampling::threshold53 explains the 2^53 choice). NaN fails
// both comparisons and lands in the error path.
std::uint64_t sample_threshold_of(double rate) {
  if (!(rate > 0.0 && rate <= 1.0)) {
    throw backend_error("sample_rate must be in (0, 1], got " +
                        std::to_string(rate));
  }
  return sampling::threshold53(rate);
}

}  // namespace

detector::detector(std::unique_ptr<reachability_backend> backend,
                   detector_config cfg)
    : cfg_(std::move(cfg)),
      granule_mask_(frd::granule_mask(cfg_.granule)),
      sample_thresh53_(sample_threshold_of(cfg_.sample_rate)),
      sampling_active_(cfg_.sample_rate < 1.0),
      backend_(std::move(backend)),
      // The store registry validates page/shard bits and the history depth
      // (store_error, which the session surfaces like an unknown backend
      // name).
      shadow_(shadow::store_registry::instance().create(
          cfg_.shadow_store,
          shadow::store_config{.page_bits = cfg_.shadow_page_bits,
                               .granule_shift = granule_shift_of(cfg_.granule),
                               .shard_bits = cfg_.shadow_shard_bits,
                               .history_depth = cfg_.shadow_history_depth})),
      report_(cfg_.max_retained_races) {
  FRD_CHECK_MSG(backend_ != nullptr, "detector needs a reachability backend");
  bind_parallel();
}

detector::~detector() = default;

// Binds the parallel path to the freshly created store. Every shipped store
// only grows its reservations within a run, so sampling at run boundaries
// and memory() observations makes the peaks exact, not approximate — but
// the peak_* contract deliberately does not depend on that monotonicity.
void detector::bind_parallel() {
  par_store_ = nullptr;
  par_groups_ = 1;
  if (cfg_.workers == 1) return;
  if (cfg_.workers == 0 || cfg_.workers > 256) {
    throw backend_error("detection workers must be in [1, 256], got " +
                        std::to_string(cfg_.workers));
  }
  auto* sharded = dynamic_cast<shadow::sharded_store*>(shadow_.get());
  if (sharded == nullptr) {
    throw shadow::store_error(
        "parallel detection (workers=" + std::to_string(cfg_.workers) +
        ") partitions access runs on the sharded store's shard hash, but "
        "store '" + cfg_.shadow_store +
        "' is not sharded — use shadow_store \"sharded\"");
  }
  if (sharded->shard_count() < 2) {
    throw shadow::store_error(
        "parallel detection needs at least 2 shards (shard_bits >= 1); this "
        "sharded store has 1");
  }
  par_store_ = sharded;
  par_groups_ = std::min<std::size_t>(cfg_.workers, sharded->shard_count());
  if (pool_ == nullptr) {
    pool_ = std::make_unique<rt::par::scheduler>(
        static_cast<unsigned>(par_groups_));
  }
  par_out_.resize(par_groups_);
  par_cursor_.resize(par_groups_);
  par_sampled_.resize(par_groups_);
  par_skipped_.resize(par_groups_);
}

void detector::note_memory_peak() const {
  const std::size_t store_bytes = shadow_->bytes_reserved();
  const std::size_t total =
      store_bytes + qcache_.capacity() * sizeof(cache_entry);
  if (store_bytes > peak_store_bytes_) peak_store_bytes_ = store_bytes;
  if (total > peak_total_bytes_) peak_total_bytes_ = total;
}

memory_stats detector::memory() const {
  memory_stats m;
  m.store_bytes = shadow_->bytes_reserved();
  m.store_pages = shadow_->page_count();
  m.store_shards = shadow_->shard_count();
  m.report_retained = report_.retained().size();
  m.report_capacity = report_.max_retained();
  m.query_cache_bytes = qcache_.capacity() * sizeof(cache_entry);
  // An observation is itself a sample: a caller polling memory() sees peaks
  // at least as fresh as the snapshot it was handed.
  note_memory_peak();
  m.peak_store_bytes = peak_store_bytes_;
  m.peak_total_bytes = peak_total_bytes_;
  return m;
}

// Pristine state under the same config: the shadow store is re-created (the
// one operation that releases its pages and arenas wholesale), the report
// and query-plane buffers clear in place keeping capacity — that retained
// capacity is what makes recycling a pooled session cheaper than
// constructing a fresh one.
void detector::reset(std::unique_ptr<reachability_backend> fresh_backend) {
  FRD_CHECK_MSG(fresh_backend != nullptr,
                "detector::reset needs a fresh reachability backend");
  backend_ = std::move(fresh_backend);
  shadow_ = shadow::store_registry::instance().create(
      cfg_.shadow_store,
      shadow::store_config{.page_bits = cfg_.shadow_page_bits,
                           .granule_shift = granule_shift_of(cfg_.granule),
                           .shard_bits = cfg_.shadow_shard_bits,
                           .history_depth = cfg_.shadow_history_depth});
  report_.reset();
  fut_touched_.clear();
  current_ = rt::kNoStrand;
  accesses_ = 0;
  gets_ = 0;
  pending_.clear();
  query_buf_.clear();
  qcache_.clear();  // entries re-materialize zero-stamped (epoch-invalid)
  qstats_ = {};
  race_sink_ = nullptr;  // per-run observer; a stale capture must not leak
  peak_store_bytes_ = 0;  // peaks are per-run: a pooled session's previous
  peak_total_bytes_ = 0;  // tenant must not be charged to the next one
  bind_parallel();  // re-point the shard pass at the fresh store (pool kept)
}

// ---------------------------------------------------------------------------
// Event forwarding. The baseline level ignores everything so that a single
// detector type serves all four configurations. The capability checks run
// before forwarding: a construct the backend cannot absorb must surface as a
// clear error, not as a corrupted bag invariant deeper in.
// ---------------------------------------------------------------------------
#define FRD_FORWARD_IF_TRACKING(call)                  \
  do {                                                 \
    if (cfg_.lvl != level::baseline) backend_->call;   \
  } while (0)

void detector::on_program_begin(rt::func_id f, rt::strand_id s) {
  current_ = s;
  FRD_FORWARD_IF_TRACKING(on_program_begin(f, s));
}
void detector::on_program_end(rt::strand_id s) {
  FRD_FORWARD_IF_TRACKING(on_program_end(s));
}
void detector::on_strand_begin(rt::strand_id s, rt::func_id f) {
  current_ = s;
  FRD_FORWARD_IF_TRACKING(on_strand_begin(s, f));
}
void detector::on_spawn(rt::func_id p, rt::strand_id u, rt::func_id c,
                        rt::strand_id w, rt::strand_id v) {
  FRD_FORWARD_IF_TRACKING(on_spawn(p, u, c, w, v));
}
void detector::on_create(rt::func_id p, rt::strand_id u, rt::func_id c,
                         rt::strand_id w, rt::strand_id v) {
  if (cfg_.futures == future_support::none) {
    throw capability_error(
        "backend '" + std::string(backend_->name()) +
        "' handles fork-join programs only; this program uses create_fut — "
        "pick a futures-capable backend (multibags, multibags+, vector-clock, "
        "reference)");
  }
  FRD_FORWARD_IF_TRACKING(on_create(p, u, c, w, v));
}
void detector::on_return(rt::func_id c, rt::strand_id last, rt::func_id p) {
  FRD_FORWARD_IF_TRACKING(on_return(c, last, p));
}
void detector::on_sync(const sync_event& e) { FRD_FORWARD_IF_TRACKING(on_sync(e)); }
void detector::on_get(rt::func_id fn, rt::strand_id u, rt::strand_id v,
                      rt::func_id fut, rt::strand_id w, rt::strand_id creator) {
  if (cfg_.futures == future_support::none) {
    throw capability_error(
        "backend '" + std::string(backend_->name()) +
        "' handles fork-join programs only; this program uses get_fut");
  }
  if (cfg_.futures == future_support::structured) {
    if (fut >= fut_touched_.size()) fut_touched_.resize(fut + 1, 0);
    if (fut_touched_[fut] != 0) {
      throw capability_error(
          "backend '" + std::string(backend_->name()) +
          "' supports structured (single-touch) futures only, but this "
          "program touched the same future twice — run it under a general "
          "backend (multibags+, vector-clock, reference)");
    }
    fut_touched_[fut] = 1;
  }
  ++gets_;
  FRD_FORWARD_IF_TRACKING(on_get(fn, u, v, fut, w, creator));
}

#undef FRD_FORWARD_IF_TRACKING

// ---------------------------------------------------------------------------
// Memory hooks (paper §3 protocol).
// ---------------------------------------------------------------------------
void detector::on_read(const void* p, std::size_t bytes) {
  ++accesses_;
  if (cfg_.lvl != level::full) return;  // "instrumentation": the call is the cost
  for_each_granule(p, bytes, cfg_.granule, granule_mask_,
                   [&](std::uintptr_t a) { check_read(a); });
  flush_pending();
}

void detector::on_write(const void* p, std::size_t bytes) {
  ++accesses_;
  if (cfg_.lvl != level::full) return;
  for_each_granule(p, bytes, cfg_.granule, granule_mask_,
                   [&](std::uintptr_t a) { check_write(a); });
  flush_pending();
}

// Replay hot path: a whole run of pre-granulated accesses behind ONE virtual
// call, so neither the per-access dispatch nor the granule splitting of the
// live path is paid per event. Counting matches the unbatched path exactly
// (one access per element — the player records one event per granule). The
// whole run's reachability questions resolve in one flush — and therefore
// at most one view query — at the end.
void detector::on_accesses(std::span<const hooks::access> batch,
                           std::size_t /*bytes*/) {
  accesses_ += batch.size();
  if (cfg_.lvl != level::full) return;
  // Per-epoch sampling decides whole runs at once: dag events are the epoch
  // barrier, so the backend version is constant across this batch and a
  // skipped epoch's accesses bypass the loop, the store, and the query
  // plane entirely. (Admitted runs fall through; the per-access counting in
  // check_read/check_write/shard_pass then sees the same admit answer.)
  if (sampling_active_ && cfg_.sampling == sample_policy::epoch &&
      !sample_admits(backend_->version())) {
    qstats_.skipped += batch.size();
    note_memory_peak();
    return;
  }
  if (par_groups_ > 1 && batch.size() >= kMinParallelRun) {
    parallel_accesses(batch);
  } else {
    for (const hooks::access& a : batch) {
      const std::uintptr_t g = a.addr & granule_mask_;
      if (a.is_write) {
        check_write(g);
      } else {
        check_read(g);
      }
    }
  }
  flush_pending();
  // Run boundaries are the peak sampling points (the per-access loop is too
  // hot); store reservations are monotone within a run, so this is exact.
  note_memory_peak();
}

// One worker's slice of a run. Each worker scans the WHOLE batch and keeps
// the accesses hashing into its shard group — a predicted-well branch per
// access instead of a serial partitioning pass — so a granule's store steps
// happen in batch order on exactly one worker, which is what makes the
// per-shard mutation race-free AND the merged candidate stream identical to
// the serial one.
void detector::shard_pass(std::span<const hooks::access> batch,
                          std::size_t group) {
  std::vector<indexed_candidate>& out = par_out_[group];
  shadow::sharded_store& store = *par_store_;
  const std::size_t groups = par_groups_;
  const rt::strand_id cur = current_;
  // Sampling inside the pass: a skipped access is counted by the one group
  // whose shard owns it, and the decision is a pure function of the
  // granule, so the summed tallies — and the surviving candidate stream —
  // match the serial path exactly. (An epoch-policy run reaching this point
  // was admitted wholesale in on_accesses.)
  const bool filter =
      sampling_active_ && cfg_.sampling == sample_policy::granule;
  std::uint64_t sampled = 0, skipped = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const hooks::access& a = batch[i];
    const std::uintptr_t g = a.addr & granule_mask_;
    if (store.shard_of(g) % groups != group) continue;
    if (filter) {
      if (!sample_admits(g)) {
        ++skipped;
        continue;
      }
      ++sampled;
    } else if (sampling_active_) {
      ++sampled;  // epoch policy: the whole admitted run counts
    }
    const auto index = static_cast<std::uint32_t>(i);
    if (a.is_write) {
      store.write_step(g, cur, [&](rt::strand_id prior, bool is_write) {
        if (prior != cur) {
          out.push_back({index, candidate{g, prior, is_write, true}});
        }
      });
    } else {
      const rt::strand_id w = store.read_step(g, cur);
      if (w != rt::kNoStrand && w != cur) {
        out.push_back({index, candidate{g, w, true, false}});
      }
    }
  }
  par_sampled_[group] = sampled;
  par_skipped_[group] = skipped;
}

// The workers > 1 run: fan out one shard pass per group on the pool (the
// host takes group 0 and helps while waiting), then re-serialize the
// candidates by run index and feed them through the unchanged note_prior /
// flush_pending resolver. Worker->host visibility rides the frame's
// release/acquire completion counter; host->worker (current_, the prior
// runs' shard state) rides the deque's release publication — both orders
// ThreadSanitizer models, which is what the TSan CI job checks.
void detector::parallel_accesses(std::span<const hooks::access> batch) {
  for (std::vector<indexed_candidate>& out : par_out_) out.clear();
  par_store_->begin_parallel_mutation();
  pool_->enter_host();
  rt::par::frame fr;
  for (std::size_t g = 1; g < par_groups_; ++g) {
    auto body = [this, batch, g] { shard_pass(batch, g); };
    fr.pending.fetch_add(1, std::memory_order_relaxed);
    pool_->push_task(new rt::par::child_task<decltype(body)>(&fr, std::move(body)));
  }
  try {
    shard_pass(batch, /*group=*/0);
    if (fr.pending.load(std::memory_order_acquire) != 0) pool_->wait_frame(fr);
  } catch (...) {
    // The workers borrow this stack frame; they must finish before unwind.
    if (fr.pending.load(std::memory_order_acquire) != 0) pool_->wait_frame(fr);
    pool_->leave_host();
    par_store_->end_parallel_mutation();
    throw;
  }
  pool_->leave_host();
  par_store_->end_parallel_mutation();
  if (sampling_active_) {
    for (std::size_t g = 0; g < par_groups_; ++g) {
      qstats_.sampled += par_sampled_[g];
      qstats_.skipped += par_skipped_[g];
    }
  }

  // Encounter-order merge: every access lands in exactly one group and each
  // group's candidates are already in batch order, so a k-way min-index
  // merge (k = par_groups_, single digits) reproduces the serial candidate
  // stream exactly — same note_prior sequence, same report bytes, same
  // query-plane counters.
  std::fill(par_cursor_.begin(), par_cursor_.end(), 0);
  for (;;) {
    std::size_t best = par_groups_;
    std::uint32_t best_index = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t g = 0; g < par_groups_; ++g) {
      const std::vector<indexed_candidate>& out = par_out_[g];
      if (par_cursor_[g] < out.size() && out[par_cursor_[g]].index < best_index) {
        best = g;
        best_index = out[par_cursor_[g]].index;
      }
    }
    if (best == par_groups_) break;
    const candidate& c = par_out_[best][par_cursor_[best]++].c;
    note_prior(c.addr, c.prior, c.prior_is_write, c.current_is_write);
  }
}

// Read of l: race candidate iff last-writer(l) might be logically parallel
// with the current strand; the read is recorded either way (§3). The store's
// read_step appends the reader (with the serial-order dedupe) and hands back
// the prior writer for the race check.
void detector::check_read(std::uintptr_t addr) {
  if (sampling_active_) {
    if (!admit_access(addr)) {
      ++qstats_.skipped;
      return;
    }
    ++qstats_.sampled;
  }
  const rt::strand_id w = shadow_->read_step(addr, current_);
  if (w != rt::kNoStrand && w != current_) {
    note_prior(addr, w, /*prior_is_write=*/true, /*current_is_write=*/false);
  }
}

// Write to l: candidates against the previous writer and against *every*
// recorded reader; then purge the reader list and take over as last-writer
// (§3: any later strand parallel to a purged reader is also parallel to
// this write). The store surfaces each prior access through the callback —
// previous writer first, then readers in append order, preserving report
// order through the in-order flush.
void detector::check_write(std::uintptr_t addr) {
  if (sampling_active_) {
    if (!admit_access(addr)) {
      ++qstats_.skipped;
      return;
    }
    ++qstats_.sampled;
  }
  shadow_->write_step(addr, current_, [&](rt::strand_id prior, bool is_write) {
    if (prior != current_) {
      note_prior(addr, prior, is_write, /*current_is_write=*/true);
    }
  });
}

// Queues one §3 race candidate. The answer for `prior` is either already in
// the epoch cache (a hit — no query work) or `prior` joins the current
// run's query batch, deduplicated by marking its cache slot kQueued. A
// cached kPreceding answer skips the pending list entirely — such a
// candidate can never record a race, so dropping it here keeps race-free
// runs (the common case) off the flush loop without perturbing report
// order.
void detector::note_prior(std::uintptr_t addr, rt::strand_id prior,
                          bool prior_is_write, bool current_is_write) {
  ++qstats_.lookups;
  const std::uint64_t stamp = backend_->version() + 1;
  if (prior >= qcache_.size()) qcache_.resize(prior + 1);
  cache_entry& e = qcache_[prior];
  if (e.stamp == stamp) {
    ++qstats_.cache_hits;
    if (e.state == kPreceding) return;
  } else {
    e.stamp = stamp;
    e.state = kQueued;
    query_buf_.push_back(prior);
  }
  pending_.push_back(candidate{addr, prior, prior_is_write, current_is_write});
}

// Resolves the access run: answers the not-yet-cached strands with ONE
// batched view query (sorted and unique — the views' fast path), then
// records races for the candidates in encounter order, exactly where the
// scalar protocol would have recorded them.
void detector::flush_pending() {
  if (pending_.empty()) return;
  const std::uint64_t stamp = backend_->version() + 1;
  if (!query_buf_.empty()) {
    std::sort(query_buf_.begin(), query_buf_.end());
    std::span<bool> out = qout_.span(query_buf_.size());
    backend_->view().query(query_buf_, out);
    ++qstats_.batches;
    qstats_.strands += query_buf_.size();
    for (std::size_t i = 0; i < query_buf_.size(); ++i) {
      qcache_[query_buf_[i]].state = out[i] ? kPreceding : kNotPreceding;
    }
    query_buf_.clear();
  }
  for (const candidate& c : pending_) {
    const cache_entry& e = qcache_[c.prior];
    FRD_DCHECK(e.stamp == stamp && e.state != kQueued);
    (void)stamp;
    if (e.state == kNotPreceding) {
      const race r{c.addr, c.prior,
                   c.prior_is_write ? access_kind::write : access_kind::read,
                   current_,
                   c.current_is_write ? access_kind::write : access_kind::read};
      report_.record(r);
      if (race_sink_) race_sink_(r);
    }
  }
  pending_.clear();
}

}  // namespace frd::detect
