#include "detect/detector.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "support/check.hpp"
#include "support/granule.hpp"

namespace frd::detect {

namespace {

// Option validation throws (like an unknown backend name) so embedders can
// catch and report a bad configuration instead of aborting.
unsigned granule_shift_of(std::size_t granule) {
  if (!valid_granule(granule)) {
    throw backend_error(
        "detection granule must be a power of two in [1, 4096] bytes, got " +
        std::to_string(granule));
  }
  return static_cast<unsigned>(std::countr_zero(granule));
}

}  // namespace

detector::detector(std::unique_ptr<reachability_backend> backend,
                   detector_config cfg)
    : cfg_(std::move(cfg)),
      granule_mask_(frd::granule_mask(cfg_.granule)),
      backend_(std::move(backend)),
      // The store registry validates page/shard bits (store_error, which the
      // session surfaces like an unknown backend name).
      shadow_(shadow::store_registry::instance().create(
          cfg_.shadow_store,
          shadow::store_config{.page_bits = cfg_.shadow_page_bits,
                               .granule_shift = granule_shift_of(cfg_.granule),
                               .shard_bits = cfg_.shadow_shard_bits})),
      report_(cfg_.max_retained_races) {
  FRD_CHECK_MSG(backend_ != nullptr, "detector needs a reachability backend");
}

detector::~detector() = default;

memory_stats detector::memory() const {
  memory_stats m;
  m.store_bytes = shadow_->bytes_reserved();
  m.store_pages = shadow_->page_count();
  m.store_shards = shadow_->shard_count();
  m.report_retained = report_.retained().size();
  m.report_capacity = report_.max_retained();
  m.query_cache_bytes = qcache_.capacity() * sizeof(cache_entry);
  return m;
}

// Pristine state under the same config: the shadow store is re-created (the
// one operation that releases its pages and arenas wholesale), the report
// and query-plane buffers clear in place keeping capacity — that retained
// capacity is what makes recycling a pooled session cheaper than
// constructing a fresh one.
void detector::reset(std::unique_ptr<reachability_backend> fresh_backend) {
  FRD_CHECK_MSG(fresh_backend != nullptr,
                "detector::reset needs a fresh reachability backend");
  backend_ = std::move(fresh_backend);
  shadow_ = shadow::store_registry::instance().create(
      cfg_.shadow_store,
      shadow::store_config{.page_bits = cfg_.shadow_page_bits,
                           .granule_shift = granule_shift_of(cfg_.granule),
                           .shard_bits = cfg_.shadow_shard_bits});
  report_.reset();
  fut_touched_.clear();
  current_ = rt::kNoStrand;
  accesses_ = 0;
  gets_ = 0;
  pending_.clear();
  query_buf_.clear();
  qcache_.clear();  // entries re-materialize zero-stamped (epoch-invalid)
  qstats_ = {};
  race_sink_ = nullptr;  // per-run observer; a stale capture must not leak
}

// ---------------------------------------------------------------------------
// Event forwarding. The baseline level ignores everything so that a single
// detector type serves all four configurations. The capability checks run
// before forwarding: a construct the backend cannot absorb must surface as a
// clear error, not as a corrupted bag invariant deeper in.
// ---------------------------------------------------------------------------
#define FRD_FORWARD_IF_TRACKING(call)                  \
  do {                                                 \
    if (cfg_.lvl != level::baseline) backend_->call;   \
  } while (0)

void detector::on_program_begin(rt::func_id f, rt::strand_id s) {
  current_ = s;
  FRD_FORWARD_IF_TRACKING(on_program_begin(f, s));
}
void detector::on_program_end(rt::strand_id s) {
  FRD_FORWARD_IF_TRACKING(on_program_end(s));
}
void detector::on_strand_begin(rt::strand_id s, rt::func_id f) {
  current_ = s;
  FRD_FORWARD_IF_TRACKING(on_strand_begin(s, f));
}
void detector::on_spawn(rt::func_id p, rt::strand_id u, rt::func_id c,
                        rt::strand_id w, rt::strand_id v) {
  FRD_FORWARD_IF_TRACKING(on_spawn(p, u, c, w, v));
}
void detector::on_create(rt::func_id p, rt::strand_id u, rt::func_id c,
                         rt::strand_id w, rt::strand_id v) {
  if (cfg_.futures == future_support::none) {
    throw capability_error(
        "backend '" + std::string(backend_->name()) +
        "' handles fork-join programs only; this program uses create_fut — "
        "pick a futures-capable backend (multibags, multibags+, vector-clock, "
        "reference)");
  }
  FRD_FORWARD_IF_TRACKING(on_create(p, u, c, w, v));
}
void detector::on_return(rt::func_id c, rt::strand_id last, rt::func_id p) {
  FRD_FORWARD_IF_TRACKING(on_return(c, last, p));
}
void detector::on_sync(const sync_event& e) { FRD_FORWARD_IF_TRACKING(on_sync(e)); }
void detector::on_get(rt::func_id fn, rt::strand_id u, rt::strand_id v,
                      rt::func_id fut, rt::strand_id w, rt::strand_id creator) {
  if (cfg_.futures == future_support::none) {
    throw capability_error(
        "backend '" + std::string(backend_->name()) +
        "' handles fork-join programs only; this program uses get_fut");
  }
  if (cfg_.futures == future_support::structured) {
    if (fut >= fut_touched_.size()) fut_touched_.resize(fut + 1, 0);
    if (fut_touched_[fut] != 0) {
      throw capability_error(
          "backend '" + std::string(backend_->name()) +
          "' supports structured (single-touch) futures only, but this "
          "program touched the same future twice — run it under a general "
          "backend (multibags+, vector-clock, reference)");
    }
    fut_touched_[fut] = 1;
  }
  ++gets_;
  FRD_FORWARD_IF_TRACKING(on_get(fn, u, v, fut, w, creator));
}

#undef FRD_FORWARD_IF_TRACKING

// ---------------------------------------------------------------------------
// Memory hooks (paper §3 protocol).
// ---------------------------------------------------------------------------
void detector::on_read(const void* p, std::size_t bytes) {
  ++accesses_;
  if (cfg_.lvl != level::full) return;  // "instrumentation": the call is the cost
  for_each_granule(p, bytes, cfg_.granule, granule_mask_,
                   [&](std::uintptr_t a) { check_read(a); });
  flush_pending();
}

void detector::on_write(const void* p, std::size_t bytes) {
  ++accesses_;
  if (cfg_.lvl != level::full) return;
  for_each_granule(p, bytes, cfg_.granule, granule_mask_,
                   [&](std::uintptr_t a) { check_write(a); });
  flush_pending();
}

// Replay hot path: a whole run of pre-granulated accesses behind ONE virtual
// call, so neither the per-access dispatch nor the granule splitting of the
// live path is paid per event. Counting matches the unbatched path exactly
// (one access per element — the player records one event per granule). The
// whole run's reachability questions resolve in one flush — and therefore
// at most one view query — at the end.
void detector::on_accesses(std::span<const hooks::access> batch,
                           std::size_t /*bytes*/) {
  accesses_ += batch.size();
  if (cfg_.lvl != level::full) return;
  for (const hooks::access& a : batch) {
    const std::uintptr_t g = a.addr & granule_mask_;
    if (a.is_write) {
      check_write(g);
    } else {
      check_read(g);
    }
  }
  flush_pending();
}

// Read of l: race candidate iff last-writer(l) might be logically parallel
// with the current strand; the read is recorded either way (§3). The store's
// read_step appends the reader (with the serial-order dedupe) and hands back
// the prior writer for the race check.
void detector::check_read(std::uintptr_t addr) {
  const rt::strand_id w = shadow_->read_step(addr, current_);
  if (w != rt::kNoStrand && w != current_) {
    note_prior(addr, w, /*prior_is_write=*/true, /*current_is_write=*/false);
  }
}

// Write to l: candidates against the previous writer and against *every*
// recorded reader; then purge the reader list and take over as last-writer
// (§3: any later strand parallel to a purged reader is also parallel to
// this write). The store surfaces each prior access through the callback —
// previous writer first, then readers in append order, preserving report
// order through the in-order flush.
void detector::check_write(std::uintptr_t addr) {
  shadow_->write_step(addr, current_, [&](rt::strand_id prior, bool is_write) {
    if (prior != current_) {
      note_prior(addr, prior, is_write, /*current_is_write=*/true);
    }
  });
}

// Queues one §3 race candidate. The answer for `prior` is either already in
// the epoch cache (a hit — no query work) or `prior` joins the current
// run's query batch, deduplicated by marking its cache slot kQueued. A
// cached kPreceding answer skips the pending list entirely — such a
// candidate can never record a race, so dropping it here keeps race-free
// runs (the common case) off the flush loop without perturbing report
// order.
void detector::note_prior(std::uintptr_t addr, rt::strand_id prior,
                          bool prior_is_write, bool current_is_write) {
  ++qstats_.lookups;
  const std::uint64_t stamp = backend_->version() + 1;
  if (prior >= qcache_.size()) qcache_.resize(prior + 1);
  cache_entry& e = qcache_[prior];
  if (e.stamp == stamp) {
    ++qstats_.cache_hits;
    if (e.state == kPreceding) return;
  } else {
    e.stamp = stamp;
    e.state = kQueued;
    query_buf_.push_back(prior);
  }
  pending_.push_back(candidate{addr, prior, prior_is_write, current_is_write});
}

// Resolves the access run: answers the not-yet-cached strands with ONE
// batched view query (sorted and unique — the views' fast path), then
// records races for the candidates in encounter order, exactly where the
// scalar protocol would have recorded them.
void detector::flush_pending() {
  if (pending_.empty()) return;
  const std::uint64_t stamp = backend_->version() + 1;
  if (!query_buf_.empty()) {
    std::sort(query_buf_.begin(), query_buf_.end());
    std::span<bool> out = qout_.span(query_buf_.size());
    backend_->view().query(query_buf_, out);
    ++qstats_.batches;
    qstats_.strands += query_buf_.size();
    for (std::size_t i = 0; i < query_buf_.size(); ++i) {
      qcache_[query_buf_[i]].state = out[i] ? kPreceding : kNotPreceding;
    }
    query_buf_.clear();
  }
  for (const candidate& c : pending_) {
    const cache_entry& e = qcache_[c.prior];
    FRD_DCHECK(e.stamp == stamp && e.state != kQueued);
    (void)stamp;
    if (e.state == kNotPreceding) {
      const race r{c.addr, c.prior,
                   c.prior_is_write ? access_kind::write : access_kind::read,
                   current_,
                   c.current_is_write ? access_kind::write : access_kind::read};
      report_.record(r);
      if (race_sink_) race_sink_(r);
    }
  }
  pending_.clear();
}

}  // namespace frd::detect
