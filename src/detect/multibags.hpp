// MultiBags: reachability for programs with *structured* futures (paper §4).
//
// The entire algorithm is the S/P-bag discipline of sp_bags.hpp; spawn is
// treated exactly like create_fut and sync like a series of get_fut calls
// (§4 "Notation"). On top of the bag maintenance this backend validates the
// structured-future discipline at every get_fut: the creator strand must be
// sequentially before the getter (§2) — that is, in an S-bag right now. A
// violation means the program is outside MultiBags' sound domain and should
// run under MultiBags+.
#pragma once

#include "detect/backend.hpp"
#include "detect/sp_bags.hpp"

namespace frd::detect {

class multibags final : public reachability_backend {
 public:
  multibags() : view_(*this) {}

  reachability_view& view() override { return view_; }
  std::string_view name() const override { return "multibags"; }
  std::uint64_t structured_violations() const override { return violations_; }

  const dsu::forest_stats& dsu_stats() const { return bags_.stats(); }

 protected:
  // execution_listener hooks (epoch bumping handled by the base).
  void handle_program_begin(rt::func_id main_fn, rt::strand_id first) override;
  void handle_strand_begin(rt::strand_id s, rt::func_id owner) override;
  void handle_spawn(rt::func_id parent, rt::strand_id u, rt::func_id child,
                    rt::strand_id w, rt::strand_id v) override;
  void handle_create(rt::func_id parent, rt::strand_id u, rt::func_id child,
                     rt::strand_id w, rt::strand_id v) override;
  void handle_return(rt::func_id child, rt::strand_id last,
                     rt::func_id parent) override;
  void handle_sync(const sync_event& e) override;
  void handle_get(rt::func_id fn, rt::strand_id u, rt::strand_id v,
                  rt::func_id fut, rt::strand_id w,
                  rt::strand_id creator) override;

 private:
  // Query (paper Figure 1 bottom): u precedes the current strand iff u's set
  // is an S-bag. The batch sweep does one DSU find per unique strand.
  class bag_view final : public reachability_view {
   public:
    explicit bag_view(multibags& owner)
        : reachability_view(owner), owner_(owner) {}
    void query(std::span<const rt::strand_id> strands,
               std::span<bool> out) override {
      answer_strand_batch(strands, out, scratch_, [this](rt::strand_id u) {
        return owner_.bags_.in_s_bag(u);
      });
    }

   private:
    multibags& owner_;
    batch_scratch scratch_;
  };

  sp_bags bags_;
  std::uint64_t violations_ = 0;
  bag_view view_;
};

}  // namespace frd::detect
