// Shared vocabulary of the detection core.
#pragma once

#include <cstdint>
#include <set>
#include <string_view>
#include <vector>

#include "runtime/events.hpp"

namespace frd::detect {

enum class algorithm : std::uint8_t {
  multibags,       // structured futures (paper §4)
  multibags_plus,  // general futures (paper §5)
  vector_clock,    // FastTrack-style baseline the paper argues against (§7)
};

// The paper's four measurement configurations (§6, Figures 6-7).
enum class level : std::uint8_t {
  baseline,         // no detection work at all
  reachability,     // parallel-construct events maintain reachability only
  instrumentation,  // + a call per memory access that does no history work
  full,             // + access history maintenance and race queries
};

constexpr std::string_view to_string(algorithm a) {
  switch (a) {
    case algorithm::multibags: return "multibags";
    case algorithm::multibags_plus: return "multibags+";
    case algorithm::vector_clock: return "vector-clock";
  }
  return "?";
}
constexpr std::string_view to_string(level l) {
  switch (l) {
    case level::baseline: return "baseline";
    case level::reachability: return "reachability";
    case level::instrumentation: return "instrumentation";
    case level::full: return "full";
  }
  return "?";
}

enum class access_kind : std::uint8_t { read, write };

// One determinacy race: two logically parallel accesses to the same granule,
// at least one a write. `prior` executed first in the serial order.
struct race {
  std::uintptr_t granule_addr;  // base address of the 4-byte granule
  rt::strand_id prior;
  access_kind prior_kind;
  rt::strand_id current;
  access_kind current_kind;
};

// Race sink with per-granule deduplication: every distinct racy granule is
// counted once per conflict kind; the first kRetained full records are kept
// for diagnostics.
class race_report {
 public:
  static constexpr std::size_t kRetained = 64;

  void record(const race& r) {
    ++total_;
    racy_granules_.insert(r.granule_addr);
    if (races_.size() < kRetained) races_.push_back(r);
  }

  std::uint64_t total() const { return total_; }
  bool any() const { return total_ != 0; }
  const std::vector<race>& retained() const { return races_; }

  // Distinct racy granules. The paper's per-location guarantee (§3): a race
  // is reported on l iff two parallel conflicting accesses to l exist; the
  // property tests compare this set against the exact reference detector.
  const std::set<std::uintptr_t>& racy_granules() const {
    return racy_granules_;
  }

 private:
  std::uint64_t total_ = 0;
  std::vector<race> races_;
  std::set<std::uintptr_t> racy_granules_;
};

}  // namespace frd::detect
