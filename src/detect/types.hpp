// Shared vocabulary of the detection core.
#pragma once

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/events.hpp"

namespace frd::detect {

// What future constructs a reachability backend can soundly handle.
enum class future_support : std::uint8_t {
  none,        // fork-join (spawn/sync) programs only
  structured,  // single-touch futures, creator precedes getter (§2)
  general,     // arbitrary multi-touch futures
};

constexpr std::string_view to_string(future_support f) {
  switch (f) {
    case future_support::none: return "fork-join only";
    case future_support::structured: return "structured futures";
    case future_support::general: return "general futures";
  }
  return "?";
}

// Raised when a backend name is not in the registry. The message lists every
// registered name.
class backend_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Raised when a program uses a construct outside the selected backend's
// declared capability (e.g. a multi-touch future under a structured-only
// backend): continuing would produce unsound race reports.
class capability_error : public backend_error {
 public:
  using backend_error::backend_error;
};

// The paper's four measurement configurations (§6, Figures 6-7).
enum class level : std::uint8_t {
  baseline,         // no detection work at all
  reachability,     // parallel-construct events maintain reachability only
  instrumentation,  // + a call per memory access that does no history work
  full,             // + access history maintenance and race queries
};

constexpr std::string_view to_string(level l) {
  switch (l) {
    case level::baseline: return "baseline";
    case level::reachability: return "reachability";
    case level::instrumentation: return "instrumentation";
    case level::full: return "full";
  }
  return "?";
}

enum class access_kind : std::uint8_t { read, write };

// One determinacy race: two logically parallel accesses to the same granule,
// at least one a write. `prior` executed first in the serial order.
struct race {
  std::uintptr_t granule_addr;  // base address of the racy granule (size is
                                // the session's granule option; default 4)
  rt::strand_id prior;
  access_kind prior_kind;
  rt::strand_id current;
  access_kind current_kind;
};

// Race sink with per-granule deduplication: every distinct racy granule is
// counted once per conflict kind; the first max_retained full records are
// kept for diagnostics (session::options::max_retained_races).
class race_report {
 public:
  static constexpr std::size_t kDefaultRetained = 64;

  explicit race_report(std::size_t max_retained = kDefaultRetained)
      : max_retained_(max_retained) {}

  void record(const race& r) {
    ++total_;
    racy_granules_.insert(r.granule_addr);
    if (races_.size() < max_retained_) races_.push_back(r);
  }

  std::uint64_t total() const { return total_; }
  bool any() const { return total_ != 0; }
  std::size_t max_retained() const { return max_retained_; }
  const std::vector<race>& retained() const { return races_; }

  // Back to the post-construction state, keeping the retained buffer's
  // capacity (session::reset recycles the report across pooled runs).
  void reset() {
    total_ = 0;
    races_.clear();
    racy_granules_.clear();
  }

  // Distinct racy granules. The paper's per-location guarantee (§3): a race
  // is reported on l iff two parallel conflicting accesses to l exist; the
  // property tests compare this set against the exact reference detector.
  const std::set<std::uintptr_t>& racy_granules() const {
    return racy_granules_;
  }

 private:
  std::size_t max_retained_;
  std::uint64_t total_ = 0;
  std::vector<race> races_;
  std::set<std::uintptr_t> racy_granules_;
};

}  // namespace frd::detect
