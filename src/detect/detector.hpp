// FutureRD detection core: a shadow store + an injected reachability backend
// + the paper's four measurement configurations (§6).
//
//   baseline         runtime gets no listener, kernels compile with
//                    hooks::none — zero detection work.
//   reachability     the detector listens to parallel-construct events,
//                    kernels still hooks::none — reachability overhead only.
//   instrumentation  kernels compiled with hooks::active; every access makes
//                    one out-of-line call that returns immediately (the call
//                    itself is the measured cost, like the paper's compiler
//                    pass with history maintenance disabled).
//   full             reads/writes maintain the shadow store and query the
//                    reachability structure; races are reported.
//
// The public entry point is frd::session (src/api/session.hpp), which owns
// a detector, its backend (resolved by name through the backend_registry),
// its shadow store (resolved through the shadow::store_registry), the
// runtime binding, and the hook-sink installation:
//
//   frd::session s({.backend = "multibags+", .level = frd::level::full});
//   s.run([&] { ... instrumented program on s.runtime() ... });
//   if (s.report().any()) ...
//
// The detector itself is backend- and store-agnostic: it consumes runtime
// events, forwards them when the level tracks reachability, enforces the
// backend's declared capability envelope (future_support), and implements
// the §3 access protocol on top of precedes_current() and the store's
// read_step/write_step.
//
// Accesses arrive through two access_sink paths: the per-access on_read /
// on_write hooks (live instrumented kernels; arbitrary byte spans, split
// into granules here), and the batched on_accesses entry (replay: the
// trace player hands over whole runs of pre-granulated events in one
// virtual call — see hooks::access_sink).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "detect/backend.hpp"
#include "detect/hooks.hpp"
#include "detect/types.hpp"
#include "shadow/store.hpp"

namespace frd::detect {

struct detector_config {
  level lvl = level::full;
  // Shadow granule size in bytes; power of two in [1, 4096]. The paper's
  // artifact uses 4-byte granules.
  std::size_t granule = 4;
  std::size_t max_retained_races = race_report::kDefaultRetained;
  // Shadow store selection (shadow::store_registry key) and its sizing.
  std::string shadow_store = std::string(shadow::kDefaultStore);
  unsigned shadow_page_bits = 16;
  unsigned shadow_shard_bits = 4;  // sharded stores: 2^bits shards
  // Capability envelope of the backend (from backend_info). Programs that
  // step outside it raise capability_error instead of silently producing
  // unsound reports.
  future_support futures = future_support::general;
};

class detector final : public rt::execution_listener, public hooks::access_sink {
 public:
  detector(std::unique_ptr<reachability_backend> backend, detector_config cfg);
  ~detector() override;
  detector(const detector&) = delete;
  detector& operator=(const detector&) = delete;

  level lvl() const { return cfg_.lvl; }
  const detector_config& config() const { return cfg_; }
  std::string_view backend_name() const { return backend_->name(); }
  const race_report& report() const { return report_; }
  reachability_backend& backend() { return *backend_; }
  const reachability_backend& backend() const { return *backend_; }
  const shadow::store& shadow_store() const { return *shadow_; }
  std::uint64_t access_count() const { return accesses_; }
  // k in the paper's bounds: the number of get_fut operations seen.
  std::uint64_t get_count() const { return gets_; }
  // Structured-future discipline violations (backends with
  // counts_violations; 0 elsewhere).
  std::uint64_t structured_violations() const {
    return backend_->structured_violations();
  }

  // Memory hooks (hooks::access_sink; out of line on purpose: the call is
  // the instrumentation cost the paper's "instr" configuration measures).
  void on_read(const void* p, std::size_t bytes) override;
  void on_write(const void* p, std::size_t bytes) override;
  // Batched hot path: one call per run of single-granule accesses.
  void on_accesses(std::span<const hooks::access> batch,
                   std::size_t bytes) override;

  // Reachability query against the currently executing strand; exposed for
  // the oracle-validation tests.
  bool precedes_current(rt::strand_id u) { return backend_->precedes_current(u); }

  // execution_listener: forwards to the backend when level >= reachability.
  void on_program_begin(rt::func_id f, rt::strand_id s) override;
  void on_program_end(rt::strand_id s) override;
  void on_strand_begin(rt::strand_id s, rt::func_id f) override;
  void on_spawn(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                rt::strand_id v) override;
  void on_create(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                 rt::strand_id v) override;
  void on_return(rt::func_id c, rt::strand_id last, rt::func_id p) override;
  void on_sync(const sync_event& e) override;
  void on_get(rt::func_id fn, rt::strand_id u, rt::strand_id v, rt::func_id fut,
              rt::strand_id w, rt::strand_id creator) override;

 private:
  void check_read(std::uintptr_t addr);
  void check_write(std::uintptr_t addr);

  const detector_config cfg_;
  const std::uintptr_t granule_mask_;  // clears sub-granule address bits
  std::unique_ptr<reachability_backend> backend_;
  std::unique_ptr<shadow::store> shadow_;
  race_report report_;
  std::vector<std::uint8_t> fut_touched_;  // structured-only: gets per future
  rt::strand_id current_ = rt::kNoStrand;
  std::uint64_t accesses_ = 0;
  std::uint64_t gets_ = 0;
};

}  // namespace frd::detect
