// FutureRD detector facade: access history + reachability backend + the
// paper's four measurement configurations (§6).
//
//   baseline         pass nullptr to the runtime and compile kernels with
//                    hooks::none — zero detection work.
//   reachability     install the detector as the runtime listener, kernels
//                    still hooks::none — parallel-construct overhead only.
//   instrumentation  kernels compiled with hooks::active; every access calls
//                    into the detector, which returns immediately (the call
//                    itself is the measured cost, like the paper's compiler
//                    pass with history maintenance disabled).
//   full             reads/writes maintain the access history and query the
//                    reachability structures; races are reported.
//
// Typical use:
//
//   detect::detector det(detect::algorithm::multibags, detect::level::full);
//   rt::serial_runtime rt(&det);
//   detect::scoped_global_detector bind(&det);     // route hook calls
//   rt.run([&] { ... instrumented program ... });
//   if (det.report().any()) ...
#pragma once

#include <memory>
#include <utility>

#include "detect/backend.hpp"
#include "detect/types.hpp"
#include "shadow/access_history.hpp"

namespace frd::detect {

class detector final : public rt::execution_listener {
 public:
  detector(algorithm alg, level lvl);
  ~detector() override;
  detector(const detector&) = delete;
  detector& operator=(const detector&) = delete;

  algorithm algo() const { return algo_; }
  level lvl() const { return level_; }
  const race_report& report() const { return report_; }
  reachability_backend& backend() { return *backend_; }
  const shadow::access_history& history() const { return history_; }
  std::uint64_t access_count() const { return accesses_; }
  // k in the paper's bounds: the number of get_fut operations seen.
  std::uint64_t get_count() const { return gets_; }
  // Structured-future discipline violations (MultiBags only; see backend).
  std::uint64_t structured_violations() const {
    return backend_->structured_violations();
  }

  // Memory hooks (out of line on purpose: the call is the instrumentation
  // cost the paper's "instr" configuration measures).
  void on_read(const void* p, std::size_t bytes);
  void on_write(const void* p, std::size_t bytes);

  // Reachability query against the currently executing strand; exposed for
  // the oracle-validation tests.
  bool precedes_current(rt::strand_id u) { return backend_->precedes_current(u); }

  // execution_listener: forwards to the backend when level >= reachability.
  void on_program_begin(rt::func_id f, rt::strand_id s) override;
  void on_program_end(rt::strand_id s) override;
  void on_strand_begin(rt::strand_id s, rt::func_id f) override;
  void on_spawn(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                rt::strand_id v) override;
  void on_create(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                 rt::strand_id v) override;
  void on_return(rt::func_id c, rt::strand_id last, rt::func_id p) override;
  void on_sync(const sync_event& e) override;
  void on_get(rt::func_id fn, rt::strand_id u, rt::strand_id v, rt::func_id fut,
              rt::strand_id w, rt::strand_id creator) override;

 private:
  void check_read(std::uintptr_t addr);
  void check_write(std::uintptr_t addr);

  const algorithm algo_;
  const level level_;
  std::unique_ptr<reachability_backend> backend_;
  shadow::access_history history_;
  race_report report_;
  rt::strand_id current_ = rt::kNoStrand;
  std::uint64_t accesses_ = 0;
  std::uint64_t gets_ = 0;
};

// ---------------------------------------------------------------------------
// Global hook target. Kernels are compiled against a hooks policy; the
// `active` policy routes into this pointer. Not thread safe by design: race
// detection executes sequentially (paper §2).
// ---------------------------------------------------------------------------
namespace hooks {

extern detector* g_detector;

// No instrumentation: compiles to nothing (baseline / reachability configs).
struct none {
  static constexpr bool enabled = false;
  static void read(const void*, std::size_t) {}
  static void write(const void*, std::size_t) {}
};

// Full instrumentation: one out-of-line call per access.
struct active {
  static constexpr bool enabled = true;
  static void read(const void* p, std::size_t n);
  static void write(const void* p, std::size_t n);
};

// Typed access helpers used by kernels: H::read/H::write fire before the
// underlying load/store, mirroring where a compiler pass would instrument.
template <typename H, typename T>
inline T ld(const T& x) {
  H::read(&x, sizeof(T));
  return x;
}
template <typename H, typename T, typename V>
inline void st(T& x, V&& v) {
  H::write(&x, sizeof(T));
  x = static_cast<T>(std::forward<V>(v));
}

}  // namespace hooks

// RAII binding of the global hook pointer.
class scoped_global_detector {
 public:
  explicit scoped_global_detector(detector* d) : prev_(hooks::g_detector) {
    hooks::g_detector = d;
  }
  ~scoped_global_detector() { hooks::g_detector = prev_; }
  scoped_global_detector(const scoped_global_detector&) = delete;
  scoped_global_detector& operator=(const scoped_global_detector&) = delete;

 private:
  detector* prev_;
};

}  // namespace frd::detect
