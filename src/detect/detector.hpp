// FutureRD detection core: a shadow store + an injected reachability backend
// + the paper's four measurement configurations (§6).
//
//   baseline         runtime gets no listener, kernels compile with
//                    hooks::none — zero detection work.
//   reachability     the detector listens to parallel-construct events,
//                    kernels still hooks::none — reachability overhead only.
//   instrumentation  kernels compiled with hooks::active; every access makes
//                    one out-of-line call that returns immediately (the call
//                    itself is the measured cost, like the paper's compiler
//                    pass with history maintenance disabled).
//   full             reads/writes maintain the shadow store and query the
//                    reachability structure; races are reported.
//
// The public entry point is frd::session (src/api/session.hpp), which owns
// a detector, its backend (resolved by name through the backend_registry),
// its shadow store (resolved through the shadow::store_registry), the
// runtime binding, and the hook-sink installation:
//
//   frd::session s({.backend = "multibags+", .level = frd::level::full});
//   s.run([&] { ... instrumented program on s.runtime() ... });
//   if (s.report().any()) ...
//
// The detector itself is backend- and store-agnostic: it consumes runtime
// events, forwards them when the level tracks reachability, enforces the
// backend's declared capability envelope (future_support), and implements
// the §3 access protocol on top of the backend's reachability_view and the
// store's read_step/write_step. Reachability questions are BATCHED
// (DESIGN.md §4): each access run's store steps only collect race
// candidates; the distinct prior strands not already answered by the
// per-epoch strand cache go to the view in one query() call, and the
// candidates are then resolved against the cache in encounter order — so
// the report is byte-identical to the scalar protocol's. Dag events advance
// the backend's epoch, which invalidates the cache wholesale (entries are
// epoch-stamped; nothing is swept).
//
// Accesses arrive through two access_sink paths: the per-access on_read /
// on_write hooks (live instrumented kernels; arbitrary byte spans, split
// into granules here), and the batched on_accesses entry (replay: the
// trace player hands over whole runs of pre-granulated events in one
// virtual call — see hooks::access_sink).
//
// With detector_config::workers > 1 the batched path runs PARALLEL
// (DESIGN.md "Parallel detection"): each run fans out as one shard pass per
// worker over the sharded store's partition (a granule's shard — and
// therefore its worker — is a pure hash, so workers touch disjoint shadow
// state), candidates merge back in encounter order, and the single-threaded
// resolver above (note_prior / flush_pending, the qcache_, the one view
// query per run) runs unchanged — reports and query-plane counters stay
// byte-identical to the serial path. Dag events remain the epoch barrier:
// every run flushes before the next dag event, so workers never observe a
// view or cache from a stale epoch.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "detect/backend.hpp"
#include "detect/hooks.hpp"
#include "detect/sampling.hpp"
#include "detect/types.hpp"
#include "shadow/store.hpp"

namespace frd::shadow {
class sharded_store;
}
namespace frd::rt::par {
class scheduler;
}

namespace frd::detect {

// What the sampling hash keys on when sample_rate < 1 (DESIGN.md §9).
//   granule  the decision is a pure function of the granule address: a
//            granule is either always detected or never, so the sampled
//            report is a strict subset of the full one (the default).
//   epoch    the decision keys on the backend's dag-event epoch: whole
//            epochs of accesses are admitted or skipped together, catching
//            every race inside an admitted window.
enum class sample_policy : std::uint8_t { granule, epoch };

constexpr std::string_view to_string(sample_policy p) {
  return p == sample_policy::granule ? "granule" : "epoch";
}

struct detector_config {
  level lvl = level::full;
  // Shadow granule size in bytes; power of two in [1, 4096]. The paper's
  // artifact uses 4-byte granules.
  std::size_t granule = 4;
  std::size_t max_retained_races = race_report::kDefaultRetained;
  // Shadow store selection (shadow::store_registry key) and its sizing.
  std::string shadow_store = std::string(shadow::kDefaultStore);
  unsigned shadow_page_bits = 16;
  unsigned shadow_shard_bits = 4;  // sharded stores: 2^bits shards
  // Parallel replay detection: how many workers the batched access path
  // (on_accesses) fans each run out to. 1 = the serial §3 protocol; >1
  // requires the "sharded" shadow store with >= 2 shards (store_error
  // otherwise) — each worker owns a disjoint group of shards, runs the
  // store steps shard-local, and the candidates merge back in encounter
  // order before one batched view query resolves them, so reports and
  // query-plane counters are byte-identical to workers == 1. The per-access
  // on_read/on_write hooks always run serially. Range [1, 256].
  unsigned workers = 1;
  // Sampling mode (DESIGN.md §9): run the full §3 protocol on a seeded,
  // reproducible fraction of accesses. A sampled-out access skips the
  // shadow-store step AND the reachability query entirely — the carve-out
  // the production throughput knob turns. Must be in (0, 1]; 1.0 (the
  // default) disarms sampling and is byte-identical to the pre-sampling
  // detector. The decision is a pure function of (key, seed) — same seed,
  // same trace, same sampled set, serial or parallel.
  double sample_rate = 1.0;
  std::uint64_t sample_seed = 1;
  sample_policy sampling = sample_policy::granule;
  // Bounded-history mode: retained readers per granule
  // (store_config::history_depth). kUnboundedHistory keeps the full §3
  // list; a finite depth >= 1 keeps the most recent `depth` readers.
  std::size_t shadow_history_depth = shadow::kUnboundedHistory;
  // Capability envelope of the backend (from backend_info). Programs that
  // step outside it raise capability_error instead of silently producing
  // unsound reports.
  future_support futures = future_support::general;
};

// Query-plane counters: how effectively the §3 protocol's reachability
// questions batch. lookups counts every question the protocol asked;
// cache_hits the ones answered by the per-epoch strand cache without
// touching the view; batches/strands what actually crossed the
// reachability_view::query boundary. (frd-trace run prints these.)
struct query_plane_stats {
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t batches = 0;   // view.query() calls issued
  std::uint64_t strands = 0;   // unique strands across all issued batches
  // Sampling-mode counters (both 0 when sample_rate == 1.0): accesses the
  // active policy admitted into the protocol vs carved out before the
  // store step. sampled + skipped == the full-detection access count.
  std::uint64_t sampled = 0;
  std::uint64_t skipped = 0;
};

// Memory accounting of one detection run — the counters the ingest daemon's
// per-session budget enforcement reads (src/serve/) and `frd-trace run`
// prints. store_bytes is the shadow store's reservation (page storage plus
// its arenas). Most fields are a current snapshot; the peak_* fields are the
// run's high-water marks, maintained by the detector at every batched access
// run boundary and refreshed whenever memory() is taken — budget enforcement
// must charge the peak, or transient spikes between observation points
// escape it. Peaks clear with reset().
struct memory_stats {
  std::size_t store_bytes = 0;       // shadow pages + store-owned arenas
  std::size_t store_pages = 0;       // materialized shadow pages
  std::size_t store_shards = 1;      // 1 for unsharded stores
  std::size_t report_retained = 0;   // full race records currently kept
  std::size_t report_capacity = 0;   // session::options::max_retained_races
  std::size_t query_cache_bytes = 0; // epoch strand-cache storage
  std::size_t peak_store_bytes = 0;  // high-water store_bytes this run
  std::size_t peak_total_bytes = 0;  // high-water total_bytes() this run
  std::size_t total_bytes() const { return store_bytes + query_cache_bytes; }
};

class detector final : public rt::execution_listener, public hooks::access_sink {
 public:
  detector(std::unique_ptr<reachability_backend> backend, detector_config cfg);
  ~detector() override;
  detector(const detector&) = delete;
  detector& operator=(const detector&) = delete;

  level lvl() const { return cfg_.lvl; }
  const detector_config& config() const { return cfg_; }
  std::string_view backend_name() const { return backend_->name(); }
  const race_report& report() const { return report_; }
  reachability_backend& backend() { return *backend_; }
  const reachability_backend& backend() const { return *backend_; }
  const shadow::store& shadow_store() const { return *shadow_; }
  std::uint64_t access_count() const { return accesses_; }
  // k in the paper's bounds: the number of get_fut operations seen.
  std::uint64_t get_count() const { return gets_; }
  // Structured-future discipline violations (backends with
  // counts_violations; 0 elsewhere).
  std::uint64_t structured_violations() const {
    return backend_->structured_violations();
  }
  const query_plane_stats& query_stats() const { return qstats_; }
  memory_stats memory() const;

  // Returns the detector to its pristine post-construction state under the
  // same configuration, adopting `fresh_backend` (the old backend, shadow
  // pages, and store arenas are released; counters, report, and query-plane
  // caches clear but keep their capacity). frd::session::reset() drives this
  // so pooled sessions recycle across runs.
  void reset(std::unique_ptr<reachability_backend> fresh_backend);

  // Optional observer invoked once per recorded race, in encounter order,
  // right after the report records it — the ingest daemon's incremental
  // report emission. The callback must not re-enter the detector.
  void set_race_sink(std::function<void(const race&)> sink) {
    race_sink_ = std::move(sink);
  }

  // Memory hooks (hooks::access_sink; out of line on purpose: the call is
  // the instrumentation cost the paper's "instr" configuration measures).
  void on_read(const void* p, std::size_t bytes) override;
  void on_write(const void* p, std::size_t bytes) override;
  // Batched hot path: one call per run of single-granule accesses.
  void on_accesses(std::span<const hooks::access> batch,
                   std::size_t bytes) override;

  // Reachability query against the currently executing strand; exposed for
  // the oracle-validation tests. A thin one-element wrapper over the
  // backend's view (the query plane's only scalar entry point).
  bool precedes_current(rt::strand_id u) {
    return backend_->view().precedes_current(u);
  }

  // Replay fast path for the granule sampling policy (DESIGN.md §9): the
  // returned filter is armed iff granule sampling is active at level::full,
  // and session::replay installs it on the trace player so sampled-out
  // accesses never enter a batch. The player's drop tally must come back
  // through note_prefiltered — it restores access_count() and the skipped
  // counter to exactly what the in-protocol carve-out would have tallied,
  // so every counter invariant (sampled + skipped == full access count)
  // holds identically with or without the prefilter.
  sampling::granule_prefilter replay_prefilter() const {
    return sampling::granule_prefilter{
        cfg_.sample_seed, sample_thresh53_, granule_mask_,
        /*armed=*/sampling_active_ &&
            cfg_.sampling == sample_policy::granule &&
            cfg_.lvl == level::full};
  }
  void note_prefiltered(std::uint64_t skipped) {
    accesses_ += skipped;
    qstats_.skipped += skipped;
  }

  // execution_listener: forwards to the backend when level >= reachability.
  void on_program_begin(rt::func_id f, rt::strand_id s) override;
  void on_program_end(rt::strand_id s) override;
  void on_strand_begin(rt::strand_id s, rt::func_id f) override;
  void on_spawn(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                rt::strand_id v) override;
  void on_create(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                 rt::strand_id v) override;
  void on_return(rt::func_id c, rt::strand_id last, rt::func_id p) override;
  void on_sync(const sync_event& e) override;
  void on_get(rt::func_id fn, rt::strand_id u, rt::strand_id v, rt::func_id fut,
              rt::strand_id w, rt::strand_id creator) override;

 private:
  // One race candidate surfaced by a store step: resolved against the
  // epoch cache at the end of the access run (flush_pending), preserving
  // encounter order so reports match the scalar protocol byte for byte.
  struct candidate {
    std::uintptr_t addr;
    rt::strand_id prior;
    bool prior_is_write;
    bool current_is_write;
  };
  // Per-epoch strand→answer cache entry. Valid iff stamp == backend version
  // + 1 (the +1 keeps the zero-initialized entries invalid at epoch 0), so
  // dag events invalidate the whole cache by advancing the version —
  // nothing is swept on the event path.
  struct cache_entry {
    std::uint64_t stamp = 0;
    std::uint8_t state = 0;  // kNotPreceding / kPreceding / kQueued
  };
  static constexpr std::uint8_t kNotPreceding = 0, kPreceding = 1, kQueued = 2;
  // A candidate tagged with its position in the access run, so the merge
  // after a parallel shard pass can re-serialize encounter order exactly.
  struct indexed_candidate {
    std::uint32_t index;
    candidate c;
  };
  // Runs shorter than this stay on the serial loop: a shard pass costs one
  // task push/steal per worker, which a handful of accesses cannot amortize.
  static constexpr std::size_t kMinParallelRun = 64;

  void check_read(std::uintptr_t addr);
  void check_write(std::uintptr_t addr);
  // The sampling decision for one key (granule address or backend epoch):
  // the shared sampling::admits primitive (detect/sampling.hpp), which the
  // replay prefilter computes bit-identically on the player side.
  bool sample_admits(std::uint64_t key) const {
    return sampling::admits(key, cfg_.sample_seed, sample_thresh53_);
  }
  // The per-access admit at the scalar hooks (granule policy keys on the
  // granule; epoch policy on the backend version, which only dag events
  // advance).
  bool admit_access(std::uintptr_t granule) const {
    const std::uint64_t key = cfg_.sampling == sample_policy::granule
                                  ? static_cast<std::uint64_t>(granule)
                                  : backend_->version();
    return sample_admits(key);
  }
  void note_prior(std::uintptr_t addr, rt::strand_id prior, bool prior_is_write,
                  bool current_is_write);
  void flush_pending();
  // Wires the parallel path onto the (sharded) store after (re)creation;
  // validates cfg_.workers. No-op at workers == 1.
  void bind_parallel();
  // The workers > 1 batched path: fan the run out as one shard pass per
  // group, then merge candidates back in encounter order into note_prior.
  void parallel_accesses(std::span<const hooks::access> batch);
  // One worker's share of a run: the accesses whose shard lands in `group`,
  // scanned in batch order, store steps shard-local, candidates collected
  // with their run index.
  void shard_pass(std::span<const hooks::access> batch, std::size_t group);
  // Folds the current footprint into the peak_* high-water marks.
  void note_memory_peak() const;

  const detector_config cfg_;
  const std::uintptr_t granule_mask_;  // clears sub-granule address bits
  // sample_rate as a 53-bit threshold (rate * 2^53): a double->uint64 cast
  // that is exact for every representable rate and never overflows.
  const std::uint64_t sample_thresh53_;
  const bool sampling_active_;  // rate < 1.0: the carve-out is armed
  std::unique_ptr<reachability_backend> backend_;
  std::unique_ptr<shadow::store> shadow_;
  race_report report_;
  std::vector<std::uint8_t> fut_touched_;  // structured-only: gets per future
  rt::strand_id current_ = rt::kNoStrand;
  std::uint64_t accesses_ = 0;
  std::uint64_t gets_ = 0;
  // Query-plane state (see the header comment): candidates of the access
  // run in flight, the not-yet-answered strands destined for one view
  // query, the epoch cache, and the query output buffer.
  std::vector<candidate> pending_;
  std::vector<rt::strand_id> query_buf_;
  std::vector<cache_entry> qcache_;
  bool_buffer qout_;
  query_plane_stats qstats_;
  std::function<void(const race&)> race_sink_;
  // Parallel-path state (bind_parallel; inert at workers == 1). The pool
  // outlives reset() — a recycled session keeps its threads — while
  // par_store_ is re-bound to each fresh store instance.
  std::unique_ptr<rt::par::scheduler> pool_;
  shadow::sharded_store* par_store_ = nullptr;
  std::size_t par_groups_ = 1;
  std::vector<std::vector<indexed_candidate>> par_out_;
  std::vector<std::size_t> par_cursor_;
  // Per-group sampled/skipped tallies of one parallel run, summed into
  // qstats_ by the host after the merge — each access is counted by exactly
  // one group and the decision is a pure function, so the totals match the
  // serial path's.
  std::vector<std::uint64_t> par_sampled_;
  std::vector<std::uint64_t> par_skipped_;
  // High-water marks behind memory_stats::peak_*; mutable because memory()
  // (const) refreshes them with the snapshot it just took.
  mutable std::size_t peak_store_bytes_ = 0;
  mutable std::size_t peak_total_bytes_ = 0;
};

}  // namespace frd::detect
