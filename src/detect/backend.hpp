// Interface shared by the two reachability backends.
#pragma once

#include <string_view>

#include "runtime/events.hpp"

namespace frd::detect {

// A reachability backend consumes the runtime's dag-growth events and
// answers the only query a determinacy race detector needs (paper §3):
// "does previously executed strand u precede the currently executing
// strand?" (If not, they are logically parallel — the current strand cannot
// be preceded by u's successors, which have not executed yet.)
class reachability_backend : public rt::execution_listener {
 public:
  virtual bool precedes_current(rt::strand_id u) = 0;
  virtual std::string_view name() const = 0;
  // Structured-future discipline violations noticed at get_fut (0 when the
  // backend does not check).
  virtual std::uint64_t structured_violations() const { return 0; }
};

}  // namespace frd::detect
