// The reachability query plane shared by all backends (DESIGN.md §4).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "runtime/events.hpp"
#include "support/check.hpp"

namespace frd::detect {

class reachability_backend;

// A reachability backend consumes the runtime's dag-growth events and
// answers the only query a determinacy race detector needs (paper §3):
// "does previously executed strand u precede the currently executing
// strand?" (If not, they are logically parallel — the current strand cannot
// be preceded by u's successors, which have not executed yet.)
//
// Queries go through an explicit query object, the reachability_view: a
// snapshot of the relation against the current strand, valid between two
// dag-growth events. Every dag event advances the owning backend's version()
// epoch, which invalidates outstanding views; a view refreshes its
// batch-invariant state lazily when queried under a newer epoch. Within one
// epoch a view's ANSWERS are immutable, which is the seam a parallel
// detector needs — but query() is not yet safe to call concurrently: views
// mutate private scratch/caches and bag lookups path-compress, so the
// parallel-detection PR must add per-worker views (or internal
// synchronization) on top of this epoch contract.
class reachability_view {
 public:
  virtual ~reachability_view() = default;

  // Batched query: out[i] = "strands[i] precedes the current strand", for
  // each i. strands may be unsorted and carry duplicates; out must be the
  // same length. Backends answer the batch's unique strands against one
  // traversal/lookup pass of their structure (answer_strand_batch below),
  // not a per-element loop over independent scalar lookups.
  virtual void query(std::span<const rt::strand_id> strands,
                     std::span<bool> out) = 0;

  // The epoch this view answers for. Delegates to the owning backend, so a
  // dag event observably invalidates every outstanding view at once.
  std::uint64_t version() const;

  // The one-element compatibility wrapper — the only scalar entry point of
  // the query plane. Everything else (detector, session, tests) routes
  // through it or through query() directly.
  bool precedes_current(rt::strand_id u) {
    bool out = false;
    query({&u, 1}, {&out, 1});
    return out;
  }

 protected:
  explicit reachability_view(const reachability_backend& owner)
      : owner_(owner) {}
  reachability_view(const reachability_view&) = delete;
  reachability_view& operator=(const reachability_view&) = delete;

 private:
  const reachability_backend& owner_;
};

class reachability_backend : public rt::execution_listener {
 public:
  // The backend's query object for the current epoch. The reference stays
  // valid for the backend's lifetime; its answers are only meaningful until
  // the next dag-growth event (version() advances).
  virtual reachability_view& view() = 0;

  // Epoch stamp: advanced by every dag-growth event, before the backend's
  // handler runs. Views compare against it to refresh cached state.
  std::uint64_t version() const { return version_; }

  virtual std::string_view name() const = 0;
  // Structured-future discipline violations noticed at get_fut (0 when the
  // backend does not check).
  virtual std::uint64_t structured_violations() const { return 0; }

  // execution_listener — final on purpose: the base class owns the epoch,
  // so no backend can forget to invalidate outstanding views. Backends
  // override the handle_* hooks instead.
  void on_program_begin(rt::func_id f, rt::strand_id s) final {
    ++version_;
    handle_program_begin(f, s);
  }
  void on_program_end(rt::strand_id s) final {
    ++version_;
    handle_program_end(s);
  }
  void on_strand_begin(rt::strand_id s, rt::func_id f) final {
    ++version_;
    handle_strand_begin(s, f);
  }
  void on_spawn(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                rt::strand_id v) final {
    ++version_;
    handle_spawn(p, u, c, w, v);
  }
  void on_create(rt::func_id p, rt::strand_id u, rt::func_id c, rt::strand_id w,
                 rt::strand_id v) final {
    ++version_;
    handle_create(p, u, c, w, v);
  }
  void on_return(rt::func_id c, rt::strand_id last, rt::func_id p) final {
    ++version_;
    handle_return(c, last, p);
  }
  void on_sync(const sync_event& e) final {
    ++version_;
    handle_sync(e);
  }
  void on_get(rt::func_id fn, rt::strand_id u, rt::strand_id v, rt::func_id fut,
              rt::strand_id w, rt::strand_id creator) final {
    ++version_;
    handle_get(fn, u, v, fut, w, creator);
  }

 protected:
  virtual void handle_program_begin(rt::func_id, rt::strand_id) {}
  virtual void handle_program_end(rt::strand_id) {}
  virtual void handle_strand_begin(rt::strand_id, rt::func_id) {}
  virtual void handle_spawn(rt::func_id, rt::strand_id, rt::func_id,
                            rt::strand_id, rt::strand_id) {}
  virtual void handle_create(rt::func_id, rt::strand_id, rt::func_id,
                             rt::strand_id, rt::strand_id) {}
  virtual void handle_return(rt::func_id, rt::strand_id, rt::func_id) {}
  virtual void handle_sync(const sync_event&) {}
  virtual void handle_get(rt::func_id, rt::strand_id, rt::strand_id,
                          rt::func_id, rt::strand_id, rt::strand_id) {}

 private:
  std::uint64_t version_ = 0;
};

inline std::uint64_t reachability_view::version() const {
  return owner_.version();
}

// Scratch space reused across answer_strand_batch calls (sorted unique
// strands + their answers), owned by the view that batches with it.
struct batch_scratch {
  std::vector<rt::strand_id> strands;
  std::vector<std::uint8_t> answers;
};

// Contiguous bool storage for query() output spans (std::vector<bool> is
// packed and cannot hand out bool*). Grows geometrically, never shrinks.
class bool_buffer {
 public:
  std::span<bool> span(std::size_t n) {
    if (n > cap_) {
      cap_ = std::max(n, cap_ * 2);
      data_ = std::make_unique<bool[]>(cap_);
    }
    return {data_.get(), n};
  }

 private:
  std::unique_ptr<bool[]> data_;
  std::size_t cap_ = 0;
};

// Shared batch plumbing for view implementations: reduces the batch to its
// sorted unique strands, invokes `answer(u)` exactly once per distinct
// strand, and scatters the results into out. A batch that is already sorted
// and duplicate-free — what the detector's per-epoch cache emits — is
// answered in place with no scratch work; the general path sorts/dedups
// into `scratch` and resolves each output by binary search.
template <typename Answer>
void answer_strand_batch(std::span<const rt::strand_id> strands,
                         std::span<bool> out, batch_scratch& scratch,
                         Answer&& answer) {
  FRD_CHECK_MSG(strands.size() == out.size(),
                "reachability_view::query needs out.size() == strands.size()");
  bool sorted_unique = true;
  for (std::size_t i = 1; i < strands.size(); ++i) {
    if (strands[i - 1] >= strands[i]) {
      sorted_unique = false;
      break;
    }
  }
  if (sorted_unique) {
    for (std::size_t i = 0; i < strands.size(); ++i) out[i] = answer(strands[i]);
    return;
  }
  scratch.strands.assign(strands.begin(), strands.end());
  std::sort(scratch.strands.begin(), scratch.strands.end());
  scratch.strands.erase(
      std::unique(scratch.strands.begin(), scratch.strands.end()),
      scratch.strands.end());
  scratch.answers.resize(scratch.strands.size());
  for (std::size_t i = 0; i < scratch.strands.size(); ++i) {
    scratch.answers[i] = answer(scratch.strands[i]) ? 1 : 0;
  }
  for (std::size_t i = 0; i < strands.size(); ++i) {
    const auto it = std::lower_bound(scratch.strands.begin(),
                                     scratch.strands.end(), strands[i]);
    out[i] = scratch.answers[static_cast<std::size_t>(
                 it - scratch.strands.begin())] != 0;
  }
}

}  // namespace frd::detect
