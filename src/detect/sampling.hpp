// Seeded access-sampling primitives (DESIGN.md §9), shared between the
// detector's in-protocol carve-out and the trace player's replay prefilter.
//
// The sampling decision must be a pure function of (key, seed) that both
// sides compute bit-identically: the detector uses it per access inside
// check_read/check_write (live hooks, and the recheck on batched runs), and
// the player uses it to drop sampled-out accesses BEFORE they enter a
// batch — a skipped replay event then costs one decode plus one hash
// instead of a batch slot, an on_accesses scan step, and the same hash
// again. Keeping one definition here is what makes the two paths provably
// agree (test_sampling's determinism and subset suites pin this).
#pragma once

#include <cstdint>

namespace frd::detect::sampling {

// splitmix64 finalizer: cheap, stateless, and uniform enough that the
// admitted fraction tracks the rate per workload.
constexpr std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

// sample_rate as a 53-bit threshold: rate * 2^53 is exact for every
// representable rate in (0, 1] and never overflows the conversion; rate 1.0
// maps to 2^53 itself, which every mixed key (shifted down to 53 bits) is
// below. Range validation stays with the caller (detector_config).
constexpr std::uint64_t threshold53(double rate) {
  return static_cast<std::uint64_t>(rate * 9007199254740992.0);  // 2^53
}

constexpr bool admits(std::uint64_t key, std::uint64_t seed,
                      std::uint64_t thresh53) {
  return (mix(key ^ seed) >> 11) < thresh53;
}

// The granule policy's admit decision packaged for the trace player
// (detector::replay_prefilter constructs it from the same config fields the
// in-protocol checks read). Disarmed (the default) it is a dead branch;
// armed, the player drops non-admitted accesses pre-batch and reports the
// tally back through detector::note_prefiltered so access_count() and the
// sampled/skipped counters stay those of the unfiltered path. Only the
// granule policy can prefilter: its key is the granule address, which the
// player knows — the epoch policy keys on the backend's dag-event version,
// which only the detector sees.
struct granule_prefilter {
  std::uint64_t seed = 0;
  std::uint64_t thresh53 = 0;
  std::uintptr_t granule_mask = 0;
  bool armed = false;

  bool admits_granule(std::uintptr_t addr) const {
    return admits(static_cast<std::uint64_t>(addr & granule_mask), seed,
                  thresh53);
  }
};

}  // namespace frd::detect::sampling
