#include "detect/multibags.hpp"

namespace frd::detect {

void multibags::handle_program_begin(rt::func_id main_fn, rt::strand_id first) {
  bags_.program_begin(main_fn, first);
}

void multibags::handle_strand_begin(rt::strand_id s, rt::func_id owner) {
  bags_.add_strand(owner, s);
}

// Paper Figure 1, line 1: S_G = Make-Set(w). spawn and create_fut are the
// same operation for MultiBags.
void multibags::handle_spawn(rt::func_id, rt::strand_id, rt::func_id child,
                         rt::strand_id w, rt::strand_id) {
  bags_.child_begin(child, w);
}

void multibags::handle_create(rt::func_id, rt::strand_id, rt::func_id child,
                          rt::strand_id w, rt::strand_id) {
  bags_.child_begin(child, w);
}

// Figure 1, line 2: P_G = S_G.
void multibags::handle_return(rt::func_id child, rt::strand_id, rt::func_id) {
  bags_.child_return(child);
}

// sync == one get_fut per outstanding child (§4). The virtual join strands
// of the binary decomposition belong to the syncing function.
void multibags::handle_sync(const sync_event& e) {
  for (const rt::child_record& c : e.children) bags_.join_child(e.fn, c.child);
  for (rt::strand_id j : e.join_strands) bags_.add_strand(e.fn, j);
}

// Figure 1, line 3: S_F = Union(S_F, P_G). The discipline check: creator(G)
// must precede the getter strand, i.e. sit in an S-bag right now.
void multibags::handle_get(rt::func_id fn, rt::strand_id, rt::strand_id,
                       rt::func_id fut, rt::strand_id, rt::strand_id creator) {
  if (creator != rt::kNoStrand && !bags_.in_s_bag(creator)) ++violations_;
  bags_.join_child(fn, fut);
}

}  // namespace frd::detect
