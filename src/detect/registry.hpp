// String-keyed registry of reachability backends.
//
// The paper's core claim is that reachability maintenance is pluggable:
// MultiBags for structured futures (§4), MultiBags+ for general futures
// (§5), against a vector-clock baseline (§7). The registry makes that
// pluggability a first-class API: backends are registered under a stable
// string key with capability flags, and frd::session resolves the key at
// construction. Out-of-tree backends can register themselves too — the every
// later scaling PR (parallel detection, sharded shadow memory) plugs in
// here instead of growing an enum.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "detect/backend.hpp"
#include "detect/types.hpp"

namespace frd::detect {

struct backend_info {
  std::string name;           // registry key, e.g. "multibags+"
  std::string paper_section;  // provenance, e.g. "§5"
  std::string bounds;         // asymptotic cost note for docs/tools
  future_support futures = future_support::general;
  bool counts_violations = false;  // structured-discipline violation counter
  std::function<std::unique_ptr<reachability_backend>()> make;
};

class backend_registry {
 public:
  // Process-wide registry, pre-populated with the five in-tree backends:
  // multibags, multibags+, vector-clock, sp-bags, reference.
  static backend_registry& instance();

  // Registers a backend; the name must be new.
  void add(backend_info info);

  // Lookup by name; null when unknown.
  const backend_info* find(std::string_view name) const;

  // Lookup by name; throws backend_error listing every registered name.
  const backend_info& at(std::string_view name) const;

  // Constructs a fresh backend instance (throws like at()).
  std::unique_ptr<reachability_backend> create(std::string_view name) const;

  // All registered names, sorted.
  std::vector<std::string> names() const;

 private:
  backend_registry();  // registers the builtins

  // Deque, not vector: find()/at() hand out long-lived pointers (frd::session
  // caches one for its lifetime), so registration must never relocate
  // existing entries.
  std::deque<backend_info> infos_;
};

}  // namespace frd::detect
