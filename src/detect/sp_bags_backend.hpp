// SP-bags reachability for fork-join (spawn/sync only) programs.
//
// The classic Feng & Leiserson detector the paper generalizes (§2 related
// work), expressed with the same rename-based bag machinery MultiBags uses:
// on fork-join programs the two algorithms coincide (a sync joins every
// outstanding child, so "rename to P, union at the join" and the classic
// "union into the parent's P-bag, empty at sync" see the same bags at every
// query). Registered with future_support::none — the detector rejects
// create_fut/get_fut before forwarding, so the checks below only fire on
// direct (unregistered) misuse.
#pragma once

#include "detect/backend.hpp"
#include "detect/sp_bags.hpp"

namespace frd::detect {

class sp_bags_backend final : public reachability_backend {
 public:
  sp_bags_backend() = default;

  bool precedes_current(rt::strand_id u) override { return bags_.in_s_bag(u); }
  std::string_view name() const override { return "sp-bags"; }

  const dsu::forest_stats& dsu_stats() const { return bags_.stats(); }

  // execution_listener
  void on_program_begin(rt::func_id main_fn, rt::strand_id first) override {
    bags_.program_begin(main_fn, first);
  }
  void on_strand_begin(rt::strand_id s, rt::func_id owner) override {
    bags_.add_strand(owner, s);
  }
  void on_spawn(rt::func_id, rt::strand_id, rt::func_id child, rt::strand_id w,
                rt::strand_id) override {
    bags_.child_begin(child, w);
  }
  void on_create(rt::func_id, rt::strand_id, rt::func_id, rt::strand_id,
                 rt::strand_id) override {
    FRD_CHECK_MSG(false,
                  "sp-bags handles fork-join programs only (no futures); use "
                  "multibags or multibags+");
  }
  void on_return(rt::func_id child, rt::strand_id, rt::func_id) override {
    bags_.child_return(child);
  }
  void on_sync(const sync_event& e) override {
    for (const rt::child_record& c : e.children) bags_.join_child(e.fn, c.child);
    for (rt::strand_id j : e.join_strands) bags_.add_strand(e.fn, j);
  }
  void on_get(rt::func_id, rt::strand_id, rt::strand_id, rt::func_id,
              rt::strand_id, rt::strand_id) override {
    FRD_CHECK_MSG(false,
                  "sp-bags handles fork-join programs only (no futures); use "
                  "multibags or multibags+");
  }

 private:
  sp_bags bags_;
};

}  // namespace frd::detect
