// SP-bags reachability for fork-join (spawn/sync only) programs.
//
// The classic Feng & Leiserson detector the paper generalizes (§2 related
// work), expressed with the same rename-based bag machinery MultiBags uses:
// on fork-join programs the two algorithms coincide (a sync joins every
// outstanding child, so "rename to P, union at the join" and the classic
// "union into the parent's P-bag, empty at sync" see the same bags at every
// query). Registered with future_support::none — the detector rejects
// create_fut/get_fut before forwarding, so the checks below only fire on
// direct (unregistered) misuse.
#pragma once

#include "detect/backend.hpp"
#include "detect/sp_bags.hpp"

namespace frd::detect {

class sp_bags_backend final : public reachability_backend {
 public:
  sp_bags_backend() : view_(*this) {}

  reachability_view& view() override { return view_; }
  std::string_view name() const override { return "sp-bags"; }

  const dsu::forest_stats& dsu_stats() const { return bags_.stats(); }

 protected:
  // execution_listener hooks (epoch bumping handled by the base).
  void handle_program_begin(rt::func_id main_fn, rt::strand_id first) override {
    bags_.program_begin(main_fn, first);
  }
  void handle_strand_begin(rt::strand_id s, rt::func_id owner) override {
    bags_.add_strand(owner, s);
  }
  void handle_spawn(rt::func_id, rt::strand_id, rt::func_id child,
                    rt::strand_id w, rt::strand_id) override {
    bags_.child_begin(child, w);
  }
  void handle_create(rt::func_id, rt::strand_id, rt::func_id, rt::strand_id,
                     rt::strand_id) override {
    FRD_CHECK_MSG(false,
                  "sp-bags handles fork-join programs only (no futures); use "
                  "multibags or multibags+");
  }
  void handle_return(rt::func_id child, rt::strand_id, rt::func_id) override {
    bags_.child_return(child);
  }
  void handle_sync(const sync_event& e) override {
    for (const rt::child_record& c : e.children) bags_.join_child(e.fn, c.child);
    for (rt::strand_id j : e.join_strands) bags_.add_strand(e.fn, j);
  }
  void handle_get(rt::func_id, rt::strand_id, rt::strand_id, rt::func_id,
                  rt::strand_id, rt::strand_id) override {
    FRD_CHECK_MSG(false,
                  "sp-bags handles fork-join programs only (no futures); use "
                  "multibags or multibags+");
  }

 private:
  // Same query as MultiBags: S-bag membership, one DSU find per unique
  // strand of the batch.
  class bag_view final : public reachability_view {
   public:
    explicit bag_view(sp_bags_backend& owner)
        : reachability_view(owner), owner_(owner) {}
    void query(std::span<const rt::strand_id> strands,
               std::span<bool> out) override {
      answer_strand_batch(strands, out, scratch_, [this](rt::strand_id u) {
        return owner_.bags_.in_s_bag(u);
      });
    }

   private:
    sp_bags_backend& owner_;
    batch_scratch scratch_;
  };

  sp_bags bags_;
  bag_view view_;
};

}  // namespace frd::detect
