// Memory-access hooks: the seam between instrumented kernels and a detector.
//
// Kernels are compiled against a hooks policy (`none` or `active`). The
// `active` policy makes one out-of-line call per access — the call itself is
// the instrumentation cost the paper's "instr" configuration measures, like
// the compiler pass with history maintenance disabled (§6). The call routes
// into the currently installed access_sink, which frd::session installs and
// restores RAII-style around each detection run (scoped_sink), so stacked
// sessions always unwind to the enclosing session's sink. The sink pointer
// is an implementation detail of hooks.cpp; nothing else touches it. The
// pointer itself is atomic so online-parallel runs (src/online/) can read it
// from scheduler workers; install/restore still happens on one thread at a
// time (the session's host thread), and the installed sink must itself be
// thread safe when the program runs on the parallel runtime (the online
// engine's router is; the plain detector is serial-only).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

namespace frd::detect::hooks {

// One element of a batched access run (on_accesses): a single-granule
// access, already split — addr is the granule base address and the access
// does not cross a granule boundary. Replayed traces store accesses in
// exactly this form, which is what makes the batch path branch-cheap.
struct access {
  std::uintptr_t addr;
  bool is_write;
};

// Receiver of instrumented accesses (implemented by detect::detector).
class access_sink {
 public:
  virtual ~access_sink() = default;
  virtual void on_read(const void* p, std::size_t bytes) = 0;
  virtual void on_write(const void* p, std::size_t bytes) = 0;

  // Batched entry point: a run of single-granule accesses, each `bytes`
  // wide (the recording granule), delivered in one virtual call. The
  // default unrolls into per-access on_read/on_write so every sink accepts
  // batches; the detector overrides it with a loop that skips the
  // per-access dispatch and granule splitting — the replay hot path.
  virtual void on_accesses(std::span<const access> batch, std::size_t bytes);
};

// The sink `active` currently routes into (null when no session is running).
access_sink* current_sink();

// RAII install/restore of the hook sink; nests like the sessions that own it.
class scoped_sink {
 public:
  explicit scoped_sink(access_sink* s);
  ~scoped_sink();
  scoped_sink(const scoped_sink&) = delete;
  scoped_sink& operator=(const scoped_sink&) = delete;

 private:
  access_sink* prev_;
};

// No instrumentation: compiles to nothing (baseline / reachability configs).
struct none {
  static constexpr bool enabled = false;
  static void read(const void*, std::size_t) {}
  static void write(const void*, std::size_t) {}
};

// Full instrumentation: one out-of-line call per access.
struct active {
  static constexpr bool enabled = true;
  static void read(const void* p, std::size_t n);
  static void write(const void* p, std::size_t n);
};

// Typed access helpers used by kernels: H::read/H::write fire before the
// underlying load/store, mirroring where a compiler pass would instrument.
template <typename H, typename T>
inline T ld(const T& x) {
  H::read(&x, sizeof(T));
  return x;
}
template <typename H, typename T, typename V>
inline void st(T& x, V&& v) {
  H::write(&x, sizeof(T));
  x = static_cast<T>(std::forward<V>(v));
}

}  // namespace frd::detect::hooks
