#include "detect/hooks.hpp"

#include <atomic>

namespace frd::detect::hooks {

namespace {
// The one mutable global of the instrumentation path. Only this translation
// unit sees it; everything else installs through scoped_sink. Atomic because
// online-parallel runs (src/online/) read it from every scheduler worker
// while the owning session installs/restores it on the host thread; the
// acquire/release pair publishes the sink object along with the pointer.
std::atomic<access_sink*> g_sink{nullptr};
}  // namespace

access_sink* current_sink() { return g_sink.load(std::memory_order_acquire); }

void access_sink::on_accesses(std::span<const access> batch,
                              std::size_t bytes) {
  for (const access& a : batch) {
    const void* p = reinterpret_cast<const void*>(a.addr);
    if (a.is_write) {
      on_write(p, bytes);
    } else {
      on_read(p, bytes);
    }
  }
}

scoped_sink::scoped_sink(access_sink* s)
    : prev_(g_sink.load(std::memory_order_relaxed)) {
  g_sink.store(s, std::memory_order_release);
}
scoped_sink::~scoped_sink() { g_sink.store(prev_, std::memory_order_release); }

void active::read(const void* p, std::size_t n) {
  if (access_sink* s = g_sink.load(std::memory_order_acquire)) s->on_read(p, n);
}
void active::write(const void* p, std::size_t n) {
  if (access_sink* s = g_sink.load(std::memory_order_acquire)) s->on_write(p, n);
}

}  // namespace frd::detect::hooks
