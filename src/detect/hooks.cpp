#include "detect/hooks.hpp"

namespace frd::detect::hooks {

namespace {
// The one mutable global of the instrumentation path. Only this translation
// unit sees it; everything else installs through scoped_sink.
access_sink* g_sink = nullptr;
}  // namespace

access_sink* current_sink() { return g_sink; }

void access_sink::on_accesses(std::span<const access> batch,
                              std::size_t bytes) {
  for (const access& a : batch) {
    const void* p = reinterpret_cast<const void*>(a.addr);
    if (a.is_write) {
      on_write(p, bytes);
    } else {
      on_read(p, bytes);
    }
  }
}

scoped_sink::scoped_sink(access_sink* s) : prev_(g_sink) { g_sink = s; }
scoped_sink::~scoped_sink() { g_sink = prev_; }

void active::read(const void* p, std::size_t n) {
  if (g_sink != nullptr) g_sink->on_read(p, n);
}
void active::write(const void* p, std::size_t n) {
  if (g_sink != nullptr) g_sink->on_write(p, n);
}

}  // namespace frd::detect::hooks
