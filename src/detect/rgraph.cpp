#include "detect/rgraph.hpp"

#include "support/check.hpp"

namespace frd::detect {

rgraph::node rgraph::add_node() {
  const node n = static_cast<node>(to_.size());
  to_.emplace_back();
  has_succ_.push_back(0);
  ++stats_.nodes;
  return n;
}

void rgraph::add_arc(node a, node b) {
  FRD_DCHECK(a < to_.size() && b < to_.size());
  if (a == b) return;  // arcs within one attached set carry no information
  if (to_[b].size() > a && to_[b].test(a)) {
    ++stats_.redundant_arcs;
    return;
  }
  FRD_CHECK_MSG(!(to_[a].size() > b && to_[a].test(b)),
                "arc would create a cycle in R");
  ++stats_.arcs;

  // pred := {a} ∪ to[a]. to_[a] itself is untouched below: a is not b, and
  // no descendant of b can be a (acyclicity), so no snapshot is needed.
  // A node that already carries the new reachability is skipped outright —
  // if s reached a before this arc, the closure invariant already gives
  // to[s] ⊇ {a} ∪ to[a], so its merge would be a no-op.
  auto update_to = [&](node s) {
    if (to_[s].size() > a && to_[s].test(a)) return;
    to_[s].or_with(to_[a]);
    if (to_[s].size() <= a) to_[s].resize(a + 1);
    to_[s].set(a);
    ++stats_.row_merges;
  };

  update_to(b);
  // Descendants of b gain the same predecessors. Almost every arc the §5
  // handlers add targets a just-created sink node (create/get/attachify),
  // where has_succ_ skips this outright and the whole arc was the one merge
  // above. When b does have successors (the both-attached sync diamond),
  // its strict descendants are exactly the rows carrying b's bit — the bit
  // cannot appear in a row during this loop (that would need b to reach a,
  // a cycle), so the scan is stable.
  if (has_succ_[b]) {
    const node n = static_cast<node>(to_.size());
    for (node s = 0; s < n; ++s) {
      if (s != b && to_[s].size() > b && to_[s].test(b)) update_to(s);
    }
  }
  has_succ_[a] = 1;
}

bool rgraph::reaches(node a, node b) const {
  FRD_DCHECK(a < to_.size() && b < to_.size());
  if (a == b) return false;
  const bitvec& row = to_[b];
  return row.size() > a && row.test(a);
}

std::size_t rgraph::closure_bytes() const {
  std::size_t bytes = has_succ_.size();
  for (const bitvec& v : to_) bytes += (v.size() + 7) / 8;
  return bytes;
}

}  // namespace frd::detect
