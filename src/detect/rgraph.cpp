#include "detect/rgraph.hpp"

#include "support/check.hpp"

namespace frd::detect {

rgraph::node rgraph::add_node() {
  const node n = static_cast<node>(from_.size());
  from_.emplace_back();
  to_.emplace_back();
  ++stats_.nodes;
  return n;
}

void rgraph::add_arc(node a, node b) {
  FRD_DCHECK(a < from_.size() && b < from_.size());
  if (a == b) return;  // arcs within one attached set carry no information
  if (from_[a].size() > b && from_[a].test(b)) {
    ++stats_.redundant_arcs;
    return;
  }
  FRD_CHECK_MSG(!(from_[b].size() > a && from_[b].test(a)),
                "arc would create a cycle in R");
  ++stats_.arcs;

  // succ := {b} ∪ from[b], pred := {a} ∪ to[a]. Rows of b/a themselves are
  // untouched by the loops below (acyclicity), so snapshots are not needed.
  auto update_from = [&](node p) {
    from_[p].or_with(from_[b]);
    if (from_[p].size() <= b) from_[p].resize(b + 1);
    from_[p].set(b);
    ++stats_.row_merges;
  };
  auto update_to = [&](node s) {
    to_[s].or_with(to_[a]);
    if (to_[s].size() <= a) to_[s].resize(a + 1);
    to_[s].set(a);
    ++stats_.row_merges;
  };

  update_from(a);
  to_[a].for_each_set([&](std::size_t p) { update_from(static_cast<node>(p)); });
  update_to(b);
  from_[b].for_each_set([&](std::size_t s) {
    if (static_cast<node>(s) != b) update_to(static_cast<node>(s));
  });
}

bool rgraph::reaches(node a, node b) const {
  FRD_DCHECK(a < from_.size() && b < from_.size());
  if (a == b) return false;
  const bitvec& row = from_[a];
  return row.size() > b && row.test(b);
}

std::size_t rgraph::closure_bytes() const {
  std::size_t bytes = 0;
  for (const bitvec& v : from_) bytes += (v.size() + 7) / 8;
  for (const bitvec& v : to_) bytes += (v.size() + 7) / 8;
  return bytes;
}

}  // namespace frd::detect
