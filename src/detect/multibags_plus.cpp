#include "detect/multibags_plus.hpp"

namespace frd::detect {

// ---------------------------------------------------------------------------
// Query (paper Figure 3), batched.
// ---------------------------------------------------------------------------
// Lines 3-5, once per epoch: proxy the current strand v through its attached
// predecessor and pin that node's R predecessor row. The row reference stays
// valid for the whole epoch — R only grows in dag-event handlers, which
// advance the version first.
void multibags_plus::figure3_view::refresh() {
  nsp_set* sv = owner_.dnsp_.payload(owner_.elem(owner_.current_));
  FRD_CHECK(sv != nullptr);
  if (!sv->attached) sv = sv->att_pred;
  FRD_CHECK(sv != nullptr && sv->attached);
  preds_of_current_ = &owner_.r_.preds_of(sv->r_node);
  cached_version_ = version() + 1;
}

void multibags_plus::figure3_view::query(
    std::span<const rt::strand_id> strands, std::span<bool> out) {
  if (cached_version_ != version() + 1) refresh();
  const bitvec& row = *preds_of_current_;
  answer_strand_batch(strands, out, scratch_, [&](rt::strand_id u) {
    // Lines 1-2: a path with no get edges shows up as an S-bag hit.
    if (owner_.dsp_.in_s_bag(u)) return true;

    // Lines 6-9: proxy u through its attached successor; no successor means
    // nothing after u's complete SP subdag has executed yet, so u is
    // parallel to the current strand (Lemma A.11).
    nsp_set* su = owner_.dnsp_.payload(owner_.elem(u));
    FRD_CHECK(su != nullptr);
    if (!su->attached) {
      su = su->att_succ;
      if (su == nullptr) return false;
    }
    FRD_CHECK(su->attached);

    // Line 10: strict reachability in R, as one bit test in the hoisted
    // predecessor row (preds never contain the node itself, so equal sets
    // test false — when the true relation is "precedes", the witness path
    // is SP-only and was already caught by the S-bag hit; DESIGN.md §5,
    // Lemmas A.3/A.8).
    return row.size() > su->r_node && row.test(su->r_node);
  });
}

// ---------------------------------------------------------------------------
// Set construction helpers.
// ---------------------------------------------------------------------------
void multibags_plus::make_unattached(rt::strand_id s, nsp_set* att_pred) {
  FRD_CHECK_MSG(att_pred != nullptr && att_pred->attached,
                "unattached sets must proxy to an attached predecessor");
  auto* p = arena_.create<nsp_set>(
      nsp_set{false, att_pred, nullptr, rgraph::kNoNode});
  bind(s, dnsp_.make_set(p));
}

multibags_plus::nsp_set* multibags_plus::make_attached(rt::strand_id s) {
  auto* p =
      arena_.create<nsp_set>(nsp_set{true, nullptr, nullptr, r_.add_node()});
  bind(s, dnsp_.make_set(p));
  return p;
}

multibags_plus::nsp_set* multibags_plus::attachify(rt::strand_id s) {
  nsp_set* p = dnsp_.payload(elem(s));
  FRD_CHECK(p != nullptr);
  if (p->attached) return p;
  // Figure 4 lines 19-22: promote in place; the arc from the attached
  // predecessor carries everything known to precede this subdag.
  p->attached = true;
  p->r_node = r_.add_node();
  FRD_CHECK(p->att_pred != nullptr && p->att_pred->attached);
  r_.add_arc(p->att_pred->r_node, p->r_node);
  return p;
}

multibags_plus::nsp_set* multibags_plus::att_pred_of(rt::strand_id s) {
  nsp_set* p = dnsp_.payload(elem(s));
  FRD_CHECK(p != nullptr);
  return p->attached ? p : p->att_pred;
}

// ---------------------------------------------------------------------------
// Events (paper Figure 4).
// ---------------------------------------------------------------------------
void multibags_plus::handle_program_begin(rt::func_id main_fn, rt::strand_id first) {
  dsp_.program_begin(main_fn, first);
  make_attached(first);  // line 1: attached set with no predecessor
  current_ = first;
}

void multibags_plus::handle_strand_begin(rt::strand_id s, rt::func_id owner) {
  dsp_.add_strand(owner, s);
  current_ = s;
}

// Lines 2-6. DSP treats spawn exactly like create_fut.
void multibags_plus::handle_spawn(rt::func_id, rt::strand_id u, rt::func_id child,
                              rt::strand_id w, rt::strand_id v) {
  dsp_.child_begin(child, w);
  nsp_set* pred = att_pred_of(u);
  make_unattached(v, pred);
  make_unattached(w, pred);
}

// Lines 7-12.
void multibags_plus::handle_create(rt::func_id, rt::strand_id u, rt::func_id child,
                               rt::strand_id w, rt::strand_id v) {
  dsp_.child_begin(child, w);
  nsp_set* su = attachify(u);
  nsp_set* av = make_attached(v);
  r_.add_arc(su->r_node, av->r_node);
  nsp_set* aw = make_attached(w);
  r_.add_arc(su->r_node, aw->r_node);
}

// Line 13.
void multibags_plus::handle_return(rt::func_id child, rt::strand_id, rt::func_id) {
  dsp_.child_return(child);
}

// Lines 14-17. No DSP work: multi-touch futures may get the same P-bag
// twice, so DSP ignores get entirely (§5 "Reachability data structures").
void multibags_plus::handle_get(rt::func_id, rt::strand_id u, rt::strand_id v,
                            rt::func_id, rt::strand_id w, rt::strand_id) {
  nsp_set* su = attachify(u);
  nsp_set* av = make_attached(v);
  r_.add_arc(su->r_node, av->r_node);
  nsp_set* sw = set_of(w);
  FRD_CHECK_MSG(sw->attached,
                "a future's last strand must be attached at get (Lemma A.3)");
  r_.add_arc(sw->r_node, av->r_node);
}

// Lines 23-46, one binary join at a time, innermost (= last spawned) first.
void multibags_plus::handle_sync(const sync_event& e) {
  const std::size_t c = e.children.size();
  FRD_CHECK(e.join_strands.size() == c);
  rt::strand_id t2 = e.before;
  for (std::size_t i = 0; i < c; ++i) {
    const rt::child_record& child = e.children[c - 1 - i];
    const rt::strand_id j = e.join_strands[i];
    dsp_.join_child(e.fn, child.child);  // line 23: S_F = Union(S_F, P_G)
    dsp_.add_strand(e.fn, j);
    sync_join(child.fork_strand, child.child_first, child.cont_first,
              child.child_last, t2, j);
    t2 = j;
  }
}

void multibags_plus::sync_join(rt::strand_id f, rt::strand_id s1,
                               rt::strand_id s2, rt::strand_id t1,
                               rt::strand_id t2, rt::strand_id j) {
  nsp_set* st1 = set_of(t1);
  nsp_set* st2 = set_of(t2);

  if (!st1->attached && !st2->attached) {
    // Lines 29-32: a complete SP subdag with no incident non-SP edges folds
    // into the fork's set (which may itself be attached — union keeps it).
    dnsp_.union_into(elem(f), elem(t1));
    dnsp_.union_into(elem(f), elem(t2));
    const dsu::element ej = dnsp_.make_set(nullptr);
    dnsp_.union_into(elem(f), ej);
    bind(j, ej);
    return;
  }

  if (st1->attached && st2->attached) {
    // Lines 33-40: both sides carry non-SP edges; the whole diamond goes
    // into R explicitly.
    nsp_set* sf = attachify(f);
    nsp_set* ss1 = set_of(s1);
    nsp_set* ss2 = set_of(s2);
    FRD_CHECK_MSG(ss1->attached && ss2->attached,
                  "sources of attached-sink subdags must be attached "
                  "(paper §5 / Lemma A.3 invariant)");
    r_.add_arc(sf->r_node, ss1->r_node);
    r_.add_arc(sf->r_node, ss2->r_node);
    nsp_set* aj = make_attached(j);
    r_.add_arc(st1->r_node, aj->r_node);
    r_.add_arc(st2->r_node, aj->r_node);
    return;
  }

  // Lines 41-46: exactly one side carries non-SP edges.
  const bool t1_attached = st1->attached;
  const rt::strand_id ta = t1_attached ? t1 : t2;
  const rt::strand_id tu = t1_attached ? t2 : t1;
  const rt::strand_id sa = t1_attached ? s1 : s2;
  nsp_set* ssa = set_of(sa);
  FRD_CHECK_MSG(ssa->attached,
                "source of the attached-sink side must be attached");
  if (!set_of(f)->attached) {
    dnsp_.union_into(elem(sa), elem(f));  // line 44: f joins sa's set
  }
  const dsu::element ej = dnsp_.make_set(nullptr);
  dnsp_.union_into(elem(ta), ej);  // line 45: j joins ta's set
  bind(j, ej);
  nsp_set* stu = set_of(tu);
  FRD_CHECK(!stu->attached);
  stu->att_succ = dnsp_.payload(ej);  // line 46 (= ta's attached set)
}

}  // namespace frd::detect
