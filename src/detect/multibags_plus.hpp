// MultiBags+: reachability for programs with *general* futures (paper §5).
//
// Three structures:
//   DSP  — the same S/P bags as MultiBags, except spawn is treated like
//          create_fut, sync like get_fut, and get_fut itself does nothing
//          (multi-touch futures would otherwise join twice). DSP alone
//          answers queries whose witness path uses no get edges
//          (Lemma A.1).
//   DNSP — a second disjoint-set partition of strands into attached sets
//          (subdags delimited by creator/getter strands; members of R) and
//          unattached sets (complete SP subdags with no incident non-SP
//          edges) carrying attPred/attSucc proxies into R.
//   R    — dag over attached sets with explicit transitive closure
//          (rgraph.hpp).
//
// Query (paper Figure 3): S-bag hit, else proxy u through attSucc and v
// through attPred and ask R. The batched view hoists the v side — the
// current strand's attached predecessor and its R predecessor row — once
// per epoch, so a batch costs one row lookup plus one bit test (and a DSU
// find) per unique strand.
//
// Attached-set payloads are arena-allocated and *stable*: two attached sets
// never union, and attached ∪ unattached keeps the attached payload, so the
// attPred/attSucc pointers held by unattached sets never dangle
// (Lemma A.7: those proxies always reference attached sets).
#pragma once

#include "detect/backend.hpp"
#include "detect/rgraph.hpp"
#include "detect/sp_bags.hpp"
#include "support/arena.hpp"

namespace frd::detect {

class multibags_plus final : public reachability_backend {
 public:
  multibags_plus() : view_(*this) {}

  reachability_view& view() override { return view_; }
  std::string_view name() const override { return "multibags+"; }

  const dsu::forest_stats& dsp_stats() const { return dsp_.stats(); }
  const rgraph& r() const { return r_; }

 protected:
  // execution_listener hooks (epoch bumping handled by the base).
  void handle_program_begin(rt::func_id main_fn, rt::strand_id first) override;
  void handle_strand_begin(rt::strand_id s, rt::func_id owner) override;
  void handle_spawn(rt::func_id parent, rt::strand_id u, rt::func_id child,
                    rt::strand_id w, rt::strand_id v) override;
  void handle_create(rt::func_id parent, rt::strand_id u, rt::func_id child,
                     rt::strand_id w, rt::strand_id v) override;
  void handle_return(rt::func_id child, rt::strand_id last,
                     rt::func_id parent) override;
  void handle_sync(const sync_event& e) override;
  void handle_get(rt::func_id fn, rt::strand_id u, rt::strand_id v,
                  rt::func_id fut, rt::strand_id w,
                  rt::strand_id creator) override;

 private:
  // Payload of a DNSP set. For attached sets, r_node is its node in R and
  // the set is its own attached predecessor/successor. For unattached sets,
  // att_pred is always a valid attached payload; att_succ starts null and is
  // assigned at most once (Figure 4 line 46).
  struct nsp_set {
    bool attached = false;
    nsp_set* att_pred = nullptr;
    nsp_set* att_succ = nullptr;
    rgraph::node r_node = rgraph::kNoNode;
  };

  // Figure 3's query with the current-strand side precomputed: refresh()
  // resolves the attached predecessor of the current strand and pins its R
  // predecessor row once per epoch; each unique strand then costs an S-bag
  // find plus one bit test in that row.
  class figure3_view final : public reachability_view {
   public:
    explicit figure3_view(multibags_plus& owner)
        : reachability_view(owner), owner_(owner) {}
    void query(std::span<const rt::strand_id> strands,
               std::span<bool> out) override;

   private:
    void refresh();

    multibags_plus& owner_;
    batch_scratch scratch_;
    std::uint64_t cached_version_ = 0;  // 0 = never refreshed (version_ + 1)
    const bitvec* preds_of_current_ = nullptr;  // R row of the v-side proxy
  };

  // --- element plumbing -----------------------------------------------
  dsu::element elem(rt::strand_id s) {
    FRD_DCHECK(s < nsp_elem_.size() && nsp_elem_[s] != dsu::kNoElement);
    return nsp_elem_[s];
  }
  void bind(rt::strand_id s, dsu::element e) {
    if (s >= nsp_elem_.size()) nsp_elem_.resize(s + 1, dsu::kNoElement);
    FRD_CHECK_MSG(nsp_elem_[s] == dsu::kNoElement, "strand already in DNSP");
    nsp_elem_[s] = e;
  }
  nsp_set* set_of(rt::strand_id s) { return dnsp_.payload(elem(s)); }

  // --- set construction (Figure 4) --------------------------------------
  // New unattached singleton {s} with the given attached predecessor.
  void make_unattached(rt::strand_id s, nsp_set* att_pred);
  // New attached singleton {s}; registers an R node. Arcs added by callers.
  nsp_set* make_attached(rt::strand_id s);
  // Figure 4 lines 18-22: converts s's set to attached if needed.
  nsp_set* attachify(rt::strand_id s);
  // Attached predecessor of s's set (itself when attached).
  nsp_set* att_pred_of(rt::strand_id s);
  // One binary join of the sync decomposition (Figure 4 lines 24-46).
  void sync_join(rt::strand_id f, rt::strand_id s1, rt::strand_id s2,
                 rt::strand_id t1, rt::strand_id t2, rt::strand_id j);

  sp_bags dsp_;
  dsu::forest<nsp_set> dnsp_;
  std::vector<dsu::element> nsp_elem_;  // strand -> DNSP element
  rgraph r_;
  arena arena_;
  rt::strand_id current_ = rt::kNoStrand;
  figure3_view view_;
};

}  // namespace frd::detect
