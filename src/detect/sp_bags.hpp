// S-bag / P-bag machinery shared by MultiBags and MultiBags+ (their DSP).
//
// Per paper Figure 1 / §5: every function instance F owns an S-bag while it
// is active; every new strand of F is unioned into S_F before it executes;
// when F returns its S-bag is *renamed* to the P-bag P_F (this rename — as
// opposed to SP-bags' union into the parent's P-bag — is the paper's key
// move for futures); joining F (get_fut under MultiBags, sync under both)
// unions P_F into the joiner's S-bag and destroys P_F.
//
// Invariant exploited by queries (Theorem 4.2 / Lemma A.1): a previously
// executed strand u is in an S-bag iff u precedes the currently executing
// strand (for MultiBags+: via spawn/create/join/continue edges only).
#pragma once

#include <vector>

#include "dsu/disjoint_set.hpp"
#include "runtime/events.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"

namespace frd::detect {

class sp_bags {
 public:
  enum class bag_kind : std::uint8_t { s, p, joined };

  // The per-set payload: the bag's current role. `owner` is kept for
  // diagnostics and tests (bag contents are asserted per function).
  struct bag {
    bag_kind kind;
    rt::func_id owner;
  };

  sp_bags() = default;

  // Main function begins with its first strand.
  void program_begin(rt::func_id fn, rt::strand_id first) {
    new_function(fn, first);
  }

  // Child function (spawned or future) begins at strand w.
  void child_begin(rt::func_id child, rt::strand_id w) { new_function(child, w); }

  // A strand of fn starts executing (or is a virtual join strand of fn):
  // union it into S_fn. Idempotent for strands that already have elements.
  void add_strand(rt::func_id fn, rt::strand_id s) {
    if (s < elem_.size() && elem_[s] != dsu::kNoElement) return;
    FRD_DCHECK(fn < funcs_.size() && funcs_[fn].rep != dsu::kNoElement);
    const dsu::element e = forest_.make_set(nullptr);
    forest_.union_into(funcs_[fn].rep, e);
    bind(s, e);
  }

  // fn returned: rename S_fn to P_fn (paper Figure 1, line 2).
  void child_return(rt::func_id fn) {
    bag* b = bag_of(fn);
    FRD_CHECK_MSG(b != nullptr && b->kind == bag_kind::s,
                  "returning function must own an S-bag");
    b->kind = bag_kind::p;
  }

  // joiner absorbs child's P-bag (get_fut for MultiBags, sync for both):
  // S_joiner = Union(S_joiner, P_child); P_child is destroyed.
  void join_child(rt::func_id joiner, rt::func_id child) {
    bag* pb = bag_of(child);
    FRD_CHECK_MSG(pb != nullptr && pb->kind == bag_kind::p,
                  "joined function must own a P-bag (single join per future "
                  "under MultiBags; did a multi-touch program run under the "
                  "structured algorithm?)");
    pb->kind = bag_kind::joined;  // destroyed; payload is replaced by union
    FRD_DCHECK(bag_of(joiner) != nullptr && bag_of(joiner)->kind == bag_kind::s);
    forest_.union_into(funcs_[joiner].rep, funcs_[child].rep);
  }

  // True iff the child has a joinable P-bag (it returned and was not yet
  // joined). MultiBags+ uses this to skip DSP work on multi-touch gets.
  bool has_p_bag(rt::func_id fn) {
    bag* b = bag_of(fn);
    return b != nullptr && b->kind == bag_kind::p;
  }

  // Query (paper Figure 1 bottom): u precedes the current strand iff u's set
  // is an S-bag.
  bool in_s_bag(rt::strand_id u) {
    FRD_DCHECK(u < elem_.size() && elem_[u] != dsu::kNoElement);
    const bag* b = forest_.payload(elem_[u]);
    FRD_CHECK_MSG(b != nullptr, "strand's set lost its bag payload");
    return b->kind == bag_kind::s;
  }

  bool knows_strand(rt::strand_id s) const {
    return s < elem_.size() && elem_[s] != dsu::kNoElement;
  }

  const dsu::forest_stats& stats() const { return forest_.stats(); }

 private:
  struct func_state {
    dsu::element rep = dsu::kNoElement;  // any element of the function's bag
  };

  void new_function(rt::func_id fn, rt::strand_id first) {
    bag* b = arena_.create<bag>(bag{bag_kind::s, fn});
    const dsu::element e = forest_.make_set(b);
    if (fn >= funcs_.size()) funcs_.resize(fn + 1);
    FRD_CHECK_MSG(funcs_[fn].rep == dsu::kNoElement, "function id reused");
    funcs_[fn].rep = e;
    bind(first, e);
  }

  // The bag currently owned by fn (payload of its set). After fn's bag was
  // absorbed by a join, this returns the absorber's bag; callers that need
  // "fn still owns its own bag" check the kind they expect.
  bag* bag_of(rt::func_id fn) {
    if (fn >= funcs_.size() || funcs_[fn].rep == dsu::kNoElement) return nullptr;
    return forest_.payload(funcs_[fn].rep);
  }

  void bind(rt::strand_id s, dsu::element e) {
    if (s >= elem_.size()) elem_.resize(s + 1, dsu::kNoElement);
    FRD_CHECK_MSG(elem_[s] == dsu::kNoElement, "strand id reused");
    elem_[s] = e;
  }

  dsu::forest<bag> forest_;
  std::vector<dsu::element> elem_;  // strand -> element
  std::vector<func_state> funcs_;
  arena arena_;
};

}  // namespace frd::detect
