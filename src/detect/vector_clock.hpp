// Vector-clock reachability baseline (paper §7).
//
// The related-work comparator the paper argues against: FastTrack-style
// happens-before tracking adapted to the task dag. One clock entry per
// function instance; a strand is identified by (function, local index) and
// u ≺ current iff cur_clock[func(u)] >= local_index(u).
//
// It is exact on arbitrary future dags (the fuzz tests hold it to the
// oracle), but every spawn/create snapshots an O(n)-entry clock and every
// join merges one — the Θ(n) per-construct cost (Θ(n²) total) that the
// paper's near-constant-time bag operations avoid. bench/ablation_vc makes
// that gap measurable.
#pragma once

#include <unordered_map>
#include <vector>

#include "detect/backend.hpp"
#include "support/check.hpp"

namespace frd::detect {

class vector_clock_backend final : public reachability_backend {
 public:
  vector_clock_backend() : view_(*this) {}

  reachability_view& view() override { return view_; }
  std::string_view name() const override { return "vector-clock"; }

  // Total clock entries ever copied/merged — the Θ(n) per construct cost.
  std::uint64_t clock_work() const { return clock_work_; }
  std::size_t live_clock_bytes() const {
    std::size_t n = cur_.capacity();
    for (const auto& [s, c] : saved_) n += c.capacity();
    for (const auto& [f, c] : final_) n += c.capacity();
    return n * sizeof(std::uint32_t);
  }

 protected:
  // execution_listener hooks (epoch bumping handled by the base).
  void handle_program_begin(rt::func_id f, rt::strand_id s) override {
    begin_strand(s, f);
  }
  void handle_strand_begin(rt::strand_id s, rt::func_id f) override {
    if (s < strands_.size() && strands_[s].fn != rt::kNoFunc) {
      // A virtual join strand already positioned by handle_sync; adopt it.
      return;
    }
    begin_strand(s, f);
  }
  void handle_spawn(rt::func_id, rt::strand_id, rt::func_id, rt::strand_id,
                    rt::strand_id v) override {
    // The continuation resumes from the fork point, not from wherever the
    // eagerly executed child left the current clock.
    saved_[v] = cur_;
    clock_work_ += cur_.size();
  }
  void handle_create(rt::func_id p, rt::strand_id u, rt::func_id c,
                     rt::strand_id w, rt::strand_id v) override {
    handle_spawn(p, u, c, w, v);
  }
  void handle_return(rt::func_id child, rt::strand_id, rt::func_id) override {
    // The child's final clock is what joins at sync/get.
    final_[child] = cur_;
    clock_work_ += cur_.size();
  }
  void handle_sync(const sync_event& e) override {
    // Restore the syncing function's own timeline, then merge every child.
    for (const rt::child_record& c : e.children) merge(final_[c.child]);
    for (rt::strand_id j : e.join_strands) position(j, e.fn);
  }
  void handle_get(rt::func_id fn, rt::strand_id u, rt::strand_id v,
                  rt::func_id fut, rt::strand_id, rt::strand_id) override {
    (void)fn;
    (void)u;
    (void)v;
    merge(final_[fut]);
  }

 private:
  struct strand_pos {
    rt::func_id fn = rt::kNoFunc;
    std::uint32_t idx = 0;
  };

  // The batch pass is one sweep over the current clock: every unique strand
  // costs a single position lookup and one compare against cur_.
  class clock_view final : public reachability_view {
   public:
    explicit clock_view(vector_clock_backend& owner)
        : reachability_view(owner), owner_(owner) {}
    void query(std::span<const rt::strand_id> strands,
               std::span<bool> out) override {
      const std::vector<std::uint32_t>& cur = owner_.cur_;
      answer_strand_batch(strands, out, scratch_, [&](rt::strand_id u) {
        FRD_DCHECK(u < owner_.strands_.size());
        const strand_pos& p = owner_.strands_[u];
        return p.fn < cur.size() && cur[p.fn] >= p.idx;
      });
    }

   private:
    vector_clock_backend& owner_;
    batch_scratch scratch_;
  };

  void begin_strand(rt::strand_id s, rt::func_id f) {
    // Resuming a continuation restores the clock snapshot taken at the fork.
    auto it = saved_.find(s);
    if (it != saved_.end()) {
      // The eager child's effects are NOT in the continuation's past; but the
      // child's final clock was already captured at handle_return, so it is
      // safe to overwrite cur_ entirely.
      cur_ = std::move(it->second);
      saved_.erase(it);
      clock_work_ += cur_.size();
    }
    position(s, f);
  }

  // Assigns strand s the next local index of f and advances the clock.
  void position(rt::strand_id s, rt::func_id f) {
    if (f >= next_idx_.size()) next_idx_.resize(f + 1, 0);
    if (f >= cur_.size()) cur_.resize(f + 1, 0);
    const std::uint32_t idx = ++next_idx_[f];
    cur_[f] = idx;
    if (s >= strands_.size()) strands_.resize(s + 1);
    strands_[s] = strand_pos{f, idx};
  }

  void merge(const std::vector<std::uint32_t>& other) {
    if (other.size() > cur_.size()) cur_.resize(other.size(), 0);
    for (std::size_t i = 0; i < other.size(); ++i)
      cur_[i] = std::max(cur_[i], other[i]);
    clock_work_ += other.size();
  }

  std::vector<std::uint32_t> cur_;
  std::vector<std::uint32_t> next_idx_;  // strands minted per function
  std::vector<strand_pos> strands_;
  std::unordered_map<rt::strand_id, std::vector<std::uint32_t>> saved_;
  std::unordered_map<rt::func_id, std::vector<std::uint32_t>> final_;
  std::uint64_t clock_work_ = 0;
  clock_view view_;
};

}  // namespace frd::detect
