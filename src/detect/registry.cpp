#include "detect/registry.hpp"

#include <algorithm>

#include "detect/multibags.hpp"
#include "detect/multibags_plus.hpp"
#include "detect/sp_bags_backend.hpp"
#include "detect/vector_clock.hpp"
#include "graph/oracle_backend.hpp"
#include "support/check.hpp"

namespace frd::detect {

backend_registry& backend_registry::instance() {
  static backend_registry reg;
  return reg;
}

backend_registry::backend_registry() {
  add({.name = "multibags",
       .paper_section = "§4",
       .bounds = "O(T1·α(m,n)) total",
       .futures = future_support::structured,
       .counts_violations = true,
       .make = []() -> std::unique_ptr<reachability_backend> {
         return std::make_unique<multibags>();
       }});
  add({.name = "multibags+",
       .paper_section = "§5",
       .bounds = "O(T1·α(m,n) + k²) total",
       .futures = future_support::general,
       .counts_violations = false,
       .make = []() -> std::unique_ptr<reachability_backend> {
         return std::make_unique<multibags_plus>();
       }});
  add({.name = "vector-clock",
       .paper_section = "§7 baseline",
       .bounds = "Θ(n) per construct (Θ(n²) total)",
       .futures = future_support::general,
       .counts_violations = false,
       .make = []() -> std::unique_ptr<reachability_backend> {
         return std::make_unique<vector_clock_backend>();
       }});
  add({.name = "sp-bags",
       .paper_section = "§2 (Feng & Leiserson)",
       .bounds = "O(T1·α(m,n)) total, fork-join only",
       .futures = future_support::none,
       .counts_violations = false,
       .make = []() -> std::unique_ptr<reachability_backend> {
         return std::make_unique<sp_bags_backend>();
       }});
  add({.name = "reference",
       .paper_section = "§3 oracle",
       .bounds = "quadratic (validation only)",
       .futures = future_support::general,
       .counts_violations = false,
       .make = []() -> std::unique_ptr<reachability_backend> {
         return std::make_unique<graph::oracle_backend>();
       }});
}

void backend_registry::add(backend_info info) {
  FRD_CHECK_MSG(!info.name.empty() && info.make != nullptr,
                "backend registration needs a name and a factory");
  FRD_CHECK_MSG(find(info.name) == nullptr, "backend name already registered");
  infos_.push_back(std::move(info));
}

const backend_info* backend_registry::find(std::string_view name) const {
  for (const backend_info& i : infos_)
    if (i.name == name) return &i;
  return nullptr;
}

const backend_info& backend_registry::at(std::string_view name) const {
  if (const backend_info* i = find(name)) return *i;
  std::string msg = "unknown reachability backend '";
  msg += name;
  msg += "'; registered backends:";
  for (const std::string& n : names()) {
    msg += ' ';
    msg += n;
  }
  throw backend_error(msg);
}

std::unique_ptr<reachability_backend> backend_registry::create(
    std::string_view name) const {
  return at(name).make();
}

std::vector<std::string> backend_registry::names() const {
  std::vector<std::string> out;
  out.reserve(infos_.size());
  for (const backend_info& i : infos_) out.push_back(i.name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace frd::detect
