// frd-serve ingest server: the detector as a long-running multi-tenant
// service.
//
// One server owns a Unix-domain listening socket and two thread families:
//
//   connection threads  (one per accepted client) read frames, demultiplex
//                       them onto per-stream buffers, and hand each closed
//                       stream to the worker pool. A connection is cheap —
//                       it never replays anything itself.
//   worker threads      (a fixed pool) pop completed streams and replay them
//                       through a worker-owned frd::session, streaming race
//                       frames in encounter order as the detector finds
//                       them, then a stream_done summary. Workers RECYCLE
//                       their session via session::reset() when the next
//                       stream asks for the same (backend, store, granule) —
//                       the pool never re-resolves registries or reallocates
//                       report/query buffers on the hot path.
//
// Isolation is the design invariant: a malformed frame, an unreadable trace,
// a budget overrun, or a mid-stream disconnect tears down exactly ONE stream
// (error frame, tombstoned id) or one connection — never the daemon, and
// never a sibling stream's report. Reports are byte-identical to an offline
// `frd-trace run` of the same trace under the same backend/store: replay
// order, race encounter order, and the golden-report summary all come from
// the same session machinery.
//
// Memory budgets: each stream is charged for its buffered trace bytes as
// they arrive, plus the session's PEAK detector footprint
// (memory_stats::peak_total_bytes, checked at replay checkpoints and once
// after replay) — the high-water mark, so a spike between checkpoints
// cannot duck under the grant. Exceeding it fails that stream with
// budget_exceeded; the daemon keeps serving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "shadow/store.hpp"

namespace frd {
class session;
}

namespace frd::serve {

struct server_options {
  std::string socket_path;
  unsigned workers = 2;
  // Per-stream memory grant in bytes (buffered trace + detector state);
  // 0 = unlimited. Clients may request less, never more.
  std::uint64_t default_budget = 0;
  // Replay batching (session::options::replay_batch; 0 = auto: 256 for
  // serial streams, 4096 when detect_workers applies).
  std::size_t replay_batch = 0;
  // Budget checkpoints fire every this many replayed events.
  std::uint64_t checkpoint_events = 65536;
  // Parallel detection workers per replaying session (detector fan-out —
  // distinct from `workers`, the stream-level pool above). Applied only to
  // streams whose shadow store is sharded; unsharded stores replay
  // serially, because the parallel path partitions on the shard hash.
  unsigned detect_workers = 1;
  // Daemon-wide sampling / bounded-history knobs (session::options;
  // DESIGN.md §9). Defaults run the full §3 protocol; a deployment trading
  // detection for throughput turns these for every served stream. Reports
  // streamed back under sample_rate < 1 or a finite depth are the
  // corresponding degraded mode's, not the full protocol's.
  double sample_rate = 1.0;
  std::uint64_t sample_seed = 1;
  std::size_t history_depth = shadow::kUnboundedHistory;
};

struct server_stats {
  std::uint64_t connections = 0;
  std::uint64_t streams_completed = 0;
  std::uint64_t streams_failed = 0;  // error frames sent (any code)
};

class server {
 public:
  explicit server(server_options opt);
  ~server();  // stop()s
  server(const server&) = delete;
  server& operator=(const server&) = delete;

  // Binds (unlinking a stale socket file), listens, spawns the acceptor and
  // the worker pool. Throws io_error when the socket cannot be created.
  void start();
  // Blocks until a shutdown frame or request_stop() arrives.
  void wait();
  // Initiates shutdown: stop accepting, fail queued streams with
  // shutting_down, wake wait(). Safe from any thread; idempotent.
  void request_stop();
  // Full teardown: request_stop(), close every connection, join all
  // threads, unlink the socket. Idempotent.
  void stop();

  const server_options& opts() const { return opt_; }
  server_stats stats() const;

 private:
  // Per-connection state shared between its reader thread and the workers
  // replaying its streams; destroyed when the last holder lets go.
  struct connection {
    explicit connection(int fd) : fd(fd), io(fd) {}
    ~connection();  // closes fd — runs when the last job/reader lets go
    connection(const connection&) = delete;
    connection& operator=(const connection&) = delete;
    int fd;
    frame_io io;
    std::mutex write_mu;  // frames from workers + reader interleave atomically
    std::atomic<bool> dead{false};
  };
  using conn_ptr = std::shared_ptr<connection>;

  // One closed stream, ready to replay.
  struct job {
    conn_ptr conn;
    std::uint64_t stream_id = 0;
    std::string backend;
    std::string store;
    std::uint64_t budget = 0;  // bytes; 0 = unlimited
    std::vector<std::uint8_t> bytes;
  };

  void accept_loop();
  void connection_loop(conn_ptr conn);
  void worker_loop();
  // Locked, MSG_NOSIGNAL frame send; marks the connection dead on failure
  // and rethrows io_error (the caller decides whether that ends a loop).
  void send_frame(connection& c, frame_type t,
                  std::span<const std::uint8_t> payload);
  void send_error(connection& c, std::uint64_t stream_id, error_code code,
                  const std::string& message);

  server_options opt_;
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<conn_ptr> conns_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<job> queue_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex stats_mu_;
  server_stats stats_;
};

}  // namespace frd::serve
