#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "compress/lz.hpp"  // put_varint / get_varint

namespace frd::serve {

namespace {

// Protocol payloads reuse the compress varint codec; its decode_error knows
// nothing about frames, so rewrap with the field name.
std::uint64_t get_field(std::span<const std::uint8_t> p, std::size_t& pos,
                        const char* field) {
  try {
    return compress::get_varint(p, pos);
  } catch (const compress::decode_error&) {
    throw protocol_error(std::string("malformed frame: field '") + field +
                         "' is truncated");
  }
}

void put_string(std::vector<std::uint8_t>& out, std::string_view s) {
  compress::put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::string get_string(std::span<const std::uint8_t> p, std::size_t& pos,
                       const char* field) {
  const std::uint64_t n = get_field(p, pos, field);
  if (n > p.size() - pos) {
    throw protocol_error(std::string("malformed frame: string field '") +
                         field + "' runs past the payload");
  }
  std::string s(reinterpret_cast<const char*>(p.data() + pos),
                static_cast<std::size_t>(n));
  pos += static_cast<std::size_t>(n);
  return s;
}

void expect_consumed(std::span<const std::uint8_t> p, std::size_t pos,
                     const char* what) {
  if (pos != p.size()) {
    throw protocol_error(std::string("malformed frame: ") + what +
                         " payload carries trailing bytes");
  }
}

}  // namespace

std::string_view to_string(error_code c) {
  switch (c) {
    case error_code::bad_frame: return "bad-frame";
    case error_code::version_skew: return "version-skew";
    case error_code::bad_trace: return "bad-trace";
    case error_code::budget_exceeded: return "budget-exceeded";
    case error_code::backend_error: return "backend-error";
    case error_code::internal: return "internal";
    case error_code::shutting_down: return "shutting-down";
  }
  return "unknown";
}

// -------------------------------------------------------------- encoders --

std::vector<std::uint8_t> encode(const hello_msg& m) {
  std::vector<std::uint8_t> p;
  compress::put_varint(p, m.version);
  return p;
}

std::vector<std::uint8_t> encode(const hello_ok_msg& m) {
  std::vector<std::uint8_t> p;
  compress::put_varint(p, m.version);
  compress::put_varint(p, m.default_budget);
  compress::put_varint(p, m.max_data_chunk);
  return p;
}

std::vector<std::uint8_t> encode(const stream_open_msg& m) {
  std::vector<std::uint8_t> p;
  compress::put_varint(p, m.stream_id);
  put_string(p, m.backend);
  put_string(p, m.store);
  compress::put_varint(p, m.budget);
  return p;
}

std::vector<std::uint8_t> encode(const race_msg& m) {
  std::vector<std::uint8_t> p;
  compress::put_varint(p, m.stream_id);
  compress::put_varint(p, m.granule_addr);
  compress::put_varint(p, m.prior);
  compress::put_varint(p, m.prior_is_write);
  compress::put_varint(p, m.current);
  compress::put_varint(p, m.current_is_write);
  return p;
}

std::vector<std::uint8_t> encode(const stream_done_msg& m) {
  std::vector<std::uint8_t> p;
  compress::put_varint(p, m.stream_id);
  compress::put_varint(p, m.granule);
  compress::put_varint(p, m.events);
  compress::put_varint(p, m.accesses);
  compress::put_varint(p, m.gets);
  compress::put_varint(p, m.violations);
  compress::put_varint(p, m.races_total);
  compress::put_varint(p, m.racy_granules.size());
  for (const std::uint64_t g : m.racy_granules) compress::put_varint(p, g);
  compress::put_varint(p, m.store_bytes);
  compress::put_varint(p, m.store_pages);
  compress::put_varint(p, m.report_retained);
  compress::put_varint(p, m.report_capacity);
  compress::put_varint(p, m.query_cache_bytes);
  return p;
}

std::vector<std::uint8_t> encode(const error_msg& m) {
  std::vector<std::uint8_t> p;
  compress::put_varint(p, m.stream_id);
  compress::put_varint(p, static_cast<std::uint32_t>(m.code));
  put_string(p, m.message);
  return p;
}

std::vector<std::uint8_t> encode_trace_data(
    std::uint64_t stream_id, std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> p;
  compress::put_varint(p, stream_id);
  p.insert(p.end(), bytes.begin(), bytes.end());
  return p;
}

std::vector<std::uint8_t> encode_stream_close(std::uint64_t stream_id) {
  std::vector<std::uint8_t> p;
  compress::put_varint(p, stream_id);
  return p;
}

// -------------------------------------------------------------- decoders --

hello_msg decode_hello(std::span<const std::uint8_t> p) {
  std::size_t pos = 0;
  hello_msg m;
  m.version = static_cast<std::uint32_t>(get_field(p, pos, "version"));
  expect_consumed(p, pos, "hello");
  return m;
}

hello_ok_msg decode_hello_ok(std::span<const std::uint8_t> p) {
  std::size_t pos = 0;
  hello_ok_msg m;
  m.version = static_cast<std::uint32_t>(get_field(p, pos, "version"));
  m.default_budget = get_field(p, pos, "default budget");
  m.max_data_chunk = get_field(p, pos, "max data chunk");
  expect_consumed(p, pos, "hello_ok");
  return m;
}

stream_open_msg decode_stream_open(std::span<const std::uint8_t> p) {
  std::size_t pos = 0;
  stream_open_msg m;
  m.stream_id = get_field(p, pos, "stream id");
  m.backend = get_string(p, pos, "backend");
  m.store = get_string(p, pos, "store");
  m.budget = get_field(p, pos, "budget");
  expect_consumed(p, pos, "stream_open");
  return m;
}

std::uint64_t decode_trace_data(std::span<const std::uint8_t> p,
                                std::span<const std::uint8_t>& bytes) {
  std::size_t pos = 0;
  const std::uint64_t id = get_field(p, pos, "stream id");
  bytes = p.subspan(pos);
  return id;
}

std::uint64_t decode_stream_close(std::span<const std::uint8_t> p) {
  std::size_t pos = 0;
  const std::uint64_t id = get_field(p, pos, "stream id");
  expect_consumed(p, pos, "stream_close");
  return id;
}

race_msg decode_race(std::span<const std::uint8_t> p) {
  std::size_t pos = 0;
  race_msg m;
  m.stream_id = get_field(p, pos, "stream id");
  m.granule_addr = get_field(p, pos, "granule");
  m.prior = static_cast<std::uint32_t>(get_field(p, pos, "prior strand"));
  m.prior_is_write =
      static_cast<std::uint8_t>(get_field(p, pos, "prior kind") != 0);
  m.current = static_cast<std::uint32_t>(get_field(p, pos, "current strand"));
  m.current_is_write =
      static_cast<std::uint8_t>(get_field(p, pos, "current kind") != 0);
  expect_consumed(p, pos, "race");
  return m;
}

stream_done_msg decode_stream_done(std::span<const std::uint8_t> p) {
  std::size_t pos = 0;
  stream_done_msg m;
  m.stream_id = get_field(p, pos, "stream id");
  m.granule = static_cast<std::uint32_t>(get_field(p, pos, "granule"));
  m.events = get_field(p, pos, "events");
  m.accesses = get_field(p, pos, "accesses");
  m.gets = get_field(p, pos, "gets");
  m.violations = get_field(p, pos, "violations");
  m.races_total = get_field(p, pos, "races total");
  const std::uint64_t n = get_field(p, pos, "racy count");
  // Each racy granule is at least one payload byte: a count the payload
  // cannot hold is a lie, not an allocation request.
  if (n > p.size() - pos) {
    throw protocol_error("malformed frame: racy granule count " +
                         std::to_string(n) + " exceeds the payload");
  }
  m.racy_granules.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    m.racy_granules.push_back(get_field(p, pos, "racy granule"));
  }
  m.store_bytes = get_field(p, pos, "store bytes");
  m.store_pages = get_field(p, pos, "store pages");
  m.report_retained = get_field(p, pos, "report retained");
  m.report_capacity = get_field(p, pos, "report capacity");
  m.query_cache_bytes = get_field(p, pos, "query cache bytes");
  expect_consumed(p, pos, "stream_done");
  return m;
}

error_msg decode_error_msg(std::span<const std::uint8_t> p) {
  std::size_t pos = 0;
  error_msg m;
  m.stream_id = get_field(p, pos, "stream id");
  const std::uint64_t code = get_field(p, pos, "error code");
  if (code < 1 || code > static_cast<std::uint64_t>(error_code::shutting_down)) {
    throw protocol_error("malformed frame: unknown error code " +
                         std::to_string(code));
  }
  m.code = static_cast<error_code>(code);
  m.message = get_string(p, pos, "message");
  expect_consumed(p, pos, "error");
  return m;
}

// ---------------------------------------------------------------- framing --

namespace {

// EINTR-safe full read; returns bytes read (< n only at EOF).
std::size_t read_full(int fd, void* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, static_cast<char*>(buf) + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw io_error(std::string("socket read failed: ") + std::strerror(errno));
    }
    if (r == 0) break;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return got;
}

void write_full(int fd, const void* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE here, not kill the
    // daemon with SIGPIPE mid-way through another stream's replay.
    const ssize_t r = ::send(fd, static_cast<const char*>(buf) + sent,
                             n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw io_error(std::string("socket write failed: ") +
                     std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

}  // namespace

bool frame_io::read_frame(frame& f) {
  std::uint8_t len_bytes[4];
  const std::size_t got = read_full(fd_, len_bytes, sizeof(len_bytes));
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof(len_bytes)) {
    throw io_error("connection closed mid-frame (truncated length prefix)");
  }
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | len_bytes[i];
  if (len == 0) throw protocol_error("malformed frame: zero-length body");
  if (len > kMaxFrameBody) {
    throw protocol_error("malformed frame: body of " + std::to_string(len) +
                         " bytes exceeds the " +
                         std::to_string(kMaxFrameBody) + "-byte limit");
  }
  std::uint8_t type = 0;
  if (read_full(fd_, &type, 1) != 1) {
    throw io_error("connection closed mid-frame (missing type byte)");
  }
  if (type < static_cast<std::uint8_t>(frame_type::hello) ||
      type > static_cast<std::uint8_t>(frame_type::shutdown_ok)) {
    throw protocol_error("malformed frame: unknown frame type " +
                         std::to_string(type));
  }
  f.type = static_cast<frame_type>(type);
  f.payload.resize(len - 1);
  if (read_full(fd_, f.payload.data(), f.payload.size()) != f.payload.size()) {
    throw io_error("connection closed mid-frame (truncated payload)");
  }
  return true;
}

void frame_io::write_frame(frame_type t, std::span<const std::uint8_t> payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size() + 1);
  std::uint8_t head[5];
  for (int i = 0; i < 4; ++i)
    head[i] = static_cast<std::uint8_t>(len >> (8 * i));
  head[4] = static_cast<std::uint8_t>(t);
  write_full(fd_, head, sizeof(head));
  if (!payload.empty()) write_full(fd_, payload.data(), payload.size());
}

}  // namespace frd::serve
