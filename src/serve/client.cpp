#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

namespace frd::serve {

namespace {

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw io_error("serve: bad socket path '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw io_error(std::string("serve: socket() failed: ") +
                   std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw io_error("serve: cannot connect to '" + path +
                   "': " + std::strerror(err) +
                   " (is frd-serve running there?)");
  }
  return fd;
}

}  // namespace

client::client(const std::string& socket_path)
    : fd_(connect_unix(socket_path)), io_(fd_) {
  try {
    io_.write_frame(frame_type::hello, encode(hello_msg{}));
    frame f;
    if (!io_.read_frame(f)) {
      throw io_error("serve: daemon closed the connection during handshake");
    }
    if (f.type == frame_type::error) {
      const error_msg e = decode_error_msg(f.payload);
      throw protocol_error("serve: daemon refused the connection (" +
                           std::string(to_string(e.code)) + "): " + e.message);
    }
    if (f.type != frame_type::hello_ok) {
      throw protocol_error("serve: expected hello_ok, got frame type " +
                           std::to_string(static_cast<int>(f.type)));
    }
    const hello_ok_msg ok = decode_hello_ok(f.payload);
    default_budget_ = ok.default_budget;
    if (ok.max_data_chunk != 0) max_data_chunk_ = ok.max_data_chunk;
  } catch (...) {
    ::close(fd_);
    throw;
  }
}

client::~client() {
  if (fd_ >= 0) ::close(fd_);
}

submit_result client::submit(std::span<const std::uint8_t> trace_bytes,
                             const submit_options& opt) {
  const std::uint64_t id = next_stream_id_++;
  stream_open_msg open;
  open.stream_id = id;
  open.backend = opt.backend;
  open.store = opt.store;
  open.budget = opt.budget;
  io_.write_frame(frame_type::stream_open, encode(open));
  for (std::size_t off = 0; off < trace_bytes.size();) {
    const std::size_t n = std::min(max_data_chunk_ - 16, trace_bytes.size() - off);
    io_.write_frame(frame_type::trace_data,
                    encode_trace_data(id, trace_bytes.subspan(off, n)));
    off += n;
  }
  if (trace_bytes.empty()) {
    // An empty trace is still a stream: open + close, zero data frames.
    io_.write_frame(frame_type::trace_data, encode_trace_data(id, {}));
  }
  io_.write_frame(frame_type::stream_close, encode_stream_close(id));

  submit_result r;
  frame f;
  for (;;) {
    if (!io_.read_frame(f)) {
      throw io_error("serve: daemon closed the connection before answering "
                     "stream " + std::to_string(id));
    }
    switch (f.type) {
      case frame_type::race: {
        race_msg m = decode_race(f.payload);
        if (m.stream_id == id) r.races.push_back(m);
        break;  // another stream's frame on a shared connection: not ours
      }
      case frame_type::stream_done: {
        const stream_done_msg d = decode_stream_done(f.payload);
        if (d.stream_id != id) break;
        r.ok = true;
        r.golden.granule = d.granule;
        r.golden.events = d.events;
        r.golden.accesses = d.accesses;
        r.golden.gets = d.gets;
        r.golden.violations = d.violations;
        r.golden.racy_granules.insert(d.racy_granules.begin(),
                                      d.racy_granules.end());
        r.races_total = d.races_total;
        r.store_bytes = d.store_bytes;
        r.store_pages = d.store_pages;
        r.report_retained = d.report_retained;
        r.report_capacity = d.report_capacity;
        r.query_cache_bytes = d.query_cache_bytes;
        return r;
      }
      case frame_type::error: {
        const error_msg e = decode_error_msg(f.payload);
        if (e.stream_id != id && e.stream_id != 0) break;
        r.ok = false;
        r.code = e.code;
        r.error = e.message;
        if (e.stream_id == 0) {
          // Connection-level refusal: nothing further will arrive.
          throw protocol_error("serve: connection refused (" +
                               std::string(to_string(e.code)) +
                               "): " + e.message);
        }
        return r;
      }
      default:
        throw protocol_error("serve: unexpected frame type " +
                             std::to_string(static_cast<int>(f.type)) +
                             " while waiting on stream " + std::to_string(id));
    }
  }
}

submit_result client::submit_file(const std::string& path,
                                  const submit_options& opt) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("serve: cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return submit(bytes, opt);
}

void client::shutdown_server() {
  io_.write_frame(frame_type::shutdown, {});
  frame f;
  while (io_.read_frame(f)) {
    if (f.type == frame_type::shutdown_ok) return;
    // Frames already in flight for other streams may land first; skip them.
  }
  throw io_error("serve: daemon closed the connection before shutdown_ok");
}

}  // namespace frd::serve
