// frd-serve wire protocol: framed, versioned trace ingest over a stream
// socket.
//
// Everything on the wire is a FRAME: a u32 little-endian length, then that
// many bytes — one frame_type byte followed by a type-specific payload
// (LEB128 varints from compress::put_varint; strings are varint length +
// bytes). Length-prefixed framing is what makes every failure mode
// diagnosable: a truncated frame, an oversized length, or an unknown type
// each names itself instead of desynchronizing the stream.
//
// Conversation shape (client C, server S):
//
//   C: hello {protocol version}
//   S: hello_ok {version, default budget, max data payload}
//   C: stream_open  {stream id, backend, store, budget}     (id: nonzero,
//   C: trace_data   {stream id, raw trace bytes}*            client-chosen,
//   C: stream_close {stream id}                              per-connection)
//   S: race         {stream id, granule, strands, kinds}*    (encounter order)
//   S: stream_done  {stream id, totals, racy set, memory stats}
//   S: error        {stream id, code, message}               (instead of done)
//
// One connection multiplexes any number of streams: opens/data/closes may
// interleave, and the server's race/done/error frames for different streams
// interleave too — frames are atomic, streams are independent. stream id 0
// in an error frame means the CONNECTION is being refused (bad hello,
// unparseable frame); any other id scopes the failure to that one stream,
// and the daemon keeps serving the rest. `shutdown` asks the daemon to stop
// (acknowledged with shutdown_ok, then the listener closes).
//
// The trace bytes inside trace_data are opaque to the protocol: the server
// sniffs .frdt / .frdtz / JSONL exactly like `frd-trace run` does.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace frd::serve {

inline constexpr std::uint32_t kProtocolVersion = 1;
// Upper bound on one frame's body (type byte + payload). Big enough that a
// client can ship a trace in few frames, small enough that a hostile length
// prefix cannot make the server allocate unbounded memory before reading a
// single payload byte.
inline constexpr std::size_t kMaxFrameBody = (4u << 20) + 64;
// What a well-behaved client should cap one trace_data payload at.
inline constexpr std::size_t kMaxDataChunk = 4u << 20;

enum class frame_type : std::uint8_t {
  hello = 1,
  hello_ok = 2,
  stream_open = 3,
  trace_data = 4,
  stream_close = 5,
  race = 6,
  stream_done = 7,
  error = 8,
  shutdown = 9,
  shutdown_ok = 10,
};

enum class error_code : std::uint32_t {
  bad_frame = 1,        // malformed frame or payload, unknown/duplicate stream
  version_skew = 2,     // hello protocol version this build does not speak
  bad_trace = 3,        // the submitted bytes are not a readable trace
  budget_exceeded = 4,  // the stream's memory budget was exhausted
  backend_error = 5,    // unknown backend/store name, capability violation
  internal = 6,         // unexpected server-side failure
  shutting_down = 7,    // daemon is stopping; stream not accepted
};

std::string_view to_string(error_code c);

// Malformed payload or framing (decode side). I/O failures are io_error.
class protocol_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Socket read/write failure: connection gone, short read mid-frame, etc.
class io_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct frame {
  frame_type type = frame_type::error;
  std::vector<std::uint8_t> payload;
};

// ------------------------------------------------------- typed payloads --

struct hello_msg {
  std::uint32_t version = kProtocolVersion;
};

struct hello_ok_msg {
  std::uint32_t version = kProtocolVersion;
  std::uint64_t default_budget = 0;  // bytes; 0 = unlimited
  std::uint64_t max_data_chunk = kMaxDataChunk;
};

struct stream_open_msg {
  std::uint64_t stream_id = 0;  // nonzero, client-chosen
  std::string backend;
  std::string store;
  // Per-stream budget request in bytes; 0 = server default. The server
  // grants min(request, default) — a client may lower its budget, not raise.
  std::uint64_t budget = 0;
};

struct race_msg {
  std::uint64_t stream_id = 0;
  std::uint64_t granule_addr = 0;
  std::uint32_t prior = 0;
  std::uint8_t prior_is_write = 0;
  std::uint32_t current = 0;
  std::uint8_t current_is_write = 0;
};

struct stream_done_msg {
  std::uint64_t stream_id = 0;
  std::uint32_t granule = 4;
  std::uint64_t events = 0;
  std::uint64_t accesses = 0;
  std::uint64_t gets = 0;
  std::uint64_t violations = 0;
  std::uint64_t races_total = 0;
  std::vector<std::uint64_t> racy_granules;  // ascending
  // session::memory_stats at completion — what the budget was held against.
  std::uint64_t store_bytes = 0;
  std::uint64_t store_pages = 0;
  std::uint64_t report_retained = 0;
  std::uint64_t report_capacity = 0;
  std::uint64_t query_cache_bytes = 0;
};

struct error_msg {
  std::uint64_t stream_id = 0;  // 0 = connection-level
  error_code code = error_code::internal;
  std::string message;
};

// Encoders produce the frame payload (no length prefix, no type byte);
// decoders parse one and throw protocol_error naming the defect.
std::vector<std::uint8_t> encode(const hello_msg& m);
std::vector<std::uint8_t> encode(const hello_ok_msg& m);
std::vector<std::uint8_t> encode(const stream_open_msg& m);
std::vector<std::uint8_t> encode(const race_msg& m);
std::vector<std::uint8_t> encode(const stream_done_msg& m);
std::vector<std::uint8_t> encode(const error_msg& m);
// trace_data / stream_close payloads are trivial enough to build inline:
std::vector<std::uint8_t> encode_trace_data(std::uint64_t stream_id,
                                            std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> encode_stream_close(std::uint64_t stream_id);

hello_msg decode_hello(std::span<const std::uint8_t> p);
hello_ok_msg decode_hello_ok(std::span<const std::uint8_t> p);
stream_open_msg decode_stream_open(std::span<const std::uint8_t> p);
// Returns the stream id; `bytes` is set to the trailing trace byte view.
std::uint64_t decode_trace_data(std::span<const std::uint8_t> p,
                                std::span<const std::uint8_t>& bytes);
std::uint64_t decode_stream_close(std::span<const std::uint8_t> p);
race_msg decode_race(std::span<const std::uint8_t> p);
stream_done_msg decode_stream_done(std::span<const std::uint8_t> p);
error_msg decode_error_msg(std::span<const std::uint8_t> p);

// --------------------------------------------------------- framed socket --

// Blocking framed I/O over one socket fd. Reads and writes are separately
// whole-frame atomic; the fd is NOT owned (the connection owner closes it).
// Concurrent writers must serialize externally (the server holds a
// per-connection write mutex) — reads have a single owner by construction.
class frame_io {
 public:
  explicit frame_io(int fd) : fd_(fd) {}

  // False on clean EOF at a frame boundary. Throws io_error on a connection
  // failure or EOF mid-frame, protocol_error on an oversized/undersized
  // length prefix or unknown frame type.
  bool read_frame(frame& f);
  // Throws io_error when the peer is gone (EPIPE/ECONNRESET — writes use
  // MSG_NOSIGNAL, so a dead peer is an exception, never a SIGPIPE).
  void write_frame(frame_type t, std::span<const std::uint8_t> payload);

 private:
  int fd_;
};

}  // namespace frd::serve
