#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "api/session.hpp"
#include "detect/registry.hpp"
#include "shadow/store.hpp"
#include "support/memstream.hpp"
#include "trace/codec.hpp"

namespace frd::serve {

namespace {

// Budget overruns abort the replay from inside a checkpoint callback; this
// private type keeps them distinguishable from every other failure on the
// way to the one catch block that maps exceptions to error codes.
class budget_exceeded_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// A client that vanished mid-replay: abort, but charge it to the connection
// (no error frame — there is nobody to read it).
class client_gone_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

int make_listen_socket(const std::string& path) {
  if (path.empty()) throw io_error("serve: socket path must not be empty");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw io_error("serve: socket path '" + path + "' exceeds the " +
                   std::to_string(sizeof(addr.sun_path) - 1) +
                   "-byte AF_UNIX limit");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw io_error(std::string("serve: socket() failed: ") +
                   std::strerror(errno));
  }
  // A stale socket file from a dead daemon would make bind fail forever;
  // unlink first. A LIVE daemon on the same path loses its socket — same
  // contract as every unix-socket service that owns its path.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw io_error("serve: bind('" + path + "') failed: " +
                   std::strerror(err));
  }
  if (::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw io_error(std::string("serve: listen() failed: ") +
                   std::strerror(err));
  }
  return fd;
}

}  // namespace

server::connection::~connection() {
  if (fd >= 0) ::close(fd);
}

server::server(server_options opt) : opt_(std::move(opt)) {
  if (opt_.workers == 0) opt_.workers = 1;
}

server::~server() {
  try {
    stop();
  } catch (...) {
    // Destructors must not throw; stop() failures mean fds already gone.
  }
}

void server::start() {
  listen_fd_ = make_listen_socket(opt_.socket_path);
  started_ = true;
  for (unsigned i = 0; i < opt_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void server::wait() {
  std::unique_lock<std::mutex> lk(stop_mu_);
  stop_cv_.wait(lk, [this] { return stopping_.load(); });
}

void server::request_stop() {
  if (stopping_.exchange(true)) return;
  // Wake the acceptor: shutdown() unblocks a blocked accept() without
  // freeing the fd number (close() happens in stop(), after the join).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
  std::lock_guard<std::mutex> lk(stop_mu_);
  stop_cv_.notify_all();
}

void server::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  request_stop();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Workers drain the queue before exiting (accepted work completes), then
  // connections are forced closed to unblock their readers.
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // A job enqueued in the narrow window after the workers drained would
  // otherwise strand its client waiting for a done frame.
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    for (job& j : queue_) {
      try {
        send_error(*j.conn, j.stream_id, error_code::shutting_down,
                   "daemon stopped before this stream was replayed");
      } catch (const io_error&) {
      }
    }
    queue_.clear();
  }
  std::vector<conn_ptr> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    conns = conns_;
  }
  for (const conn_ptr& c : conns) {
    c->dead.store(true);
    ::shutdown(c->fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  {
    // Dropping the registry references lets ~connection close each fd once
    // the last in-flight job releases its shared_ptr.
    std::lock_guard<std::mutex> lk(conn_mu_);
    conns_.clear();
  }
  ::unlink(opt_.socket_path.c_str());
}

server_stats server::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

// ------------------------------------------------------------- accepting --

void server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or broken): stop accepting
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<connection>(fd);
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      conns_.push_back(conn);
      conn_threads_.emplace_back(
          [this, conn] { connection_loop(conn); });
    }
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.connections;
    }
  }
}

void server::send_frame(connection& c, frame_type t,
                        std::span<const std::uint8_t> payload) {
  if (c.dead.load()) throw io_error("connection already closed");
  std::lock_guard<std::mutex> lk(c.write_mu);
  try {
    c.io.write_frame(t, payload);
  } catch (const io_error&) {
    c.dead.store(true);
    throw;
  }
}

void server::send_error(connection& c, std::uint64_t stream_id,
                        error_code code, const std::string& message) {
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.streams_failed;
  }
  error_msg m;
  m.stream_id = stream_id;
  m.code = code;
  m.message = message;
  send_frame(c, frame_type::error, encode(m));
}

// ----------------------------------------------------- connection reader --

void server::connection_loop(conn_ptr conn) {
  struct open_stream {
    std::string backend;
    std::string store;
    std::uint64_t budget = 0;
    std::vector<std::uint8_t> bytes;
  };
  std::unordered_map<std::uint64_t, open_stream> open;
  // Streams already failed on this connection: later frames for them are
  // dropped silently instead of cascading one failure into many.
  std::unordered_set<std::uint64_t> failed;

  const auto fail_stream = [&](std::uint64_t id, error_code code,
                               const std::string& msg) {
    open.erase(id);
    failed.insert(id);
    send_error(*conn, id, code, msg);
  };

  try {
    frame f;
    // Handshake: the first frame must be a matching hello. Refusals are
    // connection-level (stream id 0) and final.
    if (!conn->io.read_frame(f)) return;
    if (f.type != frame_type::hello) {
      send_error(*conn, 0, error_code::bad_frame,
                 "expected hello as the first frame");
      return;
    }
    const hello_msg h = decode_hello(f.payload);
    if (h.version != kProtocolVersion) {
      send_error(*conn, 0, error_code::version_skew,
                 "client speaks protocol version " + std::to_string(h.version) +
                     "; this daemon speaks " + std::to_string(kProtocolVersion));
      return;
    }
    hello_ok_msg ok;
    ok.default_budget = opt_.default_budget;
    send_frame(*conn, frame_type::hello_ok, encode(ok));

    while (conn->io.read_frame(f)) {
      switch (f.type) {
        case frame_type::stream_open: {
          const stream_open_msg m = decode_stream_open(f.payload);
          if (m.stream_id == 0) {
            send_error(*conn, 0, error_code::bad_frame,
                       "stream id 0 is reserved for connection-level errors");
            break;
          }
          if (stopping_.load()) {
            fail_stream(m.stream_id, error_code::shutting_down,
                        "daemon is shutting down");
            break;
          }
          if (open.count(m.stream_id)) {
            fail_stream(m.stream_id, error_code::bad_frame,
                        "stream id " + std::to_string(m.stream_id) +
                            " is already open on this connection");
            break;
          }
          // Fail unknown names at open time, before any trace bytes ship.
          if (detect::backend_registry::instance().find(m.backend) == nullptr) {
            fail_stream(m.stream_id, error_code::backend_error,
                        "unknown backend '" + m.backend + "'");
            break;
          }
          if (shadow::store_registry::instance().find(m.store) == nullptr) {
            fail_stream(m.stream_id, error_code::backend_error,
                        "unknown shadow store '" + m.store + "'");
            break;
          }
          open_stream st;
          st.backend = m.backend;
          st.store = m.store;
          // min(request, server default): a client lowers its grant, never
          // raises it past the operator's limit.
          if (opt_.default_budget == 0) {
            st.budget = m.budget;
          } else if (m.budget == 0) {
            st.budget = opt_.default_budget;
          } else {
            st.budget = std::min(m.budget, opt_.default_budget);
          }
          failed.erase(m.stream_id);  // the id is reusable after a failure
          open.emplace(m.stream_id, std::move(st));
          break;
        }
        case frame_type::trace_data: {
          std::span<const std::uint8_t> bytes;
          const std::uint64_t id = decode_trace_data(f.payload, bytes);
          const auto it = open.find(id);
          if (it == open.end()) {
            if (!failed.count(id)) {
              fail_stream(id, error_code::bad_frame,
                          "trace data for a stream that is not open");
            }
            break;  // tombstoned: drain silently, the error already went out
          }
          open_stream& st = it->second;
          st.bytes.insert(st.bytes.end(), bytes.begin(), bytes.end());
          if (st.budget != 0 && st.bytes.size() > st.budget) {
            fail_stream(id, error_code::budget_exceeded,
                        "buffered " + std::to_string(st.bytes.size()) +
                            " trace bytes against a " +
                            std::to_string(st.budget) + "-byte budget");
          }
          break;
        }
        case frame_type::stream_close: {
          const std::uint64_t id = decode_stream_close(f.payload);
          const auto it = open.find(id);
          if (it == open.end()) {
            if (!failed.count(id)) {
              fail_stream(id, error_code::bad_frame,
                          "close for a stream that is not open");
            }
            break;
          }
          if (stopping_.load()) {
            // Workers may already be draining toward exit; refusing here
            // beats enqueueing a job nobody will pop.
            fail_stream(id, error_code::shutting_down,
                        "daemon is shutting down");
            break;
          }
          job j;
          j.conn = conn;
          j.stream_id = id;
          j.backend = std::move(it->second.backend);
          j.store = std::move(it->second.store);
          j.budget = it->second.budget;
          j.bytes = std::move(it->second.bytes);
          open.erase(it);
          {
            std::lock_guard<std::mutex> lk(queue_mu_);
            queue_.push_back(std::move(j));
          }
          queue_cv_.notify_one();
          break;
        }
        case frame_type::shutdown: {
          send_frame(*conn, frame_type::shutdown_ok, {});
          request_stop();
          break;  // keep draining; the client closes when it is done
        }
        default:
          // hello twice, or a server->client type: the peer is confused —
          // that is a connection-level protocol failure.
          send_error(*conn, 0, error_code::bad_frame,
                     "unexpected frame type " +
                         std::to_string(static_cast<int>(f.type)));
          conn->dead.store(true);
          ::shutdown(conn->fd, SHUT_RDWR);
          break;
      }
      if (conn->dead.load()) break;
    }
  } catch (const protocol_error& e) {
    // An unparseable frame desynchronizes everything after it: refuse the
    // connection (best effort — the peer may already be gone).
    try {
      send_error(*conn, 0, error_code::bad_frame, e.what());
    } catch (const io_error&) {
    }
  } catch (const io_error&) {
    // Mid-stream disconnect: every open stream on this connection dies with
    // it; queued/running jobs notice through their write failures.
  }
  conn->dead.store(true);
  ::shutdown(conn->fd, SHUT_RDWR);
  // Drop the registry entry; the fd closes when the last job lets go.
  std::lock_guard<std::mutex> lk(conn_mu_);
  for (auto it = conns_.begin(); it != conns_.end(); ++it) {
    if (it->get() == conn.get()) {
      conns_.erase(it);
      break;
    }
  }
}

// --------------------------------------------------------------- workers --

void server::worker_loop() {
  // The worker's recycled session: reused via reset() while consecutive
  // streams agree on (backend, store, granule), rebuilt otherwise.
  struct cached_session {
    std::string backend;
    std::string store;
    std::uint32_t granule = 0;
    unsigned workers = 1;
    std::unique_ptr<session> s;
  } cache;

  for (;;) {
    job j;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk,
                     [this] { return stopping_.load() || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_.load()) return;  // drained and stopping
        continue;
      }
      j = std::move(queue_.front());
      queue_.pop_front();
    }

    try {
      imemstream in(j.bytes);
      auto src = trace::open_source(in);
      const std::uint32_t granule = src->header().granule;

      // Parallel detection only where the partition exists: a stream on an
      // unsharded store replays serially no matter the daemon-wide setting.
      const unsigned det_workers =
          (opt_.detect_workers > 1 &&
           shadow::store_registry::instance().at(j.store).sharded)
              ? opt_.detect_workers
              : 1;

      if (cache.s == nullptr || cache.backend != j.backend ||
          cache.store != j.store || cache.granule != granule ||
          cache.workers != det_workers) {
        cache.s = nullptr;  // release the old one before building anew
        cache.s = std::make_unique<session>(session::options{
            .backend = j.backend,
            .granule = granule,
            .shadow_store = j.store,
            .replay_batch = opt_.replay_batch,
            .detect_workers = det_workers,
            // Daemon-wide constants, so they need no cache-key entry: every
            // pooled session is built with the same sampling configuration.
            .sample_rate = opt_.sample_rate,
            .sample_seed = opt_.sample_seed,
            .shadow_history_depth = opt_.history_depth});
        cache.backend = j.backend;
        cache.store = j.store;
        cache.granule = granule;
        cache.workers = det_workers;
      }
      session& s = *cache.s;

      s.set_race_sink([this, &j](const detect::race& r) {
        race_msg m;
        m.stream_id = j.stream_id;
        m.granule_addr = r.granule_addr;
        m.prior = r.prior;
        m.prior_is_write = r.prior_kind == detect::access_kind::write;
        m.current = r.current;
        m.current_is_write = r.current_kind == detect::access_kind::write;
        send_frame(*j.conn, frame_type::race, encode(m));
      });

      const auto check_budget = [&j, &s] {
        if (j.budget == 0) return;
        // Charge the run's PEAK footprint, not the instantaneous snapshot:
        // a spike between checkpoints must not escape the grant.
        const std::uint64_t used =
            s.memory_stats().peak_total_bytes + j.bytes.size();
        if (used > j.budget) {
          throw budget_exceeded_error(
              "detector state peaked at " + std::to_string(used) +
              " bytes (buffered trace + shadow + query cache high-water "
              "mark) against a " +
              std::to_string(j.budget) + "-byte budget");
        }
      };

      session::replay_checkpoint cp;
      cp.every_events = opt_.checkpoint_events;
      cp.fn = [this, &j, &check_budget](std::uint64_t, std::uint64_t) {
        if (j.conn->dead.load() || stopping_.load()) {
          throw client_gone_error("client disconnected mid-replay");
        }
        check_budget();
      };

      const std::uint64_t events = s.replay(*src, cp);
      // Traces shorter than one checkpoint interval still get held to their
      // grant: the final state is what a keep-resident tenant would pin.
      check_budget();

      stream_done_msg d;
      d.stream_id = j.stream_id;
      d.granule = granule;
      d.events = events;
      d.accesses = s.access_count();
      d.gets = s.get_count();
      d.violations = s.structured_violations();
      d.races_total = s.report().total();
      d.racy_granules.assign(s.report().racy_granules().begin(),
                             s.report().racy_granules().end());
      const detect::memory_stats mem = s.memory_stats();
      d.store_bytes = mem.store_bytes;
      d.store_pages = mem.store_pages;
      d.report_retained = mem.report_retained;
      d.report_capacity = mem.report_capacity;
      d.query_cache_bytes = mem.query_cache_bytes;
      send_frame(*j.conn, frame_type::stream_done, encode(d));
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.streams_completed;
      }
    } catch (const io_error&) {
      // The client is gone: nothing to report, nobody to report it to.
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.streams_failed;
    } catch (const client_gone_error&) {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.streams_failed;
    } catch (const budget_exceeded_error& e) {
      try {
        send_error(*j.conn, j.stream_id, error_code::budget_exceeded, e.what());
      } catch (const io_error&) {
      }
    } catch (const trace::trace_error& e) {
      try {
        send_error(*j.conn, j.stream_id, error_code::bad_trace, e.what());
      } catch (const io_error&) {
      }
    } catch (const detect::backend_error& e) {  // includes capability_error
      try {
        send_error(*j.conn, j.stream_id, error_code::backend_error, e.what());
      } catch (const io_error&) {
      }
    } catch (const shadow::store_error& e) {
      try {
        send_error(*j.conn, j.stream_id, error_code::backend_error, e.what());
      } catch (const io_error&) {
      }
    } catch (const std::exception& e) {
      try {
        send_error(*j.conn, j.stream_id, error_code::internal, e.what());
      } catch (const io_error&) {
      }
    }

    // Whatever happened, the session must be pristine before the next
    // stream; if even reset() fails, drop the instance rather than risk
    // state bleeding across tenants.
    if (cache.s != nullptr) {
      try {
        cache.s->reset();
      } catch (...) {
        cache.s = nullptr;
      }
    }
  }
}

}  // namespace frd::serve
