// serve::client — the frd-serve protocol's client side.
//
// One client = one connection (hello handshake in the constructor) that can
// submit any number of trace streams sequentially. submit() ships the trace
// bytes (auto-detected .frdt / .frdtz / JSONL — the bytes are opaque to the
// protocol), then collects the server's race frames (encounter order) and
// the stream_done summary into a submit_result whose golden_report is
// byte-identical, through corpus::write_golden, to what an offline
// `frd-trace run` of the same trace produces. `frd-trace submit` and the
// serve tests are both this class; concurrency comes from running N clients
// on N connections (or threads), not from sharing one client.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "corpus/golden.hpp"
#include "serve/protocol.hpp"

namespace frd::serve {

struct submit_options {
  std::string backend = "multibags+";
  std::string store = "hashed-page";
  std::uint64_t budget = 0;  // bytes; 0 = accept the server default
};

struct submit_result {
  bool ok = false;
  // Failure detail when !ok (the server's error frame for this stream).
  error_code code = error_code::internal;
  std::string error;
  // The replay summary, shaped as the corpus oracle so callers can
  // write_golden() it and diff against checked-in goldens.
  corpus::golden_report golden;
  std::uint64_t races_total = 0;
  std::vector<race_msg> races;  // streamed, encounter order
  // Server-side session memory at completion (stream_done).
  std::uint64_t store_bytes = 0;
  std::uint64_t store_pages = 0;
  std::uint64_t report_retained = 0;
  std::uint64_t report_capacity = 0;
  std::uint64_t query_cache_bytes = 0;
};

class client {
 public:
  // Connects and completes the hello handshake; throws io_error when the
  // daemon is unreachable, protocol_error on a version-skewed or confused
  // server.
  explicit client(const std::string& socket_path);
  ~client();
  client(const client&) = delete;
  client& operator=(const client&) = delete;

  // Ships one trace and blocks until its done/error frame. Throws io_error
  // if the connection dies, protocol_error on malformed server frames;
  // server-side stream failures come back as !result.ok, not exceptions.
  submit_result submit(std::span<const std::uint8_t> trace_bytes,
                       const submit_options& opt = {});
  // Convenience: reads `path` (throws io_error when unreadable) and submits.
  submit_result submit_file(const std::string& path,
                            const submit_options& opt = {});

  // Asks the daemon to stop; returns once shutdown_ok arrives.
  void shutdown_server();

  // From the hello_ok frame: the per-stream budget the server grants by
  // default (0 = unlimited).
  std::uint64_t server_default_budget() const { return default_budget_; }

  // The connected socket, for tests that speak raw frames past the
  // handshake (the client still owns and closes it).
  int native_handle() const { return fd_; }

 private:
  int fd_ = -1;
  frame_io io_;
  std::uint64_t next_stream_id_ = 1;
  std::uint64_t default_budget_ = 0;
  std::uint64_t max_data_chunk_ = kMaxDataChunk;
};

}  // namespace frd::serve
