// Content-defined chunking (the Rabin-fingerprint stage of PARSEC dedup).
//
// Gear-hash CDC: roll h = (h << 1) + gear[byte]; declare a cut point when
// the low `mask` bits vanish, subject to min/max chunk bounds. Identical
// content produces identical chunks regardless of alignment, which is what
// gives the dedup stage its hit rate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace frd::compress {

struct chunk_params {
  std::size_t min_size = 1 << 10;   // 1 KiB
  std::size_t target_size = 1 << 12;  // ~4 KiB average
  std::size_t max_size = 1 << 14;   // 16 KiB
};

struct chunk_ref {
  std::size_t offset;
  std::size_t size;
};

// Splits `data` into content-defined chunks covering it exactly.
std::vector<chunk_ref> chunk_bytes(std::span<const std::uint8_t> data,
                                   const chunk_params& params = {});

// Incremental form of the same cut decision, for producers that stream bytes
// instead of materializing them (the .frdtz container writer). Feeding any
// byte sequence through push() one call at a time — regardless of how the
// sequence is split across calls — yields exactly the cut points
// chunk_bytes() finds on the whole buffer; tests hold the two to each other.
class stream_chunker {
 public:
  explicit stream_chunker(const chunk_params& params = {});

  // Consumes one byte; returns true when a chunk boundary falls AFTER this
  // byte (the byte is the last of its chunk). State resets for the next
  // chunk automatically.
  bool push(std::uint8_t b) {
    hash_ = (hash_ << 1) + gear_[b];
    ++len_;
    const bool cut =
        (len_ >= params_.min_size && (hash_ & mask_) == 0) ||
        len_ >= params_.max_size;
    if (cut) {
      hash_ = 0;
      len_ = 0;
    }
    return cut;
  }

  // Bytes accumulated since the last cut (the open chunk's length so far).
  std::size_t pending() const { return len_; }
  const chunk_params& params() const { return params_; }

 private:
  chunk_params params_;
  std::uint64_t mask_;
  const std::uint64_t* gear_;
  std::uint64_t hash_ = 0;
  std::size_t len_ = 0;
};

// The gear table (exposed for tests: determinism across runs/platforms).
const std::uint64_t* gear_table();

}  // namespace frd::compress
