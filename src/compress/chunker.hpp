// Content-defined chunking (the Rabin-fingerprint stage of PARSEC dedup).
//
// Gear-hash CDC: roll h = (h << 1) + gear[byte]; declare a cut point when
// the low `mask` bits vanish, subject to min/max chunk bounds. Identical
// content produces identical chunks regardless of alignment, which is what
// gives the dedup stage its hit rate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace frd::compress {

struct chunk_params {
  std::size_t min_size = 1 << 10;   // 1 KiB
  std::size_t target_size = 1 << 12;  // ~4 KiB average
  std::size_t max_size = 1 << 14;   // 16 KiB
};

struct chunk_ref {
  std::size_t offset;
  std::size_t size;
};

// Splits `data` into content-defined chunks covering it exactly.
std::vector<chunk_ref> chunk_bytes(std::span<const std::uint8_t> data,
                                   const chunk_params& params = {});

// The gear table (exposed for tests: determinism across runs/platforms).
const std::uint64_t* gear_table();

}  // namespace frd::compress
