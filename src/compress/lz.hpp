// LZ77-style byte compressor (the zlib stand-in for the dedup pipeline).
//
// PARSEC's dedup compresses each unique chunk with zlib; the paper could not
// instrument that dynamic library, which made dedup the overhead outlier in
// Figures 6-7. Our compressor is templated on the instrumentation hook
// policy, so the benches can reproduce the paper's setup (uninstrumented
// compression, hooks::none) *and* run the counterfactual ablation the
// authors could not (hooks::active).
//
// Format (self-delimiting op stream):
//   0x00                         end of stream
//   0x01 <varint n> <n bytes>    literal run
//   0x02 <varint len> <varint d> match: copy `len` bytes from distance `d`
//
// Greedy matcher with a 4-byte hash head + bounded chain walk, 64 KiB
// window — dictionary-coder shaped like deflate, small enough to audit.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "support/check.hpp"

namespace frd::compress {

// Raised on malformed compressed input: truncated varints, unknown opcodes,
// out-of-window match distances, or output overrunning a declared bound.
// Decoding runs on UNTRUSTED bytes (container chunks pulled off disk), so
// corruption must surface as a catchable error the caller can diagnose —
// never as a check.hpp abort.
class decode_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Varint plumbing shared by the codec and its tests (LEB128, low 7 bits
// first).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
// Reads at `pos`, advances it; throws decode_error on truncation or a value
// overflowing 64 bits (corrupt stream).
std::uint64_t get_varint(std::span<const std::uint8_t> in, std::size_t& pos);

namespace detail {

constexpr std::size_t kWindow = 1u << 16;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxChain = 32;
constexpr std::size_t kHashBits = 15;

inline std::uint32_t hash4(std::uint32_t x) {
  return (x * 2654435761u) >> (32 - kHashBits);
}

}  // namespace detail

// Compresses `in`; every byte the matcher reads is announced through H
// (H::read on input bytes, H::write on output bytes).
template <typename H>
std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> in) {
  std::vector<std::uint8_t> out;
  out.reserve(in.size() / 2 + 16);

  std::vector<std::int64_t> head(std::size_t{1} << detail::kHashBits, -1);
  std::vector<std::int64_t> chain(in.size(), -1);

  std::size_t lit_start = 0;

  auto flush_literals = [&](std::size_t upto) {
    if (upto == lit_start) return;
    out.push_back(0x01);
    put_varint(out, upto - lit_start);
    for (std::size_t i = lit_start; i < upto; ++i) {
      H::read(&in[i], 1);
      out.push_back(in[i]);
      H::write(&out.back(), 1);
    }
  };

  auto load4 = [&](std::size_t i) {
    H::read(&in[i], 4);
    return static_cast<std::uint32_t>(in[i]) |
           (static_cast<std::uint32_t>(in[i + 1]) << 8) |
           (static_cast<std::uint32_t>(in[i + 2]) << 16) |
           (static_cast<std::uint32_t>(in[i + 3]) << 24);
  };

  std::size_t i = 0;
  while (i + detail::kMinMatch <= in.size()) {
    const std::uint32_t h = detail::hash4(load4(i));
    std::size_t best_len = 0, best_dist = 0;
    std::int64_t cand = head[h];
    for (std::size_t depth = 0;
         cand >= 0 && depth < detail::kMaxChain &&
         i - static_cast<std::size_t>(cand) <= detail::kWindow;
         ++depth) {
      const auto c = static_cast<std::size_t>(cand);
      std::size_t len = 0;
      while (i + len < in.size() && in[c + len] == in[i + len]) {
        H::read(&in[c + len], 1);
        H::read(&in[i + len], 1);
        ++len;
      }
      if (len > best_len) {
        best_len = len;
        best_dist = i - c;
      }
      cand = chain[c];
    }

    if (best_len >= detail::kMinMatch) {
      flush_literals(i);
      out.push_back(0x02);
      put_varint(out, best_len);
      put_varint(out, best_dist);
      // Index every position covered by the match so later data can refer
      // into it.
      const std::size_t end = i + best_len;
      while (i < end && i + detail::kMinMatch <= in.size()) {
        const std::uint32_t hh = detail::hash4(load4(i));
        chain[i] = head[hh];
        head[hh] = static_cast<std::int64_t>(i);
        ++i;
      }
      i = end;
      lit_start = i;
    } else {
      chain[i] = head[h];
      head[h] = static_cast<std::int64_t>(i);
      ++i;
    }
  }
  flush_literals(in.size());
  out.push_back(0x00);
  return out;
}

// Decompresses a stream produced by lz_compress; throws decode_error on a
// malformed stream. `max_output` bounds the produced bytes: a corrupt match
// length must not be able to balloon the output (the container passes each
// chunk's declared raw size; the default is effectively unbounded for
// trusted in-process streams like the dedup pipeline's).
std::vector<std::uint8_t> lz_decompress(std::span<const std::uint8_t> in,
                                        std::size_t max_output = SIZE_MAX);

}  // namespace frd::compress
