#include "compress/digest.hpp"

#include <cstring>

namespace frd::compress {

namespace {
inline std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}
}  // namespace

sha1_digest sha1(std::span<const std::uint8_t> data) {
  std::uint32_t h0 = 0x67452301, h1 = 0xEFCDAB89, h2 = 0x98BADCFE,
                h3 = 0x10325476, h4 = 0xC3D2E1F0;

  // Message with padding: 0x80, zeros, 64-bit big-endian bit length.
  const std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t padded = data.size() + 1;
  while (padded % 64 != 56) ++padded;
  padded += 8;

  auto byte_at = [&](std::size_t i) -> std::uint8_t {
    if (i < data.size()) return data[i];
    if (i == data.size()) return 0x80;
    if (i < padded - 8) return 0x00;
    const int shift = static_cast<int>(8 * (padded - 1 - i));
    return static_cast<std::uint8_t>(bit_len >> shift);
  };

  std::uint32_t w[80];
  for (std::size_t block = 0; block < padded; block += 64) {
    for (int t = 0; t < 16; ++t) {
      const std::size_t i = block + static_cast<std::size_t>(t) * 4;
      w[t] = (static_cast<std::uint32_t>(byte_at(i)) << 24) |
             (static_cast<std::uint32_t>(byte_at(i + 1)) << 16) |
             (static_cast<std::uint32_t>(byte_at(i + 2)) << 8) |
             static_cast<std::uint32_t>(byte_at(i + 3));
    }
    for (int t = 16; t < 80; ++t)
      w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);

    std::uint32_t a = h0, b = h1, c = h2, d = h3, e = h4;
    for (int t = 0; t < 80; ++t) {
      std::uint32_t f, k;
      if (t < 20) {
        f = (b & c) | ((~b) & d);
        k = 0x5A827999;
      } else if (t < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1;
      } else if (t < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDC;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6;
      }
      const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[t];
      e = d;
      d = c;
      c = rotl32(b, 30);
      b = a;
      a = tmp;
    }
    h0 += a;
    h1 += b;
    h2 += c;
    h3 += d;
    h4 += e;
  }

  sha1_digest out;
  const std::uint32_t hs[5] = {h0, h1, h2, h3, h4};
  for (int i = 0; i < 5; ++i) {
    out[i * 4 + 0] = static_cast<std::uint8_t>(hs[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(hs[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(hs[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(hs[i]);
  }
  return out;
}

std::string to_hex(const sha1_digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string s;
  s.reserve(40);
  for (std::uint8_t b : d) {
    s.push_back(kHex[b >> 4]);
    s.push_back(kHex[b & 0xf]);
  }
  return s;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t sha1_key64(const sha1_digest& d) {
  std::uint64_t k = 0;
  for (int i = 0; i < 8; ++i) k |= static_cast<std::uint64_t>(d[i]) << (8 * i);
  return k;
}

}  // namespace frd::compress
