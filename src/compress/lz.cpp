#include "compress/lz.hpp"

namespace frd::compress {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    FRD_CHECK_MSG(pos < in.size(), "truncated varint");
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    FRD_CHECK_MSG(shift < 64, "varint overflow");
  }
}

std::vector<std::uint8_t> lz_decompress(std::span<const std::uint8_t> in) {
  std::vector<std::uint8_t> out;
  std::size_t pos = 0;
  for (;;) {
    FRD_CHECK_MSG(pos < in.size(), "truncated stream");
    const std::uint8_t op = in[pos++];
    if (op == 0x00) return out;
    if (op == 0x01) {
      const std::uint64_t n = get_varint(in, pos);
      FRD_CHECK_MSG(pos + n <= in.size(), "literal run past end of stream");
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(pos),
                 in.begin() + static_cast<std::ptrdiff_t>(pos + n));
      pos += n;
      continue;
    }
    FRD_CHECK_MSG(op == 0x02, "unknown opcode");
    const std::uint64_t len = get_varint(in, pos);
    const std::uint64_t dist = get_varint(in, pos);
    FRD_CHECK_MSG(dist != 0 && dist <= out.size(), "match distance out of range");
    // Byte-by-byte on purpose: overlapping matches (dist < len) replicate.
    std::size_t src = out.size() - dist;
    for (std::uint64_t k = 0; k < len; ++k) out.push_back(out[src++]);
  }
}

}  // namespace frd::compress
