#include "compress/lz.hpp"

namespace frd::compress {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos >= in.size()) throw decode_error("truncated varint");
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift >= 64) throw decode_error("varint overflows 64 bits");
  }
}

std::vector<std::uint8_t> lz_decompress(std::span<const std::uint8_t> in,
                                        std::size_t max_output) {
  std::vector<std::uint8_t> out;
  std::size_t pos = 0;
  for (;;) {
    if (pos >= in.size()) throw decode_error("truncated stream: end opcode missing");
    const std::uint8_t op = in[pos++];
    if (op == 0x00) return out;
    if (op == 0x01) {
      const std::uint64_t n = get_varint(in, pos);
      if (n > in.size() - pos) throw decode_error("literal run past end of stream");
      if (n > max_output - out.size()) {
        throw decode_error("literal run overflows the declared output size");
      }
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(pos),
                 in.begin() + static_cast<std::ptrdiff_t>(pos + n));
      pos += n;
      continue;
    }
    if (op != 0x02) throw decode_error("unknown opcode");
    const std::uint64_t len = get_varint(in, pos);
    const std::uint64_t dist = get_varint(in, pos);
    if (dist == 0 || dist > out.size()) {
      throw decode_error("match distance out of range");
    }
    if (len > max_output - out.size()) {
      throw decode_error("match length overflows the declared output size");
    }
    // Byte-by-byte on purpose: overlapping matches (dist < len) replicate.
    std::size_t src = out.size() - dist;
    for (std::uint64_t k = 0; k < len; ++k) out.push_back(out[src++]);
  }
}

}  // namespace frd::compress
