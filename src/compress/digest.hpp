// SHA-1 (FIPS 180-1) and FNV-1a digests.
//
// PARSEC's dedup fingerprints chunks with SHA-1; we implement it from the
// spec (no external crypto dependency — this repo builds everything it
// needs). SHA-1 is cryptographically broken for adversarial inputs but
// remains exactly what the original benchmark uses for dedup keying.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace frd::compress {

using sha1_digest = std::array<std::uint8_t, 20>;

sha1_digest sha1(std::span<const std::uint8_t> data);
std::string to_hex(const sha1_digest& d);

// 64-bit FNV-1a: cheap keying for hash tables.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data);

// Dedup-table key: first 8 bytes of the SHA-1, little endian.
std::uint64_t sha1_key64(const sha1_digest& d);

}  // namespace frd::compress
