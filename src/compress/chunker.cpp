#include "compress/chunker.hpp"

#include "support/check.hpp"
#include "support/prng.hpp"

namespace frd::compress {

const std::uint64_t* gear_table() {
  static const auto table = [] {
    // Deterministic table from our own PRNG: identical chunking everywhere.
    static std::uint64_t t[256];
    prng rng(0x6765617268617368ULL);  // "gearhash"
    for (auto& v : t) v = rng.next();
    return t;
  }();
  return table;
}

stream_chunker::stream_chunker(const chunk_params& params)
    : params_(params), gear_(gear_table()) {
  FRD_CHECK_MSG(params.min_size > 0 && params.min_size <= params.target_size &&
                    params.target_size <= params.max_size,
                "chunk_params must satisfy min <= target <= max");
  // Mask with log2(target) low bits: expected chunk length ~= target.
  std::uint64_t mask = 1;
  while (mask < params.target_size) mask <<= 1;
  mask_ = mask - 1;
}

std::vector<chunk_ref> chunk_bytes(std::span<const std::uint8_t> data,
                                   const chunk_params& params) {
  stream_chunker ck(params);
  std::vector<chunk_ref> chunks;
  std::size_t start = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (ck.push(data[i])) {
      chunks.push_back(chunk_ref{start, i - start + 1});
      start = i + 1;
    }
  }
  if (start < data.size())
    chunks.push_back(chunk_ref{start, data.size() - start});
  return chunks;
}

}  // namespace frd::compress
