// Online detection engine: runs a program on the work-stealing parallel
// runtime with the serial detection stack attached live.
//
// Architecture (DESIGN.md §10):
//
//   program threads                      pump thread
//   ---------------                      -----------
//   online::runtime ops ──► wire_rec ──► per-worker SPSC rings
//   hooks / session::read ──► router ──► (granulated access records)
//                                        │ drain: demux by node id into
//                                        │ per-node logs (program order)
//                                        ▼
//                                 canonical depth-first walk
//                                        │ re-mints strand/function ids in
//                                        │ serial_runtime's exact order
//                                        ▼
//                        execution_listener + access_sink (unchanged
//                        detector / recorder / mux — the serial stack)
//
// The ARBITRATION ORDER over dag events is the canonical depth-first order:
// each event is sequence-stamped at the point the pump commits it to the
// listener, and that order is byte-identical to the event stream the serial
// runtime would emit for the same program. Attaching a trace_recorder
// therefore yields a trace whose *serial replay* reproduces the online race
// report byte-for-byte — the subsystem's conformance oracle (test_online).
//
// Liveness: the pump is a dedicated thread, never a scheduler worker. When
// the walk needs records that have not arrived yet (a stolen child still
// executing), it drains every ring while it waits, so producers spinning on
// a full ring always make progress. Untouched futures are executed by
// engine::quiesce before the root's `end` record is logged, so the walk
// always terminates.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "detect/hooks.hpp"
#include "online/record.hpp"
#include "online/ring.hpp"
#include "runtime/events.hpp"
#include "runtime/parallel.hpp"

namespace frd::online {

// Raised (from engine::finish, on the host thread) when the online run
// cannot be serialized: e.g. a get that touches a future before its
// canonical depth-first creation point (a non-forward-pointing future, the
// class the paper's detectors exclude, §2).
class online_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class engine {
 public:
  struct config {
    unsigned workers = 0;  // scheduler width; 0 = hardware_concurrency
    std::size_t granule = 4;
    rt::execution_listener* listener = nullptr;  // dag events (detector/mux)
    detect::hooks::access_sink* sink = nullptr;  // accesses (detector/recorder)
    std::size_t ring_capacity = std::size_t{1} << 15;  // records per worker
    std::size_t batch_capacity = 4096;  // access run per on_accesses call
  };

  explicit engine(const config& cfg);
  ~engine();
  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;

  rt::par::scheduler& sched() { return sched_; }
  unsigned worker_count() const { return sched_.worker_count(); }

  // Thread-safe access_sink that granulates and routes into the calling
  // worker's ring; the session installs it as the hook sink for the run.
  detect::hooks::access_sink& router() { return router_; }

  // ---- producer side (called from program threads via online::runtime) ----
  std::uint32_t alloc_node() {
    return next_node_.fetch_add(1, std::memory_order_relaxed);
  }
  void log(const wire_rec& r);  // pushes to the calling worker's ring
  void log_access(const void* p, std::size_t bytes, bool is_write);
  void note_task_started() {
    outstanding_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_task_finished() {
    outstanding_.fetch_sub(1, std::memory_order_release);
  }

  // Thread-local binding of the function instance currently executing on
  // this thread; task wrappers save/restore it around bodies.
  static std::uint32_t current_node();
  static std::uint32_t bind_node(std::uint32_t node);  // returns previous

  void enforce_single_touch(bool on) { single_touch_ = on; }
  bool single_touch() const { return single_touch_; }

  // ---- lifecycle (host thread; driven by online::runtime::run + session) ----
  void begin_program();  // mints node 0 (main) and starts the pump
  void quiesce();        // help until every pushed task finished (untouched
                         // futures included); call from inside the scheduler
  void end_program();    // logs main's `end`; the walk can now complete
  void finish();         // joins the pump and rethrows its error, if any
  void abort() noexcept;  // finish() for unwind paths: joins, swallows

 private:
  class ring_router final : public detect::hooks::access_sink {
   public:
    explicit ring_router(engine& e) : eng_(e) {}
    void on_read(const void* p, std::size_t n) override {
      eng_.log_access(p, n, false);
    }
    void on_write(const void* p, std::size_t n) override {
      eng_.log_access(p, n, true);
    }

   private:
    engine& eng_;
  };

  struct node_log {
    std::vector<wire_rec> ops;
    std::size_t cursor = 0;
  };

  // One open function instance of the canonical walk. fork_u/first_w/cont_v
  // are the strand ids minted at its spawn/create event, completed into the
  // parent's child_record (or the future table) when `end` is reached.
  struct walk_frame {
    std::uint32_t node = 0;
    rt::func_id fn = rt::kNoFunc;
    rt::strand_id fork_u = rt::kNoStrand;
    rt::strand_id first_w = rt::kNoStrand;
    rt::strand_id cont_v = rt::kNoStrand;
    bool is_future = false;
    std::vector<rt::child_record> children;
  };

  struct future_info {
    rt::func_id fn;
    rt::strand_id last;
    rt::strand_id creator;
  };

  void pump_main();
  void run_walk();
  std::size_t drain_rings();     // rings -> per-node logs; returns #records
  void wait_for_records();       // blocks (helping the drain) until progress
  node_log& log_for(std::uint32_t node);

  config cfg_;
  rt::par::scheduler sched_;
  ring_router router_;
  std::uintptr_t granule_mask_;
  std::vector<std::unique_ptr<spsc_ring<wire_rec>>> rings_;

  std::atomic<std::uint32_t> next_node_{0};
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<bool> stop_{false};
  bool single_touch_ = false;
  bool begun_ = false;
  bool ended_ = false;
  bool finished_ = false;

  std::thread pump_;
  std::exception_ptr pump_error_;  // written by pump, read after join

  // Pump-private walk state (touched only by the pump thread).
  std::vector<node_log> logs_;
};

}  // namespace frd::online
