// Bounded single-producer single-consumer ring buffer.
//
// One per scheduler worker (producer) with the pump thread as the only
// consumer. Classic head/tail design with cached counterpart indices so the
// uncontended fast path is one relaxed load, one store, and one release
// store per operation. A full ring is backpressure: the producer spins with
// yield in engine::log — safe because the pump drains every ring whenever it
// is waiting, so the consumer can never be the one blocked on the producer.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "support/check.hpp"

namespace frd::online {

template <typename T>
class spsc_ring {
 public:
  explicit spsc_ring(std::size_t capacity)
      : mask_(capacity - 1), slots_(capacity) {
    FRD_CHECK_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                  "spsc_ring capacity must be a power of two >= 2");
  }
  spsc_ring(const spsc_ring&) = delete;
  spsc_ring& operator=(const spsc_ring&) = delete;

  // Producer side. False when full (caller retries / backs off).
  bool try_push(const T& v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ > mask_) return false;
    }
    slots_[t & mask_] = v;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. False when empty.
  bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return false;
    }
    out = slots_[h & mask_];
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

 private:
  // Producer-owned line: tail plus its stale view of head.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  // Consumer-owned line: head plus its stale view of tail.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
  alignas(64) const std::size_t mask_;
  std::vector<T> slots_;
};

}  // namespace frd::online
