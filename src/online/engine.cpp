// The online detection pump: ring drain + canonical depth-first walk.
//
// The walk below is a line-for-line reimplementation of serial_runtime's id
// minting and listener emission (runtime/serial.hpp) driven by per-node op
// logs instead of eager execution. Any divergence between the two breaks
// the subsystem's core invariant — online report == serial replay of the
// recorded arbitration trace — so changes here must mirror serial.hpp (the
// conformance cube in tests/test_online.cpp holds both to it).
#include "online/engine.hpp"

#include <unordered_map>

#include "support/check.hpp"
#include "support/granule.hpp"

namespace frd::online {

namespace {
thread_local std::uint32_t tls_node = kNoNode;
}  // namespace

engine::engine(const config& cfg)
    : cfg_(cfg),
      sched_(cfg.workers),
      router_(*this),
      granule_mask_(frd::granule_mask(cfg.granule)) {
  FRD_CHECK_MSG(frd::valid_granule(cfg_.granule),
                "online engine granule must be a power of two in [1, 4096]");
  if (cfg_.batch_capacity < 1) cfg_.batch_capacity = 1;
  for (unsigned i = 0; i < sched_.worker_count(); ++i) {
    rings_.push_back(std::make_unique<spsc_ring<wire_rec>>(cfg_.ring_capacity));
  }
}

engine::~engine() { abort(); }

std::uint32_t engine::current_node() {
  FRD_CHECK_MSG(tls_node != kNoNode,
                "online operation on a thread with no bound function "
                "instance (instrumented access outside the online run?)");
  return tls_node;
}

std::uint32_t engine::bind_node(std::uint32_t node) {
  const std::uint32_t prev = tls_node;
  tls_node = node;
  return prev;
}

void engine::log(const wire_rec& r) {
  spsc_ring<wire_rec>& ring =
      *rings_[rt::par::scheduler::current_worker_index()];
  // A full ring is backpressure: the pump drains every ring whenever it
  // waits, so this spin always terminates.
  while (!ring.try_push(r)) std::this_thread::yield();
}

void engine::log_access(const void* p, std::size_t bytes, bool is_write) {
  wire_rec r;
  r.node = current_node();
  r.kind = op::access;
  r.is_write = is_write ? 1 : 0;
  frd::for_each_granule(p, bytes, cfg_.granule, granule_mask_,
                        [&](std::uintptr_t a) {
                          r.arg = static_cast<std::uint64_t>(a);
                          log(r);
                        });
}

void engine::begin_program() {
  FRD_CHECK_MSG(!begun_, "an online engine runs exactly one program");
  begun_ = true;
  const std::uint32_t root = alloc_node();
  FRD_CHECK(root == 0);  // the walk hard-codes main as node 0
  pump_ = std::thread([this] { pump_main(); });
}

void engine::quiesce() {
  sched_.help_until(
      [this] { return outstanding_.load(std::memory_order_acquire) == 0; });
}

void engine::end_program() {
  FRD_CHECK_MSG(begun_ && !ended_, "end_program without a running program");
  ended_ = true;
  wire_rec r;
  r.node = 0;
  r.kind = op::end;
  log(r);
}

void engine::finish() {
  if (!begun_ || finished_) {
    finished_ = true;
    return;
  }
  stop_.store(true, std::memory_order_release);
  pump_.join();
  finished_ = true;
  if (pump_error_) std::rethrow_exception(pump_error_);
}

void engine::abort() noexcept {
  if (!begun_ || finished_) {
    finished_ = true;
    return;
  }
  stop_.store(true, std::memory_order_release);
  pump_.join();
  finished_ = true;
  // Swallow pump_error_: this is the unwind / destructor path.
}

void engine::pump_main() {
  try {
    run_walk();
  } catch (...) {
    pump_error_ = std::current_exception();
  }
  if (pump_error_ != nullptr) {
    // Sink mode: the walk died, but producers may still be running and must
    // never block on a full ring. Keep draining (and discarding) until the
    // host tears the run down.
    while (!stop_.load(std::memory_order_acquire)) {
      if (drain_rings() == 0) std::this_thread::yield();
    }
    drain_rings();
  }
}

std::size_t engine::drain_rings() {
  std::size_t drained = 0;
  wire_rec r;
  for (auto& ring : rings_) {
    while (ring->try_pop(r)) {
      if (r.node >= logs_.size()) logs_.resize(r.node + 1);
      logs_[r.node].ops.push_back(r);
      ++drained;
    }
  }
  return drained;
}

void engine::wait_for_records() {
  unsigned idle = 0;
  while (drain_rings() == 0) {
    if (stop_.load(std::memory_order_acquire) && drain_rings() == 0) {
      throw online_error(
          "online event stream ended before the canonical walk completed "
          "(program torn down mid-run)");
    }
    if (++idle > 64) std::this_thread::yield();
  }
}

engine::node_log& engine::log_for(std::uint32_t node) {
  if (node >= logs_.size()) logs_.resize(node + 1);
  return logs_[node];
}

void engine::run_walk() {
  rt::execution_listener* L = cfg_.listener;
  detect::hooks::access_sink* S = cfg_.sink;

  // Canonical id counters — the serial runtime's next_strand_/next_func_.
  std::uint32_t next_strand = 0;
  std::uint32_t next_func = 0;
  rt::strand_id cur = rt::kNoStrand;

  std::vector<walk_frame> stack;
  std::vector<rt::strand_id> joins;
  std::unordered_map<std::uint32_t, future_info> futures;  // by online node id

  std::vector<detect::hooks::access> batch;
  batch.reserve(cfg_.batch_capacity);
  const auto flush = [&] {
    if (batch.empty()) return;
    if (S != nullptr) S->on_accesses(batch, cfg_.granule);
    batch.clear();
  };
  const auto strand_begin = [&](rt::strand_id s, rt::func_id f) {
    if (L != nullptr) L->on_strand_begin(s, f);
  };
  // serial_runtime::sync, verbatim: joins minted in child order, `before`
  // read prior to reassigning cur, children cleared, last join resumes fn.
  const auto do_sync = [&](walk_frame& fr) {
    if (fr.children.empty()) return;
    joins.clear();
    for (std::size_t i = 0; i < fr.children.size(); ++i)
      joins.push_back(next_strand++);
    if (L != nullptr) {
      rt::execution_listener::sync_event e{fr.fn, cur, fr.children, joins};
      L->on_sync(e);
    }
    cur = joins.back();
    fr.children.clear();
    strand_begin(cur, fr.fn);
  };

  // serial_runtime::run prologue.
  const rt::func_id main_fn = next_func++;
  cur = next_strand++;
  if (L != nullptr) L->on_program_begin(main_fn, cur);
  stack.push_back(walk_frame{0, main_fn});
  strand_begin(cur, main_fn);

  while (true) {
    node_log& log = log_for(stack.back().node);
    if (log.cursor >= log.ops.size()) {
      wait_for_records();
      continue;  // log reference may be stale after a resize
    }
    const wire_rec r = log.ops[log.cursor++];
    switch (r.kind) {
      case op::access:
        batch.push_back(detect::hooks::access{
            static_cast<std::uintptr_t>(r.arg), r.is_write != 0});
        if (batch.size() >= cfg_.batch_capacity) flush();
        break;

      case op::spawn:
      case op::create: {
        flush();
        walk_frame& top = stack.back();
        const rt::strand_id u = cur;
        const rt::func_id parent = top.fn;
        const rt::func_id child = next_func++;
        const rt::strand_id w = next_strand++;  // child's first strand
        const rt::strand_id v = next_strand++;  // parent continuation
        if (L != nullptr) {
          if (r.kind == op::spawn) {
            L->on_spawn(parent, u, child, w, v);
          } else {
            L->on_create(parent, u, child, w, v);
          }
        }
        walk_frame f;
        f.node = static_cast<std::uint32_t>(r.arg);
        f.fn = child;
        f.fork_u = u;
        f.first_w = w;
        f.cont_v = v;
        f.is_future = r.kind == op::create;
        stack.push_back(std::move(f));  // descend: child runs to completion
        cur = w;
        strand_begin(w, child);
        break;
      }

      case op::sync:
        // A no-op sync (no outstanding children) emits nothing in the
        // serial runtime, so the recorded trace has no boundary there —
        // flushing would split a batch the replay keeps whole.
        if (!stack.back().children.empty()) flush();
        do_sync(stack.back());
        break;

      case op::get: {
        flush();
        const auto it = futures.find(static_cast<std::uint32_t>(r.arg));
        if (it == futures.end()) {
          throw online_error(
              "online run touched a future before its canonical depth-first "
              "creation point: the program's futures are not forward-pointing "
              "in serial order, which is outside the detectors' supported "
              "class (paper S2)");
        }
        const future_info fi = it->second;
        walk_frame& top = stack.back();
        const rt::strand_id u = cur;
        const rt::func_id fn = top.fn;
        const rt::strand_id v = next_strand++;
        if (L != nullptr) L->on_get(fn, u, v, fi.fn, fi.last, fi.creator);
        cur = v;
        strand_begin(v, fn);
        break;
      }

      case op::end: {
        flush();
        do_sync(stack.back());  // Cilk's implicit sync (no-op if no children)
        const rt::strand_id last = cur;
        if (stack.size() == 1) {
          if (L != nullptr) L->on_program_end(last);
          return;  // walk complete
        }
        const walk_frame fin = std::move(stack.back());
        stack.pop_back();
        walk_frame& parent = stack.back();
        if (L != nullptr) L->on_return(fin.fn, last, parent.fn);
        if (fin.is_future) {
          futures.emplace(fin.node,
                          future_info{fin.fn, last, fin.fork_u});
        } else {
          parent.children.push_back(rt::child_record{
              fin.fn, fin.fork_u, fin.first_w, last, fin.cont_v});
        }
        cur = fin.cont_v;
        strand_begin(cur, parent.fn);
        break;
      }
    }
  }
}

}  // namespace frd::online
