// Online detection: the wire format between program threads and the pump.
//
// Every worker of the online scheduler owns one SPSC ring (ring.hpp) into
// which it pushes wire_rec entries as the program executes: one per
// instrumented granule access and one per dag operation (spawn, create,
// sync, get, function end). Records carry the *online node id* of the
// function instance that issued them — a dense id minted by the engine at
// spawn/create time in real-time order. The pump (engine.cpp) demultiplexes
// the rings into per-node logs; because a function instance's body runs
// entirely on one thread (child-stealing scheduler, continuations never
// migrate) and helping only ever executes *other* instances, each node's
// records arrive in its program order even though the ring interleaves many
// nodes.
//
// Canonical strand/function ids are NOT on the wire: the pump re-mints them
// during its depth-first walk so the emitted event stream is bit-identical
// to what serial_runtime would have produced (see engine.cpp).
#pragma once

#include <cstdint>

namespace frd::online {

// "No node" marker for the thread-local node binding (engine::bind_node).
inline constexpr std::uint32_t kNoNode = static_cast<std::uint32_t>(-1);

enum class op : std::uint8_t {
  access = 0,  // arg = granule base address, is_write set accordingly
  spawn,       // arg = online node id of the spawned child
  create,      // arg = online node id of the created future
  sync,        // joins the node's outstanding canonical children
  get,         // arg = online node id of the touched future
  end,         // the node's body returned; last record of every node
};

// 16 bytes, trivially copyable; the only thing that crosses the rings.
struct wire_rec {
  std::uint32_t node = 0;     // issuing function instance (online node id)
  op kind = op::access;
  std::uint8_t is_write = 0;  // access records only
  std::uint16_t pad = 0;
  std::uint64_t arg = 0;
};

static_assert(sizeof(wire_rec) == 16, "wire_rec should stay ring-friendly");

}  // namespace frd::online
