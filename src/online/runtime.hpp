// online::runtime — the program-facing API of online detection.
//
// Mirrors rt::serial_runtime's surface (run / spawn / sync / create_future /
// get / future_of / enforce_single_touch / quiesce / help_until) on top of
// the work-stealing scheduler, logging one wire_rec per dag operation into
// the engine's per-worker rings. Kernels templated on the runtime type run
// unchanged on serial_runtime, parallel_runtime, or this.
//
// Futures are shared-state and copyable (like rt::pfuture): a handle can be
// stashed in containers and touched from several concurrently executing
// function instances. Touch counting is atomic so the single-touch
// (structured) discipline is enforced exactly as the serial runtime does.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>

#include "online/engine.hpp"
#include "runtime/parallel.hpp"
#include "support/check.hpp"

namespace frd::online {

namespace detail {

template <typename T>
struct fstate {
  rt::par::future_state<T> core;
  std::uint32_t node = 0;  // online node id; the wire name of this future
  std::atomic<int> touches{0};
  engine* eng = nullptr;
};

// Logs the get record and joins with the future's shared state. Factored
// out of future<T>/future<void> so the touch/log/wait sequence exists once.
inline void touch_future(engine& eng, std::uint32_t node,
                         std::atomic<int>& touches,
                         rt::par::future_state_base& core) {
  const int count = touches.fetch_add(1, std::memory_order_acq_rel) + 1;
  FRD_CHECK_MSG(!eng.single_touch() || count == 1,
                "structured futures are single-touch (paper S2); second "
                "get() on the same handle");
  wire_rec r;
  r.node = engine::current_node();
  r.kind = op::get;
  r.arg = node;
  eng.log(r);
  eng.sched().wait_future(core);
}

}  // namespace detail

template <typename T>
class future {
 public:
  future() = default;
  bool valid() const { return st_ != nullptr; }
  int touch_count() const {
    return st_ ? st_->touches.load(std::memory_order_acquire) : 0;
  }

  const T& get() {
    FRD_CHECK_MSG(st_ != nullptr, "get() on an invalid online future");
    detail::touch_future(*st_->eng, st_->node, st_->touches, st_->core);
    return *st_->core.value;
  }

 private:
  friend class runtime;
  explicit future(std::shared_ptr<detail::fstate<T>> s) : st_(std::move(s)) {}
  std::shared_ptr<detail::fstate<T>> st_;
};

template <>
class future<void> {
 public:
  future() = default;
  bool valid() const { return st_ != nullptr; }
  int touch_count() const {
    return st_ ? st_->touches.load(std::memory_order_acquire) : 0;
  }

  void get() {
    FRD_CHECK_MSG(st_ != nullptr, "get() on an invalid online future");
    detail::touch_future(*st_->eng, st_->node, st_->touches, st_->core);
  }

 private:
  friend class runtime;
  explicit future(std::shared_ptr<detail::fstate<void>> s)
      : st_(std::move(s)) {}
  std::shared_ptr<detail::fstate<void>> st_;
};

namespace detail {

template <typename F>
struct child_task final : rt::par::task {
  child_task(engine* eng, std::uint32_t node, rt::par::frame* parent, F&& fn)
      : eng_(eng), node_(node), parent_(parent), fn_(std::move(fn)) {}
  void execute(rt::par::scheduler& sched) override {
    const std::uint32_t prev = engine::bind_node(node_);
    rt::par::run_as_function(sched, fn_);
    wire_rec r;
    r.node = node_;
    r.kind = op::end;
    eng_->log(r);
    engine::bind_node(prev);
    parent_->pending.fetch_sub(1, std::memory_order_release);
    eng_->note_task_finished();
  }
  engine* eng_;
  std::uint32_t node_;
  rt::par::frame* parent_;
  F fn_;
};

// The queued face of an online future. The body (node binding, user fn,
// end record) lives in the shared state's run_body so a blocked get can
// leapfrog into it; the task only offers the state a chance to run when
// dequeued, then settles the engine's outstanding-task accounting.
template <typename State>
struct future_task final : rt::par::task {
  future_task(std::shared_ptr<State> st, engine* eng)
      : st_(std::move(st)), eng_(eng) {}
  void execute(rt::par::scheduler& sched) override {
    st_->core.run_if_pending(sched);
    eng_->note_task_finished();
  }
  std::shared_ptr<State> st_;
  engine* eng_;
};

}  // namespace detail

class runtime {
 public:
  explicit runtime(engine& eng) : eng_(eng) {}
  runtime(const runtime&) = delete;
  runtime& operator=(const runtime&) = delete;

  template <typename T>
  using future_of = future<T>;

  unsigned worker_count() const { return eng_.worker_count(); }
  void enforce_single_touch(bool on) { eng_.enforce_single_touch(on); }
  engine& eng() { return eng_; }

  // Runs `root` as the program's main function. One program per engine: the
  // pump's canonical walk begins here and completes at the root's end
  // record, after quiesce has executed every task ever pushed (untouched
  // futures included) so the walk never waits on a body that will not run.
  template <typename F>
  void run(F&& root) {
    eng_.begin_program();
    rt::par::scheduler& s = eng_.sched();
    s.enter_host();
    const std::uint32_t prev_node = engine::bind_node(0);
    rt::par::frame fr;
    rt::par::frame* prev_frame = s.swap_current_frame(&fr);
    try {
      root();
      if (fr.pending.load(std::memory_order_acquire) != 0) s.wait_frame(fr);
      eng_.quiesce();
      eng_.end_program();
    } catch (...) {
      // Best effort: let outstanding tasks drain before unwinding destroys
      // the state their bodies capture, then tear the run down.
      if (fr.pending.load(std::memory_order_acquire) != 0) s.wait_frame(fr);
      eng_.quiesce();
      s.swap_current_frame(prev_frame);
      engine::bind_node(prev_node);
      s.leave_host();
      eng_.abort();
      throw;
    }
    s.swap_current_frame(prev_frame);
    engine::bind_node(prev_node);
    s.leave_host();
  }

  template <typename F>
  void spawn(F&& f) {
    rt::par::frame* fr = eng_.sched().current_frame();
    FRD_CHECK_MSG(fr != nullptr, "spawn outside run()");
    const std::uint32_t child = eng_.alloc_node();
    wire_rec r;
    r.node = engine::current_node();
    r.kind = op::spawn;
    r.arg = child;
    eng_.log(r);
    fr->pending.fetch_add(1, std::memory_order_relaxed);
    eng_.note_task_started();
    eng_.sched().push_task(new detail::child_task<std::decay_t<F>>(
        &eng_, child, fr, std::forward<F>(f)));
  }

  void sync() {
    rt::par::frame* fr = eng_.sched().current_frame();
    FRD_CHECK_MSG(fr != nullptr, "sync outside run()");
    wire_rec r;
    r.node = engine::current_node();
    r.kind = op::sync;
    eng_.log(r);
    if (fr->pending.load(std::memory_order_acquire) != 0)
      eng_.sched().wait_frame(*fr);
  }

  template <typename F>
  auto create_future(F&& f) -> future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    FRD_CHECK_MSG(eng_.sched().current_frame() != nullptr,
                  "create_future outside run()");
    auto st = std::make_shared<detail::fstate<R>>();
    st->node = eng_.alloc_node();
    st->eng = &eng_;
    // fn rides in a shared_ptr because std::function needs a copyable
    // callable; the raw back-pointer into the state is safe — the closure
    // is owned by that same state.
    st->core.run_body = [st = st.get(),
                         fn = std::make_shared<std::decay_t<F>>(
                             std::forward<F>(f))](rt::par::scheduler& sched) {
      const std::uint32_t prev = engine::bind_node(st->node);
      auto body = [&] {
        if constexpr (std::is_void_v<R>) {
          (*fn)();
        } else {
          st->core.value.emplace((*fn)());
        }
      };
      rt::par::run_as_function(sched, body);
      wire_rec r;
      r.node = st->node;
      r.kind = op::end;
      st->eng->log(r);
      engine::bind_node(prev);
      st->core.mark_done();
    };
    wire_rec r;
    r.node = engine::current_node();
    r.kind = op::create;
    r.arg = st->node;
    eng_.log(r);
    eng_.note_task_started();
    eng_.sched().push_task(
        new detail::future_task<detail::fstate<R>>(st, &eng_));
    return future<R>{std::move(st)};
  }

  template <typename T>
  const T& get(future<T>& fut) {
    return fut.get();
  }
  void get(future<void>& fut) { fut.get(); }

  // Helps until every task ever pushed has finished (parallel_runtime's
  // quiesce); generic kernels use it to join side-table mutation before
  // reading the tables single-threaded.
  void quiesce() { eng_.quiesce(); }

  template <typename P>
  void help_until(P&& done) {
    eng_.sched().help_until(std::forward<P>(done));
  }

 private:
  engine& eng_;
};

}  // namespace frd::online
