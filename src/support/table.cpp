#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

namespace frd {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void text_table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string text_table::render() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(width[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string text_table::seconds(double s) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", s);
  return buf;
}

std::string text_table::multiplier(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fx", x);
  return buf;
}

std::string text_table::seconds_with_overhead(double s, double baseline_s) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.3f (%.2fx)", s,
                baseline_s > 0 ? s / baseline_s : 0.0);
  return buf;
}

}  // namespace frd
