// Minimal command-line flag parsing for benchmark harnesses and examples.
//
// Flags look like:  --n 2048 --base 32 --mode full --verbose
// Unrecognized flags abort with a usage message, so typos in experiment
// scripts fail loudly instead of silently benchmarking the default config.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace frd {

class flag_parser {
 public:
  flag_parser(int argc, char** argv);

  // Registration must happen before parse(). Each returns the parsed value
  // location so call sites read naturally:
  //   auto& n = flags.int_flag("n", 2048, "problem size");
  std::int64_t& int_flag(std::string name, std::int64_t def, std::string help);
  double& double_flag(std::string name, double def, std::string help);
  std::string& string_flag(std::string name, std::string def, std::string help);
  bool& bool_flag(std::string name, bool def, std::string help);

  // Parses argv; on --help prints usage and exits 0; on unknown flag prints
  // usage and exits 1.
  void parse();

  std::string usage() const;

 private:
  enum class kind { integer, real, text, boolean };
  struct flag {
    std::string name;
    kind k;
    std::string help;
    std::string def_text;
    // Exactly one of these is active, selected by `k`. Values live inside the
    // flag object; unique_ptr indirection keeps their addresses stable while
    // more flags are registered (callers hold references into them).
    std::int64_t int_val = 0;
    double dbl_val = 0;
    std::string str_val;
    bool bool_val = false;
  };

  flag* find(std::string_view name);

  std::string prog_;
  std::vector<std::string> args_;
  std::vector<std::unique_ptr<flag>> flags_;
};

}  // namespace frd
