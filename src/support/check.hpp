// Invariant checking for FutureRD.
//
// FRD_CHECK is always on: it guards invariants whose violation would make
// race reports meaningless (e.g. a bag payload missing from a DSU root).
// FRD_DCHECK compiles away in release builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace frd {

[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "FutureRD invariant violated: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace frd

#define FRD_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::frd::check_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define FRD_CHECK_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) ::frd::check_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define FRD_DCHECK(expr) ((void)0)
#else
#define FRD_DCHECK(expr) FRD_CHECK(expr)
#endif
