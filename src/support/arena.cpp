#include "support/arena.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/check.hpp"

namespace frd {

void* arena::allocate(std::size_t bytes, std::size_t align) {
  FRD_DCHECK(align != 0 && (align & (align - 1)) == 0);
  auto ip = reinterpret_cast<std::uintptr_t>(cursor_);
  std::uintptr_t aligned = (ip + align - 1) & ~(std::uintptr_t{align} - 1);
  std::byte* p = reinterpret_cast<std::byte*>(aligned);
  if (p == nullptr || p + bytes > end_) {
    grow(bytes + align);
    ip = reinterpret_cast<std::uintptr_t>(cursor_);
    aligned = (ip + align - 1) & ~(std::uintptr_t{align} - 1);
    p = reinterpret_cast<std::byte*>(aligned);
  }
  cursor_ = p + bytes;
  bytes_allocated_ += bytes;
  return p;
}

void arena::grow(std::size_t at_least) {
  std::size_t size = std::max(block_bytes_, at_least);
  auto* base = static_cast<std::byte*>(std::malloc(size));
  FRD_CHECK_MSG(base != nullptr, "arena out of memory");
  blocks_.push_back({base, size});
  cursor_ = base;
  end_ = base + size;
  // Geometric growth keeps the block count logarithmic in total footprint.
  block_bytes_ = std::min<std::size_t>(block_bytes_ * 2, std::size_t{1} << 24);
}

void arena::release() {
  for (block& b : blocks_) std::free(b.base);
  blocks_.clear();
  cursor_ = end_ = nullptr;
  bytes_allocated_ = 0;
}

}  // namespace frd
