#include "support/flags.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace frd {

flag_parser::flag_parser(int argc, char** argv) {
  prog_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
}

flag_parser::flag* flag_parser::find(std::string_view name) {
  for (const auto& f : flags_)
    if (f->name == name) return f.get();
  return nullptr;
}

std::int64_t& flag_parser::int_flag(std::string name, std::int64_t def,
                                    std::string help) {
  auto f = std::make_unique<flag>(
      flag{std::move(name), kind::integer, std::move(help), std::to_string(def),
           0, 0, {}, false});
  f->int_val = def;
  flags_.push_back(std::move(f));
  return flags_.back()->int_val;
}

double& flag_parser::double_flag(std::string name, double def, std::string help) {
  auto f = std::make_unique<flag>(
      flag{std::move(name), kind::real, std::move(help), std::to_string(def),
           0, 0, {}, false});
  f->dbl_val = def;
  flags_.push_back(std::move(f));
  return flags_.back()->dbl_val;
}

std::string& flag_parser::string_flag(std::string name, std::string def,
                                      std::string help) {
  auto f = std::make_unique<flag>(
      flag{std::move(name), kind::text, std::move(help), def, 0, 0, {}, false});
  f->str_val = std::move(def);
  flags_.push_back(std::move(f));
  return flags_.back()->str_val;
}

bool& flag_parser::bool_flag(std::string name, bool def, std::string help) {
  auto f = std::make_unique<flag>(
      flag{std::move(name), kind::boolean, std::move(help),
           def ? "true" : "false", 0, 0, {}, false});
  f->bool_val = def;
  flags_.push_back(std::move(f));
  return flags_.back()->bool_val;
}

std::string flag_parser::usage() const {
  std::string out = "usage: " + prog_ + " [flags]\n";
  for (const auto& f : flags_) {
    out += "  --" + f->name + " (default " + f->def_text + "): " + f->help + "\n";
  }
  return out;
}

void flag_parser::parse() {
  for (std::size_t i = 0; i < args_.size(); ++i) {
    std::string_view a = args_[i];
    if (a == "--help" || a == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (a.size() < 3 || a.substr(0, 2) != "--") {
      std::fprintf(stderr, "unexpected argument '%s'\n%s", args_[i].c_str(),
                   usage().c_str());
      std::exit(1);
    }
    flag* f = find(a.substr(2));
    if (f == nullptr) {
      std::fprintf(stderr, "unknown flag '%s'\n%s", args_[i].c_str(),
                   usage().c_str());
      std::exit(1);
    }
    if (f->k == kind::boolean) {
      // Booleans accept an optional explicit value; bare flag means true.
      if (i + 1 < args_.size() &&
          (args_[i + 1] == "true" || args_[i + 1] == "false")) {
        f->bool_val = args_[++i] == "true";
      } else {
        f->bool_val = true;
      }
      continue;
    }
    if (i + 1 >= args_.size()) {
      std::fprintf(stderr, "flag '%s' needs a value\n%s", args_[i].c_str(),
                   usage().c_str());
      std::exit(1);
    }
    const std::string& v = args_[++i];
    char* end = nullptr;
    switch (f->k) {
      case kind::integer:
        f->int_val = std::strtoll(v.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          std::fprintf(stderr, "flag --%s expects an integer, got '%s'\n",
                       f->name.c_str(), v.c_str());
          std::exit(1);
        }
        break;
      case kind::real:
        f->dbl_val = std::strtod(v.c_str(), &end);
        if (end == nullptr || *end != '\0') {
          std::fprintf(stderr, "flag --%s expects a number, got '%s'\n",
                       f->name.c_str(), v.c_str());
          std::exit(1);
        }
        break;
      case kind::text:
        f->str_val = v;
        break;
      case kind::boolean:
        break;  // handled above
    }
  }
}

}  // namespace frd
