// Column-aligned plain-text table printer. The benchmark harnesses print
// the same row layout as the paper's Figures 6-8 (benchmark, baseline,
// per-configuration seconds with overhead multipliers in parentheses).
#pragma once

#include <string>
#include <vector>

namespace frd {

class text_table {
 public:
  explicit text_table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Renders with two-space column gaps; columns sized to fit.
  std::string render() const;

  // Convenience formatters used by the bench harnesses.
  static std::string seconds(double s);
  static std::string seconds_with_overhead(double s, double baseline_s);
  static std::string multiplier(double x);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace frd
