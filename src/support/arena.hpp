// Monotonic arena allocator.
//
// Bag payloads, attached-set descriptors and reader-list overflow blocks are
// allocated at high rate and freed all at once when a detection run ends.
// The arena hands out pointer-stable storage (no reallocation), which the
// detector relies on: DNSP attached-set payloads are referenced by attPred /
// attSucc proxies for the rest of the run (DESIGN.md §5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace frd {

class arena {
 public:
  explicit arena(std::size_t block_bytes = 1 << 16) : block_bytes_(block_bytes) {}
  arena(const arena&) = delete;
  arena& operator=(const arena&) = delete;
  arena(arena&&) noexcept = default;
  arena& operator=(arena&&) noexcept = default;
  ~arena() { release(); }

  // Allocates raw storage with the given size/alignment. Never returns null.
  void* allocate(std::size_t bytes, std::size_t align);

  // Constructs a T in arena storage. T must be trivially destructible, since
  // the arena never runs destructors (enforced at compile time).
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  // Drops every allocation. Pointers handed out become invalid.
  void release();

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t blocks() const { return blocks_.size(); }

 private:
  struct block {
    std::byte* base = nullptr;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least);

  std::vector<block> blocks_;
  std::byte* cursor_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t block_bytes_;
  std::size_t bytes_allocated_ = 0;
};

}  // namespace frd
