// Dynamic bit vector used for the transitive closure of R (MultiBags+) and
// for the graph oracle's reachability rows. The closure workload is
// dominated by whole-row ORs, so the representation is a flat word array
// with explicit word-level operations ("parallel bit operations" in the
// paper's artifact description, §6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace frd {

class bitvec {
 public:
  using word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  bitvec() = default;
  explicit bitvec(std::size_t nbits) { resize(nbits); }

  std::size_t size() const { return nbits_; }

  void resize(std::size_t nbits) {
    nbits_ = nbits;
    words_.resize((nbits + kWordBits - 1) / kWordBits, 0);
  }

  void set(std::size_t i) { words_[i / kWordBits] |= word{1} << (i % kWordBits); }
  void reset(std::size_t i) { words_[i / kWordBits] &= ~(word{1} << (i % kWordBits)); }
  bool test(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void clear() { words_.assign(words_.size(), 0); }

  // this |= other. Rows in a closure matrix share a common capacity, but the
  // oracle grows rows lazily, so |other| may be shorter.
  void or_with(const bitvec& other);

  // True iff (this & other) has any set bit.
  bool intersects(const bitvec& other) const;

  std::size_t count() const;
  bool any() const;

  // Calls fn(index) for every set bit, in increasing order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      word w = words_[wi];
      while (w != 0) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(w));
        fn(wi * kWordBits + bit);
        w &= w - 1;
      }
    }
  }

  bool operator==(const bitvec& other) const;

 private:
  std::vector<word> words_;
  std::size_t nbits_ = 0;
};

}  // namespace frd
