// imemstream: a seekable std::istream over caller-owned bytes.
//
// The trace codecs read from std::istream, and the .frdtz container reader
// additionally REQUIRES seekability (it jumps to the trailer, footer, and
// chunk offsets). std::istringstream would satisfy both but only by copying
// the buffer into the stream; the ingest daemon replays traces it has
// already buffered against a per-stream memory budget, where paying for a
// second copy of a million-event trace is exactly the accounting error the
// budget exists to prevent. This wrapper serves the caller's bytes in place.
//
// The viewed memory must stay alive and unchanged for the stream's lifetime.
#pragma once

#include <cstdint>
#include <istream>
#include <span>
#include <streambuf>

namespace frd {

class memory_streambuf : public std::streambuf {
 public:
  memory_streambuf(const char* data, std::size_t size) {
    char* p = const_cast<char*>(data);  // get area only; never written
    setg(p, p, p + size);
  }

 protected:
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override {
    if ((which & std::ios_base::in) == 0) return pos_type(off_type(-1));
    off_type base = 0;
    if (dir == std::ios_base::cur) {
      base = gptr() - eback();
    } else if (dir == std::ios_base::end) {
      base = egptr() - eback();
    }
    const off_type target = base + off;
    if (target < 0 || target > egptr() - eback()) {
      return pos_type(off_type(-1));
    }
    setg(eback(), eback() + target, egptr());
    return pos_type(target);
  }

  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override {
    return seekoff(off_type(pos), std::ios_base::beg, which);
  }
};

class imemstream : private memory_streambuf, public std::istream {
 public:
  imemstream(const void* data, std::size_t size)
      : memory_streambuf(static_cast<const char*>(data), size),
        std::istream(static_cast<memory_streambuf*>(this)) {}
  explicit imemstream(std::span<const std::uint8_t> bytes)
      : imemstream(bytes.data(), bytes.size()) {}
};

}  // namespace frd
