// Shared shadow-granule arithmetic.
//
// The detector (live), the trace recorder (record), and the trace codecs all
// agree on what a granule is and how an access splits into granules; replay
// reproduces live shadow behavior only because these are the SAME functions,
// not three copies that must be kept bit-identical by hand.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace frd {

// A granule is a power of two in [1, 4096] bytes (4 = the paper's artifact).
inline bool valid_granule(std::size_t granule) {
  return granule >= 1 && granule <= 4096 && std::has_single_bit(granule);
}

// Mask clearing sub-granule address bits.
inline std::uintptr_t granule_mask(std::size_t granule) {
  return ~(static_cast<std::uintptr_t>(granule) - 1);
}

// Invokes fn(base_address) for every granule the access [p, p+bytes) touches
// (bytes == 0 behaves as 1). This is the one definition of access splitting.
template <typename Fn>
inline void for_each_granule(const void* p, std::size_t bytes,
                             std::size_t granule, std::uintptr_t mask,
                             Fn&& fn) {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t first = addr & mask;
  const std::uintptr_t last = (addr + (bytes ? bytes : 1) - 1) & mask;
  for (std::uintptr_t a = first; a <= last; a += granule) fn(a);
}

}  // namespace frd
