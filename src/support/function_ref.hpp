// Non-owning callable reference (the shape of std::function_ref, C++26).
//
// The shadow-store protocol API (shadow/store.hpp) takes per-reader
// callbacks on its one-virtual-call-per-access hot path; std::function would
// risk a heap allocation per access for captures past the SBO limit, and a
// template parameter cannot cross a virtual interface. function_ref is two
// words, trivially copyable, and never allocates. The referenced callable
// must outlive the call (always true here: callers pass stack lambdas into
// calls that return before the lambda dies).
#pragma once

#include <type_traits>
#include <utility>

namespace frd {

template <typename Sig>
class function_ref;

template <typename R, typename... Args>
class function_ref<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, function_ref> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  function_ref(F&& f) noexcept  // NOLINT: implicit by design, like the std one
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace frd
