// xoshiro256** PRNG (Blackman & Vigna). Deterministic across platforms,
// unlike std::mt19937 + distributions, which keeps the fuzzer's failure
// seeds reproducible everywhere and keeps synthetic workload generation
// (dedup corpus, heartwall phantoms) stable between runs.
#pragma once

#include <cstdint>

namespace frd {

class prng {
 public:
  explicit prng(std::uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Rejection-free modulo bias is irrelevant for our
  // 64-bit range vs. small bounds, but we use Lemire's trick anyway.
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Bernoulli with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace frd
