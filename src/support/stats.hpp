// Small statistics helpers for the benchmark harnesses: the paper reports
// the average of 5 runs (with <5% stddev) and geometric-mean overheads
// across benchmarks (§6).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace frd {

inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

// Fastest observation — for timing samples, the run least disturbed by the
// host (scheduler noise only ever adds time).
inline double minimum(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return *std::min_element(xs.begin(), xs.end());
}

// Middle observation (mean of the central pair for even sizes) — the
// noise-robust center the benchmark tables report alongside the mean.
inline double median(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

// Relative standard deviation (as a fraction of the mean).
inline double rel_stddev(const std::vector<double>& xs) {
  const double m = mean(xs);
  return m > 0 ? stddev(xs) / m : 0;
}

}  // namespace frd
