// Wall-clock timing for the benchmark harnesses (the paper reports seconds
// of wall time per configuration).
#pragma once

#include <chrono>

namespace frd {

class wall_timer {
 public:
  wall_timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace frd
