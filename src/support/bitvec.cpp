#include "support/bitvec.hpp"

#include <algorithm>

namespace frd {

void bitvec::or_with(const bitvec& other) {
  if (other.nbits_ > nbits_) resize(other.nbits_);
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) words_[i] |= other.words_[i];
}

bool bitvec::intersects(const bitvec& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i)
    if (words_[i] & other.words_[i]) return true;
  return false;
}

std::size_t bitvec::count() const {
  std::size_t total = 0;
  for (word w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
  return total;
}

bool bitvec::any() const {
  for (word w : words_)
    if (w != 0) return true;
  return false;
}

bool bitvec::operator==(const bitvec& other) const {
  const std::size_t n = std::max(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    word a = i < words_.size() ? words_[i] : 0;
    word b = i < other.words_.size() ? other.words_[i] : 0;
    if (a != b) return false;
  }
  return true;
}

}  // namespace frd
