#include "corpus/manifest.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "corpus/parse.hpp"

namespace frd::corpus {

namespace {

using detail::parse_u64;

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

detect::future_support futures_from(const std::string& s,
                                    const std::string& context) {
  if (s == "structured") return detect::future_support::structured;
  if (s == "general") return detect::future_support::general;
  throw corpus_error("manifest: futures must be 'structured' or 'general', "
                     "got '" + s + "' in " + context);
}

}  // namespace

std::string_view to_string(entry_kind k) {
  switch (k) {
    case entry_kind::paper_kernel: return "paper-kernel";
    case entry_kind::adversarial: return "adversarial";
    case entry_kind::fuzz: return "fuzz";
  }
  return "?";
}

entry_kind entry_kind_from(std::string_view s) {
  if (s == "paper-kernel") return entry_kind::paper_kernel;
  if (s == "adversarial") return entry_kind::adversarial;
  if (s == "fuzz") return entry_kind::fuzz;
  throw corpus_error("manifest: unknown entry kind '" + std::string(s) + "'");
}

const corpus_entry* manifest::find(std::string_view name) const {
  for (const corpus_entry& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

void write_manifest(std::ostream& out, const manifest& m) {
  out << "# FutureRD trace corpus v1\n"
      << "# Regenerate with: frd-corpus generate --dir corpus\n"
      << "# Re-derive goldens only (traces fixed): frd-corpus regold\n";
  for (const corpus_entry& e : m.entries) {
    out << "\nentry " << e.name << "\n";
    out << "kind = " << to_string(e.kind) << "\n";
    out << "program = " << e.program << "\n";
    out << "futures = "
        << (e.futures == detect::future_support::general ? "general"
                                                         : "structured")
        << "\n";
    out << "granule = " << e.granule << "\n";
    out << "seed = " << e.seed << "\n";
    out << "trace = " << e.trace_file << "\n";
    out << "golden = " << e.golden_file << "\n";
    if (!e.provenance.empty()) out << "provenance = " << e.provenance << "\n";
  }
}

manifest read_manifest(std::istream& in) {
  manifest m;
  corpus_entry* cur = nullptr;
  std::string line;
  std::uint64_t line_no = 0;
  auto finish_entry = [&m](const corpus_entry* e) {
    if (e == nullptr) return;
    if (e->trace_file.empty() || e->golden_file.empty()) {
      throw corpus_error("manifest: entry '" + e->name +
                         "' is missing its trace/golden file names");
    }
  };
  while (std::getline(in, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const std::string ctx =
        "manifest line " + std::to_string(line_no) + " ('" + t + "')";
    if (t.rfind("entry ", 0) == 0) {
      finish_entry(cur);
      corpus_entry e;
      e.name = trim(t.substr(6));
      if (e.name.empty()) throw corpus_error("manifest: empty entry name, " + ctx);
      if (m.find(e.name) != nullptr) {
        throw corpus_error("manifest: duplicate entry '" + e.name + "'");
      }
      m.entries.push_back(std::move(e));
      cur = &m.entries.back();
      continue;
    }
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos || cur == nullptr) {
      throw corpus_error("manifest: expected 'entry NAME' or 'key = value', " +
                         ctx);
    }
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key == "kind") {
      cur->kind = entry_kind_from(value);
    } else if (key == "program") {
      cur->program = value;
    } else if (key == "futures") {
      cur->futures = futures_from(value, ctx);
    } else if (key == "granule") {
      cur->granule = static_cast<std::uint32_t>(parse_u64(value, ctx));
    } else if (key == "seed") {
      cur->seed = parse_u64(value, ctx);
    } else if (key == "trace") {
      cur->trace_file = value;
    } else if (key == "golden") {
      cur->golden_file = value;
    } else if (key == "provenance") {
      cur->provenance = value;
    } else {
      throw corpus_error("manifest: unknown key '" + key + "', " + ctx);
    }
  }
  finish_entry(cur);
  if (m.entries.empty()) {
    throw corpus_error("manifest: no entries (not a corpus manifest?)");
  }
  return m;
}

manifest load_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw corpus_error("cannot open manifest '" + path + "'");
  return read_manifest(in);
}

golden_report load_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw corpus_error("cannot open golden '" + path + "'");
  return read_golden(in);
}

}  // namespace frd::corpus
