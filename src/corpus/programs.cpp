#include "corpus/programs.hpp"

#include <array>
#include <functional>

#include "api/session.hpp"
#include "bench_suite/bst.hpp"
#include "bench_suite/dedup.hpp"
#include "bench_suite/heartwall.hpp"
#include "bench_suite/lcs.hpp"
#include "bench_suite/mm.hpp"
#include "bench_suite/sw.hpp"
#include "graph/fuzz.hpp"
#include "image/phantom.hpp"
#include "image/tracking.hpp"
#include "support/check.hpp"

namespace frd::corpus {

namespace {

using detect::hooks::active;

// Shared cells of the adversarial and fuzz shapes. Cache-line aligned so the
// cell→granule grouping is a property of the program, not of where the
// linker happened to place the array (normalized traces stay byte-identical
// across builds).
alignas(64) std::array<int, 96> g_cells;

// ------------------------------------------------------- paper kernels ----

void run_lcs(session& s, std::uint64_t seed, bool structured) {
  const auto in = bench::make_lcs_input(24, seed);
  const int want = bench::lcs_reference(in);
  const int got = s.run([&](auto& rt) {
    return structured ? bench::lcs_structured<active>(rt, in, 8)
                      : bench::lcs_general<active>(rt, in, 8);
  });
  FRD_CHECK_MSG(got == want, "lcs kernel miscomputed while recording");
}

void run_sw(session& s, std::uint64_t seed) {
  const auto in = bench::make_sw_input(16, seed);
  const std::int32_t want = bench::sw_reference(in);
  const std::int32_t got = s.run([&](auto& rt) {
    return bench::sw_structured<active>(rt, in, 8);
  });
  FRD_CHECK_MSG(got == want, "sw kernel miscomputed while recording");
}

void run_bst(session& s, std::uint64_t seed, bool structured) {
  auto in = bench::make_bst_input(40, 40, seed);
  const std::size_t want_n = in.n1 + in.n2;
  const std::int64_t want_sum =
      bench::bst_key_sum(in.t1) + bench::bst_key_sum(in.t2);
  bench::bst_node* merged = s.run([&](auto& rt) {
    return structured ? bench::bst_structured<active>(rt, in, 3)
                      : bench::bst_general<active>(rt, in, 3);
  });
  FRD_CHECK_MSG(bench::bst_count(merged) == want_n &&
                    bench::bst_is_search_tree(merged) &&
                    bench::bst_key_sum(merged) == want_sum,
                "bst merge miscomputed while recording");
}

// dedup's two-stage pipeline (§6): parallel chunk+fingerprint futures, then
// an ordered dedup/compress stage chained through single-touch futures. The
// compressor stays uninstrumented (CH = hooks::none), reproducing the
// paper's uninstrumentable-library caveat and keeping the trace repro-sized.
void run_dedup(session& s, std::uint64_t seed) {
  const auto in = bench::make_dedup_corpus(2048, 50, seed);
  const auto want = bench::dedup_reference(in, 512);
  const auto got = s.run([&](auto& rt) {
    return bench::dedup_pipeline<active, detect::hooks::none>(rt, in, 512);
  });
  FRD_CHECK_MSG(got == want, "dedup pipeline miscomputed while recording");
}

// heartwall's per-point tracking pipeline in its general-futures form (§6):
// tracker (t, p) joins the frame-(t-1) handles of p and both neighbours, so
// every handle is touched up to three times — the multi-touch shape that
// motivated general futures. Small frames and radii keep the template scans
// repro-sized. Validated against the uninstrumented run of the same kernel:
// instrumentation must not perturb tracking.
void run_heartwall(session& s, std::uint64_t seed) {
  auto in = bench::make_heartwall_input(40, 40, 4, 3, seed);
  in.tmpl_rad = 1;
  in.search_rad = 2;
  rt::serial_runtime plain;
  const auto want = bench::heartwall_general<detect::hooks::none>(plain, in);
  const auto got = s.run([&](auto& rt) {
    return bench::heartwall_general<active>(rt, in);
  });
  FRD_CHECK_MSG(got.size() == want.size(),
                "heartwall tracked a different point count while recording");
  for (std::size_t p = 0; p < got.size(); ++p) {
    FRD_CHECK_MSG(got[p].x == want[p].x && got[p].y == want[p].y,
                  "heartwall tracking diverged while recording");
  }
}

// mm's serialized k-partial chains (§6): one future chain per C block,
// (n/B)³ futures in total — the paper's clearest k² stress at repro scale.
void run_mm(session& s, std::uint64_t seed) {
  const auto in = bench::make_mm_input(12, seed);
  const auto want = bench::mm_reference(in);
  const auto got = s.run([&](auto& rt) {
    return bench::mm_structured<active>(rt, in, 4);
  });
  FRD_CHECK_MSG(got == want, "mm kernel miscomputed while recording");
}

// The same kernel an order of magnitude up (ROADMAP "corpus at scale"):
// n=28 with 7-wide blocks emits ~55k access events in ~784-access runs per
// future body — runs that overflow the player's default 256-entry batch
// capacity, so multi-page batches and the query plane's dedup path are
// exercised for real, not just at repro size.
void run_mm_large(session& s, std::uint64_t seed) {
  const auto in = bench::make_mm_input(28, seed);
  const auto want = bench::mm_reference(in);
  const auto got = s.run([&](auto& rt) {
    return bench::mm_structured<active>(rt, in, 7);
  });
  FRD_CHECK_MSG(got == want, "mm-large kernel miscomputed while recording");
}

// The same kernel again at container scale (ROADMAP "corpus at 100×"):
// n=80 with 16-wide blocks is ~1.1M access events through 125 future
// chains — the first corpus entry whose artifact only stays reviewable as
// a compressed .frdtz container. Strand count stays in the hundreds, so
// the quadratic reference oracle still replays it in test time.
void run_mm_xl(session& s, std::uint64_t seed) {
  const auto in = bench::make_mm_input(80, seed);
  const auto want = bench::mm_reference(in);
  const auto got = s.run([&](auto& rt) {
    return bench::mm_structured<active>(rt, in, 16);
  });
  FRD_CHECK_MSG(got == want, "mm-xl kernel miscomputed while recording");
}

// Heartwall's tracking pipeline rebuilt in its STRUCTURED form on the raw
// image substrate (phantom + track_point — unused by any corpus entry until
// now): one single-touch future chain per sample point, each link tracking
// the point one frame forward from where the previous link left it. A
// monitor spawn reads every point's published position while the chains are
// still running — those granules race; the end-of-run reads are joined
// through the chain tails and do not. ~1.25M access events from the
// template-scan inner loops.
void run_tracking_xl(session& s, std::uint64_t seed) {
  constexpr int kFrames = 26, kTmplRad = 2, kSearchRad = 2;
  constexpr std::size_t kPoints = 40;
  const image::phantom_sequence seq(64, 64, static_cast<int>(kPoints), seed);
  std::vector<image::frame> frames;
  frames.reserve(kFrames);
  for (int t = 0; t < kFrames; ++t) frames.push_back(seq.make_frame(t));
  const std::vector<image::point> start = seq.initial_points();
  FRD_CHECK_MSG(start.size() == kPoints,
                "phantom produced an unexpected point count");

  std::vector<int> xs(kPoints), ys(kPoints);
  s.run([&](auto& rt) {
    using RT = std::decay_t<decltype(rt)>;
    rt.run([&] {
    std::vector<typename RT::template future_of<image::point>> chain(kPoints);
    for (std::size_t p = 0; p < kPoints; ++p) {
      chain[p] = rt.create_future([&, p] {
        xs[p] = start[p].x;
        ys[p] = start[p].y;
        s.write(&xs[p]);
        s.write(&ys[p]);
        return start[p];
      });
    }
    // The monitor races every chain's position writes (including the seed
    // writes above): 2*kPoints racy granules, deterministically.
    rt.spawn([&] {
      for (std::size_t p = 0; p < kPoints; ++p) {
        s.read(&xs[p]);
        s.read(&ys[p]);
      }
    });
    for (int t = 1; t < kFrames; ++t) {
      for (std::size_t p = 0; p < kPoints; ++p) {
        auto prev = std::move(chain[p]);
        chain[p] = rt.create_future(
            [&, t, p, prev = std::move(prev)]() mutable {
              const image::point at = prev.get();  // single touch: structured
              const image::point next = image::track_point<active>(
                  frames[static_cast<std::size_t>(t - 1)],
                  frames[static_cast<std::size_t>(t)], at, kTmplRad,
                  kSearchRad);
              xs[p] = next.x;
              ys[p] = next.y;
              s.write(&xs[p]);
              s.write(&ys[p]);
              return next;
            });
      }
    }
    for (std::size_t p = 0; p < kPoints; ++p) {
      const image::point end = chain[p].get();
      s.read(&xs[p]);  // ordered through the tail get: race-free
      s.read(&ys[p]);
      FRD_CHECK_MSG(frames[0].contains(end.x, end.y),
                    "tracking-xl walked a point off the frame");
    }
    rt.sync();  // joins the monitor
    });
  });
}

// The LCS wavefront at sampling-frontier scale (PR 9): n=288 with 16-wide
// tiles is an 18x18 structured create-down/get-left grid over ~370k hooked
// DP accesses — big enough that the sampling fast path has real work to
// skip, small enough to replay in test time. Unlike lcs-structured, a
// monitor spawn reads the DP diagonal at stride 9 while the wavefront is
// still sweeping, so the entry carries 32 deterministic racy granules for
// the frontier's detection-fraction scoring (an all-race-free entry would
// score every sample rate at fraction 1.0 and say nothing).
void run_wavefront_large(session& s, std::uint64_t seed) {
  constexpr std::size_t kN = 288, kBase = 16, kStride = 9;
  const auto in = bench::make_lcs_input(kN, seed);
  const int want = bench::lcs_reference(in);
  const bench::tile_grid g(kN, kBase);
  std::vector<std::int32_t> d((g.n + 1) * (g.n + 1), 0);
  const std::size_t row = g.n + 1;
  int got = -1;
  s.run([&](auto& rt) {
    using RT = std::decay_t<decltype(rt)>;
    rt.run([&] {
    std::vector<typename RT::template future_of<int>> fut(g.tiles * g.tiles);
    std::function<void(std::size_t, std::size_t)> make_tile =
        [&](std::size_t ti, std::size_t tj) {
          fut[g.index(ti, tj)] = rt.create_future([&, ti, tj]() -> int {
            if (tj > 0) fut[g.index(ti, tj - 1)].get();
            bench::detail::lcs_tile<active>(in, d, g, ti, tj);
            if (ti + 1 < g.tiles) make_tile(ti + 1, tj);
            return 1;
          });
        };
    for (std::size_t tj = 0; tj < g.tiles; ++tj) make_tile(0, tj);
    // The monitor stays parallel to every tile until the closing sync, so
    // each diagonal read races exactly the one write of its DP cell.
    rt.spawn([&] {
      for (std::size_t i = kStride; i <= g.n; i += kStride) {
        s.read(&d[i * row + i]);
      }
    });
    for (std::size_t ti = 0; ti < g.tiles; ++ti)
      fut[g.index(ti, g.tiles - 1)].get();
    rt.sync();  // joins the monitor
    got = d[g.n * row + g.n];
    });
  });
  FRD_CHECK_MSG(got == want,
                "wavefront-large kernel miscomputed while recording");
}

// --------------------------------------------------- adversarial shapes ----

// Deep get-chain (§5 stress): future i joins future i-1 inside its own body,
// building the longest possible chain of non-local joins; main then
// re-touches a spread of handles (multi-touch ⇒ general). A spawn races the
// chain on cells[5] (future-vs-spawn write/write) and on cells[64]
// (spawn-vs-continuation).
void run_deep_get_chain(session& s, std::uint64_t /*seed*/) {
  constexpr int kChain = 48;
  s.run([&](auto& rt) {
    using RT = std::decay_t<decltype(rt)>;
    rt.run([&] {
    // Pre-sized: body i reads slot i-1, which main wrote before creating
    // future i (a creation edge) — growth during the loop would race the
    // in-body reads under a parallel runtime.
    std::vector<typename RT::template future_of<int>> chain(kChain);
    chain[0] = rt.create_future([&] {
      s.write(&g_cells[0]);
      return 0;
    });
    for (int i = 1; i < kChain; ++i) {
      chain[i] = rt.create_future([&, i] {
        chain[static_cast<std::size_t>(i - 1)].get();
        s.read(&g_cells[i - 1]);
        s.write(&g_cells[i]);
        return i;
      });
    }
    rt.spawn([&] {
      s.write(&g_cells[5]);   // races chain future #5's write
      s.write(&g_cells[64]);  // races main's continuation below
    });
    s.write(&g_cells[64]);
    rt.sync();
    // Fan over the chain with strided re-touches: every handle below the
    // stride point is touched twice (once by its successor, once here).
    for (int i = 0; i < kChain; i += 7) chain[i].get();
    chain[kChain - 1].get();
    s.read(&g_cells[kChain - 1]);  // ordered: joined through the chain
    });
  });
}

// Wide future fan-in: many sibling futures, pairwise parallel, all writing
// one shared granule (one racy granule, Θ(width²) parallel pairs — the
// reader-list/purge pressure case) before main joins them all; two handles
// are then touched a second time, putting the trace in the general class.
void run_wide_fanin(session& s, std::uint64_t /*seed*/) {
  constexpr int kWidth = 40;
  s.run([&](auto& rt) {
    using RT = std::decay_t<decltype(rt)>;
    rt.run([&] {
    // A reader future created first: its read stays parallel to every
    // sibling writer until main joins it at the very end.
    auto reader = rt.create_future([&] {
      s.read(&g_cells[80]);
      return -1;
    });
    // Only the main strand touches the handle container (bodies never read
    // their siblings' slots), so growth is fine under any runtime.
    std::vector<typename RT::template future_of<int>> futs;
    futs.reserve(kWidth);
    for (int i = 0; i < kWidth; ++i) {
      futs.push_back(rt.create_future([&, i] {
        s.write(&g_cells[i]);   // private: race-free
        s.write(&g_cells[80]);  // shared: races every sibling and the reader
        return i;
      }));
    }
    for (int i = 0; i < kWidth; ++i) {
      futs[i].get();
      s.read(&g_cells[i]);  // ordered by the get just above
    }
    futs[0].get();           // second touches: general futures
    futs[kWidth / 2].get();
    reader.get();
    s.write(&g_cells[80]);   // ordered after every sibling: race-free
    });
  });
}

// Purge stress (§3): rounds of spawn-R-readers / sync / write grow the
// shadow reader list and then purge it once the readers become ordered;
// a future-flavored variant does the same through create/get. The tail
// leaves one reader unsynced, so exactly cells[0] is racy.
void run_purge_stress(session& s, std::uint64_t /*seed*/) {
  constexpr int kReaders = 6, kRounds = 5, kCells = 4;
  s.run([&](auto& rt) {
    rt.run([&] {
    for (int round = 0; round < kRounds; ++round) {
      for (int c = 0; c < kCells; ++c) {
        for (int r = 0; r < kReaders; ++r) {
          rt.spawn([&, c] { s.read(&g_cells[c]); });
        }
        rt.sync();
        s.write(&g_cells[c]);  // every reader is ordered: purge, no race
      }
    }
    for (int c = 0; c < kCells; ++c) {
      auto f = rt.create_future([&, c] {
        s.read(&g_cells[c]);
        return c;
      });
      f.get();               // single touch, creator precedes getter
      s.write(&g_cells[c]);  // ordered through the get: purge, no race
    }
    rt.spawn([&] { s.read(&g_cells[0]); });
    s.write(&g_cells[0]);  // reader still parallel: the one real race
    rt.sync();
    });
  });
}

// Sync-heavy structured recursion: every body runs two sync spans (two
// sibling subtrees, then a straggler leaf). Sibling subtrees at depth d both
// write cells[d] after their internal syncs, and siblings are parallel, so
// cells[0..depth-1] are racy while main's cells[depth] is not.
void run_sync_heavy(session& s, std::uint64_t /*seed*/) {
  constexpr int kDepth = 5;
  s.run([&](auto& rt) {
    rt.run([&] {
    std::function<void(int)> rec = [&](int d) {
      if (d == 0) {
        s.read(&g_cells[16]);  // read-shared by every leaf: race-free
        return;
      }
      rt.spawn([&, d] { rec(d - 1); });
      rt.spawn([&, d] { rec(d - 1); });
      rt.sync();
      s.write(&g_cells[d - 1]);  // parallel with the sibling subtree's write
      rt.spawn([&, d] { s.read(&g_cells[d - 1]); });
      rt.sync();  // second span: the straggler joins before the body returns
    };
    rec(kDepth);
    s.write(&g_cells[kDepth]);  // after the implicit join: race-free
    });
  });
}

// ------------------------------------------------------------- fuzzing ----

void run_fuzz(session& s, std::uint64_t seed, bool structured) {
  graph::fuzz_config cfg;
  cfg.seed = seed;
  cfg.structured = structured;
  cfg.max_depth = 6;
  cfg.max_actions_per_body = 12;
  cfg.n_cells = 16;
  cfg.max_futures = 64;
  if (!structured) {
    cfg.max_touches_per_future = 6;  // §5 multi-touch pressure
    cfg.w_get = 5;
  }
  const graph::fuzz_plan plan = graph::plan_fuzz(cfg);
  s.run([&](auto& rt) {
    graph::run_fuzz_plan(rt, plan, [&s](std::uint32_t cell, bool write) {
      if (write) {
        s.write(&g_cells[cell]);
      } else {
        s.read(&g_cells[cell]);
      }
    });
  });
}

}  // namespace

const std::vector<corpus_program>& corpus_programs() {
  using fs = detect::future_support;
  static const std::vector<corpus_program> progs = {
      {"lcs-structured", fs::structured,
       "§6 LCS tiled wavefront (n=24, B=8): create-edge down, get left",
       [](session& s, std::uint64_t seed) { run_lcs(s, seed, true); }},
      {"lcs-general", fs::general,
       "§6 LCS tiled wavefront (n=24, B=8): one multi-touch future per tile",
       [](session& s, std::uint64_t seed) { run_lcs(s, seed, false); }},
      {"sw-structured", fs::structured,
       "§6 Smith-Waterman wavefront (n=16, B=8), Θ(n³) work per future",
       [](session& s, std::uint64_t seed) { run_sw(s, seed); }},
      {"bst-structured", fs::structured,
       "§6 BRM pipelined BST merge (40+40 keys, cutoff 3), top-down resolve",
       [](session& s, std::uint64_t seed) { run_bst(s, seed, true); }},
      {"bst-general", fs::general,
       "§6 BRM pipelined BST merge (40+40 keys, cutoff 3), bottom-up resolve",
       [](session& s, std::uint64_t seed) { run_bst(s, seed, false); }},
      {"dedup-structured", fs::structured,
       "§6 dedup two-stage pipeline (2 KiB corpus, 512 B fragments), "
       "uninstrumented compressor",
       run_dedup},
      {"heartwall-general", fs::general,
       "§6 heartwall neighbour-smoothed tracking (40x40, 4 points, 3 "
       "frames): handles touched up to 3x",
       run_heartwall},
      {"mm-structured", fs::structured,
       "§6 blocked mm without temporaries (n=12, B=4): one future chain per "
       "C block, (n/B)^3 futures",
       run_mm},
      {"mm-structured-large", fs::structured,
       "§6 blocked mm at ~10x corpus scale (n=28, B=7): ~784-access runs "
       "that overflow the replay batch capacity",
       run_mm_large},
      {"mm-structured-xl", fs::structured,
       "§6 blocked mm at container scale (n=80, B=16): ~1.1M events, "
       "stored as a .frdtz container",
       run_mm_xl},
      {"tracking-structured-xl", fs::structured,
       "§6 heartwall tracking, structured chains on the raw phantom "
       "substrate (40 points x 25 frame steps): ~1.25M events, .frdtz",
       run_tracking_xl},
      {"wavefront-structured-large", fs::structured,
       "§6 LCS wavefront at frontier scale (n=288, B=16, 18x18 tiles) with "
       "a monitor spawn racing the DP diagonal: ~370k events, .frdtz",
       run_wavefront_large},
      {"deep-get-chain", fs::general,
       "48-deep chain of in-body gets with strided multi-touch re-joins",
       run_deep_get_chain},
      {"wide-fanin", fs::general,
       "40 sibling futures racing on one shared granule, joined by one strand",
       run_wide_fanin},
      {"purge-stress", fs::structured,
       "reader-list grow/purge rounds via sync and via single-touch gets",
       run_purge_stress},
      {"sync-heavy", fs::structured,
       "two sync spans per body over a depth-5 spawn tree, sibling races",
       run_sync_heavy},
      {"fuzz-structured", fs::structured,
       "graph::fuzzer, structured discipline (depth 6, 64 futures)",
       [](session& s, std::uint64_t seed) { run_fuzz(s, seed, true); }},
      {"fuzz-general", fs::general,
       "graph::fuzzer, general futures, max_touches_per_future=6",
       [](session& s, std::uint64_t seed) { run_fuzz(s, seed, false); }},
  };
  return progs;
}

const corpus_program* find_program(std::string_view name) {
  for (const corpus_program& p : corpus_programs())
    if (p.name == name) return &p;
  return nullptr;
}

}  // namespace frd::corpus
