#include "corpus/runner.hpp"

#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "api/session.hpp"
#include "container/writer.hpp"
#include "corpus/programs.hpp"
#include "detect/registry.hpp"
#include "trace/codec.hpp"

namespace frd::corpus {

std::vector<std::string> eligible_backends(detect::future_support needed) {
  std::vector<std::string> out;
  const auto& reg = detect::backend_registry::instance();
  for (const std::string& name : reg.names()) {
    const detect::future_support have = reg.at(name).futures;
    if (have == detect::future_support::none) continue;
    if (needed == detect::future_support::general &&
        have == detect::future_support::structured) {
      continue;
    }
    out.push_back(name);
  }
  return out;
}

trace::memory_trace normalize_addresses(trace::memory_trace& raw) {
  trace::memory_trace out(raw.header());
  const std::uint64_t granule = raw.header().granule;
  std::unordered_map<std::uint64_t, std::uint64_t> remap;
  raw.rewind();
  trace::trace_event e;
  while (raw.next(e)) {
    if (e.kind == trace::event_kind::read ||
        e.kind == trace::event_kind::write) {
      const auto [it, fresh] = remap.try_emplace(
          e.access.addr, kNormalizedBase + remap.size() * granule);
      (void)fresh;
      e.access.addr = it->second;
    }
    out.put(e);
  }
  raw.rewind();
  return out;
}

trace::memory_trace record_entry(const corpus_entry& e) {
  const corpus_program* prog = find_program(e.program);
  if (prog == nullptr) {
    throw corpus_error("corpus entry '" + e.name + "' names unknown program '" +
                       e.program + "'");
  }
  trace::memory_trace raw(
      trace::trace_header{trace::kTraceVersion, e.granule});
  // multibags+ accepts both program classes, so every recording runs under
  // the paper's §5 algorithm while the tape captures the raw stream.
  session s(session::options{.backend = "multibags+", .granule = e.granule});
  s.record_to(raw);
  prog->run(s, e.seed);
  return normalize_addresses(raw);
}

namespace {

// Replay outcome in golden_report shape, so diffing is uniform.
golden_report replay_report(trace::memory_trace& tape,
                            const std::string& backend,
                            const std::string& store, unsigned workers = 1) {
  tape.rewind();
  session s(session::options{.backend = backend,
                             .granule = tape.header().granule,
                             .shadow_store = store,
                             .detect_workers = workers});
  const std::uint64_t events = s.replay(tape);
  tape.rewind();
  golden_report r;
  r.granule = tape.header().granule;
  r.events = events;
  r.accesses = s.access_count();
  r.gets = s.get_count();
  r.violations = s.structured_violations();
  for (const std::uintptr_t a : s.report().racy_granules()) {
    r.racy_granules.insert(static_cast<std::uint64_t>(a));
  }
  return r;
}

}  // namespace

golden_report gold_from_trace(trace::memory_trace& tape,
                              detect::future_support futures) {
  // Goldens are derived on the default store; cross-store conformance is
  // what pins the other layouts to the same answers.
  const std::string store{shadow::kDefaultStore};
  golden_report g = replay_report(tape, "reference", store);
  if (futures == detect::future_support::structured) {
    // The reference backend does not count discipline violations; anchor
    // that number with MultiBags, the §4 algorithm that defines it.
    g.violations = replay_report(tape, "multibags", store).violations;
  } else {
    g.violations = 0;  // no violation-counting backend replays general traces
  }
  return g;
}

std::vector<std::string> check_backend(trace::memory_trace& tape,
                                       const golden_report& golden,
                                       const std::string& backend,
                                       const std::string& store,
                                       unsigned workers) {
  const bool counts =
      detect::backend_registry::instance().at(backend).counts_violations;
  golden_report actual;
  try {
    actual = replay_report(tape, backend, store, workers);
  } catch (const std::exception& ex) {
    return {std::string("replay threw: ") + ex.what()};
  }
  return diff_goldens(golden, actual, counts);
}

trace::memory_trace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw corpus_error("cannot open trace '" + path + "'");
  // Auto-detects flat binary, JSONL, and .frdtz containers.
  auto reader = trace::open_source(in);
  trace::memory_trace tape(reader->header());
  trace::trace_event e;
  while (reader->next(e)) tape.put(e);
  return tape;
}

void save_trace(const std::string& path, trace::memory_trace& tape) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw corpus_error("cannot open trace '" + path + "' for writing");
  // Entries named *.frdtz are stored compressed; the container wraps the
  // same byte stream trace_writer would emit.
  std::unique_ptr<trace::trace_sink> w;
  if (path.size() >= 6 && path.compare(path.size() - 6, 6, ".frdtz") == 0) {
    w = std::make_unique<container::container_writer>(out, tape.header());
  } else {
    w = std::make_unique<trace::trace_writer>(out, tape.header());
  }
  tape.rewind();
  trace::trace_event e;
  while (tape.next(e)) w->put(e);
  tape.rewind();
  w->finish();
  out.close();
  if (!out) throw corpus_error("writing trace '" + path + "' failed");
}

void save_golden(const std::string& path, const golden_report& g) {
  std::ofstream out(path);
  if (!out) throw corpus_error("cannot open golden '" + path + "' for writing");
  write_golden(out, g);
  out.close();
  if (!out) throw corpus_error("writing golden '" + path + "' failed");
}

manifest builtin_manifest() {
  struct spec {
    const char* name;
    entry_kind kind;
    std::uint64_t seed;
    // Million-event entries are stored as .frdtz containers; a flat FRDT
    // artifact at that scale would dwarf the rest of the corpus combined.
    bool compressed = false;
  };
  // Program name == entry name: the builtin corpus records each registered
  // program exactly once, at a fixed seed.
  static constexpr spec kSpecs[] = {
      {"lcs-structured", entry_kind::paper_kernel, 1},
      {"lcs-general", entry_kind::paper_kernel, 2},
      {"sw-structured", entry_kind::paper_kernel, 3},
      {"bst-structured", entry_kind::paper_kernel, 4},
      {"bst-general", entry_kind::paper_kernel, 5},
      {"dedup-structured", entry_kind::paper_kernel, 6},
      {"heartwall-general", entry_kind::paper_kernel, 7},
      {"mm-structured", entry_kind::paper_kernel, 8},
      {"mm-structured-large", entry_kind::paper_kernel, 9},
      {"mm-structured-xl", entry_kind::paper_kernel, 10, true},
      {"tracking-structured-xl", entry_kind::paper_kernel, 11, true},
      {"wavefront-structured-large", entry_kind::paper_kernel, 12, true},
      {"deep-get-chain", entry_kind::adversarial, 0},
      {"wide-fanin", entry_kind::adversarial, 0},
      {"purge-stress", entry_kind::adversarial, 0},
      {"sync-heavy", entry_kind::adversarial, 0},
      {"fuzz-structured", entry_kind::fuzz, 23},
      {"fuzz-general", entry_kind::fuzz, 29},
  };
  manifest m;
  for (const spec& sp : kSpecs) {
    const corpus_program* prog = find_program(sp.name);
    if (prog == nullptr) {
      throw corpus_error(std::string("builtin corpus names unknown program '") +
                         sp.name + "'");
    }
    corpus_entry e;
    e.name = sp.name;
    e.kind = sp.kind;
    e.program = sp.name;
    e.futures = prog->futures;
    e.granule = 4;
    e.seed = sp.seed;
    e.trace_file = e.name + (sp.compressed ? ".frdtz" : ".frdt");
    e.golden_file = e.name + ".golden";
    e.provenance = prog->description;
    m.entries.push_back(std::move(e));
  }
  return m;
}

verify_result verify_corpus(const manifest& m, const std::string& dir,
                            std::string_view only_backend,
                            std::string_view only_store) {
  verify_result out;
  const std::vector<std::string> stores =
      shadow::store_registry::instance().names();
  for (const corpus_entry& e : m.entries) {
    trace::memory_trace tape;
    golden_report golden;
    try {
      tape = load_trace(dir + "/" + e.trace_file);
      golden = load_golden(dir + "/" + e.golden_file);
    } catch (const std::exception& ex) {
      out.failures.push_back(
          {e.name, "<corpus artifact>", "<any>", {ex.what()}});
      continue;
    }
    if (tape.header().granule != e.granule) {
      out.failures.push_back(
          {e.name,
           "<corpus artifact>",
           "<any>",
           {"manifest says granule " + std::to_string(e.granule) +
            " but the trace header says " +
            std::to_string(tape.header().granule)}});
      continue;
    }
    for (const std::string& backend : eligible_backends(e.futures)) {
      if (!only_backend.empty() && backend != only_backend) continue;
      for (const std::string& store : stores) {
        if (!only_store.empty() && store != only_store) continue;
        ++out.checks;
        std::vector<std::string> details =
            check_backend(tape, golden, backend, store);
        if (!details.empty()) {
          out.failures.push_back({e.name, backend, store, std::move(details)});
        }
      }
    }
  }
  if (out.checks == 0) {
    std::string why;
    if (!only_store.empty() &&
        shadow::store_registry::instance().find(only_store) == nullptr) {
      why = "store '" + std::string(only_store) +
            "' is not registered — 0 checks is not a pass";
    } else if (only_backend.empty()) {
      why = "no (entry, backend, store) triple was checked";
    } else {
      why = "backend '" + std::string(only_backend) +
            "' is eligible for no corpus entry (fork-join-only or "
            "structured-only vs. this corpus) — 0 checks is not a pass";
    }
    out.failures.push_back(
        {"<corpus>",
         std::string(only_backend.empty() ? "<none>" : only_backend),
         std::string(only_store.empty() ? "<any>" : only_store),
         {std::move(why)}});
  }
  return out;
}

}  // namespace frd::corpus
