// The corpus manifest: the single source of truth for what the checked-in
// corpus contains.
//
// corpus/MANIFEST is a line-oriented text file of entry blocks:
//
//   # FutureRD trace corpus v1
//   entry lcs-structured
//   kind = paper-kernel
//   program = lcs-structured
//   futures = structured
//   granule = 4
//   seed = 1
//   trace = lcs-structured.frdt
//   golden = lcs-structured.golden
//   provenance = §6 LCS tiled wavefront (n=24, B=8), create-edge down / get left
//
// Every consumer iterates the manifest — the conformance test, `frd-corpus
// verify`, and the replay-throughput bench — so adding an entry here (plus
// its trace and golden) automatically adds coverage everywhere.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/golden.hpp"
#include "detect/types.hpp"

namespace frd::corpus {

// Why a trace is in the corpus; informational (verify treats all alike).
enum class entry_kind : std::uint8_t {
  paper_kernel,  // a §6 benchmark kernel at repro scale
  adversarial,   // hand-built stress shape (get chains, fan-in, purges, ...)
  fuzz,          // seeded random program from graph::fuzzer
};

std::string_view to_string(entry_kind k);
entry_kind entry_kind_from(std::string_view s);  // throws corpus_error

struct corpus_entry {
  std::string name;      // unique key, also the default file stem
  entry_kind kind = entry_kind::adversarial;
  std::string program;   // corpus_program registry key (programs.hpp)
  // Weakest future support a backend needs to replay this trace soundly;
  // verify runs every registered backend at least this capable.
  detect::future_support futures = detect::future_support::structured;
  std::uint32_t granule = 4;
  std::uint64_t seed = 0;
  std::string trace_file;   // relative to the corpus directory
  std::string golden_file;  // relative to the corpus directory
  std::string provenance;   // free text for humans
};

struct manifest {
  std::vector<corpus_entry> entries;

  // Lookup by name; null when absent.
  const corpus_entry* find(std::string_view name) const;
};

void write_manifest(std::ostream& out, const manifest& m);

// Parses; throws corpus_error on malformed blocks, duplicate names, unknown
// keys, or entries missing their trace/golden file names.
manifest read_manifest(std::istream& in);

// Convenience file loaders; throw corpus_error when the file cannot be
// opened (the message names the path).
manifest load_manifest(const std::string& path);
golden_report load_golden(const std::string& path);

}  // namespace frd::corpus
