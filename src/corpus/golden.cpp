#include "corpus/golden.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "corpus/parse.hpp"

namespace frd::corpus {

namespace {

using detail::parse_u64;

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%06llx", static_cast<unsigned long long>(v));
  return buf;
}

// Lists up to `cap` granules, then "... (+N more)" — a divergence message
// must stay readable even when a backend misreports a whole array.
std::string granule_list(const std::vector<std::uint64_t>& v) {
  constexpr std::size_t cap = 8;
  std::string out;
  for (std::size_t i = 0; i < v.size() && i < cap; ++i) {
    if (i) out += ' ';
    out += hex(v[i]);
  }
  if (v.size() > cap) {
    out += " ... (+" + std::to_string(v.size() - cap) + " more)";
  }
  return out;
}

}  // namespace

void write_golden(std::ostream& out, const golden_report& g) {
  out << "# FutureRD golden race report v1\n";
  out << "granule " << g.granule << "\n";
  out << "events " << g.events << "\n";
  out << "accesses " << g.accesses << "\n";
  out << "gets " << g.gets << "\n";
  out << "violations " << g.violations << "\n";
  out << "racy_granules " << g.racy_granules.size() << "\n";
  for (const std::uint64_t a : g.racy_granules) out << "racy " << hex(a) << "\n";
}

golden_report read_golden(std::istream& in) {
  golden_report g;
  bool saw_granule = false, saw_count = false;
  std::uint64_t declared_racy = 0;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key, value;
    ls >> key >> value;
    if (value.empty()) {
      throw corpus_error("golden: line " + std::to_string(line_no) +
                         " has no value: '" + line + "'");
    }
    const std::string ctx = "golden line " + std::to_string(line_no);
    if (key == "granule") {
      g.granule = static_cast<std::uint32_t>(parse_u64(value, ctx));
      saw_granule = true;
    } else if (key == "events") {
      g.events = parse_u64(value, ctx);
    } else if (key == "accesses") {
      g.accesses = parse_u64(value, ctx);
    } else if (key == "gets") {
      g.gets = parse_u64(value, ctx);
    } else if (key == "violations") {
      g.violations = parse_u64(value, ctx);
    } else if (key == "racy_granules") {
      declared_racy = parse_u64(value, ctx);
      saw_count = true;
    } else if (key == "racy") {
      g.racy_granules.insert(parse_u64(value, ctx));
    } else {
      throw corpus_error("golden: unknown key '" + key + "' at " + ctx);
    }
  }
  if (!saw_granule || !saw_count) {
    throw corpus_error("golden: missing required keys (granule, racy_granules)");
  }
  if (declared_racy != g.racy_granules.size()) {
    throw corpus_error("golden: declares " + std::to_string(declared_racy) +
                       " racy granules but lists " +
                       std::to_string(g.racy_granules.size()) +
                       " — truncated or hand-edited?");
  }
  return g;
}

std::vector<std::string> diff_goldens(const golden_report& expected,
                                      const golden_report& actual,
                                      bool compare_violations) {
  std::vector<std::string> out;
  auto num = [&out](const char* what, std::uint64_t want, std::uint64_t got) {
    if (want != got) {
      out.push_back(std::string(what) + " mismatch: golden " +
                    std::to_string(want) + ", replay " + std::to_string(got));
    }
  };
  num("granule", expected.granule, actual.granule);
  num("trace event count", expected.events, actual.events);
  num("access count", expected.accesses, actual.accesses);
  num("get count", expected.gets, actual.gets);
  if (compare_violations) {
    num("structured-violation count", expected.violations, actual.violations);
  }

  std::vector<std::uint64_t> missing, unexpected;
  for (const std::uint64_t a : expected.racy_granules) {
    if (!actual.racy_granules.count(a)) missing.push_back(a);
  }
  for (const std::uint64_t a : actual.racy_granules) {
    if (!expected.racy_granules.count(a)) unexpected.push_back(a);
  }
  if (!missing.empty()) {
    out.push_back("missed " + std::to_string(missing.size()) +
                  " racy granule(s) the golden expects: " +
                  granule_list(missing));
  }
  if (!unexpected.empty()) {
    out.push_back("reported " + std::to_string(unexpected.size()) +
                  " granule(s) the golden says are race-free: " +
                  granule_list(unexpected));
  }
  return out;
}

}  // namespace frd::corpus
