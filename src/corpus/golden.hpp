// Golden race reports: the corpus's regression oracle.
//
// A golden is the backend-independent summary of replaying one corpus trace:
// the trace's intrinsic totals (events, accesses, gets) plus the sorted set
// of racy granules the paper's per-location guarantee (§3, Theorems 4.2/5.2)
// pins down exactly. Race *counts* beyond the granule set are deliberately
// absent — report().total() is a per-backend dedup detail — but the
// structured-discipline violation count is kept (it anchors MultiBags' §4
// violation counter on structured traces; 0 for general traces, where no
// violation-counting backend is eligible).
//
// The text format is line-oriented and sorted so goldens diff cleanly in
// git:
//
//   # FutureRD golden race report v1
//   granule 4
//   events 812
//   accesses 240
//   gets 12
//   violations 0
//   racy_granules 2
//   racy 0x101010
//   racy 0x101018
//
// Granule addresses are the corpus's *normalized* addresses (runner.hpp):
// first-touch order, machine-independent, so a golden regenerated anywhere
// is byte-identical.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace frd::corpus {

// Raised on malformed corpus artifacts (goldens, manifests): the corpus is a
// versioned, checked-in contract, so a parse problem is corruption, not a
// recoverable condition.
class corpus_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct golden_report {
  std::uint32_t granule = 4;
  std::uint64_t events = 0;    // total trace events
  std::uint64_t accesses = 0;  // read/write events (replay sink calls)
  std::uint64_t gets = 0;      // future touches (the paper's k)
  std::uint64_t violations = 0;  // structured-discipline violations
  std::set<std::uint64_t> racy_granules;

  bool operator==(const golden_report&) const = default;
};

// Serializes in the stable text format above.
void write_golden(std::ostream& out, const golden_report& g);

// Parses; throws corpus_error on malformed input (unknown keys, a racy count
// that disagrees with the racy lines, missing header).
golden_report read_golden(std::istream& in);

// Human-readable divergence between an expected golden and what a backend
// actually reported: one line per difference, naming the granules that are
// missing (expected racy, not reported) and unexpected (reported, not in the
// golden), plus any metadata mismatch. Empty means conformance.
std::vector<std::string> diff_goldens(const golden_report& expected,
                                      const golden_report& actual,
                                      bool compare_violations);

}  // namespace frd::corpus
