// Recordable corpus programs: paper kernels at repro scale, adversarial
// shapes, and seeded fuzz programs.
//
// Every program is deterministic given its seed and instruments all shared
// accesses through the session's hooks, so recording it yields a trace whose
// *normalized* form (runner.hpp) is machine-independent: shared state lives
// in cache-line-aligned static arrays (granule grouping fixed by alignment)
// or in heap blocks whose ≥8-byte allocation alignment keeps 4-byte granule
// boundaries stable. Kernel outputs are checked against their uninstrumented
// references at record time, so a corpus trace is never a recording of a
// miscomputation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "detect/types.hpp"

namespace frd {
class session;
}

namespace frd::corpus {

struct corpus_program {
  std::string name;
  // Weakest backend capability that can soundly replay a recording of this
  // program (drives which backends `verify` runs).
  detect::future_support futures;
  std::string description;
  // Runs the program to completion inside `s` (live or record mode).
  std::function<void(session& s, std::uint64_t seed)> run;
};

// The registry of all recordable programs.
const std::vector<corpus_program>& corpus_programs();

// Lookup by name; null when unknown.
const corpus_program* find_program(std::string_view name);

}  // namespace frd::corpus
