// Internal: strict unsigned-number parsing shared by the corpus text codecs
// (golden reports and the manifest). Accepts decimal and 0x-prefixed hex,
// rejects trailing junk, and throws corpus_error naming the caller's
// context — one definition so the two codecs cannot drift.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>

#include "corpus/golden.hpp"

namespace frd::corpus::detail {

inline std::uint64_t parse_u64(const std::string& s,
                               const std::string& context) {
  std::uint64_t v = 0;
  const char* b = s.data();
  const char* e = s.data() + s.size();
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    b += 2;
    base = 16;
  }
  const auto [p, ec] = std::from_chars(b, e, v, base);
  if (ec != std::errc{} || p != e) {
    throw corpus_error("bad number '" + s + "' in " + context);
  }
  return v;
}

}  // namespace frd::corpus::detail
