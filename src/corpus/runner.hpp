// Corpus engine: record programs into normalized traces, derive goldens,
// and check backends against them.
//
// Address normalization is what makes corpus artifacts diff-stable: raw
// recordings carry live granule base addresses (heap/ASLR-dependent), so
// record_entry remaps every distinct granule, in first-touch order, onto
// kNormalizedBase + i·granule. Detection only keys on granule identity, so
// the remap is behavior-preserving, and the same program + seed produces the
// same trace bytes on any machine — `frd-corpus generate` is reproducible
// and goldens are meaningful in a diff.
//
// Goldens are derived by replaying the normalized trace through the
// `reference` backend (the exact §3 oracle through the full access-history
// protocol); the structured-violation count comes from `multibags` on
// structured traces. check_backend() then holds any backend to the golden
// and reports *which granules* diverged, not just that something did.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/manifest.hpp"
#include "shadow/store.hpp"
#include "trace/event.hpp"

namespace frd::corpus {

inline constexpr std::uint64_t kNormalizedBase = 0x100000;

// Registered backend names able to replay a trace needing `needed` support
// (same filter as the differential replay tests): fork-join-only backends
// never qualify, structured-only backends qualify for structured traces.
std::vector<std::string> eligible_backends(detect::future_support needed);

// Rewrites access addresses onto the normalized range (in first-touch
// order); dag events pass through untouched.
trace::memory_trace normalize_addresses(trace::memory_trace& raw);

// Records `e.program` (seed, granule from the entry) under a recording
// session and returns the normalized trace. Throws corpus_error when the
// program is unknown.
trace::memory_trace record_entry(const corpus_entry& e);

// Derives the golden for a trace: replay through `reference` for the racy
// granule set, through `multibags` for the violation count when the trace is
// structured. This is the one definition of "what a golden says" — generate
// and regold both call it.
golden_report gold_from_trace(trace::memory_trace& tape,
                              detect::future_support futures);

// Replays `tape` through `backend` on the given shadow store and diffs the
// outcome against `golden`. Returns divergence lines (empty = conforms);
// each names the mismatched quantity and the exact granules involved.
// Violation counts are compared only for backends that declare
// counts_violations. Goldens are store-independent by construction: every
// registered store must reproduce them byte-identically, which is exactly
// what verify_corpus holds the (entry × backend × store) cube to.
// `workers` > 1 replays under parallel detection (sharded store required —
// the parallel conformance cube passes store "sharded" with it); goldens
// are worker-count-independent too.
std::vector<std::string> check_backend(
    trace::memory_trace& tape, const golden_report& golden,
    const std::string& backend,
    const std::string& store = std::string(shadow::kDefaultStore),
    unsigned workers = 1);

// One (backend, store) verdict on one entry, for callers that aggregate.
struct divergence {
  std::string entry;
  std::string backend;
  std::string store;
  std::vector<std::string> details;  // what diverged, granule by granule
};

struct verify_result {
  std::vector<divergence> failures;
  std::size_t checks = 0;  // (entry × backend × store) replays performed
  bool ok() const { return failures.empty(); }
};

// File plumbing shared by the CLI and the conformance test. Loaders throw
// corpus_error naming the path on missing/corrupt files.
trace::memory_trace load_trace(const std::string& path);
void save_trace(const std::string& path, trace::memory_trace& tape);
void save_golden(const std::string& path, const golden_report& g);

// The corpus this repo ships: what `frd-corpus generate` records. Entry
// names double as file stems (<name>.frdt / <name>.golden).
manifest builtin_manifest();

// Verifies every entry of `m` (trace files resolved relative to `dir`)
// against its golden through every eligible backend × every registered
// shadow store — the one verify engine behind `frd-corpus verify` and the
// conformance test's aggregate checks. A missing or unreadable trace/golden
// becomes a divergence too — verify must fail loudly, not skip.
// `only_backend` / `only_store` restrict to one backend / store name; a
// restriction that matches zero (entry, backend, store) triples is itself a
// failure (verifying nothing must not read as success).
verify_result verify_corpus(const manifest& m, const std::string& dir,
                            std::string_view only_backend = {},
                            std::string_view only_store = {});

}  // namespace frd::corpus
