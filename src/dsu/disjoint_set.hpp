// Fast disjoint-set (union-find) forest with per-set payloads.
//
// This is the reachability substrate for both MultiBags and MultiBags+
// (paper §4: Tarjan's data structure [54], amortized O(α(m,n)) per op).
// The payload extension is what the detectors need on top of the textbook
// structure: each *set* (not element) carries a tag object — a bag
// descriptor for DSP, an attached/unattached set descriptor for DNSP.
//
// Payload rules (DESIGN.md §5):
//  * the payload lives logically on the set, physically on the current root;
//  * union_into(a, b) merges b's set into a's set and the merged set keeps
//    a's payload — matching the paper's "A = Union(D, A, B): unions the set
//    B into A and destroys B";
//  * union-by-rank may pick b's root as the physical root, in which case the
//    payload pointer is moved there, so `payload(find(x))` is always O(1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace frd::dsu {

using element = std::uint32_t;
inline constexpr element kNoElement = static_cast<element>(-1);

// Operation counters, exposed for the micro/ablation benches (bench/micro_dsu)
// and for asserting the O(α) behaviour indirectly (hops per find stays tiny).
struct forest_stats {
  std::uint64_t make_sets = 0;
  std::uint64_t unions = 0;
  std::uint64_t finds = 0;
  std::uint64_t parent_hops = 0;
};

template <typename Payload>
class forest {
 public:
  // path_compress=false exists only for the ablation benchmark; all
  // detectors use the default.
  explicit forest(bool path_compress = true) : path_compress_(path_compress) {}

  std::size_t size() const { return parent_.size(); }
  const forest_stats& stats() const { return stats_; }

  // Creates a singleton set {new element} owning `payload` (may be null).
  element make_set(Payload* payload) {
    const element e = static_cast<element>(parent_.size());
    parent_.push_back(e);
    rank_.push_back(0);
    payload_.push_back(payload);
    ++stats_.make_sets;
    return e;
  }

  // Returns the root of x's set, compressing the path.
  element find(element x) {
    FRD_DCHECK(x < parent_.size());
    ++stats_.finds;
    element root = x;
    while (parent_[root] != root) {
      ++stats_.parent_hops;
      root = parent_[root];
    }
    if (path_compress_) {
      while (parent_[x] != root) {
        element next = parent_[x];
        parent_[x] = root;
        x = next;
      }
    }
    return root;
  }

  bool same_set(element a, element b) { return find(a) == find(b); }

  // Payload of the set containing x (follows find).
  Payload* payload(element x) { return payload_[find(x)]; }

  // Payload already knowing the root (no find) — hot-path helper.
  Payload* payload_at_root(element root) {
    FRD_DCHECK(parent_[root] == root);
    return payload_[root];
  }

  void set_payload(element x, Payload* p) { payload_[find(x)] = p; }

  // Merges the set containing `from` into the set containing `into`.
  // The merged set keeps `into`'s payload. Returns the new physical root.
  element union_into(element into, element from) {
    element ra = find(into);
    element rb = find(from);
    if (ra == rb) return ra;
    ++stats_.unions;
    Payload* keep = payload_[ra];
    // Union by rank decides the physical root; the logical identity ("this
    // is still A's set") is carried entirely by the payload.
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    payload_[ra] = keep;
    payload_[rb] = nullptr;
    return ra;
  }

 private:
  std::vector<element> parent_;
  std::vector<std::uint8_t> rank_;
  std::vector<Payload*> payload_;
  forest_stats stats_;
  bool path_compress_;
};

}  // namespace frd::dsu
