#include "trace/player.hpp"

#include <string>
#include <vector>

namespace frd::trace {

namespace {

// Recorded addresses are 64-bit; on a narrower host a silent truncation
// would collide distinct granules and quietly change the race report, so
// out-of-range addresses are an error like any other malformed input.
std::uintptr_t checked_address(std::uint64_t addr) {
  if constexpr (sizeof(std::uintptr_t) < sizeof(std::uint64_t)) {
    if (addr > UINTPTR_MAX) {
      throw trace_error("trace granule address " + std::to_string(addr) +
                        " does not fit this host's pointers; replay the "
                        "trace on a 64-bit build");
    }
  }
  return static_cast<std::uintptr_t>(addr);
}

}  // namespace

trace_player::stats trace_player::play(rt::execution_listener* listener,
                                       detect::hooks::access_sink* sink) {
  return play(listener, sink, 0, {});
}

trace_player::stats trace_player::play(
    rt::execution_listener* listener, detect::hooks::access_sink* sink,
    std::uint64_t every_events,
    const std::function<void(const stats&)>& checkpoint) {
  const std::size_t granule = src_.header().granule;
  std::uint64_t next_checkpoint =
      (every_events && checkpoint) ? every_events : 0;
  prefiltered_ = 0;
  stats st;
  std::vector<rt::child_record> children;
  std::vector<rt::strand_id> joins;
  // Access runs accumulate here and flush as one on_accesses call before
  // any dag event fires, so the sink observes accesses and dag events in
  // true program order — the batching is invisible except in dispatch cost.
  // The buffer is pre-sized and filled through a manual cursor so the armed
  // prefilter loop below can append branchlessly.
  std::vector<detect::hooks::access> batch(batch_capacity_);
  std::size_t filled = 0;
  const auto flush = [&] {
    if (filled == 0) return;
    if (sink) {
      sink->on_accesses(
          std::span<const detect::hooks::access>(batch.data(), filled),
          granule);
    }
    filled = 0;
  };
  // One batch element from one decoded access event (the scalar fallback
  // for streaming sources). The armed granule-sampling prefilter drops a
  // sampled-out access here, before it costs a batch slot and the sink's
  // per-access scan; the tally goes back to the detector (note_prefiltered)
  // so its counters match the in-protocol carve-out exactly.
  const auto push_access = [&](const trace_event& ev) {
    const std::uintptr_t addr = checked_address(ev.access.addr);
    if (prefilter_.armed && !prefilter_.admits_granule(addr)) {
      ++prefiltered_;
      return;
    }
    batch[filled++] = detect::hooks::access{addr, ev.kind == event_kind::write};
    if (filled == batch_capacity_) flush();
  };
  trace_event e;
  for (;;) {
    // Bulk fast path: whole access runs come back as storage views
    // (trace_source::access_run), iterated in place — no per-event virtual
    // dispatch, no event copy. Streaming sources return empty spans and
    // every event takes the next() path below instead; checkpoints land at
    // run boundaries (runs are at most batch_capacity_ long, well inside
    // any useful cadence) and still never inside a flattened sync run.
    for (;;) {
      const std::span<const trace_event> run = src_.access_run(batch_capacity_);
      if (run.empty()) break;
      st.events += run.size();
      st.accesses += run.size();
      if (!prefilter_.armed) {
        for (const trace_event& ev : run) {
          batch[filled++] = detect::hooks::access{
              checked_address(ev.access.addr), ev.kind == event_kind::write};
          if (filled == batch_capacity_) flush();
        }
      } else {
        // Branchless filtering: the slot is written unconditionally and the
        // cursor advances only for admitted accesses, so the data-random
        // admit decision (the whole point of sampling is that it is ~rate
        // biased) never becomes a mispredicted branch. filled < capacity
        // holds on entry to every iteration: the flush fires the moment the
        // cursor reaches capacity, and run length never exceeds it.
        std::uint64_t dropped = 0;
        for (const trace_event& ev : run) {
          const std::uintptr_t addr = checked_address(ev.access.addr);
          const bool admit = prefilter_.admits_granule(addr);
          batch[filled] =
              detect::hooks::access{addr, ev.kind == event_kind::write};
          filled += admit;
          dropped += !admit;
          if (filled == batch_capacity_) flush();
        }
        prefiltered_ += dropped;
      }
      if (next_checkpoint && st.events >= next_checkpoint) {
        st.prefiltered = prefiltered_;
        checkpoint(st);
        next_checkpoint = st.events + every_events;
      }
    }
    if (!src_.next(e)) break;
    ++st.events;
    if (next_checkpoint && st.events >= next_checkpoint) {
      st.prefiltered = prefiltered_;
      checkpoint(st);
      next_checkpoint = st.events + every_events;
    }
    if (e.kind == event_kind::read || e.kind == event_kind::write) {
      ++st.accesses;
      push_access(e);
      continue;
    }
    flush();
    switch (e.kind) {
      case event_kind::program_begin:
        if (listener) {
          listener->on_program_begin(e.program_begin.main_fn,
                                     e.program_begin.first);
        }
        break;
      case event_kind::program_end:
        if (listener) listener->on_program_end(e.program_end.last);
        break;
      case event_kind::strand_begin:
        if (listener) {
          listener->on_strand_begin(e.strand_begin.s, e.strand_begin.owner);
        }
        break;
      case event_kind::spawn:
        if (listener) {
          listener->on_spawn(e.fork.parent, e.fork.u, e.fork.child, e.fork.w,
                             e.fork.v);
        }
        break;
      case event_kind::create:
        if (listener) {
          listener->on_create(e.fork.parent, e.fork.u, e.fork.child, e.fork.w,
                              e.fork.v);
        }
        break;
      case event_kind::ret:
        if (listener) listener->on_return(e.ret.child, e.ret.last, e.ret.parent);
        break;
      case event_kind::sync_begin: {
        const rt::func_id fn = e.sync_begin.fn;
        const rt::strand_id before = e.sync_begin.before;
        const std::uint32_t count = e.sync_begin.count;
        children.clear();
        joins.clear();
        for (std::uint32_t i = 0; i < count; ++i) {
          if (!src_.next(e) || e.kind != event_kind::sync_child) {
            throw trace_error(
                "malformed trace: sync_begin announced " +
                std::to_string(count) + " children but child " +
                std::to_string(i) + " is missing");
          }
          ++st.events;
          children.push_back(rt::child_record{
              e.sync_child.child, e.sync_child.fork_strand,
              e.sync_child.child_first, e.sync_child.child_last,
              e.sync_child.cont_first});
          joins.push_back(e.sync_child.join_strand);
        }
        if (listener) {
          rt::execution_listener::sync_event se{fn, before, children, joins};
          listener->on_sync(se);
        }
        break;
      }
      case event_kind::sync_child:
        throw trace_error(
            "malformed trace: sync_child outside a sync_begin run");
      case event_kind::get:
        if (listener) {
          listener->on_get(e.get.fn, e.get.u, e.get.v, e.get.fut, e.get.w,
                           e.get.creator);
        }
        break;
      case event_kind::read:
      case event_kind::write:
        break;  // handled (batched) before the switch
    }
  }
  flush();
  st.prefiltered = prefiltered_;
  return st;
}

}  // namespace frd::trace
