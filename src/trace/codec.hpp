// Trace codecs: a versioned binary format and a line-oriented JSONL format.
//
// Binary layout (little-endian, LEB128 varints):
//
//   magic     4 bytes        "FRDT"
//   version   varint         kTraceVersion
//   granule   varint         shadow granule of the recording (bytes)
//   events    repeated       kind byte (< kEventKindCount), then
//                            field_count(kind) varint fields in the
//                            field_names(kind) order
//   end       1 byte         0xFF (explicit, so truncation is detectable)
//
// JSONL: the first line is a header object
//   {"frd_trace":true,"version":1,"granule":4}
// and every following line is one event object
//   {"ev":"spawn","parent":0,"u":0,"child":1,"w":1,"v":2}
// Blank lines are ignored. Both readers throw trace_error on bad magic,
// unsupported version, truncation, or malformed events; both writers must be
// finish()ed (the destructor finishes on the happy path, but errors from a
// destructor are swallowed — call finish() when you care).
#pragma once

#include <exception>
#include <iosfwd>
#include <memory>
#include <string>

#include "trace/event.hpp"

namespace frd::trace {

// ------------------------------------------------------------------ binary --

class trace_writer final : public trace_sink {
 public:
  explicit trace_writer(std::ostream& out, trace_header h = {});
  ~trace_writer() override;
  trace_writer(const trace_writer&) = delete;
  trace_writer& operator=(const trace_writer&) = delete;

  // The header is already on the wire: a recorder announcing a different
  // granule is a configuration bug — throws trace_error.
  void on_header(const trace_header& h) override;
  void put(const trace_event& e) override;
  // Writes the end marker and flushes; idempotent. Throws trace_error when
  // the stream failed (the destructor swallows that — call finish() when the
  // trace matters).
  void finish() override;
  std::uint64_t events_written() const { return events_; }

 private:
  std::ostream& out_;
  trace_header header_;
  // Uncaught-exception count at construction: the destructor skips the end
  // marker when it runs during unwinding, so aborted recordings read as
  // truncated instead of complete.
  int ctor_exceptions_;
  std::uint64_t events_ = 0;
  bool finished_ = false;
};

class trace_reader final : public trace_source {
 public:
  // Reads and validates the header; throws trace_error on bad input.
  explicit trace_reader(std::istream& in);
  // Mid-stream resume: adopts `h` (validated by whoever decoded the real
  // header) and decodes events from the stream's CURRENT position, which
  // must be an event boundary. The container seek path uses this — the
  // header bytes live at the front of chunk 0, but after a seek decoding
  // resumes at an arbitrary chunk's first event.
  trace_reader(std::istream& in, const trace_header& h);

  const trace_header& header() const override { return header_; }
  bool next(trace_event& e) override;

 private:
  std::istream& in_;
  trace_header header_;
  bool done_ = false;
};

// ------------------------------------------------------------------- jsonl --

class jsonl_writer final : public trace_sink {
 public:
  explicit jsonl_writer(std::ostream& out, trace_header h = {});

  void on_header(const trace_header& h) override;  // like trace_writer's
  void put(const trace_event& e) override;
  // No trailer to write, but flushes and surfaces stream failure like
  // trace_writer::finish().
  void finish() override;
  std::uint64_t events_written() const { return events_; }

 private:
  std::ostream& out_;
  trace_header header_;
  std::uint64_t events_ = 0;
};

class jsonl_reader final : public trace_source {
 public:
  explicit jsonl_reader(std::istream& in);

  const trace_header& header() const override { return header_; }
  bool next(trace_event& e) override;

 private:
  std::istream& in_;
  trace_header header_;
  std::uint64_t line_ = 1;  // header consumed in the constructor
};

// Sniffs the stream (binary magic vs '{') and returns the matching reader.
std::unique_ptr<trace_source> open_source(std::istream& in);

}  // namespace frd::trace
