#include "trace/recorder.hpp"

#include <string>

#include "support/granule.hpp"

namespace frd::trace {

trace_recorder::trace_recorder(trace_sink& out, std::size_t granule)
    : out_(out), granule_(granule), granule_mask_(frd::granule_mask(granule)) {
  if (!valid_granule(granule)) {
    throw trace_error("recorder granule must be a power of two in [1, 4096] "
                      "bytes, got " +
                      std::to_string(granule));
  }
  out_.on_header(
      trace_header{kTraceVersion, static_cast<std::uint32_t>(granule)});
}

void trace_recorder::on_program_begin(rt::func_id f, rt::strand_id s) {
  trace_event e;
  e.kind = event_kind::program_begin;
  e.program_begin = {f, s};
  put(e);
}

void trace_recorder::on_program_end(rt::strand_id s) {
  trace_event e;
  e.kind = event_kind::program_end;
  e.program_end = {s};
  put(e);
}

void trace_recorder::on_strand_begin(rt::strand_id s, rt::func_id f) {
  trace_event e;
  e.kind = event_kind::strand_begin;
  e.strand_begin = {s, f};
  put(e);
}

void trace_recorder::on_spawn(rt::func_id p, rt::strand_id u, rt::func_id c,
                              rt::strand_id w, rt::strand_id v) {
  trace_event e;
  e.kind = event_kind::spawn;
  e.fork = {p, u, c, w, v};
  put(e);
}

void trace_recorder::on_create(rt::func_id p, rt::strand_id u, rt::func_id c,
                               rt::strand_id w, rt::strand_id v) {
  trace_event e;
  e.kind = event_kind::create;
  e.fork = {p, u, c, w, v};
  put(e);
}

void trace_recorder::on_return(rt::func_id c, rt::strand_id last,
                               rt::func_id p) {
  trace_event e;
  e.kind = event_kind::ret;
  e.ret = {c, last, p};
  put(e);
}

void trace_recorder::on_sync(const sync_event& e) {
  trace_event out;
  out.kind = event_kind::sync_begin;
  out.sync_begin = {e.fn, e.before,
                    static_cast<std::uint32_t>(e.children.size())};
  put(out);
  // children.size() == join_strands.size() by the runtime's contract; pair
  // them positionally so the player can rebuild both spans verbatim.
  for (std::size_t i = 0; i < e.children.size(); ++i) {
    const rt::child_record& c = e.children[i];
    trace_event child;
    child.kind = event_kind::sync_child;
    child.sync_child = {c.child,      c.fork_strand, c.child_first,
                        c.child_last, c.cont_first,  e.join_strands[i]};
    put(child);
  }
}

void trace_recorder::on_get(rt::func_id fn, rt::strand_id u, rt::strand_id v,
                            rt::func_id fut, rt::strand_id w,
                            rt::strand_id creator) {
  trace_event e;
  e.kind = event_kind::get;
  e.get = {fn, u, v, fut, w, creator};
  put(e);
}

void trace_recorder::record_access(event_kind kind, const void* p,
                                   std::size_t bytes) {
  // The one shared splitting definition keeps recorded granule events
  // bit-identical to the checks the live detector performs.
  for_each_granule(p, bytes, granule_, granule_mask_, [&](std::uintptr_t a) {
    trace_event e;
    e.kind = kind;
    e.access = {static_cast<std::uint64_t>(a)};
    put(e);
  });
}

void trace_recorder::on_read(const void* p, std::size_t bytes) {
  record_access(event_kind::read, p, bytes);
  if (next_ != nullptr) next_->on_read(p, bytes);
}

void trace_recorder::on_write(const void* p, std::size_t bytes) {
  record_access(event_kind::write, p, bytes);
  if (next_ != nullptr) next_->on_write(p, bytes);
}

void trace_recorder::on_accesses(std::span<const detect::hooks::access> batch,
                                 std::size_t bytes) {
  // Batch elements are single-granule by contract; record_access would
  // re-split each into itself, so record directly and keep the downstream
  // sink on the batched path.
  if (bytes != granule_) {
    throw trace_error("batched accesses arrived at granule " +
                      std::to_string(bytes) + " but this recorder writes " +
                      std::to_string(granule_));
  }
  for (const detect::hooks::access& a : batch) {
    trace_event e;
    e.kind = a.is_write ? event_kind::write : event_kind::read;
    e.access = {static_cast<std::uint64_t>(a.addr)};
    put(e);
  }
  if (next_ != nullptr) next_->on_accesses(batch, bytes);
}

}  // namespace frd::trace
