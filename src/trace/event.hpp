// First-class execution traces: the event model.
//
// A trace is the serializable form of everything a detection run consumes —
// the dag-growth events of rt::execution_listener plus the instrumented
// memory accesses — so that detection can run *without* the program: record
// once, replay through any backend (see trace_recorder / trace_player).
//
// trace_event is a compact POD tagged union. Two listener callbacks need
// flattening to stay self-contained:
//
//   on_sync    carries spans into runtime-owned scratch; it becomes one
//              sync_begin{fn, before, count} followed by exactly `count`
//              sync_child events, each pairing children[i] (spawn order)
//              with join_strands[i] (span order). The player rebuilds both
//              spans positionally, so the binary-join reversal documented in
//              events.hpp is preserved bit-for-bit.
//   accesses   are granule-normalized at record time: one read/write event
//              per touched granule, carrying the granule's base address.
//              The recording granule lives in the trace_header; replaying
//              under the same granule reproduces the exact shadow behavior.
//
// Sinks and sources are sink-agnostic seams: trace_writer/jsonl_writer and
// trace_reader/jsonl_reader (codec.hpp) stream to/from bytes, memory_trace
// keeps events in RAM for tests and replay benches.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/events.hpp"

namespace frd::trace {

// Raised on malformed trace input: bad magic, unsupported version, truncated
// stream, unknown event kind, or a replayed trace whose granule does not
// match the session's. Catchable like detect::backend_error.
class trace_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class event_kind : std::uint8_t {
  program_begin = 0,
  program_end,
  strand_begin,
  spawn,
  create,
  ret,
  sync_begin,
  sync_child,
  get,
  read,
  write,
};
inline constexpr int kEventKindCount = 11;

constexpr std::string_view to_string(event_kind k) {
  switch (k) {
    case event_kind::program_begin: return "program_begin";
    case event_kind::program_end: return "program_end";
    case event_kind::strand_begin: return "strand_begin";
    case event_kind::spawn: return "spawn";
    case event_kind::create: return "create";
    case event_kind::ret: return "return";
    case event_kind::sync_begin: return "sync_begin";
    case event_kind::sync_child: return "sync_child";
    case event_kind::get: return "get";
    case event_kind::read: return "read";
    case event_kind::write: return "write";
  }
  return "?";
}

struct trace_event {
  event_kind kind = event_kind::program_begin;
  union {
    struct {
      rt::func_id main_fn;
      rt::strand_id first;
    } program_begin;
    struct {
      rt::strand_id last;
    } program_end;
    struct {
      rt::strand_id s;
      rt::func_id owner;
    } strand_begin;
    // spawn and create share this shape (events.hpp on_spawn/on_create).
    struct {
      rt::func_id parent;
      rt::strand_id u;
      rt::func_id child;
      rt::strand_id w;
      rt::strand_id v;
    } fork;
    struct {
      rt::func_id child;
      rt::strand_id last;
      rt::func_id parent;
    } ret;
    struct {
      rt::func_id fn;
      rt::strand_id before;
      std::uint32_t count;  // sync_child events that follow immediately
    } sync_begin;
    struct {
      rt::func_id child;
      rt::strand_id fork_strand;
      rt::strand_id child_first;
      rt::strand_id child_last;
      rt::strand_id cont_first;
      rt::strand_id join_strand;
    } sync_child;
    struct {
      rt::func_id fn;
      rt::strand_id u;
      rt::strand_id v;
      rt::func_id fut;
      rt::strand_id w;
      rt::strand_id creator;
    } get;
    // read and write share this shape: the granule's base address.
    struct {
      std::uint64_t addr;
    } access;
  };
};

// The codec views every event as kind + up to 6 unsigned fields, so the
// binary and JSONL encoders share one table-driven core.
inline constexpr int kMaxEventFields = 6;

struct event_fields {
  std::uint64_t v[kMaxEventFields] = {};
  int n = 0;
};

int field_count(event_kind k);
// Field names in encoding order, for the JSONL codec (and `frd-trace dump`).
const char* const* field_names(event_kind k);
event_fields fields_of(const trace_event& e);
// Validates ranges (32-bit ids must fit); throws trace_error otherwise.
trace_event event_from(event_kind k, const event_fields& f);

bool operator==(const trace_event& a, const trace_event& b);
inline bool operator!=(const trace_event& a, const trace_event& b) {
  return !(a == b);
}

inline constexpr std::uint32_t kTraceVersion = 1;

struct trace_header {
  std::uint32_t version = kTraceVersion;
  // Shadow granule (bytes, power of two) the accesses were normalized with.
  std::uint32_t granule = 4;
};

// Receiver of a recorded event stream (a codec writer or an in-memory
// buffer). put() is called in program order; the recording run is serial.
// A trace_recorder announces its header (granule) via on_header before the
// first put: buffers adopt it, codec writers (whose header is already on the
// wire) reject a mismatch instead of producing a lying trace.
class trace_sink {
 public:
  virtual ~trace_sink() = default;
  virtual void on_header(const trace_header& /*h*/) {}
  virtual void put(const trace_event& e) = 0;
  // Completes the trace (end marker, flush) and surfaces I/O failure as
  // trace_error; a no-op for sinks with nothing to finalize.
  virtual void finish() {}
};

// Producer side: a stored trace that can be streamed back out.
class trace_source {
 public:
  virtual ~trace_source() = default;
  virtual const trace_header& header() const = 0;
  // Fills `e` and returns true, or returns false at end of trace. Throws
  // trace_error on malformed input.
  virtual bool next(trace_event& e) = 0;
  // Bulk fast path for the replay hot loop: a view of the next run of
  // consecutive read/write events (at most `max` of them), with the cursor
  // advanced past the returned span. Storage-backed sources override this
  // so the player iterates access runs in place — no per-event virtual
  // dispatch and no 48-byte copy, which is most of a replayed access's
  // fixed cost. An empty span means the next event is a dag event, end of
  // trace, or the source streams and cannot expose storage views (this
  // default); the caller then falls back to next().
  virtual std::span<const trace_event> access_run(std::size_t max) {
    (void)max;
    return {};
  }
};

// In-memory trace: a sink that can be rewound into a source as many times as
// needed (replay benches, multi-backend differential tests).
class memory_trace final : public trace_sink, public trace_source {
 public:
  memory_trace() = default;
  explicit memory_trace(trace_header h) : header_(h) {}

  void on_header(const trace_header& h) override { header_ = h; }
  void put(const trace_event& e) override { events_.push_back(e); }
  const trace_header& header() const override { return header_; }
  bool next(trace_event& e) override {
    if (cursor_ >= events_.size()) return false;
    e = events_[cursor_++];
    return true;
  }
  std::span<const trace_event> access_run(std::size_t max) override {
    const std::size_t begin = cursor_;
    std::size_t limit = begin + max;
    if (limit > events_.size()) limit = events_.size();
    std::size_t i = begin;
    while (i < limit && (events_[i].kind == event_kind::read ||
                         events_[i].kind == event_kind::write)) {
      ++i;
    }
    cursor_ = i;
    return {events_.data() + begin, i - begin};
  }

  void rewind() { cursor_ = 0; }
  std::size_t size() const { return events_.size(); }
  const std::vector<trace_event>& events() const { return events_; }
  trace_header& mutable_header() { return header_; }

 private:
  trace_header header_;
  std::vector<trace_event> events_;
  std::size_t cursor_ = 0;
};

}  // namespace frd::trace
