#include "trace/codec.hpp"

#include <istream>
#include <ostream>

#include "container/source.hpp"
#include "support/granule.hpp"

namespace frd::trace {

namespace {

constexpr char kMagic[4] = {'F', 'R', 'D', 'T'};
constexpr int kEndMarker = 0xFF;

void write_varint(std::ostream& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.put(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<char>(v));
}

std::uint64_t read_varint(std::istream& in) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const int c = in.get();
    if (c < 0) throw trace_error("truncated trace: varint cut off mid-field");
    // The 10th byte holds only bit 63: anything above it (or a continuation
    // bit there) would be silently shifted away — corrupt, not decodable.
    if (shift == 63 && (c & 0xFE) != 0) {
      throw trace_error("malformed trace: varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) return v;
  }
  throw trace_error("malformed trace: varint longer than 64 bits");
}

// Validation happens on the full decoded 64-bit values, BEFORE any narrowing
// cast — a granule of 2^32 + 4 must be rejected, not silently read as 4.
void check_granule(std::uint64_t granule) {
  if (granule > 4096 || !valid_granule(static_cast<std::size_t>(granule))) {
    throw trace_error("trace header granule must be a power of two in "
                      "[1, 4096] bytes, got " +
                      std::to_string(granule));
  }
}

void check_version(std::uint64_t version) {
  if (version != kTraceVersion) {
    throw trace_error("unsupported trace version " + std::to_string(version) +
                      " (this build reads version " +
                      std::to_string(kTraceVersion) + ")");
  }
}

void check_recorder_granule(std::uint32_t recorded, std::uint32_t written) {
  if (recorded != written) {
    throw trace_error(
        "recorder granule " + std::to_string(recorded) +
        " contradicts the granule already written to this trace (" +
        std::to_string(written) + ")");
  }
}

}  // namespace

// ------------------------------------------------------------------ binary --

trace_writer::trace_writer(std::ostream& out, trace_header h)
    : out_(out), header_(h), ctor_exceptions_(std::uncaught_exceptions()) {
  check_granule(h.granule);
  out_.write(kMagic, sizeof(kMagic));
  write_varint(out_, h.version);
  write_varint(out_, h.granule);
}

trace_writer::~trace_writer() {
  // When the writer dies because an exception is unwinding a recording run,
  // the trace is incomplete by definition — leaving the end marker OFF is
  // what lets readers detect the truncation. Only a normal exit finishes.
  if (std::uncaught_exceptions() > ctor_exceptions_) return;
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; callers who care about I/O failure call
    // finish() themselves (frd-trace does).
  }
}

void trace_writer::on_header(const trace_header& h) {
  check_recorder_granule(h.granule, header_.granule);
}

void trace_writer::put(const trace_event& e) {
  if (finished_) {
    throw trace_error(
        "put() after finish(): events past the end marker would be silently "
        "invisible to readers");
  }
  out_.put(static_cast<char>(e.kind));
  const event_fields f = fields_of(e);
  for (int i = 0; i < f.n; ++i) write_varint(out_, f.v[i]);
  ++events_;
}

void trace_writer::finish() {
  if (finished_) return;
  finished_ = true;
  out_.put(static_cast<char>(kEndMarker));
  out_.flush();
  if (!out_) {
    throw trace_error(
        "trace output stream failed (disk full? closed early?); the written "
        "trace is incomplete");
  }
}

trace_reader::trace_reader(std::istream& in) : in_(in) {
  char magic[4] = {};
  in_.read(magic, sizeof(magic));
  if (in_.gcount() != sizeof(magic) || magic[0] != kMagic[0] ||
      magic[1] != kMagic[1] || magic[2] != kMagic[2] || magic[3] != kMagic[3]) {
    throw trace_error("not a FutureRD trace: bad magic (expected \"FRDT\")");
  }
  const std::uint64_t version = read_varint(in_);
  check_version(version);
  const std::uint64_t granule = read_varint(in_);
  check_granule(granule);
  header_.version = static_cast<std::uint32_t>(version);
  header_.granule = static_cast<std::uint32_t>(granule);
}

trace_reader::trace_reader(std::istream& in, const trace_header& h)
    : in_(in), header_(h) {
  check_version(h.version);
  check_granule(h.granule);
}

bool trace_reader::next(trace_event& e) {
  if (done_) return false;
  const int kind_byte = in_.get();
  if (kind_byte < 0) {
    throw trace_error("truncated trace: end marker missing");
  }
  if (kind_byte == kEndMarker) {
    done_ = true;
    return false;
  }
  if (kind_byte >= kEventKindCount) {
    throw trace_error("malformed trace: unknown event kind " +
                      std::to_string(kind_byte));
  }
  const auto kind = static_cast<event_kind>(kind_byte);
  event_fields f;
  f.n = field_count(kind);
  for (int i = 0; i < f.n; ++i) f.v[i] = read_varint(in_);
  e = event_from(kind, f);
  return true;
}

// ------------------------------------------------------------------- jsonl --

jsonl_writer::jsonl_writer(std::ostream& out, trace_header h)
    : out_(out), header_(h) {
  check_granule(h.granule);
  out_ << "{\"frd_trace\":true,\"version\":" << h.version
       << ",\"granule\":" << h.granule << "}\n";
}

void jsonl_writer::on_header(const trace_header& h) {
  check_recorder_granule(h.granule, header_.granule);
}

void jsonl_writer::finish() {
  out_.flush();
  if (!out_) {
    throw trace_error(
        "trace output stream failed (disk full? closed early?); the written "
        "trace is incomplete");
  }
}

void jsonl_writer::put(const trace_event& e) {
  out_ << "{\"ev\":\"" << to_string(e.kind) << '"';
  const event_fields f = fields_of(e);
  const char* const* names = field_names(e.kind);
  for (int i = 0; i < f.n; ++i) out_ << ",\"" << names[i] << "\":" << f.v[i];
  out_ << "}\n";
  ++events_;
}

namespace {

// Strict scanner for the flat one-line objects this codec emits:
// string keys, values that are unsigned integers, `true`/`false`, or
// strings. No nesting, no floats, no escapes beyond none.
class line_parser {
 public:
  line_parser(const std::string& s, std::uint64_t line) : s_(s), line_(line) {}

  struct member {
    std::string key;
    std::string str;        // set when is_string
    std::uint64_t num = 0;  // set otherwise (true -> 1, false -> 0)
    bool is_string = false;
  };

  std::vector<member> parse() {
    std::vector<member> out;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++i_;
      return out;
    }
    while (true) {
      member m;
      m.key = parse_string();
      expect(':');
      skip_ws();
      if (peek() == '"') {
        m.str = parse_string();
        m.is_string = true;
      } else if (s_.compare(i_, 4, "true") == 0) {
        m.num = 1;
        i_ += 4;
      } else if (s_.compare(i_, 5, "false") == 0) {
        m.num = 0;
        i_ += 5;
      } else {
        m.num = parse_number();
      }
      out.push_back(std::move(m));
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      break;
    }
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw trace_error("malformed JSONL trace at line " + std::to_string(line_) +
                      ": " + what);
  }
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t')) ++i_;
  }
  char peek() {
    if (i_ >= s_.size()) fail("unexpected end of line");
    return s_[i_];
  }
  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return out;
      if (c == '\\') fail("escape sequences are not part of this format");
      out.push_back(c);
    }
  }
  std::uint64_t parse_number() {
    if (peek() < '0' || peek() > '9') fail("expected a number");
    std::uint64_t v = 0;
    while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(s_[i_++] - '0');
      if (v > (UINT64_MAX - digit) / 10) fail("number overflows 64 bits");
      v = v * 10 + digit;
    }
    return v;
  }

  const std::string& s_;
  std::uint64_t line_;
  std::size_t i_ = 0;
};

event_kind kind_of_name(const std::string& name, std::uint64_t line) {
  for (int k = 0; k < kEventKindCount; ++k) {
    if (name == to_string(static_cast<event_kind>(k))) {
      return static_cast<event_kind>(k);
    }
  }
  throw trace_error("malformed JSONL trace at line " + std::to_string(line) +
                    ": unknown event \"" + name + "\"");
}

}  // namespace

jsonl_reader::jsonl_reader(std::istream& in) : in_(in) {
  std::string line;
  if (!std::getline(in_, line)) {
    throw trace_error("not a FutureRD JSONL trace: empty input");
  }
  bool tagged = false, versioned = false, granuled = false;
  std::uint64_t version = 0, granule = 0;
  for (const auto& m : line_parser(line, 1).parse()) {
    if (m.key == "frd_trace" && !m.is_string && m.num == 1) tagged = true;
    if (m.key == "version" && !m.is_string) {
      version = m.num;
      versioned = true;
    }
    if (m.key == "granule" && !m.is_string) {
      granule = m.num;
      granuled = true;
    }
  }
  if (!tagged || !versioned || !granuled) {
    throw trace_error(
        "not a FutureRD JSONL trace: first line must carry frd_trace, "
        "version, and granule");
  }
  check_version(version);
  check_granule(granule);
  header_.version = static_cast<std::uint32_t>(version);
  header_.granule = static_cast<std::uint32_t>(granule);
}

bool jsonl_reader::next(trace_event& e) {
  std::string line;
  while (std::getline(in_, line)) {
    ++line_;
    if (line.empty()) continue;
    auto members = line_parser(line, line_).parse();
    if (members.empty() || members.front().key != "ev" ||
        !members.front().is_string) {
      throw trace_error("malformed JSONL trace at line " +
                        std::to_string(line_) +
                        ": every event line must start with \"ev\"");
    }
    const event_kind kind = kind_of_name(members.front().str, line_);
    event_fields f;
    f.n = field_count(kind);
    const char* const* names = field_names(kind);
    for (int i = 0; i < f.n; ++i) {
      bool found = false;
      for (std::size_t m = 1; m < members.size(); ++m) {
        if (members[m].key == names[i] && !members[m].is_string) {
          f.v[i] = members[m].num;
          found = true;
          break;
        }
      }
      if (!found) {
        throw trace_error("malformed JSONL trace at line " +
                          std::to_string(line_) + ": missing field \"" +
                          names[i] + "\"");
      }
    }
    e = event_from(kind, f);
    return true;
  }
  return false;
}

// -------------------------------------------------------------------- sniff --

std::unique_ptr<trace_source> open_source(std::istream& in) {
  const int first = in.peek();
  if (first == '{') return std::make_unique<jsonl_reader>(in);
  if (container::looks_like_container(in))
    return std::make_unique<container::container_source>(in);
  return std::make_unique<trace_reader>(in);
}

}  // namespace frd::trace
